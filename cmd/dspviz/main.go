// Command dspviz runs a small simulation and writes an SVG Gantt chart
// of the resulting schedule — one band per node, a lane per busy slot,
// one color per job, preempted spans outlined in red. By default each
// job's realized critical path is overlaid, its execution spans outlined
// in the color of the dominant blame cause (-critpath=false disables).
//
// Usage:
//
//	dspviz [-jobs N] [-nodes N] [-scale F] [-seed N] [-preemptor NAME] [-o FILE]
//	       [-critpath] [-trace FILE] [-audit FILE] [-pprof ADDR]
package main

import (
	"flag"
	"fmt"
	"os"

	"dsp/internal/attrib"
	"dsp/internal/cluster"
	"dsp/internal/experiments"
	"dsp/internal/obs"
	"dsp/internal/sched"
	"dsp/internal/sim"
	"dsp/internal/trace"
	"dsp/internal/units"
	"dsp/internal/viz"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dspviz:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dspviz", flag.ContinueOnError)
	jobs := fs.Int("jobs", 6, "number of jobs")
	nodes := fs.Int("nodes", 4, "number of nodes")
	scale := fs.Float64("scale", 0.02, "workload task scale")
	seed := fs.Int64("seed", 1, "workload seed")
	preemptor := fs.String("preemptor", "DSP", "preemption method or 'none'")
	out := fs.String("o", "gantt.svg", "output SVG path")
	critpath := fs.Bool("critpath", true, "overlay each job's realized critical path, colored by blame cause")
	tracePath := fs.String("trace", "", "also write Chrome trace-event JSON to FILE")
	auditPath := fs.String("audit", "", "also write JSONL decision audit to FILE")
	pprofAddr := fs.String("pprof", "", "serve /debug/pprof on ADDR (e.g. :6060)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if addr, err := obs.StartPprof(*pprofAddr); err != nil {
		return err
	} else if addr != "" {
		fmt.Fprintln(os.Stderr, "pprof listening on "+addr)
	}

	spec := trace.DefaultSpec(*jobs, *seed)
	spec.TaskScale = *scale
	w, err := trace.Generate(spec)
	if err != nil {
		return err
	}

	cfg := sim.Config{
		Cluster:   cluster.RealCluster(*nodes),
		Scheduler: sched.NewDSP(),
		Period:    units.Minute,
	}
	if *preemptor != "none" {
		pre, cp, err := experiments.NewPreemptor(*preemptor)
		if err != nil {
			return err
		}
		cfg.Preemptor = pre
		cfg.Checkpoint = cp
	}
	rec := viz.NewRecorder()
	sink, err := obs.Open(obs.Options{TracePath: *tracePath, AuditPath: *auditPath})
	if err != nil {
		return err
	}
	observers := sim.Observers{rec}
	var arec *attrib.Recorder
	if *critpath {
		arec = attrib.NewRecorder()
		observers = append(observers, arec)
	}
	if sink.Enabled() {
		observers = append(observers, sink)
	}
	cfg.Observer = observers

	res, err := sim.Run(cfg, w)
	if err != nil {
		sink.Close()
		return err
	}
	if err := sink.Close(); err != nil {
		return err
	}

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if arec != nil {
		err = rec.GanttWithAttribution(f, arec.Jobs())
	} else {
		err = rec.Gantt(f)
	}
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d spans, makespan %v, %d preemptions\n",
		*out, len(rec.Spans), res.Makespan, res.Preemptions)
	return f.Close()
}
