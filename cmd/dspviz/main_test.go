package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunWritesSVG(t *testing.T) {
	out := filepath.Join(t.TempDir(), "g.svg")
	if err := run([]string{"-jobs", "3", "-nodes", "2", "-scale", "0.02", "-o", out}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	svg := string(data)
	if !strings.Contains(svg, "<svg") || !strings.Contains(svg, "</svg>") {
		t.Error("output is not SVG")
	}
	if !strings.Contains(svg, "<rect") {
		t.Error("no spans rendered")
	}
}

func TestRunNoPreemptor(t *testing.T) {
	out := filepath.Join(t.TempDir(), "g.svg")
	if err := run([]string{"-jobs", "2", "-nodes", "2", "-scale", "0.02", "-preemptor", "none", "-o", out}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-preemptor", "bogus"}); err == nil {
		t.Error("unknown preemptor accepted")
	}
	if err := run([]string{"-nope"}); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run([]string{"-jobs", "2", "-scale", "0.02", "-o", "/nonexistent-dir/x.svg"}); err == nil {
		t.Error("unwritable output accepted")
	}
}
