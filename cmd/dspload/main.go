// Command dspload is the serving-mode load generator: it submits a
// deterministic synthetic workload to a running dspserve daemon over
// HTTP at a target wall-clock rate, honoring 429 backpressure, probing
// job statuses mid-run, and scraping /metrics for heap and
// serve-period-latency evidence. The CI smoke job and the acceptance
// run in results/serve_real50.txt both drive it.
//
// Usage:
//
//	dspload [flags]
//
//	-url URL         dspserve base URL (default http://127.0.0.1:8080)
//	-jobs N          jobs to submit (default 100)
//	-rate F          target submission rate in jobs per wall minute
//	                 (default 1000)
//	-seed N          workload seed (default 1)
//	-scale F         workload task scale (default 0.03)
//	-sample-every N  status probe + metrics scrape cadence (default 25)
//	-out FILE        also write the report to FILE
//
// Exit status is 0 only if every job was eventually accepted.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"dsp/internal/experiments"
)

func main() {
	var (
		url         = flag.String("url", "http://127.0.0.1:8080", "dspserve base URL")
		jobs        = flag.Int("jobs", 100, "jobs to submit")
		rate        = flag.Float64("rate", 1000, "target jobs per wall minute")
		seed        = flag.Int64("seed", 1, "workload seed")
		scale       = flag.Float64("scale", 0.03, "workload task scale")
		sampleEvery = flag.Int("sample-every", 25, "status probe + metrics scrape cadence (submissions)")
		out         = flag.String("out", "", "also write the report to FILE")
	)
	flag.Parse()

	ctx, cancel := context.WithCancel(context.Background())
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-sigs
		cancel()
	}()

	rep, err := experiments.RunServeLoad(ctx, experiments.ServeLoadOptions{
		BaseURL:       *url,
		Jobs:          *jobs,
		Seed:          *seed,
		Scale:         *scale,
		JobsPerMinute: *rate,
		SampleEvery:   *sampleEvery,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "dspload: "+format+"\n", args...)
		},
	})
	if rep != nil {
		fmt.Print(rep.Format())
		if *out != "" {
			if werr := os.WriteFile(*out, []byte(rep.Format()), 0o644); werr != nil {
				fmt.Fprintf(os.Stderr, "dspload: %v\n", werr)
				os.Exit(1)
			}
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "dspload: %v\n", err)
		os.Exit(1)
	}
}
