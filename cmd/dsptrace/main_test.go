package main

import "testing"

func TestRunJSON(t *testing.T) {
	if err := run([]string{"-jobs", "3", "-scale", "0.02"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunStats(t *testing.T) {
	if err := run([]string{"-jobs", "3", "-scale", "0.02", "-stats"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunDOT(t *testing.T) {
	if err := run([]string{"-jobs", "3", "-scale", "0.02", "-dot", "1"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-jobs", "3", "-scale", "0.02", "-dot", "99"}); err == nil {
		t.Error("missing job accepted")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-jobs", "0"}); err == nil {
		t.Error("zero jobs accepted")
	}
	if err := run([]string{"-nope"}); err == nil {
		t.Error("bad flag accepted")
	}
}
