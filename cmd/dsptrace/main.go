// Command dsptrace generates a synthetic Google-trace-like workload and
// dumps it as JSON (via the trace package's codec): jobs, tasks (sizes,
// resource demands, locality) and dependency edges. The output can be
// reloaded with trace.ReadJSON for byte-identical replay, or inspected
// with -stats. With -dot JOBID it emits the job's DAG in Graphviz format
// instead.
//
// Usage:
//
//	dsptrace [-jobs N] [-scale F] [-seed N] [-stats] [-dot JOBID] [-pprof ADDR]
package main

import (
	"flag"
	"fmt"
	"os"

	"dsp/internal/dag"
	"dsp/internal/obs"
	"dsp/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dsptrace:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dsptrace", flag.ContinueOnError)
	jobs := fs.Int("jobs", 9, "number of jobs")
	scale := fs.Float64("scale", 0.03, "task scale")
	seed := fs.Int64("seed", 1, "seed")
	stats := fs.Bool("stats", false, "print summary statistics instead of JSON")
	dot := fs.Int("dot", -1, "emit the DAG of this job ID as Graphviz DOT")
	pprofAddr := fs.String("pprof", "", "serve /debug/pprof on ADDR (e.g. :6060)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if addr, err := obs.StartPprof(*pprofAddr); err != nil {
		return err
	} else if addr != "" {
		fmt.Fprintln(os.Stderr, "pprof listening on "+addr)
	}

	spec := trace.DefaultSpec(*jobs, *seed)
	spec.TaskScale = *scale
	w, err := trace.Generate(spec)
	if err != nil {
		return err
	}

	if *dot >= 0 {
		for _, j := range w.Jobs {
			if j.DAG.ID == dag.JobID(*dot) {
				return j.DAG.WriteDOT(os.Stdout)
			}
		}
		return fmt.Errorf("job %d not in workload", *dot)
	}

	if *stats {
		var tasks, edges int
		var work float64
		maxLevels := 0
		for _, j := range w.Jobs {
			tasks += j.DAG.Len()
			edges += j.DAG.NumEdges()
			work += j.DAG.TotalSize()
			if L, err := j.DAG.NumLevels(); err == nil && L > maxLevels {
				maxLevels = L
			}
		}
		fmt.Printf("jobs:          %d\n", len(w.Jobs))
		fmt.Printf("arrival rate:  %.2f jobs/min\n", w.ArrivalRate)
		fmt.Printf("tasks:         %d (%.1f avg/job)\n", tasks, float64(tasks)/float64(len(w.Jobs)))
		fmt.Printf("dep edges:     %d\n", edges)
		fmt.Printf("max levels:    %d\n", maxLevels)
		fmt.Printf("total work:    %.0f MI (~%.0f s at 3600 MIPS)\n", work, work/3600)
		return nil
	}

	return w.WriteJSON(os.Stdout)
}
