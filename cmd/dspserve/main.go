// Command dspserve runs the scheduler as a long-lived service: a
// streaming simulation engine whose virtual clock is paced against wall
// time, accepting job submissions over HTTP/JSON for as long as the
// process lives. See OPERATIONS.md for the full API reference and
// runbook.
//
// Usage:
//
//	dspserve [flags]
//
//	-listen ADDR           HTTP address for job routes + telemetry on one
//	                       mux (default 127.0.0.1:8080; :0 for ephemeral)
//	-platform real|ec2     testbed profile (default real: 50 nodes)
//	-scheduler NAME        DSP | Aalo | TetrisW/SimDep | TetrisW/oDep
//	-preemptor NAME        none | DSP | DSPW/oPP | Amoeba | Natjam | SRPT
//	-period SEC            scheduling period in virtual seconds (default 300)
//	-epoch SEC             preemption epoch in virtual seconds (default 10)
//	-rate F                virtual seconds per wall second (default 1;
//	                       60 compresses a virtual minute into a second)
//	-max-pending N         backpressure bound: POST /jobs answers 429 with
//	                       Retry-After once the pending-task backlog would
//	                       exceed N, and the engine's admission control
//	                       sheds anything that slips past (0 disables)
//
// Durability flags:
//
//	-checkpoint-dir DIR    persist crash-recovery state under DIR: engine
//	                       snapshots + decision WAL (internal/recover) and
//	                       the fsynced submission journal
//	-checkpoint-every K    snapshot cadence in scheduling periods (default 3)
//	-resume                restore from DIR's newest snapshot and replay the
//	                       journal tail; scheduling flags must match the
//	                       interrupted run
//
// Replay flags:
//
//	-replay FILE           submit a dsptrace workload file through the
//	                       ingestion path, paced at the trace's own arrival
//	                       times (scaled by -rate), then drain and exit
//
// Signals: the first SIGINT/SIGTERM stops accepting work and drains —
// every queued and in-flight job runs to completion at CPU speed, the
// final metrics print, and dspserve exits 0. A second signal stops at
// the next event boundary instead, leaving a resumable checkpoint, and
// exits 130.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"dsp/internal/experiments"
	"dsp/internal/prof"
	"dsp/internal/serve"
	"dsp/internal/sim"
	"dsp/internal/trace"
	"dsp/internal/units"
)

func main() {
	var (
		listen    = flag.String("listen", "127.0.0.1:8080", "HTTP listen address (job routes + telemetry)")
		platform  = flag.String("platform", "real", "testbed profile: real | ec2")
		scheduler = flag.String("scheduler", "DSP", "scheduling method: DSP | Aalo | TetrisW/SimDep | TetrisW/oDep")
		preemptor = flag.String("preemptor", "DSP", "preemption method: none | DSP | DSPW/oPP | Amoeba | Natjam | SRPT")
		periodSec = flag.Float64("period", 300, "scheduling period in virtual seconds")
		epochSec  = flag.Float64("epoch", 10, "preemption epoch in virtual seconds")
		rate      = flag.Float64("rate", 1, "virtual seconds per wall second")
		maxPend   = flag.Int("max-pending", 0, "pending-task backlog bound for 429 backpressure and admission shedding (0 = unbounded)")
		ckptDir   = flag.String("checkpoint-dir", "", "directory for snapshots, WAL and submission journal")
		everyK    = flag.Int("checkpoint-every", 3, "snapshot every K scheduling periods")
		resume    = flag.Bool("resume", false, "resume from -checkpoint-dir instead of starting fresh")
		replay    = flag.String("replay", "", "workload JSON file to replay through the ingestion path, then drain and exit")
	)
	flag.Parse()

	plat := experiments.Real
	switch *platform {
	case "real":
	case "ec2":
		plat = experiments.EC2
	default:
		fmt.Fprintf(os.Stderr, "dspserve: unknown platform %q\n", *platform)
		os.Exit(2)
	}
	pre := *preemptor
	if pre == "none" {
		pre = ""
	}

	var w *trace.Workload
	if *replay != "" {
		f, err := os.Open(*replay)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dspserve: %v\n", err)
			os.Exit(2)
		}
		w, err = trace.ReadJSON(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "dspserve: %v\n", err)
			os.Exit(2)
		}
	}

	d, err := serve.New(serve.Config{
		Listen:          *listen,
		CheckpointDir:   *ckptDir,
		Resume:          *resume,
		SnapshotEveryK:  *everyK,
		Scheduler:       *scheduler,
		Preemptor:       pre,
		Platform:        plat,
		Period:          units.FromSeconds(*periodSec),
		Epoch:           units.FromSeconds(*epochSec),
		MaxPendingTasks: *maxPend,
		Rate:            *rate,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "dspserve: "+format+"\n", args...)
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "dspserve: %v\n", err)
		os.Exit(1)
	}

	ctx, cancel := context.WithCancel(context.Background())
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-sigs
		fmt.Fprintln(os.Stderr, "dspserve: draining (signal again to stop at the next event boundary)")
		cancel()
		<-sigs
		fmt.Fprintln(os.Stderr, "dspserve: interrupting")
		d.Interrupt()
	}()

	if w != nil {
		// Replay drives ingestion in-process; once every job is accepted
		// and the engine goes idle, drain and exit.
		go func() {
			n, err := d.Replay(ctx, w)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dspserve: replay: %v\n", err)
				cancel()
				return
			}
			fmt.Fprintf(os.Stderr, "dspserve: replay submitted %d jobs, waiting for idle\n", n)
			d.WaitIdle(ctx)
			cancel()
		}()
	}

	res, err := d.Run(ctx)
	if err != nil && !errors.Is(err, context.Canceled) {
		if errors.Is(err, sim.ErrInterrupted) {
			fmt.Fprintln(os.Stderr, "dspserve: interrupted; checkpoint is resumable with -resume")
			os.Exit(130)
		}
		fmt.Fprintf(os.Stderr, "dspserve: %v\n", err)
		os.Exit(1)
	}
	if res != nil {
		fmt.Printf("jobs: %d completed, %d failed, %d shed (%d cancelled)\n",
			res.JobsCompleted, res.JobsFailed, res.JobsShed, res.JobsCancelled)
		fmt.Printf("makespan: %.1fs virtual, %.2f deadline-meeting jobs/min\n",
			res.Makespan.Seconds(), res.JobThroughputPerMin)
	}
	for _, row := range d.Profile() {
		if row.Phase == prof.PhaseServePeriod.String() {
			fmt.Printf("serve-period latency: n=%d p50=%.2fms p99=%.2fms max=%.2fms\n",
				row.Count, row.P50US/1e3, row.P99US/1e3, row.MaxUS/1e3)
		}
	}
}
