package main

import (
	"os"
	"strings"
	"testing"
)

// devNull routes table output away from the test log.
func devNull(t *testing.T) *os.File {
	t.Helper()
	f, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func TestRunTable2Only(t *testing.T) {
	if err := run([]string{"-fig", "table2"}, devNull(t)); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleFigureTinyScale(t *testing.T) {
	// 5a at a tiny scale exercises the whole harness quickly; the x-axis
	// job counts are fixed, so use the scale knob only.
	if err := run([]string{"-fig", "none", "-sensitivity", "delta", "-sensitivity-jobs", "12", "-scale", "0.02"}, devNull(t)); err != nil {
		t.Fatal(err)
	}
}

func TestRunFairness(t *testing.T) {
	if err := run([]string{"-fig", "none", "-fairness", "-sensitivity-jobs", "12", "-scale", "0.02"}, devNull(t)); err != nil {
		t.Fatal(err)
	}
}

func TestRunResilienceTinyScale(t *testing.T) {
	if err := run([]string{"-fig", "resilience", "-resilience-jobs", "12",
		"-faults", "0,20", "-scale", "0.02"}, devNull(t)); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-nope"}, devNull(t)); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run([]string{"-fig", "none", "-sensitivity", "bogus"}, devNull(t)); err == nil {
		t.Error("unknown sensitivity parameter accepted")
	}
	if err := run([]string{"-fig", "resilience", "-faults", "ten"}, devNull(t)); err == nil {
		t.Error("malformed -faults accepted")
	}
}

func TestTableIIText(t *testing.T) {
	out := tableII()
	for _, want := range []string{"delta", "0.35", "omega3", "Table II"} {
		if !strings.Contains(out, want) {
			t.Errorf("tableII missing %q", want)
		}
	}
}
