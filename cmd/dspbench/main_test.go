package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dsp/internal/experiments"
)

// devNull routes table output away from the test log.
func devNull(t *testing.T) *os.File {
	t.Helper()
	f, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func TestRunTable2Only(t *testing.T) {
	if err := run([]string{"-fig", "table2"}, devNull(t)); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleFigureTinyScale(t *testing.T) {
	// 5a at a tiny scale exercises the whole harness quickly; the x-axis
	// job counts are fixed, so use the scale knob only.
	if err := run([]string{"-fig", "none", "-sensitivity", "delta", "-sensitivity-jobs", "12", "-scale", "0.02"}, devNull(t)); err != nil {
		t.Fatal(err)
	}
}

func TestRunFairness(t *testing.T) {
	if err := run([]string{"-fig", "none", "-fairness", "-sensitivity-jobs", "12", "-scale", "0.02"}, devNull(t)); err != nil {
		t.Fatal(err)
	}
}

func TestRunResilienceTinyScale(t *testing.T) {
	if err := run([]string{"-fig", "resilience", "-resilience-jobs", "12",
		"-faults", "0,20", "-scale", "0.02"}, devNull(t)); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-nope"}, devNull(t)); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run([]string{"-fig", "none", "-sensitivity", "bogus"}, devNull(t)); err == nil {
		t.Error("unknown sensitivity parameter accepted")
	}
	if err := run([]string{"-fig", "resilience", "-faults", "ten"}, devNull(t)); err == nil {
		t.Error("malformed -faults accepted")
	}
}

// captureOut returns a temp file to pass as run's output plus a reader
// for its final contents.
func captureOut(t *testing.T) (*os.File, func() string) {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "out-*.txt")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f, func() string {
		data, err := os.ReadFile(f.Name())
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
}

// benchArgs is the smallest sweep that produces a bench report.
func benchArgs(extra ...string) []string {
	return append([]string{"-fig", "none", "-sensitivity", "delta",
		"-sensitivity-jobs", "12", "-scale", "0.02"}, extra...)
}

// TestBenchJSONSelfCompareAndRegression is the harness's end-to-end
// contract: a sweep writes a valid v2 report with phase breakdowns, the
// report self-compares clean (exit 0), and an injected synthetic
// regression makes -compare fail (exit non-zero).
func TestBenchJSONSelfCompareAndRegression(t *testing.T) {
	dir := t.TempDir()
	rep := filepath.Join(dir, "bench.json")
	if err := run(benchArgs("-bench-json", rep), devNull(t)); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(rep)
	if err != nil {
		t.Fatal(err)
	}
	r, err := experiments.ReadBenchReport(data)
	if err != nil {
		t.Fatalf("written report invalid: %v", err)
	}
	if r.Schema != experiments.BenchSchemaV2 {
		t.Fatalf("schema = %q, want %q", r.Schema, experiments.BenchSchemaV2)
	}
	phased := 0
	for _, sw := range r.Sweeps {
		for _, ct := range sw.CellTimes {
			if len(ct.Phases) > 0 {
				phased++
			}
		}
	}
	if phased == 0 {
		t.Fatal("v2 report carries no phase breakdowns")
	}

	out, read := captureOut(t)
	if err := run([]string{"-compare", rep, rep}, out); err != nil {
		t.Fatalf("self-compare regressed: %v\n%s", err, read())
	}
	if got := read(); !strings.Contains(got, "no regression") {
		t.Errorf("self-compare output lacks clean verdict:\n%s", got)
	}

	// Inject a synthetic regression: double the total and triple every
	// phase, then the compare must fail and blame a phase.
	r.TotalWallMS *= 2
	for si := range r.Sweeps {
		r.Sweeps[si].WallMS *= 2
		for ci := range r.Sweeps[si].CellTimes {
			for pi := range r.Sweeps[si].CellTimes[ci].Phases {
				r.Sweeps[si].CellTimes[ci].Phases[pi].TotalUS *= 3
			}
		}
	}
	bad, err := r.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	badPath := filepath.Join(dir, "bench.regressed.json")
	if err := os.WriteFile(badPath, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	out2, read2 := captureOut(t)
	if err := run([]string{"-compare", rep, badPath}, out2); err == nil {
		t.Fatalf("synthetic regression not flagged:\n%s", read2())
	}
	if got := read2(); !strings.Contains(got, "REGRESSED") {
		t.Errorf("regression table lacks REGRESSED marker:\n%s", got)
	}
}

// TestBenchSchemaV1 pins the downgrade path: -bench-schema v1 writes a
// v1 report with no phase breakdowns, and bad schema values are
// rejected.
func TestBenchSchemaV1(t *testing.T) {
	rep := filepath.Join(t.TempDir(), "bench.v1.json")
	if err := run(benchArgs("-bench-json", rep, "-bench-schema", "v1"), devNull(t)); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(rep)
	if err != nil {
		t.Fatal(err)
	}
	r, err := experiments.ReadBenchReport(data)
	if err != nil {
		t.Fatal(err)
	}
	if r.Schema != experiments.BenchSchemaV1 {
		t.Errorf("schema = %q, want %q", r.Schema, experiments.BenchSchemaV1)
	}
	for _, sw := range r.Sweeps {
		for _, ct := range sw.CellTimes {
			if ct.Phases != nil {
				t.Fatalf("v1 report still carries phases in cell %s", ct.Label)
			}
		}
	}
	if err := run(benchArgs("-bench-json", rep, "-bench-schema", "v3"), devNull(t)); err == nil {
		t.Error("bogus -bench-schema accepted")
	}
}

// TestCompareArgErrors pins the compare-mode CLI contract.
func TestCompareArgErrors(t *testing.T) {
	if err := run([]string{"-compare", "only-one.json"}, devNull(t)); err == nil {
		t.Error("-compare with one path accepted")
	}
	if err := run([]string{"-compare", "nope.json", "nope2.json"}, devNull(t)); err == nil {
		t.Error("-compare with missing files accepted")
	}
}

// TestPhasesFlag: -phases must print the aggregate phase table after the
// sweeps, including the hot scheduling phases.
func TestPhasesFlag(t *testing.T) {
	out, read := captureOut(t)
	if err := run(benchArgs("-phases"), out); err != nil {
		t.Fatal(err)
	}
	got := read()
	if !strings.Contains(got, "# Aggregate scheduler phases") {
		t.Fatalf("-phases output lacks the aggregate table:\n%.400s", got)
	}
	for _, phase := range []string{"schedule", "event-pump", "epoch-policy"} {
		if !strings.Contains(got, phase) {
			t.Errorf("-phases table missing phase %q", phase)
		}
	}
}

func TestTableIIText(t *testing.T) {
	out := tableII()
	for _, want := range []string{"delta", "0.35", "omega3", "Table II"} {
		if !strings.Contains(out, want) {
			t.Errorf("tableII missing %q", want)
		}
	}
}
