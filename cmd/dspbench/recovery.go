package main

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync/atomic"

	"dsp/internal/recover/crashtest"
)

// runRecoverySmoke exercises the crash-recovery path end to end: it runs
// the chaos+overload stress cell (experiments.RecoveryCellConfig) to
// completion for reference artifacts, then kills it at `points` seeded
// event boundaries, recovers each from the on-disk snapshot/WAL pair and
// checks the recovered Result, decision audit and blame decomposition
// byte-for-byte against the reference. CI runs this as the kill-anywhere
// smoke; the full 200-point sweep lives in internal/recover/crashtest.
//
// On success the working directory is removed. On failure it is kept for
// post-mortem — moved to ./recovery-smoke-failed when possible (CI
// uploads that path as an artifact), otherwise left in place — so the
// snapshots, WALs and torn audit files behind the mismatch survive.
func runRecoverySmoke(out *os.File, seed int64, points int, interrupted *atomic.Bool) (err error) {
	dir, mkErr := os.MkdirTemp("", "dsp-recovery-smoke-*")
	if mkErr != nil {
		return mkErr
	}
	defer func() {
		if err == nil {
			os.RemoveAll(dir)
			return
		}
		keep := "recovery-smoke-failed"
		os.RemoveAll(keep)
		if mvErr := os.Rename(dir, keep); mvErr == nil {
			fmt.Fprintf(os.Stderr, "dspbench: recovery smoke artifacts kept in %s\n", keep)
		} else {
			fmt.Fprintf(os.Stderr, "dspbench: recovery smoke artifacts kept in %s\n", dir)
		}
	}()

	base, err := crashtest.RunUninterrupted(crashtest.Options{Dir: filepath.Join(dir, "base"), Seed: seed})
	if err != nil {
		return fmt.Errorf("recovery smoke: reference run: %w", err)
	}
	fmt.Fprintf(out, "# Recovery smoke (seed %d): %d events, %d snapshots; %d kill points\n",
		seed, base.Events, base.Snapshots, points)

	rng := rand.New(rand.NewSource(seed))
	resumes := 0
	for i := 0; i < points && !interrupted.Load(); i++ {
		killN := 1 + rng.Intn(base.Events-1)
		got, kerr := crashtest.RunKilledAndRecover(crashtest.Options{Dir: filepath.Join(dir, fmt.Sprintf("kill-%d", i)), Seed: seed}, killN)
		if kerr != nil {
			return fmt.Errorf("recovery smoke: kill at event %d: %w", killN, kerr)
		}
		switch {
		case !bytes.Equal(got.Result, base.Result):
			return fmt.Errorf("recovery smoke: kill at event %d: recovered Result differs from the uninterrupted run", killN)
		case !bytes.Equal(got.Audit, base.Audit):
			return fmt.Errorf("recovery smoke: kill at event %d: recovered audit differs (%d vs %d bytes)", killN, len(got.Audit), len(base.Audit))
		case !bytes.Equal(got.Blame(), base.Blame()):
			return fmt.Errorf("recovery smoke: kill at event %d: blame decomposition differs", killN)
		}
		mode := "fresh restart"
		if got.Resumed {
			mode = fmt.Sprintf("resumed, %d decisions replayed", got.Replayed)
			resumes++
		}
		fmt.Fprintf(out, "kill@%-7d %-35s artifacts identical\n", killN, mode)
	}
	fmt.Fprintf(out, "recovery smoke passed: %d/%d points byte-identical (%d snapshot resumes)\n",
		points, points, resumes)
	return nil
}
