// Command dspbench regenerates the paper's evaluation figures as
// plain-text tables (the series behind Figures 5–8 and the Table II
// parameter listing), and doubles as the perf-regression harness over
// the machine-readable reports it writes.
//
// Usage:
//
//	dspbench [flags]
//	dspbench -compare [compare flags] OLD.json NEW.json
//
//	-fig LIST    comma-separated figures to run: 5a,5b,6,7,8, table2 or "all";
//	             "resilience" runs the degradation-under-faults sweep,
//	             "overload" the graceful-degradation-under-overload sweep,
//	             and "attrib" the completion-time blame decomposition
//	             (none is part of "all" — they are this reproduction's
//	             extensions, not paper figures)
//	-scale F     workload task scale (default 0.03; 1.0 = paper size)
//	-seed N      sweep seed
//	-csv         emit CSV instead of aligned text
//	-trace FILE  write Chrome trace-event JSON for every sweep cell
//	             (includes a per-cell scheduler-phase summary row)
//	-audit FILE  write JSONL decision audit (run markers separate cells)
//	-series FILE write per-epoch time-series CSV (one section per cell)
//	-pprof ADDR  serve /debug/pprof on ADDR (e.g. :6060)
//	-listen ADDR serve live telemetry (/metrics, /healthz, /snapshot)
//	             while the sweep runs, including the aggregate
//	             dsp_phase_seconds quantiles
//	-workers N   concurrent sweep cells (default GOMAXPROCS; output is
//	             byte-identical for every N; -audit/-trace/-series force 1)
//	-phases      print the aggregate scheduler-phase table after the sweeps
//	-bench-json FILE
//	             write a machine-readable sweep benchmark report
//	             (schema dsp-bench-sweep/v2: wall time, cells/sec,
//	             per-cell µs and per-cell phase breakdowns; the report
//	             is round-trip validated before it is written)
//	-bench-schema v1|v2
//	             report schema for -bench-json (default v2; v1 drops the
//	             phase breakdowns for consumers pinned to the old format)
//
// Compare mode diffs two -bench-json reports and exits non-zero when the
// new one regressed — per-phase aggregate totals beyond -compare-phase-tol
// (default ±20%), or total wall time beyond -compare-total-tol (default
// ±10%), ignoring phases under -compare-min-us (default 1000µs) in both
// reports. The table is blame-ordered: the first row is where the
// regression's time actually went. Tolerance flags must precede the two
// report paths (flag parsing stops at the first positional argument).
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync/atomic"
	"syscall"

	"dsp/internal/experiments"
	"dsp/internal/metrics"
	"dsp/internal/obs"
	"dsp/internal/prof"
	"dsp/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dspbench:", err)
		if errors.Is(err, sim.ErrInterrupted) {
			os.Exit(130)
		}
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("dspbench", flag.ContinueOnError)
	figs := fs.String("fig", "all", "figures to run: 5a,5b,6,7,8,table2,resilience,overload,attrib, all, or none")
	scale := fs.Float64("scale", 0.03, "workload task scale (1.0 = paper-size jobs)")
	seed := fs.Int64("seed", 0, "sweep seed (0 = default)")
	csv := fs.Bool("csv", false, "emit CSV instead of aligned text")
	sens := fs.String("sensitivity", "", "comma-separated DSP parameters to sweep: gamma,delta,rho,omega1,epoch")
	sensJobs := fs.Int("sensitivity-jobs", 150, "job count for sensitivity sweeps")
	fairness := fs.Bool("fairness", false, "also report per-method slowdown fairness (Jain index)")
	faultPcts := fs.String("faults", "0,5,10,20,30", "fault levels (%% flaky nodes) for -fig resilience, comma-separated")
	resJobs := fs.Int("resilience-jobs", 150, "job count for the resilience sweep")
	faultSeed := fs.Int64("fault-seed", 0, "fault-plan seed for the resilience sweep (0 = default)")
	overMults := fs.String("overload-mults", "1,2,4,8", "arrival multipliers for -fig overload, comma-separated")
	overJobs := fs.Int("overload-jobs", 150, "job count for the overload sweep")
	overBase := fs.Float64("overload-base", 0, "base arrival rate in jobs/min for -fig overload (0 = default)")
	overPending := fs.Int("overload-pending", 0, "ladder arm's admission bound on pending tasks (0 = default)")
	tracePath := fs.String("trace", "", "write Chrome trace-event JSON to FILE (runs laid out back-to-back)")
	auditPath := fs.String("audit", "", "write JSONL decision audit to FILE (run markers separate cells)")
	seriesPath := fs.String("series", "", "write per-epoch time-series CSV to FILE (one section per cell)")
	pprofAddr := fs.String("pprof", "", "serve /debug/pprof on ADDR (e.g. :6060)")
	listenAddr := fs.String("listen", "", "serve live telemetry (/metrics, /healthz, /snapshot) on ADDR")
	attribJobs := fs.String("attrib-jobs", "", "job counts for -fig attrib, comma-separated (default: the Figure 6 x-axis)")
	workers := fs.Int("workers", 0, "concurrent sweep cells (0 = GOMAXPROCS; output is byte-identical for every value)")
	phases := fs.Bool("phases", false, "print the aggregate scheduler-phase table after the sweeps")
	recoverySmoke := fs.Int("recovery-smoke", 0, "kill/recover the crash-recovery stress cell at N seeded points and verify byte-identical artifacts (0 disables)")
	benchJSON := fs.String("bench-json", "", "write a dsp-bench-sweep JSON benchmark report to FILE")
	benchSchema := fs.String("bench-schema", "v2", "schema for -bench-json: v2 (phase breakdowns) or v1 (wall times only)")
	compare := fs.Bool("compare", false, "compare mode: diff two -bench-json reports (OLD.json NEW.json) and exit non-zero on regression")
	phaseTol := fs.Float64("compare-phase-tol", 0, "allowed per-phase total growth fraction (0 = default 0.20)")
	totalTol := fs.Float64("compare-total-tol", 0, "allowed total wall-time growth fraction (0 = default 0.10)")
	minPhaseUS := fs.Float64("compare-min-us", 0, "phase noise floor in µs: phases under this in both reports are never flagged (0 = default 1000)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *compare {
		rest := fs.Args()
		if len(rest) != 2 {
			return fmt.Errorf("-compare needs exactly two report paths: OLD.json NEW.json (got %d args)", len(rest))
		}
		return runCompare(rest[0], rest[1], experiments.CompareThresholds{
			PhaseFrac: *phaseTol, TotalFrac: *totalTol, MinPhaseUS: *minPhaseUS,
		}, out)
	}
	if *benchSchema != "v1" && *benchSchema != "v2" {
		return fmt.Errorf("-bench-schema must be v1 or v2, got %q", *benchSchema)
	}

	if addr, err := obs.StartPprof(*pprofAddr); err != nil {
		return err
	} else if addr != "" {
		fmt.Fprintln(os.Stderr, "pprof listening on "+addr)
	}

	// Graceful shutdown: the first SIGINT/SIGTERM finishes the sweep in
	// flight, then skips the rest — the artifacts and the bench report
	// cover what completed, and dspbench exits 130. A second signal
	// aborts immediately.
	var interrupted atomic.Bool
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	go func() {
		<-sigc
		interrupted.Store(true)
		fmt.Fprintln(os.Stderr, "dspbench: interrupt: finishing the sweep in flight, skipping the rest (signal again to abort)")
		<-sigc
		fmt.Fprintln(os.Stderr, "dspbench: aborted")
		os.Exit(1)
	}()
	ok := func() bool { return !interrupted.Load() }

	o := experiments.DefaultOptions()
	o.Scale = *scale
	if *seed != 0 {
		o.Seed = *seed
	}
	// The aggregate phase timer feeds the -phases table and the telemetry
	// server's dsp_phase_* metrics; per-cell snapshots merge into it as
	// the sweeps progress.
	var agg *prof.Timer
	if *phases || *listenAddr != "" {
		agg = prof.New()
		o.Prof = agg
	}
	sink, err := obs.Open(obs.Options{
		TracePath:  *tracePath,
		AuditPath:  *auditPath,
		SeriesPath: *seriesPath,
		ListenAddr: *listenAddr,
		Prof:       agg,
	})
	if err != nil {
		return err
	}
	defer sink.Close()
	if sink.Telemetry != nil {
		fmt.Fprintf(os.Stderr, "telemetry listening on %s\n", sink.Telemetry.Addr())
	}
	if sink.Enabled() {
		o.Observer = sink
	}
	o.Workers = *workers
	var stats *experiments.SweepStats
	if *benchJSON != "" {
		stats = &experiments.SweepStats{}
		o.Stats = stats
	}

	want := map[string]bool{}
	for _, f := range strings.Split(*figs, ",") {
		want[strings.TrimSpace(strings.ToLower(f))] = true
	}
	all := want["all"]

	emit := func(t *metrics.Table) {
		if *csv {
			fmt.Fprintf(out, "# %s\n%s\n", t.Title, t.CSV())
		} else {
			fmt.Fprintf(out, "%s\n", t.Render())
		}
	}

	if (all || want["table2"]) && ok() {
		fmt.Fprintln(out, tableII())
	}
	if (all || want["5a"]) && ok() {
		t, err := experiments.Fig5(experiments.Real, o)
		if err != nil {
			return err
		}
		emit(t)
	}
	if (all || want["5b"]) && ok() {
		t, err := experiments.Fig5(experiments.EC2, o)
		if err != nil {
			return err
		}
		emit(t)
	}
	if (all || want["6"]) && ok() {
		f, err := experiments.Fig6(experiments.Real, o)
		if err != nil {
			return err
		}
		for _, t := range f.All() {
			emit(t)
		}
	}
	if (all || want["7"]) && ok() {
		f, err := experiments.Fig6(experiments.EC2, o)
		if err != nil {
			return err
		}
		for _, t := range f.All() {
			emit(t)
		}
	}
	if (all || want["8"]) && ok() {
		f, err := experiments.Fig8(o)
		if err != nil {
			return err
		}
		emit(f.Makespan)
		emit(f.Throughput)
	}
	if want["resilience"] && ok() {
		ro := experiments.DefaultResilienceOptions()
		ro.Options = o
		ro.Jobs = *resJobs
		if *faultSeed != 0 {
			ro.FaultSeed = *faultSeed
		}
		ro.FaultPercents = ro.FaultPercents[:0]
		for _, p := range strings.Split(*faultPcts, ",") {
			var pct int
			if _, err := fmt.Sscanf(strings.TrimSpace(p), "%d", &pct); err != nil {
				return fmt.Errorf("bad -faults entry %q: %w", p, err)
			}
			ro.FaultPercents = append(ro.FaultPercents, pct)
		}
		f, err := experiments.Resilience(experiments.Real, ro)
		if err != nil {
			return err
		}
		for _, t := range f.All() {
			emit(t)
		}
	}
	if want["overload"] && ok() {
		oo := experiments.DefaultOverloadOptions()
		oo.Options = o
		oo.Jobs = *overJobs
		if *overBase > 0 {
			oo.BaseArrivalPerMin = *overBase
		}
		if *overPending > 0 {
			oo.MaxPendingTasks = *overPending
		}
		oo.Multipliers = oo.Multipliers[:0]
		for _, m := range strings.Split(*overMults, ",") {
			var mult float64
			if _, err := fmt.Sscanf(strings.TrimSpace(m), "%g", &mult); err != nil {
				return fmt.Errorf("bad -overload-mults entry %q: %w", m, err)
			}
			oo.Multipliers = append(oo.Multipliers, mult)
		}
		f, err := experiments.Overload(experiments.Real, oo)
		if err != nil {
			return err
		}
		for _, t := range f.All() {
			emit(t)
		}
	}
	if want["attrib"] && ok() {
		ao := experiments.DefaultAttributionOptions()
		ao.Options = o
		if *attribJobs != "" {
			ao.JobCounts = ao.JobCounts[:0]
			for _, j := range strings.Split(*attribJobs, ",") {
				var n int
				if _, err := fmt.Sscanf(strings.TrimSpace(j), "%d", &n); err != nil {
					return fmt.Errorf("bad -attrib-jobs entry %q: %w", j, err)
				}
				ao.JobCounts = append(ao.JobCounts, n)
			}
		}
		f, err := experiments.Attribution(experiments.Real, ao)
		if err != nil {
			return err
		}
		for _, t := range f.All() {
			emit(t)
		}
	}
	if *sens != "" && ok() {
		for _, p := range strings.Split(*sens, ",") {
			param := experiments.SensitivityParam(strings.TrimSpace(strings.ToLower(p)))
			t, err := experiments.Sensitivity(param, nil, experiments.Real, *sensJobs, o)
			if err != nil {
				return err
			}
			emit(t)
		}
	}
	if *fairness && ok() {
		t, err := experiments.Fairness(experiments.Real, *sensJobs, o)
		if err != nil {
			return err
		}
		emit(t)
	}
	if *recoverySmoke > 0 && ok() {
		if err := runRecoverySmoke(out, o.Seed, *recoverySmoke, &interrupted); err != nil {
			return err
		}
	}
	if agg != nil {
		snap := agg.Snapshot()
		fmt.Fprintf(out, "# Aggregate scheduler phases (all cells)\n%s\n", prof.Table(snap.Breakdown()))
	}
	if stats != nil {
		report := &experiments.BenchReport{
			Schema:      experiments.BenchSchemaV2,
			Workers:     *workers,
			GoMaxProcs:  runtime.GOMAXPROCS(0),
			NumCPU:      runtime.NumCPU(),
			Scale:       o.Scale,
			Seed:        o.Seed,
			Sweeps:      stats.Sweeps,
			TotalWallMS: stats.TotalWallMS(),
		}
		if *benchSchema == "v1" {
			report.StripToV1()
		}
		data, err := report.Marshal()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*benchJSON, data, 0o644); err != nil {
			return fmt.Errorf("write -bench-json: %w", err)
		}
		fmt.Fprintf(os.Stderr, "bench report written to %s (schema %s, %d sweeps, %.0f ms total)\n",
			*benchJSON, report.Schema, len(stats.Sweeps), stats.TotalWallMS())
	}
	if interrupted.Load() {
		// The artifacts above cover only the sweeps that completed; the
		// distinct exit status tells wrappers the report is partial.
		return fmt.Errorf("sweeps skipped after signal: %w", sim.ErrInterrupted)
	}
	return nil
}

// runCompare loads two bench reports, renders the blame-ordered delta
// table and returns an error (→ non-zero exit) when the new report
// regressed past the thresholds.
func runCompare(oldPath, newPath string, th experiments.CompareThresholds, out *os.File) error {
	load := func(path string) (*experiments.BenchReport, error) {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		r, err := experiments.ReadBenchReport(data)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return r, nil
	}
	oldRep, err := load(oldPath)
	if err != nil {
		return err
	}
	newRep, err := load(newPath)
	if err != nil {
		return err
	}
	res, err := experiments.CompareBench(oldRep, newRep, th)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "# dspbench compare: %s -> %s\n%s", oldPath, newPath, res.Render())
	if res.Regressed() {
		return fmt.Errorf("performance regression detected (see table above)")
	}
	fmt.Fprintln(out, "no regression: all deltas within thresholds")
	return nil
}

// tableII renders the paper's Table II parameter settings.
func tableII() string {
	rows := [][3]string{
		{"n", "# of servers", "30-50"},
		{"h", "# of jobs", "150-2500"},
		{"m", "# of tasks of a job", "100-2000"},
		{"delta", "minimum required ratio", "0.35"},
		{"tau", "waiting-time threshold (starvation)", "see preempt.Params.Tau"},
		{"theta1", "weight for CPU size", "0.5"},
		{"theta2", "weight for Mem size", "0.5"},
		{"alpha", "weight for waiting time (SRPT)", "0.5"},
		{"beta", "weight for remaining time (SRPT)", "1"},
		{"gamma", "level coefficient in (0,1)", "0.5"},
		{"omega1", "weight for task's remaining time", "0.5"},
		{"omega2", "weight for task's waiting time", "0.3"},
		{"omega3", "weight for task's allowable waiting time", "0.2"},
	}
	var b strings.Builder
	b.WriteString("# Table II — parameter settings\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %-45s %s\n", r[0], r[1], r[2])
	}
	return b.String()
}
