// Command dspexplain answers "where did this job's time go" from a JSONL
// audit log alone — no simulator needed. It reads the "span" and
// "job-blame" lines a run with -audit produced, independently recomputes
// every job's blame decomposition from the raw spans via the same
// attrib.Decompose the engine used, cross-checks it against the recorded
// vector, and prints blame tables.
//
// Usage:
//
//	dspexplain -audit run.jsonl             per-run aggregate + top jobs
//	dspexplain -audit run.jsonl -job j17    one job's critical-path breakdown
//	dspexplain -audit run.jsonl -top 20     widen the top-jobs table
//	dspexplain -audit a.jsonl -diff b.jsonl per-cause comparison of two logs
//
// Every invocation re-derives the attribution offline and fails loudly if
// the recomputation disagrees with what the engine logged, so a passing
// run doubles as an integrity check of the audit artifact.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"dsp/internal/attrib"
	"dsp/internal/dag"
	"dsp/internal/units"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dspexplain:", err)
		os.Exit(1)
	}
}

// pathStep is one recorded critical-path window with its blame split.
type pathStep struct {
	Task  int          `json:"task"`
	Start int64        `json:"start"`
	End   int64        `json:"end"`
	Blame attrib.Blame `json:"blame"`
}

// jobRecord is one parsed "job-blame" line.
type jobRecord struct {
	Run        string
	Job        int          `json:"job"`
	Arrival    int64        `json:"arrival"`
	Eligible   int64        `json:"eligible"`
	Done       int64        `json:"done"`
	Completion int64        `json:"completion"`
	Blame      attrib.Blame `json:"blame"`
	Path       []pathStep   `json:"path"`
}

// auditLog is the attribution-relevant content of one JSONL audit file.
type auditLog struct {
	// Spans maps "J3.T7"-style task keys to their closed spans, across
	// all runs in the file (task keys restart per run; spans are kept per
	// run label to disambiguate).
	Spans map[string]map[string][]attrib.Span // run label -> task key -> spans
	Jobs  []jobRecord
}

// readAudit parses the span and job-blame lines of a JSONL audit stream;
// all other event lines are skipped.
func readAudit(r io.Reader) (*auditLog, error) {
	log := &auditLog{Spans: map[string]map[string][]attrib.Span{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	run := ""
	lineNo := 0
	for sc.Scan() {
		lineNo++
		var probe struct {
			Ev    string `json:"ev"`
			Label string `json:"label"`
		}
		if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		switch probe.Ev {
		case "run":
			run = probe.Label
		case "span":
			var line struct {
				Task  string `json:"task"`
				Kind  string `json:"kind"`
				Cause string `json:"cause"`
				Node  int    `json:"node"`
				Start int64  `json:"start"`
				End   int64  `json:"end"`
			}
			if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			cause, ok := attrib.ParseSpanCause(line.Kind, line.Cause)
			if !ok {
				return nil, fmt.Errorf("line %d: unknown span kind %q", lineNo, line.Kind)
			}
			if log.Spans[run] == nil {
				log.Spans[run] = map[string][]attrib.Span{}
			}
			log.Spans[run][line.Task] = append(log.Spans[run][line.Task], attrib.Span{
				Cause: cause,
				Start: units.Time(line.Start),
				End:   units.Time(line.End),
				Node:  line.Node,
			})
		case "job-blame":
			var rec jobRecord
			if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			rec.Run = run
			log.Jobs = append(log.Jobs, rec)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return log, nil
}

// recompute re-derives one job's blame from the raw spans — the same
// windows, the same Decompose — and returns it for cross-checking.
func (l *auditLog) recompute(rec jobRecord) (attrib.Blame, []attrib.Step) {
	windows := make([]attrib.Window, 0, len(rec.Path))
	for _, st := range rec.Path {
		windows = append(windows, attrib.Window{
			Task:  dag.TaskID(st.Task),
			Start: units.Time(st.Start),
			End:   units.Time(st.End),
		})
	}
	spans := l.Spans[rec.Run]
	return attrib.Decompose(units.Time(rec.Eligible), windows, func(id dag.TaskID) []attrib.Span {
		return spans[fmt.Sprintf("J%d.T%d", rec.Job, int(id))]
	})
}

// verify recomputes every job and returns the mismatches.
func (l *auditLog) verify() []string {
	var bad []string
	for _, rec := range l.Jobs {
		got, _ := l.recompute(rec)
		if got != rec.Blame {
			bad = append(bad, fmt.Sprintf("job %d (run %q): recomputed %v != recorded %v",
				rec.Job, rec.Run, got, rec.Blame))
		}
	}
	return bad
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("dspexplain", flag.ContinueOnError)
	auditPath := fs.String("audit", "", "JSONL audit log to explain (required)")
	jobFlag := fs.String("job", "", "show one job's critical-path breakdown (j17, J17 or 17)")
	top := fs.Int("top", 10, "how many jobs to list in the blame table")
	diffPath := fs.String("diff", "", "second audit log: compare per-cause means against -audit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *auditPath == "" {
		return fmt.Errorf("-audit FILE is required")
	}
	log, err := readFile(*auditPath)
	if err != nil {
		return err
	}
	if len(log.Jobs) == 0 {
		return fmt.Errorf("%s has no job-blame lines (was the run recorded with -audit on a build with attribution?)", *auditPath)
	}
	if bad := log.verify(); len(bad) > 0 {
		for _, b := range bad {
			fmt.Fprintln(os.Stderr, "dspexplain: VERIFY FAILED:", b)
		}
		return fmt.Errorf("%d of %d jobs failed offline recomputation", len(bad), len(log.Jobs))
	}
	fmt.Fprintf(out, "%s: %d jobs, offline recomputation matches recorded blame for all\n\n",
		*auditPath, len(log.Jobs))

	if *diffPath != "" {
		other, err := readFile(*diffPath)
		if err != nil {
			return err
		}
		if bad := other.verify(); len(bad) > 0 {
			return fmt.Errorf("%s: %d jobs failed offline recomputation", *diffPath, len(bad))
		}
		printDiff(out, *auditPath, log, *diffPath, other)
		return nil
	}
	if *jobFlag != "" {
		id, err := parseJobID(*jobFlag)
		if err != nil {
			return err
		}
		return printJob(out, log, id)
	}
	printSummary(out, log, *top)
	return nil
}

func readFile(path string) (*auditLog, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	log, err := readAudit(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return log, nil
}

// parseJobID accepts "17", "j17" or "J17".
func parseJobID(s string) (int, error) {
	t := strings.TrimPrefix(strings.TrimPrefix(s, "j"), "J")
	id, err := strconv.Atoi(t)
	if err != nil {
		return 0, fmt.Errorf("bad -job %q (want j17, J17 or 17)", s)
	}
	return id, nil
}

// aggregate sums blame over jobs and returns the total with the count.
func aggregate(jobs []jobRecord) (attrib.Blame, int) {
	var b attrib.Blame
	for _, rec := range jobs {
		b.Merge(rec.Blame)
	}
	return b, len(jobs)
}

// printSummary renders the aggregate blame split and the top-K jobs by
// completion time with their dominant causes.
func printSummary(out io.Writer, log *auditLog, top int) {
	agg, n := aggregate(log.Jobs)
	total := agg.Total()
	fmt.Fprintf(out, "aggregate blame (%d jobs):\n", n)
	for _, c := range attrib.Causes() {
		if agg[c] == 0 {
			continue
		}
		fmt.Fprintf(out, "  %-16s %12.3fs  mean %10.3fs  %5.1f%%\n",
			c.String(), agg[c].Seconds(), agg[c].Seconds()/float64(n),
			100*float64(agg[c])/float64(total))
	}

	jobs := append([]jobRecord(nil), log.Jobs...)
	sort.Slice(jobs, func(i, k int) bool {
		if jobs[i].Completion != jobs[k].Completion {
			return jobs[i].Completion > jobs[k].Completion
		}
		return jobs[i].Job < jobs[k].Job
	})
	if top > len(jobs) {
		top = len(jobs)
	}
	fmt.Fprintf(out, "\ntop %d jobs by completion time:\n", top)
	fmt.Fprintf(out, "  %-6s %-14s %-16s %s\n", "job", "completion", "dominant cause", "share")
	for _, rec := range jobs[:top] {
		dom := rec.Blame.Dominant()
		share := 0.0
		if rec.Completion > 0 {
			share = 100 * float64(rec.Blame[dom]) / float64(rec.Completion)
		}
		fmt.Fprintf(out, "  j%-5d %-14v %-16s %5.1f%%\n",
			rec.Job, units.Time(rec.Completion), dom, share)
	}
}

// printJob renders one job's critical-path breakdown, step by step.
func printJob(out io.Writer, log *auditLog, id int) error {
	for _, rec := range log.Jobs {
		if rec.Job != id {
			continue
		}
		fmt.Fprintf(out, "job j%d", rec.Job)
		if rec.Run != "" {
			fmt.Fprintf(out, " (run %q)", rec.Run)
		}
		fmt.Fprintf(out, ": completion %v (arrival %v, eligible %v, done %v)\n",
			units.Time(rec.Completion), units.Time(rec.Arrival),
			units.Time(rec.Eligible), units.Time(rec.Done))
		fmt.Fprintf(out, "realized critical path (%d steps):\n", len(rec.Path))
		for i, st := range rec.Path {
			fmt.Fprintf(out, "  %2d. task T%-4d [%v, %v)\n", i+1, st.Task,
				units.Time(st.Start), units.Time(st.End))
			for _, c := range attrib.Causes() {
				if st.Blame[c] == 0 {
					continue
				}
				fmt.Fprintf(out, "        %-16s %v\n", c.String(), st.Blame[c])
			}
		}
		fmt.Fprintf(out, "blame:\n")
		for _, c := range attrib.Causes() {
			if rec.Blame[c] == 0 {
				continue
			}
			fmt.Fprintf(out, "  %-16s %-14v %5.1f%%\n", c.String(), rec.Blame[c],
				100*float64(rec.Blame[c])/float64(rec.Completion))
		}
		return nil
	}
	return fmt.Errorf("job %d has no job-blame record", id)
}

// printDiff compares two logs' per-cause mean blame.
func printDiff(out io.Writer, aPath string, a *auditLog, bPath string, b *auditLog) {
	aAgg, an := aggregate(a.Jobs)
	bAgg, bn := aggregate(b.Jobs)
	fmt.Fprintf(out, "per-cause mean blame, s/job:\n")
	fmt.Fprintf(out, "  %-16s %14s %14s %14s\n", "cause",
		trunc(aPath, 14)+" ("+strconv.Itoa(an)+")", trunc(bPath, 14)+" ("+strconv.Itoa(bn)+")", "delta")
	for _, c := range attrib.Causes() {
		am := aAgg[c].Seconds() / float64(an)
		bm := bAgg[c].Seconds() / float64(bn)
		if am == 0 && bm == 0 {
			continue
		}
		fmt.Fprintf(out, "  %-16s %14.3f %14.3f %+14.3f\n", c.String(), am, bm, bm-am)
	}
}

func trunc(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return "…" + s[len(s)-n+1:]
}
