package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dsp/internal/attrib"
	"dsp/internal/chaos"
	"dsp/internal/cluster"
	"dsp/internal/obs"
	"dsp/internal/preempt"
	"dsp/internal/sched"
	"dsp/internal/sim"
	"dsp/internal/trace"
	"dsp/internal/units"
)

// writeAuditedRun runs a chaotic simulation with both the JSONL audit
// writer and a live recorder attached, returning the audit path and the
// online attributions.
func writeAuditedRun(t *testing.T, dir string, jobs int, seed int64, faulty float64) (string, []attrib.JobAttribution) {
	t.Helper()
	spec := trace.DefaultSpec(jobs, seed)
	spec.TaskScale = 0.03
	w, err := trace.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	cl := cluster.RealCluster(6)
	cfg := sim.Config{
		Cluster:    cl,
		Scheduler:  sched.NewDSP(),
		Preemptor:  preempt.NewDSP(),
		Checkpoint: cluster.DefaultCheckpoint(),
		Epoch:      10 * units.Second,
		Period:     units.Minute,
	}
	if faulty > 0 {
		cs := chaos.DefaultSpec(cl.Len(), seed)
		cs.FaultyFraction = faulty
		plan, err := cs.Plan()
		if err != nil {
			t.Fatal(err)
		}
		cfg.Faults = plan
		cfg.Speculation = &sim.Speculation{}
		cfg.RetryBackoff = 2 * units.Second
	}
	path := filepath.Join(dir, fmt.Sprintf("audit-%d-%g.jsonl", seed, faulty))
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	aw := obs.NewAuditWriter(f)
	rec := attrib.NewRecorder()
	cfg.Observer = sim.Observers{aw, rec}
	if _, err := sim.Run(cfg, w); err != nil {
		t.Fatal(err)
	}
	if err := aw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path, rec.Jobs()
}

// TestOfflineMatchesOnline is the acceptance check: dspexplain's offline
// recomputation from the JSONL alone must reproduce the engine-side
// attribution for every job, spans and paths included.
func TestOfflineMatchesOnline(t *testing.T) {
	path, online := writeAuditedRun(t, t.TempDir(), 10, 3, 0.3)
	log, err := readFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(online) == 0 {
		t.Fatal("no jobs completed online")
	}
	if len(log.Jobs) != len(online) {
		t.Fatalf("audit has %d job-blame lines, online recorder has %d", len(log.Jobs), len(online))
	}
	if bad := log.verify(); len(bad) > 0 {
		t.Fatalf("offline recomputation mismatches:\n%s", strings.Join(bad, "\n"))
	}
	byID := map[int]attrib.JobAttribution{}
	for _, a := range online {
		byID[int(a.Job)] = a
	}
	for _, rec := range log.Jobs {
		want, ok := byID[rec.Job]
		if !ok {
			t.Errorf("job %d in audit but not online", rec.Job)
			continue
		}
		if rec.Blame != want.Blame {
			t.Errorf("job %d: audit blame %v, online %v", rec.Job, rec.Blame, want.Blame)
		}
		got, steps := log.recompute(rec)
		if got != want.Blame {
			t.Errorf("job %d: offline recompute %v, online %v", rec.Job, got, want.Blame)
		}
		if len(steps) != len(want.Path) {
			t.Errorf("job %d: %d offline steps, %d online", rec.Job, len(steps), len(want.Path))
		}
	}
}

// TestCLIOutputs exercises the flag surface end to end.
func TestCLIOutputs(t *testing.T) {
	dir := t.TempDir()
	path, online := writeAuditedRun(t, dir, 10, 3, 0.3)
	other, _ := writeAuditedRun(t, dir, 10, 3, 0)

	var buf bytes.Buffer
	if err := run([]string{"-audit", path, "-top", "3"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "offline recomputation matches") {
		t.Errorf("summary missing verification line:\n%s", out)
	}
	if !strings.Contains(out, "aggregate blame") || !strings.Contains(out, "service") {
		t.Errorf("summary missing blame table:\n%s", out)
	}
	if !strings.Contains(out, "top 3 jobs") {
		t.Errorf("summary missing top table:\n%s", out)
	}

	jobID := int(online[0].Job)
	for _, form := range []string{fmt.Sprintf("j%d", jobID), fmt.Sprintf("J%d", jobID), fmt.Sprintf("%d", jobID)} {
		buf.Reset()
		if err := run([]string{"-audit", path, "-job", form}, &buf); err != nil {
			t.Fatalf("-job %s: %v", form, err)
		}
		if !strings.Contains(buf.String(), "realized critical path") {
			t.Errorf("-job %s output missing path:\n%s", form, buf.String())
		}
	}

	buf.Reset()
	if err := run([]string{"-audit", path, "-diff", other}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "per-cause mean blame") || !strings.Contains(buf.String(), "delta") {
		t.Errorf("-diff output malformed:\n%s", buf.String())
	}

	if err := run([]string{"-audit", path, "-job", "99999"}, &bytes.Buffer{}); err == nil {
		t.Error("unknown job accepted")
	}
	if err := run([]string{}, &bytes.Buffer{}); err == nil {
		t.Error("missing -audit accepted")
	}
}

// TestVerifyCatchesTampering corrupts a recorded blame vector and
// asserts the offline check notices.
func TestVerifyCatchesTampering(t *testing.T) {
	path, _ := writeAuditedRun(t, t.TempDir(), 6, 1, 0)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Relabel every service span as overhead: the recorded blame no
	// longer matches what the spans imply.
	tampered := bytes.ReplaceAll(data, []byte(`"kind":"service"`), []byte(`"kind":"overhead"`))
	bad := filepath.Join(t.TempDir(), "tampered.jsonl")
	if err := os.WriteFile(bad, tampered, 0o644); err != nil {
		t.Fatal(err)
	}
	log, err := readFile(bad)
	if err != nil {
		t.Fatal(err)
	}
	if mism := log.verify(); len(mism) == 0 {
		t.Error("tampered audit passed verification")
	}
}
