package main

import "testing"

func TestRunSmoke(t *testing.T) {
	if err := run([]string{"-jobs", "6", "-scale", "0.02", "-preemptor", "none"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithPhases(t *testing.T) {
	if err := run([]string{"-jobs", "6", "-scale", "0.02", "-phases"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithPreemptor(t *testing.T) {
	if err := run([]string{"-jobs", "4", "-scale", "0.02", "-platform", "ec2", "-preemptor", "SRPT"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithFaults(t *testing.T) {
	if err := run([]string{"-jobs", "6", "-scale", "0.02", "-preemptor", "none",
		"-faults", "0.2", "-fault-seed", "7", "-speculate",
		"-retry-budget", "5", "-retry-backoff", "2", "-blacklist", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-platform", "mars"}); err == nil {
		t.Error("unknown platform accepted")
	}
	if err := run([]string{"-scheduler", "nope"}); err == nil {
		t.Error("unknown scheduler accepted")
	}
	if err := run([]string{"-preemptor", "nope"}); err == nil {
		t.Error("unknown preemptor accepted")
	}
	if err := run([]string{"-jobs", "0"}); err == nil {
		t.Error("zero jobs accepted")
	}
	if err := run([]string{"-bogusflag"}); err == nil {
		t.Error("bad flag accepted")
	}
}
