// Command dspsim runs a single cluster simulation and prints its metrics.
//
// Usage:
//
//	dspsim [flags]
//
//	-platform real|ec2     testbed profile (default real: 50 nodes)
//	-scheduler NAME        DSP | Aalo | TetrisW/SimDep | TetrisW/oDep
//	-preemptor NAME        none | DSP | DSPW/oPP | Amoeba | Natjam | SRPT
//	-jobs N                number of jobs (default 150)
//	-scale F               workload task scale (default 0.03)
//	-seed N                workload seed (default 1)
//	-trace FILE            write Chrome trace-event JSON (Perfetto)
//	-audit FILE            write JSONL preemption-decision audit log
//	-series FILE           write per-epoch time-series CSV
//	-counters              print event counters after the run
//	-phases                print the scheduler-phase profile after the run
//	                       (exclusive time, count, p50/p95/p99/max per phase)
//	-pprof ADDR            serve /debug/pprof on ADDR (e.g. :6060)
//	-listen ADDR           serve live telemetry on ADDR (:0 for ephemeral):
//	                       Prometheus /metrics, /healthz, JSON /snapshot
//	                       (including the dsp_phase_seconds quantiles);
//	                       also prints a latency-attribution summary
//
// Resilience flags (see DESIGN.md, "Resilience subsystem"):
//
//	-faults F              fraction of flaky nodes (0 disables; stochastic
//	                       crash/straggler/task-fault plan via internal/chaos)
//	-fault-seed N          seed for the fault plan (default: workload seed)
//	-speculate             launch backup copies of stragglers on idle slots
//	-retry-budget N        attempts per task before terminal failure
//	                       (0 = default 10, negative = unlimited)
//	-retry-backoff SEC     base retry backoff in seconds (doubles per attempt)
//	-blacklist F           health-penalty threshold that blacklists a node
//	                       (0 disables; also makes the DSP scheduler risk-averse)
//
// Overload flags (see DESIGN.md, "Graceful degradation under overload"):
//
//	-solver-budget N       branch-and-bound node budget per exact ILP solve;
//	                       exhausted budgets fall down the degradation ladder
//	                       (anytime incumbent -> list -> FIFO) instead of
//	                       blocking (0 = default 20000)
//	-admission N           shed arriving jobs once the pending-task backlog
//	                       exceeds N, and shed deadline-infeasible jobs at
//	                       arrival (0 disables admission control)
//	-audit-invariants      re-check engine invariants at every scheduling
//	                       boundary, quarantining offending nodes/tasks
package main

import (
	"flag"
	"fmt"
	"os"

	"dsp/internal/attrib"
	"dsp/internal/chaos"
	"dsp/internal/cluster"
	"dsp/internal/experiments"
	"dsp/internal/obs"
	"dsp/internal/prof"
	"dsp/internal/sched"
	"dsp/internal/sim"
	"dsp/internal/trace"
	"dsp/internal/units"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dspsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dspsim", flag.ContinueOnError)
	platform := fs.String("platform", "real", "testbed profile: real (50 nodes) or ec2 (30 instances)")
	scheduler := fs.String("scheduler", "DSP", "offline scheduling method")
	preemptor := fs.String("preemptor", "DSP", "online preemption method, or 'none'")
	jobs := fs.Int("jobs", 150, "number of jobs")
	scale := fs.Float64("scale", 0.03, "workload task scale (1.0 = paper-size jobs)")
	load := fs.Float64("load", 1, "mean-task-size multiplier (load factor; the experiment harness uses 1/scale)")
	seed := fs.Int64("seed", 1, "workload seed")
	tracePath := fs.String("trace", "", "write Chrome trace-event JSON to FILE (open in Perfetto)")
	auditPath := fs.String("audit", "", "write JSONL preemption-decision audit log to FILE")
	seriesPath := fs.String("series", "", "write per-epoch time-series CSV to FILE")
	counters := fs.Bool("counters", false, "print event counters after the run")
	phases := fs.Bool("phases", false, "print the scheduler-phase profile after the run")
	pprofAddr := fs.String("pprof", "", "serve /debug/pprof on ADDR (e.g. :6060)")
	listenAddr := fs.String("listen", "", "serve live telemetry (/metrics, /healthz, /snapshot) on ADDR")
	faults := fs.Float64("faults", 0, "fraction of flaky nodes (0 disables fault injection)")
	faultSeed := fs.Int64("fault-seed", 0, "fault-plan seed (0 = workload seed)")
	speculate := fs.Bool("speculate", false, "launch backup copies of straggling tasks on idle slots")
	retryBudget := fs.Int("retry-budget", 0, "execution attempts per task before terminal failure (0 = default, negative = unlimited)")
	retryBackoff := fs.Float64("retry-backoff", 0, "base retry backoff in seconds (doubles per attempt)")
	blacklist := fs.Float64("blacklist", 0, "health-penalty threshold that blacklists a node (0 disables)")
	solverBudget := fs.Int("solver-budget", 0, "branch-and-bound node budget per exact ILP solve (0 = default)")
	admission := fs.Int("admission", 0, "pending-task backlog bound for admission control (0 disables)")
	auditInv := fs.Bool("audit-invariants", false, "re-check engine invariants every scheduling boundary")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if addr, err := obs.StartPprof(*pprofAddr); err != nil {
		return err
	} else if addr != "" {
		fmt.Fprintf(os.Stderr, "pprof listening on %s\n", addr)
	}

	var plat experiments.Platform
	switch *platform {
	case "real":
		plat = experiments.Real
	case "ec2":
		plat = experiments.EC2
	default:
		return fmt.Errorf("unknown platform %q", *platform)
	}

	s, err := experiments.NewScheduler(*scheduler)
	if err != nil {
		return err
	}
	if d, ok := s.(*sched.DSP); ok {
		if *blacklist > 0 {
			// A blacklist only helps if the offline scheduler honours it.
			d.RiskAversion = 0.5
		}
		d.ILPNodeBudget = *solverBudget
	} else if *solverBudget > 0 {
		return fmt.Errorf("-solver-budget applies to the DSP scheduler, not %q", *scheduler)
	}
	var pre sim.Preemptor
	cp := cluster.DefaultCheckpoint()
	if *preemptor != "none" {
		pre, cp, err = experiments.NewPreemptor(*preemptor)
		if err != nil {
			return err
		}
	}

	spec := trace.DefaultSpec(*jobs, *seed)
	spec.TaskScale = *scale
	spec.MeanTaskSizeMI *= *load
	w, err := trace.Generate(spec)
	if err != nil {
		return err
	}

	// The phase timer feeds the -phases table and, via the sink, the
	// telemetry server's dsp_phase_* metrics while the run is live.
	var tm *prof.Timer
	if *phases || *listenAddr != "" {
		tm = prof.New()
	}
	sink, err := obs.Open(obs.Options{
		TracePath:  *tracePath,
		AuditPath:  *auditPath,
		SeriesPath: *seriesPath,
		Counters:   *counters,
		ListenAddr: *listenAddr,
		Prof:       tm,
	})
	if err != nil {
		return err
	}
	if sink.Telemetry != nil {
		fmt.Fprintf(os.Stderr, "telemetry listening on %s\n", sink.Telemetry.Addr())
	}
	cfg := sim.Config{
		Cluster:            plat.Cluster(),
		Scheduler:          s,
		Preemptor:          pre,
		Checkpoint:         cp,
		Period:             5 * units.Minute,
		Epoch:              10 * units.Second,
		RetryBudget:        *retryBudget,
		RetryBackoff:       units.FromSeconds(*retryBackoff),
		BlacklistThreshold: *blacklist,
		AuditInvariants:    *auditInv,
		Prof:               tm,
	}
	if *admission > 0 {
		cfg.Admission = &sim.Admission{
			MaxPendingTasks: *admission,
			ShedInfeasible:  true,
			Margin:          1.5,
		}
	}
	if *speculate {
		cfg.Speculation = &sim.Speculation{}
	}
	if *faults > 0 {
		fseed := *faultSeed
		if fseed == 0 {
			fseed = *seed
		}
		cs := chaos.DefaultSpec(plat.Cluster().Len(), fseed)
		cs.FaultyFraction = *faults
		plan, err := cs.Plan()
		if err != nil {
			sink.Close()
			return err
		}
		cfg.Faults = plan
	}
	if sink.Enabled() {
		cfg.Observer = sink
	}
	res, err := sim.Run(cfg, w)
	if err != nil {
		sink.Close()
		return err
	}
	if err := sink.Close(); err != nil {
		return err
	}

	fmt.Printf("platform:            %s (%d nodes)\n", plat, plat.Cluster().Len())
	fmt.Printf("scheduler:           %s\n", s.Name())
	if pre != nil {
		fmt.Printf("preemptor:           %s (checkpoint=%v)\n", pre.Name(), cp.Enabled)
	} else {
		fmt.Printf("preemptor:           none\n")
	}
	fmt.Printf("jobs:                %d (scale %.3f, arrival %.2f jobs/min)\n", *jobs, *scale, w.ArrivalRate)
	fmt.Println()
	fmt.Printf("makespan:            %v\n", res.Makespan)
	fmt.Printf("tasks completed:     %d\n", res.TasksCompleted)
	fmt.Printf("throughput:          %.4f tasks/ms\n", res.TaskThroughputPerMs)
	fmt.Printf("jobs meeting ddl:    %d / %d\n", res.JobsMetDeadline, res.JobsCompleted)
	fmt.Printf("job throughput:      %.3f deadline-met jobs/min\n", res.JobThroughputPerMin)
	fmt.Printf("avg job waiting:     %v\n", res.AvgJobWait)
	fmt.Printf("avg task waiting:    %v\n", res.AvgTaskWait)
	fmt.Printf("preemptions:         %d\n", res.Preemptions)
	fmt.Printf("disorders:           %d\n", res.Disorders)
	if *faults > 0 || res.Failures > 0 || res.TaskFaults > 0 {
		fmt.Println()
		fmt.Printf("node failures:       %d (blacklistings %d)\n",
			res.Failures, res.Blacklistings)
		fmt.Printf("task faults:         %d (crash evictions %d)\n", res.TaskFaults, res.FailureEvictions)
		fmt.Printf("retries:             %d (terminal failures %d, jobs failed %d)\n",
			res.Retries, res.TerminalFailures, res.JobsFailed)
		fmt.Printf("speculations:        %d (won %d, cancelled %d)\n",
			res.Speculations, res.SpeculationWins, res.SpeculationCancels)
		fmt.Printf("goodput:             %.4f tasks/ms\n", res.GoodputPerMs)
		fmt.Printf("lost work:           %v (speculative waste %v)\n", res.LostWork, res.SpeculativeWaste)
	}
	if *admission > 0 || *auditInv || res.SolverDegradations > 0 || res.JobsShed > 0 {
		fmt.Println()
		fmt.Printf("jobs shed:           %d (peak pending tasks %d)\n", res.JobsShed, res.PeakPendingTasks)
		fmt.Printf("solver degradations: %d\n", res.SolverDegradations)
		fmt.Printf("invariant checks:    %d violations, %d quarantines\n",
			res.InvariantViolations, res.Quarantines)
	}
	if sink.Counters != nil {
		fmt.Printf("\nevent counters:\n%s", sink.Counters)
	}
	if *phases && tm != nil {
		snap := tm.Snapshot()
		fmt.Printf("\nscheduler phases (exclusive time):\n%s", prof.Table(snap.Breakdown()))
	}
	if sink.Attrib != nil {
		if blame, n := sink.Attrib.Aggregate(); n > 0 {
			fmt.Printf("\nlatency attribution (%d jobs, mean s/job):\n", n)
			for _, c := range attrib.Causes() {
				if blame[c] == 0 {
					continue
				}
				fmt.Printf("  %-16s %10.3f\n", c.String(), blame[c].Seconds()/float64(n))
			}
		}
	}
	for _, a := range []struct{ what, path string }{
		{"trace", *tracePath},
		{"audit", *auditPath},
		{"series", *seriesPath},
	} {
		if a.path != "" {
			fmt.Fprintf(os.Stderr, "%s written to %s\n", a.what, a.path)
		}
	}
	return nil
}
