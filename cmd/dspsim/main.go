// Command dspsim runs a single cluster simulation and prints its metrics.
//
// Usage:
//
//	dspsim [flags]
//
//	-platform real|ec2     testbed profile (default real: 50 nodes)
//	-scheduler NAME        DSP | Aalo | TetrisW/SimDep | TetrisW/oDep
//	-preemptor NAME        none | DSP | DSPW/oPP | Amoeba | Natjam | SRPT
//	-jobs N                number of jobs (default 150)
//	-scale F               workload task scale (default 0.03)
//	-seed N                workload seed (default 1)
//	-trace FILE            write Chrome trace-event JSON (Perfetto)
//	-audit FILE            write JSONL preemption-decision audit log
//	-series FILE           write per-epoch time-series CSV
//	-counters              print event counters after the run
//	-pprof ADDR            serve /debug/pprof on ADDR (e.g. :6060)
package main

import (
	"flag"
	"fmt"
	"os"

	"dsp/internal/cluster"
	"dsp/internal/experiments"
	"dsp/internal/obs"
	"dsp/internal/sim"
	"dsp/internal/trace"
	"dsp/internal/units"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dspsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dspsim", flag.ContinueOnError)
	platform := fs.String("platform", "real", "testbed profile: real (50 nodes) or ec2 (30 instances)")
	scheduler := fs.String("scheduler", "DSP", "offline scheduling method")
	preemptor := fs.String("preemptor", "DSP", "online preemption method, or 'none'")
	jobs := fs.Int("jobs", 150, "number of jobs")
	scale := fs.Float64("scale", 0.03, "workload task scale (1.0 = paper-size jobs)")
	load := fs.Float64("load", 1, "mean-task-size multiplier (load factor; the experiment harness uses 1/scale)")
	seed := fs.Int64("seed", 1, "workload seed")
	tracePath := fs.String("trace", "", "write Chrome trace-event JSON to FILE (open in Perfetto)")
	auditPath := fs.String("audit", "", "write JSONL preemption-decision audit log to FILE")
	seriesPath := fs.String("series", "", "write per-epoch time-series CSV to FILE")
	counters := fs.Bool("counters", false, "print event counters after the run")
	pprofAddr := fs.String("pprof", "", "serve /debug/pprof on ADDR (e.g. :6060)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if addr, err := obs.StartPprof(*pprofAddr); err != nil {
		return err
	} else if addr != "" {
		fmt.Fprintf(os.Stderr, "pprof listening on %s\n", addr)
	}

	var plat experiments.Platform
	switch *platform {
	case "real":
		plat = experiments.Real
	case "ec2":
		plat = experiments.EC2
	default:
		return fmt.Errorf("unknown platform %q", *platform)
	}

	s, err := experiments.NewScheduler(*scheduler)
	if err != nil {
		return err
	}
	var pre sim.Preemptor
	cp := cluster.DefaultCheckpoint()
	if *preemptor != "none" {
		pre, cp, err = experiments.NewPreemptor(*preemptor)
		if err != nil {
			return err
		}
	}

	spec := trace.DefaultSpec(*jobs, *seed)
	spec.TaskScale = *scale
	spec.MeanTaskSizeMI *= *load
	w, err := trace.Generate(spec)
	if err != nil {
		return err
	}

	sink, err := obs.Open(obs.Options{
		TracePath:  *tracePath,
		AuditPath:  *auditPath,
		SeriesPath: *seriesPath,
		Counters:   *counters,
	})
	if err != nil {
		return err
	}
	cfg := sim.Config{
		Cluster:    plat.Cluster(),
		Scheduler:  s,
		Preemptor:  pre,
		Checkpoint: cp,
		Period:     5 * units.Minute,
		Epoch:      10 * units.Second,
	}
	if sink.Enabled() {
		cfg.Observer = sink
	}
	res, err := sim.Run(cfg, w)
	if err != nil {
		sink.Close()
		return err
	}
	if err := sink.Close(); err != nil {
		return err
	}

	fmt.Printf("platform:            %s (%d nodes)\n", plat, plat.Cluster().Len())
	fmt.Printf("scheduler:           %s\n", s.Name())
	if pre != nil {
		fmt.Printf("preemptor:           %s (checkpoint=%v)\n", pre.Name(), cp.Enabled)
	} else {
		fmt.Printf("preemptor:           none\n")
	}
	fmt.Printf("jobs:                %d (scale %.3f, arrival %.2f jobs/min)\n", *jobs, *scale, w.ArrivalRate)
	fmt.Println()
	fmt.Printf("makespan:            %v\n", res.Makespan)
	fmt.Printf("tasks completed:     %d\n", res.TasksCompleted)
	fmt.Printf("throughput:          %.4f tasks/ms\n", res.TaskThroughputPerMs)
	fmt.Printf("jobs meeting ddl:    %d / %d\n", res.JobsMetDeadline, res.JobsCompleted)
	fmt.Printf("job throughput:      %.3f deadline-met jobs/min\n", res.JobThroughputPerMin)
	fmt.Printf("avg job waiting:     %v\n", res.AvgJobWait)
	fmt.Printf("avg task waiting:    %v\n", res.AvgTaskWait)
	fmt.Printf("preemptions:         %d\n", res.Preemptions)
	fmt.Printf("disorders:           %d\n", res.Disorders)
	if sink.Counters != nil {
		fmt.Printf("\nevent counters:\n%s", sink.Counters)
	}
	for _, a := range []struct{ what, path string }{
		{"trace", *tracePath},
		{"audit", *auditPath},
		{"series", *seriesPath},
	} {
		if a.path != "" {
			fmt.Fprintf(os.Stderr, "%s written to %s\n", a.what, a.path)
		}
	}
	return nil
}
