// Command dspsim runs a single cluster simulation and prints its metrics.
//
// Usage:
//
//	dspsim [flags]
//
//	-platform real|ec2     testbed profile (default real: 50 nodes)
//	-scheduler NAME        DSP | Aalo | TetrisW/SimDep | TetrisW/oDep
//	-preemptor NAME        none | DSP | DSPW/oPP | Amoeba | Natjam | SRPT
//	-jobs N                number of jobs (default 150)
//	-scale F               workload task scale (default 0.03)
//	-seed N                workload seed (default 1)
//	-trace FILE            write Chrome trace-event JSON (Perfetto)
//	-audit FILE            write JSONL preemption-decision audit log
//	-series FILE           write per-epoch time-series CSV
//	-counters              print event counters after the run
//	-phases                print the scheduler-phase profile after the run
//	                       (exclusive time, count, p50/p95/p99/max per phase)
//	-pprof ADDR            serve /debug/pprof on ADDR (e.g. :6060)
//	-listen ADDR           serve live telemetry on ADDR (:0 for ephemeral):
//	                       Prometheus /metrics, /healthz, JSON /snapshot
//	                       (including the dsp_phase_seconds quantiles);
//	                       also prints a latency-attribution summary
//
// Durability flags (see DESIGN.md, "Durability"):
//
//	-checkpoint-dir DIR    persist crash-recovery state under DIR: a
//	                       checksummed engine snapshot every K periods
//	                       plus a write-ahead log of decisions in between
//	-checkpoint-every K    snapshot cadence in scheduling periods (default 5)
//	-resume                resume from the newest snapshot in -checkpoint-dir
//	                       instead of starting fresh (flags must match the
//	                       interrupted run; the world fingerprint is checked)
//
// A first SIGINT/SIGTERM stops the run at the next event boundary: the
// sink artifacts (audit, trace, series) are flushed, a final snapshot is
// written when -checkpoint-dir is set, and dspsim exits with status 130.
// A second signal aborts immediately.
//
// Resilience flags (see DESIGN.md, "Resilience subsystem"):
//
//	-faults F              fraction of flaky nodes (0 disables; stochastic
//	                       crash/straggler/task-fault plan via internal/chaos)
//	-fault-seed N          seed for the fault plan (default: workload seed)
//	-speculate             launch backup copies of stragglers on idle slots
//	-retry-budget N        attempts per task before terminal failure
//	                       (0 = default 10, negative = unlimited)
//	-retry-backoff SEC     base retry backoff in seconds (doubles per attempt)
//	-blacklist F           health-penalty threshold that blacklists a node
//	                       (0 disables; also makes the DSP scheduler risk-averse)
//
// Overload flags (see DESIGN.md, "Graceful degradation under overload"):
//
//	-solver-budget N       branch-and-bound node budget per exact ILP solve;
//	                       exhausted budgets fall down the degradation ladder
//	                       (anytime incumbent -> list -> FIFO) instead of
//	                       blocking (0 = default 20000)
//	-admission N           shed arriving jobs once the pending-task backlog
//	                       exceeds N, and shed deadline-infeasible jobs at
//	                       arrival (0 disables admission control)
//	-audit-invariants      re-check engine invariants at every scheduling
//	                       boundary, quarantining offending nodes/tasks
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"

	"dsp/internal/attrib"
	"dsp/internal/chaos"
	"dsp/internal/cluster"
	"dsp/internal/experiments"
	"dsp/internal/obs"
	"dsp/internal/prof"
	"dsp/internal/recover"
	"dsp/internal/sched"
	"dsp/internal/sim"
	"dsp/internal/trace"
	"dsp/internal/units"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dspsim:", err)
		if errors.Is(err, sim.ErrInterrupted) {
			os.Exit(130)
		}
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dspsim", flag.ContinueOnError)
	platform := fs.String("platform", "real", "testbed profile: real (50 nodes) or ec2 (30 instances)")
	scheduler := fs.String("scheduler", "DSP", "offline scheduling method")
	preemptor := fs.String("preemptor", "DSP", "online preemption method, or 'none'")
	jobs := fs.Int("jobs", 150, "number of jobs")
	scale := fs.Float64("scale", 0.03, "workload task scale (1.0 = paper-size jobs)")
	load := fs.Float64("load", 1, "mean-task-size multiplier (load factor; the experiment harness uses 1/scale)")
	seed := fs.Int64("seed", 1, "workload seed")
	tracePath := fs.String("trace", "", "write Chrome trace-event JSON to FILE (open in Perfetto)")
	auditPath := fs.String("audit", "", "write JSONL preemption-decision audit log to FILE")
	seriesPath := fs.String("series", "", "write per-epoch time-series CSV to FILE")
	counters := fs.Bool("counters", false, "print event counters after the run")
	phases := fs.Bool("phases", false, "print the scheduler-phase profile after the run")
	pprofAddr := fs.String("pprof", "", "serve /debug/pprof on ADDR (e.g. :6060)")
	listenAddr := fs.String("listen", "", "serve live telemetry (/metrics, /healthz, /snapshot) on ADDR")
	faults := fs.Float64("faults", 0, "fraction of flaky nodes (0 disables fault injection)")
	faultSeed := fs.Int64("fault-seed", 0, "fault-plan seed (0 = workload seed)")
	speculate := fs.Bool("speculate", false, "launch backup copies of straggling tasks on idle slots")
	retryBudget := fs.Int("retry-budget", 0, "execution attempts per task before terminal failure (0 = default, negative = unlimited)")
	retryBackoff := fs.Float64("retry-backoff", 0, "base retry backoff in seconds (doubles per attempt)")
	blacklist := fs.Float64("blacklist", 0, "health-penalty threshold that blacklists a node (0 disables)")
	solverBudget := fs.Int("solver-budget", 0, "branch-and-bound node budget per exact ILP solve (0 = default)")
	admission := fs.Int("admission", 0, "pending-task backlog bound for admission control (0 disables)")
	auditInv := fs.Bool("audit-invariants", false, "re-check engine invariants every scheduling boundary")
	checkpointDir := fs.String("checkpoint-dir", "", "persist crash-recovery snapshots and the decision WAL under DIR")
	checkpointEvery := fs.Int("checkpoint-every", 5, "snapshot cadence in scheduling periods")
	resume := fs.Bool("resume", false, "resume from the newest snapshot in -checkpoint-dir")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *resume && *checkpointDir == "" {
		return fmt.Errorf("-resume requires -checkpoint-dir")
	}

	if addr, err := obs.StartPprof(*pprofAddr); err != nil {
		return err
	} else if addr != "" {
		fmt.Fprintf(os.Stderr, "pprof listening on %s\n", addr)
	}

	var plat experiments.Platform
	switch *platform {
	case "real":
		plat = experiments.Real
	case "ec2":
		plat = experiments.EC2
	default:
		return fmt.Errorf("unknown platform %q", *platform)
	}

	s, err := experiments.NewScheduler(*scheduler)
	if err != nil {
		return err
	}
	if d, ok := s.(*sched.DSP); ok {
		if *blacklist > 0 {
			// A blacklist only helps if the offline scheduler honours it.
			d.RiskAversion = 0.5
		}
		d.ILPNodeBudget = *solverBudget
	} else if *solverBudget > 0 {
		return fmt.Errorf("-solver-budget applies to the DSP scheduler, not %q", *scheduler)
	}
	var pre sim.Preemptor
	cp := cluster.DefaultCheckpoint()
	if *preemptor != "none" {
		pre, cp, err = experiments.NewPreemptor(*preemptor)
		if err != nil {
			return err
		}
	}

	spec := trace.DefaultSpec(*jobs, *seed)
	spec.TaskScale = *scale
	spec.MeanTaskSizeMI *= *load
	w, err := trace.Generate(spec)
	if err != nil {
		return err
	}

	// Resumed runs load the snapshot before the sink opens: the audit
	// file must be rewound to the byte offset the snapshot vouches for,
	// and the retained prefix rehydrates the attribution state below.
	var mgr *recover.Manager
	var st *sim.EngineState
	if *resume {
		mgr, st, err = recover.Resume(*checkpointDir, *checkpointEvery)
		if err != nil {
			return fmt.Errorf("resume from %s: %w", *checkpointDir, err)
		}
	} else if *checkpointDir != "" {
		mgr, err = recover.NewManager(*checkpointDir, *checkpointEvery)
		if err != nil {
			return err
		}
	}
	var auditResume int64
	var auditPrefix []byte
	if st != nil && *auditPath != "" && st.AuditOffset > 0 {
		auditResume = st.AuditOffset
		if auditPrefix, err = readPrefix(*auditPath, auditResume); err != nil {
			return fmt.Errorf("resume audit %s: %w", *auditPath, err)
		}
	}

	// The phase timer feeds the -phases table and, via the sink, the
	// telemetry server's dsp_phase_* metrics while the run is live.
	var tm *prof.Timer
	if *phases || *listenAddr != "" {
		tm = prof.New()
	}
	sink, err := obs.Open(obs.Options{
		TracePath:         *tracePath,
		AuditPath:         *auditPath,
		AuditResumeOffset: auditResume,
		SeriesPath:        *seriesPath,
		Counters:          *counters,
		ListenAddr:        *listenAddr,
		Prof:              tm,
	})
	if err != nil {
		return err
	}
	if sink.Telemetry != nil {
		fmt.Fprintf(os.Stderr, "telemetry listening on %s\n", sink.Telemetry.Addr())
	}
	cfg := sim.Config{
		Cluster:            plat.Cluster(),
		Scheduler:          s,
		Preemptor:          pre,
		Checkpoint:         cp,
		Period:             5 * units.Minute,
		Epoch:              10 * units.Second,
		RetryBudget:        *retryBudget,
		RetryBackoff:       units.FromSeconds(*retryBackoff),
		BlacklistThreshold: *blacklist,
		AuditInvariants:    *auditInv,
		Prof:               tm,
	}
	if *admission > 0 {
		cfg.Admission = &sim.Admission{
			MaxPendingTasks: *admission,
			ShedInfeasible:  true,
			Margin:          1.5,
		}
	}
	if *speculate {
		cfg.Speculation = &sim.Speculation{}
	}
	if *faults > 0 {
		fseed := *faultSeed
		if fseed == 0 {
			fseed = *seed
		}
		cs := chaos.DefaultSpec(plat.Cluster().Len(), fseed)
		cs.FaultyFraction = *faults
		plan, err := cs.Plan()
		if err != nil {
			sink.Close()
			return err
		}
		cfg.Faults = plan
	}
	// Graceful shutdown: the first SIGINT/SIGTERM stops the event pump at
	// the next event boundary (the durability sink, when attached, writes
	// a final snapshot there); a second signal aborts immediately.
	var interrupt atomic.Bool
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	go func() {
		<-sigc
		interrupt.Store(true)
		fmt.Fprintln(os.Stderr, "dspsim: interrupt: stopping at the next event boundary (signal again to abort)")
		<-sigc
		fmt.Fprintln(os.Stderr, "dspsim: aborted")
		os.Exit(1)
	}()
	cfg.Interrupt = &interrupt

	switch {
	case mgr != nil && sink.Enabled():
		if sink.Audit != nil {
			mgr.AttachAudit(sink.Audit)
		}
		mgr.Peer = sink
		cfg.Observer = sim.Observers{sink, mgr}
	case mgr != nil:
		cfg.Observer = mgr
	case sink.Enabled():
		cfg.Observer = sink
	}
	if mgr != nil {
		cfg.Durability = mgr
	}

	var e *sim.Engine
	if st != nil {
		e, err = sim.PrepareResume(cfg, w, st)
	} else {
		e, err = sim.Prepare(cfg, w)
	}
	if err != nil {
		sink.Close()
		return err
	}
	if st != nil {
		if sink.Audit != nil && auditPrefix != nil {
			if err := sink.Audit.Rehydrate(bytes.NewReader(auditPrefix), e.FindTask); err != nil {
				sink.Close()
				return err
			}
		}
		if cfg.Observer != nil {
			cfg.Observer.RecoveryStarted(st.Now, st.PeriodIndex)
		}
		fmt.Fprintf(os.Stderr, "resuming from snapshot at t=%v (period %d), verifying %d logged decisions\n",
			st.Now, st.PeriodIndex, mgr.ReplayTarget())
	}
	res, err := e.Execute()
	if err != nil {
		if mgr != nil {
			if cerr := mgr.Close(); cerr != nil && errors.Is(err, sim.ErrInterrupted) {
				err = fmt.Errorf("%w (and closing the checkpoint failed: %v)", err, cerr)
			}
		}
		sink.Close()
		if errors.Is(err, sim.ErrInterrupted) && *checkpointDir != "" {
			fmt.Fprintf(os.Stderr, "final snapshot written; rerun with -resume -checkpoint-dir %s to continue\n", *checkpointDir)
		}
		return err
	}
	if mgr != nil {
		if err := mgr.Close(); err != nil {
			sink.Close()
			return err
		}
	}
	if err := sink.Close(); err != nil {
		return err
	}

	fmt.Printf("platform:            %s (%d nodes)\n", plat, plat.Cluster().Len())
	fmt.Printf("scheduler:           %s\n", s.Name())
	if pre != nil {
		fmt.Printf("preemptor:           %s (checkpoint=%v)\n", pre.Name(), cp.Enabled)
	} else {
		fmt.Printf("preemptor:           none\n")
	}
	fmt.Printf("jobs:                %d (scale %.3f, arrival %.2f jobs/min)\n", *jobs, *scale, w.ArrivalRate)
	fmt.Println()
	fmt.Printf("makespan:            %v\n", res.Makespan)
	fmt.Printf("tasks completed:     %d\n", res.TasksCompleted)
	fmt.Printf("throughput:          %.4f tasks/ms\n", res.TaskThroughputPerMs)
	fmt.Printf("jobs meeting ddl:    %d / %d\n", res.JobsMetDeadline, res.JobsCompleted)
	fmt.Printf("job throughput:      %.3f deadline-met jobs/min\n", res.JobThroughputPerMin)
	fmt.Printf("avg job waiting:     %v\n", res.AvgJobWait)
	fmt.Printf("avg task waiting:    %v\n", res.AvgTaskWait)
	fmt.Printf("preemptions:         %d\n", res.Preemptions)
	fmt.Printf("disorders:           %d\n", res.Disorders)
	if *faults > 0 || res.Failures > 0 || res.TaskFaults > 0 {
		fmt.Println()
		fmt.Printf("node failures:       %d (blacklistings %d)\n",
			res.Failures, res.Blacklistings)
		fmt.Printf("task faults:         %d (crash evictions %d)\n", res.TaskFaults, res.FailureEvictions)
		fmt.Printf("retries:             %d (terminal failures %d, jobs failed %d)\n",
			res.Retries, res.TerminalFailures, res.JobsFailed)
		fmt.Printf("speculations:        %d (won %d, cancelled %d)\n",
			res.Speculations, res.SpeculationWins, res.SpeculationCancels)
		fmt.Printf("goodput:             %.4f tasks/ms\n", res.GoodputPerMs)
		fmt.Printf("lost work:           %v (speculative waste %v)\n", res.LostWork, res.SpeculativeWaste)
	}
	if *admission > 0 || *auditInv || res.SolverDegradations > 0 || res.JobsShed > 0 {
		fmt.Println()
		fmt.Printf("jobs shed:           %d (peak pending tasks %d)\n", res.JobsShed, res.PeakPendingTasks)
		fmt.Printf("solver degradations: %d\n", res.SolverDegradations)
		fmt.Printf("invariant checks:    %d violations, %d quarantines\n",
			res.InvariantViolations, res.Quarantines)
	}
	if sink.Counters != nil {
		fmt.Printf("\nevent counters:\n%s", sink.Counters)
	}
	if *phases && tm != nil {
		snap := tm.Snapshot()
		fmt.Printf("\nscheduler phases (exclusive time):\n%s", prof.Table(snap.Breakdown()))
	}
	if sink.Attrib != nil {
		if blame, n := sink.Attrib.Aggregate(); n > 0 {
			fmt.Printf("\nlatency attribution (%d jobs, mean s/job):\n", n)
			for _, c := range attrib.Causes() {
				if blame[c] == 0 {
					continue
				}
				fmt.Printf("  %-16s %10.3f\n", c.String(), blame[c].Seconds()/float64(n))
			}
		}
	}
	for _, a := range []struct{ what, path string }{
		{"trace", *tracePath},
		{"audit", *auditPath},
		{"series", *seriesPath},
	} {
		if a.path != "" {
			fmt.Fprintf(os.Stderr, "%s written to %s\n", a.what, a.path)
		}
	}
	return nil
}

// readPrefix returns the first n bytes of the file — the audit prefix
// the resumed run's snapshot vouches for, used to rehydrate the
// attribution state before the roll-forward appends to it.
func readPrefix(path string, n int64) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	b := make([]byte, n)
	if _, err := io.ReadFull(f, b); err != nil {
		return nil, fmt.Errorf("file shorter than checkpoint offset %d: %w", n, err)
	}
	return b, nil
}
