module dsp

go 1.22
