// Package dsp's root benchmark harness regenerates every table and
// figure of the paper's evaluation (Table II, Figures 5–8) and runs the
// ablation benches called out in DESIGN.md plus micro-benchmarks of the
// core data structures.
//
// Figure benches print the regenerated series once (the same rows the
// paper plots); run them with:
//
//	go test -bench=Fig -benchtime=1x
//
// Micro-benches (DepScores, Priority, Simplex, EventQueue, ListSchedule)
// behave like ordinary testing.B benchmarks.
package dsp

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"dsp/internal/cluster"
	"dsp/internal/dag"
	"dsp/internal/eventq"
	"dsp/internal/experiments"
	"dsp/internal/lp"
	"dsp/internal/obs"
	"dsp/internal/preempt"
	"dsp/internal/prof"
	"dsp/internal/sched"
	"dsp/internal/sim"
	"dsp/internal/trace"
	"dsp/internal/units"
)

// benchOptions keeps the figure sweeps tractable inside `go test -bench`
// while preserving the paper's x-axes; EXPERIMENTS.md records a larger
// -scale run via cmd/dspbench.
func benchOptions() experiments.Options {
	o := experiments.DefaultOptions()
	o.Scale = 0.02
	return o
}

var printOnce sync.Map

func printTable(name, rendered string) {
	if _, loaded := printOnce.LoadOrStore(name, true); !loaded {
		fmt.Printf("\n%s\n", rendered)
	}
}

func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.TableII()
		if len(t.Xs()) == 0 {
			b.Fatal("empty Table II")
		}
	}
}

func BenchmarkFig5RealCluster(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig5(experiments.Real, benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		printTable("fig5a", t.Render())
	}
}

func BenchmarkFig5EC2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig5(experiments.EC2, benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		printTable("fig5b", t.Render())
	}
}

func benchFig6(b *testing.B, p experiments.Platform, key string) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.Fig6(p, benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		for _, t := range f.All() {
			printTable(key+t.Title, t.Render())
		}
	}
}

// BenchmarkFig6RealCluster regenerates Figure 6 panels (a) disorders,
// (b) throughput, (c) average job waiting time and (d) preemptions.
func BenchmarkFig6RealCluster(b *testing.B) { benchFig6(b, experiments.Real, "fig6") }

// BenchmarkFig7EC2 regenerates Figure 7 (the Figure 6 panels on EC2).
func BenchmarkFig7EC2(b *testing.B) { benchFig6(b, experiments.EC2, "fig7") }

func BenchmarkFig8Scalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.Fig8(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		printTable("fig8a", f.Makespan.Render())
		printTable("fig8b", f.Throughput.Render())
	}
}

// --- Ablation benches (design choices from DESIGN.md) ---

func ablationWorkload(b *testing.B, seed int64) *trace.Workload {
	b.Helper()
	spec := trace.DefaultSpec(30, seed)
	spec.TaskScale = 0.02
	spec.MeanTaskSizeMI /= 0.02
	w, err := trace.Generate(spec)
	if err != nil {
		b.Fatal(err)
	}
	return w
}

func runAblation(b *testing.B, pre sim.Preemptor, cp cluster.CheckpointPolicy, seed int64) *sim.Result {
	b.Helper()
	res, err := sim.Run(sim.Config{
		Cluster:    cluster.EC2(10), // deliberately contended
		Scheduler:  sched.NewDSP(),
		Preemptor:  pre,
		Checkpoint: cp,
	}, ablationWorkload(b, seed))
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkAblationPP compares DSP with and without the
// normalized-priority filter.
func BenchmarkAblationPP(b *testing.B) {
	for _, variant := range []string{"with-PP", "without-PP"} {
		b.Run(variant, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pre := preempt.NewDSP()
				if variant == "without-PP" {
					pre = preempt.NewDSPWithoutPP()
				}
				res := runAblation(b, pre, cluster.DefaultCheckpoint(), 31)
				b.ReportMetric(float64(res.Preemptions), "preemptions")
				b.ReportMetric(res.TaskThroughputPerMs, "tasks/ms")
			}
		})
	}
}

// BenchmarkAblationDepPriority compares the recursive dependency-aware
// priority (Formula 12) against the flat leaf-only priority (Formula 13).
func BenchmarkAblationDepPriority(b *testing.B) {
	for _, variant := range []string{"dependency", "flat"} {
		b.Run(variant, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pre := preempt.NewDSP()
				pre.P.FlatPriority = variant == "flat"
				res := runAblation(b, pre, cluster.DefaultCheckpoint(), 32)
				b.ReportMetric(res.TaskThroughputPerMs, "tasks/ms")
				b.ReportMetric(res.Makespan.Seconds(), "makespan-s")
			}
		})
	}
}

// BenchmarkAblationDelta sweeps the δ preempting-task window.
func BenchmarkAblationDelta(b *testing.B) {
	for _, delta := range []float64{0.1, 0.35, 0.7} {
		b.Run(fmt.Sprintf("delta=%.2f", delta), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pre := preempt.NewDSP()
				pre.P.Delta = delta
				res := runAblation(b, pre, cluster.DefaultCheckpoint(), 33)
				b.ReportMetric(float64(res.Preemptions), "preemptions")
				b.ReportMetric(res.Makespan.Seconds(), "makespan-s")
			}
		})
	}
}

// BenchmarkAblationCheckpoint compares checkpointed preemption against
// SRPT-style restart-from-scratch under the same DSP policy.
func BenchmarkAblationCheckpoint(b *testing.B) {
	for _, variant := range []string{"checkpoint", "scratch"} {
		b.Run(variant, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cp := cluster.DefaultCheckpoint()
				if variant == "scratch" {
					cp = cluster.NoCheckpoint()
				}
				res := runAblation(b, preempt.NewDSP(), cp, 34)
				b.ReportMetric(res.Makespan.Seconds(), "makespan-s")
			}
		})
	}
}

// BenchmarkAblationILP compares the exact ILP offline engine against the
// list heuristic on an instance small enough for both.
func BenchmarkAblationILP(b *testing.B) {
	for _, variant := range []string{"ilp", "list"} {
		b.Run(variant, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d := sched.NewDSP()
				if variant == "ilp" {
					d.Mode = sched.ILPOnly
				} else {
					d.Mode = sched.ListOnly
				}
				j := dag.NewJob(0, 6)
				sizes := []float64{8000, 6000, 5000, 4000, 3000, 2000}
				for k, s := range sizes {
					j.Task(dag.TaskID(k)).Size = s
				}
				j.MustDep(0, 3)
				j.MustDep(1, 4)
				w := &trace.Workload{Jobs: []*trace.Job{{Arrival: 0, DAG: j}}}
				c := &cluster.Cluster{Theta1: 0.5, Theta2: 0.5}
				for n := 0; n < 2; n++ {
					c.Nodes = append(c.Nodes, &cluster.Node{
						ID: cluster.NodeID(n), SCPU: 1000, SMem: 1000, Slots: 1,
						Capacity: dag.Resources{CPU: 1, Mem: 16, DiskMB: 1e6, Bandwidth: 1e3},
					})
				}
				res, err := sim.Run(sim.Config{Cluster: c, Scheduler: d}, w)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Makespan.Seconds(), "makespan-s")
			}
		})
	}
}

// --- Observer hot-path guards ---

// observerWorkload is the RealCluster(50) fixture the observer-overhead
// guards share: enough jobs to keep the cluster contended so the
// preemptor, and therefore every observer hook, stays hot.
func observerWorkload(tb testing.TB) *trace.Workload {
	tb.Helper()
	spec := trace.DefaultSpec(20, 41)
	spec.TaskScale = 0.02
	spec.MeanTaskSizeMI /= 0.02
	w, err := trace.Generate(spec)
	if err != nil {
		tb.Fatal(err)
	}
	return w
}

func runObserved(tb testing.TB, o sim.Observer) *sim.Result {
	tb.Helper()
	res, err := sim.Run(sim.Config{
		Cluster:    cluster.RealCluster(50),
		Scheduler:  sched.NewDSP(),
		Preemptor:  preempt.NewDSP(),
		Checkpoint: cluster.DefaultCheckpoint(),
		Observer:   o,
	}, observerWorkload(tb))
	if err != nil {
		tb.Fatal(err)
	}
	return res
}

// BenchmarkObserverOverhead compares a full RealCluster(50) simulation
// with no observer (the engine's nil fast path), with the atomic
// counter registry, and with a no-op observer (pure dispatch cost).
func BenchmarkObserverOverhead(b *testing.B) {
	for _, variant := range []struct {
		name string
		mk   func() sim.Observer
	}{
		{"nil", func() sim.Observer { return nil }},
		{"nop", func() sim.Observer { return sim.NopObserver{} }},
		{"counters", func() sim.Observer { return obs.NewCounters() }},
	} {
		b.Run(variant.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runObserved(b, variant.mk())
			}
		})
	}
}

// TestObserverHotPathOverhead guards the engine's nil-observer fast
// path: attaching the atomic counter registry to a contended
// RealCluster(50) run must cost under 2% wall clock versus no observer
// at all. Timing comparisons are noisy, so the guard takes the best of
// three attempts before failing.
func TestObserverHotPathOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing guard skipped in -short")
	}
	if raceEnabled {
		t.Skip("timing guard is meaningless under race-detector instrumentation")
	}
	const attempts, maxRatio = 3, 1.02
	var last float64
	for i := 0; i < attempts; i++ {
		base := testing.Benchmark(func(b *testing.B) {
			for j := 0; j < b.N; j++ {
				runObserved(b, nil)
			}
		})
		counted := testing.Benchmark(func(b *testing.B) {
			for j := 0; j < b.N; j++ {
				runObserved(b, obs.NewCounters())
			}
		})
		last = float64(counted.NsPerOp()) / float64(base.NsPerOp())
		if last <= maxRatio {
			return
		}
	}
	t.Errorf("counter observer costs %.1f%% over the nil fast path, want <%.0f%%",
		(last-1)*100, (maxRatio-1)*100)
}

// runProfiled mirrors runObserved with a phase timer attached instead of
// an observer: the same contended RealCluster(50) DSP+preemptor cell the
// Figure 5 sweep runs, which keeps every instrumented phase (plan build,
// solve, verdict scan, memo evaluation, event pump) hot.
func runProfiled(tb testing.TB, tm *prof.Timer) *sim.Result {
	tb.Helper()
	res, err := sim.Run(sim.Config{
		Cluster:    cluster.RealCluster(50),
		Scheduler:  sched.NewDSP(),
		Preemptor:  preempt.NewDSP(),
		Checkpoint: cluster.DefaultCheckpoint(),
		Prof:       tm,
	}, observerWorkload(tb))
	if err != nil {
		tb.Fatal(err)
	}
	return res
}

// BenchmarkProfOverhead compares the profiled and unprofiled runs of the
// same cell; the delta between the sub-benches is the phase timer's
// whole-run cost (PERF.md records the measured figure).
func BenchmarkProfOverhead(b *testing.B) {
	for _, variant := range []string{"off", "on"} {
		b.Run(variant, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var tm *prof.Timer
				if variant == "on" {
					tm = prof.New()
				}
				res := runProfiled(b, tm)
				if tm != nil {
					s := tm.Snapshot()
					if s[prof.PhaseEpochPolicy].Count == 0 {
						b.Fatal("profiled run recorded no epochs")
					}
				}
				_ = res
			}
		})
	}
}

// TestProfHotPathOverhead guards the phase timer's overhead on a
// contended fig5-style DSP cell versus running unprofiled. A single
// measurement pair is hopelessly noisy on a small shared box (scheduler
// and GC bursts land on whichever side runs second — the old
// best-of-single-pair protocol flaked roughly one run in three here),
// so the guard compares the minimum wall clock per side across several
// interleaved attempts: the minimum is the honest estimate of each
// side's uncontended cost. Measured that way the timer's steady cost on
// a single-core runner floors near 8%, so the bound is set where it
// catches a hot-path blow-up (an allocation or a lock sneaking into
// Enter/Exit) rather than re-asserting the idle-reference-machine
// figure PERF.md records.
func TestProfHotPathOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing guard skipped in -short")
	}
	if raceEnabled {
		t.Skip("timing guard is meaningless under race-detector instrumentation")
	}
	const attempts, maxRatio = 4, 1.15
	minBase, minProf := math.MaxFloat64, math.MaxFloat64
	for i := 0; i < attempts; i++ {
		base := testing.Benchmark(func(b *testing.B) {
			for j := 0; j < b.N; j++ {
				runProfiled(b, nil)
			}
		})
		profiled := testing.Benchmark(func(b *testing.B) {
			for j := 0; j < b.N; j++ {
				runProfiled(b, prof.New())
			}
		})
		minBase = math.Min(minBase, float64(base.NsPerOp()))
		minProf = math.Min(minProf, float64(profiled.NsPerOp()))
		if minProf/minBase <= maxRatio {
			return
		}
	}
	t.Errorf("phase profiling costs %.1f%% over the unprofiled run, want <%.0f%%",
		(minProf/minBase-1)*100, (maxRatio-1)*100)
}

// TestCountersNoAllocs pins the per-event cost of the counter registry:
// no allocation on any hot-path hook.
func TestCountersNoAllocs(t *testing.T) {
	c := obs.NewCounters()
	task := &sim.TaskState{}
	if n := testing.AllocsPerRun(1000, func() {
		c.TaskStarted(0, task, 0)
		c.TaskPreempted(0, task, task, 0)
		c.TaskCompleted(0, task, 0)
		c.EpochStarted(0, 1)
		c.PreemptionConsidered(0, sim.PreemptionDecision{Verdict: sim.VerdictAccepted})
	}); n != 0 {
		t.Errorf("counter hot path allocates %v times per event batch, want 0", n)
	}
}

// --- Micro-benchmarks ---

func BenchmarkDepScores(b *testing.B) {
	spec := trace.DefaultSpec(1, 5)
	spec.TaskScale = 1 // full-size job (hundreds of tasks)
	w, err := trace.Generate(spec)
	if err != nil {
		b.Fatal(err)
	}
	j := w.Jobs[0].DAG
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.DepScores(j, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEventQueue(b *testing.B) {
	q := eventq.New()
	noop := eventq.Func(func(units.Time) {})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.At(units.Time(i%1000), noop)
		if q.Len() > 1024 {
			for q.Step() {
			}
		}
	}
}

func BenchmarkSimplexSolve(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := lp.NewModel("bench", lp.Maximize)
		x := m.AddVar(0, math.Inf(1), 3, "x")
		y := m.AddVar(0, math.Inf(1), 5, "y")
		z := m.AddVar(0, 10, 4, "z")
		m.AddConstraint([]lp.Term{{Var: x, Coef: 1}, {Var: z, Coef: 2}}, lp.LE, 14, "")
		m.AddConstraint([]lp.Term{{Var: y, Coef: 2}, {Var: z, Coef: 1}}, lp.LE, 12, "")
		m.AddConstraint([]lp.Term{{Var: x, Coef: 3}, {Var: y, Coef: 2}}, lp.LE, 18, "")
		if s := m.Solve(); s.Status != lp.Optimal {
			b.Fatalf("status %v", s.Status)
		}
	}
}

func BenchmarkILPKnapsack(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := lp.NewModel("knap", lp.Maximize)
		vals := []float64{60, 100, 120, 80, 30}
		weights := []float64{10, 20, 30, 25, 5}
		terms := make([]lp.Term, len(vals))
		for k := range vals {
			terms[k] = lp.Term{Var: m.AddBinVar(vals[k], ""), Coef: weights[k]}
		}
		m.AddConstraint(terms, lp.LE, 50, "cap")
		if s := m.Solve(); s.Status != lp.Optimal {
			b.Fatalf("status %v", s.Status)
		}
	}
}

func BenchmarkListSchedule(b *testing.B) {
	// Full-system throughput of one simulated period-scale run.
	spec := trace.DefaultSpec(9, 6)
	spec.TaskScale = 0.05
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		w, err := trace.Generate(spec)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		d := sched.NewDSP()
		d.Mode = sched.ListOnly
		if _, err := sim.Run(sim.Config{Cluster: cluster.RealCluster(10), Scheduler: d}, w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPriorityCalculation(b *testing.B) {
	spec := trace.DefaultSpec(3, 7)
	spec.TaskScale = 0.2
	w, err := trace.Generate(spec)
	if err != nil {
		b.Fatal(err)
	}
	// Exercise the calculator through a simulation run with DSP
	// preemption enabled on a contended cluster.
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		w, err = trace.Generate(spec)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		_, err := sim.Run(sim.Config{
			Cluster:    cluster.EC2(4),
			Scheduler:  sched.NewDSP(),
			Preemptor:  preempt.NewDSP(),
			Checkpoint: cluster.DefaultCheckpoint(),
		}, w)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkILPWarmStart compares the exact ILP engine with and without
// cross-period warm-starting on a multi-period staggered workload, so
// later solves run with a previous incumbent available to seed
// branch-and-bound.
func BenchmarkILPWarmStart(b *testing.B) {
	mkWorkload := func() *trace.Workload {
		var jobs []*trace.Job
		sizes := [][]float64{
			{4000, 3000, 3000}, {2000, 2000, 1000}, {3000, 1000}, {5000, 2000, 2000},
		}
		for k, ss := range sizes {
			j := dag.NewJob(dag.JobID(k), len(ss))
			for i, s := range ss {
				j.Task(dag.TaskID(i)).Size = s
			}
			j.MustDep(0, dag.TaskID(len(ss)-1))
			jobs = append(jobs, &trace.Job{Arrival: units.Time(k) * 6 * units.Minute, DAG: j})
		}
		return &trace.Workload{ArrivalRate: 3, Jobs: jobs}
	}
	mkCluster := func() *cluster.Cluster {
		c := &cluster.Cluster{Theta1: 0.5, Theta2: 0.5}
		for n := 0; n < 2; n++ {
			c.Nodes = append(c.Nodes, &cluster.Node{
				ID: cluster.NodeID(n), SCPU: 1000, SMem: 1000, Slots: 1,
				Capacity: dag.Resources{CPU: 1, Mem: 16, DiskMB: 1e6, Bandwidth: 1e3},
			})
		}
		return c
	}
	for _, variant := range []string{"warm", "cold"} {
		b.Run(variant, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d := sched.NewDSP()
				d.Mode = sched.ILPOnly
				d.DisableWarmStart = variant == "cold"
				if _, err := sim.Run(sim.Config{Cluster: mkCluster(), Scheduler: d}, mkWorkload()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSweepWorkers runs the Figure 5 sweep at increasing worker
// counts. The interesting comparison is wall time per op across the
// sub-benches; on a single-CPU host (GOMAXPROCS=1) the curves coincide —
// the runner's value there is determinism, not speedup.
func BenchmarkSweepWorkers(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				o := benchOptions()
				o.Workers = workers
				if _, err := experiments.Fig5(experiments.Real, o); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSensitivity sweeps the DSP parameters the paper defers to
// future work (γ, δ, ρ, ω₁, epoch) on a fixed contended cell.
func BenchmarkSensitivity(b *testing.B) {
	for _, p := range []experiments.SensitivityParam{
		experiments.ParamGamma, experiments.ParamDelta, experiments.ParamRho,
		experiments.ParamOmega1, experiments.ParamEpoch,
	} {
		b.Run(string(p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				o := benchOptions()
				tb, err := experiments.Sensitivity(p, nil, experiments.EC2, 30, o)
				if err != nil {
					b.Fatal(err)
				}
				printTable("sens-"+string(p), tb.Render())
			}
		})
	}
}
