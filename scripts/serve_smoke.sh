#!/bin/sh
# Serving smoke: start dspserve with checkpointing, drive it over HTTP
# with the dspload generator (which probes job statuses and scrapes
# /metrics mid-run), hit the telemetry and status routes directly while
# the daemon is still serving, then SIGTERM and require a clean drain —
# dspserve must finish every accepted job and exit 0.
set -eu
cd "$(dirname "$0")/.."

go build -o /tmp/dspserve_smoke ./cmd/dspserve
go build -o /tmp/dspload_smoke ./cmd/dspload

DIR=$(mktemp -d)
LOG=/tmp/dspserve_smoke.log
: > "$LOG"
/tmp/dspserve_smoke -listen 127.0.0.1:0 -rate 1200 -max-pending 10000 \
    -checkpoint-dir "$DIR" > /tmp/dspserve_smoke_out.txt 2> "$LOG" &
SRV=$!

ADDR=""
for i in $(seq 1 50); do
    ADDR=$(sed -n 's/^dspserve: serving on \([^ ]*\) .*$/\1/p' "$LOG")
    [ -n "$ADDR" ] && break
    sleep 0.2
done
test -n "$ADDR"

# Submit a small trace's worth of jobs through the load generator.
/tmp/dspload_smoke -url "http://$ADDR" -jobs 120 -rate 3000 -sample-every 40 \
    > /tmp/dspload_smoke.txt 2> /dev/null
grep -q '^submitted             120$' /tmp/dspload_smoke.txt

# Mid-run (daemon still serving): telemetry and job routes answer on
# the one shared mux.
curl -fsS "http://$ADDR/metrics" > /tmp/serve_metrics.txt
grep -q '^dsp_heap_alloc_bytes ' /tmp/serve_metrics.txt
grep -q '^dsp_phase_count{phase="serve-period"}' /tmp/serve_metrics.txt
curl -fsS "http://$ADDR/jobs/0" | grep -q '"state"'
curl -fsS "http://$ADDR/healthz" | grep -q ok

# The journal holds every accepted submission.
test "$(grep -c '"op":"submit"' "$DIR/submissions.jsonl")" = 120

# Graceful drain: SIGTERM, then the daemon must run everything queued
# to completion and exit 0.
kill -TERM "$SRV"
wait "$SRV"
grep -q '^jobs: 120 completed, 0 failed' /tmp/dspserve_smoke_out.txt
echo "serve smoke ok"
