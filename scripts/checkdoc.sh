#!/bin/sh
# Fails if any Go package (internal/*, cmd/*, examples/*, or the repo
# root) lacks a doc comment: a "// Package <name>" comment for library
# packages, "// Command <name>" for mains. Keeps the godoc front page
# complete as packages are added. Also fails if an internal package is
# absent from ARCHITECTURE.md's package map, so the map can't silently
# go stale as the codebase grows.
set -eu
cd "$(dirname "$0")/.."

fail=0
for dir in internal/*; do
    [ -d "$dir" ] || continue
    ls "$dir"/*.go >/dev/null 2>&1 || continue
    name=$(basename "$dir")
    if ! grep -q "internal/$name" ARCHITECTURE.md; then
        echo "ARCHITECTURE.md does not mention internal/$name" >&2
        fail=1
    fi
done
# Every command must appear in both the architecture map and the
# operations guide — a new cmd/ binary that skips either fails CI here.
for dir in cmd/*; do
    [ -d "$dir" ] || continue
    ls "$dir"/*.go >/dev/null 2>&1 || continue
    name=$(basename "$dir")
    for doc in ARCHITECTURE.md OPERATIONS.md; do
        if ! grep -q "$name" "$doc"; then
            echo "$doc does not mention cmd/$name" >&2
            fail=1
        fi
    done
done
for dir in . internal/* cmd/* examples/*; do
    [ -d "$dir" ] || continue
    ls "$dir"/*.go >/dev/null 2>&1 || continue
    name=$(basename "$dir")
    if [ "$dir" = "." ]; then
        pattern='^// Package '
    else
        case "$dir" in
        cmd/*) pattern="^// Command $name\b" ;;
        # Examples open with "// <name>: ..." prose instead of godoc's
        # Package/Command convention.
        examples/*) pattern="^// (Package |Command )?$name:?\b" ;;
        *) pattern="^// Package $name\b" ;;
        esac
    fi
    if ! grep -l -i -E "$pattern" "$dir"/*.go >/dev/null 2>&1; then
        echo "missing doc comment: $dir (want '$(echo "$pattern" | sed 's/^\^//;s/\\b//')...')" >&2
        fail=1
    fi
done
exit $fail
