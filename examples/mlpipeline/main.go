// mlpipeline: a machine-learning training pipeline — the DAG-structured
// workload class that motivates the paper — scheduled with DSP and with
// the dependency-blind Tetris baseline, to show how dependency-aware
// scheduling shortens the makespan.
//
// Pipeline shape per job (classic feature/train/ensemble DAG):
//
//	ingest ─▶ clean ─▶ featurize×F ─▶ train×M ─▶ validate ─▶ report
//
// Run with:
//
//	go run ./examples/mlpipeline
package main

import (
	"fmt"
	"log"

	"dsp/internal/baselines"
	"dsp/internal/cluster"
	"dsp/internal/dag"
	"dsp/internal/preempt"
	"dsp/internal/sched"
	"dsp/internal/sim"
	"dsp/internal/trace"
	"dsp/internal/units"
)

// pipeline builds one ML-pipeline job with F featurization shards and M
// model trainers.
func pipeline(id dag.JobID, f, m int) *dag.Job {
	n := 2 + f + m + 2
	j := dag.NewJob(id, n)
	demand := dag.Resources{CPU: 1, Mem: 2, DiskMB: 0.02, Bandwidth: 0.02}

	ingest := dag.TaskID(0)
	clean := dag.TaskID(1)
	validate := dag.TaskID(n - 2)
	report := dag.TaskID(n - 1)

	j.Task(ingest).Size = 90000 // 25 s at 3600 MIPS
	j.Task(clean).Size = 54000
	j.MustDep(ingest, clean)
	for i := 0; i < f; i++ {
		ft := dag.TaskID(2 + i)
		j.Task(ft).Size = 36000
		j.MustDep(clean, ft)
	}
	for i := 0; i < m; i++ {
		tr := dag.TaskID(2 + f + i)
		j.Task(tr).Size = 180000 // training dominates: 50 s
		// Each trainer consumes every feature shard.
		for k := 0; k < f; k++ {
			j.MustDep(dag.TaskID(2+k), tr)
		}
		j.MustDep(tr, validate)
	}
	j.Task(validate).Size = 36000
	j.Task(report).Size = 18000
	j.MustDep(validate, report)
	for i := range j.Tasks {
		j.Tasks[i].Demand = demand
	}
	j.Deadline = 1200
	return j
}

func workload(jobs int) *trace.Workload {
	w := &trace.Workload{ArrivalRate: 4}
	for i := 0; i < jobs; i++ {
		w.Jobs = append(w.Jobs, &trace.Job{
			Class:   trace.Medium,
			Arrival: units.Time(i) * 15 * units.Second,
			DAG:     pipeline(dag.JobID(i), 6, 4),
		})
	}
	return w
}

func main() {
	const jobs = 12
	c := func() *cluster.Cluster { return cluster.RealCluster(6) }

	dspRes, err := sim.Run(sim.Config{
		Cluster:    c(),
		Scheduler:  sched.NewDSP(),
		Preemptor:  preempt.NewDSP(),
		Checkpoint: cluster.DefaultCheckpoint(),
		Period:     time30s(),
		Epoch:      10 * units.Second,
	}, workload(jobs))
	if err != nil {
		log.Fatal(err)
	}

	tetrisRes, err := sim.Run(sim.Config{
		Cluster:   c(),
		Scheduler: &baselines.Tetris{},
		Period:    time30s(),
	}, workload(jobs))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d ML pipelines (6 feature shards, 4 trainers each) on 6 nodes\n\n", jobs)
	fmt.Printf("%-24s %-12s %-10s %-8s\n", "method", "makespan", "tasks/ms", "met-ddl")
	fmt.Printf("%-24s %-12v %-10.4f %d/%d\n", "DSP (sched+preempt)",
		dspRes.Makespan, dspRes.TaskThroughputPerMs, dspRes.JobsMetDeadline, jobs)
	fmt.Printf("%-24s %-12v %-10.4f %d/%d\n", "TetrisW/oDep",
		tetrisRes.Makespan, tetrisRes.TaskThroughputPerMs, tetrisRes.JobsMetDeadline, jobs)

	if dspRes.Makespan <= tetrisRes.Makespan {
		fmt.Println("\nDSP finishes the pipeline batch sooner by prioritizing the tasks")
		fmt.Println("whose completion unlocks the most downstream work (ingest/clean and")
		fmt.Println("feature shards gate every trainer).")
	}
}

func time30s() units.Time { return 30 * units.Second }
