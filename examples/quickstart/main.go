// Quickstart: build a small DAG job by hand, schedule it with DSP on a
// four-node cluster, and print the resulting metrics.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dsp/internal/cluster"
	"dsp/internal/dag"
	"dsp/internal/preempt"
	"dsp/internal/sched"
	"dsp/internal/sim"
	"dsp/internal/trace"
	"dsp/internal/units"
)

func main() {
	// A job shaped like the paper's Figure 2: T0 fans out to T1/T2, which
	// fan out to two dependents each. Sizes are in millions of
	// instructions; on a 3600 MIPS node, 36,000 MI runs for 10 s.
	job := dag.NewJob(0, 7)
	sizes := []float64{72000, 36000, 36000, 18000, 18000, 18000, 18000}
	for i, s := range sizes {
		job.Task(dag.TaskID(i)).Size = s
		job.Task(dag.TaskID(i)).Demand = dag.Resources{CPU: 1, Mem: 2, DiskMB: 0.02, Bandwidth: 0.02}
	}
	job.MustDep(0, 1)
	job.MustDep(0, 2)
	job.MustDep(1, 3)
	job.MustDep(1, 4)
	job.MustDep(2, 5)
	job.MustDep(2, 6)
	job.Deadline = 120 // seconds from submission

	// Inspect the structural analyses DSP uses.
	levels, err := job.Levels()
	if err != nil {
		log.Fatal(err)
	}
	scores, err := sched.DepScores(job, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("task  level  dependency-score")
	for i := range job.Tasks {
		fmt.Printf("T%-4d %-6d %.3f\n", i, levels[i], scores[i])
	}

	// Run it through the full DSP system (offline ILP/list scheduling +
	// online dependency-aware preemption) on four real-cluster nodes.
	w := &trace.Workload{
		ArrivalRate: 3,
		Jobs:        []*trace.Job{{Class: trace.Small, Arrival: 0, DAG: job}},
	}
	res, err := sim.Run(sim.Config{
		Cluster:    cluster.RealCluster(4),
		Scheduler:  sched.NewDSP(),
		Preemptor:  preempt.NewDSP(),
		Checkpoint: cluster.DefaultCheckpoint(),
		Period:     time5m(),
		Epoch:      10 * units.Second,
	}, w)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Printf("makespan:        %v\n", res.Makespan)
	fmt.Printf("tasks completed: %d\n", res.TasksCompleted)
	fmt.Printf("met deadline:    %v\n", res.JobsMetDeadline == 1)
	fmt.Printf("preemptions:     %d, disorders: %d\n", res.Preemptions, res.Disorders)
}

func time5m() units.Time { return 5 * units.Minute }
