// deadline: a deadline-sensitive mixed workload demonstrating DSP's
// urgent-task preemption and the normalized-priority (PP) filter. A batch
// of long background jobs saturates a small cluster; latency-critical
// jobs with tight deadlines arrive mid-run and must preempt to finish on
// time. The example runs the same workload under DSP, DSPW/oPP (no PP
// filter) and no preemption at all, and prints deadline hit rates and
// preemption counts.
//
// Run with:
//
//	go run ./examples/deadline
package main

import (
	"fmt"
	"log"

	"dsp/internal/cluster"
	"dsp/internal/dag"
	"dsp/internal/preempt"
	"dsp/internal/sched"
	"dsp/internal/sim"
	"dsp/internal/trace"
	"dsp/internal/units"
)

func buildWorkload() *trace.Workload {
	w := &trace.Workload{ArrivalRate: 4}
	demand := dag.Resources{CPU: 1, Mem: 1, DiskMB: 0.02, Bandwidth: 0.02}

	// Background: 16 single-task jobs of 10 minutes each (one per slot),
	// no deadline — the cluster is fully occupied when the critical jobs
	// arrive.
	id := 0
	for ; id < 16; id++ {
		j := dag.NewJob(dag.JobID(id), 1)
		j.Task(0).Size = 3600 * 600 // 10 min at 3600 MIPS
		j.Task(0).Demand = demand
		w.Jobs = append(w.Jobs, &trace.Job{Class: trace.Large, Arrival: 0, DAG: j})
	}
	// Latency-critical: small two-level jobs arriving at t=60 s with 90 s
	// deadlines.
	for ; id < 22; id++ {
		j := dag.NewJob(dag.JobID(id), 3)
		for k := 0; k < 3; k++ {
			j.Task(dag.TaskID(k)).Size = 3600 * 10 // 10 s each
			j.Task(dag.TaskID(k)).Demand = demand
		}
		j.MustDep(0, 1)
		j.MustDep(0, 2)
		j.Deadline = 90
		w.Jobs = append(w.Jobs, &trace.Job{Class: trace.Small, Arrival: units.Minute, DAG: j})
	}
	return w
}

func run(pre sim.Preemptor) *sim.Result {
	res, err := sim.Run(sim.Config{
		Cluster:    cluster.RealCluster(2), // 16 slots: saturated by design
		Scheduler:  sched.NewDSP(),
		Preemptor:  pre,
		Checkpoint: cluster.DefaultCheckpoint(),
		Period:     30 * units.Second,
		Epoch:      5 * units.Second,
	}, buildWorkload())
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	fmt.Println("22 jobs on 2 nodes (16 slots): 16×10-minute background tasks +")
	fmt.Println("6 deadline-critical DAG jobs (90 s deadline) arriving at t=60 s")
	fmt.Println()
	fmt.Printf("%-14s %-10s %-12s %-12s %-10s\n",
		"preemption", "met-ddl", "makespan", "avg-wait", "preempts")
	for _, row := range []struct {
		name string
		pre  sim.Preemptor
	}{
		{"none", nil},
		{"DSPW/oPP", preempt.NewDSPWithoutPP()},
		{"DSP", preempt.NewDSP()},
	} {
		res := run(row.pre)
		fmt.Printf("%-14s %2d/%-7d %-12v %-12v %-10d\n",
			row.name, res.JobsMetDeadline, res.JobsCompleted,
			res.Makespan, res.AvgJobWait, res.Preemptions)
	}
	fmt.Println()
	fmt.Println("Without preemption the critical jobs queue behind the background")
	fmt.Println("tasks and miss their deadlines; DSP's urgent-task rule preempts the")
	fmt.Println("deadline-safe background tasks, and the PP filter keeps the number")
	fmt.Println("of context switches lower than DSPW/oPP at the same hit rate.")
}
