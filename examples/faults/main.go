// faults: fault-tolerance demonstration (the paper's future-work
// scenario of node failures/crashes and stragglers). The same workload
// runs three times on a 10-node cluster: healthy, with a fifth of the
// nodes crashing mid-run, and with two severe stragglers. DSP's periodic
// rescheduling re-places evicted work on surviving nodes and the
// checkpoint store preserves progress across crashes.
//
// Run with:
//
//	go run ./examples/faults
package main

import (
	"fmt"
	"log"

	"dsp/internal/cluster"
	"dsp/internal/preempt"
	"dsp/internal/sched"
	"dsp/internal/sim"
	"dsp/internal/trace"
	"dsp/internal/units"
)

func buildWorkload() *trace.Workload {
	spec := trace.DefaultSpec(12, 99)
	spec.TaskScale = 0.05
	spec.MeanTaskSizeMI *= 10 // load the small cluster
	w, err := trace.Generate(spec)
	if err != nil {
		log.Fatal(err)
	}
	return w
}

func run(faults *sim.FaultPlan) *sim.Result {
	res, err := sim.Run(sim.Config{
		Cluster:    cluster.RealCluster(10),
		Scheduler:  sched.NewDSP(),
		Preemptor:  preempt.NewDSP(),
		Checkpoint: cluster.DefaultCheckpoint(),
		Period:     time1m(),
		Faults:     faults,
	}, buildWorkload())
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func time1m() units.Time { return units.Minute }

func main() {
	healthy := run(nil)

	crashes := &sim.FaultPlan{Failures: []sim.NodeFailure{
		{Node: 3, At: 2 * units.Minute, RecoverAfter: 10 * units.Minute},
		{Node: 7, At: 4 * units.Minute}, // never recovers
	}}
	crashed := run(crashes)

	stragglers := &sim.FaultPlan{Stragglers: []sim.Straggler{
		{Node: 1, At: units.Minute, Factor: 0.2, Duration: 15 * units.Minute},
		{Node: 5, At: 2 * units.Minute, Factor: 0.1}, // permanent 10× slowdown
	}}
	straggled := run(stragglers)

	fmt.Println("12 jobs on 10 nodes under injected faults (DSP end to end)")
	fmt.Println()
	fmt.Printf("%-22s %-12s %-8s %-10s %-10s\n",
		"scenario", "makespan", "jobs", "evictions", "preempts")
	for _, row := range []struct {
		name string
		res  *sim.Result
	}{
		{"healthy", healthy},
		{"2 node crashes", crashed},
		{"2 stragglers", straggled},
	} {
		fmt.Printf("%-22s %-12v %-8d %-10d %-10d\n",
			row.name, row.res.Makespan, row.res.JobsCompleted,
			row.res.FailureEvictions, row.res.Preemptions)
	}
	fmt.Println()
	fmt.Printf("crash slowdown:     +%.1f%% makespan, %d tasks evicted and re-placed\n",
		100*(crashed.Makespan.Seconds()/healthy.Makespan.Seconds()-1), crashed.FailureEvictions)
	fmt.Printf("straggler slowdown: +%.1f%% makespan (speed-aware rescheduling avoids slow nodes)\n",
		100*(straggled.Makespan.Seconds()/healthy.Makespan.Seconds()-1))
}
