// Package units defines the simulation time base shared by the cluster
// simulator, schedulers and preemption policies. Simulated time is an
// int64 count of microseconds so that event ordering, schedules and
// metrics are exactly deterministic across runs and platforms (float64
// timestamps would make tie-breaking depend on accumulated rounding).
package units

import "fmt"

// Time is an absolute simulated time or a duration, in microseconds.
type Time int64

// Common durations.
const (
	Microsecond Time = 1
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
	Minute      Time = 60 * Second
	Hour        Time = 60 * Minute
)

// Forever is a sentinel "unreachable" time.
const Forever Time = 1<<63 - 1

// FromSeconds converts seconds to Time, rounding to the nearest
// microsecond.
func FromSeconds(s float64) Time {
	if s >= float64(Forever)/float64(Second) {
		return Forever
	}
	if s >= 0 {
		return Time(s*float64(Second) + 0.5)
	}
	return -Time(-s*float64(Second) + 0.5)
}

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Milliseconds converts t to floating-point milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// String renders the time with adaptive precision (e.g. "2.500s",
// "1m23.4s").
func (t Time) String() string {
	switch {
	case t == Forever:
		return "forever"
	case t < 0:
		return "-" + (-t).String()
	case t < Millisecond:
		return fmt.Sprintf("%dµs", int64(t))
	case t < Second:
		return fmt.Sprintf("%.3fms", t.Milliseconds())
	case t < Minute:
		return fmt.Sprintf("%.3fs", t.Seconds())
	default:
		m := int64(t / Minute)
		rem := t - Time(m)*Minute
		return fmt.Sprintf("%dm%.1fs", m, rem.Seconds())
	}
}

// Min returns the smaller of a and b.
func Min(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

// Max returns the larger of a and b.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}
