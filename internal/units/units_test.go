package units

import (
	"testing"
	"testing/quick"
)

func TestConversions(t *testing.T) {
	if FromSeconds(1.5) != 1500*Millisecond {
		t.Errorf("FromSeconds(1.5) = %v", FromSeconds(1.5))
	}
	if FromSeconds(-2) != -2*Second {
		t.Errorf("FromSeconds(-2) = %v", FromSeconds(-2))
	}
	if got := (2500 * Millisecond).Seconds(); got != 2.5 {
		t.Errorf("Seconds = %v", got)
	}
	if got := (3 * Millisecond).Milliseconds(); got != 3 {
		t.Errorf("Milliseconds = %v", got)
	}
	if FromSeconds(1e30) != Forever {
		t.Error("huge seconds should clamp to Forever")
	}
}

func TestString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{500 * Microsecond, "500µs"},
		{250 * Millisecond, "250.000ms"},
		{2 * Second, "2.000s"},
		{90 * Second, "1m30.0s"},
		{Forever, "forever"},
		{-2 * Second, "-2.000s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestMinMax(t *testing.T) {
	if Min(2, 3) != 2 || Min(3, 2) != 2 {
		t.Error("Min broken")
	}
	if Max(2, 3) != 3 || Max(3, 2) != 3 {
		t.Error("Max broken")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(ms int32) bool {
		tm := Time(ms) * Millisecond
		return FromSeconds(tm.Seconds()) == tm
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
