package dag

// Levels returns the level of each task, 1-based: root tasks (no
// precedents) are at level 1 and every other task is one level below its
// deepest parent, so leaves of the longest chain sit at level L =
// NumLevels(). This matches the level structure in Figure 3 of the paper,
// where the job deadline attaches to the last (deepest) level.
//
// Levels returns ErrCycle if the graph is cyclic.
func (j *Job) Levels() ([]int, error) {
	if j.levels != nil {
		return j.levels, nil
	}
	order, err := j.TopoOrder()
	if err != nil {
		return nil, err
	}
	levels := make([]int, len(j.Tasks))
	for _, t := range order {
		lvl := 1
		for _, p := range j.parents[t] {
			if levels[p]+1 > lvl {
				lvl = levels[p] + 1
			}
		}
		levels[t] = lvl
	}
	j.levels = levels
	return levels, nil
}

// NumLevels returns L, the total number of levels in the DAG (the length
// of the longest chain). An empty job has zero levels.
func (j *Job) NumLevels() (int, error) {
	levels, err := j.Levels()
	if err != nil {
		return 0, err
	}
	max := 0
	for _, l := range levels {
		if l > max {
			max = l
		}
	}
	return max, nil
}

// TasksAtLevel returns the IDs of the tasks at the given 1-based level, in
// ascending ID order.
func (j *Job) TasksAtLevel(level int) ([]TaskID, error) {
	levels, err := j.Levels()
	if err != nil {
		return nil, err
	}
	var out []TaskID
	for i, l := range levels {
		if l == level {
			out = append(out, TaskID(i))
		}
	}
	return out, nil
}

// DescendantCounts returns, for each task, the number of distinct tasks
// that transitively depend on it. A task with more descendants unlocks
// more work when it finishes; DSP's priority favours such tasks.
func (j *Job) DescendantCounts() ([]int, error) {
	if j.desc != nil {
		return j.desc, nil
	}
	order, err := j.TopoOrder()
	if err != nil {
		return nil, err
	}
	n := len(j.Tasks)
	counts := make([]int, n)
	// For exact distinct-descendant counts we propagate bitsets in
	// reverse topological order. Words are packed uint64s; n is at most a
	// few thousand per the paper, so this stays cheap.
	words := (n + 63) / 64
	sets := make([][]uint64, n)
	for i := len(order) - 1; i >= 0; i-- {
		t := order[i]
		set := make([]uint64, words)
		for _, c := range j.children[t] {
			set[int(c)/64] |= 1 << (uint(c) % 64)
			for w, v := range sets[c] {
				set[w] |= v
			}
		}
		sets[t] = set
		cnt := 0
		for _, v := range set {
			cnt += popcount(v)
		}
		counts[t] = cnt
	}
	j.desc = counts
	return counts, nil
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// DescendantsAtDepth returns how many distinct tasks are exactly d edges
// of shortest dependency distance below task t (d=1 gives the direct
// dependents). The paper's Figure 3 discussion compares tasks by their
// dependent counts in the first level, then the second level, and so on.
func (j *Job) DescendantsAtDepth(t TaskID, d int) int {
	if d <= 0 {
		return 0
	}
	depth := make(map[TaskID]int)
	queue := []TaskID{t}
	depth[t] = 0
	count := 0
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if depth[cur] == d {
			count++
			continue
		}
		if depth[cur] > d {
			continue
		}
		for _, c := range j.children[cur] {
			if _, ok := depth[c]; !ok {
				depth[c] = depth[cur] + 1
				queue = append(queue, c)
			}
		}
	}
	return count
}

// MaxOutDegree returns the largest number of direct dependents any task
// has; the paper's generated DAGs cap this at fifteen.
func (j *Job) MaxOutDegree() int {
	max := 0
	for _, cs := range j.children {
		if len(cs) > max {
			max = len(cs)
		}
	}
	return max
}
