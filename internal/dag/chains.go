package dag

// Chain is a root-to-leaf path of tasks C_i^q; all tasks on a chain must
// be processed sequentially one after another (Section III).
type Chain []TaskID

// Chains enumerates root-to-leaf chains of the job in deterministic
// (lexicographic by task ID) order, stopping once limit chains have been
// produced (limit <= 0 means no limit). DAGs can have exponentially many
// chains, so callers at scale should pass a limit; the offline ILP builder
// only needs chains for small instances.
func (j *Job) Chains(limit int) ([]Chain, error) {
	if err := j.Validate(); err != nil {
		return nil, err
	}
	var out []Chain
	var path []TaskID
	var walk func(t TaskID) bool
	walk = func(t TaskID) bool {
		path = append(path, t)
		defer func() { path = path[:len(path)-1] }()
		if len(j.children[t]) == 0 {
			c := make(Chain, len(path))
			copy(c, path)
			out = append(out, c)
			return limit > 0 && len(out) >= limit
		}
		for _, c := range j.children[t] {
			if walk(c) {
				return true
			}
		}
		return false
	}
	for _, r := range j.Roots() {
		if walk(r) {
			break
		}
	}
	return out, nil
}

// CriticalPath returns the chain with the greatest total execution time
// under the given per-task execution-time function, along with that total.
// The critical path is the tightest lower bound on job completion time and
// is used to assign feasible job deadlines in the workload generator.
func (j *Job) CriticalPath(exec func(TaskID) float64) (Chain, float64, error) {
	order, err := j.TopoOrder()
	if err != nil {
		return nil, 0, err
	}
	n := len(j.Tasks)
	best := make([]float64, n) // longest path ending at task (inclusive)
	from := make([]TaskID, n)  // predecessor on that path
	for i := range from {
		from[i] = -1
	}
	for _, t := range order {
		w := exec(t)
		best[t] = w
		for _, p := range j.parents[t] {
			if best[p]+w > best[t] {
				best[t] = best[p] + w
				from[t] = p
			}
		}
	}
	var end TaskID
	var max float64
	for i := 0; i < n; i++ {
		if best[i] > max || (best[i] == max && TaskID(i) < end) {
			max = best[i]
			end = TaskID(i)
		}
	}
	var rev []TaskID
	for t := end; t != -1; t = from[t] {
		rev = append(rev, t)
	}
	chain := make(Chain, len(rev))
	for i, t := range rev {
		chain[len(rev)-1-i] = t
	}
	return chain, max, nil
}

// BottomLevel returns, for each task, the length of the longest
// execution-time path from the task (inclusive) to any leaf. List
// schedulers (HEFT-style) use the bottom level as a rank: scheduling
// larger-bottom-level tasks first keeps the critical path moving.
func (j *Job) BottomLevel(exec func(TaskID) float64) ([]float64, error) {
	order, err := j.TopoOrder()
	if err != nil {
		return nil, err
	}
	bl := make([]float64, len(j.Tasks))
	for i := len(order) - 1; i >= 0; i-- {
		t := order[i]
		var maxChild float64
		for _, c := range j.children[t] {
			if bl[c] > maxChild {
				maxChild = bl[c]
			}
		}
		bl[t] = exec(t) + maxChild
	}
	return bl, nil
}
