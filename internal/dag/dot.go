package dag

import (
	"fmt"
	"io"
)

// WriteDOT renders the job's dependency graph in Graphviz DOT format,
// with one node per task (labelled with its ID and size) grouped into
// ranks by DAG level. Pipe the output through `dot -Tsvg` to visualize a
// workload's structure.
func (j *Job) WriteDOT(w io.Writer) error {
	levels, err := j.Levels()
	if err != nil {
		return err
	}
	L, err := j.NumLevels()
	if err != nil {
		return err
	}
	var werr error
	p := func(format string, args ...any) {
		if werr == nil {
			_, werr = fmt.Fprintf(w, format, args...)
		}
	}
	p("digraph job%d {\n", j.ID)
	p("  rankdir=TB;\n")
	p("  node [shape=box, fontsize=10];\n")
	for l := 1; l <= L; l++ {
		p("  { rank=same;")
		for i, lv := range levels {
			if lv == l {
				p(" t%d;", i)
			}
		}
		p(" }\n")
	}
	for i, t := range j.Tasks {
		p("  t%d [label=\"T%d\\n%.0f MI\"];\n", i, i, t.Size)
	}
	for parent := range j.Tasks {
		for _, c := range j.Children(TaskID(parent)) {
			p("  t%d -> t%d;\n", parent, c)
		}
	}
	p("}\n")
	return werr
}
