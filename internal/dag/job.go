package dag

import (
	"errors"
	"fmt"
	"sort"
)

// ErrCycle is returned when the dependency graph contains a cycle.
var ErrCycle = errors.New("dag: dependency graph contains a cycle")

// Job is a set of tasks plus dependency edges between them. An edge
// parent -> child means child cannot start until parent has finished
// (parent is a "precedent" task, child a "dependent" task in the paper's
// terminology).
type Job struct {
	ID    JobID
	Tasks []*Task

	// Deadline is the job completion deadline t_i^d in seconds from the
	// job's submission. Zero means no deadline.
	Deadline float64

	// Production marks the job as a production job (vs research);
	// Natjam's eviction policy distinguishes the two classes.
	Production bool

	children [][]TaskID
	parents  [][]TaskID
	numEdges int

	// Caches invalidated by AddDep.
	topo   []TaskID
	levels []int
	desc   []int
}

// NewJob creates a job with n tasks, all initially independent. Task sizes
// and demands start at zero and should be filled in by the caller.
func NewJob(id JobID, n int) *Job {
	j := &Job{
		ID:       id,
		Tasks:    make([]*Task, n),
		children: make([][]TaskID, n),
		parents:  make([][]TaskID, n),
	}
	for i := 0; i < n; i++ {
		j.Tasks[i] = &Task{ID: TaskID(i), Job: id, Preferred: -1}
	}
	return j
}

// Len returns the number of tasks m in the job.
func (j *Job) Len() int { return len(j.Tasks) }

// Grow appends n new tasks to the job and returns their IDs, supporting
// the paper's future-work scenario of dynamically added tasks that
// extend the task-dependency graph. The new tasks start independent;
// wire them with AddDep.
func (j *Job) Grow(n int) []TaskID {
	start := len(j.Tasks)
	ids := make([]TaskID, 0, n)
	for i := 0; i < n; i++ {
		id := TaskID(start + i)
		j.Tasks = append(j.Tasks, &Task{ID: id, Job: j.ID, Preferred: -1})
		j.children = append(j.children, nil)
		j.parents = append(j.parents, nil)
		ids = append(ids, id)
	}
	j.invalidate()
	return ids
}

// NumEdges returns the number of dependency edges.
func (j *Job) NumEdges() int { return j.numEdges }

// Task returns the task with the given ID.
func (j *Job) Task(id TaskID) *Task { return j.Tasks[id] }

// AddDep records that child depends on parent (parent must finish before
// child starts). It rejects out-of-range IDs, self-loops and duplicate
// edges. Cycle detection is deferred to Validate / TopoOrder.
func (j *Job) AddDep(parent, child TaskID) error {
	n := TaskID(len(j.Tasks))
	if parent < 0 || parent >= n || child < 0 || child >= n {
		return fmt.Errorf("dag: edge %d->%d out of range [0,%d)", parent, child, n)
	}
	if parent == child {
		return fmt.Errorf("dag: self-dependency on task %d", parent)
	}
	for _, c := range j.children[parent] {
		if c == child {
			return fmt.Errorf("dag: duplicate edge %d->%d", parent, child)
		}
	}
	j.children[parent] = append(j.children[parent], child)
	j.parents[child] = append(j.parents[child], parent)
	j.numEdges++
	j.invalidate()
	return nil
}

// MustDep is AddDep but panics on error; convenient in tests and examples.
func (j *Job) MustDep(parent, child TaskID) {
	if err := j.AddDep(parent, child); err != nil {
		panic(err)
	}
}

func (j *Job) invalidate() {
	j.topo = nil
	j.levels = nil
	j.desc = nil
}

// Children returns the IDs of tasks that directly depend on t.
func (j *Job) Children(t TaskID) []TaskID { return j.children[t] }

// Parents returns the IDs of tasks t directly depends on.
func (j *Job) Parents(t TaskID) []TaskID { return j.parents[t] }

// OutDegree returns the number of direct dependents of t.
func (j *Job) OutDegree(t TaskID) int { return len(j.children[t]) }

// InDegree returns the number of direct precedents of t.
func (j *Job) InDegree(t TaskID) int { return len(j.parents[t]) }

// Roots returns the tasks with no precedents, in ID order.
func (j *Job) Roots() []TaskID {
	var out []TaskID
	for i := range j.Tasks {
		if len(j.parents[i]) == 0 {
			out = append(out, TaskID(i))
		}
	}
	return out
}

// Leaves returns the tasks with no dependents, in ID order.
func (j *Job) Leaves() []TaskID {
	var out []TaskID
	for i := range j.Tasks {
		if len(j.children[i]) == 0 {
			out = append(out, TaskID(i))
		}
	}
	return out
}

// Validate checks the dependency graph is acyclic.
func (j *Job) Validate() error {
	_, err := j.TopoOrder()
	return err
}

// CheckStructure validates the job's static structure beyond the
// acyclicity Validate covers: every task slot holds a task whose ID
// matches its position (duplicate or misplaced IDs corrupt ID-indexed
// lookups), every edge endpoint is in range with a mirrored entry in the
// opposite adjacency list (a dangling edge would panic or silently drop
// a dependency), and the graph is acyclic. Errors name the offending
// job and task or edge.
func (j *Job) CheckStructure() error {
	n := len(j.Tasks)
	if len(j.children) != n || len(j.parents) != n {
		return fmt.Errorf("dag: job %d: adjacency lists sized %d/%d for %d tasks",
			j.ID, len(j.children), len(j.parents), n)
	}
	for i, t := range j.Tasks {
		if t == nil {
			return fmt.Errorf("dag: job %d: task slot %d is nil", j.ID, i)
		}
		if int(t.ID) != i {
			return fmt.Errorf("dag: job %d: task slot %d holds task ID %d (duplicate or misplaced task ID)",
				j.ID, i, t.ID)
		}
	}
	mirrored := func(list []TaskID, want TaskID) bool {
		for _, id := range list {
			if id == want {
				return true
			}
		}
		return false
	}
	for p := range j.children {
		for _, c := range j.children[p] {
			if int(c) < 0 || int(c) >= n {
				return fmt.Errorf("dag: job %d: edge %d->%d dangles (task %d outside [0,%d))",
					j.ID, p, c, c, n)
			}
			if !mirrored(j.parents[c], TaskID(p)) {
				return fmt.Errorf("dag: job %d: edge %d->%d missing from task %d's parent list",
					j.ID, p, c, c)
			}
		}
	}
	for c := range j.parents {
		for _, p := range j.parents[c] {
			if int(p) < 0 || int(p) >= n {
				return fmt.Errorf("dag: job %d: edge %d->%d dangles (task %d outside [0,%d))",
					j.ID, p, c, p, n)
			}
			if !mirrored(j.children[p], TaskID(c)) {
				return fmt.Errorf("dag: job %d: edge %d->%d missing from task %d's child list",
					j.ID, p, c, p)
			}
		}
	}
	if err := j.Validate(); err != nil {
		return fmt.Errorf("dag: job %d: %w", j.ID, err)
	}
	return nil
}

// TopoOrder returns a topological order of the tasks (parents before
// children; ties broken by ascending task ID so the order is
// deterministic). It returns ErrCycle if the graph has a cycle.
func (j *Job) TopoOrder() ([]TaskID, error) {
	if j.topo != nil {
		return j.topo, nil
	}
	n := len(j.Tasks)
	indeg := make([]int, n)
	for i := 0; i < n; i++ {
		indeg[i] = len(j.parents[i])
	}
	// Min-ID frontier for determinism.
	frontier := make([]TaskID, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			frontier = append(frontier, TaskID(i))
		}
	}
	order := make([]TaskID, 0, n)
	for len(frontier) > 0 {
		sort.Slice(frontier, func(a, b int) bool { return frontier[a] < frontier[b] })
		t := frontier[0]
		frontier = frontier[1:]
		order = append(order, t)
		for _, c := range j.children[t] {
			indeg[c]--
			if indeg[c] == 0 {
				frontier = append(frontier, c)
			}
		}
	}
	if len(order) != n {
		return nil, ErrCycle
	}
	j.topo = order
	return order, nil
}

// DependsOn reports whether task a transitively depends on task b, i.e.
// whether there is a directed path b -> ... -> a. Condition C2 of the DSP
// preemption procedure requires that a waiting task not depend on the
// running task it would preempt.
func (j *Job) DependsOn(a, b TaskID) bool {
	if a == b {
		return false
	}
	// BFS from b along children.
	seen := make([]bool, len(j.Tasks))
	queue := []TaskID{b}
	seen[b] = true
	for len(queue) > 0 {
		t := queue[0]
		queue = queue[1:]
		for _, c := range j.children[t] {
			if c == a {
				return true
			}
			if !seen[c] {
				seen[c] = true
				queue = append(queue, c)
			}
		}
	}
	return false
}

// Clone returns a deep copy of the job (task structs are copied).
func (j *Job) Clone() *Job {
	c := NewJob(j.ID, len(j.Tasks))
	c.Deadline = j.Deadline
	c.Production = j.Production
	for i, t := range j.Tasks {
		tc := *t
		c.Tasks[i] = &tc
	}
	for p := range j.children {
		for _, ch := range j.children[p] {
			c.children[p] = append(c.children[p], ch)
			c.parents[ch] = append(c.parents[ch], TaskID(p))
			c.numEdges++
		}
	}
	return c
}

// TotalSize returns the sum of task sizes (MI) in the job.
func (j *Job) TotalSize() float64 {
	var s float64
	for _, t := range j.Tasks {
		s += t.Size
	}
	return s
}
