package dag

// TaskDeadlines derives a deadline for every task from the job deadline,
// following Section IV-B of the paper: the deadline of the tasks in the
// last level L is the job's deadline (t^d_ijL = t^d_i), and the deadline
// of the tasks in level l is the job's deadline minus the maximum
// execution time of the tasks in each level from L down to l+1:
//
//	t^d_ijl = t^d_i - Σ_{k=l+1..L} max_j { t_ijk }
//
// jobDeadline and the returned deadlines are in seconds relative to the
// same origin (typically job submission); exec gives each task's nominal
// execution time in seconds.
func (j *Job) TaskDeadlines(jobDeadline float64, exec func(TaskID) float64) ([]float64, error) {
	levels, err := j.Levels()
	if err != nil {
		return nil, err
	}
	L, err := j.NumLevels()
	if err != nil {
		return nil, err
	}
	// maxExec[l] = max over tasks at 1-based level l of exec time.
	maxExec := make([]float64, L+1)
	for i, l := range levels {
		if e := exec(TaskID(i)); e > maxExec[l] {
			maxExec[l] = e
		}
	}
	// suffix[l] = Σ_{k=l+1..L} maxExec[k]
	suffix := make([]float64, L+2)
	for l := L - 1; l >= 0; l-- {
		suffix[l] = suffix[l+1] + maxExec[l+1]
	}
	out := make([]float64, len(j.Tasks))
	for i, l := range levels {
		out[i] = jobDeadline - suffix[l]
	}
	return out, nil
}

// AllowableWait returns a task's allowable waiting time t^a = t^d - t^rem:
// as long as the task's subsequent waiting time does not exceed t^a, it
// can still complete by its deadline. deadline and remaining are both in
// seconds measured from now; a negative result means the deadline is
// already unreachable.
func AllowableWait(deadline, remaining float64) float64 {
	return deadline - remaining
}
