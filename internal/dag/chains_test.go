package dag

import (
	"strings"
	"testing"
)

func TestChainsDiamond(t *testing.T) {
	j := diamond(t)
	chains, err := j.Chains(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(chains) != 2 {
		t.Fatalf("got %d chains, want 2: %v", len(chains), chains)
	}
	want := [][]TaskID{{0, 1, 3}, {0, 2, 3}}
	for i, w := range want {
		if len(chains[i]) != len(w) {
			t.Fatalf("chain %d = %v, want %v", i, chains[i], w)
		}
		for k := range w {
			if chains[i][k] != w[k] {
				t.Fatalf("chain %d = %v, want %v", i, chains[i], w)
			}
		}
	}
}

func TestChainsLimit(t *testing.T) {
	j := diamond(t)
	chains, err := j.Chains(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(chains) != 1 {
		t.Fatalf("limit ignored: got %d chains", len(chains))
	}
}

func TestChainsIndependent(t *testing.T) {
	j := NewJob(1, 3)
	chains, err := j.Chains(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(chains) != 3 {
		t.Fatalf("got %d chains, want 3 singletons", len(chains))
	}
	for i, c := range chains {
		if len(c) != 1 || c[0] != TaskID(i) {
			t.Errorf("chain %d = %v", i, c)
		}
	}
}

func TestCriticalPath(t *testing.T) {
	j := diamond(t)
	// Exec times: 0:1, 1:5, 2:2, 3:1 -> critical path 0-1-3 length 7.
	exec := func(id TaskID) float64 { return []float64{1, 5, 2, 1}[id] }
	path, length, err := j.CriticalPath(exec)
	if err != nil {
		t.Fatal(err)
	}
	if length != 7 {
		t.Errorf("critical path length = %v, want 7", length)
	}
	want := []TaskID{0, 1, 3}
	if len(path) != 3 {
		t.Fatalf("path = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
}

func TestBottomLevel(t *testing.T) {
	j := diamond(t)
	exec := func(id TaskID) float64 { return []float64{1, 5, 2, 1}[id] }
	bl, err := j.BottomLevel(exec)
	if err != nil {
		t.Fatal(err)
	}
	// Leaf 3: 1. Task 1: 5+1=6. Task 2: 2+1=3. Root 0: 1+max(6,3)=7.
	want := []float64{7, 6, 3, 1}
	for i, w := range want {
		if bl[i] != w {
			t.Errorf("bottomLevel[%d] = %v, want %v", i, bl[i], w)
		}
	}
}

func TestTaskDeadlines(t *testing.T) {
	j := diamond(t)
	// Exec times 0:1, 1:5, 2:2, 3:1. Levels: 0->1, 1,2->2, 3->3. L=3.
	// maxExec by level: l1=1, l2=5, l3=1.
	// Deadline at level 3 = D. Level 2 = D-1. Level 1 = D-1-5 = D-6.
	exec := func(id TaskID) float64 { return []float64{1, 5, 2, 1}[id] }
	d, err := j.TaskDeadlines(100, exec)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{94, 99, 99, 100}
	for i, w := range want {
		if d[i] != w {
			t.Errorf("deadline[%d] = %v, want %v", i, d[i], w)
		}
	}
}

func TestTaskDeadlinesSingleLevel(t *testing.T) {
	j := NewJob(1, 3)
	exec := func(TaskID) float64 { return 4 }
	d, err := j.TaskDeadlines(10, exec)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range d {
		if v != 10 {
			t.Errorf("deadline[%d] = %v, want 10 (all tasks at last level)", i, v)
		}
	}
}

func TestAllowableWait(t *testing.T) {
	if got := AllowableWait(10, 3); got != 7 {
		t.Errorf("AllowableWait = %v, want 7", got)
	}
	if got := AllowableWait(2, 5); got != -3 {
		t.Errorf("AllowableWait = %v, want -3 (missed deadline)", got)
	}
}

func TestWriteDOT(t *testing.T) {
	j := diamond(t)
	j.Task(0).Size = 100
	var buf strings.Builder
	if err := j.WriteDOT(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"digraph job1", "t0 -> t1;", "t0 -> t2;", "t1 -> t3;", "t2 -> t3;",
		"T0\\n100 MI", "rank=same",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
	// Cyclic graphs refuse to render.
	c := NewJob(9, 2)
	c.MustDep(0, 1)
	c.MustDep(1, 0)
	if err := c.WriteDOT(&buf); err == nil {
		t.Error("cyclic DOT render accepted")
	}
}
