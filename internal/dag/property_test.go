package dag

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomDAG builds a random DAG with edges oriented from lower to higher
// task IDs (hence acyclic by construction).
func randomDAG(r *rand.Rand, n, maxEdges int) *Job {
	j := NewJob(JobID(r.Intn(1000)), n)
	for e := 0; e < maxEdges; e++ {
		a := r.Intn(n)
		b := r.Intn(n)
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		_ = j.AddDep(TaskID(a), TaskID(b)) // duplicate edges rejected, fine
	}
	for i := 0; i < n; i++ {
		j.Task(TaskID(i)).Size = 1 + r.Float64()*999
	}
	return j
}

func TestPropertyTopoRespectsEdges(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(40)
		j := randomDAG(r, n, 3*n)
		order, err := j.TopoOrder()
		if err != nil {
			return false
		}
		pos := make([]int, n)
		for i, id := range order {
			pos[id] = i
		}
		for p := 0; p < n; p++ {
			for _, c := range j.Children(TaskID(p)) {
				if pos[p] >= pos[c] {
					return false
				}
			}
		}
		return len(order) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyLevelsIncreaseAlongEdges(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(40)
		j := randomDAG(r, n, 3*n)
		levels, err := j.Levels()
		if err != nil {
			return false
		}
		for p := 0; p < n; p++ {
			if levels[p] < 1 {
				return false
			}
			for _, c := range j.Children(TaskID(p)) {
				if levels[c] <= levels[p] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyDescendantCountsBounds(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(30)
		j := randomDAG(r, n, 3*n)
		counts, err := j.DescendantCounts()
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			id := TaskID(i)
			if counts[i] < j.OutDegree(id) || counts[i] > n-1 {
				return false
			}
			// Cross-check against DependsOn for one random other task.
			o := TaskID(r.Intn(n))
			if o != id && j.DependsOn(o, id) && counts[i] == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestPropertyChainsAreValidPaths(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(12)
		j := randomDAG(r, n, 2*n)
		chains, err := j.Chains(64)
		if err != nil {
			return false
		}
		for _, c := range chains {
			if len(c) == 0 {
				return false
			}
			if j.InDegree(c[0]) != 0 {
				return false // must start at a root
			}
			for i := 0; i+1 < len(c); i++ {
				edge := false
				for _, ch := range j.Children(c[i]) {
					if ch == c[i+1] {
						edge = true
						break
					}
				}
				if !edge {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestPropertyDeadlinesMonotoneInLevel(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(25)
		j := randomDAG(r, n, 3*n)
		exec := func(id TaskID) float64 { return j.Task(id).Size / 100 }
		deadlines, err := j.TaskDeadlines(1e6, exec)
		if err != nil {
			return false
		}
		levels, _ := j.Levels()
		for p := 0; p < n; p++ {
			for _, c := range j.Children(TaskID(p)) {
				// A deeper level can never have an earlier deadline.
				if levels[c] > levels[p] && deadlines[c] < deadlines[p] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestPropertyCriticalPathDominatesBottomLevels(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(25)
		j := randomDAG(r, n, 3*n)
		exec := func(id TaskID) float64 { return j.Task(id).Size / 100 }
		_, cp, err := j.CriticalPath(exec)
		if err != nil {
			return false
		}
		bl, err := j.BottomLevel(exec)
		if err != nil {
			return false
		}
		const eps = 1e-9
		maxBL := 0.0
		for i, v := range bl {
			if v < exec(TaskID(i))-eps {
				return false // bottom level includes the task itself
			}
			if v > maxBL {
				maxBL = v
			}
		}
		// The max bottom level over roots equals the critical path length.
		return maxBL <= cp+eps && cp <= maxBL+eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
