package dag

import "testing"

// figure3 builds a DAG shaped like the paper's Figure 3 discussion:
// three root tasks with different dependent structures.
//
//	T0 -> T1..T4                         (4 children, no grandchildren)
//	T5 -> T6,T7 ; T6 -> T8,T9            (2 children, 2 grandchildren)
//	T10 -> T11,T12 ; T11 -> T13,T14 ; T12 -> T15,T16
func figure3() *Job {
	j := NewJob(3, 17)
	j.MustDep(0, 1)
	j.MustDep(0, 2)
	j.MustDep(0, 3)
	j.MustDep(0, 4)
	j.MustDep(5, 6)
	j.MustDep(5, 7)
	j.MustDep(6, 8)
	j.MustDep(6, 9)
	j.MustDep(10, 11)
	j.MustDep(10, 12)
	j.MustDep(11, 13)
	j.MustDep(11, 14)
	j.MustDep(12, 15)
	j.MustDep(12, 16)
	return j
}

func TestLevelsDiamond(t *testing.T) {
	j := diamond(t)
	levels, err := j.Levels()
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 2, 3}
	for i, w := range want {
		if levels[i] != w {
			t.Errorf("level[%d] = %d, want %d", i, levels[i], w)
		}
	}
	L, _ := j.NumLevels()
	if L != 3 {
		t.Errorf("NumLevels = %d, want 3", L)
	}
}

func TestTasksAtLevel(t *testing.T) {
	j := diamond(t)
	mid, err := j.TasksAtLevel(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(mid) != 2 || mid[0] != 1 || mid[1] != 2 {
		t.Errorf("TasksAtLevel(2) = %v, want [1 2]", mid)
	}
	none, _ := j.TasksAtLevel(9)
	if len(none) != 0 {
		t.Errorf("TasksAtLevel(9) = %v, want empty", none)
	}
}

func TestDescendantCounts(t *testing.T) {
	j := figure3()
	counts, err := j.DescendantCounts()
	if err != nil {
		t.Fatal(err)
	}
	if counts[0] != 4 {
		t.Errorf("T0 descendants = %d, want 4", counts[0])
	}
	if counts[5] != 4 {
		t.Errorf("T5 descendants = %d, want 4", counts[5])
	}
	if counts[10] != 6 {
		t.Errorf("T10 descendants = %d, want 6", counts[10])
	}
	if counts[1] != 0 {
		t.Errorf("leaf T1 descendants = %d, want 0", counts[1])
	}
}

func TestDescendantCountsDiamondDistinct(t *testing.T) {
	// Diamond: T0's descendants are {1,2,3} — task 3 must be counted once
	// even though it is reachable along two paths.
	j := diamond(t)
	counts, err := j.DescendantCounts()
	if err != nil {
		t.Fatal(err)
	}
	if counts[0] != 3 {
		t.Errorf("diamond root descendants = %d, want 3 (distinct)", counts[0])
	}
}

func TestDescendantsAtDepth(t *testing.T) {
	j := figure3()
	// T0: 4 at depth 1, 0 at depth 2.
	if got := j.DescendantsAtDepth(0, 1); got != 4 {
		t.Errorf("T0 depth-1 = %d, want 4", got)
	}
	if got := j.DescendantsAtDepth(0, 2); got != 0 {
		t.Errorf("T0 depth-2 = %d, want 0", got)
	}
	// T5: 2 at depth 1, 2 at depth 2.
	if got := j.DescendantsAtDepth(5, 1); got != 2 {
		t.Errorf("T5 depth-1 = %d, want 2", got)
	}
	if got := j.DescendantsAtDepth(5, 2); got != 2 {
		t.Errorf("T5 depth-2 = %d, want 2", got)
	}
	// T10: 2 at depth 1, 4 at depth 2 — more than T5, so per the paper's
	// Figure 3 argument T10 should end up with higher priority.
	if got := j.DescendantsAtDepth(10, 2); got != 4 {
		t.Errorf("T10 depth-2 = %d, want 4", got)
	}
	if got := j.DescendantsAtDepth(0, 0); got != 0 {
		t.Errorf("depth-0 = %d, want 0", got)
	}
}

func TestMaxOutDegree(t *testing.T) {
	j := figure3()
	if got := j.MaxOutDegree(); got != 4 {
		t.Errorf("MaxOutDegree = %d, want 4", got)
	}
	if got := NewJob(1, 2).MaxOutDegree(); got != 0 {
		t.Errorf("edgeless MaxOutDegree = %d, want 0", got)
	}
}
