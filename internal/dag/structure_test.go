package dag

import (
	"strings"
	"testing"
)

// CheckStructure guards against corruption that AddDep can never
// produce, so these tests reach into the unexported adjacency lists.
func TestCheckStructureDetectsCorruption(t *testing.T) {
	mk := func() *Job {
		j := NewJob(7, 3)
		for i := range j.Tasks {
			j.Task(TaskID(i)).Size = 100
		}
		j.MustDep(0, 1)
		j.MustDep(1, 2)
		return j
	}
	cases := []struct {
		name    string
		corrupt func(j *Job)
		want    string
	}{
		{
			name:    "clean graph passes",
			corrupt: func(j *Job) {},
		},
		{
			name:    "dangling child edge",
			corrupt: func(j *Job) { j.children[0] = append(j.children[0], 99) },
			want:    "edge 0->99 dangles",
		},
		{
			name:    "dangling parent edge",
			corrupt: func(j *Job) { j.parents[2] = append(j.parents[2], -1) },
			want:    "dangles",
		},
		{
			name:    "unmirrored edge",
			corrupt: func(j *Job) { j.children[0] = append(j.children[0], 2) },
			want:    "edge 0->2 missing from task 2's parent list",
		},
		{
			name:    "duplicate task ID",
			corrupt: func(j *Job) { j.Tasks[2].ID = 0 },
			want:    "task slot 2 holds task ID 0",
		},
		{
			name:    "nil task slot",
			corrupt: func(j *Job) { j.Tasks[1] = nil },
			want:    "task slot 1 is nil",
		},
		{
			name:    "truncated adjacency",
			corrupt: func(j *Job) { j.children = j.children[:2] },
			want:    "adjacency lists sized",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			j := mk()
			tc.corrupt(j)
			err := j.CheckStructure()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("clean graph rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatal("corrupted graph accepted")
			}
			if !strings.Contains(err.Error(), "job 7") {
				t.Errorf("error %q does not name the job", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q, want substring %q", err, tc.want)
			}
		})
	}
}
