// Package dag models data-parallel jobs as directed acyclic graphs of
// tasks, following the model in Section III of the DSP paper (Liu et al.,
// CLUSTER 2018). A job is split into m tasks; dependency edges constrain
// execution order (a task cannot start until every precedent task has
// finished). The package provides structural analyses used by both the
// offline scheduler and the online preemption policy: topological order,
// level assignment, chains, per-level descendant counts and per-task
// deadline derivation.
package dag

import "fmt"

// TaskID identifies a task within its job (0-based dense index).
type TaskID int

// JobID identifies a job within a workload.
type JobID int

// Resources describes a task's peak resource demand. CPU and Mem are in
// abstract normalized units (a node's capacity is expressed in the same
// units); Disk is in MB and Bandwidth in MB/s, matching the constants used
// in the paper's evaluation (0.02 MB and 0.02 MB/s per task).
type Resources struct {
	CPU       float64
	Mem       float64
	DiskMB    float64
	Bandwidth float64
}

// Add returns the component-wise sum r + o.
func (r Resources) Add(o Resources) Resources {
	return Resources{
		CPU:       r.CPU + o.CPU,
		Mem:       r.Mem + o.Mem,
		DiskMB:    r.DiskMB + o.DiskMB,
		Bandwidth: r.Bandwidth + o.Bandwidth,
	}
}

// Sub returns the component-wise difference r - o.
func (r Resources) Sub(o Resources) Resources {
	return Resources{
		CPU:       r.CPU - o.CPU,
		Mem:       r.Mem - o.Mem,
		DiskMB:    r.DiskMB - o.DiskMB,
		Bandwidth: r.Bandwidth - o.Bandwidth,
	}
}

// Fits reports whether demand r fits within capacity c on every dimension.
func (r Resources) Fits(c Resources) bool {
	return r.CPU <= c.CPU && r.Mem <= c.Mem &&
		r.DiskMB <= c.DiskMB && r.Bandwidth <= c.Bandwidth
}

// Dot returns the weighted dot product of two resource vectors over the
// CPU and memory dimensions; Tetris' alignment score uses this.
func (r Resources) Dot(o Resources) float64 {
	return r.CPU*o.CPU + r.Mem*o.Mem
}

// Task is one unit of work within a job. Size is the task length l_ij in
// millions of instructions (MI); executing it on a node with processing
// rate g(k) MIPS takes l_ij / g(k) seconds (Equation 2 in the paper).
type Task struct {
	ID  TaskID
	Job JobID
	// Size is the task length in millions of instructions.
	Size float64
	// Demand is the task's peak resource demand.
	Demand Resources
	// Preferred is the node holding the task's input data (data
	// locality, the paper's first future-work item); negative means no
	// preference. Running elsewhere may incur a remote-input penalty.
	Preferred int
}

// Key globally identifies a task across jobs.
type Key struct {
	Job  JobID
	Task TaskID
}

// String renders a task key as "J3.T17".
func (k Key) String() string { return fmt.Sprintf("J%d.T%d", k.Job, k.Task) }

// Key returns the global key of t.
func (t *Task) Key() Key { return Key{Job: t.Job, Task: t.ID} }
