package dag_test

import (
	"fmt"
	"os"

	"dsp/internal/dag"
)

// Build the paper's Figure 2 example DAG and inspect its structure.
func Example() {
	job := dag.NewJob(1, 7)
	for i := 0; i < 7; i++ {
		job.Task(dag.TaskID(i)).Size = 1000 * float64(i+1)
	}
	job.MustDep(0, 1)
	job.MustDep(0, 2)
	job.MustDep(1, 3)
	job.MustDep(1, 4)
	job.MustDep(2, 5)
	job.MustDep(2, 6)

	order, _ := job.TopoOrder()
	fmt.Println("topological order:", order)

	levels, _ := job.Levels()
	fmt.Println("levels:", levels)

	counts, _ := job.DescendantCounts()
	fmt.Println("descendants of T0:", counts[0])
	// Output:
	// topological order: [0 1 2 3 4 5 6]
	// levels: [1 2 2 3 3 3 3]
	// descendants of T0: 6
}

func ExampleJob_CriticalPath() {
	job := dag.NewJob(0, 4)
	sizes := []float64{1000, 5000, 2000, 1000}
	for i, s := range sizes {
		job.Task(dag.TaskID(i)).Size = s
	}
	job.MustDep(0, 1)
	job.MustDep(0, 2)
	job.MustDep(1, 3)
	job.MustDep(2, 3)

	// Execution time at 1000 MIPS.
	path, length, _ := job.CriticalPath(func(t dag.TaskID) float64 {
		return job.Task(t).Size / 1000
	})
	fmt.Printf("critical path %v takes %.0f s\n", path, length)
	// Output:
	// critical path [0 1 3] takes 7 s
}

func ExampleJob_TaskDeadlines() {
	job := dag.NewJob(0, 3)
	for i := 0; i < 3; i++ {
		job.Task(dag.TaskID(i)).Size = 2000
	}
	job.MustDep(0, 1)
	job.MustDep(1, 2)

	// Job deadline 60 s; each task takes 2 s at 1000 MIPS. Per the
	// paper's backward rule, earlier levels get earlier deadlines.
	deadlines, _ := job.TaskDeadlines(60, func(t dag.TaskID) float64 {
		return job.Task(t).Size / 1000
	})
	fmt.Println(deadlines)
	// Output:
	// [56 58 60]
}

func ExampleJob_WriteDOT() {
	job := dag.NewJob(0, 2)
	job.Task(0).Size = 10
	job.Task(1).Size = 20
	job.MustDep(0, 1)
	_ = job.WriteDOT(os.Stdout)
	// Output:
	// digraph job0 {
	//   rankdir=TB;
	//   node [shape=box, fontsize=10];
	//   { rank=same; t0; }
	//   { rank=same; t1; }
	//   t0 [label="T0\n10 MI"];
	//   t1 [label="T1\n20 MI"];
	//   t0 -> t1;
	// }
}
