package dag

import (
	"testing"
)

// diamond builds the classic diamond DAG: 0 -> {1,2} -> 3.
func diamond(t *testing.T) *Job {
	t.Helper()
	j := NewJob(1, 4)
	j.MustDep(0, 1)
	j.MustDep(0, 2)
	j.MustDep(1, 3)
	j.MustDep(2, 3)
	return j
}

func TestNewJobBasics(t *testing.T) {
	j := NewJob(7, 5)
	if j.Len() != 5 {
		t.Fatalf("Len = %d, want 5", j.Len())
	}
	if j.NumEdges() != 0 {
		t.Fatalf("NumEdges = %d, want 0", j.NumEdges())
	}
	for i := 0; i < 5; i++ {
		task := j.Task(TaskID(i))
		if task.ID != TaskID(i) || task.Job != 7 {
			t.Fatalf("task %d has ID %d job %d", i, task.ID, task.Job)
		}
	}
}

func TestAddDepErrors(t *testing.T) {
	j := NewJob(1, 3)
	if err := j.AddDep(0, 3); err == nil {
		t.Error("out-of-range child accepted")
	}
	if err := j.AddDep(-1, 0); err == nil {
		t.Error("out-of-range parent accepted")
	}
	if err := j.AddDep(1, 1); err == nil {
		t.Error("self-loop accepted")
	}
	if err := j.AddDep(0, 1); err != nil {
		t.Fatalf("valid edge rejected: %v", err)
	}
	if err := j.AddDep(0, 1); err == nil {
		t.Error("duplicate edge accepted")
	}
	if j.NumEdges() != 1 {
		t.Errorf("NumEdges = %d, want 1", j.NumEdges())
	}
}

func TestTopoOrderDiamond(t *testing.T) {
	j := diamond(t)
	order, err := j.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[TaskID]int)
	for i, id := range order {
		pos[id] = i
	}
	for p := 0; p < 4; p++ {
		for _, c := range j.Children(TaskID(p)) {
			if pos[TaskID(p)] >= pos[c] {
				t.Errorf("parent %d not before child %d in %v", p, c, order)
			}
		}
	}
	if len(order) != 4 {
		t.Fatalf("order has %d tasks, want 4", len(order))
	}
}

func TestTopoOrderDeterministic(t *testing.T) {
	j := NewJob(1, 6)
	j.MustDep(5, 2)
	j.MustDep(5, 0)
	j.MustDep(3, 1)
	a, _ := j.TopoOrder()
	j2 := j.Clone()
	b, _ := j2.TopoOrder()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("orders differ at %d: %v vs %v", i, a, b)
		}
	}
}

func TestCycleDetection(t *testing.T) {
	j := NewJob(1, 3)
	j.MustDep(0, 1)
	j.MustDep(1, 2)
	j.MustDep(2, 0)
	if err := j.Validate(); err != ErrCycle {
		t.Fatalf("Validate = %v, want ErrCycle", err)
	}
	if _, err := j.Levels(); err != ErrCycle {
		t.Fatalf("Levels err = %v, want ErrCycle", err)
	}
}

func TestRootsLeaves(t *testing.T) {
	j := diamond(t)
	roots := j.Roots()
	if len(roots) != 1 || roots[0] != 0 {
		t.Errorf("Roots = %v, want [0]", roots)
	}
	leaves := j.Leaves()
	if len(leaves) != 1 || leaves[0] != 3 {
		t.Errorf("Leaves = %v, want [3]", leaves)
	}
	empty := NewJob(2, 3)
	if got := len(empty.Roots()); got != 3 {
		t.Errorf("independent job has %d roots, want 3", got)
	}
}

func TestDependsOn(t *testing.T) {
	j := diamond(t)
	cases := []struct {
		a, b TaskID
		want bool
	}{
		{3, 0, true},  // 3 transitively depends on 0
		{1, 0, true},  // direct
		{0, 3, false}, // reversed
		{1, 2, false}, // siblings
		{2, 2, false}, // self
	}
	for _, c := range cases {
		if got := j.DependsOn(c.a, c.b); got != c.want {
			t.Errorf("DependsOn(%d,%d) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestClone(t *testing.T) {
	j := diamond(t)
	j.Deadline = 42
	j.Production = true
	j.Task(0).Size = 100
	c := j.Clone()
	if c.Deadline != 42 || !c.Production || c.NumEdges() != 4 {
		t.Fatalf("clone lost metadata: %+v", c)
	}
	c.Task(0).Size = 7
	if j.Task(0).Size != 100 {
		t.Error("clone shares task structs with original")
	}
	if err := c.AddDep(1, 2); err != nil {
		t.Fatalf("AddDep on clone: %v", err)
	}
	if j.NumEdges() != 4 {
		t.Error("adding edge to clone mutated original")
	}
}

func TestTotalSize(t *testing.T) {
	j := NewJob(1, 3)
	j.Task(0).Size = 1.5
	j.Task(1).Size = 2.5
	j.Task(2).Size = 4
	if got := j.TotalSize(); got != 8 {
		t.Errorf("TotalSize = %v, want 8", got)
	}
}

func TestResources(t *testing.T) {
	a := Resources{CPU: 1, Mem: 2, DiskMB: 3, Bandwidth: 4}
	b := Resources{CPU: 0.5, Mem: 1, DiskMB: 1, Bandwidth: 1}
	sum := a.Add(b)
	if sum.CPU != 1.5 || sum.Mem != 3 || sum.DiskMB != 4 || sum.Bandwidth != 5 {
		t.Errorf("Add = %+v", sum)
	}
	diff := a.Sub(b)
	if diff.CPU != 0.5 || diff.Mem != 1 {
		t.Errorf("Sub = %+v", diff)
	}
	if !b.Fits(a) {
		t.Error("b should fit in a")
	}
	if a.Fits(b) {
		t.Error("a should not fit in b")
	}
	if got := a.Dot(b); got != 1*0.5+2*1 {
		t.Errorf("Dot = %v", got)
	}
}

func TestKeyString(t *testing.T) {
	k := Key{Job: 3, Task: 17}
	if k.String() != "J3.T17" {
		t.Errorf("Key.String = %q", k.String())
	}
	task := &Task{ID: 2, Job: 9}
	if task.Key() != (Key{Job: 9, Task: 2}) {
		t.Errorf("Task.Key = %v", task.Key())
	}
}
