package experiments

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"dsp/internal/trace"
)

// Serving-mode load generator: drives a running dspserve daemon over
// HTTP at a target wall-clock submission rate, honoring its 429
// backpressure (sleep for Retry-After, retry the same job), polling job
// statuses mid-run, and scraping /metrics for the evidence the
// acceptance run needs — heap growth across the run and the
// serve-period latency quantiles. results/serve_real50.txt records one
// such run; scripts/serve_smoke.sh replays a small one in CI.

// ServeLoadOptions configures RunServeLoad.
type ServeLoadOptions struct {
	// BaseURL is the daemon's root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Jobs is how many jobs to submit.
	Jobs int
	// Seed and Scale parameterize the generated workload (defaults: 1,
	// 0.03 — the repo's reduced-scale default).
	Seed  int64
	Scale float64
	// JobsPerMinute is the target wall-clock submission rate (default
	// 1000).
	JobsPerMinute float64
	// SampleEvery polls one submitted job's status and scrapes /metrics
	// every N submissions (default 25).
	SampleEvery int
	// Client overrides the HTTP client (default: 10s timeout).
	Client *http.Client
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

// ServeLoadReport is the generator's outcome summary.
type ServeLoadReport struct {
	Submitted     int     // jobs accepted by the daemon
	Backpressured int     // 429 responses absorbed (with retry)
	StatusChecks  int     // GET /jobs/{id} probes issued
	WallSeconds   float64 // wall time spent submitting
	AchievedPerMin float64

	// Heap samples from /metrics (dsp_heap_alloc_bytes): first, last and
	// the maximum seen across periodic scrapes — the bounded-memory
	// evidence.
	HeapStartBytes float64
	HeapEndBytes   float64
	HeapPeakBytes  float64

	// Serve-period latency quantiles from the final /metrics scrape
	// (dsp_phase_seconds{phase="serve-period"}), in milliseconds.
	PeriodCount int
	PeriodP50Ms float64
	PeriodP99Ms float64
	PeriodMaxMs float64
}

// Format renders the report as the plain-text block the results file
// records.
func (r *ServeLoadReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "submitted             %d\n", r.Submitted)
	fmt.Fprintf(&b, "backpressured (429)   %d\n", r.Backpressured)
	fmt.Fprintf(&b, "status checks         %d\n", r.StatusChecks)
	fmt.Fprintf(&b, "wall seconds          %.1f\n", r.WallSeconds)
	fmt.Fprintf(&b, "achieved jobs/min     %.0f\n", r.AchievedPerMin)
	fmt.Fprintf(&b, "heap start            %.1f MiB\n", r.HeapStartBytes/(1<<20))
	fmt.Fprintf(&b, "heap end              %.1f MiB\n", r.HeapEndBytes/(1<<20))
	fmt.Fprintf(&b, "heap peak             %.1f MiB\n", r.HeapPeakBytes/(1<<20))
	fmt.Fprintf(&b, "serve-period samples  %d\n", r.PeriodCount)
	fmt.Fprintf(&b, "serve-period p50      %.2f ms\n", r.PeriodP50Ms)
	fmt.Fprintf(&b, "serve-period p99      %.2f ms\n", r.PeriodP99Ms)
	fmt.Fprintf(&b, "serve-period max      %.2f ms\n", r.PeriodMaxMs)
	return b.String()
}

// RunServeLoad generates a deterministic workload and submits it to a
// running daemon at the target rate. Jobs are submitted with arrival 0
// so each becomes schedulable at the next period boundary after its
// submission — wall-clock pacing, not the trace's virtual arrivals,
// shapes the load.
func RunServeLoad(ctx context.Context, o ServeLoadOptions) (*ServeLoadReport, error) {
	if o.Jobs <= 0 {
		return nil, fmt.Errorf("experiments: serve load needs Jobs > 0")
	}
	if o.Scale <= 0 {
		o.Scale = 0.03
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.JobsPerMinute <= 0 {
		o.JobsPerMinute = 1000
	}
	if o.SampleEvery <= 0 {
		o.SampleEvery = 25
	}
	client := o.Client
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	logf := o.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	w, err := workloadAtRate(o.Jobs, Options{Scale: o.Scale, Seed: o.Seed}, 3.5)
	if err != nil {
		return nil, err
	}
	bodies := make([][]byte, 0, len(w.Jobs))
	for _, tj := range w.Jobs {
		tj.Arrival = 0
		b, err := trace.EncodeJob(tj)
		if err != nil {
			return nil, err
		}
		bodies = append(bodies, b)
	}

	rep := &ServeLoadReport{}
	if heap, ok := scrapeGauge(client, o.BaseURL, "dsp_heap_alloc_bytes"); ok {
		rep.HeapStartBytes, rep.HeapPeakBytes = heap, heap
	}

	interval := time.Duration(float64(time.Minute) / o.JobsPerMinute)
	start := time.Now()
	next := start
	for i, body := range bodies {
		if sleep := time.Until(next); sleep > 0 {
			select {
			case <-ctx.Done():
				return rep, ctx.Err()
			case <-time.After(sleep):
			}
		}
		next = next.Add(interval)
		for {
			code, retryAfter, err := postJob(client, o.BaseURL, body)
			if err != nil {
				return rep, fmt.Errorf("experiments: submit job %d: %w", i, err)
			}
			if code == http.StatusAccepted {
				rep.Submitted++
				break
			}
			if code == http.StatusTooManyRequests {
				rep.Backpressured++
				select {
				case <-ctx.Done():
					return rep, ctx.Err()
				case <-time.After(retryAfter):
				}
				continue
			}
			return rep, fmt.Errorf("experiments: submit job %d: unexpected HTTP %d", i, code)
		}
		if rep.Submitted%o.SampleEvery == 0 {
			// Mid-run probes: one status read and one metrics scrape.
			id := w.Jobs[i].DAG.ID
			if code := getStatus(client, o.BaseURL, int(id)); code == http.StatusOK {
				rep.StatusChecks++
			}
			if heap, ok := scrapeGauge(client, o.BaseURL, "dsp_heap_alloc_bytes"); ok {
				if heap > rep.HeapPeakBytes {
					rep.HeapPeakBytes = heap
				}
			}
			logf("submitted %d/%d (%d backpressured)", rep.Submitted, len(bodies), rep.Backpressured)
		}
	}
	rep.WallSeconds = time.Since(start).Seconds()
	if rep.WallSeconds > 0 {
		rep.AchievedPerMin = float64(rep.Submitted) / rep.WallSeconds * 60
	}
	if heap, ok := scrapeGauge(client, o.BaseURL, "dsp_heap_alloc_bytes"); ok {
		rep.HeapEndBytes = heap
		if heap > rep.HeapPeakBytes {
			rep.HeapPeakBytes = heap
		}
	}
	rep.PeriodCount = int(scrapeOr(client, o.BaseURL, `dsp_phase_count{phase="serve-period"}`, 0))
	rep.PeriodP50Ms = scrapeOr(client, o.BaseURL, `dsp_phase_seconds{phase="serve-period",quantile="0.5"}`, 0) * 1e3
	rep.PeriodP99Ms = scrapeOr(client, o.BaseURL, `dsp_phase_seconds{phase="serve-period",quantile="0.99"}`, 0) * 1e3
	rep.PeriodMaxMs = scrapeOr(client, o.BaseURL, `dsp_phase_seconds{phase="serve-period",quantile="max"}`, 0) * 1e3
	return rep, nil
}

func postJob(client *http.Client, base string, body []byte) (code int, retryAfter time.Duration, err error) {
	resp, err := client.Post(base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, 0, err
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // draining for connection reuse
	resp.Body.Close()
	retryAfter = time.Second
	if s := resp.Header.Get("Retry-After"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			retryAfter = time.Duration(n) * time.Second
		}
	}
	return resp.StatusCode, retryAfter, nil
}

func getStatus(client *http.Client, base string, id int) int {
	resp, err := client.Get(fmt.Sprintf("%s/jobs/%d", base, id))
	if err != nil {
		return 0
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // draining for connection reuse
	resp.Body.Close()
	return resp.StatusCode
}

// scrapeGauge fetches /metrics and returns the value of the named
// series (exact match on the text before the space).
func scrapeGauge(client *http.Client, base, series string) (float64, bool) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return 0, false
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, false
	}
	for _, line := range strings.Split(string(body), "\n") {
		name, val, ok := strings.Cut(line, " ")
		if ok && name == series {
			f, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
			return f, err == nil
		}
	}
	return 0, false
}

func scrapeOr(client *http.Client, base, series string, def float64) float64 {
	if v, ok := scrapeGauge(client, base, series); ok {
		return v
	}
	return def
}
