package experiments

import (
	"encoding/json"
	"fmt"
	"reflect"
	"sort"
	"strings"
)

// Bench report schemas. v2 adds per-cell phase breakdowns
// (CellTime.Phases); every other field is unchanged, so v1 readers keep
// working on v2 reports by ignoring the unknown field.
const (
	// BenchSchemaV1 is the original per-cell wall-time-only schema.
	BenchSchemaV1 = "dsp-bench-sweep/v1"
	// BenchSchemaV2 carries per-cell phase breakdowns.
	BenchSchemaV2 = "dsp-bench-sweep/v2"
)

// BenchReport is the machine-readable sweep benchmark dspbench writes
// with -bench-json and diffs with -compare. TotalWallMS sums the
// sweeps' wall times (sweeps execute one after another; only cells
// within a sweep run concurrently).
type BenchReport struct {
	Schema      string      `json:"schema"`
	Workers     int         `json:"workers"`
	GoMaxProcs  int         `json:"gomaxprocs"`
	NumCPU      int         `json:"num_cpu"`
	Scale       float64     `json:"scale"`
	Seed        int64       `json:"seed"`
	Sweeps      []SweepStat `json:"sweeps"`
	TotalWallMS float64     `json:"total_wall_ms"`
}

// StripToV1 downgrades the report in place to the v1 schema: phase
// breakdowns are dropped and the schema field rewritten. For consumers
// pinned to the old format (-bench-schema v1).
func (r *BenchReport) StripToV1() {
	r.Schema = BenchSchemaV1
	for si := range r.Sweeps {
		for ci := range r.Sweeps[si].CellTimes {
			r.Sweeps[si].CellTimes[ci].Phases = nil
		}
	}
}

// Marshal serializes the report and validates that the bytes round-trip
// (unmarshal → deep-equal) before anyone can commit them as a baseline:
// a report whose own serialization loses information — an unmarshalable
// field, a lossy tag — must fail here, not in a future compare.
func (r *BenchReport) Marshal() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("bench report: marshal: %w", err)
	}
	var back BenchReport
	if err := json.Unmarshal(data, &back); err != nil {
		return nil, fmt.Errorf("bench report: round-trip unmarshal: %w", err)
	}
	if !reflect.DeepEqual(*r, back) {
		return nil, fmt.Errorf("bench report: schema does not round-trip (marshal → unmarshal changed the report); refusing to emit a lossy baseline")
	}
	return append(data, '\n'), nil
}

// ReadBenchReport loads and validates a report written by -bench-json.
// Both schema versions are accepted (v1 simply carries no phases).
func ReadBenchReport(data []byte) (*BenchReport, error) {
	var r BenchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench report: %w", err)
	}
	switch r.Schema {
	case BenchSchemaV1, BenchSchemaV2:
	default:
		return nil, fmt.Errorf("bench report: unknown schema %q (want %s or %s)", r.Schema, BenchSchemaV1, BenchSchemaV2)
	}
	return &r, nil
}

// CompareThresholds sets the noise tolerances of a report comparison.
// Fractions are one-sided: only growth counts as regression.
type CompareThresholds struct {
	// PhaseFrac is the allowed per-phase total growth (default 0.20).
	PhaseFrac float64
	// TotalFrac is the allowed total-wall growth (default 0.10).
	TotalFrac float64
	// MinPhaseUS is the noise floor: phases whose aggregate total stays
	// under this in both reports are never flagged, however large their
	// ratio — a 3µs phase tripling is jitter, not regression.
	MinPhaseUS float64
}

// DefaultCompareThresholds returns the documented defaults: ±20% per
// phase, ±10% total, 1ms phase noise floor.
func DefaultCompareThresholds() CompareThresholds {
	return CompareThresholds{PhaseFrac: 0.20, TotalFrac: 0.10, MinPhaseUS: 1000}
}

// PhaseDelta is one phase's aggregate comparison across two reports.
type PhaseDelta struct {
	Phase     string
	OldUS     float64
	NewUS     float64
	Frac      float64 // (new-old)/old; +Inf when old is 0
	Regressed bool
}

// CompareResult is the outcome of CompareBench: the total-wall delta,
// every phase's delta in blame order (largest absolute growth first),
// and whether anything crossed its threshold.
type CompareResult struct {
	OldTotalMS     float64
	NewTotalMS     float64
	TotalFrac      float64
	TotalRegressed bool
	Phases         []PhaseDelta
	// PhaseDataMissing notes that at least one report carries no phase
	// breakdowns (a v1 report), so only totals were compared.
	PhaseDataMissing bool
}

// Regressed reports whether the comparison should fail the build.
func (c *CompareResult) Regressed() bool {
	if c.TotalRegressed {
		return true
	}
	for _, p := range c.Phases {
		if p.Regressed {
			return true
		}
	}
	return false
}

// Render prints the blame-ordered comparison table.
func (c *CompareResult) Render() string {
	var b strings.Builder
	status := func(reg bool) string {
		if reg {
			return "REGRESSED"
		}
		return "ok"
	}
	fmt.Fprintf(&b, "%-14s %14s %14s %9s  %s\n", "phase", "old", "new", "delta", "status")
	fmt.Fprintf(&b, "%-14s %12.1fms %12.1fms %+8.1f%%  %s\n",
		"TOTAL", c.OldTotalMS, c.NewTotalMS, 100*c.TotalFrac, status(c.TotalRegressed))
	for _, p := range c.Phases {
		fmt.Fprintf(&b, "%-14s %12.1fms %12.1fms %+8.1f%%  %s\n",
			p.Phase, p.OldUS/1e3, p.NewUS/1e3, 100*p.Frac, status(p.Regressed))
	}
	if c.PhaseDataMissing {
		b.WriteString("(no phase breakdowns in at least one report — totals only)\n")
	}
	return b.String()
}

// aggregatePhases sums each phase's TotalUS across every cell of every
// sweep.
func aggregatePhases(r *BenchReport) map[string]float64 {
	agg := map[string]float64{}
	for _, sw := range r.Sweeps {
		for _, ct := range sw.CellTimes {
			for _, ph := range ct.Phases {
				agg[ph.Phase] += ph.TotalUS
			}
		}
	}
	return agg
}

// CompareBench diffs two bench reports. The reports must describe the
// same experiment — equal scale, seed, and sweep-name sequence —
// because comparing different workloads would flag configuration drift
// as performance regression. Thresholds are one-sided: a phase (or the
// total) regresses only when the new value exceeds the old by more than
// the allowed fraction and clears the noise floor.
func CompareBench(old, new *BenchReport, th CompareThresholds) (*CompareResult, error) {
	if old.Scale != new.Scale || old.Seed != new.Seed {
		return nil, fmt.Errorf("compare: reports describe different experiments: scale/seed %g/%d vs %g/%d",
			old.Scale, old.Seed, new.Scale, new.Seed)
	}
	oldNames := sweepNames(old)
	newNames := sweepNames(new)
	if !reflect.DeepEqual(oldNames, newNames) {
		return nil, fmt.Errorf("compare: sweep sets differ: %v vs %v", oldNames, newNames)
	}
	if th.PhaseFrac <= 0 {
		th.PhaseFrac = DefaultCompareThresholds().PhaseFrac
	}
	if th.TotalFrac <= 0 {
		th.TotalFrac = DefaultCompareThresholds().TotalFrac
	}

	res := &CompareResult{OldTotalMS: old.TotalWallMS, NewTotalMS: new.TotalWallMS}
	if old.TotalWallMS > 0 {
		res.TotalFrac = (new.TotalWallMS - old.TotalWallMS) / old.TotalWallMS
		res.TotalRegressed = res.TotalFrac > th.TotalFrac
	}

	oldAgg := aggregatePhases(old)
	newAgg := aggregatePhases(new)
	if len(oldAgg) == 0 || len(newAgg) == 0 {
		res.PhaseDataMissing = true
		return res, nil
	}
	names := map[string]bool{}
	for n := range oldAgg {
		names[n] = true
	}
	for n := range newAgg {
		names[n] = true
	}
	for n := range names {
		d := PhaseDelta{Phase: n, OldUS: oldAgg[n], NewUS: newAgg[n]}
		if d.OldUS > 0 {
			d.Frac = (d.NewUS - d.OldUS) / d.OldUS
		} else if d.NewUS > 0 {
			d.Frac = 1e9 // a brand-new phase: infinite relative growth
		}
		if d.OldUS < th.MinPhaseUS && d.NewUS < th.MinPhaseUS {
			// Under the noise floor in both reports: never flag.
		} else if d.Frac > th.PhaseFrac {
			d.Regressed = true
		}
		res.Phases = append(res.Phases, d)
	}
	// Blame order: largest absolute growth first, so the first flagged
	// row is where the regression's time actually went.
	sort.SliceStable(res.Phases, func(i, j int) bool {
		return res.Phases[i].NewUS-res.Phases[i].OldUS > res.Phases[j].NewUS-res.Phases[j].OldUS
	})
	return res, nil
}

func sweepNames(r *BenchReport) []string {
	names := make([]string, len(r.Sweeps))
	for i, sw := range r.Sweeps {
		names[i] = sw.Name
	}
	return names
}
