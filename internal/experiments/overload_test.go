package experiments

import (
	"math"
	"testing"
)

// tinyOverloadOptions shrinks the sweep to smoke-test size: two
// multipliers, a handful of jobs.
func tinyOverloadOptions() OverloadOptions {
	o := DefaultOverloadOptions()
	o.Scale = 0.02
	o.Jobs = 30
	o.Multipliers = []float64{1, 6}
	o.MaxPendingTasks = 120
	o.FIFOTaskLimit = 90
	return o
}

func TestOverloadSweepShapes(t *testing.T) {
	r, err := Overload(Real, tinyOverloadOptions())
	if err != nil {
		t.Fatal(err)
	}
	arms := overloadArms()
	for _, tb := range r.All() {
		if xs := tb.Xs(); len(xs) != 2 {
			t.Fatalf("%s: xs = %v, want 2 multipliers", tb.Title, xs)
		}
		for _, c := range arms {
			for i, v := range tb.Column(c) {
				if math.IsNaN(v) || v < 0 {
					t.Fatalf("%s %s[%d] = %v", tb.Title, c, i, v)
				}
			}
		}
	}
	// The baseline arm has no admission control or auditor: it never
	// sheds and never reports violations.
	for _, mult := range []float64{1, 6} {
		if s := r.Shed.Get(mult, "DSP"); s != 0 {
			t.Errorf("baseline shed %v jobs at x%g", s, mult)
		}
	}
	// Deep overload forces the ladder arm to shed.
	if s := r.Shed.Get(6, "DSP+ladder"); s == 0 {
		t.Error("ladder arm shed nothing at x6 overload")
	}
	// Admission control bounds the ladder arm's backlog below the
	// baseline's under deep overload.
	base, ladder := r.PeakPending.Get(6, "DSP"), r.PeakPending.Get(6, "DSP+ladder")
	if ladder >= base {
		t.Errorf("ladder peak backlog %v not below baseline %v at x6", ladder, base)
	}
	// The auditor rides along on every ladder cell and must stay silent.
	for _, mult := range []float64{1, 6} {
		for _, arm := range arms {
			if v := r.Violations.Get(mult, arm); v != 0 {
				t.Errorf("%s reported %v invariant violations at x%g", arm, v, mult)
			}
		}
	}
}
