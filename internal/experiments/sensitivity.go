package experiments

import (
	"fmt"

	"dsp/internal/metrics"
	"dsp/internal/preempt"
	"dsp/internal/prof"
	"dsp/internal/sched"
	"dsp/internal/sim"
	"dsp/internal/units"
)

// Parameter sensitivity — "We will also study the sensitivity of the
// parameters" (paper Section VI). Each sweep fixes one workload cell and
// varies one DSP parameter, reporting throughput, preemptions and
// makespan per value.

// SensitivityParam names a sweepable DSP parameter.
type SensitivityParam string

// Sweepable parameters.
const (
	ParamGamma  SensitivityParam = "gamma"  // level coefficient γ
	ParamDelta  SensitivityParam = "delta"  // preempting-task window δ
	ParamRho    SensitivityParam = "rho"    // PP normalized-priority factor ρ
	ParamOmega1 SensitivityParam = "omega1" // remaining-time weight ω₁ (ω₂/ω₃ rescale)
	ParamEpoch  SensitivityParam = "epoch"  // preemption epoch (seconds)
)

// SensitivityValues returns the default sweep grid for a parameter.
func SensitivityValues(p SensitivityParam) []float64 {
	switch p {
	case ParamGamma:
		return []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	case ParamDelta:
		return []float64{0.1, 0.2, 0.35, 0.5, 0.75, 1.0}
	case ParamRho:
		return []float64{1.1, 1.5, 2, 3, 5}
	case ParamOmega1:
		return []float64{0.2, 0.35, 0.5, 0.65, 0.8}
	case ParamEpoch:
		return []float64{5, 10, 20, 40}
	default:
		return nil
	}
}

// Sensitivity sweeps one DSP parameter on a fixed workload (h jobs on
// the given platform) and tabulates throughput, preemption count and
// makespan against the parameter value.
func Sensitivity(param SensitivityParam, values []float64, p Platform, h int, o Options) (*metrics.Table, error) {
	if len(values) == 0 {
		values = SensitivityValues(param)
	}
	if len(values) == 0 {
		return nil, fmt.Errorf("experiments: unknown sensitivity parameter %q", param)
	}
	t := metrics.NewTable(
		fmt.Sprintf("Sensitivity of %s (DSP, %d jobs, %s)", param, h, p),
		string(param), "",
		"throughput(tasks/ms)", "preemptions", "makespan(s)", "avg-wait(s)")

	var cells []Cell
	for _, val := range values {
		label := fmt.Sprintf("sensitivity-%s-%g", param, val)
		cells = append(cells, Cell{Label: label, Run: func(tm *prof.Timer) (func(), error) {
			pre := preempt.NewDSP()
			cfg := sim.Config{
				Cluster:   p.Cluster(),
				Scheduler: sched.NewDSP(),
				Preemptor: pre,
				Period:    o.Period,
				Epoch:     o.Epoch,
			}
			switch param {
			case ParamGamma:
				pre.P.Gamma = val
			case ParamDelta:
				pre.P.Delta = val
			case ParamRho:
				pre.P.Rho = val
			case ParamOmega1:
				// Rescale ω₂, ω₃ to keep the weights summing to one while
				// preserving their 3:2 ratio.
				pre.P.Omega1 = val
				rest := 1 - val
				pre.P.Omega2 = rest * 0.6
				pre.P.Omega3 = rest * 0.4
			case ParamEpoch:
				cfg.Epoch = units.FromSeconds(val)
			default:
				return nil, fmt.Errorf("experiments: unknown sensitivity parameter %q", param)
			}
			_, cp, err := NewPreemptor("DSP")
			if err != nil {
				return nil, err
			}
			cfg.Checkpoint = cp

			w, err := workloadFor(h, o)
			if err != nil {
				return nil, err
			}
			cfg.Observer = o.observe(label)
			cfg.Prof = tm
			res, err := sim.Run(cfg, w)
			if err != nil {
				return nil, fmt.Errorf("sensitivity %s=%v: %w", param, val, err)
			}
			return func() {
				t.Set(val, "throughput(tasks/ms)", res.TaskThroughputPerMs)
				t.Set(val, "preemptions", float64(res.Preemptions))
				t.Set(val, "makespan(s)", res.Makespan.Seconds())
				t.Set(val, "avg-wait(s)", res.AvgJobQueueing.Seconds())
			}, nil
		}})
	}
	if err := runCells(fmt.Sprintf("sensitivity-%s", param), o, cells); err != nil {
		return nil, err
	}
	return t, nil
}
