package experiments

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"dsp/internal/prof"
	"dsp/internal/sim"
	"dsp/internal/units"
)

// fastOptions returns a sweep configuration small enough for unit tests
// but large enough that cells do real simulation work.
func fastOptions() Options {
	return Options{
		Scale:          0.02,
		Seed:           20180901,
		Period:         5 * units.Minute,
		Epoch:          10 * units.Second,
		JobCounts:      []int{20, 40},
		ScaleJobCounts: []int{20, 40},
	}
}

// TestParallelSweepMatchesSerial is the determinism guarantee the runner
// documents: the rendered sweep tables must be byte-identical at every
// worker count. It renders Fig5 and a sensitivity sweep serially and at 8
// workers and compares the output bytes.
func TestParallelSweepMatchesSerial(t *testing.T) {
	render := func(workers int) string {
		o := fastOptions()
		o.Workers = workers
		fig5, err := Fig5(Real, o)
		if err != nil {
			t.Fatalf("workers=%d: Fig5: %v", workers, err)
		}
		sens, err := Sensitivity(ParamGamma, []float64{0.3, 0.7}, Real, 20, o)
		if err != nil {
			t.Fatalf("workers=%d: Sensitivity: %v", workers, err)
		}
		return fig5.Render() + "\n" + sens.Render()
	}
	serial := render(1)
	parallel := render(8)
	if serial != parallel {
		t.Errorf("parallel sweep output differs from serial:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", serial, parallel)
	}
}

// TestRunCellsCommitsInInputOrder: commits must be applied in input
// order even when later cells finish first. Cells sleep in reverse
// proportion to their index, so under 4 workers the completion order is
// roughly the reverse of the input order.
func TestRunCellsCommitsInInputOrder(t *testing.T) {
	const n = 8
	var mu sync.Mutex
	var got []int
	cells := make([]Cell, n)
	for i := 0; i < n; i++ {
		cells[i] = Cell{Label: fmt.Sprintf("cell-%d", i), Run: func(tm *prof.Timer) (func(), error) {
			time.Sleep(time.Duration(n-i) * 2 * time.Millisecond)
			return func() {
				mu.Lock()
				got = append(got, i)
				mu.Unlock()
			}, nil
		}}
	}
	o := Options{Workers: 4}
	if err := runCells("order-test", o, cells); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("commit order %v, want ascending input order", got)
		}
	}
	if len(got) != n {
		t.Fatalf("committed %d cells, want %d", len(got), n)
	}
}

// TestRunCellsFirstErrorInInputOrder: the runner must report the first
// failing cell in INPUT order (matching a serial run) and must not apply
// commits at or after that cell, even if later cells also fail or
// complete first.
func TestRunCellsFirstErrorInInputOrder(t *testing.T) {
	errA := errors.New("boom-2")
	errB := errors.New("boom-5")
	var mu sync.Mutex
	committed := map[int]bool{}
	mk := func(i int, fail error) Cell {
		return Cell{Label: fmt.Sprintf("cell-%d", i), Run: func(tm *prof.Timer) (func(), error) {
			if fail != nil {
				return nil, fail
			}
			return func() {
				mu.Lock()
				committed[i] = true
				mu.Unlock()
			}, nil
		}}
	}
	cells := []Cell{mk(0, nil), mk(1, nil), mk(2, errA), mk(3, nil), mk(4, nil), mk(5, errB)}
	err := runCells("error-test", Options{Workers: 4}, cells)
	if !errors.Is(err, errA) {
		t.Fatalf("got error %v, want first input-order error %v", err, errA)
	}
	if !committed[0] || !committed[1] {
		t.Errorf("cells before the failure must commit: %v", committed)
	}
	for i := 2; i < 6; i++ {
		if committed[i] {
			t.Errorf("cell %d at/after the first failure committed: %v", i, committed)
		}
	}
}

// TestRunCellsRecordsStats: an attached SweepStats must record the sweep
// name, cell count, per-cell labels in input order, and the worker count
// actually used.
func TestRunCellsRecordsStats(t *testing.T) {
	cells := []Cell{
		{Label: "a", Run: func(tm *prof.Timer) (func(), error) { return nil, nil }},
		{Label: "b", Run: func(tm *prof.Timer) (func(), error) { return nil, nil }},
		{Label: "c", Run: func(tm *prof.Timer) (func(), error) { return nil, nil }},
	}
	stats := &SweepStats{}
	o := Options{Workers: 8, Stats: stats}
	if err := runCells("stats-test", o, cells); err != nil {
		t.Fatal(err)
	}
	if len(stats.Sweeps) != 1 {
		t.Fatalf("recorded %d sweeps, want 1", len(stats.Sweeps))
	}
	s := stats.Sweeps[0]
	if s.Name != "stats-test" || s.Cells != 3 {
		t.Errorf("stat = %+v, want name stats-test, 3 cells", s)
	}
	if s.Workers != 3 {
		t.Errorf("workers = %d, want 3 (capped at cell count)", s.Workers)
	}
	want := []string{"a", "b", "c"}
	if len(s.CellTimes) != len(want) {
		t.Fatalf("recorded %d cell times, want %d", len(s.CellTimes), len(want))
	}
	for i, ct := range s.CellTimes {
		if ct.Label != want[i] {
			t.Errorf("cell time %d label %q, want %q (input order)", i, ct.Label, want[i])
		}
	}
	if s.WallMS < 0 || stats.TotalWallMS() != s.WallMS {
		t.Errorf("wall accounting inconsistent: %v vs %v", s.WallMS, stats.TotalWallMS())
	}
}

// TestSweepPhaseBreakdownSumsToCellWall is the v2 schema's core
// accounting claim: every profiled cell's phase totals must sum to
// within 5% of the cell's recorded wall time (the exclusive-stack timer
// tiles wall time by construction; only the few clock reads outside the
// root phase escape it).
func TestSweepPhaseBreakdownSumsToCellWall(t *testing.T) {
	o := fastOptions()
	o.Workers = 2
	o.Stats = &SweepStats{}
	if _, err := Fig6(Real, o); err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, sw := range o.Stats.Sweeps {
		for _, ct := range sw.CellTimes {
			if len(ct.Phases) == 0 {
				t.Errorf("%s/%s: profiled sweep recorded no phases", sw.Name, ct.Label)
				continue
			}
			var sum float64
			for _, ph := range ct.Phases {
				sum += ph.TotalUS
			}
			// 5% relative plus a 200µs absolute floor so sub-millisecond
			// cells don't fail on fixed scheduling jitter.
			slack := 0.05*ct.US + 200
			if diff := ct.US - sum; diff < -slack || diff > slack {
				t.Errorf("%s/%s: phase sum %.0fµs vs cell wall %.0fµs (diff %.0fµs > slack %.0fµs)",
					sw.Name, ct.Label, sum, ct.US, diff, slack)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no cells checked")
	}
}

// TestSweepMergesAggregateProf: Options.Prof must accumulate every
// cell's phases, and a DSP+preemptor sweep must populate the hot-path
// phases the tentpole exists to measure.
func TestSweepMergesAggregateProf(t *testing.T) {
	o := fastOptions()
	o.Workers = 2
	o.Prof = prof.New()
	if _, err := Fig6(Real, o); err != nil {
		t.Fatal(err)
	}
	s := o.Prof.Snapshot()
	for _, p := range []prof.Phase{prof.PhaseSetup, prof.PhaseSchedule, prof.PhaseEpochPolicy,
		prof.PhaseVerdictScan, prof.PhaseMemoEval, prof.PhaseTaskComplete,
		prof.PhaseEventPump, prof.PhaseCellOther} {
		if s[p].Count == 0 {
			t.Errorf("aggregate phase %s never recorded", p)
		}
	}
}

// phaseCollector is a test observer that records RecordPhases calls.
type phaseCollector struct {
	sim.NopObserver
	labels []string
}

func (c *phaseCollector) RecordPhases(label string, phases []prof.PhaseBreakdown) {
	c.labels = append(c.labels, label)
}

// TestRunCellsForwardsPhasesToRecorder: a PhaseRecorder observer must
// receive each cell's breakdown in input order.
func TestRunCellsForwardsPhasesToRecorder(t *testing.T) {
	col := &phaseCollector{}
	o := fastOptions()
	o.Observer = col
	o.JobCounts = []int{20}
	if _, err := Fig5(Real, o); err != nil {
		t.Fatal(err)
	}
	want := 1 * len(SchedulerNames())
	if len(col.labels) != want {
		t.Fatalf("recorder saw %d cells, want %d: %v", len(col.labels), want, col.labels)
	}
	wantLabels := []string{}
	for _, name := range SchedulerNames() {
		wantLabels = append(wantLabels, fmt.Sprintf("fig5-%s-%s-h%d", Real, name, 20))
	}
	for i := range wantLabels {
		if col.labels[i] != wantLabels[i] {
			t.Errorf("recorder label %d = %q, want %q", i, col.labels[i], wantLabels[i])
		}
	}
}
