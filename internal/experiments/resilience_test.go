package experiments

import (
	"math"
	"testing"
)

// tinyResilienceOptions shrinks the sweep to a smoke-test size: two
// fault levels, a handful of jobs, reduced task scale.
func tinyResilienceOptions() ResilienceOptions {
	o := DefaultResilienceOptions()
	o.Scale = 0.02
	o.Jobs = 24
	o.FaultPercents = []int{0, 20}
	return o
}

func TestResilienceSweepShapes(t *testing.T) {
	r, err := Resilience(Real, tinyResilienceOptions())
	if err != nil {
		t.Fatal(err)
	}
	cols := resilienceColumns()
	if len(cols) != 6 {
		t.Fatalf("columns = %v, want 3 methods × 2 arms", cols)
	}
	for _, tb := range r.All() {
		xs := tb.Xs()
		if len(xs) != 2 {
			t.Fatalf("%s: xs = %v", tb.Title, xs)
		}
		for _, c := range cols {
			for i, v := range tb.Column(c) {
				if math.IsNaN(v) || v < 0 {
					t.Fatalf("%s %s[%d] = %v", tb.Title, c, i, v)
				}
			}
		}
	}
	// Faults hurt: every method's makespan at 20% flaky nodes is at
	// least its fault-free makespan.
	for _, c := range cols {
		col := r.Makespan.Column(c)
		if col[1] < col[0] {
			t.Errorf("%s makespan improved under faults: %v", c, col)
		}
	}
	// At the fault-free level the mitigation stack must not distort the
	// baseline much (no faults → no retries, rare speculation).
	for _, m := range ResilienceMethods() {
		bare := r.Makespan.Get(0, m)
		res := r.Makespan.Get(0, m+"+res")
		if res > bare*1.25 {
			t.Errorf("%s+res fault-free makespan %v ≫ bare %v", m, res, bare)
		}
	}
	// Fault-free runs waste nothing.
	for _, c := range cols {
		if w := r.Waste.Get(0, c); w != 0 {
			t.Errorf("%s wasted %v slot-s with no faults", c, w)
		}
	}
}
