package experiments

import (
	"math"
	"testing"

	"dsp/internal/attrib"
)

// tinyAttributionOptions shrinks the sweep to smoke-test size.
func tinyAttributionOptions() AttributionOptions {
	o := DefaultAttributionOptions()
	o.Scale = 0.02
	o.JobCounts = []int{8}
	o.Methods = []string{"DSP", "SRPT"}
	return o
}

func TestAttributionSweepShapes(t *testing.T) {
	r, err := Attribution(Real, tinyAttributionOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.All()) != 2 {
		t.Fatalf("got %d tables, want one per method", len(r.All()))
	}
	for _, tb := range r.All() {
		xs := tb.Xs()
		if len(xs) != 1 || xs[0] != 8 {
			t.Fatalf("%s: xs = %v, want [8]", tb.Title, xs)
		}
		var total float64
		for _, c := range attrib.Causes() {
			v := tb.Get(8, c.String())
			if math.IsNaN(v) || v < 0 {
				t.Fatalf("%s %s = %v", tb.Title, c, v)
			}
			total += v
		}
		if tb.Get(8, attrib.Service.String()) <= 0 {
			t.Errorf("%s: zero mean service time", tb.Title)
		}
		if total <= 0 {
			t.Errorf("%s: blame columns sum to %v", tb.Title, total)
		}
		// Nothing may be unattributed for statically-shaped jobs.
		if u := tb.Get(8, attrib.Unattributed.String()); u != 0 {
			t.Errorf("%s: unattributed mean %v, want 0", tb.Title, u)
		}
	}
}
