package experiments

import (
	"strings"
	"testing"

	"dsp/internal/prof"
)

// sampleReport builds a small v2 report with one sweep of two cells.
func sampleReport() *BenchReport {
	return &BenchReport{
		Schema:     BenchSchemaV2,
		Workers:    1,
		GoMaxProcs: 1,
		NumCPU:     1,
		Scale:      0.03,
		Seed:       20180901,
		Sweeps: []SweepStat{{
			Name: "fig5-real-cluster", Workers: 1, Cells: 2, WallMS: 100, CellsPerSec: 20,
			CellTimes: []CellTime{
				{Label: "a", US: 60000, Phases: []prof.PhaseBreakdown{
					{Phase: "ilp-solve", Count: 10, TotalUS: 40000, MaxUS: 9000, P50US: 3000, P95US: 8000, P99US: 9000},
					{Phase: "event-pump", Count: 500, TotalUS: 20000, MaxUS: 100, P50US: 30, P95US: 90, P99US: 95},
				}},
				{Label: "b", US: 40000, Phases: []prof.PhaseBreakdown{
					{Phase: "sched-list", Count: 5, TotalUS: 30000, MaxUS: 9000, P50US: 5000, P95US: 8500, P99US: 9000},
					{Phase: "event-pump", Count: 400, TotalUS: 10000, MaxUS: 80, P50US: 20, P95US: 70, P99US: 75},
				}},
			},
		}},
		TotalWallMS: 100,
	}
}

func TestBenchReportRoundTrip(t *testing.T) {
	r := sampleReport()
	data, err := r.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	back, err := ReadBenchReport(data)
	if err != nil {
		t.Fatalf("ReadBenchReport: %v", err)
	}
	if back.Schema != BenchSchemaV2 || len(back.Sweeps) != 1 {
		t.Errorf("round-trip lost structure: %+v", back)
	}
	if len(back.Sweeps[0].CellTimes[0].Phases) != 2 {
		t.Errorf("round-trip lost phases")
	}
}

func TestReadBenchReportRejectsUnknownSchema(t *testing.T) {
	if _, err := ReadBenchReport([]byte(`{"schema":"dsp-bench-sweep/v9"}`)); err == nil {
		t.Fatal("unknown schema accepted")
	}
	if _, err := ReadBenchReport([]byte(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestStripToV1(t *testing.T) {
	r := sampleReport()
	r.StripToV1()
	if r.Schema != BenchSchemaV1 {
		t.Errorf("schema = %q", r.Schema)
	}
	for _, sw := range r.Sweeps {
		for _, ct := range sw.CellTimes {
			if ct.Phases != nil {
				t.Errorf("cell %s still carries phases", ct.Label)
			}
		}
	}
	// A stripped report must still marshal (round-trip validation holds
	// for v1 too).
	if _, err := r.Marshal(); err != nil {
		t.Fatalf("v1 Marshal: %v", err)
	}
}

func TestCompareSelfIsClean(t *testing.T) {
	r := sampleReport()
	res, err := CompareBench(r, r, DefaultCompareThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if res.Regressed() {
		t.Fatalf("self-compare regressed:\n%s", res.Render())
	}
}

func TestCompareFlagsSyntheticRegression(t *testing.T) {
	old := sampleReport()
	cur := sampleReport()
	// Inject a 3× blow-up in ilp-solve and grow the total past 10%.
	cur.Sweeps[0].CellTimes[0].Phases[0].TotalUS *= 3
	cur.TotalWallMS = old.TotalWallMS * 1.5
	res, err := CompareBench(old, cur, DefaultCompareThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Regressed() {
		t.Fatalf("synthetic regression not flagged:\n%s", res.Render())
	}
	if !res.TotalRegressed {
		t.Errorf("total growth 50%% not flagged")
	}
	// Blame order: ilp-solve grew most, so it must lead the table.
	if len(res.Phases) == 0 || res.Phases[0].Phase != "ilp-solve" || !res.Phases[0].Regressed {
		t.Errorf("blame order wrong: %+v", res.Phases)
	}
	out := res.Render()
	if !strings.Contains(out, "REGRESSED") {
		t.Errorf("render lacks REGRESSED marker:\n%s", out)
	}
}

func TestCompareNoiseFloorSuppressesTinyPhases(t *testing.T) {
	old := sampleReport()
	cur := sampleReport()
	// A tiny phase quintuples but stays under the noise floor.
	old.Sweeps[0].CellTimes[0].Phases = append(old.Sweeps[0].CellTimes[0].Phases,
		prof.PhaseBreakdown{Phase: "audit", Count: 1, TotalUS: 3})
	cur.Sweeps[0].CellTimes[0].Phases = append(cur.Sweeps[0].CellTimes[0].Phases,
		prof.PhaseBreakdown{Phase: "audit", Count: 1, TotalUS: 15})
	res, err := CompareBench(old, cur, DefaultCompareThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if res.Regressed() {
		t.Fatalf("noise-floor phase flagged:\n%s", res.Render())
	}
}

func TestCompareV1ReportsTotalsOnly(t *testing.T) {
	old := sampleReport()
	old.StripToV1()
	cur := sampleReport()
	res, err := CompareBench(old, cur, DefaultCompareThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if !res.PhaseDataMissing {
		t.Errorf("v1 baseline compare should note missing phase data")
	}
	if res.Regressed() {
		t.Errorf("equal totals regressed")
	}
	cur.TotalWallMS *= 2
	res, err = CompareBench(old, cur, DefaultCompareThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Regressed() {
		t.Errorf("doubled total not flagged on v1 compare")
	}
}

func TestCompareRejectsMismatchedExperiments(t *testing.T) {
	old := sampleReport()
	cur := sampleReport()
	cur.Scale = 0.06
	if _, err := CompareBench(old, cur, DefaultCompareThresholds()); err == nil {
		t.Fatal("scale mismatch accepted")
	}
	cur = sampleReport()
	cur.Sweeps[0].Name = "fig8"
	if _, err := CompareBench(old, cur, DefaultCompareThresholds()); err == nil {
		t.Fatal("sweep-set mismatch accepted")
	}
}
