package experiments

import (
	"fmt"

	"dsp/internal/metrics"
	"dsp/internal/prof"
	"dsp/internal/sched"
	"dsp/internal/sim"
)

// Fig5 reproduces Figure 5 (a: real cluster, b: EC2): makespan versus the
// number of jobs for the four scheduling methods, no online preemption.
func Fig5(p Platform, o Options) (*metrics.Table, error) {
	sub := "(a) real cluster"
	if p == EC2 {
		sub = "(b) Amazon EC2"
	}
	t := metrics.NewTable(
		fmt.Sprintf("Fig 5%s — makespan vs. number of jobs", sub),
		"jobs", "makespan (s)", SchedulerNames()...)
	var cells []Cell
	for _, h := range o.JobCounts {
		for _, name := range SchedulerNames() {
			label := fmt.Sprintf("fig5-%s-%s-h%d", p, name, h)
			cells = append(cells, Cell{Label: label, Run: func(tm *prof.Timer) (func(), error) {
				s, err := NewScheduler(name)
				if err != nil {
					return nil, err
				}
				w, err := workloadFor(h, o)
				if err != nil {
					return nil, err
				}
				res, err := sim.Run(sim.Config{
					Cluster:   p.Cluster(),
					Scheduler: s,
					Period:    o.Period,
					Epoch:     o.Epoch,
					Observer:  o.observe(label),
					Prof:      tm,
				}, w)
				if err != nil {
					return nil, fmt.Errorf("fig5 %s h=%d: %w", name, h, err)
				}
				return func() { t.Set(float64(h), name, res.Makespan.Seconds()) }, nil
			}})
		}
	}
	if err := runCells(fmt.Sprintf("fig5-%s", p), o, cells); err != nil {
		return nil, err
	}
	return t, nil
}

// Fig6Tables bundles the four metrics of Figure 6 (and Figure 7 on EC2).
type Fig6Tables struct {
	Disorders   *metrics.Table
	Throughput  *metrics.Table
	Waiting     *metrics.Table
	Preemptions *metrics.Table
}

// All returns the tables in figure-panel order (a–d).
func (f *Fig6Tables) All() []*metrics.Table {
	return []*metrics.Table{f.Disorders, f.Throughput, f.Waiting, f.Preemptions}
}

// Fig6 reproduces Figures 6 (real cluster) and 7 (EC2): the preemption
// methods compared on the DSP initial schedule. Panels: (a) number of
// dependency disorders, (b) task throughput, (c) average job waiting
// time, (d) number of preemptions — each versus the number of jobs.
func Fig6(p Platform, o Options) (*Fig6Tables, error) {
	figure := "6"
	plat := "real cluster"
	if p == EC2 {
		figure = "7"
		plat = "Amazon EC2"
	}
	names := PreemptorNames()
	out := &Fig6Tables{
		Disorders: metrics.NewTable(
			fmt.Sprintf("Fig %s(a) — dependency disorders vs. number of jobs (%s)", figure, plat),
			"jobs", "disorders", names...),
		Throughput: metrics.NewTable(
			fmt.Sprintf("Fig %s(b) — throughput vs. number of jobs (%s)", figure, plat),
			"jobs", "throughput (tasks/ms)", names...),
		Waiting: metrics.NewTable(
			fmt.Sprintf("Fig %s(c) — average waiting time of jobs vs. number of jobs (%s)", figure, plat),
			"jobs", "avg job waiting time (s)", names...),
		Preemptions: metrics.NewTable(
			fmt.Sprintf("Fig %s(d) — number of preemptions vs. number of jobs (%s)", figure, plat),
			"jobs", "preemptions", names...),
	}
	var cells []Cell
	for _, h := range o.JobCounts {
		for _, name := range names {
			label := fmt.Sprintf("fig%s-%s-h%d", figure, name, h)
			cells = append(cells, Cell{Label: label, Run: func(tm *prof.Timer) (func(), error) {
				pre, cp, err := NewPreemptor(name)
				if err != nil {
					return nil, err
				}
				w, err := workloadFor(h, o)
				if err != nil {
					return nil, err
				}
				// "We use our initial schedule for all preemption methods":
				// the offline phase is DSP for every method.
				res, err := sim.Run(sim.Config{
					Cluster:    p.Cluster(),
					Scheduler:  sched.NewDSP(),
					Preemptor:  pre,
					Checkpoint: cp,
					Period:     o.Period,
					Epoch:      o.Epoch,
					Observer:   o.observe(label),
					Prof:       tm,
				}, w)
				if err != nil {
					return nil, fmt.Errorf("fig%s %s h=%d: %w", figure, name, h, err)
				}
				return func() {
					x := float64(h)
					out.Disorders.Set(x, name, float64(res.Disorders))
					out.Throughput.Set(x, name, res.TaskThroughputPerMs)
					out.Waiting.Set(x, name, res.AvgJobQueueing.Seconds())
					out.Preemptions.Set(x, name, float64(res.Preemptions))
				}, nil
			}})
		}
	}
	if err := runCells(fmt.Sprintf("fig%s-%s", figure, p), o, cells); err != nil {
		return nil, err
	}
	return out, nil
}

// Fig8Tables bundles the scalability panels of Figure 8.
type Fig8Tables struct {
	Makespan   *metrics.Table
	Throughput *metrics.Table
}

// Fig8 reproduces Figure 8: DSP's scalability — makespan (a) and
// throughput (b) for 500–2500 jobs on both platforms.
func Fig8(o Options) (*Fig8Tables, error) {
	platforms := []Platform{Real, EC2}
	cols := []string{"real-cluster", "ec2"}
	out := &Fig8Tables{
		Makespan: metrics.NewTable(
			"Fig 8(a) — makespan vs. number of jobs (DSP)",
			"jobs", "makespan (s)", cols...),
		Throughput: metrics.NewTable(
			"Fig 8(b) — throughput vs. number of jobs (DSP)",
			"jobs", "throughput (tasks/ms)", cols...),
	}
	var cells []Cell
	for _, h := range o.ScaleJobCounts {
		for i, p := range platforms {
			label := fmt.Sprintf("fig8-%s-h%d", p, h)
			col := cols[i]
			cells = append(cells, Cell{Label: label, Run: func(tm *prof.Timer) (func(), error) {
				pre, cp, err := NewPreemptor("DSP")
				if err != nil {
					return nil, err
				}
				w, err := workloadFor(h, o)
				if err != nil {
					return nil, err
				}
				res, err := sim.Run(sim.Config{
					Cluster:    p.Cluster(),
					Scheduler:  sched.NewDSP(),
					Preemptor:  pre,
					Checkpoint: cp,
					Period:     o.Period,
					Epoch:      o.Epoch,
					Observer:   o.observe(label),
					Prof:       tm,
				}, w)
				if err != nil {
					return nil, fmt.Errorf("fig8 %s h=%d: %w", p, h, err)
				}
				return func() {
					out.Makespan.Set(float64(h), col, res.Makespan.Seconds())
					out.Throughput.Set(float64(h), col, res.TaskThroughputPerMs)
				}, nil
			}})
		}
	}
	if err := runCells("fig8", o, cells); err != nil {
		return nil, err
	}
	return out, nil
}

// TableII renders the paper's parameter-settings table as configured in
// this reproduction.
func TableII() *metrics.Table {
	t := metrics.NewTable("Table II — parameter settings", "row", "value", "value")
	// Rendered via Render of a simple two-column listing is awkward with
	// the numeric x-axis; the cmd layer prints the richer version. Here we
	// record the numeric parameters for programmatic checks.
	params := []struct {
		x float64
		v float64
	}{
		{1, 30}, {2, 50}, // n range
		{3, 150}, {4, 2500}, // h range
		{5, 100}, {6, 2000}, // m range
		{7, 0.35},           // delta
		{8, 0.05},           // tau (s, paper listing)
		{9, 0.5}, {10, 0.5}, // theta1, theta2
		{11, 0.5}, {12, 1}, // alpha, beta
		{13, 0.5},                       // gamma
		{14, 0.5}, {15, 0.3}, {16, 0.2}, // omegas
	}
	for _, p := range params {
		t.Set(p.x, "value", p.v)
	}
	return t
}
