package experiments

import (
	"fmt"

	"dsp/internal/metrics"
	"dsp/internal/prof"
	"dsp/internal/sched"
	"dsp/internal/sim"
	"dsp/internal/trace"
)

// overloadWorkload is workloadAtRate with the sweep's deadline slack
// applied.
func overloadWorkload(o OverloadOptions, mult float64) (*trace.Workload, error) {
	spec := trace.DefaultSpec(o.Jobs, o.Seed+int64(o.Jobs)*7919)
	spec.TaskScale = o.Scale
	spec.MeanTaskSizeMI /= o.Scale
	spec.ArrivalRateMin = o.BaseArrivalPerMin * mult
	spec.ArrivalRateMax = spec.ArrivalRateMin
	if o.DeadlineSlack > 0 {
		spec.DeadlineSlack = o.DeadlineSlack
	}
	return trace.Generate(spec)
}

// OverloadOptions configures the graceful-degradation-under-overload
// sweep: the x-axis is an arrival-rate multiplier, and the two arms are
// plain DSP versus DSP with the full overload stack (anytime solver
// budget, FIFO demotion, admission control, invariant auditing).
type OverloadOptions struct {
	Options
	// Jobs is the fixed workload size for every cell (the x-axis is the
	// arrival intensity, not the job count).
	Jobs int
	// Multipliers is the x-axis: each cell's arrival rate is
	// BaseArrivalPerMin × multiplier.
	Multipliers []float64
	// BaseArrivalPerMin is the ×1 arrival rate in jobs/min. The paper's
	// nominal 3.5 jobs/min already oversubscribes both testbeds, so the
	// sweep's baseline sits lower to leave headroom for the multiplier
	// axis to show the transition into overload.
	BaseArrivalPerMin float64
	// DeadlineSlack overrides the workload's deadline slack. The figure
	// sweeps' default (4.0) is loose enough that deep queues rarely push
	// jobs past their deadlines; the overload sweep tightens it so
	// deadline misses — the cost the ladder exists to contain — actually
	// appear under contention.
	DeadlineSlack float64
	// MaxPendingTasks is the ladder arm's admission bound on the
	// cluster-wide backlog of admitted-but-unassigned tasks.
	MaxPendingTasks int
	// ShedMargin is the ladder arm's hedge on the backlog-aware
	// infeasibility estimate (see sim.Admission.Margin).
	ShedMargin float64
	// SolverNodeBudget is the ladder arm's branch-and-bound node budget
	// per exact solve.
	SolverNodeBudget int
	// FIFOTaskLimit is the ladder arm's pending-task count above which
	// the scheduler demotes from the list engine to FIFO placement.
	FIFOTaskLimit int
}

// DefaultOverloadOptions returns the reduced-scale sweep defaults.
func DefaultOverloadOptions() OverloadOptions {
	return OverloadOptions{
		Options:           DefaultOptions(),
		Jobs:              150,
		Multipliers:       []float64{1, 2, 4, 8},
		BaseArrivalPerMin: 1.75, // ×4 reaches 7 jobs/min, deep overload
		DeadlineSlack:     1.3,
		MaxPendingTasks:   600,
		ShedMargin:        1.5,
		SolverNodeBudget:  2000,
		FIFOTaskLimit:     450,
	}
}

// OverloadTables bundles the sweep's metrics, each versus the arrival
// multiplier. Goodput is the deadline-met fraction of admitted jobs —
// under load shedding, the question is whether the work the system
// accepts is delivered on time; Met gives the absolute count for the
// totals story.
type OverloadTables struct {
	Goodput      *metrics.Table
	Met          *metrics.Table
	Shed         *metrics.Table
	Degradations *metrics.Table
	PeakPending  *metrics.Table
	Violations   *metrics.Table
}

// All returns the tables in presentation order.
func (t *OverloadTables) All() []*metrics.Table {
	return []*metrics.Table{t.Goodput, t.Met, t.Shed, t.Degradations, t.PeakPending, t.Violations}
}

// overloadArms lists the sweep's two arms.
func overloadArms() []string { return []string{"DSP", "DSP+ladder"} }

// overloadConfig assembles one cell's sim config. The baseline arm is
// DSP exactly as the figure sweeps run it; the ladder arm adds the
// overload stack.
func overloadConfig(p Platform, o OverloadOptions, ladder bool) sim.Config {
	d := sched.NewDSP()
	cfg := sim.Config{
		Cluster:   p.Cluster(),
		Scheduler: d,
		Period:    o.Period,
		Epoch:     o.Epoch,
	}
	if ladder {
		d.ILPNodeBudget = o.SolverNodeBudget
		d.FIFOTaskLimit = o.FIFOTaskLimit
		cfg.Admission = &sim.Admission{
			MaxPendingTasks: o.MaxPendingTasks,
			ShedInfeasible:  true,
			Margin:          o.ShedMargin,
		}
		cfg.AuditInvariants = true
	}
	return cfg
}

// Overload measures how each arm degrades as the arrival rate climbs
// past cluster capacity: goodput (deadline-meeting jobs per minute),
// jobs shed by admission, solver-ladder downgrades, the pending-backlog
// high-water mark, and auditor detections (expected zero — the auditor
// rides along to show its overhead-only cost on healthy runs). Both
// arms at one multiplier see the same workload.
func Overload(p Platform, o OverloadOptions) (*OverloadTables, error) {
	cols := overloadArms()
	plat := p.String()
	label := func(name, unit string) *metrics.Table {
		return metrics.NewTable(
			fmt.Sprintf("Overload — %s vs. arrival multiplier (%s, %d jobs, base %.3g jobs/min)",
				name, plat, o.Jobs, o.BaseArrivalPerMin),
			"arrival ×", unit, cols...)
	}
	out := &OverloadTables{
		Goodput:      label("goodput", "% of admitted jobs meeting deadline"),
		Met:          label("jobs meeting deadline", "jobs"),
		Shed:         label("jobs shed", "jobs"),
		Degradations: label("solver degradations", "events"),
		PeakPending:  label("peak pending tasks", "tasks"),
		Violations:   label("invariant violations", "events"),
	}
	var cells []Cell
	for _, mult := range o.Multipliers {
		for _, arm := range cols {
			ladder := arm == "DSP+ladder"
			label := fmt.Sprintf("overload-%s-%s-x%g", p, arm, mult)
			cells = append(cells, Cell{Label: label, Run: func(tm *prof.Timer) (func(), error) {
				cfg := overloadConfig(p, o, ladder)
				cfg.Observer = o.observe(label)
				cfg.Prof = tm
				w, err := overloadWorkload(o, mult)
				if err != nil {
					return nil, err
				}
				res, err := sim.Run(cfg, w)
				if err != nil {
					return nil, fmt.Errorf("overload %s x%g: %w", arm, mult, err)
				}
				return func() {
					if admitted := o.Jobs - res.JobsShed; admitted > 0 {
						out.Goodput.Set(mult, arm, 100*float64(res.JobsMetDeadline)/float64(admitted))
					} else {
						out.Goodput.Set(mult, arm, 0)
					}
					out.Met.Set(mult, arm, float64(res.JobsMetDeadline))
					out.Shed.Set(mult, arm, float64(res.JobsShed))
					out.Degradations.Set(mult, arm, float64(res.SolverDegradations))
					out.PeakPending.Set(mult, arm, float64(res.PeakPendingTasks))
					out.Violations.Set(mult, arm, float64(res.InvariantViolations))
				}, nil
			}})
		}
	}
	if err := runCells(fmt.Sprintf("overload-%s", p), o.Options, cells); err != nil {
		return nil, err
	}
	return out, nil
}
