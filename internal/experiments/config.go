// Package experiments reproduces the DSP paper's evaluation (Section V):
// every figure's series can be regenerated as a plain-text table. The
// harness wires together the synthetic Google-trace-like workload
// generator, the two testbed profiles (50-node real cluster, 30-instance
// EC2), the DSP offline scheduler and online preemptor, and the baseline
// systems (Tetris, Aalo, Amoeba, Natjam, SRPT).
//
// Runs are deterministic given Options.Seed. Options.Scale shrinks
// per-job task counts proportionally (class ratios preserved) so the full
// figure sweep finishes in seconds to minutes on a laptop; the x-axes
// (number of jobs) match the paper exactly. See EXPERIMENTS.md for
// measured-vs-paper shape comparisons.
package experiments

import (
	"fmt"

	"dsp/internal/baselines"
	"dsp/internal/cluster"
	"dsp/internal/preempt"
	"dsp/internal/prof"
	"dsp/internal/sched"
	"dsp/internal/sim"
	"dsp/internal/trace"
	"dsp/internal/units"
)

// Platform selects one of the paper's two testbeds.
type Platform int

// The paper's testbeds.
const (
	// Real is the 50-node Palmetto-like real cluster.
	Real Platform = iota
	// EC2 is the 30-instance Amazon EC2 deployment.
	EC2
)

func (p Platform) String() string {
	if p == Real {
		return "real-cluster"
	}
	return "ec2"
}

// Cluster builds the platform's cluster profile.
func (p Platform) Cluster() *cluster.Cluster {
	if p == Real {
		return cluster.RealCluster(50)
	}
	return cluster.EC2(30)
}

// Options configures an experiment sweep.
type Options struct {
	// Scale is the workload TaskScale: 1.0 reproduces the paper's full
	// task counts (hundreds to 2000 tasks per job); the default 0.03
	// keeps class ratios while letting the full sweep run quickly.
	Scale float64
	// Seed makes the sweep deterministic.
	Seed int64
	// Period is the offline scheduling interval (paper: 5 minutes).
	Period units.Time
	// Epoch is the online preemption interval.
	Epoch units.Time
	// JobCounts is the x-axis for Figures 5–7 (paper: 150..750 step 150).
	JobCounts []int
	// ScaleJobCounts is the x-axis for Figure 8 (paper: 500..2500 step
	// 500).
	ScaleJobCounts []int
	// Observer, when non-nil, is attached to every simulation the sweep
	// runs (decision audits, counters, traces — see internal/obs). If it
	// also implements RunMarker it is told each cell's label first, so
	// multi-run artifacts stay attributable. A non-nil Observer forces the
	// sweep to run on a single worker (see Workers).
	Observer sim.Observer
	// Workers caps how many sweep cells execute concurrently; 0 means
	// runtime.GOMAXPROCS(0). Results are deterministic and byte-identical
	// for every worker count: cells derive their workloads from per-cell
	// seeds and the runner commits results in input order. An attached
	// Observer forces 1 worker, because observers consume decision streams
	// whose interleaving is part of their output.
	Workers int
	// Stats, when non-nil, accumulates per-sweep execution statistics
	// (wall time, per-cell times, per-cell phase breakdowns) for bench
	// reporting.
	Stats *SweepStats
	// Prof, when non-nil, aggregates phase-level timing across every cell
	// the sweep runs: each cell executes under its own timer (workers
	// never share one) and the runner merges the per-cell snapshots here.
	// Telemetry (obs.Server) serves this aggregate live during a sweep.
	Prof *prof.Timer
}

// PhaseRecorder is implemented by observers (e.g. obs.Sink) that want
// each profiled cell's phase breakdown — delivered serially, in input
// order, after the cell's results commit.
type PhaseRecorder interface {
	RecordPhases(label string, phases []prof.PhaseBreakdown)
}

// RunMarker is implemented by observers (e.g. obs.Sink) that separate
// the artifacts of consecutive runs in one sweep.
type RunMarker interface {
	BeginRun(label string)
}

// observe returns the sweep observer for one cell, marking the run
// boundary when supported. Call it immediately before sim.Run.
func (o Options) observe(label string) sim.Observer {
	if o.Observer == nil {
		return nil
	}
	if rm, ok := o.Observer.(RunMarker); ok {
		rm.BeginRun(label)
	}
	return o.Observer
}

// DefaultOptions returns the reduced-scale defaults.
func DefaultOptions() Options {
	return Options{
		Scale:          0.03,
		Seed:           20180901,
		Period:         5 * units.Minute,
		Epoch:          10 * units.Second,
		JobCounts:      []int{150, 300, 450, 600, 750},
		ScaleJobCounts: []int{500, 1000, 1500, 2000, 2500},
	}
}

// SchedulerNames lists the Figure 5 scheduling methods in the paper's
// order.
func SchedulerNames() []string {
	return []string{"DSP", "Aalo", "TetrisW/SimDep", "TetrisW/oDep"}
}

// PreemptorNames lists the Figure 6/7 preemption methods (DSPW/oPP is
// the PP-ablation variant the paper adds for throughput, waiting time
// and preemption counts).
func PreemptorNames() []string {
	return []string{"DSP", "DSPW/oPP", "Natjam", "Amoeba", "SRPT"}
}

// NewScheduler builds a Figure 5 scheduling method by name.
func NewScheduler(name string) (sim.Scheduler, error) {
	switch name {
	case "DSP":
		return sched.NewDSP(), nil
	case "Aalo":
		return baselines.NewAalo(), nil
	case "TetrisW/SimDep":
		return &baselines.Tetris{WithDependency: true}, nil
	case "TetrisW/oDep":
		return &baselines.Tetris{}, nil
	default:
		return nil, fmt.Errorf("experiments: unknown scheduler %q", name)
	}
}

// NewPreemptor builds a Figure 6/7 preemption method by name, together
// with the checkpoint policy that method uses (SRPT has none, so its
// preempted tasks restart from scratch).
func NewPreemptor(name string) (sim.Preemptor, cluster.CheckpointPolicy, error) {
	switch name {
	case "DSP":
		return preempt.NewDSP(), cluster.DefaultCheckpoint(), nil
	case "DSPW/oPP":
		return preempt.NewDSPWithoutPP(), cluster.DefaultCheckpoint(), nil
	case "Amoeba":
		return baselines.Amoeba{}, cluster.DefaultCheckpoint(), nil
	case "Natjam":
		return baselines.Natjam{}, cluster.DefaultCheckpoint(), nil
	case "SRPT":
		return baselines.NewSRPT(), cluster.NoCheckpoint(), nil
	default:
		return nil, cluster.CheckpointPolicy{}, fmt.Errorf("experiments: unknown preemptor %q", name)
	}
}

// workloadFor generates the deterministic workload for one (jobs, seed)
// cell. Each cell gets a fresh workload because simulation mutates task
// state.
//
// Scaling note: TaskScale shrinks per-job task counts, and the mean task
// size is inflated by the same factor so each job's total work — and
// therefore the cluster load ratio, the quantity that makes preemption
// and queueing dynamics meaningful — matches the paper's full-size
// workload at every scale. The paper's workload overloads both testbeds
// (arrival work rate exceeds cluster capacity ~4×), which is why deep
// queues form and preemption policy matters.
func workloadFor(jobs int, o Options) (*trace.Workload, error) {
	// The paper draws the arrival rate once per experiment from [2,5]
	// jobs/min; for comparable points along the x-axis every cell uses
	// the midpoint.
	return workloadAtRate(jobs, o, 3.5)
}

// workloadAtRate is workloadFor with an explicit arrival rate, for
// sweeps (Overload) whose x-axis is the arrival intensity itself.
func workloadAtRate(jobs int, o Options, jobsPerMin float64) (*trace.Workload, error) {
	spec := trace.DefaultSpec(jobs, o.Seed+int64(jobs)*7919)
	spec.TaskScale = o.Scale
	spec.MeanTaskSizeMI /= o.Scale
	spec.ArrivalRateMin = jobsPerMin
	spec.ArrivalRateMax = jobsPerMin
	return trace.Generate(spec)
}
