package experiments

import (
	"fmt"

	"dsp/internal/chaos"
	"dsp/internal/cluster"
	"dsp/internal/preempt"
	"dsp/internal/sched"
	"dsp/internal/sim"
	"dsp/internal/trace"
	"dsp/internal/units"
)

// RecoveryCellConfig assembles the stress cell the crash-tolerance
// harness (internal/recover/crashtest) kills and resumes: DSP scheduling
// and preemption on the platform's cluster with every optional subsystem
// that owns recoverable state switched on at once — chaos node faults
// (10% flaky nodes) with the full mitigation stack (speculative
// execution, health blacklisting, risk-averse placement, retry backoff),
// plus an overloaded arrival rate with the admission/shedding ladder —
// so a snapshot taken at any period exercises every serialized
// component.
//
// Both the config and the workload are rebuilt from scratch on every
// call: simulation mutates job DAGs and scheduler state in place, so a
// resumed run must regenerate them identically rather than share them
// (sim's world fingerprint rejects any drift). Determinism in (platform,
// jobs, seed) is the contract the harness's byte-identity checks rest
// on.
func RecoveryCellConfig(p Platform, jobs int, seed int64) (sim.Config, *trace.Workload, error) {
	d := sched.NewDSP()
	d.RiskAversion = 0.5
	nodes := p.Cluster().Len()
	spec := chaos.DefaultSpec(nodes, seed)
	spec.FaultyFraction = 0.10
	plan, err := spec.Plan()
	if err != nil {
		return sim.Config{}, nil, fmt.Errorf("experiments: recovery cell fault plan: %w", err)
	}
	cfg := sim.Config{
		Cluster:    p.Cluster(),
		Scheduler:  d,
		Preemptor:  preempt.NewDSP(),
		Checkpoint: cluster.DefaultCheckpoint(),
		// A short period keeps snapshot boundaries frequent relative to
		// the cell's makespan, so kill points land in every part of the
		// snapshot/WAL cycle.
		Period:             30 * units.Second,
		Epoch:              10 * units.Second,
		Faults:             plan,
		Speculation:        &sim.Speculation{},
		BlacklistThreshold: 2,
		RetryBackoff:       5 * units.Second,
		Admission: &sim.Admission{
			MaxPendingTasks: 600,
			ShedInfeasible:  true,
			Margin:          1.5,
		},
	}
	wspec := trace.DefaultSpec(jobs, seed+int64(jobs)*7919)
	wspec.TaskScale = 0.03
	wspec.MeanTaskSizeMI /= 0.03
	// Double the nominal 3.5 jobs/min so queues stay deep and the
	// admission ladder actually sheds.
	wspec.ArrivalRateMin = 7
	wspec.ArrivalRateMax = 7
	wspec.DeadlineSlack = 1.3
	w, err := trace.Generate(wspec)
	if err != nil {
		return sim.Config{}, nil, fmt.Errorf("experiments: recovery cell workload: %w", err)
	}
	return cfg, w, nil
}
