package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Cell is one independent unit of sweep work: a single simulation run (or
// a small bundle of runs) whose inputs are derived deterministically from
// the cell's own parameters. Run executes the work and returns a commit
// closure that writes the results into the sweep's tables; the runner
// executes Run bodies concurrently but invokes the commits serially, in
// input order, so the assembled tables are identical regardless of worker
// count or completion order.
type Cell struct {
	// Label identifies the cell in observer artifacts and bench reports.
	Label string
	// Run executes the cell and returns the closure that commits its
	// results. Run must not touch shared sweep state (tables, observers);
	// everything shared happens in the returned commit.
	Run func() (commit func(), err error)
}

// SweepStat records how one sweep's cell fan-out executed.
type SweepStat struct {
	// Name identifies the sweep (e.g. "fig5-real-cluster").
	Name string `json:"name"`
	// Workers is the number of workers the runner actually used.
	Workers int `json:"workers"`
	// Cells is the number of cells executed.
	Cells int `json:"cells"`
	// WallMS is the sweep's wall-clock time in milliseconds.
	WallMS float64 `json:"wall_ms"`
	// CellsPerSec is Cells divided by wall time.
	CellsPerSec float64 `json:"cells_per_sec"`
	// CellTimes holds each cell's own execution time, in input order.
	CellTimes []CellTime `json:"cell_us"`
}

// CellTime is one cell's label and execution time in microseconds.
type CellTime struct {
	Label string  `json:"label"`
	US    float64 `json:"us"`
}

// SweepStats accumulates one SweepStat per runCells invocation. Attach it
// via Options.Stats; the sweep functions themselves run serially with
// respect to each other, so no locking is needed.
type SweepStats struct {
	Sweeps []SweepStat `json:"sweeps"`
}

// TotalWallMS sums the recorded sweeps' wall times.
func (s *SweepStats) TotalWallMS() float64 {
	var total float64
	for _, sw := range s.Sweeps {
		total += sw.WallMS
	}
	return total
}

// runCells executes a sweep's cells across Options.Workers workers and
// commits their results in input order.
//
// Determinism: each cell derives its workload from its own parameters
// (workloadFor splits the sweep seed per cell), Run bodies share no
// mutable state, and commits are applied serially in input order after
// every earlier cell has committed — so the assembled tables, and any
// BENCH/figure output rendered from them, are byte-identical for every
// worker count, including 1. The package test
// TestParallelSweepMatchesSerial locks this in.
//
// An attached Observer forces a single worker: observers receive decision
// streams whose interleaving is part of their output, and obs.Sink is not
// safe for concurrent use. Errors surface as the first failing cell in
// input order, matching a serial run's error.
func runCells(name string, o Options, cells []Cell) error {
	workers := o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if o.Observer != nil {
		workers = 1
	}
	if workers > len(cells) {
		workers = len(cells)
	}

	start := time.Now()
	commits := make([]func(), len(cells))
	errs := make([]error, len(cells))
	cellUS := make([]float64, len(cells))

	run := func(i int) {
		t0 := time.Now()
		commits[i], errs[i] = cells[i].Run()
		cellUS[i] = float64(time.Since(t0).Microseconds())
	}

	if workers <= 1 {
		for i := range cells {
			run(i)
			if errs[i] != nil {
				break // serial semantics: stop at the first failure
			}
		}
	} else {
		var next atomic.Int64
		next.Store(-1)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1))
					if i >= len(cells) {
						return
					}
					run(i)
				}
			}()
		}
		wg.Wait()
	}

	var firstErr error
	for i := range cells {
		if errs[i] != nil {
			firstErr = errs[i]
			break
		}
		if commits[i] != nil {
			commits[i]()
		}
	}

	if o.Stats != nil {
		wall := time.Since(start)
		stat := SweepStat{
			Name:    name,
			Workers: workers,
			Cells:   len(cells),
			WallMS:  float64(wall.Microseconds()) / 1e3,
		}
		if wall > 0 {
			stat.CellsPerSec = float64(len(cells)) / wall.Seconds()
		}
		for i, c := range cells {
			stat.CellTimes = append(stat.CellTimes, CellTime{Label: c.Label, US: cellUS[i]})
		}
		o.Stats.Sweeps = append(o.Stats.Sweeps, stat)
	}
	return firstErr
}
