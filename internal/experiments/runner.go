package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dsp/internal/prof"
)

// Cell is one independent unit of sweep work: a single simulation run (or
// a small bundle of runs) whose inputs are derived deterministically from
// the cell's own parameters. Run executes the work and returns a commit
// closure that writes the results into the sweep's tables; the runner
// executes Run bodies concurrently but invokes the commits serially, in
// input order, so the assembled tables are identical regardless of worker
// count or completion order.
type Cell struct {
	// Label identifies the cell in observer artifacts and bench reports.
	Label string
	// Run executes the cell and returns the closure that commits its
	// results. Run must not touch shared sweep state (tables, observers);
	// everything shared happens in the returned commit.
	//
	// tm is the cell's phase timer — nil unless the sweep collects stats
	// or profiles. Cells running simulations pass it through as
	// sim.Config.Prof so the run's phase breakdown lands in the cell's
	// stats; ignoring it is also valid (the cell then reports all its
	// time as cell-other).
	Run func(tm *prof.Timer) (commit func(), err error)
}

// SweepStat records how one sweep's cell fan-out executed.
type SweepStat struct {
	// Name identifies the sweep (e.g. "fig5-real-cluster").
	Name string `json:"name"`
	// Workers is the number of workers the runner actually used.
	Workers int `json:"workers"`
	// Cells is the number of cells executed.
	Cells int `json:"cells"`
	// WallMS is the sweep's wall-clock time in milliseconds.
	WallMS float64 `json:"wall_ms"`
	// CellsPerSec is Cells divided by wall time.
	CellsPerSec float64 `json:"cells_per_sec"`
	// CellTimes holds each cell's own execution time, in input order.
	CellTimes []CellTime `json:"cell_us"`
}

// CellTime is one cell's label and execution time in microseconds,
// plus — when the sweep was profiled — its per-phase breakdown in blame
// order. Phases is the dsp-bench-sweep/v2 addition; v1 readers ignore
// the unknown field and v1 reports simply omit it.
type CellTime struct {
	Label  string                `json:"label"`
	US     float64               `json:"us"`
	Phases []prof.PhaseBreakdown `json:"phases,omitempty"`
}

// SweepStats accumulates one SweepStat per runCells invocation. Attach it
// via Options.Stats; the sweep functions themselves run serially with
// respect to each other, so no locking is needed.
type SweepStats struct {
	Sweeps []SweepStat `json:"sweeps"`
}

// TotalWallMS sums the recorded sweeps' wall times.
func (s *SweepStats) TotalWallMS() float64 {
	var total float64
	for _, sw := range s.Sweeps {
		total += sw.WallMS
	}
	return total
}

// runCells executes a sweep's cells across Options.Workers workers and
// commits their results in input order.
//
// Determinism: each cell derives its workload from its own parameters
// (workloadFor splits the sweep seed per cell), Run bodies share no
// mutable state, and commits are applied serially in input order after
// every earlier cell has committed — so the assembled tables, and any
// BENCH/figure output rendered from them, are byte-identical for every
// worker count, including 1. The package test
// TestParallelSweepMatchesSerial locks this in.
//
// An attached Observer forces a single worker: observers receive decision
// streams whose interleaving is part of their output, and obs.Sink is not
// safe for concurrent use. Errors surface as the first failing cell in
// input order, matching a serial run's error.
func runCells(name string, o Options, cells []Cell) error {
	workers := o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if o.Observer != nil {
		workers = 1
	}
	if workers > len(cells) {
		workers = len(cells)
	}

	// Profile cells whenever someone consumes the result: a stats sink
	// (bench reports carry per-cell phase breakdowns), a process-wide
	// aggregate timer, or a phase-recording observer (trace export).
	rec, _ := o.Observer.(PhaseRecorder)
	profiled := o.Stats != nil || o.Prof != nil || rec != nil

	start := time.Now()
	commits := make([]func(), len(cells))
	errs := make([]error, len(cells))
	cellUS := make([]float64, len(cells))
	var snaps []prof.Snapshot
	if profiled {
		snaps = make([]prof.Snapshot, len(cells))
	}

	run := func(i int) {
		t0 := time.Now()
		if !profiled {
			commits[i], errs[i] = cells[i].Run(nil)
			cellUS[i] = float64(time.Since(t0).Microseconds())
			return
		}
		// The cell-other root phase opens after t0 and unwinds before the
		// wall reading, so the cell's phase totals tile (a hair under) its
		// recorded wall time: everything sim.Run doesn't claim stays in
		// cell-other. Unwind also closes any frames an error path left
		// open inside the simulation.
		tm := prof.New()
		tm.Enter(prof.PhaseCellOther)
		commits[i], errs[i] = cells[i].Run(tm)
		tm.Unwind()
		cellUS[i] = float64(time.Since(t0).Microseconds())
		snaps[i] = tm.Snapshot()
	}

	if workers <= 1 {
		for i := range cells {
			run(i)
			if errs[i] != nil {
				break // serial semantics: stop at the first failure
			}
		}
	} else {
		var next atomic.Int64
		next.Store(-1)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1))
					if i >= len(cells) {
						return
					}
					run(i)
				}
			}()
		}
		wg.Wait()
	}

	var firstErr error
	for i := range cells {
		if errs[i] != nil {
			firstErr = errs[i]
			break
		}
		if commits[i] != nil {
			commits[i]()
		}
	}

	var breakdowns [][]prof.PhaseBreakdown
	if profiled {
		breakdowns = make([][]prof.PhaseBreakdown, len(cells))
		for i := range snaps {
			breakdowns[i] = snaps[i].Breakdown()
			if o.Prof != nil {
				o.Prof.Merge(snaps[i])
			}
			// Forward after the commit pass, serially and in input order,
			// so a phase-recording observer sees the same deterministic
			// stream at every worker count.
			if rec != nil && breakdowns[i] != nil {
				rec.RecordPhases(cells[i].Label, breakdowns[i])
			}
		}
	}

	if o.Stats != nil {
		wall := time.Since(start)
		stat := SweepStat{
			Name:    name,
			Workers: workers,
			Cells:   len(cells),
			WallMS:  float64(wall.Microseconds()) / 1e3,
		}
		if wall > 0 {
			stat.CellsPerSec = float64(len(cells)) / wall.Seconds()
		}
		for i, c := range cells {
			ct := CellTime{Label: c.Label, US: cellUS[i]}
			if breakdowns != nil {
				ct.Phases = breakdowns[i]
			}
			stat.CellTimes = append(stat.CellTimes, ct)
		}
		o.Stats.Sweeps = append(o.Stats.Sweeps, stat)
	}
	return firstErr
}
