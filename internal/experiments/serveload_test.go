package experiments_test

import (
	"context"
	"testing"
	"time"

	"dsp/internal/experiments"
	"dsp/internal/serve"
	"dsp/internal/units"
)

// TestServeLoadSmoke drives a real daemon over HTTP with the load
// generator: every job accepted, statuses probed mid-run, heap and
// serve-period quantiles scraped. (The external test package avoids the
// serve -> experiments import cycle.)
func TestServeLoadSmoke(t *testing.T) {
	d, err := serve.New(serve.Config{
		Listen: "127.0.0.1:0",
		Period: 30 * units.Second,
		Epoch:  10 * units.Second,
		Rate:   600, // half a wall second per virtual period
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() {
		_, err := d.Run(ctx)
		runDone <- err
	}()
	for i := 0; d.Addr() == "" && i < 100; i++ {
		time.Sleep(10 * time.Millisecond)
	}
	if d.Addr() == "" {
		t.Fatal("daemon never bound a listener")
	}

	rep, err := experiments.RunServeLoad(ctx, experiments.ServeLoadOptions{
		BaseURL:       "http://" + d.Addr(),
		Jobs:          30,
		Seed:          11,
		JobsPerMinute: 2400,
		SampleEvery:   10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Submitted != 30 {
		t.Errorf("submitted %d of 30", rep.Submitted)
	}
	if rep.StatusChecks == 0 {
		t.Error("no mid-run status checks succeeded")
	}
	if rep.HeapStartBytes <= 0 || rep.HeapPeakBytes < rep.HeapStartBytes {
		t.Errorf("heap sampling broken: start %.0f peak %.0f", rep.HeapStartBytes, rep.HeapPeakBytes)
	}
	if rep.AchievedPerMin < 1000 {
		t.Errorf("achieved %.0f jobs/min, want >= 1000", rep.AchievedPerMin)
	}
	if rep.Format() == "" {
		t.Error("empty report")
	}

	cancel()
	select {
	case err := <-runDone:
		if err != nil && err != context.Canceled {
			t.Fatalf("daemon run: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("daemon did not drain")
	}
}
