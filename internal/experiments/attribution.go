package experiments

import (
	"fmt"

	"dsp/internal/attrib"
	"dsp/internal/metrics"
	"dsp/internal/prof"
	"dsp/internal/sched"
	"dsp/internal/sim"
)

// AttributionOptions configures the latency-attribution sweep.
type AttributionOptions struct {
	Options
	// JobCounts is the x-axis (falls back to Options.JobCounts).
	JobCounts []int
	// Methods lists the preemption methods, one table each (falls back
	// to DSP, Natjam, SRPT — the methods whose wait/loss trade-offs the
	// blame vector separates most sharply).
	Methods []string
}

// DefaultAttributionOptions returns the reduced-scale sweep defaults.
func DefaultAttributionOptions() AttributionOptions {
	return AttributionOptions{
		Options: DefaultOptions(),
		Methods: []string{"DSP", "Natjam", "SRPT"},
	}
}

// AttributionTables holds one table per preemption method: mean seconds
// per completed job charged to each blame cause, versus job count.
type AttributionTables struct {
	PerMethod []*metrics.Table
}

// All returns the tables in method order.
func (a *AttributionTables) All() []*metrics.Table { return a.PerMethod }

// attributionColumns is the cause-name column set, canonical order.
func attributionColumns() []string {
	var cols []string
	for _, c := range attrib.Causes() {
		cols = append(cols, c.String())
	}
	return cols
}

// Attribution decomposes mean job completion time by blame cause for
// each preemption method as the job count grows: where a method's
// latency actually goes (queueing, preemption waits, rollback loss,
// service) rather than just how much of it there is. Every method at one
// x sees the same workload; the offline phase is always DSP, as in
// Figure 6.
func Attribution(p Platform, o AttributionOptions) (*AttributionTables, error) {
	jobCounts := o.JobCounts
	if len(jobCounts) == 0 {
		jobCounts = o.Options.JobCounts
	}
	methods := o.Methods
	if len(methods) == 0 {
		methods = DefaultAttributionOptions().Methods
	}
	out := &AttributionTables{}
	cols := attributionColumns()
	var cells []Cell
	for _, method := range methods {
		table := metrics.NewTable(
			fmt.Sprintf("Attribution — completion-time blame, %s preemption (%s)", method, p),
			"jobs", "mean s/job by cause", cols...)
		out.PerMethod = append(out.PerMethod, table)
		for _, jobs := range jobCounts {
			label := fmt.Sprintf("attrib-%s-%s-j%d", p, method, jobs)
			cells = append(cells, Cell{Label: label, Run: func(tm *prof.Timer) (func(), error) {
				pre, cp, err := NewPreemptor(method)
				if err != nil {
					return nil, err
				}
				rec := attrib.NewRecorder()
				var observer sim.Observer = rec
				if sweep := o.observe(label); sweep != nil {
					observer = sim.Observers{rec, sweep}
				}
				w, err := workloadFor(jobs, o.Options)
				if err != nil {
					return nil, err
				}
				res, err := sim.Run(sim.Config{
					Cluster:    p.Cluster(),
					Scheduler:  sched.NewDSP(),
					Preemptor:  pre,
					Checkpoint: cp,
					Period:     o.Period,
					Epoch:      o.Epoch,
					Observer:   observer,
					Prof:       tm,
				}, w)
				if err != nil {
					return nil, fmt.Errorf("attribution %s j=%d: %w", method, jobs, err)
				}
				blame, n := rec.Aggregate()
				if n != res.JobsCompleted {
					return nil, fmt.Errorf("attribution %s j=%d: %d attributions for %d completed jobs",
						method, jobs, n, res.JobsCompleted)
				}
				return func() {
					for _, c := range attrib.Causes() {
						var mean float64
						if n > 0 {
							mean = blame[c].Seconds() / float64(n)
						}
						table.Set(float64(jobs), c.String(), mean)
					}
				}, nil
			}})
		}
	}
	if err := runCells(fmt.Sprintf("attribution-%s", p), o.Options, cells); err != nil {
		return nil, err
	}
	return out, nil
}
