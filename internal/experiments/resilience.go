package experiments

import (
	"fmt"

	"dsp/internal/chaos"
	"dsp/internal/metrics"
	"dsp/internal/prof"
	"dsp/internal/sched"
	"dsp/internal/sim"
	"dsp/internal/units"
)

// ResilienceOptions configures the degradation-under-faults sweep.
type ResilienceOptions struct {
	Options
	// Jobs is the fixed workload size for every cell (the x-axis is the
	// fault rate, not the job count).
	Jobs int
	// FaultPercents is the x-axis: the percentage of nodes that are
	// flaky (crash/recover cycles plus straggler windows, per
	// chaos.DefaultSpec). 0 is the fault-free baseline.
	FaultPercents []int
	// FaultSeed drives the chaos expansion; every method at one fault
	// level faces the same concrete fault plan.
	FaultSeed int64
}

// DefaultResilienceOptions returns the reduced-scale sweep defaults.
func DefaultResilienceOptions() ResilienceOptions {
	return ResilienceOptions{
		Options:       DefaultOptions(),
		Jobs:          150,
		FaultPercents: []int{0, 5, 10, 20, 30},
		FaultSeed:     20180901,
	}
}

// ResilienceTables bundles the sweep's four metrics, each versus the
// percentage of flaky nodes.
type ResilienceTables struct {
	Makespan   *metrics.Table
	Throughput *metrics.Table
	Goodput    *metrics.Table
	Waste      *metrics.Table
}

// All returns the tables in presentation order.
func (r *ResilienceTables) All() []*metrics.Table {
	return []*metrics.Table{r.Makespan, r.Throughput, r.Goodput, r.Waste}
}

// ResilienceMethods lists the sweep's preemption methods. Each runs
// twice: bare, and as "<name>+res" with the full mitigation stack
// (speculative execution, health blacklisting, risk-averse placement,
// retry backoff).
func ResilienceMethods() []string {
	return []string{"DSP", "Natjam", "SRPT"}
}

// resilienceColumns interleaves bare and mitigated arms.
func resilienceColumns() []string {
	var cols []string
	for _, m := range ResilienceMethods() {
		cols = append(cols, m, m+"+res")
	}
	return cols
}

// resilienceConfig assembles one cell's sim config: the offline phase is
// always DSP (as in Figure 6), the preemptor varies by method, and the
// mitigated arm layers the resilience subsystem on top.
func resilienceConfig(p Platform, o ResilienceOptions, method string, mitigated bool) (sim.Config, error) {
	pre, cp, err := NewPreemptor(method)
	if err != nil {
		return sim.Config{}, err
	}
	d := sched.NewDSP()
	cfg := sim.Config{
		Cluster:    p.Cluster(),
		Scheduler:  d,
		Preemptor:  pre,
		Checkpoint: cp,
		Period:     o.Period,
		Epoch:      o.Epoch,
	}
	if mitigated {
		d.RiskAversion = 0.5
		cfg.Speculation = &sim.Speculation{}
		cfg.BlacklistThreshold = 2
		cfg.RetryBackoff = 5 * units.Second
	}
	return cfg, nil
}

// Resilience measures how gracefully each method degrades as the
// fraction of flaky nodes grows: makespan, task throughput, goodput
// (completed work that was not later wasted) and wasted slot time, with
// and without the mitigation stack. All methods at one fault level see
// the same workload and the same concrete fault plan.
func Resilience(p Platform, o ResilienceOptions) (*ResilienceTables, error) {
	cols := resilienceColumns()
	plat := p.String()
	out := &ResilienceTables{
		Makespan: metrics.NewTable(
			fmt.Sprintf("Resilience(a) — makespan vs. %% flaky nodes (%s, %d jobs)", plat, o.Jobs),
			"% flaky nodes", "makespan (s)", cols...),
		Throughput: metrics.NewTable(
			fmt.Sprintf("Resilience(b) — throughput vs. %% flaky nodes (%s, %d jobs)", plat, o.Jobs),
			"% flaky nodes", "throughput (tasks/ms)", cols...),
		Goodput: metrics.NewTable(
			fmt.Sprintf("Resilience(c) — goodput vs. %% flaky nodes (%s, %d jobs)", plat, o.Jobs),
			"% flaky nodes", "goodput (tasks/ms)", cols...),
		Waste: metrics.NewTable(
			fmt.Sprintf("Resilience(d) — wasted slot time vs. %% flaky nodes (%s, %d jobs)", plat, o.Jobs),
			"% flaky nodes", "wasted work (slot-s)", cols...),
	}
	nodes := p.Cluster().Len()
	var cells []Cell
	for _, pct := range o.FaultPercents {
		for _, method := range ResilienceMethods() {
			for _, mitigated := range []bool{false, true} {
				col := method
				if mitigated {
					col += "+res"
				}
				label := fmt.Sprintf("resilience-%s-%s-f%d", p, col, pct)
				cells = append(cells, Cell{Label: label, Run: func(tm *prof.Timer) (func(), error) {
					// The plan expansion is deterministic in (nodes,
					// FaultSeed, pct), so rebuilding it per cell keeps every
					// method at one fault level on the same concrete plan
					// without sharing a mutable structure across workers.
					var plan *sim.FaultPlan
					if pct > 0 {
						spec := chaos.DefaultSpec(nodes, o.FaultSeed)
						spec.FaultyFraction = float64(pct) / 100
						var err error
						if plan, err = spec.Plan(); err != nil {
							return nil, fmt.Errorf("resilience %d%%: %w", pct, err)
						}
					}
					cfg, err := resilienceConfig(p, o, method, mitigated)
					if err != nil {
						return nil, err
					}
					cfg.Faults = plan
					cfg.Observer = o.observe(label)
					cfg.Prof = tm
					w, err := workloadFor(o.Jobs, o.Options)
					if err != nil {
						return nil, err
					}
					res, err := sim.Run(cfg, w)
					if err != nil {
						return nil, fmt.Errorf("resilience %s f=%d%%: %w", col, pct, err)
					}
					return func() {
						x := float64(pct)
						out.Makespan.Set(x, col, res.Makespan.Seconds())
						out.Throughput.Set(x, col, res.TaskThroughputPerMs)
						out.Goodput.Set(x, col, res.GoodputPerMs)
						out.Waste.Set(x, col, (res.LostWork + res.SpeculativeWaste).Seconds())
					}, nil
				}})
			}
		}
	}
	if err := runCells(fmt.Sprintf("resilience-%s", p), o.Options, cells); err != nil {
		return nil, err
	}
	return out, nil
}
