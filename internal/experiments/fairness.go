package experiments

import (
	"fmt"

	"dsp/internal/metrics"
	"dsp/internal/prof"
	"dsp/internal/sched"
	"dsp/internal/sim"
)

// Fairness — a paper future-work item — compares the preemption methods
// on per-job slowdown fairness: for each method it reports Jain's index
// over job slowdowns (1 = perfectly even slowdowns), the mean slowdown,
// and the worst-case (max) slowdown. Aggressive shortest-first policies
// trade fairness for mean performance; the index makes that visible.
func Fairness(p Platform, h int, o Options) (*metrics.Table, error) {
	// Rows: 1 = Jain index, 2 = mean slowdown, 3 = max slowdown; one
	// column per preemption method.
	t := metrics.NewTable(
		fmt.Sprintf("Fairness of preemption methods (%d jobs, %s) — rows: 1=Jain index, 2=mean slowdown, 3=max slowdown", h, p),
		"row", "", PreemptorNames()...)
	var cells []Cell
	for _, name := range PreemptorNames() {
		label := fmt.Sprintf("fairness-%s-h%d", name, h)
		cells = append(cells, Cell{Label: label, Run: func(tm *prof.Timer) (func(), error) {
			pre, cp, err := NewPreemptor(name)
			if err != nil {
				return nil, err
			}
			w, err := workloadFor(h, o)
			if err != nil {
				return nil, err
			}
			res, err := sim.Run(sim.Config{
				Cluster:    p.Cluster(),
				Scheduler:  sched.NewDSP(),
				Preemptor:  pre,
				Checkpoint: cp,
				Period:     o.Period,
				Epoch:      o.Epoch,
				Observer:   o.observe(label),
				Prof:       tm,
			}, w)
			if err != nil {
				return nil, fmt.Errorf("fairness %s: %w", name, err)
			}
			slowdowns := make([]float64, 0, len(res.Jobs))
			var mean, max float64
			for _, r := range res.Jobs {
				slowdowns = append(slowdowns, r.Slowdown)
				mean += r.Slowdown
				if r.Slowdown > max {
					max = r.Slowdown
				}
			}
			if len(slowdowns) > 0 {
				mean /= float64(len(slowdowns))
			}
			return func() {
				t.Set(1, name, metrics.JainIndex(slowdowns))
				t.Set(2, name, mean)
				t.Set(3, name, max)
			}, nil
		}})
	}
	if err := runCells(fmt.Sprintf("fairness-%s", p), o, cells); err != nil {
		return nil, err
	}
	return t, nil
}
