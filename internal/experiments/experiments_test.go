package experiments

import (
	"io"
	"math"
	"testing"

	"dsp/internal/cluster"
	"dsp/internal/sim"
	"dsp/internal/units"
)

// tinyOptions keeps the test sweep fast while exercising the full
// harness.
func tinyOptions() Options {
	o := DefaultOptions()
	o.Scale = 0.02
	o.JobCounts = []int{24, 48}
	o.ScaleJobCounts = []int{30, 60}
	return o
}

func TestFig5ShapesRealCluster(t *testing.T) {
	tb, err := Fig5(Real, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	xs := tb.Xs()
	if len(xs) != 2 {
		t.Fatalf("xs = %v", xs)
	}
	for _, m := range SchedulerNames() {
		col := tb.Column(m)
		for i, v := range col {
			if math.IsNaN(v) || v <= 0 {
				t.Fatalf("%s[%d] = %v", m, i, v)
			}
		}
		// Makespan grows with the number of jobs.
		if col[1] <= col[0] {
			t.Errorf("%s makespan not increasing: %v", m, col)
		}
	}
	// Paper shape: DSP < TetrisW/oDep.
	for _, x := range xs {
		if tb.Get(x, "DSP") > tb.Get(x, "TetrisW/oDep") {
			t.Errorf("at h=%v DSP makespan %v > TetrisW/oDep %v",
				x, tb.Get(x, "DSP"), tb.Get(x, "TetrisW/oDep"))
		}
	}
}

func TestFig6ShapesRealCluster(t *testing.T) {
	f, err := Fig6(Real, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, tb := range f.All() {
		for _, m := range PreemptorNames() {
			for i, v := range tb.Column(m) {
				if math.IsNaN(v) {
					t.Fatalf("%s: %s[%d] unset", tb.Title, m, i)
				}
			}
		}
	}
	// Paper shape: DSP never violates dependency order.
	for _, v := range f.Disorders.Column("DSP") {
		if v != 0 {
			t.Errorf("DSP disorders = %v, want 0", v)
		}
	}
	for _, v := range f.Disorders.Column("DSPW/oPP") {
		if v != 0 {
			t.Errorf("DSPW/oPP disorders = %v, want 0", v)
		}
	}
	// Paper shape: DSP preempts no more than DSPW/oPP (PP filters), and
	// far less than SRPT.
	for _, x := range f.Preemptions.Xs() {
		dsp := f.Preemptions.Get(x, "DSP")
		nopp := f.Preemptions.Get(x, "DSPW/oPP")
		srpt := f.Preemptions.Get(x, "SRPT")
		if dsp > nopp {
			t.Errorf("h=%v: DSP preemptions %v > DSPW/oPP %v", x, dsp, nopp)
		}
		if dsp > srpt {
			t.Errorf("h=%v: DSP preemptions %v > SRPT %v", x, dsp, srpt)
		}
	}
}

func TestFig8Shapes(t *testing.T) {
	f, err := Fig8(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range f.Makespan.Xs() {
		real := f.Makespan.Get(x, "real-cluster")
		ec2 := f.Makespan.Get(x, "ec2")
		if math.IsNaN(real) || math.IsNaN(ec2) || real <= 0 || ec2 <= 0 {
			t.Fatalf("unset cells at h=%v", x)
		}
		// 30 slower nodes cannot beat 50 faster ones.
		if ec2 < real {
			t.Errorf("h=%v: EC2 makespan %v < real cluster %v", x, ec2, real)
		}
	}
	for _, col := range [][]float64{f.Throughput.Column("real-cluster"), f.Throughput.Column("ec2")} {
		for i, v := range col {
			if math.IsNaN(v) || v <= 0 {
				t.Fatalf("throughput[%d] = %v", i, v)
			}
		}
	}
}

func TestMethodRegistries(t *testing.T) {
	for _, n := range SchedulerNames() {
		s, err := NewScheduler(n)
		if err != nil {
			t.Fatal(err)
		}
		if s.Name() != n {
			t.Errorf("scheduler %q reports name %q", n, s.Name())
		}
	}
	for _, n := range PreemptorNames() {
		p, _, err := NewPreemptor(n)
		if err != nil {
			t.Fatal(err)
		}
		if p.Name() != n {
			t.Errorf("preemptor %q reports name %q", n, p.Name())
		}
	}
	if _, err := NewScheduler("nope"); err == nil {
		t.Error("unknown scheduler accepted")
	}
	if _, _, err := NewPreemptor("nope"); err == nil {
		t.Error("unknown preemptor accepted")
	}
	// SRPT must run without checkpointing (the paper's distinguishing
	// detail).
	_, cp, _ := NewPreemptor("SRPT")
	if cp.Enabled {
		t.Error("SRPT should have checkpointing disabled")
	}
	_, cp, _ = NewPreemptor("DSP")
	if !cp.Enabled {
		t.Error("DSP should have checkpointing enabled")
	}
}

func TestPlatformClusters(t *testing.T) {
	if Real.Cluster().Len() != 50 {
		t.Error("real cluster should have 50 nodes")
	}
	if EC2.Cluster().Len() != 30 {
		t.Error("EC2 should have 30 instances")
	}
	if Real.String() != "real-cluster" || EC2.String() != "ec2" {
		t.Error("platform names")
	}
}

func TestTableII(t *testing.T) {
	tb := TableII()
	if len(tb.Xs()) != 16 {
		t.Errorf("Table II has %d rows", len(tb.Xs()))
	}
	if tb.Get(7, "value") != 0.35 {
		t.Errorf("delta = %v, want 0.35", tb.Get(7, "value"))
	}
}

func TestWorkloadDeterministicAcrossCells(t *testing.T) {
	o := tinyOptions()
	a, err := workloadFor(24, o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := workloadFor(24, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Jobs) != len(b.Jobs) {
		t.Fatal("lengths differ")
	}
	for i := range a.Jobs {
		if a.Jobs[i].Arrival != b.Jobs[i].Arrival || a.Jobs[i].DAG.NumEdges() != b.Jobs[i].DAG.NumEdges() {
			t.Fatalf("workload not deterministic at job %d", i)
		}
	}
}

func TestSensitivitySweep(t *testing.T) {
	o := tinyOptions()
	for _, p := range []SensitivityParam{ParamGamma, ParamDelta, ParamRho, ParamOmega1, ParamEpoch} {
		vals := SensitivityValues(p)[:2]
		tb, err := Sensitivity(p, vals, Real, 24, o)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if len(tb.Xs()) != 2 {
			t.Fatalf("%s: xs = %v", p, tb.Xs())
		}
		for _, x := range tb.Xs() {
			if v := tb.Get(x, "makespan(s)"); math.IsNaN(v) || v <= 0 {
				t.Errorf("%s: makespan at %v = %v", p, x, v)
			}
		}
	}
}

func TestSensitivityDefaults(t *testing.T) {
	if len(SensitivityValues(ParamDelta)) == 0 {
		t.Error("no defaults for delta")
	}
	if SensitivityValues(SensitivityParam("nope")) != nil {
		t.Error("unknown param should return nil")
	}
	if _, err := Sensitivity(SensitivityParam("nope"), nil, Real, 10, tinyOptions()); err == nil {
		t.Error("unknown param accepted")
	}
}

func TestFairnessTable(t *testing.T) {
	tb, err := Fairness(Real, 24, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Xs()) != 3 {
		t.Fatalf("rows = %v", tb.Xs())
	}
	for _, m := range PreemptorNames() {
		jain := tb.Get(1, m)
		mean := tb.Get(2, m)
		max := tb.Get(3, m)
		if math.IsNaN(jain) || jain <= 0 || jain > 1+1e-9 {
			t.Errorf("%s jain = %v", m, jain)
		}
		if mean < 1-1e-9 || max < mean-1e-9 {
			t.Errorf("%s slowdowns: mean %v max %v", m, mean, max)
		}
	}
}

// markerObserver records the run labels the sweep announces and counts
// the events it receives, proving every cell's simulation is observed.
type markerObserver struct {
	sim.NopObserver
	labels []string
	starts int
}

func (m *markerObserver) BeginRun(label string) { m.labels = append(m.labels, label) }
func (m *markerObserver) TaskStarted(units.Time, *sim.TaskState, cluster.NodeID) {
	m.starts++
}

func TestSweepObserverThreading(t *testing.T) {
	o := tinyOptions()
	mo := &markerObserver{}
	o.Observer = mo
	if _, err := Fig5(Real, o); err != nil {
		t.Fatal(err)
	}
	wantRuns := len(o.JobCounts) * len(SchedulerNames())
	if len(mo.labels) != wantRuns {
		t.Fatalf("got %d run markers, want %d: %v", len(mo.labels), wantRuns, mo.labels)
	}
	if mo.labels[0] != "fig5-real-cluster-DSP-h24" {
		t.Errorf("unexpected first label %q", mo.labels[0])
	}
	if mo.starts == 0 {
		t.Error("observer attached to sweep saw no task events")
	}
	// An observer without BeginRun still works (plain sim.Observer).
	o.Observer = &sim.LogObserver{W: io.Discard, Quiet: true}
	if _, err := Fig5(Real, o); err != nil {
		t.Fatal(err)
	}
}
