package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := New(43)
	same := true
	d := New(42)
	for i := 0; i < 10; i++ {
		if c.Float64() != d.Float64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split(1)
	parent2 := New(7)
	_ = parent2.Split(1)
	c2b := parent2.Split(2)
	// Children with different tags from equally-advanced parents differ.
	diff := false
	c1b := New(7).Split(1)
	for i := 0; i < 20; i++ {
		if c1.Float64() != c1b.Float64() {
			t.Fatal("Split not reproducible for same (seed, tag, call order)")
		}
	}
	x := New(7)
	_ = x.Split(1)
	cx := x.Split(2)
	for i := 0; i < 20; i++ {
		if cx.Float64() != c2b.Float64() {
			t.Fatal("second Split not reproducible")
		}
		if cx.Float64() != c2b.Float64() {
			t.Fatal("second Split not reproducible")
		}
		diff = true
	}
	if !diff {
		t.Error("no draws compared")
	}
}

func TestUniformRange(t *testing.T) {
	g := New(1)
	for i := 0; i < 1000; i++ {
		v := g.Uniform(2, 5)
		if v < 2 || v >= 5 {
			t.Fatalf("Uniform out of range: %v", v)
		}
	}
	for i := 0; i < 1000; i++ {
		v := g.UniformInt(3, 7)
		if v < 3 || v > 7 {
			t.Fatalf("UniformInt out of range: %v", v)
		}
	}
	if g.UniformInt(5, 5) != 5 {
		t.Error("degenerate UniformInt")
	}
	if g.UniformInt(5, 2) != 5 {
		t.Error("inverted UniformInt should return lo")
	}
}

func TestExpMean(t *testing.T) {
	g := New(2)
	const n = 20000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += g.Exp(10)
	}
	mean := sum / n
	if mean < 9 || mean > 11 {
		t.Errorf("Exp(10) sample mean = %v, want ~10", mean)
	}
}

func TestLogNormalMeanCV(t *testing.T) {
	g := New(3)
	const n = 50000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := g.LogNormalMeanCV(100, 0.5)
		if v <= 0 {
			t.Fatalf("lognormal produced %v", v)
		}
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	sd := math.Sqrt(sumsq/n - mean*mean)
	if mean < 95 || mean > 105 {
		t.Errorf("mean = %v, want ~100", mean)
	}
	cv := sd / mean
	if cv < 0.45 || cv > 0.55 {
		t.Errorf("cv = %v, want ~0.5", cv)
	}
	if got := g.LogNormalMeanCV(0, 1); got != 0 {
		t.Errorf("zero mean should yield 0, got %v", got)
	}
	if got := g.LogNormalMeanCV(5, 0); got != 5 {
		t.Errorf("zero cv should yield mean, got %v", got)
	}
}

func TestBoundedParetoRange(t *testing.T) {
	g := New(4)
	for i := 0; i < 5000; i++ {
		v := g.BoundedPareto(1.5, 10, 1000)
		if v < 10-1e-9 || v > 1000+1e-9 {
			t.Fatalf("BoundedPareto out of range: %v", v)
		}
	}
	if got := g.BoundedPareto(1.5, 7, 7); got != 7 {
		t.Errorf("degenerate BoundedPareto = %v", got)
	}
}

func TestZipfSkew(t *testing.T) {
	g := New(5)
	counts := make([]int, 10)
	for i := 0; i < 10000; i++ {
		v := g.Zipf(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Zipf out of range: %d", v)
		}
		counts[v]++
	}
	if counts[0] <= counts[9] {
		t.Errorf("Zipf not skewed: counts[0]=%d counts[9]=%d", counts[0], counts[9])
	}
	if g.Zipf(1) != 0 || g.Zipf(0) != 0 {
		t.Error("degenerate Zipf should return 0")
	}
}

func TestBoolProbability(t *testing.T) {
	g := New(6)
	hits := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if g.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.22 || frac > 0.28 {
		t.Errorf("Bool(0.25) hit rate = %v", frac)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed int64) bool {
		g := New(seed)
		n := 1 + g.Intn(50)
		p := g.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(p) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestNorm(t *testing.T) {
	g := New(8)
	const n = 20000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += g.Norm(50, 5)
	}
	if m := sum / n; m < 49 || m > 51 {
		t.Errorf("Norm mean = %v, want ~50", m)
	}
}
