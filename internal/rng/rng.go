// Package rng provides a small deterministic random-number toolkit for
// workload generation: a splittable seeded source plus the distributions
// the synthetic Google-trace-like generator needs (uniform, exponential,
// lognormal, bounded Pareto, Zipf). Everything is reproducible: the same
// seed always yields the same stream, and Split derives independent child
// streams so adding a new consumer does not perturb existing ones.
package rng

import (
	"math"
	"math/rand"
)

// RNG wraps a seeded source with distribution helpers.
type RNG struct {
	r *rand.Rand
}

// New returns an RNG seeded with seed.
func New(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Split derives an independent child stream labelled by tag. Two children
// of the same parent with distinct tags produce distinct streams, and the
// parent's own stream is not consumed.
func (g *RNG) Split(tag int64) *RNG {
	// SplitMix64-style mixing of (seed-ish state, tag). We cannot read the
	// internal state of math/rand, so derive from one draw of a cloned
	// child keyed on the tag. To keep the parent untouched we mix the tag
	// into a fixed large odd constant.
	z := uint64(tag)*0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	// Fold in one draw from the parent-independent base so different
	// parent seeds give different children: use the parent to draw once at
	// Split time (documented: Split consumes one value).
	base := g.r.Uint64()
	return New(int64(z ^ base))
}

// Float64 returns a uniform value in [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform int in [0,n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Uniform returns a uniform value in [lo,hi).
func (g *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*g.r.Float64()
}

// UniformInt returns a uniform int in [lo,hi] inclusive.
func (g *RNG) UniformInt(lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + g.r.Intn(hi-lo+1)
}

// Exp returns an exponential variate with the given mean (mean > 0).
func (g *RNG) Exp(mean float64) float64 {
	return g.r.ExpFloat64() * mean
}

// LogNormal returns a lognormal variate where the underlying normal has
// mean mu and standard deviation sigma. Task durations in cluster traces
// are well modelled as lognormal.
func (g *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*g.r.NormFloat64())
}

// LogNormalMeanCV returns a lognormal variate with the given arithmetic
// mean and coefficient of variation (stddev/mean), which is the natural
// parameterization for "tasks average 50 s with CV 1.2".
func (g *RNG) LogNormalMeanCV(mean, cv float64) float64 {
	if mean <= 0 {
		return 0
	}
	if cv <= 0 {
		return mean
	}
	sigma2 := math.Log(1 + cv*cv)
	mu := math.Log(mean) - sigma2/2
	return g.LogNormal(mu, math.Sqrt(sigma2))
}

// BoundedPareto returns a Pareto(alpha) variate truncated to [lo,hi].
// Heavy-tailed task-size distributions use this shape.
func (g *RNG) BoundedPareto(alpha, lo, hi float64) float64 {
	if lo >= hi {
		return lo
	}
	u := g.r.Float64()
	la := math.Pow(lo, alpha)
	ha := math.Pow(hi, alpha)
	return math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/alpha)
}

// Zipf returns a value in [0,n) with Zipfian (s=1.1) popularity skew.
func (g *RNG) Zipf(n int) int {
	if n <= 1 {
		return 0
	}
	z := rand.NewZipf(g.r, 1.1, 1, uint64(n-1))
	return int(z.Uint64())
}

// Norm returns a normal variate with the given mean and stddev.
func (g *RNG) Norm(mean, stddev float64) float64 {
	return mean + stddev*g.r.NormFloat64()
}

// Perm returns a random permutation of [0,n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle shuffles n elements via swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// Bool returns true with probability p.
func (g *RNG) Bool(p float64) bool { return g.r.Float64() < p }
