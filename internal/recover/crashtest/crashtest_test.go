package crashtest

import (
	"bytes"
	"math/rand"
	"testing"

	"dsp/internal/experiments"
	"dsp/internal/prof"
	"dsp/internal/recover"
	"dsp/internal/sim"
)

// assertIdentical compares a recovered run's artifacts against the
// uninterrupted reference, byte for byte.
func assertIdentical(t *testing.T, killN int, got, want *RunArtifacts) {
	t.Helper()
	if !bytes.Equal(got.Result, want.Result) {
		t.Errorf("killN=%d: Result differs\ngot:  %s\nwant: %s", killN, got.Result, want.Result)
	}
	if !bytes.Equal(got.Audit, want.Audit) {
		i := 0
		for i < len(got.Audit) && i < len(want.Audit) && got.Audit[i] == want.Audit[i] {
			i++
		}
		lo, hi := i-80, i+80
		if lo < 0 {
			lo = 0
		}
		ctx := func(b []byte) []byte {
			h := hi
			if h > len(b) {
				h = len(b)
			}
			if lo >= h {
				return nil
			}
			return b[lo:h]
		}
		t.Errorf("killN=%d: audit differs at byte %d (got %d bytes, want %d)\ngot:  ...%q...\nwant: ...%q...",
			killN, i, len(got.Audit), len(want.Audit), ctx(got.Audit), ctx(want.Audit))
	}
	if !bytes.Equal(got.Blame(), want.Blame()) {
		t.Errorf("killN=%d: job-blame decomposition differs", killN)
	}
}

// TestKillAnywhereByteIdentity is the acceptance sweep: kill the
// chaos+overload cell at seeded random event boundaries and require the
// recovered Result, audit JSONL and blame decomposition to be
// byte-identical to the uninterrupted run's. 200 kill points in full
// mode, 20 under -short.
func TestKillAnywhereByteIdentity(t *testing.T) {
	base, err := RunUninterrupted(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if base.Snapshots == 0 {
		t.Fatal("uninterrupted cell took no snapshots; the sweep would only test fresh restarts")
	}
	if base.Events < 1000 {
		t.Fatalf("cell fired only %d events; too small to be interesting", base.Events)
	}

	points := 200
	if testing.Short() {
		points = 20
	}
	rng := rand.New(rand.NewSource(20180901))
	resumed := 0
	for i := 0; i < points; i++ {
		killN := 1 + rng.Intn(base.Events-1)
		got, err := RunKilledAndRecover(Options{Dir: t.TempDir()}, killN)
		if err != nil {
			t.Fatalf("killN=%d: %v", killN, err)
		}
		assertIdentical(t, killN, got, base)
		if got.Resumed {
			resumed++
		}
		if t.Failed() {
			t.Fatalf("stopping after first divergence (%d/%d points run)", i+1, points)
		}
	}
	if resumed == 0 {
		t.Error("no kill point went through snapshot resume; every one restarted fresh")
	}
	t.Logf("%d kill points: %d snapshot resumes, %d fresh restarts", points, resumed, points-resumed)
}

// TestKillBeforeFirstSnapshot pins the fresh-restart path: a kill before
// any snapshot exists must recover by starting over, with identical
// artifacts.
func TestKillBeforeFirstSnapshot(t *testing.T) {
	base, err := RunUninterrupted(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunKilledAndRecover(Options{Dir: t.TempDir()}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got.Resumed {
		t.Error("kill at event 5 claims to have resumed from a snapshot")
	}
	assertIdentical(t, 5, got, base)
}

// TestWALTailTruncation chops bytes off the surviving WAL before
// recovery — a torn final record. The WAL is a verification log over a
// deterministic roll-forward, so losing its tail must not change the
// outcome, only shorten the verified prefix.
func TestWALTailTruncation(t *testing.T) {
	base, err := RunUninterrupted(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	killN := base.Events * 3 / 4
	for _, chop := range []int{1, 7, 200} {
		got, err := RunKilledAndRecover(Options{Dir: t.TempDir(), TruncateWALTail: chop}, killN)
		if err != nil {
			t.Fatalf("chop=%d: %v", chop, err)
		}
		assertIdentical(t, killN, got, base)
	}
}

// TestRecoveryDuringChaosReplay targets the recovery × resilience seam:
// with a snapshot every period, kill points land between a chaos node
// crash and its retry resolutions, so the roll-forward replays eviction
// and retry decisions. Retry budgets must not be double-charged and
// "retried" audit lines must not duplicate — pinned by comparing the
// retried-line count and the full audit against the uninterrupted run.
func TestRecoveryDuringChaosReplay(t *testing.T) {
	o := Options{Dir: t.TempDir(), EveryK: 1}
	base, err := RunUninterrupted(o)
	if err != nil {
		t.Fatal(err)
	}
	retried := bytes.Count(base.Audit, []byte(`"ev":"retried"`))
	if retried == 0 {
		t.Fatal("fixture produced no retries; the replay window never covers the resilience path")
	}

	points := 30
	if testing.Short() {
		points = 8
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < points; i++ {
		killN := 1 + rng.Intn(base.Events-1)
		got, err := RunKilledAndRecover(Options{Dir: t.TempDir(), EveryK: 1}, killN)
		if err != nil {
			t.Fatalf("killN=%d: %v", killN, err)
		}
		if n := bytes.Count(got.Audit, []byte(`"ev":"retried"`)); n != retried {
			t.Errorf("killN=%d: %d retried lines, want %d (double-charged or lost retries)", killN, n, retried)
		}
		assertIdentical(t, killN, got, base)
		if t.Failed() {
			t.FailNow()
		}
	}
}

// TestSnapshotOverhead bounds the durability tax: the snapshot+WAL
// phase must stay under 3% of the cell's profiled time. The kill sweeps
// above run K=1..2 to land kill points on every boundary; this test
// measures at a deployment cadence (K=20, a snapshot every 10 simulated
// minutes). K only trades recovery roll-forward length — the WAL is
// fsynced every period regardless, so durability does not degrade with
// K — and the remaining per-snapshot cost is the synchronous state
// capture (encoding, writes and fsyncs ride the background persister).
func TestSnapshotOverhead(t *testing.T) {
	run := func() float64 {
		cfg, w, err := experiments.RecoveryCellConfig(experiments.Real, 50, 1)
		if err != nil {
			t.Fatal(err)
		}
		m, err := recover.NewManager(t.TempDir(), 20)
		if err != nil {
			t.Fatal(err)
		}
		tm := prof.New()
		cfg.Observer = m
		cfg.Durability = m
		cfg.Prof = tm
		if _, err := sim.Run(cfg, w); err != nil {
			t.Fatal(err)
		}
		if err := m.Close(); err != nil {
			t.Fatal(err)
		}
		total := 0.0
		snapshotUS := 0.0
		snap := tm.Snapshot()
		for _, row := range snap.Breakdown() {
			total += row.TotalUS
			if row.Phase == "snapshot" {
				snapshotUS = row.TotalUS
			}
		}
		if total == 0 {
			t.Fatal("profiler recorded nothing")
		}
		share := snapshotUS / total
		t.Logf("snapshot phase: %.0fus of %.0fus (%.2f%%)", snapshotUS, total, 100*share)
		return share
	}
	// Best of three: a wall-clock bound on a shared machine sees
	// scheduler and page-cache noise; the minimum is the honest
	// estimate of what the durability path itself costs.
	best := run()
	for i := 0; i < 2 && best > 0.03; i++ {
		if s := run(); s < best {
			best = s
		}
	}
	if best > 0.03 {
		t.Errorf("snapshot+WAL overhead %.2f%% exceeds the 3%% budget", 100*best)
	}
}
