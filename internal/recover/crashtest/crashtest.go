// Package crashtest is the kill-anywhere harness for the crash-tolerant
// scheduler state in internal/recover: it runs a stress cell (chaos node
// faults + overload + the full mitigation stack, per
// experiments.RecoveryCellConfig), kills the run at an arbitrary event
// boundary by capping the event budget — abandoning every buffer
// unflushed, exactly as a real crash would — then recovers from the
// on-disk snapshot/WAL pair and finishes the run. The contract it
// checks: the recovered run's Result, decision-audit JSONL and per-job
// blame decomposition are byte-identical to an uninterrupted run's, for
// a kill at any event index.
package crashtest

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"dsp/internal/experiments"
	"dsp/internal/obs"
	"dsp/internal/recover"
	"dsp/internal/sim"
)

// Options selects the cell the harness runs. The zero value is not
// usable: Dir is required, and the rest default via normalize.
type Options struct {
	// Dir is the working directory: checkpoints land in Dir/ckpt and the
	// decision audit in Dir/audit.jsonl.
	Dir string
	// Platform, Jobs and Seed pick the experiments.RecoveryCellConfig
	// cell (defaults: Real, 50 jobs, seed 1).
	Platform experiments.Platform
	Jobs     int
	Seed     int64
	// EveryK is the snapshot cadence in scheduling periods (default 2).
	EveryK int
	// TruncateWALTail, when positive, chops that many bytes off the end
	// of the surviving WAL between the kill and the recovery — an
	// explicit torn-final-record case on top of whatever the kill itself
	// tore. Test hook.
	TruncateWALTail int
}

func (o Options) normalized() Options {
	if o.Jobs == 0 {
		o.Jobs = 50
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.EveryK == 0 {
		o.EveryK = 2
	}
	return o
}

// RunArtifacts captures everything the byte-identity contract compares,
// plus how the run got there.
type RunArtifacts struct {
	// Result is the run's sim.Result as canonical JSON.
	Result []byte
	// Audit is the full decision-audit JSONL file.
	Audit []byte
	// Events is the number of events the (final) execution fired; for a
	// recovered run that counts the resumed execution only.
	Events int
	// Resumed reports whether recovery went through a snapshot (false:
	// the kill predated the first snapshot and the run restarted fresh).
	Resumed bool
	// Replayed is the number of WAL records the roll-forward verified.
	Replayed int
	// Snapshots is how many snapshot events the run observed.
	Snapshots int64
}

// Blame extracts the per-job blame decomposition ("job-blame" lines)
// from the audit artifact. Byte-identity of the full audit implies
// byte-identity here; the harness asserts it separately because the
// blame lines are the artifact downstream tools (dspexplain) consume.
func (a *RunArtifacts) Blame() []byte {
	var out []byte
	for _, line := range bytes.SplitAfter(a.Audit, []byte("\n")) {
		if bytes.Contains(line, []byte(`"ev":"job-blame"`)) {
			out = append(out, line...)
		}
	}
	return out
}

// RunUninterrupted executes the cell start to finish with durability
// attached (snapshots and WAL exactly as a killed run would write them,
// so the audit stream — which carries snapshot markers — is comparable)
// and returns the reference artifacts.
func RunUninterrupted(o Options) (*RunArtifacts, error) {
	o = o.normalized()
	if err := os.MkdirAll(o.Dir, 0o755); err != nil {
		return nil, err
	}
	auditPath := filepath.Join(o.Dir, "audit.jsonl")
	f, err := os.Create(auditPath)
	if err != nil {
		return nil, err
	}
	counters := obs.NewCounters()
	aw := obs.NewAuditWriter(f)
	m, err := recover.NewManager(filepath.Join(o.Dir, "ckpt"), o.EveryK)
	if err != nil {
		f.Close()
		return nil, err
	}
	m.AttachAudit(aw)

	cfg, w, err := experiments.RecoveryCellConfig(o.Platform, o.Jobs, o.Seed)
	if err != nil {
		f.Close()
		return nil, err
	}
	cfg.Observer = sim.Observers{counters, aw, m}
	cfg.Durability = m
	e, err := sim.Prepare(cfg, w)
	if err != nil {
		f.Close()
		return nil, err
	}
	res, err := e.Execute()
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := m.Close(); err != nil {
		f.Close()
		return nil, err
	}
	if err := aw.Flush(); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	return artifacts(o, res, e.EventsFired(), false, 0, counters)
}

// RunKilledAndRecover kills the cell after killN events — dropping every
// unflushed buffer, as a crash would — then recovers from disk and runs
// to completion. A kill that predates the first snapshot recovers by
// restarting fresh (Resumed=false).
func RunKilledAndRecover(o Options, killN int) (*RunArtifacts, error) {
	o = o.normalized()
	if err := os.MkdirAll(o.Dir, 0o755); err != nil {
		return nil, err
	}
	auditPath := filepath.Join(o.Dir, "audit.jsonl")
	ckptDir := filepath.Join(o.Dir, "ckpt")

	// Phase 1: the doomed run. Nothing it holds is flushed or closed on
	// the way down; only bytes that reached the OS before the kill
	// survive, which is exactly the torn on-disk state recovery must
	// tolerate. (The abandoned audit fd is closed to avoid accumulating
	// descriptors across a long sweep — without flushing its writer.)
	f, err := os.Create(auditPath)
	if err != nil {
		return nil, err
	}
	aw := obs.NewAuditWriter(f)
	m, err := recover.NewManager(ckptDir, o.EveryK)
	if err != nil {
		f.Close()
		return nil, err
	}
	m.AttachAudit(aw)
	cfg, w, err := experiments.RecoveryCellConfig(o.Platform, o.Jobs, o.Seed)
	if err != nil {
		f.Close()
		return nil, err
	}
	cfg.Observer = sim.Observers{aw, m}
	cfg.Durability = m
	cfg.MaxEvents = killN
	e, err := sim.Prepare(cfg, w)
	if err != nil {
		f.Close()
		return nil, err
	}
	if _, err := e.Execute(); err == nil {
		f.Close()
		return nil, fmt.Errorf("crashtest: killN=%d exceeds the cell's event count; run completed", killN)
	}
	// Stop the background persister without flushing: queued writes are
	// discarded, matching what a process kill leaves on disk.
	m.Kill()
	f.Close()

	if o.TruncateWALTail > 0 {
		if err := truncateNewestWAL(ckptDir, o.TruncateWALTail); err != nil {
			return nil, err
		}
	}

	// Phase 2: recover.
	mr, st, err := recover.Resume(ckptDir, o.EveryK)
	if errors.Is(err, recover.ErrNoSnapshot) {
		return restartFresh(o)
	}
	if err != nil {
		return nil, err
	}

	counters := obs.NewCounters()
	offset := st.AuditOffset
	if offset < 0 {
		offset = 0
	}
	af, prefix, err := reopenAudit(auditPath, offset)
	if err != nil {
		return nil, err
	}
	aw2 := obs.NewAuditWriter(af)
	aw2.SetBaseOffset(offset)
	mr.AttachAudit(aw2)
	chain := sim.Observers{counters, aw2, mr}
	mr.Peer = sim.Observers{counters, aw2}

	cfg2, w2, err := experiments.RecoveryCellConfig(o.Platform, o.Jobs, o.Seed)
	if err != nil {
		af.Close()
		return nil, err
	}
	cfg2.Observer = chain
	cfg2.Durability = mr
	er, err := sim.PrepareResume(cfg2, w2, st)
	if err != nil {
		af.Close()
		return nil, err
	}
	// Rebuild the in-memory attribution state for jobs still in flight
	// from the retained audit prefix, then announce the recovery on the
	// observer chain (process-local: not audited, so artifacts stay
	// byte-identical).
	if err := aw2.Rehydrate(bytes.NewReader(prefix), er.FindTask); err != nil {
		af.Close()
		return nil, err
	}
	chain.RecoveryStarted(st.Now, st.PeriodIndex)
	res, err := er.Execute()
	if err != nil {
		af.Close()
		return nil, err
	}
	if err := mr.Close(); err != nil {
		af.Close()
		return nil, err
	}
	if err := aw2.Flush(); err != nil {
		af.Close()
		return nil, err
	}
	if err := af.Close(); err != nil {
		return nil, err
	}
	return artifacts(o, res, er.EventsFired(), true, mr.ReplayTarget(), counters)
}

// restartFresh handles the no-usable-snapshot case: everything runs
// again from scratch, overwriting the partial artifacts.
func restartFresh(o Options) (*RunArtifacts, error) {
	a, err := RunUninterrupted(o)
	if err != nil {
		return nil, err
	}
	a.Resumed = false
	return a, nil
}

// truncateNewestWAL chops n bytes off the end of the WAL the recovery
// will read (the one paired with the newest valid snapshot, or the
// initial log when no snapshot exists), simulating a torn final record.
func truncateNewestWAL(ckptDir string, n int) error {
	seq := 0
	if _, s, err := recover.Latest(ckptDir); err == nil {
		seq = s
	} else if !errors.Is(err, recover.ErrNoSnapshot) {
		return err
	}
	path := filepath.Join(ckptDir, fmt.Sprintf("wal-%08d.log", seq))
	fi, err := os.Stat(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil // crash before the rotated WAL existed: nothing to tear
		}
		return err
	}
	size := fi.Size() - int64(n)
	if size < 0 {
		size = 0
	}
	return os.Truncate(path, size)
}

// reopenAudit opens the torn audit file, keeps the prefix the snapshot
// vouches for, truncates the rest (written after the snapshot; the
// roll-forward re-emits it) and positions the file for appending.
func reopenAudit(path string, offset int64) (*os.File, []byte, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, err
	}
	prefix := make([]byte, offset)
	if _, err := io.ReadFull(f, prefix); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("crashtest: audit shorter than snapshot offset %d: %w", offset, err)
	}
	if err := f.Truncate(offset); err != nil {
		f.Close()
		return nil, nil, err
	}
	if _, err := f.Seek(offset, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	return f, prefix, nil
}

func artifacts(o Options, res *sim.Result, events int, resumed bool, replayed int, c *obs.Counters) (*RunArtifacts, error) {
	resJSON, err := json.Marshal(res)
	if err != nil {
		return nil, err
	}
	audit, err := os.ReadFile(filepath.Join(o.Dir, "audit.jsonl"))
	if err != nil {
		return nil, err
	}
	return &RunArtifacts{
		Result:    resJSON,
		Audit:     audit,
		Events:    events,
		Resumed:   resumed,
		Replayed:  replayed,
		Snapshots: c.Snapshots.Load(),
	}, nil
}
