package recover

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func writeWALFile(t *testing.T, payloads ...string) string {
	t.Helper()
	var b []byte
	for _, p := range payloads {
		b = appendWALRecord(b, p)
	}
	path := filepath.Join(t.TempDir(), walName(0))
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestWALRoundTrip(t *testing.T) {
	want := []string{
		"start t=1000 task=J0.T1 node=0",
		"preempt t=2000 victim=J0.T1 starter=J1.T0 node=0",
		"complete t=3000 task=J1.T0 node=0",
	}
	path := writeWALFile(t, want...)
	records, validLen, err := readWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != len(want) {
		t.Fatalf("got %d records, want %d", len(records), len(want))
	}
	for i := range want {
		if records[i] != want[i] {
			t.Errorf("record %d = %q, want %q", i, records[i], want[i])
		}
	}
	fi, _ := os.Stat(path)
	if validLen != fi.Size() {
		t.Errorf("validLen = %d, want full file %d", validLen, fi.Size())
	}
}

func TestWALMissingFileIsEmpty(t *testing.T) {
	records, validLen, err := readWAL(filepath.Join(t.TempDir(), walName(3)))
	if err != nil || len(records) != 0 || validLen != 0 {
		t.Errorf("missing file: records=%v validLen=%d err=%v, want empty", records, validLen, err)
	}
}

// TestWALTornTail truncates a valid log at every possible byte length
// and expects readWAL to recover the longest intact prefix without
// error — exactly what a mid-write kill leaves behind.
func TestWALTornTail(t *testing.T) {
	payloads := []string{
		"start t=1000 task=J0.T1 node=0",
		"complete t=9000 task=J0.T1 node=0",
	}
	full := writeWALFile(t, payloads...)
	b, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	// Line boundaries (end offsets of each complete line).
	var ends []int64
	for i, c := range b {
		if c == '\n' {
			ends = append(ends, int64(i+1))
		}
	}
	for cut := 0; cut <= len(b); cut++ {
		path := filepath.Join(t.TempDir(), walName(0))
		if err := os.WriteFile(path, b[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		records, validLen, err := readWAL(path)
		if err != nil {
			t.Fatalf("cut=%d: unexpected error %v", cut, err)
		}
		wantN := 0
		wantLen := int64(0)
		for i, end := range ends {
			if int64(cut) >= end {
				wantN = i + 1
				wantLen = end
			}
		}
		if len(records) != wantN || validLen != wantLen {
			t.Fatalf("cut=%d: got %d records validLen=%d, want %d records validLen=%d",
				cut, len(records), validLen, wantN, wantLen)
		}
	}
}

// TestWALMidFileCorruption flips a byte in the first record of a
// three-record log: an invalid line followed by valid ones cannot come
// from a torn write and must be rejected.
func TestWALMidFileCorruption(t *testing.T) {
	path := writeWALFile(t,
		"start t=1000 task=J0.T1 node=0",
		"start t=1000 task=J0.T2 node=1",
		"complete t=9000 task=J0.T1 node=0",
	)
	b, _ := os.ReadFile(path)
	b[12] ^= 0x20 // inside the first payload
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := readWAL(path)
	var fe *FormatError
	if !errors.As(err, &fe) {
		t.Fatalf("err = %v, want FormatError", err)
	}
}

// A corrupt final line (newline intact, bad CRC) is indistinguishable
// from a torn tail and is tolerated; two bad lines are not.
func TestWALCorruptFinalLineTolerated(t *testing.T) {
	path := writeWALFile(t,
		"start t=1000 task=J0.T1 node=0",
		"complete t=9000 task=J0.T1 node=0",
	)
	b, _ := os.ReadFile(path)
	b[len(b)-3] ^= 0x20
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	records, _, err := readWAL(path)
	if err != nil || len(records) != 1 {
		t.Errorf("records=%d err=%v, want 1 record and no error", len(records), err)
	}
}

func TestParseWALLineRejectsEmbeddedNewline(t *testing.T) {
	line := appendWALRecord(nil, "ok payload")
	if _, ok := parseWALLine(line[:len(line)-1]); !ok {
		t.Error("valid line rejected")
	}
	if _, ok := parseWALLine([]byte("zzzzzzzz payload")); ok {
		t.Error("bad CRC accepted")
	}
	if _, ok := parseWALLine([]byte("short")); ok {
		t.Error("short line accepted")
	}
}
