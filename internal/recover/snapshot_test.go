package recover

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"dsp/internal/sim"
	"dsp/internal/units"
)

func sampleState() *sim.EngineState {
	return &sim.EngineState{
		Now:           3 * units.Second,
		PeriodIndex:   4,
		EpochIndex:    7,
		JobsRemaining: 2,
		WorldSum:      0xdeadbeef,
		AuditOffset:   -1,
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	st := sampleState()
	b, err := EncodeSnapshot(st)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(b, []byte(snapshotMagic+" "+snapshotVersion+" ")) {
		t.Fatalf("header = %q", b[:bytes.IndexByte(b, '\n')])
	}
	got, err := DecodeSnapshot(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Now != st.Now || got.PeriodIndex != st.PeriodIndex || got.WorldSum != st.WorldSum || got.AuditOffset != st.AuditOffset {
		t.Errorf("round trip mismatch: got %+v want %+v", got, st)
	}
}

func TestDecodeSnapshotRejectsCorruption(t *testing.T) {
	valid, err := EncodeSnapshot(sampleState())
	if err != nil {
		t.Fatal(err)
	}
	nl := bytes.IndexByte(valid, '\n')

	t.Run("bit flip in payload", func(t *testing.T) {
		b := append([]byte(nil), valid...)
		b[nl+5] ^= 0x40
		var ce *ChecksumError
		if _, err := DecodeSnapshot(b); !errors.As(err, &ce) {
			t.Errorf("err = %v, want ChecksumError", err)
		}
	})
	t.Run("truncated payload", func(t *testing.T) {
		var fe *FormatError
		if _, err := DecodeSnapshot(valid[:len(valid)-3]); !errors.As(err, &fe) {
			t.Errorf("err = %v, want FormatError", err)
		}
	})
	t.Run("version skew", func(t *testing.T) {
		b := bytes.Replace(valid, []byte(" "+snapshotVersion+" "), []byte(" v99 "), 1)
		var ve *VersionError
		if _, err := DecodeSnapshot(b); !errors.As(err, &ve) {
			t.Errorf("err = %v, want VersionError", err)
		}
	})
	t.Run("wrong magic", func(t *testing.T) {
		b := append([]byte("not-a-snapshot"), valid...)
		var fe *FormatError
		if _, err := DecodeSnapshot(b); !errors.As(err, &fe) {
			t.Errorf("err = %v, want FormatError", err)
		}
	})
	t.Run("no header", func(t *testing.T) {
		var fe *FormatError
		if _, err := DecodeSnapshot([]byte("garbage with no newline")); !errors.As(err, &fe) {
			t.Errorf("err = %v, want FormatError", err)
		}
	})
	t.Run("unknown payload field", func(t *testing.T) {
		payload := []byte(`{"NoSuchField":1}`)
		sum := sha256.Sum256(payload)
		blob := fmt.Appendf(nil, "%s %s %s %d\n", snapshotMagic, snapshotVersion, hex.EncodeToString(sum[:]), len(payload))
		blob = append(blob, payload...)
		var fe *FormatError
		if _, err := DecodeSnapshot(blob); !errors.As(err, &fe) {
			t.Errorf("err = %v, want FormatError", err)
		}
	})
}

func TestWriteReadSnapshot(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, snapName(1))
	st := sampleState()
	if err := WriteSnapshot(path, st); err != nil {
		t.Fatal(err)
	}
	// No temp files left behind.
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Errorf("dir has %d entries, want 1 (no leftover temp files)", len(entries))
	}
	got, err := ReadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Now != st.Now {
		t.Errorf("Now = %v, want %v", got.Now, st.Now)
	}

	// Corrupt on disk: the typed error carries the path.
	b, _ := os.ReadFile(path)
	b[len(b)-2] ^= 0x01
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = ReadSnapshot(path)
	var ce *ChecksumError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want ChecksumError", err)
	}
	if ce.Path != path {
		t.Errorf("error path = %q, want %q", ce.Path, path)
	}
}

func TestSeqNames(t *testing.T) {
	if walName(0) != "wal-00000000.log" || snapName(3) != "snapshot-00000003.snap" {
		t.Errorf("names: %q %q", walName(0), snapName(3))
	}
	cases := map[string]int{
		"snapshot-00000007.snap": 7,
		"snapshot-00000000.snap": 0,
		"wal-00000007.log":       -1,
		"snapshot-7.snap":        -1,
		"snapshot-0000000x.snap": -1,
		".snap-12345":            -1,
	}
	for name, want := range cases {
		if got := seqOfSnap(name); got != want {
			t.Errorf("seqOfSnap(%q) = %d, want %d", name, got, want)
		}
	}
}
