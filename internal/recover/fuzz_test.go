package recover

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// FuzzRestoreSnapshot feeds arbitrary bytes to the snapshot decoder:
// whatever the mutation — corrupt header, flipped payload bits,
// truncation, version skew — it must either return one of the package's
// typed errors or a state that re-encodes cleanly. Never a panic, never
// a silently-wrong restore.
func FuzzRestoreSnapshot(f *testing.F) {
	valid, err := EncodeSnapshot(sampleState())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("dsp-snapshot v99 00 0\n"))
	f.Add([]byte("dsp-snapshot v1 zz -1\n{}"))
	f.Add([]byte{})
	f.Add([]byte("\n"))
	f.Fuzz(func(t *testing.T, b []byte) {
		st, err := DecodeSnapshot(b)
		if err != nil {
			var fe *FormatError
			var ce *ChecksumError
			var ve *VersionError
			if !errors.As(err, &fe) && !errors.As(err, &ce) && !errors.As(err, &ve) {
				t.Fatalf("untyped error %T: %v", err, err)
			}
			return
		}
		// Accepted bytes passed the sha256 gate; the state must at least
		// survive a re-encode round trip.
		if _, err := EncodeSnapshot(st); err != nil {
			t.Fatalf("decoded state does not re-encode: %v", err)
		}
	})
}

// FuzzReplayWAL feeds arbitrary bytes to the WAL reader: it must never
// panic, and whatever records it accepts must re-serialize to a log that
// parses back to the same records (no silent reinterpretation).
func FuzzReplayWAL(f *testing.F) {
	var seed []byte
	seed = appendWALRecord(seed, "start t=1000 task=J0.T1 node=0")
	seed = appendWALRecord(seed, "complete t=9000 task=J0.T1 node=0")
	f.Add(seed)
	f.Add(seed[:len(seed)-4])
	f.Add([]byte{})
	f.Add([]byte("zzzzzzzz not a valid checksum\n"))
	f.Add([]byte("00000000 \n00000000 \n"))
	f.Fuzz(func(t *testing.T, b []byte) {
		path := filepath.Join(t.TempDir(), walName(0))
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
		records, validLen, err := readWAL(path)
		if err != nil {
			var fe *FormatError
			if !errors.As(err, &fe) {
				t.Fatalf("untyped error %T: %v", err, err)
			}
			return
		}
		if validLen < 0 || validLen > int64(len(b)) {
			t.Fatalf("validLen %d outside file [0, %d]", validLen, len(b))
		}
		var again []byte
		for _, r := range records {
			again = appendWALRecord(again, r)
		}
		path2 := filepath.Join(t.TempDir(), walName(1))
		if err := os.WriteFile(path2, again, 0o644); err != nil {
			t.Fatal(err)
		}
		records2, _, err := readWAL(path2)
		if err != nil {
			t.Fatalf("re-serialized log does not parse: %v", err)
		}
		if len(records2) != len(records) {
			t.Fatalf("round trip lost records: %d -> %d", len(records), len(records2))
		}
		for i := range records {
			if records2[i] != records[i] {
				t.Fatalf("record %d changed across round trip: %q -> %q", i, records[i], records2[i])
			}
		}
	})
}
