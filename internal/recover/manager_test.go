package recover

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"dsp/internal/cluster"
	"dsp/internal/preempt"
	"dsp/internal/sched"
	"dsp/internal/sim"
	"dsp/internal/trace"
	"dsp/internal/units"
)

var (
	_ sim.Observer       = (*Manager)(nil)
	_ sim.DurabilitySink = (*Manager)(nil)
)

// testWorkload regenerates the identical workload for every call — the
// engine mutates job DAGs in place, so resume needs a fresh copy.
func testWorkload(t *testing.T, jobs int, seed int64) *trace.Workload {
	t.Helper()
	spec := trace.DefaultSpec(jobs, seed)
	spec.TaskScale = 0.02
	spec.MeanTaskSizeMI /= 0.02
	spec.ArrivalRateMin = 3.5
	spec.ArrivalRateMax = 3.5
	w, err := trace.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// testConfig builds a small deterministic cell — DSP scheduling and
// preemption on two nodes with 1 s periods so snapshots fire often —
// with fresh scheduler/preemptor instances (they hold per-run state).
func testConfig(m *Manager) sim.Config {
	cp := cluster.DefaultCheckpoint()
	cp.Interval = 500 * units.Millisecond
	cfg := sim.Config{
		Cluster:    cluster.RealCluster(2),
		Scheduler:  sched.NewDSP(),
		Preemptor:  preempt.NewDSP(),
		Checkpoint: cp,
		Period:     units.Second,
		Epoch:      units.Second,
	}
	if m != nil {
		cfg.Observer = m
		cfg.Durability = m
	}
	return cfg
}

func TestManagerRotationRetentionAndLatest(t *testing.T) {
	dir := t.TempDir()
	m, err := NewManager(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(testConfig(m), testWorkload(t, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if res.JobsCompleted == 0 {
		t.Fatal("fixture completed no jobs")
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	snaps, wals := 0, 0
	for _, e := range entries {
		switch {
		case seqOfSnap(e.Name()) >= 0:
			snaps++
		case filepath.Ext(e.Name()) == ".log":
			wals++
		default:
			t.Errorf("unexpected file %q in checkpoint dir", e.Name())
		}
	}
	if snaps == 0 || snaps > retainGenerations {
		t.Errorf("dir holds %d snapshots, want 1..%d (rotation + retention)", snaps, retainGenerations)
	}
	if wals == 0 || wals > retainGenerations {
		t.Errorf("dir holds %d WALs, want 1..%d", wals, retainGenerations)
	}

	st, seq, err := Latest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if seq != m.seq {
		t.Errorf("Latest seq = %d, manager ended at %d", seq, m.seq)
	}
	if st.Now <= 0 || st.PeriodIndex <= 0 {
		t.Errorf("snapshot state looks empty: Now=%v PeriodIndex=%d", st.Now, st.PeriodIndex)
	}
	if st.PeriodIndex%2 != 0 {
		t.Errorf("snapshot at period %d, want a multiple of everyK=2", st.PeriodIndex)
	}
}

// TestKillResumeMatchesUninterrupted is the core recovery contract in
// miniature: kill mid-run at an arbitrary event count, resume from disk,
// and the final Result must be identical to the uninterrupted run's.
func TestKillResumeMatchesUninterrupted(t *testing.T) {
	// Uninterrupted baseline (durability attached, like any real run).
	baseDir := t.TempDir()
	mb, err := NewManager(baseDir, 2)
	if err != nil {
		t.Fatal(err)
	}
	eb, err := sim.Prepare(testConfig(mb), testWorkload(t, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	want, err := eb.Execute()
	if err != nil {
		t.Fatal(err)
	}
	mb.Close()
	total := eb.EventsFired()
	if total < 20 {
		t.Fatalf("fixture fired only %d events", total)
	}

	for _, frac := range []float64{0.25, 0.5, 0.85} {
		killN := int(float64(total) * frac)
		dir := t.TempDir()
		mk, err := NewManager(dir, 2)
		if err != nil {
			t.Fatal(err)
		}
		cfg := testConfig(mk)
		cfg.MaxEvents = killN
		ek, err := sim.Prepare(cfg, testWorkload(t, 2, 1))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ek.Execute(); err == nil {
			t.Fatalf("killN=%d: killed run unexpectedly completed", killN)
		}
		// The dead process never flushes anything: Kill drops mk's
		// buffers and queued background writes exactly as a crash would.
		mk.Kill()

		var got *sim.Result
		mr, st, err := Resume(dir, 2)
		switch {
		case errors.Is(err, ErrNoSnapshot):
			// The kill outran the write-behind persister: nothing durable
			// on disk yet, so recovery restarts from scratch — and must
			// still reproduce the uninterrupted result.
			mf, err := NewManager(t.TempDir(), 2)
			if err != nil {
				t.Fatal(err)
			}
			got, err = sim.Run(testConfig(mf), testWorkload(t, 2, 1))
			if err != nil {
				t.Fatalf("killN=%d: fresh restart: %v", killN, err)
			}
			mf.Close()
		case err != nil:
			t.Fatalf("killN=%d: resume: %v", killN, err)
		default:
			er, err := sim.PrepareResume(testConfig(mr), testWorkload(t, 2, 1), st)
			if err != nil {
				t.Fatalf("killN=%d: prepare resume: %v", killN, err)
			}
			got, err = er.Execute()
			if err != nil {
				t.Fatalf("killN=%d: resumed execute: %v", killN, err)
			}
			mr.Close()
		}

		gotJSON, _ := json.Marshal(got)
		wantJSON, _ := json.Marshal(want)
		if string(gotJSON) != string(wantJSON) {
			t.Errorf("killN=%d: resumed result differs from uninterrupted run\ngot:  %s\nwant: %s", killN, gotJSON, wantJSON)
		}
	}
}

func TestResumeEmptyDirIsErrNoSnapshot(t *testing.T) {
	dir := t.TempDir()
	if _, _, err := Resume(dir, 2); !errors.Is(err, ErrNoSnapshot) {
		t.Errorf("empty dir: err = %v, want ErrNoSnapshot", err)
	}
}

// A kill before the first snapshot leaves only wal-00000000.log; resume
// must report ErrNoSnapshot so the caller restarts fresh.
func TestKillBeforeFirstSnapshot(t *testing.T) {
	dir := t.TempDir()
	m, err := NewManager(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(m)
	cfg.MaxEvents = 3
	e, err := sim.Prepare(cfg, testWorkload(t, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Execute(); err == nil {
		t.Fatal("run of 3 events unexpectedly completed")
	}
	m.Kill()
	if _, _, err := Resume(dir, 2); !errors.Is(err, ErrNoSnapshot) {
		t.Errorf("err = %v, want ErrNoSnapshot", err)
	}
}

// TestLatestFallsBackOnCorruptNewest corrupts the newest snapshot and
// expects Latest to recover from the previous generation.
func TestLatestFallsBackOnCorruptNewest(t *testing.T) {
	dir := t.TempDir()
	m, err := NewManager(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(testConfig(m), testWorkload(t, 2, 1)); err != nil {
		t.Fatal(err)
	}
	m.Close()
	_, newest, err := Latest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if newest < 2 {
		t.Skipf("run produced only %d generations; retention test needs 2", newest)
	}
	path := filepath.Join(dir, snapName(newest))
	b, _ := os.ReadFile(path)
	b[len(b)/2] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	_, seq, err := Latest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if seq != newest-1 {
		t.Errorf("Latest fell back to seq %d, want %d", seq, newest-1)
	}
}

// TestVerifyModeDetectsDivergence drives a verifying manager directly:
// a re-emitted decision that differs from the logged record must latch
// a DivergenceError, and matching records must advance verification and
// switch the manager back to append mode when the log is exhausted.
func TestVerifyModeDetectsDivergence(t *testing.T) {
	logged := []string{
		"start t=1000 task=J0.T1 node=0",
		"complete t=5000 task=J0.T1 node=0",
	}

	t.Run("mismatch latches", func(t *testing.T) {
		m := &Manager{dir: t.TempDir(), everyK: 2, verifying: true, verify: logged}
		m.record(units.Second, logged[0])
		m.record(5*units.Second, "complete t=5000 task=J0.T1 node=1") // wrong node
		var de *DivergenceError
		if !errors.As(m.Err(), &de) {
			t.Fatalf("err = %v, want DivergenceError", m.Err())
		}
		if de.Index != 1 || de.Want != logged[1] {
			t.Errorf("divergence = %+v, want index 1 against %q", de, logged[1])
		}
	})

	t.Run("match exhausts and reopens for append", func(t *testing.T) {
		dir := t.TempDir()
		// Simulate the on-disk log the records came from, plus a torn tail
		// that finishReplay must truncate away.
		var b []byte
		for _, r := range logged {
			b = appendWALRecord(b, r)
		}
		valid := int64(len(b))
		b = append(b, "deadbeef torn"...)
		if err := os.WriteFile(filepath.Join(dir, walName(0)), b, 0o644); err != nil {
			t.Fatal(err)
		}
		m := &Manager{dir: dir, everyK: 2, verifying: true, verify: logged, validLen: valid}
		m.record(units.Second, logged[0])
		m.record(5*units.Second, logged[1])
		if err := m.Err(); err != nil {
			t.Fatal(err)
		}
		if m.verifying {
			t.Error("manager still verifying after log exhausted")
		}
		m.record(6*units.Second, "start t=6000 task=J0.T2 node=1")
		if err := m.Close(); err != nil {
			t.Fatal(err)
		}
		records, _, err := readWAL(filepath.Join(dir, walName(0)))
		if err != nil {
			t.Fatal(err)
		}
		want := append(append([]string(nil), logged...), "start t=6000 task=J0.T2 node=1")
		if len(records) != len(want) {
			t.Fatalf("wal has %d records, want %d: %q", len(records), len(want), records)
		}
		for i := range want {
			if records[i] != want[i] {
				t.Errorf("record %d = %q, want %q", i, records[i], want[i])
			}
		}
	})

	t.Run("records past a snapshot boundary are corruption", func(t *testing.T) {
		m := &Manager{dir: t.TempDir(), everyK: 2, verifying: true, verify: logged}
		m.record(units.Second, logged[0])
		if err := m.OnPeriod(nil, 2, 2*units.Second); err == nil {
			t.Fatal("snapshot-due period with unverified records accepted")
		}
		var fe *FormatError
		if !errors.As(m.Err(), &fe) {
			t.Errorf("err = %v, want FormatError", m.Err())
		}
	})
}

// TestResumeRejectsMismatchedWorkload: a snapshot from one workload must
// not overlay onto a different one.
func TestResumeRejectsMismatchedWorkload(t *testing.T) {
	dir := t.TempDir()
	m, err := NewManager(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(m)
	cfg.MaxEvents = 2000
	e, err := sim.Prepare(cfg, testWorkload(t, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	e.Execute() //nolint:errcheck // may or may not finish under the cap
	m.Kill()
	mr, st, err := Resume(dir, 2)
	if err != nil {
		t.Skipf("no snapshot at this cap: %v", err)
	}
	if _, err := sim.PrepareResume(testConfig(mr), testWorkload(t, 2, 99), st); err == nil {
		t.Error("resume with a different workload seed succeeded; want fingerprint rejection")
	}
}
