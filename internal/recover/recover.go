// Package recover gives the simulator crash-tolerant scheduler state: a
// versioned, checksummed snapshot of the complete engine state taken
// every K scheduling periods, plus an append-only write-ahead log (WAL)
// of the decision events emitted since the last snapshot.
//
// The engine is a deterministic event loop, so recovery is replay:
// resume rebuilds the world from the workload, overlays the newest valid
// snapshot, and rolls forward — re-making every scheduling decision the
// crashed process made after the snapshot. The WAL is therefore a
// verification log rather than a redo log: each decision the roll-forward
// re-emits is compared against the record the crashed process wrote, so
// recovery locates the exact crash point and any nondeterminism
// regression surfaces as a typed DivergenceError instead of silent
// state drift. When the log is exhausted the run has provably reached
// the crash point, the Replayed event fires, and the log switches back
// to append mode for the remainder of the run.
//
// File layout in the checkpoint directory (seq is a generation counter,
// bumped on every snapshot):
//
//	wal-00000000.log        decisions from run start (before any snapshot)
//	snapshot-00000001.snap  first periodic snapshot
//	wal-00000001.log        decisions since that snapshot
//	...
//
// The two newest generations are retained; older pairs are deleted as
// snapshots rotate. Snapshot writes are atomic (temp file + rename) and
// WAL appends are flushed and fsynced at every scheduling period, so a
// kill at any event boundary leaves at most a torn final WAL line —
// which reads tolerate by construction.
package recover

import (
	"errors"
	"fmt"
)

// Snapshot format version accepted by this package.
const snapshotVersion = "v1"

// snapshotMagic starts every snapshot header line.
const snapshotMagic = "dsp-snapshot"

// ErrNoSnapshot is returned by Latest when the checkpoint directory
// holds no readable snapshot — the caller should start the run fresh.
var ErrNoSnapshot = errors.New("recover: no usable snapshot")

// FormatError reports snapshot or WAL bytes that do not parse as the
// expected format (bad header, bad length, malformed payload).
type FormatError struct {
	Path string
	Msg  string
}

func (e *FormatError) Error() string {
	if e.Path == "" {
		return "recover: format: " + e.Msg
	}
	return fmt.Sprintf("recover: %s: format: %s", e.Path, e.Msg)
}

// ChecksumError reports a snapshot whose payload does not hash to the
// checksum its header claims — the file is corrupt.
type ChecksumError struct {
	Path string
	Want string
	Got  string
}

func (e *ChecksumError) Error() string {
	return fmt.Sprintf("recover: %s: checksum mismatch: header %s, payload %s", e.Path, e.Want, e.Got)
}

// VersionError reports a snapshot written by an incompatible format
// version.
type VersionError struct {
	Path string
	Got  string
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("recover: %s: unsupported snapshot version %q (want %s)", e.Path, e.Got, snapshotVersion)
}

// DivergenceError reports a resumed run whose deterministic roll-forward
// re-made a decision differently from what the crashed process logged.
// This never happens for a faithful resume (identical config, workload
// and binary); it is the WAL catching either a mismatched resume or a
// nondeterminism bug.
type DivergenceError struct {
	// Index is the zero-based WAL record where replay diverged.
	Index int
	// Want is the record the crashed process wrote; Got is what the
	// roll-forward produced.
	Want string
	Got  string
}

func (e *DivergenceError) Error() string {
	return fmt.Sprintf("recover: replay diverged from write-ahead log at record %d: logged %q, replayed %q", e.Index, e.Want, e.Got)
}
