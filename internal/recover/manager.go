package recover

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"dsp/internal/cluster"
	"dsp/internal/sim"
	"dsp/internal/units"
)

// retainGenerations is how many snapshot/WAL pairs are kept on disk;
// older generations are deleted as snapshots rotate. Two generations
// means a crash during a snapshot write still leaves a complete older
// pair to resume from.
const retainGenerations = 2

// AuditLog is the slice of the audit stream the Manager needs: flushing
// buffered lines to the OS at snapshot time and reading the stream
// offset that goes into the snapshot (see sim.EngineState.AuditOffset).
type AuditLog interface {
	Flush() error
	Offset() int64
}

// Manager is the durability sink: attach one to sim.Config.Durability
// (and to the observer chain) and it persists a checksummed engine
// snapshot every K scheduling periods plus a write-ahead log of decision
// events between snapshots. After a crash, Resume loads the newest valid
// pair and the manager verifies the deterministic roll-forward against
// the log (see the package comment for why verification, not redo).
//
// All file I/O — snapshot encoding, WAL appends, fsyncs, rotation,
// retention pruning — happens on a background persister goroutine
// (group-commit style), so the scheduling loop only pays for capturing
// the engine state and handing off a byte buffer. The durable horizon
// trails the engine by at most the persister's queue; a crash loses only
// the un-persisted suffix, which recovery re-derives deterministically
// from the previous generation.
type Manager struct {
	sim.NopObserver

	dir    string
	everyK int

	// Peer, when non-nil, receives the Replayed event the moment a
	// resumed run's roll-forward has verified the last surviving WAL
	// record. Wire the run's observer chain here (the manager cannot be
	// its own peer: it sits inside that chain).
	Peer sim.Observer

	audit AuditLog

	// seq is the current generation: records go to wal-<seq>.log and the
	// next snapshot becomes snapshot-<seq+1>.snap.
	seq int

	verifying bool
	verify    []string
	verifyPos int
	validLen  int64

	// buf accumulates encoded WAL lines between period boundaries; the
	// period hook hands it to the persister wholesale.
	buf []byte

	p *persister

	err error
}

// NewManager starts a fresh run's durability sink on dir, snapshotting
// every everyK scheduling periods (everyK < 1 is treated as 1). The
// directory is created if needed; pre-existing checkpoint files from
// older runs are removed so Latest cannot resurrect a stale generation.
func NewManager(dir string, everyK int) (*Manager, error) {
	if everyK < 1 {
		everyK = 1
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("recover: checkpoint dir: %w", err)
	}
	if err := removeCheckpointFiles(dir); err != nil {
		return nil, err
	}
	p, err := startPersister(dir, walName(0), os.O_CREATE|os.O_TRUNC|os.O_WRONLY)
	if err != nil {
		return nil, err
	}
	return &Manager{dir: dir, everyK: everyK, p: p}, nil
}

// Resume loads the newest valid snapshot/WAL pair from dir and returns
// the engine state to overlay plus a manager in verification mode. The
// caller rebuilds the engine with sim.PrepareResume, emits
// RecoveryStarted on its observer chain, and runs Execute; the manager
// verifies every re-emitted decision against the log and switches back
// to appending once the log is exhausted. ErrNoSnapshot means nothing
// usable survives and the run should start fresh.
func Resume(dir string, everyK int) (*Manager, *sim.EngineState, error) {
	if everyK < 1 {
		everyK = 1
	}
	st, seq, err := Latest(dir)
	if err != nil {
		return nil, nil, err
	}
	records, validLen, err := readWAL(filepath.Join(dir, walName(seq)))
	if err != nil {
		return nil, nil, err
	}
	m := &Manager{
		dir:       dir,
		everyK:    everyK,
		seq:       seq,
		verifying: true,
		verify:    records,
		validLen:  validLen,
	}
	return m, st, nil
}

// Latest returns the engine state of the newest readable snapshot in
// dir and its generation number. Unreadable or corrupt snapshots are
// skipped (an older valid one still recovers the run); ErrNoSnapshot
// means none parsed.
func Latest(dir string) (*sim.EngineState, int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, 0, fmt.Errorf("recover: checkpoint dir: %w", err)
	}
	var seqs []int
	for _, e := range entries {
		if s := seqOfSnap(e.Name()); s >= 0 {
			seqs = append(seqs, s)
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(seqs)))
	for _, s := range seqs {
		st, err := ReadSnapshot(filepath.Join(dir, snapName(s)))
		if err != nil {
			continue // torn or corrupt: fall back to the previous generation
		}
		return st, s, nil
	}
	return nil, 0, ErrNoSnapshot
}

// AttachAudit connects the audit stream whose offset snapshots should
// record (optional; without it snapshots carry AuditOffset -1).
func (m *Manager) AttachAudit(a AuditLog) { m.audit = a }

// Err returns the first persistence or verification error the manager
// latched (also surfaced through the engine as an Execute error).
func (m *Manager) Err() error { return m.err }

// ReplayTarget returns how many WAL records a resumed manager has to
// verify before the run reaches the crash point (0 on fresh runs).
func (m *Manager) ReplayTarget() int { return len(m.verify) }

// SnapshotDue implements sim.DurabilitySink.
func (m *Manager) SnapshotDue(period int) bool {
	return period%m.everyK == 0
}

// OnPeriod implements sim.DurabilitySink: hand the period's buffered
// records to the persister (which appends and fsyncs them) and capture a
// snapshot every K-th period. During a resumed run's roll-forward it
// only tracks verification progress; persistence restarts once the run
// is past the crash point.
func (m *Manager) OnPeriod(e *sim.Engine, period int, now units.Time) error {
	if m.err != nil {
		return m.err
	}
	if m.verifying {
		if m.verifyPos < len(m.verify) {
			if m.SnapshotDue(period) {
				// The log can never span a completed snapshot boundary:
				// rotation happens at the same tick that writes the
				// snapshot. Records beyond one are corruption.
				m.err = &FormatError{Path: filepath.Join(m.dir, walName(m.seq)), Msg: "write-ahead log extends past a snapshot boundary"}
				return m.err
			}
			return nil
		}
		if err := m.finishReplay(now); err != nil {
			return err
		}
	}
	if err := m.p.errState(); err != nil {
		m.err = err
		return m.err
	}
	if !m.SnapshotDue(period) {
		if len(m.buf) > 0 {
			m.p.send(persistReq{chunk: m.takeBuf(), fsync: true})
		}
		return nil
	}
	return m.snapshot(e)
}

// OnInterrupt implements sim.DurabilitySink: a graceful shutdown takes
// one final snapshot at the interrupt boundary and waits for the
// persister to make it durable, so a later resume loses no work at all.
func (m *Manager) OnInterrupt(e *sim.Engine, now units.Time) error {
	if m.err != nil {
		return m.err
	}
	if m.verifying {
		// Interrupted before the roll-forward reached the crash point:
		// the on-disk generation already covers this prefix; nothing to
		// write.
		return nil
	}
	if err := m.snapshot(e); err != nil {
		return err
	}
	if err := m.p.barrier(); err != nil {
		m.err = err
	}
	return m.err
}

// snapshot flushes the audit stream, captures the engine state, and
// hands the persister the buffered WAL tail plus the snapshot: it
// appends the tail to the old generation's log, writes the snapshot
// atomically, rotates the WAL and prunes old generations — all off the
// scheduling hot path.
func (m *Manager) snapshot(e *sim.Engine) error {
	offset := int64(-1)
	if m.audit != nil {
		if err := m.audit.Flush(); err != nil {
			m.err = fmt.Errorf("recover: flush audit: %w", err)
			return m.err
		}
		offset = m.audit.Offset()
	}
	st, err := e.CaptureState()
	if err != nil {
		m.err = err
		return m.err
	}
	st.AuditOffset = offset
	m.seq++
	m.p.send(persistReq{chunk: m.takeBuf(), snap: st, seq: m.seq})
	return nil
}

// finishReplay switches a resumed manager from verification back to
// appending: the WAL is truncated to its valid prefix (dropping any
// torn tail), the persister starts on it in append mode, and the
// Replayed event is delivered to the peer observer.
func (m *Manager) finishReplay(now units.Time) error {
	m.verifying = false
	path := filepath.Join(m.dir, walName(m.seq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		m.err = fmt.Errorf("recover: reopen wal: %w", err)
		return m.err
	}
	if err := f.Truncate(m.validLen); err != nil {
		f.Close()
		m.err = fmt.Errorf("recover: truncate wal: %w", err)
		return m.err
	}
	if err := f.Close(); err != nil {
		m.err = fmt.Errorf("recover: truncate wal: %w", err)
		return m.err
	}
	p, err := startPersister(m.dir, walName(m.seq), os.O_WRONLY|os.O_APPEND)
	if err != nil {
		m.err = err
		return m.err
	}
	m.p = p
	if m.Peer != nil {
		m.Peer.Replayed(now, len(m.verify))
	}
	return nil
}

// record routes one decision event: verified against the log during
// roll-forward, buffered for the persister otherwise.
func (m *Manager) record(now units.Time, payload string) {
	if m.err != nil {
		return
	}
	if m.verifying {
		if m.verifyPos < len(m.verify) {
			if m.verify[m.verifyPos] != payload {
				m.err = &DivergenceError{Index: m.verifyPos, Want: m.verify[m.verifyPos], Got: payload}
				return
			}
			m.verifyPos++
			if m.verifyPos == len(m.verify) {
				m.err = m.finishReplay(now)
			}
			return
		}
		// Empty log (crash immediately after a snapshot): nothing to
		// verify, switch straight to appending this record.
		if err := m.finishReplay(now); err != nil {
			return
		}
	}
	m.buf = appendWALRecord(m.buf, payload)
}

func (m *Manager) takeBuf() []byte {
	b := m.buf
	m.buf = nil
	return b
}

// Close flushes the remaining buffered records, drains the persister and
// closes the WAL (call when the run finishes).
func (m *Manager) Close() error {
	if m.p == nil {
		return m.err
	}
	if len(m.buf) > 0 {
		m.p.send(persistReq{chunk: m.takeBuf()})
	}
	if err := m.p.shutdown(false); err != nil && m.err == nil {
		m.err = err
	}
	m.p = nil
	return m.err
}

// Kill abandons the manager the way a process kill would: buffered
// records are dropped, queued persister work is discarded, and the WAL
// is closed without a final flush — only bytes already handed to the OS
// survive. Crash harnesses use it to stop the background goroutine at a
// deterministic request boundary before reading the directory back;
// real crashes just die.
func (m *Manager) Kill() {
	m.buf = nil
	if m.p != nil {
		m.p.shutdown(true) //nolint:errcheck // the "process" is dead; nobody is listening
		m.p = nil
	}
}

// persistReq is one unit of background I/O: append chunk to the current
// WAL (fsyncing when asked), then — when snap is set — write the
// snapshot for generation seq, rotate the WAL and prune old generations.
type persistReq struct {
	chunk []byte
	fsync bool
	snap  *sim.EngineState
	seq   int
	// sync, when non-nil, is closed once this request (and everything
	// queued before it) has been handled — a drain barrier.
	sync chan struct{}
}

// persister owns the checkpoint directory's file handles and performs
// all durable writes in order on its own goroutine. The first error
// latches; later requests are ignored (the manager surfaces the error
// at the next period boundary).
type persister struct {
	dir  string
	ch   chan persistReq
	done chan struct{}

	mu     sync.Mutex
	err    error
	killed bool

	walF *os.File // owned by the run goroutine after start
}

func startPersister(dir, wal string, flags int) (*persister, error) {
	f, err := os.OpenFile(filepath.Join(dir, wal), flags, 0o644)
	if err != nil {
		return nil, fmt.Errorf("recover: open wal: %w", err)
	}
	// The queue is deep enough that a single slow fsync (journal-commit
	// latency spikes are routine) does not stall the scheduling loop;
	// sustained overproduction still backpressures once it fills.
	p := &persister{dir: dir, ch: make(chan persistReq, 512), done: make(chan struct{}), walF: f}
	go p.run()
	return p, nil
}

func (p *persister) run() {
	defer close(p.done)
	for req := range p.ch {
		if !p.dead() && p.errState() == nil {
			if err := p.handle(req); err != nil {
				p.fail(err)
			}
		}
		if req.sync != nil {
			close(req.sync)
		}
	}
	if p.walF == nil {
		return
	}
	if !p.dead() && p.errState() == nil {
		if err := p.walF.Sync(); err != nil {
			p.fail(fmt.Errorf("recover: sync wal: %w", err))
		}
	}
	if err := p.walF.Close(); err != nil {
		p.fail(fmt.Errorf("recover: close wal: %w", err))
	}
}

func (p *persister) handle(req persistReq) error {
	if len(req.chunk) > 0 {
		if _, err := p.walF.Write(req.chunk); err != nil {
			return fmt.Errorf("recover: append wal: %w", err)
		}
	}
	if req.fsync && req.snap == nil {
		if err := p.walF.Sync(); err != nil {
			return fmt.Errorf("recover: sync wal: %w", err)
		}
	}
	if req.snap == nil {
		return nil
	}
	if err := WriteSnapshot(filepath.Join(p.dir, snapName(req.seq)), req.snap); err != nil {
		return err
	}
	// Rotate: seal the old generation's log, open the new one.
	if err := p.walF.Sync(); err != nil {
		return fmt.Errorf("recover: sync wal: %w", err)
	}
	if err := p.walF.Close(); err != nil {
		p.walF = nil
		return fmt.Errorf("recover: close wal: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(p.dir, walName(req.seq)), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		p.walF = nil
		return fmt.Errorf("recover: open wal: %w", err)
	}
	p.walF = f
	prune(p.dir, req.seq)
	return nil
}

// barrier blocks until everything queued so far is durable.
func (p *persister) barrier() error {
	req := persistReq{fsync: true, sync: make(chan struct{})}
	p.send(req)
	<-req.sync
	return p.errState()
}

// shutdown stops the goroutine. With kill set, queued work is discarded
// and the WAL closed without flushing; otherwise everything drains and
// the WAL is fsynced shut.
func (p *persister) shutdown(kill bool) error {
	if kill {
		p.mu.Lock()
		p.killed = true
		p.mu.Unlock()
	}
	close(p.ch)
	<-p.done
	return p.errState()
}

func (p *persister) send(req persistReq) { p.ch <- req }

func (p *persister) fail(err error) {
	p.mu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.mu.Unlock()
}

func (p *persister) errState() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

func (p *persister) dead() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.killed
}

// prune deletes generations older than the newest retainGenerations
// snapshots (plus their WALs). Best-effort: an undeletable file only
// wastes disk.
func prune(dir string, seq int) {
	for s := seq - retainGenerations; s >= 0; s-- {
		snap := filepath.Join(dir, snapName(s))
		wal := filepath.Join(dir, walName(s))
		_, serr := os.Stat(snap)
		_, werr := os.Stat(wal)
		if os.IsNotExist(serr) && os.IsNotExist(werr) {
			return // everything older is already gone
		}
		os.Remove(snap)
		os.Remove(wal)
	}
}

// removeCheckpointFiles clears snapshot/WAL files from dir so a fresh
// run starts with an empty generation history.
func removeCheckpointFiles(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("recover: checkpoint dir: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if seqOfSnap(name) >= 0 || (len(name) > 8 && name[:4] == "wal-" && filepath.Ext(name) == ".log") {
			if err := os.Remove(filepath.Join(dir, name)); err != nil {
				return fmt.Errorf("recover: clear checkpoint dir: %w", err)
			}
		}
	}
	return nil
}

// Decision-event observer methods: the WAL record taxonomy. One record
// per scheduling decision or externally visible task/job outcome —
// dispatches, preemptions, completions, retries, terminal failures,
// evictions and sheds. Payloads are deterministic single-line strings;
// two runs of the same world produce identical sequences, which is
// exactly what verification checks.

// TaskStarted implements sim.Observer.
func (m *Manager) TaskStarted(now units.Time, t *sim.TaskState, node cluster.NodeID) {
	m.record(now, fmt.Sprintf("start t=%d task=%s node=%d", int64(now), t.Key(), int(node)))
}

// TaskPreempted implements sim.Observer.
func (m *Manager) TaskPreempted(now units.Time, victim, starter *sim.TaskState, node cluster.NodeID) {
	skey := "-"
	if starter != nil {
		skey = starter.Key().String()
	}
	m.record(now, fmt.Sprintf("preempt t=%d victim=%s starter=%s node=%d", int64(now), victim.Key(), skey, int(node)))
}

// TaskCompleted implements sim.Observer.
func (m *Manager) TaskCompleted(now units.Time, t *sim.TaskState, node cluster.NodeID) {
	m.record(now, fmt.Sprintf("complete t=%d task=%s node=%d", int64(now), t.Key(), int(node)))
}

// JobCompleted implements sim.Observer.
func (m *Manager) JobCompleted(now units.Time, j *sim.JobState) {
	m.record(now, fmt.Sprintf("job-complete t=%d job=%d", int64(now), int(j.Dag.ID)))
}

// TaskRetried implements sim.Observer.
func (m *Manager) TaskRetried(now units.Time, t *sim.TaskState, node cluster.NodeID, attempt int, reason sim.RetryReason) {
	m.record(now, fmt.Sprintf("retry t=%d task=%s node=%d attempt=%d reason=%s", int64(now), t.Key(), int(node), attempt, reason))
}

// TaskFailedTerminally implements sim.Observer.
func (m *Manager) TaskFailedTerminally(now units.Time, t *sim.TaskState, node cluster.NodeID) {
	m.record(now, fmt.Sprintf("terminal t=%d task=%s node=%d", int64(now), t.Key(), int(node)))
}

// TaskEvicted implements sim.Observer.
func (m *Manager) TaskEvicted(now units.Time, t *sim.TaskState, node cluster.NodeID) {
	m.record(now, fmt.Sprintf("evict t=%d task=%s node=%d", int64(now), t.Key(), int(node)))
}

// JobShed implements sim.Observer.
func (m *Manager) JobShed(now units.Time, j *sim.JobState, reason sim.ShedReason) {
	m.record(now, fmt.Sprintf("shed t=%d job=%d reason=%s", int64(now), int(j.Dag.ID), reason))
}

// JobCancelled implements sim.Observer.
func (m *Manager) JobCancelled(now units.Time, j *sim.JobState) {
	m.record(now, fmt.Sprintf("cancel t=%d job=%d", int64(now), int(j.ID())))
}
