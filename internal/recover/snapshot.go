package recover

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"dsp/internal/sim"
)

// EncodeSnapshot serializes an engine state as a self-validating blob:
// a header line "dsp-snapshot v1 <sha256 hex> <payload length>\n"
// followed by the JSON payload. The checksum covers the payload, so any
// torn or bit-flipped write is detected on read.
func EncodeSnapshot(st *sim.EngineState) ([]byte, error) {
	payload, err := json.Marshal(st)
	if err != nil {
		return nil, fmt.Errorf("recover: encode snapshot: %w", err)
	}
	sum := sha256.Sum256(payload)
	var b bytes.Buffer
	fmt.Fprintf(&b, "%s %s %s %d\n", snapshotMagic, snapshotVersion, hex.EncodeToString(sum[:]), len(payload))
	b.Write(payload)
	return b.Bytes(), nil
}

// DecodeSnapshot parses and validates a snapshot blob. Corrupt,
// truncated, or version-skewed bytes are rejected with a typed error
// (FormatError, ChecksumError, VersionError) — never a panic, never a
// silently-wrong state.
func DecodeSnapshot(b []byte) (*sim.EngineState, error) {
	nl := bytes.IndexByte(b, '\n')
	if nl < 0 {
		return nil, &FormatError{Msg: "missing header line"}
	}
	fields := bytes.Fields(b[:nl])
	if len(fields) != 4 || string(fields[0]) != snapshotMagic {
		return nil, &FormatError{Msg: "malformed header"}
	}
	if v := string(fields[1]); v != snapshotVersion {
		return nil, &VersionError{Got: v}
	}
	wantSum := string(fields[2])
	var plen int
	if _, err := fmt.Sscanf(string(fields[3]), "%d", &plen); err != nil || plen < 0 {
		return nil, &FormatError{Msg: "bad payload length"}
	}
	payload := b[nl+1:]
	if len(payload) != plen {
		return nil, &FormatError{Msg: fmt.Sprintf("payload is %d bytes, header says %d", len(payload), plen)}
	}
	sum := sha256.Sum256(payload)
	if got := hex.EncodeToString(sum[:]); got != wantSum {
		return nil, &ChecksumError{Want: wantSum, Got: got}
	}
	var st sim.EngineState
	dec := json.NewDecoder(bytes.NewReader(payload))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&st); err != nil {
		return nil, &FormatError{Msg: "payload: " + err.Error()}
	}
	return &st, nil
}

// WriteSnapshot atomically persists a snapshot: the blob is written to a
// temp file in the same directory, fsynced, and renamed into place, so
// a crash mid-write can never leave a half-written file under the final
// name.
func WriteSnapshot(path string, st *sim.EngineState) error {
	b, err := EncodeSnapshot(st)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".snap-*")
	if err != nil {
		return fmt.Errorf("recover: write snapshot: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if _, err := tmp.Write(b); err != nil {
		return cleanup(fmt.Errorf("recover: write snapshot: %w", err))
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(fmt.Errorf("recover: sync snapshot: %w", err))
	}
	if err := tmp.Close(); err != nil {
		return cleanup(fmt.Errorf("recover: close snapshot: %w", err))
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("recover: publish snapshot: %w", err)
	}
	return nil
}

// ReadSnapshot loads and validates one snapshot file, annotating typed
// errors with the path.
func ReadSnapshot(path string) (*sim.EngineState, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("recover: read snapshot: %w", err)
	}
	st, err := DecodeSnapshot(b)
	if err != nil {
		switch e := err.(type) {
		case *FormatError:
			e.Path = path
		case *ChecksumError:
			e.Path = path
		case *VersionError:
			e.Path = path
		}
		return nil, err
	}
	return st, nil
}
