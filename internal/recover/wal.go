package recover

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"os"
	"strings"
)

// WAL line format: "<crc32 hex, 8 digits> <payload>\n". The CRC covers
// the payload only; a torn final line (no newline, or a partial/garbled
// record from a mid-write kill) fails its check and is dropped. A bad
// record with valid records after it, by contrast, is corruption — a
// kill cannot produce that — and is rejected with a typed error.

// appendWALRecord formats one record line.
func appendWALRecord(dst []byte, payload string) []byte {
	dst = fmt.Appendf(dst, "%08x %s\n", crc32.ChecksumIEEE([]byte(payload)), payload)
	return dst
}

// parseWALLine validates one complete line (without the trailing
// newline) and returns its payload.
func parseWALLine(line []byte) (string, bool) {
	if len(line) < 9 || line[8] != ' ' {
		return "", false
	}
	var sum uint32
	if _, err := fmt.Sscanf(string(line[:8]), "%08x", &sum); err != nil {
		return "", false
	}
	payload := line[9:]
	if crc32.ChecksumIEEE(payload) != sum {
		return "", false
	}
	if bytes.IndexByte(payload, '\n') >= 0 {
		return "", false
	}
	return string(payload), true
}

// readWAL parses a WAL file into its records and reports the byte
// length of the valid prefix (the offset a resumed writer truncates to
// before appending). A missing file is an empty log. The final line is
// allowed to be torn — dropped silently — but an invalid line followed
// by a valid one means corruption and yields a FormatError.
func readWAL(path string) (records []string, validLen int64, err error) {
	b, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, nil
		}
		return nil, 0, fmt.Errorf("recover: read wal: %w", err)
	}
	off := int64(0)
	badAt := int64(-1) // offset of first invalid line, -1 if none
	for len(b) > 0 {
		nl := bytes.IndexByte(b, '\n')
		if nl < 0 {
			// No terminator: a torn tail. Valid only as the very last
			// thing in the file, which it is by construction here.
			if badAt < 0 {
				badAt = off
			}
			break
		}
		payload, ok := parseWALLine(b[:nl])
		if !ok {
			if badAt >= 0 {
				// Two separate bad lines cannot come from one torn write.
				return nil, 0, &FormatError{Path: path, Msg: fmt.Sprintf("corrupt record at offset %d", badAt)}
			}
			badAt = off
		} else {
			if badAt >= 0 {
				// A valid record after an invalid one: the invalid line was
				// not a torn tail but mid-file corruption.
				return nil, 0, &FormatError{Path: path, Msg: fmt.Sprintf("corrupt record at offset %d followed by valid records", badAt)}
			}
			records = append(records, payload)
			validLen = off + int64(nl) + 1
		}
		off += int64(nl) + 1
		b = b[nl+1:]
	}
	return records, validLen, nil
}

// walName and snapName build the generation-numbered file names.
func walName(seq int) string  { return fmt.Sprintf("wal-%08d.log", seq) }
func snapName(seq int) string { return fmt.Sprintf("snapshot-%08d.snap", seq) }

// seqOfSnap extracts the generation number from a snapshot file name
// (-1 when the name does not match).
func seqOfSnap(name string) int {
	if !strings.HasPrefix(name, "snapshot-") || !strings.HasSuffix(name, ".snap") {
		return -1
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(name, "snapshot-"), ".snap")
	if len(mid) != 8 {
		return -1
	}
	seq := 0
	for _, c := range mid {
		if c < '0' || c > '9' {
			return -1
		}
		seq = seq*10 + int(c-'0')
	}
	return seq
}
