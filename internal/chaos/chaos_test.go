package chaos

import (
	"bytes"
	"reflect"
	"testing"

	"dsp/internal/cluster"
	"dsp/internal/obs"
	"dsp/internal/sched"
	"dsp/internal/sim"
	"dsp/internal/trace"
	"dsp/internal/units"
)

func TestPlanDeterministic(t *testing.T) {
	s := DefaultSpec(50, 42)
	a, err := s.Plan()
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("same spec produced different plans")
	}
	c, err := DefaultSpec(50, 43).Plan()
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical plans")
	}
}

func TestPlanShape(t *testing.T) {
	s := DefaultSpec(50, 7)
	plan, err := s.Plan()
	if err != nil {
		t.Fatal(err)
	}
	// 10% of 50 nodes are flaky; over a 4 h horizon with a 25 min MTBF
	// each must crash at least once in expectation — assert the plan is
	// materially non-empty rather than pinning draw-dependent counts.
	if len(plan.Failures) == 0 {
		t.Error("default spec generated no failures")
	}
	if len(plan.Stragglers) == 0 {
		t.Error("default spec generated no stragglers")
	}
	if plan.Tasks == nil || plan.Tasks.Rate != s.TaskFaultRate {
		t.Errorf("task faults not attached: %+v", plan.Tasks)
	}
	nodes := map[cluster.NodeID]bool{}
	for _, f := range plan.Failures {
		nodes[f.Node] = true
		if f.At < 0 || f.At >= s.Horizon {
			t.Errorf("failure at %v outside [0, horizon)", f.At)
		}
	}
	for _, st := range plan.Stragglers {
		nodes[st.Node] = true
	}
	if len(nodes) != 5 {
		t.Errorf("faults touch %d nodes, want 5 (10%% of 50)", len(nodes))
	}
}

func TestFaultySetAtLeastOne(t *testing.T) {
	s := DefaultSpec(3, 1)
	s.FaultyFraction = 0.01 // rounds to zero — still one node is flaky
	plan, err := s.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Failures) == 0 {
		t.Error("tiny positive fraction generated no failures")
	}
}

func TestZeroFractionMeansNoNodeFaults(t *testing.T) {
	s := DefaultSpec(10, 1)
	s.FaultyFraction = 0
	plan, err := s.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Failures) != 0 || len(plan.Stragglers) != 0 {
		t.Errorf("zero fraction generated %d failures, %d stragglers",
			len(plan.Failures), len(plan.Stragglers))
	}
	if plan.Tasks == nil {
		t.Error("task faults should survive a zero node fraction")
	}
}

func TestSpecValidateRejects(t *testing.T) {
	base := DefaultSpec(10, 1)
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"zero nodes", func(s *Spec) { s.Nodes = 0 }},
		{"zero horizon", func(s *Spec) { s.Horizon = 0 }},
		{"fraction above 1", func(s *Spec) { s.FaultyFraction = 1.5 }},
		{"negative fraction", func(s *Spec) { s.FaultyFraction = -0.1 }},
		{"zero MTBF with flaky nodes", func(s *Spec) { s.MTBF = 0 }},
		{"negative MTTR", func(s *Spec) { s.MTTR = -units.Second }},
		{"zero straggler duration", func(s *Spec) { s.StragglerDuration = 0 }},
		{"zero straggler factor", func(s *Spec) { s.StragglerFactorLo = 0 }},
		{"inverted factor range", func(s *Spec) { s.StragglerFactorHi = s.StragglerFactorLo / 2 }},
		{"task rate above 1", func(s *Spec) { s.TaskFaultRate = 2 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := base
			tc.mutate(&s)
			if err := s.Validate(); err == nil {
				t.Error("Validate accepted an invalid spec")
			}
			if _, err := s.Plan(); err == nil {
				t.Error("Plan expanded an invalid spec")
			}
		})
	}
}

// chaosWorkload is a small deterministic workload for end-to-end runs.
func chaosWorkload(t *testing.T, jobs int, seed int64) *trace.Workload {
	t.Helper()
	spec := trace.DefaultSpec(jobs, seed)
	spec.TaskScale = 0.02
	spec.MeanTaskSizeMI /= 0.02
	w, err := trace.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestAuditByteIdenticalAcrossRuns is the reproducibility contract for
// the whole stochastic pipeline: the same seed and configuration must
// yield byte-identical decision audits — chaos expansion, fault
// injection, retries, speculation and all.
func TestAuditByteIdenticalAcrossRuns(t *testing.T) {
	run := func() []byte {
		cs := DefaultSpec(10, 7)
		cs.Horizon = 30 * units.Minute
		plan, err := cs.Plan()
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		aw := obs.NewAuditWriter(&buf)
		aw.BeginRun("chaos-determinism")
		_, err = sim.Run(sim.Config{
			Cluster:     cluster.RealCluster(10),
			Scheduler:   sched.NewDSP(),
			Checkpoint:  cluster.DefaultCheckpoint(),
			Period:      units.Minute,
			Epoch:       10 * units.Second,
			Faults:      plan,
			Speculation: &sim.Speculation{},
			Observer:    aw,
		}, chaosWorkload(t, 3, 99))
		if err != nil {
			t.Fatal(err)
		}
		if err := aw.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a := run()
	b := run()
	if len(a) == 0 {
		t.Fatal("audit log empty — observer not wired")
	}
	if !bytes.Equal(a, b) {
		t.Error("identical seeded runs produced different audit logs")
	}
}
