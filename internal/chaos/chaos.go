// Package chaos expands compact stochastic fault models — MTBF/MTTR
// crash/recovery processes, straggler arrival distributions, transient
// task-failure rates — into concrete sim.FaultPlans. The expansion is
// fully deterministic: the same Spec (including its Seed) always yields
// the same plan, so degradation experiments are reproducible and the
// injected faults travel through exactly the same engine paths as
// hand-scripted ones.
//
// Each flaky node gets its own derived random stream (split in node
// order), so adding or removing nodes from the faulty set does not
// perturb the fault history of the others.
package chaos

import (
	"fmt"
	"math"
	"sort"

	"dsp/internal/cluster"
	"dsp/internal/rng"
	"dsp/internal/sim"
	"dsp/internal/units"
)

// Spec is a compact stochastic fault model for one run.
type Spec struct {
	// Nodes is the cluster size the plan targets.
	Nodes int
	// Seed drives every draw.
	Seed int64
	// Horizon bounds generated fault times: crash and straggler windows
	// start before it (events beyond the workload's makespan drain
	// harmlessly).
	Horizon units.Time
	// FaultyFraction of the nodes (rounded to nearest, at least one when
	// positive) are flaky: they crash and straggle; the rest stay clean.
	FaultyFraction float64
	// MTBF is the mean up-time between crashes of a flaky node, and MTTR
	// the mean repair time. Both exponential.
	MTBF units.Time
	MTTR units.Time
	// StragglerEvery is the mean gap between straggler windows on a
	// flaky node (0 disables stragglers); StragglerDuration is the mean
	// window length; the slowdown factor is uniform in
	// [StragglerFactorLo, StragglerFactorHi).
	StragglerEvery    units.Time
	StragglerDuration units.Time
	StragglerFactorLo float64
	StragglerFactorHi float64
	// TaskFaultRate is the per-attempt transient task-failure
	// probability applied cluster-wide (0 disables).
	TaskFaultRate float64
}

// DefaultSpec returns the resilience-sweep defaults: flaky nodes crash
// occasionally (exercising eviction, retry and recovery paths) but spend
// much of their time in severe straggler windows, crawling at 2–15%
// speed. The mix is deliberately straggler-heavy: downtime is a capacity
// loss no scheduler can win back, while straggler-induced tail latency
// is exactly what speculation and fault-aware placement recover — the
// degradation mode the paper's Section VI discussion targets.
func DefaultSpec(nodes int, seed int64) Spec {
	return Spec{
		Nodes:             nodes,
		Seed:              seed,
		Horizon:           4 * units.Hour,
		FaultyFraction:    0.1,
		MTBF:              2 * units.Hour,
		MTTR:              3 * units.Minute,
		StragglerEvery:    15 * units.Minute,
		StragglerDuration: 10 * units.Minute,
		StragglerFactorLo: 0.02,
		StragglerFactorHi: 0.15,
		TaskFaultRate:     0.01,
	}
}

// Validate rejects specs the generator cannot expand meaningfully.
func (s Spec) Validate() error {
	if s.Nodes <= 0 {
		return fmt.Errorf("chaos: spec needs a positive node count, got %d", s.Nodes)
	}
	if s.Horizon <= 0 {
		return fmt.Errorf("chaos: spec needs a positive horizon, got %v", s.Horizon)
	}
	if math.IsNaN(s.FaultyFraction) || s.FaultyFraction < 0 || s.FaultyFraction > 1 {
		return fmt.Errorf("chaos: faulty fraction %v outside [0, 1]", s.FaultyFraction)
	}
	if s.FaultyFraction > 0 && s.MTBF <= 0 {
		return fmt.Errorf("chaos: flaky nodes need a positive MTBF, got %v", s.MTBF)
	}
	if s.MTTR < 0 {
		return fmt.Errorf("chaos: negative MTTR %v", s.MTTR)
	}
	if s.StragglerEvery > 0 {
		if s.StragglerDuration <= 0 {
			return fmt.Errorf("chaos: stragglers need a positive mean duration, got %v", s.StragglerDuration)
		}
		if !(s.StragglerFactorLo > 0) || s.StragglerFactorHi < s.StragglerFactorLo {
			return fmt.Errorf("chaos: straggler factor range [%v, %v) invalid",
				s.StragglerFactorLo, s.StragglerFactorHi)
		}
	}
	if math.IsNaN(s.TaskFaultRate) || s.TaskFaultRate < 0 || s.TaskFaultRate > 1 {
		return fmt.Errorf("chaos: task-fault rate %v outside [0, 1]", s.TaskFaultRate)
	}
	return nil
}

// Plan expands the spec into a concrete, validated FaultPlan.
func (s Spec) Plan() (*sim.FaultPlan, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	plan := &sim.FaultPlan{}
	g := rng.New(s.Seed)
	faulty := s.faultySet(g)
	for _, n := range faulty {
		ng := g.Split(int64(n) + 1)
		s.genCrashes(plan, n, ng)
		s.genStragglers(plan, n, ng)
	}
	if s.TaskFaultRate > 0 {
		plan.Tasks = &sim.TaskFaults{Rate: s.TaskFaultRate, Seed: s.Seed ^ 0x5DEECE66D}
	}
	if err := plan.Validate(s.Nodes); err != nil {
		return nil, fmt.Errorf("chaos: generated plan invalid: %w", err)
	}
	return plan, nil
}

// faultySet picks round(FaultyFraction×Nodes) distinct nodes, at least
// one when the fraction is positive, returned in ascending order so the
// per-node Split order is stable.
func (s Spec) faultySet(g *rng.RNG) []int {
	count := int(s.FaultyFraction*float64(s.Nodes) + 0.5)
	if count == 0 && s.FaultyFraction > 0 {
		count = 1
	}
	if count > s.Nodes {
		count = s.Nodes
	}
	perm := g.Perm(s.Nodes)
	faulty := append([]int(nil), perm[:count]...)
	sort.Ints(faulty)
	return faulty
}

// genCrashes emits a renewal process of down-windows: up for Exp(MTBF),
// down for Exp(MTTR) (min 1 s so recovery is a distinct instant), repeat
// until the horizon. Windows are sequential by construction, so the plan
// validator's overlap check holds.
func (s Spec) genCrashes(plan *sim.FaultPlan, node int, ng *rng.RNG) {
	t := units.FromSeconds(ng.Exp(s.MTBF.Seconds()))
	for t < s.Horizon {
		down := units.FromSeconds(ng.Exp(s.MTTR.Seconds()))
		if down < units.Second {
			down = units.Second
		}
		plan.Failures = append(plan.Failures, sim.NodeFailure{
			Node: cluster.NodeID(node), At: t, RecoverAfter: down,
		})
		t += down + units.FromSeconds(ng.Exp(s.MTBF.Seconds()))
	}
}

// genStragglers emits non-overlapping slowdown windows: gap of
// Exp(StragglerEvery), then a window of Exp(StragglerDuration) (min 1 s)
// at a uniform factor.
func (s Spec) genStragglers(plan *sim.FaultPlan, node int, ng *rng.RNG) {
	if s.StragglerEvery <= 0 {
		return
	}
	t := units.FromSeconds(ng.Exp(s.StragglerEvery.Seconds()))
	for t < s.Horizon {
		dur := units.FromSeconds(ng.Exp(s.StragglerDuration.Seconds()))
		if dur < units.Second {
			dur = units.Second
		}
		factor := ng.Uniform(s.StragglerFactorLo, s.StragglerFactorHi)
		plan.Stragglers = append(plan.Stragglers, sim.Straggler{
			Node: cluster.NodeID(node), At: t, Factor: factor, Duration: dur,
		})
		t += dur + units.FromSeconds(ng.Exp(s.StragglerEvery.Seconds()))
	}
}
