package prof

import (
	"fmt"
	"sort"
	"strings"
)

// PhaseStat is one phase's accumulated stats in a Snapshot: occurrence
// count, exclusive total and max (nanoseconds), and the log2 histogram
// (see NumBuckets for the bucket layout).
type PhaseStat struct {
	Phase   string
	Count   int64
	TotalNS int64
	MaxNS   int64
	Buckets [NumBuckets]int64
}

// Quantile estimates the q-th quantile (0 < q ≤ 1) of the phase's
// occurrence durations from the log2 histogram, in nanoseconds. The
// estimate is the upper edge of the bucket holding the target rank,
// clamped to the exact observed max — pessimistic by at most 2×, which
// is the resolution a log2 histogram buys. Returns 0 for an empty phase.
func (s *PhaseStat) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	rank := int64(q * float64(s.Count))
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum int64
	for b := 0; b < NumBuckets; b++ {
		cum += s.Buckets[b]
		if cum >= rank {
			var hi int64
			if b > 0 {
				hi = int64(1)<<uint(b) - 1
			}
			if hi > s.MaxNS {
				hi = s.MaxNS
			}
			return hi
		}
	}
	return s.MaxNS
}

// Snapshot is a point-in-time copy of a Timer's per-phase stats,
// indexed by Phase.
type Snapshot [NumPhases]PhaseStat

// TotalNS sums the exclusive totals of all phases — the instrumented
// wall time (phases tile it by construction).
func (s *Snapshot) TotalNS() int64 {
	var total int64
	for p := range s {
		total += s[p].TotalNS
	}
	return total
}

// Breakdown renders the snapshot's nonzero phases as the serializable
// per-phase records the dsp-bench-sweep/v2 schema carries, ordered by
// descending total (blame order).
func (s *Snapshot) Breakdown() []PhaseBreakdown {
	var out []PhaseBreakdown
	for p := range s {
		st := &s[p]
		if st.Count == 0 {
			continue
		}
		out = append(out, PhaseBreakdown{
			Phase:   st.Phase,
			Count:   st.Count,
			TotalUS: float64(st.TotalNS) / 1e3,
			MaxUS:   float64(st.MaxNS) / 1e3,
			P50US:   float64(st.Quantile(0.50)) / 1e3,
			P95US:   float64(st.Quantile(0.95)) / 1e3,
			P99US:   float64(st.Quantile(0.99)) / 1e3,
		})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].TotalUS > out[j].TotalUS })
	return out
}

// PhaseBreakdown is one phase's serialized stats in a
// dsp-bench-sweep/v2 report (microseconds; see PERF.md for the schema).
type PhaseBreakdown struct {
	Phase   string  `json:"phase"`
	Count   int64   `json:"count"`
	TotalUS float64 `json:"total_us"`
	MaxUS   float64 `json:"max_us"`
	P50US   float64 `json:"p50_us"`
	P95US   float64 `json:"p95_us"`
	P99US   float64 `json:"p99_us"`
}

// Table renders breakdowns as an aligned text table for dspsim/dspbench
// output: one row per phase in the given order, with each phase's share
// of the summed total.
func Table(rows []PhaseBreakdown) string {
	var b strings.Builder
	var total float64
	for _, r := range rows {
		total += r.TotalUS
	}
	fmt.Fprintf(&b, "%-14s %10s %12s %12s %12s %12s %12s %7s\n",
		"phase", "count", "total", "p50", "p95", "p99", "max", "share")
	for _, r := range rows {
		share := 0.0
		if total > 0 {
			share = 100 * r.TotalUS / total
		}
		fmt.Fprintf(&b, "%-14s %10d %12s %12s %12s %12s %12s %6.1f%%\n",
			r.Phase, r.Count, fmtUS(r.TotalUS), fmtUS(r.P50US), fmtUS(r.P95US),
			fmtUS(r.P99US), fmtUS(r.MaxUS), share)
	}
	return b.String()
}

// fmtUS renders a microsecond quantity with a human unit.
func fmtUS(us float64) string {
	switch {
	case us >= 1e6:
		return fmt.Sprintf("%.2fs", us/1e6)
	case us >= 1e3:
		return fmt.Sprintf("%.2fms", us/1e3)
	default:
		return fmt.Sprintf("%.1fus", us)
	}
}
