// Package prof is the scheduler's phase-level profiler: a low-overhead,
// allocation-free timer that attributes a simulation run's wall time to
// the named phases of the scheduling-period and preemption-epoch hot
// paths (plan build, ILP solve, degradation-ladder rungs, memo rebuild,
// verdict scan, event-queue pump, …).
//
// The design goals, in priority order:
//
//   - Exclusive tiling. Phases form a stack (Enter/Exit): time is always
//     charged to exactly one phase — the innermost open one — so the
//     per-phase totals of a run sum to the instrumented wall time by
//     construction. That is what lets a bench report claim "this cell
//     spent 41% of its time in ilp-solve" and lets a regression harness
//     diff phase totals without double counting.
//   - Zero steady-state allocation. The stack is a fixed array, each
//     phase accumulates into fixed-size atomic cells (count, total, max,
//     and a log2-bucketed histogram), and Enter/Exit never allocate, so
//     timing can stay on for the preemption epoch path that was
//     deliberately driven to 0 allocs/op.
//   - Scrape safety. Recording uses atomics, so a telemetry server can
//     Snapshot a Timer from another goroutine mid-run without locks,
//     races, or torn reads of any single field.
//   - Near-no-op when off. Every method is nil-receiver safe; an
//     uninstrumented run passes a nil *Timer and pays one predictable
//     branch per call site.
//
// The clock is injectable (NewWithClock) so tests drive phase durations
// deterministically; the default clock is Go's monotonic time.Since.
package prof

import "fmt"

// Phase names one instrumented stretch of scheduler work. The taxonomy
// tiles a simulation run: engine-level phases (setup, event-pump,
// finalize) cover everything, and the hot-path phases carve their
// exclusive slices out of them.
type Phase uint8

// The phase taxonomy. PERF.md documents what each phase covers and which
// component records it.
const (
	// PhaseSetup: sim.Run construction — workload ingestion, per-task
	// state, job-graph validation — before the event loop starts.
	PhaseSetup Phase = iota
	// PhasePlanBuild: the scheduling period's input scan (arrived-pending
	// collection and backlog bookkeeping) before the scheduler runs.
	PhasePlanBuild
	// PhaseSchedule: the offline scheduler call (Scheduler.Schedule)
	// minus the DSP rungs below — for baselines this is their whole
	// placement cost; for DSP it is the ladder-walking residue.
	PhaseSchedule
	// PhaseILPSolve: the exact ILP rung — model build, warm-start seeding
	// and the branch-and-bound solve.
	PhaseILPSolve
	// PhaseSchedList: the dependency-aware list/HEFT rung (both the Auto
	// choice and the degradation fallback).
	PhaseSchedList
	// PhaseSchedFIFO: the bottom-rung FIFO placement under extreme
	// overload.
	PhaseSchedFIFO
	// PhaseAssignApply: applying the period's assignments — queue
	// insertion and the slot refill that follows.
	PhaseAssignApply
	// PhaseEpochPolicy: the online preemption policy call
	// (Preemptor.Epoch) minus the DSP sub-phases below.
	PhaseEpochPolicy
	// PhaseMemoRebuild: preempt.Memo structural rebuilds — reverse-
	// topological order and live-edge recompaction.
	PhaseMemoRebuild
	// PhaseMemoEval: preempt.Memo's per-epoch numeric priority pass.
	PhaseMemoEval
	// PhaseVerdictScan: Algorithm 1's per-node preemption scan — urgency
	// checks, C1/C2, and the PP filter producing verdicts.
	PhaseVerdictScan
	// PhaseActionApply: applying the epoch's preemptions — suspends,
	// starter launches and the slot refill that follows.
	PhaseActionApply
	// PhaseTaskComplete: task-completion handling — slot release,
	// job accounting and the dependent-wakeup cascade.
	PhaseTaskComplete
	// PhaseEventPump: the discrete-event loop's residue — heap pops,
	// event dispatch, and every handler not named above (arrivals,
	// faults, retries, speculation).
	PhaseEventPump
	// PhaseAdmission: the job-arrival admission decision (backlog bound
	// and deadline-infeasibility checks).
	PhaseAdmission
	// PhaseAudit: the runtime invariant auditor's scheduling-boundary
	// re-derivation of engine invariants.
	PhaseAudit
	// PhaseSpans: execution-span and attribution bookkeeping delivered
	// through the observer.
	PhaseSpans
	// PhaseFinalize: end-of-run accounting checks and derived metrics.
	PhaseFinalize
	// PhaseSnapshot: the durability hook at the end of each scheduling
	// period — crash-recovery state capture, snapshot encoding and write,
	// and write-ahead-log rotation/fsync (see internal/recover).
	PhaseSnapshot
	// PhaseCellOther: a sweep cell's residue outside sim.Run — workload
	// generation, scheduler construction, result marshalling. The sweep
	// runner opens this as the root phase so per-cell phase totals tile
	// the cell's full wall time.
	PhaseCellOther
	// PhaseServePeriod: the serving daemon's wall-clock duration of one
	// scheduling-period step (drain ingest, plan, schedule, apply, audit,
	// snapshot). Unlike every phase above it is recorded as a direct
	// latency sample (Timer.Observe), not via the exclusive Enter/Exit
	// stack, so it overlaps — rather than tiles with — the engine phases
	// it contains. PERF.md documents the distinction.
	PhaseServePeriod

	// NumPhases is the number of phases; valid phases are < NumPhases.
	NumPhases
)

// phaseNames indexes Phase → stable string identity. These names are
// schema: they appear in dsp-bench-sweep/v2 reports, Prometheus labels
// and compare-tool output, so renaming one is a format change.
var phaseNames = [NumPhases]string{
	PhaseSetup:        "setup",
	PhasePlanBuild:    "plan-build",
	PhaseSchedule:     "schedule",
	PhaseILPSolve:     "ilp-solve",
	PhaseSchedList:    "sched-list",
	PhaseSchedFIFO:    "sched-fifo",
	PhaseAssignApply:  "assign-apply",
	PhaseEpochPolicy:  "epoch-policy",
	PhaseMemoRebuild:  "memo-rebuild",
	PhaseMemoEval:     "memo-eval",
	PhaseVerdictScan:  "verdict-scan",
	PhaseActionApply:  "action-apply",
	PhaseTaskComplete: "task-complete",
	PhaseEventPump:    "event-pump",
	PhaseAdmission:    "admission",
	PhaseAudit:        "audit",
	PhaseSpans:        "spans",
	PhaseFinalize:     "finalize",
	PhaseSnapshot:     "snapshot",
	PhaseCellOther:    "cell-other",
	PhaseServePeriod:  "serve-period",
}

func (p Phase) String() string {
	if p < NumPhases {
		return phaseNames[p]
	}
	return fmt.Sprintf("phase(%d)", uint8(p))
}

// Instrumentable is implemented by components (schedulers, preemptors)
// that can attribute their internal work to phases. The engine attaches
// its configured Timer to any Instrumentable scheduler or preemptor at
// run start, so call sites only ever wire the one Config field.
type Instrumentable interface {
	SetProfiler(*Timer)
}
