package prof

import (
	"strings"
	"sync"
	"testing"
)

// fakeClock is a deterministic nanosecond clock tests advance by hand.
type fakeClock struct{ now int64 }

func (c *fakeClock) read() int64   { return c.now }
func (c *fakeClock) tick(ns int64) { c.now += ns }

func TestExclusiveTiling(t *testing.T) {
	c := &fakeClock{}
	tm := NewWithClock(c.read)

	// outer[0..100) with inner[10..40) carved out:
	// outer exclusive = 70, inner exclusive = 30, sum = wall = 100.
	tm.Enter(PhaseEventPump)
	c.tick(10)
	tm.Enter(PhaseEpochPolicy)
	c.tick(30)
	tm.Exit()
	c.tick(60)
	tm.Exit()

	s := tm.Snapshot()
	if got := s[PhaseEventPump].TotalNS; got != 70 {
		t.Errorf("event-pump exclusive = %d, want 70", got)
	}
	if got := s[PhaseEpochPolicy].TotalNS; got != 30 {
		t.Errorf("epoch-policy exclusive = %d, want 30", got)
	}
	if got := s.TotalNS(); got != 100 {
		t.Errorf("phase sum = %d, want wall 100", got)
	}
	if s[PhaseEventPump].Count != 1 || s[PhaseEpochPolicy].Count != 1 {
		t.Errorf("counts = %d/%d, want 1/1",
			s[PhaseEventPump].Count, s[PhaseEpochPolicy].Count)
	}
}

func TestReentrantSamePhaseAccumulates(t *testing.T) {
	c := &fakeClock{}
	tm := NewWithClock(c.read)
	for i := 0; i < 5; i++ {
		tm.Enter(PhaseMemoEval)
		c.tick(7)
		tm.Exit()
	}
	s := tm.Snapshot()
	if s[PhaseMemoEval].Count != 5 || s[PhaseMemoEval].TotalNS != 35 {
		t.Errorf("memo-eval = count %d total %d, want 5/35",
			s[PhaseMemoEval].Count, s[PhaseMemoEval].TotalNS)
	}
	if s[PhaseMemoEval].MaxNS != 7 {
		t.Errorf("memo-eval max = %d, want 7", s[PhaseMemoEval].MaxNS)
	}
}

func TestNilTimerIsInert(t *testing.T) {
	var tm *Timer
	tm.Enter(PhaseSetup)
	tm.Exit()
	tm.Unwind()
	tm.Merge(Snapshot{})
	if d := tm.Depth(); d != 0 {
		t.Errorf("nil Depth = %d", d)
	}
	s := tm.Snapshot()
	if s.TotalNS() != 0 {
		t.Errorf("nil Snapshot total = %d", s.TotalNS())
	}
	if s[PhaseSetup].Phase != "setup" {
		t.Errorf("nil Snapshot phase name = %q", s[PhaseSetup].Phase)
	}
}

func TestUnwindClosesAllFrames(t *testing.T) {
	c := &fakeClock{}
	tm := NewWithClock(c.read)
	tm.Enter(PhaseSetup)
	c.tick(5)
	tm.Enter(PhasePlanBuild)
	c.tick(5)
	tm.Enter(PhaseSchedule)
	c.tick(5)
	tm.Unwind()
	if tm.Depth() != 0 {
		t.Fatalf("depth after Unwind = %d", tm.Depth())
	}
	s := tm.Snapshot()
	if got := s.TotalNS(); got != 15 {
		t.Errorf("phase sum after Unwind = %d, want 15", got)
	}
}

func TestUnbalancedExitTolerated(t *testing.T) {
	tm := NewWithClock((&fakeClock{}).read)
	tm.Exit() // no open phase: must not panic or corrupt
	tm.Enter(PhaseAudit)
	tm.Exit()
	tm.Exit()
	if tm.Depth() != 0 {
		t.Errorf("depth = %d", tm.Depth())
	}
}

func TestOverflowDepthRebalances(t *testing.T) {
	c := &fakeClock{}
	tm := NewWithClock(c.read)
	// Open maxDepth+3 frames; the overflow frames charge their time to
	// the innermost tracked frame and the stack rebalances on exits.
	for i := 0; i < maxDepth+3; i++ {
		tm.Enter(PhaseEventPump)
		c.tick(1)
	}
	for i := 0; i < maxDepth+3; i++ {
		tm.Exit()
	}
	if tm.Depth() != 0 {
		t.Fatalf("depth = %d after balanced exits", tm.Depth())
	}
	s := tm.Snapshot()
	if got := s.TotalNS(); got != maxDepth+3 {
		t.Errorf("total = %d, want %d (no time lost)", got, maxDepth+3)
	}
	if got := s[PhaseEventPump].Count; got != maxDepth {
		t.Errorf("count = %d, want %d tracked frames", got, maxDepth)
	}
}

func TestMergeAggregates(t *testing.T) {
	c1 := &fakeClock{}
	t1 := NewWithClock(c1.read)
	t1.Enter(PhaseILPSolve)
	c1.tick(100)
	t1.Exit()

	c2 := &fakeClock{}
	t2 := NewWithClock(c2.read)
	t2.Enter(PhaseILPSolve)
	c2.tick(300)
	t2.Exit()

	agg := NewWithClock((&fakeClock{}).read)
	agg.Merge(t1.Snapshot())
	agg.Merge(t2.Snapshot())
	s := agg.Snapshot()
	if s[PhaseILPSolve].Count != 2 || s[PhaseILPSolve].TotalNS != 400 {
		t.Errorf("merged ilp-solve = count %d total %d, want 2/400",
			s[PhaseILPSolve].Count, s[PhaseILPSolve].TotalNS)
	}
	if s[PhaseILPSolve].MaxNS != 300 {
		t.Errorf("merged max = %d, want 300", s[PhaseILPSolve].MaxNS)
	}
}

func TestMergeConcurrent(t *testing.T) {
	agg := NewWithClock((&fakeClock{}).read)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := &fakeClock{}
			tm := NewWithClock(c.read)
			for i := 0; i < 100; i++ {
				tm.Enter(PhaseVerdictScan)
				c.tick(10)
				tm.Exit()
			}
			agg.Merge(tm.Snapshot())
		}()
	}
	wg.Wait()
	s := agg.Snapshot()
	if s[PhaseVerdictScan].Count != 800 || s[PhaseVerdictScan].TotalNS != 8000 {
		t.Errorf("concurrent merge = count %d total %d, want 800/8000",
			s[PhaseVerdictScan].Count, s[PhaseVerdictScan].TotalNS)
	}
}

func TestQuantiles(t *testing.T) {
	c := &fakeClock{}
	tm := NewWithClock(c.read)
	// 90 short occurrences (100ns) and 10 long ones (100µs).
	for i := 0; i < 90; i++ {
		tm.Enter(PhaseSpans)
		c.tick(100)
		tm.Exit()
	}
	for i := 0; i < 10; i++ {
		tm.Enter(PhaseSpans)
		c.tick(100_000)
		tm.Exit()
	}
	s := tm.Snapshot()
	st := &s[PhaseSpans]
	p50 := st.Quantile(0.50)
	if p50 < 100 || p50 >= 256 {
		t.Errorf("p50 = %dns, want within the 100ns bucket [100,256)", p50)
	}
	p99 := st.Quantile(0.99)
	if p99 < 100_000 || p99 > st.MaxNS {
		t.Errorf("p99 = %dns, want within [100000, max]", p99)
	}
	if st.Quantile(1.0) != st.MaxNS {
		t.Errorf("p100 = %d, want exact max %d", st.Quantile(1.0), st.MaxNS)
	}
	var empty PhaseStat
	if empty.Quantile(0.5) != 0 {
		t.Errorf("empty quantile != 0")
	}
}

func TestBreakdownAndTable(t *testing.T) {
	c := &fakeClock{}
	tm := NewWithClock(c.read)
	tm.Enter(PhaseSchedule)
	c.tick(1000)
	tm.Exit()
	tm.Enter(PhaseILPSolve)
	c.tick(9000)
	tm.Exit()
	s := tm.Snapshot()
	rows := s.Breakdown()
	if len(rows) != 2 {
		t.Fatalf("breakdown rows = %d, want 2", len(rows))
	}
	if rows[0].Phase != "ilp-solve" {
		t.Errorf("blame order: first row = %q, want ilp-solve", rows[0].Phase)
	}
	if rows[0].TotalUS != 9.0 {
		t.Errorf("ilp-solve total = %gµs, want 9", rows[0].TotalUS)
	}
	tbl := Table(rows)
	if !strings.Contains(tbl, "ilp-solve") || !strings.Contains(tbl, "share") {
		t.Errorf("table missing expected content:\n%s", tbl)
	}
}

func TestPhaseNamesComplete(t *testing.T) {
	seen := map[string]bool{}
	for p := Phase(0); p < NumPhases; p++ {
		name := p.String()
		if name == "" || strings.HasPrefix(name, "phase(") {
			t.Errorf("phase %d has no name", p)
		}
		if seen[name] {
			t.Errorf("duplicate phase name %q", name)
		}
		seen[name] = true
	}
	if got := Phase(200).String(); got != "phase(200)" {
		t.Errorf("out-of-range String = %q", got)
	}
}

// TestEnterExitAllocFree is the satellite guard: the hot path must not
// allocate, on either a live or a nil timer.
func TestEnterExitAllocFree(t *testing.T) {
	c := &fakeClock{}
	tm := NewWithClock(c.read)
	allocs := testing.AllocsPerRun(1000, func() {
		tm.Enter(PhaseVerdictScan)
		c.tick(3)
		tm.Enter(PhaseMemoEval)
		c.tick(2)
		tm.Exit()
		tm.Exit()
	})
	if allocs != 0 {
		t.Errorf("live Enter/Exit allocates %v per op, want 0", allocs)
	}
	var nilTm *Timer
	allocs = testing.AllocsPerRun(1000, func() {
		nilTm.Enter(PhaseVerdictScan)
		nilTm.Exit()
	})
	if allocs != 0 {
		t.Errorf("nil Enter/Exit allocates %v per op, want 0", allocs)
	}
}

func BenchmarkEnterExit(b *testing.B) {
	tm := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tm.Enter(PhaseVerdictScan)
		tm.Exit()
	}
}

func BenchmarkEnterExitNil(b *testing.B) {
	var tm *Timer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tm.Enter(PhaseVerdictScan)
		tm.Exit()
	}
}
