package prof

import (
	"math/bits"
	"sync/atomic"
	"time"
)

const (
	// maxDepth bounds the phase stack. The engine's deepest real nesting
	// is 4 (event-pump → epoch-policy → memo-eval → memo-rebuild); 16
	// leaves generous slack. Deeper Enter calls are tolerated — their
	// time stays charged to the innermost tracked frame.
	maxDepth = 16
	// NumBuckets is the histogram width. Bucket i counts durations whose
	// nanosecond value has bit-length i: bucket 0 is exactly 0ns, bucket
	// i≥1 spans [2^(i-1), 2^i). 40 buckets reach ~9 minutes; anything
	// longer clips into the last bucket (Max stays exact regardless).
	NumBuckets = 40
)

// frame is one open phase on the stack: the phase, its exclusive time
// accumulated so far, and the clock reading at the last charge point
// (its own Enter, or the Exit of the child that last returned to it).
type frame struct {
	phase Phase
	excl  int64
	last  int64
}

// cell is one phase's accumulator. All fields are atomics so a scraper
// can read a consistent-enough snapshot (each field untorn) while the
// owning goroutine records; padding is deliberately omitted — the
// recording side is single-goroutine, so there is no write contention
// to false-share.
type cell struct {
	count   atomic.Int64
	total   atomic.Int64
	max     atomic.Int64
	buckets [NumBuckets]atomic.Int64
}

// Timer is the phase profiler: an exclusive-time phase stack over an
// injectable monotonic clock. Enter/Exit must come from one goroutine
// (the simulation loop); Snapshot and Merge are safe from any.
//
// A nil *Timer is valid and inert: every method is a no-op, so call
// sites instrument unconditionally and uninstrumented runs pay only a
// nil check.
type Timer struct {
	clock  func() int64
	depth  int
	stack  [maxDepth]frame
	phases [NumPhases]cell
}

// New returns a Timer over Go's monotonic clock.
func New() *Timer {
	base := time.Now()
	return &Timer{clock: func() int64 { return int64(time.Since(base)) }}
}

// NewWithClock returns a Timer over an injected nanosecond clock, for
// deterministic tests. The clock must be monotonic non-decreasing.
func NewWithClock(clock func() int64) *Timer {
	return &Timer{clock: clock}
}

// Enter opens phase p. Time from now until the matching Exit (minus any
// nested phases) is charged exclusively to p; the enclosing phase's
// clock pauses.
func (t *Timer) Enter(p Phase) {
	if t == nil {
		return
	}
	if t.depth >= maxDepth {
		// Overflow: track depth so Exits rebalance, but don't touch the
		// clock — the innermost tracked frame keeps accumulating.
		t.depth++
		return
	}
	now := t.clock()
	if t.depth > 0 {
		f := &t.stack[t.depth-1]
		f.excl += now - f.last
	}
	t.stack[t.depth] = frame{phase: p, last: now}
	t.depth++
}

// Exit closes the innermost open phase, recording its exclusive time.
// An Exit with no open phase is a tolerated no-op (unbalanced call
// sites are a bug, but not one worth crashing a run for).
func (t *Timer) Exit() {
	if t == nil || t.depth == 0 {
		return
	}
	if t.depth > maxDepth {
		t.depth--
		return
	}
	t.depth--
	f := &t.stack[t.depth]
	now := t.clock()
	f.excl += now - f.last
	t.record(f.phase, f.excl)
	if t.depth > 0 {
		t.stack[t.depth-1].last = now
	}
}

// Unwind closes every open phase, innermost first. Error paths that
// bail out of a deeply instrumented region call this instead of
// threading Exits through each return.
func (t *Timer) Unwind() {
	if t == nil {
		return
	}
	for t.depth > 0 {
		t.Exit()
	}
}

// Depth reports the number of open phases (tests and debug only).
func (t *Timer) Depth() int {
	if t == nil {
		return 0
	}
	return t.depth
}

// Observe records one direct duration sample for phase p, bypassing the
// exclusive Enter/Exit stack. It exists for latency metrics measured
// outside the simulation loop (the serving daemon's per-period wall
// time): the sample lands in the same count/total/max/histogram cell,
// but it is NOT exclusive time — it may overlap phases recorded on the
// stack, so it must not be summed with them. Unlike Enter/Exit, Observe
// touches only the atomic cells and is safe from any goroutine.
func (t *Timer) Observe(p Phase, ns int64) {
	if t == nil || p >= NumPhases {
		return
	}
	t.record(p, ns)
}

// record folds one closed phase occurrence into its accumulator cell.
func (t *Timer) record(p Phase, ns int64) {
	if ns < 0 {
		ns = 0
	}
	c := &t.phases[p]
	c.count.Add(1)
	c.total.Add(ns)
	for {
		cur := c.max.Load()
		if ns <= cur || c.max.CompareAndSwap(cur, ns) {
			break
		}
	}
	idx := bits.Len64(uint64(ns))
	if idx >= NumBuckets {
		idx = NumBuckets - 1
	}
	c.buckets[idx].Add(1)
}

// Snapshot copies the accumulated per-phase stats. Safe to call from
// any goroutine while the owner records: each field is read atomically,
// so counts and totals are never torn (the fields of a cell may be
// skewed by in-flight records — by at most one occurrence).
func (t *Timer) Snapshot() Snapshot {
	var s Snapshot
	for p := Phase(0); p < NumPhases; p++ {
		if t == nil {
			s[p].Phase = p.String()
			continue
		}
		c := &t.phases[p]
		s[p].Phase = p.String()
		s[p].Count = c.count.Load()
		s[p].TotalNS = c.total.Load()
		s[p].MaxNS = c.max.Load()
		for b := 0; b < NumBuckets; b++ {
			s[p].Buckets[b] = c.buckets[b].Load()
		}
	}
	return s
}

// Merge folds a snapshot (typically one sweep cell's timer) into this
// aggregate timer. Safe to call concurrently from multiple goroutines —
// the parallel sweep runner merges worker-local timers into one
// process-wide aggregate.
func (t *Timer) Merge(s Snapshot) {
	if t == nil {
		return
	}
	for p := Phase(0); p < NumPhases; p++ {
		if s[p].Count == 0 && s[p].TotalNS == 0 {
			continue
		}
		c := &t.phases[p]
		c.count.Add(s[p].Count)
		c.total.Add(s[p].TotalNS)
		for {
			cur := c.max.Load()
			if s[p].MaxNS <= cur || c.max.CompareAndSwap(cur, s[p].MaxNS) {
				break
			}
		}
		for b := 0; b < NumBuckets; b++ {
			if n := s[p].Buckets[b]; n != 0 {
				c.buckets[b].Add(n)
			}
		}
	}
}
