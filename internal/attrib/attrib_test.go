package attrib_test

import (
	"encoding/json"
	"testing"

	"dsp/internal/attrib"
	"dsp/internal/chaos"
	"dsp/internal/cluster"
	"dsp/internal/dag"
	"dsp/internal/preempt"
	"dsp/internal/sched"
	"dsp/internal/sim"
	"dsp/internal/trace"
	"dsp/internal/units"
)

// shortCheckpoint is the default checkpoint policy with the interval
// shrunk below the 1 s epoch some fixtures use (config validation
// rejects Interval >= Epoch).
func shortCheckpoint() cluster.CheckpointPolicy {
	cp := cluster.DefaultCheckpoint()
	cp.Interval = 500 * units.Millisecond
	return cp
}

// TestBlameSumsToCompletionUnderChaosOverload is the acceptance bar:
// a seeded RealCluster(50) run under the full chaos + overload stack —
// crashes, stragglers, transient faults, retries with backoff,
// speculation, a constrained solver budget and admission control — must
// attribute every completed job's time exactly: blame components sum to
// the measured completion within 1 time unit (they are integers, so
// exactly), with nothing left unattributed.
func TestBlameSumsToCompletionUnderChaosOverload(t *testing.T) {
	spec := trace.DefaultSpec(60, 20180901)
	spec.TaskScale = 0.05
	w, err := trace.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	cl := cluster.RealCluster(50)
	cs := chaos.DefaultSpec(cl.Len(), 20180901)
	cs.FaultyFraction = 0.2
	plan, err := cs.Plan()
	if err != nil {
		t.Fatal(err)
	}
	s := sched.NewDSP()
	s.ILPNodeBudget = 500
	rec := attrib.NewRecorder()
	res, err := sim.Run(sim.Config{
		Cluster:      cl,
		Scheduler:    s,
		Preemptor:    preempt.NewDSP(),
		Checkpoint:   cluster.DefaultCheckpoint(),
		Epoch:        10 * units.Second,
		Faults:       plan,
		Speculation:  &sim.Speculation{},
		RetryBackoff: 2 * units.Second,
		Admission: &sim.Admission{
			MaxPendingTasks: 2000,
			ShedInfeasible:  true,
			Margin:          1.5,
		},
		AuditInvariants: true,
		Observer:        rec,
	}, w)
	if err != nil {
		t.Fatal(err)
	}
	jobs := rec.Jobs()
	if len(jobs) != res.JobsCompleted {
		t.Fatalf("recorded %d attributions, %d jobs completed", len(jobs), res.JobsCompleted)
	}
	if len(jobs) == 0 {
		t.Fatal("no jobs completed")
	}
	var agg attrib.Blame
	for _, a := range jobs {
		diff := a.Blame.Total() - a.Completion()
		if diff < -1 || diff > 1 {
			t.Errorf("job %d: blame total %v != completion %v (diff %v)\nblame: %+v",
				a.Job, a.Blame.Total(), a.Completion(), diff, a.Blame)
		}
		if a.Blame[attrib.Unattributed] != 0 {
			t.Errorf("job %d: %v unattributed (want 0 without dynamic growth)",
				a.Job, a.Blame[attrib.Unattributed])
		}
		if len(a.Path) == 0 {
			t.Errorf("job %d: empty realized path", a.Job)
		}
		// Path windows must tile [Arrival, DoneAt].
		cursor := a.Arrival
		for i, st := range a.Path {
			if st.Start != cursor {
				t.Errorf("job %d: step %d starts at %v, want %v", a.Job, i, st.Start, cursor)
			}
			if st.Blame.Total() != st.End-st.Start {
				t.Errorf("job %d: step %d blame %v != window %v",
					a.Job, i, st.Blame.Total(), st.End-st.Start)
			}
			cursor = st.End
		}
		if cursor != a.DoneAt {
			t.Errorf("job %d: path ends at %v, want %v", a.Job, cursor, a.DoneAt)
		}
		agg.Merge(a.Blame)
	}
	if agg[attrib.Service] == 0 {
		t.Error("aggregate service blame is zero; attribution is vacuous")
	}
	t.Logf("%d jobs attributed; aggregate blame: %+v", len(jobs), agg)
}

// TestRecorderAggregateMatchesJobs cross-checks Aggregate against the
// per-job list and exercises Reset.
func TestRecorderAggregateMatchesJobs(t *testing.T) {
	spec := trace.DefaultSpec(4, 7)
	spec.TaskScale = 0.02
	w, err := trace.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	rec := attrib.NewRecorder()
	var fromCallback int
	rec.OnJob(func(attrib.JobAttribution) { fromCallback++ })
	if _, err := sim.Run(sim.Config{
		Cluster:    cluster.RealCluster(2),
		Scheduler:  sched.NewDSP(),
		Preemptor:  preempt.NewDSP(),
		Checkpoint: shortCheckpoint(),
		Period:     units.Minute,
		Epoch:      units.Second,
		Observer:   rec,
	}, w); err != nil {
		t.Fatal(err)
	}
	jobs := rec.Jobs()
	if len(jobs) == 0 {
		t.Fatal("no attributions recorded")
	}
	if fromCallback != len(jobs) {
		t.Errorf("OnJob fired %d times for %d jobs", fromCallback, len(jobs))
	}
	var want attrib.Blame
	for _, a := range jobs {
		want.Merge(a.Blame)
	}
	got, n := rec.Aggregate()
	if got != want || n != len(jobs) {
		t.Errorf("Aggregate() = %+v (%d jobs), want %+v (%d)", got, n, want, len(jobs))
	}
	rec.Reset()
	if _, n := rec.Aggregate(); n != 0 {
		t.Errorf("after Reset, %d jobs remain", n)
	}
}

// TestDecomposeClipping feeds hand-built windows and spans through
// Decompose: overlap clipping, the cross-job split, and unattributed
// gap accounting.
func TestDecomposeClipping(t *testing.T) {
	sec := func(s int64) units.Time { return units.Time(s) * units.Second }
	windows := []attrib.Window{
		{Task: 0, Start: 0, End: sec(10)},
		{Task: 1, Start: sec(10), End: sec(20)},
	}
	spans := map[dag.TaskID][]attrib.Span{
		// Task 0: pending [0,4), queued [4,6), service [6,10) — but the
		// job only became eligible at 3s, so [0,3) is cross-job wait.
		0: {
			{Cause: attrib.Dispatch, Start: 0, End: sec(4)},
			{Cause: attrib.QueueWait, Start: sec(4), End: sec(6)},
			{Cause: attrib.Service, Start: sec(6), End: sec(10)},
		},
		// Task 1: spans overlap the window boundary and each other, and
		// leave [18,20) uncovered.
		1: {
			{Cause: attrib.QueueWait, Start: sec(8), End: sec(12)}, // clipped to [10,12)
			{Cause: attrib.Service, Start: sec(11), End: sec(18)},  // overlap [11,12) dropped
			{Cause: attrib.Overhead, Start: sec(13), End: sec(15)}, // fully shadowed
		},
	}
	blame, steps := attrib.Decompose(sec(3), windows, func(id dag.TaskID) []attrib.Span {
		return spans[id]
	})
	if got := blame.Total(); got != sec(20) {
		t.Fatalf("total blame %v, want %v", got, sec(20))
	}
	want := attrib.Blame{}
	want[attrib.CrossJobWait] = sec(3)
	want[attrib.Dispatch] = sec(1)
	want[attrib.QueueWait] = sec(2) + sec(2)
	want[attrib.Service] = sec(4) + sec(6)
	want[attrib.Unattributed] = sec(2)
	if blame != want {
		t.Errorf("blame = %+v\nwant    %+v", blame, want)
	}
	if len(steps) != 2 {
		t.Fatalf("got %d steps, want 2", len(steps))
	}
}

// TestBlameJSONRoundTrip checks the custom (Un)MarshalJSON pair.
func TestBlameJSONRoundTrip(t *testing.T) {
	var b attrib.Blame
	b[attrib.Service] = 123456
	b[attrib.PreemptLoss] = 789
	data, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"service":123456,"preempt-loss":789}`
	if string(data) != want {
		t.Errorf("marshal = %s, want %s", data, want)
	}
	var back attrib.Blame
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != b {
		t.Errorf("round trip = %+v, want %+v", back, b)
	}
	if _, err := json.Marshal(attrib.Blame{}); err != nil {
		t.Fatal(err)
	}
	var bad attrib.Blame
	if err := json.Unmarshal([]byte(`{"nonsense":1}`), &bad); err == nil {
		t.Error("unknown cause accepted")
	}
}

// TestParseCause checks String/ParseCause are inverse over all causes,
// and that the span-string mapping covers every span kind.
func TestParseCause(t *testing.T) {
	for _, c := range attrib.Causes() {
		got, ok := attrib.ParseCause(c.String())
		if !ok || got != c {
			t.Errorf("ParseCause(%q) = %v, %v", c.String(), got, ok)
		}
	}
	if _, ok := attrib.ParseCause("bogus"); ok {
		t.Error("ParseCause accepted bogus name")
	}
	for _, tc := range []struct {
		kind, cause string
		want        attrib.Cause
	}{
		{"pending", "none", attrib.Dispatch},
		{"queued", "none", attrib.QueueWait},
		{"suspend-wait", "preemption", attrib.PreemptWait},
		{"backoff", "none", attrib.Backoff},
		{"blocked", "none", attrib.Blocked},
		{"overhead", "none", attrib.Overhead},
		{"service", "none", attrib.Service},
		{"lost", "preemption", attrib.PreemptLoss},
		{"lost", "task-fault", attrib.FaultLoss},
		{"lost", "crash", attrib.FaultLoss},
	} {
		got, ok := attrib.ParseSpanCause(tc.kind, tc.cause)
		if !ok || got != tc.want {
			t.Errorf("ParseSpanCause(%q, %q) = %v, %v; want %v", tc.kind, tc.cause, got, ok, tc.want)
		}
	}
}
