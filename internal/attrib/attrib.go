// Package attrib is the latency-attribution engine: it consumes the
// execution spans the simulator emits (sim.TaskSpan), reconstructs each
// completed job's realized critical path over its dependency DAG, and
// decomposes the job's completion time into a blame vector — one
// duration per cause — whose components sum exactly to the measured
// completion time. Every simulated microsecond of a completed job is
// attributed to exactly one cause.
//
// The realized critical path is the chain of tasks that actually gated
// completion: starting from the last-finishing task, repeatedly step to
// the parent that finished last (the blocking parent) until a task with
// no parents. Because a task cannot finish before its parents, the
// segments [previous task's finish, this task's finish] tile the
// interval [job arrival, job completion] with no gaps or overlaps; the
// spans of the task owning each segment, clipped to the segment, then
// split the segment's time by cause. The pre-eligibility stretch (while
// cross-job prerequisites ran) is blamed on cross-job-wait regardless
// of span content, since nothing the job did could overlap it.
package attrib

import (
	"encoding/json"
	"fmt"
	"sort"

	"dsp/internal/dag"
	"dsp/internal/sim"
	"dsp/internal/units"
)

// Cause is one component of the blame vector.
type Cause int

// Blame causes, in canonical (serialization) order.
const (
	// CrossJobWait: the job had arrived but could not be scheduled
	// because a cross-job prerequisite had not completed.
	CrossJobWait Cause = iota
	// Dispatch: a path task sat unassigned, waiting for an offline
	// scheduling period (or a post-failure redispatch) to place it.
	Dispatch
	// QueueWait: a path task waited in a node queue before first start.
	QueueWait
	// PreemptWait: a path task sat suspended after a preemption.
	PreemptWait
	// Service: useful execution that survived to completion.
	Service
	// Overhead: slot time paying a startup cost — resume penalty after a
	// preemption or fault, remote-input fetch.
	Overhead
	// PreemptLoss: executed work rolled back because the online policy
	// suspended the burst past its last checkpoint.
	PreemptLoss
	// FaultLoss: executed work rolled back because a transient task
	// fault or node crash killed the burst.
	FaultLoss
	// Backoff: a failed attempt waiting out its retry delay.
	Backoff
	// Blocked: a blind-started path task occupying a slot with
	// unfinished precedents (dependency-blind schedulers only).
	Blocked
	// Unattributed: path time not covered by any span. Zero for tasks
	// that exist from job arrival; dynamically grown tasks leave the
	// window before their creation uncovered.
	Unattributed

	// NumCauses is the number of blame causes.
	NumCauses
)

var causeNames = [NumCauses]string{
	CrossJobWait: "cross-job-wait",
	Dispatch:     "dispatch",
	QueueWait:    "queue-wait",
	PreemptWait:  "preempt-wait",
	Service:      "service",
	Overhead:     "overhead",
	PreemptLoss:  "preempt-loss",
	FaultLoss:    "fault-loss",
	Backoff:      "backoff",
	Blocked:      "blocked",
	Unattributed: "unattributed",
}

func (c Cause) String() string {
	if c >= 0 && c < NumCauses {
		return causeNames[c]
	}
	return fmt.Sprintf("cause(%d)", int(c))
}

// ParseCause resolves a cause name produced by Cause.String.
func ParseCause(s string) (Cause, bool) {
	for c, name := range causeNames {
		if s == name {
			return Cause(c), true
		}
	}
	return 0, false
}

// Causes returns all causes in canonical order.
func Causes() []Cause {
	out := make([]Cause, NumCauses)
	for i := range out {
		out[i] = Cause(i)
	}
	return out
}

// Blame is a duration per cause. The zero value is empty.
type Blame [NumCauses]units.Time

// Add charges d to cause c.
func (b *Blame) Add(c Cause, d units.Time) { b[c] += d }

// Merge adds every component of o into b.
func (b *Blame) Merge(o Blame) {
	for c, d := range o {
		b[c] += d
	}
}

// Total returns the sum of all components.
func (b Blame) Total() units.Time {
	var t units.Time
	for _, d := range b {
		t += d
	}
	return t
}

// Dominant returns the cause with the largest share (ties resolve to
// the earlier cause in canonical order).
func (b Blame) Dominant() Cause {
	best := Cause(0)
	for c := Cause(1); c < NumCauses; c++ {
		if b[c] > b[best] {
			best = c
		}
	}
	return best
}

// MarshalJSON renders the blame as an object of nonzero components in
// canonical cause order, with microsecond integer values.
func (b Blame) MarshalJSON() ([]byte, error) {
	buf := []byte{'{'}
	first := true
	for c := Cause(0); c < NumCauses; c++ {
		if b[c] == 0 {
			continue
		}
		if !first {
			buf = append(buf, ',')
		}
		first = false
		buf = append(buf, fmt.Sprintf("%q:%d", c.String(), int64(b[c]))...)
	}
	return append(buf, '}'), nil
}

// UnmarshalJSON parses the object form written by MarshalJSON.
func (b *Blame) UnmarshalJSON(data []byte) error {
	var m map[string]int64
	if err := json.Unmarshal(data, &m); err != nil {
		return err
	}
	var out Blame
	for name, v := range m {
		c, ok := ParseCause(name)
		if !ok {
			return fmt.Errorf("attrib: unknown blame cause %q", name)
		}
		out[c] = units.Time(v)
	}
	*b = out
	return nil
}

// Span is one closed slice of a task's timeline, already mapped to the
// blame cause it charges. It is the offline-friendly form of
// sim.TaskSpan: Decompose works from these alone, so a JSONL audit can
// reproduce the attribution without the engine.
type Span struct {
	Cause Cause
	Start units.Time
	End   units.Time
	// Node is where the span was spent (-1 for off-node waits).
	Node int
}

// CauseOfSpan maps a simulator span to the blame cause it charges.
func CauseOfSpan(k sim.SpanKind, c sim.SpanCause) Cause {
	switch k {
	case sim.SpanPending:
		return Dispatch
	case sim.SpanQueued:
		return QueueWait
	case sim.SpanSuspendWait:
		return PreemptWait
	case sim.SpanBackoff:
		return Backoff
	case sim.SpanBlocked:
		return Blocked
	case sim.SpanOverhead:
		return Overhead
	case sim.SpanService:
		return Service
	case sim.SpanLost:
		if c == sim.CausePreemption {
			return PreemptLoss
		}
		return FaultLoss
	}
	return Unattributed
}

// ParseSpanCause maps the (kind, cause) string pair of an audit "span"
// line back to its blame cause. Kind strings are sim.SpanKind.String
// values; cause strings sim.SpanCause.String values.
func ParseSpanCause(kind, cause string) (Cause, bool) {
	switch kind {
	case "pending":
		return Dispatch, true
	case "queued":
		return QueueWait, true
	case "suspend-wait":
		return PreemptWait, true
	case "backoff":
		return Backoff, true
	case "blocked":
		return Blocked, true
	case "overhead":
		return Overhead, true
	case "service":
		return Service, true
	case "lost":
		if cause == "preemption" {
			return PreemptLoss, true
		}
		return FaultLoss, true
	}
	return 0, false
}

// Window is one segment of the realized critical path: the stretch of
// the job's completion interval that Task's finish gated, from the
// previous path task's finish (or the job's arrival, for the root) to
// Task's own finish.
type Window struct {
	Task  dag.TaskID
	Start units.Time
	End   units.Time
}

// Step is a decomposed path window: the window plus the blame split of
// its time.
type Step struct {
	Task  dag.TaskID
	Start units.Time
	End   units.Time
	Blame Blame
}

// JobAttribution is the full attribution of one completed job.
type JobAttribution struct {
	Job      dag.JobID
	Arrival  units.Time
	Eligible units.Time
	DoneAt   units.Time
	// Path is the realized critical path, root first; its windows tile
	// [Arrival, DoneAt].
	Path []Step
	// Blame sums the step blames; Blame.Total() == Completion().
	Blame Blame
}

// Completion returns the job's measured completion time.
func (a JobAttribution) Completion() units.Time { return a.DoneAt - a.Arrival }

// RealizedPath reconstructs the chain of tasks that actually gated the
// job's completion: from the last-finishing task, walk to the parent
// that finished last until a task with no parents. Ties resolve to the
// smallest task ID for determinism. Returns nil for incomplete jobs.
func RealizedPath(j *sim.JobState) []dag.TaskID {
	if !j.Done() || len(j.Tasks) == 0 {
		return nil
	}
	last := dag.TaskID(0)
	for id, ts := range j.Tasks {
		if ts.DoneAt > j.Tasks[last].DoneAt {
			last = dag.TaskID(id)
		}
	}
	var rev []dag.TaskID
	cur := last
	for {
		rev = append(rev, cur)
		parents := j.Dag.Parents(cur)
		if len(parents) == 0 {
			break
		}
		pick := parents[0]
		for _, p := range parents[1:] {
			if j.Tasks[p].DoneAt > j.Tasks[pick].DoneAt ||
				(j.Tasks[p].DoneAt == j.Tasks[pick].DoneAt && p < pick) {
				pick = p
			}
		}
		cur = pick
	}
	for i, k := 0, len(rev)-1; i < k; i, k = i+1, k-1 {
		rev[i], rev[k] = rev[k], rev[i]
	}
	return rev
}

// PathWindows turns a realized path into its tiling windows over
// [j.Arrival, j.DoneAt].
func PathWindows(j *sim.JobState, path []dag.TaskID) []Window {
	ws := make([]Window, len(path))
	start := j.Arrival
	for i, id := range path {
		end := j.Tasks[id].DoneAt
		if end < start {
			end = start // defensive; parents finish before children
		}
		ws[i] = Window{Task: id, Start: start, End: end}
		start = end
	}
	return ws
}

// Decompose splits the completion interval tiled by windows into a
// blame vector, clipping each window's task spans to the window.
// spansOf returns the closed spans of a task in any order. Time inside
// a window covered by no span is Unattributed; time before eligible is
// cross-job wait regardless of span content. The returned blame totals
// exactly the windows' combined length, so when the windows come from
// PathWindows the total is the job's completion time.
func Decompose(eligible units.Time, windows []Window, spansOf func(dag.TaskID) []Span) (Blame, []Step) {
	var total Blame
	steps := make([]Step, 0, len(windows))
	for _, w := range windows {
		var b Blame
		spans := append([]Span(nil), spansOf(w.Task)...)
		sort.Slice(spans, func(a, c int) bool { return spans[a].Start < spans[c].Start })
		cursor := w.Start
		for _, s := range spans {
			st, en := s.Start, s.End
			if st < cursor {
				st = cursor // never double-count overlap
			}
			if en > w.End {
				en = w.End
			}
			if en <= st {
				continue
			}
			if gap := st - cursor; gap > 0 {
				charge(&b, cursor, st, eligible, Unattributed)
			}
			charge(&b, st, en, eligible, s.Cause)
			cursor = en
		}
		if cursor < w.End {
			charge(&b, cursor, w.End, eligible, Unattributed)
		}
		steps = append(steps, Step{Task: w.Task, Start: w.Start, End: w.End, Blame: b})
		total.Merge(b)
	}
	return total, steps
}

// charge books [st, en) to cause, diverting any part before eligible to
// cross-job wait.
func charge(b *Blame, st, en, eligible units.Time, cause Cause) {
	if st >= en {
		return
	}
	if st < eligible {
		ce := eligible
		if ce > en {
			ce = en
		}
		b.Add(CrossJobWait, ce-st)
		st = ce
	}
	if en > st {
		b.Add(cause, en-st)
	}
}

// Attribute runs the full pipeline for one completed job given its
// recorded spans: realized path, windows, decomposition.
func Attribute(j *sim.JobState, spansOf func(dag.TaskID) []Span) JobAttribution {
	path := RealizedPath(j)
	windows := PathWindows(j, path)
	eligible := j.EligibleAt()
	blame, steps := Decompose(eligible, windows, spansOf)
	return JobAttribution{
		Job:      j.Dag.ID,
		Arrival:  j.Arrival,
		Eligible: eligible,
		DoneAt:   j.DoneAt,
		Path:     steps,
		Blame:    blame,
	}
}
