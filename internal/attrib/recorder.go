package attrib

import (
	"sync"

	"dsp/internal/dag"
	"dsp/internal/sim"
	"dsp/internal/units"
)

// Recorder is a sim.Observer that collects task spans as the engine
// emits them and attributes each job the moment it completes. It is
// safe for concurrent reads (the telemetry server scrapes aggregates
// while the simulation owns the write path).
type Recorder struct {
	sim.NopObserver

	mu    sync.Mutex
	spans map[dag.Key][]Span
	jobs  []JobAttribution
	onJob func(JobAttribution)
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{spans: make(map[dag.Key][]Span)}
}

// OnJob registers a callback invoked (synchronously, from the engine's
// event loop) with each completed job's attribution.
func (r *Recorder) OnJob(fn func(JobAttribution)) { r.onJob = fn }

// BeginRun resets the recorder between runs of a sweep.
func (r *Recorder) BeginRun(string) { r.Reset() }

// Reset discards all recorded spans and attributions.
func (r *Recorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.spans = make(map[dag.Key][]Span)
	r.jobs = nil
}

// TaskSpanClosed implements sim.Observer.
func (r *Recorder) TaskSpanClosed(s sim.TaskSpan) {
	k := s.Task.Key()
	r.mu.Lock()
	r.spans[k] = append(r.spans[k], Span{
		Cause: CauseOfSpan(s.Kind, s.Cause),
		Start: s.Start,
		End:   s.End,
		Node:  int(s.Node),
	})
	r.mu.Unlock()
}

// JobCompleted implements sim.Observer: the job is attributed
// immediately and its per-task span records released, bounding memory
// to in-flight jobs.
func (r *Recorder) JobCompleted(_ units.Time, j *sim.JobState) {
	r.mu.Lock()
	defer r.mu.Unlock()
	att := Attribute(j, func(id dag.TaskID) []Span {
		return r.spans[dag.Key{Job: j.Dag.ID, Task: id}]
	})
	for id := range j.Tasks {
		delete(r.spans, dag.Key{Job: j.Dag.ID, Task: dag.TaskID(id)})
	}
	r.jobs = append(r.jobs, att)
	if r.onJob != nil {
		r.onJob(att)
	}
}

// Jobs returns a copy of the attributions recorded so far, in
// completion order.
func (r *Recorder) Jobs() []JobAttribution {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]JobAttribution(nil), r.jobs...)
}

// Aggregate sums the blame vectors of all completed jobs and returns
// the sum with the job count.
func (r *Recorder) Aggregate() (Blame, int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var b Blame
	for i := range r.jobs {
		b.Merge(r.jobs[i].Blame)
	}
	return b, len(r.jobs)
}
