package attrib

import (
	"sync"

	"dsp/internal/dag"
	"dsp/internal/sim"
	"dsp/internal/units"
)

// Recorder is a sim.Observer that collects task spans as the engine
// emits them and attributes each job the moment it completes. It is
// safe for concurrent reads (the telemetry server scrapes aggregates
// while the simulation owns the write path).
type Recorder struct {
	sim.NopObserver

	mu    sync.Mutex
	spans map[dag.Key][]Span
	jobs  []JobAttribution
	onJob func(JobAttribution)
	// agg and aggJobs accumulate the blame sum and count at completion
	// time, so Aggregate stays O(1) and correct even after old per-job
	// records are evicted under a retention bound.
	agg     Blame
	aggJobs int
	// retention bounds len(jobs): once full, each completion evicts the
	// oldest record. 0 = unbounded (the batch default).
	retention int
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{spans: make(map[dag.Key][]Span)}
}

// OnJob registers a callback invoked (synchronously, from the engine's
// event loop) with each completed job's attribution.
func (r *Recorder) OnJob(fn func(JobAttribution)) { r.onJob = fn }

// SetRetention bounds the per-job attribution history to the most
// recent n completions (0 restores the unbounded batch default). A
// long-running daemon sets this so Jobs cannot grow with the job
// history; Aggregate still covers every completion ever recorded.
func (r *Recorder) SetRetention(n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.retention = n
	if n > 0 && len(r.jobs) > n {
		r.jobs = append(r.jobs[:0], r.jobs[len(r.jobs)-n:]...)
	}
}

// BeginRun resets the recorder between runs of a sweep.
func (r *Recorder) BeginRun(string) { r.Reset() }

// Reset discards all recorded spans, attributions and aggregates.
func (r *Recorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.spans = make(map[dag.Key][]Span)
	r.jobs = nil
	r.agg = Blame{}
	r.aggJobs = 0
}

// TaskSpanClosed implements sim.Observer.
func (r *Recorder) TaskSpanClosed(s sim.TaskSpan) {
	k := s.Task.Key()
	r.mu.Lock()
	r.spans[k] = append(r.spans[k], Span{
		Cause: CauseOfSpan(s.Kind, s.Cause),
		Start: s.Start,
		End:   s.End,
		Node:  int(s.Node),
	})
	r.mu.Unlock()
}

// JobCompleted implements sim.Observer: the job is attributed
// immediately and its per-task span records released, bounding memory
// to in-flight jobs.
func (r *Recorder) JobCompleted(_ units.Time, j *sim.JobState) {
	r.mu.Lock()
	defer r.mu.Unlock()
	att := Attribute(j, func(id dag.TaskID) []Span {
		return r.spans[dag.Key{Job: j.Dag.ID, Task: id}]
	})
	for id := range j.Tasks {
		delete(r.spans, dag.Key{Job: j.Dag.ID, Task: dag.TaskID(id)})
	}
	r.agg.Merge(att.Blame)
	r.aggJobs++
	if r.retention > 0 && len(r.jobs) >= r.retention {
		n := copy(r.jobs, r.jobs[len(r.jobs)-r.retention+1:])
		r.jobs = append(r.jobs[:n], att)
	} else {
		r.jobs = append(r.jobs, att)
	}
	if r.onJob != nil {
		r.onJob(att)
	}
}

// Jobs returns a copy of the attributions recorded so far (the most
// recent ones, under a retention bound), in completion order.
func (r *Recorder) Jobs() []JobAttribution {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]JobAttribution(nil), r.jobs...)
}

// Aggregate returns the blame sum and count over every job ever
// attributed — including records evicted by the retention bound.
func (r *Recorder) Aggregate() (Blame, int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.agg, r.aggJobs
}
