package sim

import (
	"testing"

	"dsp/internal/cluster"
	"dsp/internal/eventq"
	"dsp/internal/units"
)

// resilienceObserver tallies the resilience event surface.
type resilienceObserver struct {
	NopObserver
	retries, terminals        int
	specLaunch, specWon       int
	specCancel, blacklistings int
	failed, recovered, evicts int
}

func (r *resilienceObserver) TaskRetried(_ units.Time, _ *TaskState, _ cluster.NodeID, _ int, _ RetryReason) {
	r.retries++
}
func (r *resilienceObserver) TaskFailedTerminally(units.Time, *TaskState, cluster.NodeID) {
	r.terminals++
}
func (r *resilienceObserver) SpeculationLaunched(units.Time, *TaskState, cluster.NodeID, cluster.NodeID) {
	r.specLaunch++
}
func (r *resilienceObserver) SpeculationWon(units.Time, *TaskState, cluster.NodeID, cluster.NodeID) {
	r.specWon++
}
func (r *resilienceObserver) SpeculationCancelled(units.Time, *TaskState, cluster.NodeID) {
	r.specCancel++
}
func (r *resilienceObserver) NodeBlacklisted(units.Time, cluster.NodeID) { r.blacklistings++ }
func (r *resilienceObserver) NodeFailed(units.Time, cluster.NodeID)      { r.failed++ }
func (r *resilienceObserver) NodeRecovered(units.Time, cluster.NodeID)   { r.recovered++ }
func (r *resilienceObserver) TaskEvicted(units.Time, *TaskState, cluster.NodeID) {
	r.evicts++
}

func TestRetryBudgetExhaustionFailsJobCleanly(t *testing.T) {
	// Rate 1 makes every attempt fail, so the task burns its whole budget
	// and must terminate its job with a recorded terminal failure — not
	// loop forever (the run finishing at all is the live-lock check; the
	// engine's MaxEvents guard would error out a retry loop).
	j := sizedJob(0, 10000)
	obs := &resilienceObserver{}
	res, err := Run(Config{
		Cluster:     testCluster(1, 1),
		Scheduler:   rrScheduler{},
		Period:      units.Second,
		RetryBudget: 3,
		Faults:      &FaultPlan{Tasks: &TaskFaults{Rate: 1, Seed: 7}},
		Observer:    obs,
		MaxEvents:   100_000,
	}, mkWorkload([]units.Time{0}, j))
	if err != nil {
		t.Fatal(err)
	}
	if res.TerminalFailures != 1 || obs.terminals != 1 {
		t.Errorf("TerminalFailures = %d (observer %d), want 1", res.TerminalFailures, obs.terminals)
	}
	if res.JobsFailed != 1 || res.JobsCompleted != 0 {
		t.Errorf("JobsFailed = %d, JobsCompleted = %d, want 1 and 0", res.JobsFailed, res.JobsCompleted)
	}
	// Budget 3 = three retried attempts, then the fourth attempt is
	// terminal.
	if res.Retries != 3 || obs.retries != 3 {
		t.Errorf("Retries = %d (observer %d), want 3", res.Retries, obs.retries)
	}
	if res.TaskFaults != 4 {
		t.Errorf("TaskFaults = %d, want 4 (budget 3 + terminal attempt)", res.TaskFaults)
	}
}

func TestUnlimitedRetryEventuallyCompletes(t *testing.T) {
	// With a sub-1 rate and a negative (unlimited) budget the task keeps
	// retrying until an attempt survives; the checkpointed progress of
	// failed attempts accumulates.
	j := sizedJob(0, 5000)
	res, err := Run(Config{
		Cluster:     testCluster(1, 1),
		Scheduler:   rrScheduler{},
		Period:      units.Second,
		Checkpoint:  cluster.DefaultCheckpoint(),
		RetryBudget: -1,
		// Seed 4: attempts 1 and 2 draw under 0.6 (fail), attempt 3
		// survives.
		Faults:    &FaultPlan{Tasks: &TaskFaults{Rate: 0.6, Seed: 4}},
		MaxEvents: 1_000_000,
	}, mkWorkload([]units.Time{0}, j))
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksCompleted != 1 || res.JobsCompleted != 1 {
		t.Fatalf("task did not complete: %+v", res)
	}
	if res.TaskFaults == 0 || res.Retries != res.TaskFaults {
		t.Errorf("TaskFaults = %d, Retries = %d: want equal and nonzero", res.TaskFaults, res.Retries)
	}
}

func TestRetryBackoffDelaysReadmission(t *testing.T) {
	// A crash eviction of a running task charges the retry budget; with a
	// 10 s backoff the task only re-enters Pending at 12 s even though
	// the node recovered at 3 s. Without backoff it restarts at 4 s.
	run := func(backoff units.Time) *Result {
		j := sizedJob(0, 10000)
		res, err := Run(Config{
			Cluster:      testCluster(1, 1),
			Scheduler:    rrScheduler{},
			Period:       2 * units.Second,
			RetryBackoff: backoff,
			Faults: &FaultPlan{Failures: []NodeFailure{
				{Node: 0, At: 2 * units.Second, RecoverAfter: units.Second},
			}},
		}, mkWorkload([]units.Time{0}, j))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(0)
	delayed := run(10 * units.Second)
	// No backoff: re-placed at the 4 s tick, 10 s of work → 14 s.
	if base.Makespan != 14*units.Second {
		t.Errorf("no-backoff makespan = %v, want 14s", base.Makespan)
	}
	// Backoff 10 s: re-admitted at 12 s, the 12 s tick places it → 22 s.
	if delayed.Makespan != 22*units.Second {
		t.Errorf("backoff makespan = %v, want 22s", delayed.Makespan)
	}
	for _, r := range []*Result{base, delayed} {
		if r.Retries != 1 || r.FailureEvictions != 1 {
			t.Errorf("Retries = %d, FailureEvictions = %d, want 1 and 1", r.Retries, r.FailureEvictions)
		}
	}
}

func TestCrashEvictionsExhaustBudget(t *testing.T) {
	// Budget 1: the first crash eviction is retried, the second is
	// terminal and fails the job.
	j := sizedJob(0, 100000)
	obs := &resilienceObserver{}
	res, err := Run(Config{
		Cluster:     testCluster(1, 1),
		Scheduler:   rrScheduler{},
		Period:      2 * units.Second,
		RetryBudget: 1,
		Faults: &FaultPlan{Failures: []NodeFailure{
			{Node: 0, At: units.Second, RecoverAfter: units.Second},
			{Node: 0, At: 3 * units.Second, RecoverAfter: units.Second},
		}},
		Observer: obs,
	}, mkWorkload([]units.Time{0}, j))
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures != 2 || obs.failed != 2 {
		t.Errorf("Failures = %d (observer %d), want 2", res.Failures, obs.failed)
	}
	if res.Retries != 1 || res.TerminalFailures != 1 {
		t.Errorf("Retries = %d, TerminalFailures = %d, want 1 and 1", res.Retries, res.TerminalFailures)
	}
	if res.JobsFailed != 1 || res.TasksCompleted != 0 {
		t.Errorf("JobsFailed = %d, TasksCompleted = %d, want 1 and 0", res.JobsFailed, res.TasksCompleted)
	}
	if obs.evicts != int(res.FailureEvictions) {
		t.Errorf("observer evictions %d != Result.FailureEvictions %d", obs.evicts, res.FailureEvictions)
	}
}

func TestSpeculationRescuesStraggler(t *testing.T) {
	// Task A on node 0 (healthy), task B on node 1 which is a permanent
	// 100× straggler. Once A finishes, the speculation scan finds B
	// crawling and launches a backup on the idle node 0; the backup wins
	// and the crawling primary is written off as speculative waste.
	j := sizedJob(0, 10000, 10000)
	obs := &resilienceObserver{}
	res, err := Run(Config{
		Cluster:   testCluster(2, 1),
		Scheduler: rrScheduler{},
		Faults: &FaultPlan{Stragglers: []Straggler{
			{Node: 1, At: 0, Factor: 0.01},
		}},
		Speculation: &Speculation{Interval: units.Second},
		Observer:    obs,
	}, mkWorkload([]units.Time{0}, j))
	if err != nil {
		t.Fatal(err)
	}
	if res.Speculations != 1 || res.SpeculationWins != 1 {
		t.Errorf("Speculations = %d, wins = %d, want 1 and 1", res.Speculations, res.SpeculationWins)
	}
	if obs.specLaunch != 1 || obs.specWon != 1 || obs.specCancel != 0 {
		t.Errorf("observer spec events launch=%d won=%d cancel=%d, want 1/1/0",
			obs.specLaunch, obs.specWon, obs.specCancel)
	}
	// A done at 10 s frees node 0; the 10 s scan launches the backup,
	// which finishes its full 10 s copy at 20 s. Without speculation B
	// would have needed 1000 s.
	if res.Makespan != 20*units.Second {
		t.Errorf("makespan = %v, want 20s", res.Makespan)
	}
	if res.TasksCompleted != 2 || res.JobsCompleted != 1 {
		t.Errorf("TasksCompleted = %d, JobsCompleted = %d, want 2 and 1", res.TasksCompleted, res.JobsCompleted)
	}
	// The abandoned primary burned node 1's slot from 0 s to the 20 s win.
	if res.SpeculativeWaste != 20*units.Second {
		t.Errorf("SpeculativeWaste = %v, want 20s", res.SpeculativeWaste)
	}
}

func TestSpeculationCancelledWhenPrimaryWins(t *testing.T) {
	// A mild straggler (2×) still triggers a backup under a tight
	// threshold, but here the primary finishes first: the backup must be
	// cancelled, counted as waste, and the task completes exactly once.
	j := sizedJob(0, 2000, 10000)
	obs := &resilienceObserver{}
	res, err := Run(Config{
		Cluster:   testCluster(2, 1),
		Scheduler: rrScheduler{},
		Faults: &FaultPlan{Stragglers: []Straggler{
			{Node: 1, At: 0, Factor: 0.5},
		}},
		Speculation: &Speculation{
			Interval:         units.Second,
			SpeedupThreshold: 1.1,
			MinRemaining:     units.Second,
		},
		Observer: obs,
	}, mkWorkload([]units.Time{0}, j))
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksCompleted != 2 {
		t.Fatalf("TasksCompleted = %d, want 2", res.TasksCompleted)
	}
	if res.Speculations == 0 {
		t.Fatal("expected at least one backup launch")
	}
	if res.SpeculationWins+res.SpeculationCancels != res.Speculations {
		t.Errorf("wins %d + cancels %d != launches %d",
			res.SpeculationWins, res.SpeculationCancels, res.Speculations)
	}
}

func TestBlacklistingFiresOnThreshold(t *testing.T) {
	// Two crashes with a slow decay push node 1's penalty over the
	// threshold (1.9, not 2: the first crash's point decays slightly over
	// the 2 s between crashes); the rising edge fires exactly one event.
	j := sizedJob(0, 10000, 10000, 10000, 10000)
	obs := &resilienceObserver{}
	res, err := Run(Config{
		Cluster:            testCluster(2, 2),
		Scheduler:          liveRR{},
		Period:             2 * units.Second,
		BlacklistThreshold: 1.9,
		HealthHalfLife:     units.Hour,
		Faults: &FaultPlan{Failures: []NodeFailure{
			{Node: 1, At: units.Second, RecoverAfter: units.Second},
			{Node: 1, At: 3 * units.Second, RecoverAfter: units.Second},
		}},
		Observer: obs,
	}, mkWorkload([]units.Time{0}, j))
	if err != nil {
		t.Fatal(err)
	}
	if res.Blacklistings != 1 || obs.blacklistings != 1 {
		t.Errorf("Blacklistings = %d (observer %d), want 1", res.Blacklistings, obs.blacklistings)
	}
	if res.TasksCompleted != 4 {
		t.Errorf("TasksCompleted = %d, want 4", res.TasksCompleted)
	}
}

func TestStragglerWindowSpansCrashRecovery(t *testing.T) {
	// Interaction: a straggler window [1s, 11s) on node 0 with a crash
	// window [2s, 4s) inside it. The mid-window factor change banks
	// progress (a free checkpoint), the crash loses the rest, and after
	// recovery the node still runs at straggler speed until the window
	// ends. All fault counters must agree with the observer.
	j := sizedJob(0, 10000)
	obs := &resilienceObserver{}
	res, err := Run(Config{
		Cluster:   testCluster(1, 1),
		Scheduler: rrScheduler{},
		Period:    2 * units.Second,
		Faults: &FaultPlan{
			Failures:   []NodeFailure{{Node: 0, At: 2 * units.Second, RecoverAfter: 2 * units.Second}},
			Stragglers: []Straggler{{Node: 0, At: units.Second, Factor: 0.5, Duration: 10 * units.Second}},
		},
		Observer: obs,
	}, mkWorkload([]units.Time{0}, j))
	if err != nil {
		t.Fatal(err)
	}
	// 0–1 s full speed (1000 MI banked at the 1 s re-pace), 1–2 s at 0.5×
	// lost to the crash, re-placed at 4 s, 4–11 s at 0.5× (3500 MI banked
	// at window end), 5500 MI at full speed → done 16.5 s.
	want := 16*units.Second + 500*units.Millisecond
	if res.Makespan != want {
		t.Errorf("makespan = %v, want %v", res.Makespan, want)
	}
	if res.Failures != 1 || obs.failed != 1 || obs.recovered != 1 {
		t.Errorf("Failures = %d, observer failed=%d recovered=%d, want 1/1/1",
			res.Failures, obs.failed, obs.recovered)
	}
	if res.FailureEvictions != 1 || obs.evicts != 1 || res.Retries != 1 {
		t.Errorf("FailureEvictions = %d (observer %d), Retries = %d, want 1/1/1",
			res.FailureEvictions, obs.evicts, res.Retries)
	}
	if res.LostWork != units.Second {
		t.Errorf("LostWork = %v, want 1s (the 1–2 s burst)", res.LostWork)
	}
}

func TestRecoveryOfNeverFailedNodeIsNoop(t *testing.T) {
	// White-box: the engine's recovery handler must ignore a recovery for
	// a node that is up (the event surface stays silent), and a second
	// failure while the node is already down must not double-count.
	// Valid FaultPlans cannot express either (Validate rejects
	// overlapping windows), so this guards the engine against plans
	// assembled by future callers bypassing Run.
	obs := &resilienceObserver{}
	e := &Engine{cfg: Config{Cluster: testCluster(2, 1), Observer: obs}, q: eventq.New()}
	for _, n := range e.cfg.Cluster.Nodes {
		e.nodes = append(e.nodes, &nodeState{node: n, speedFactor: 1})
	}
	e.recoverNode(0, units.Second)
	if obs.recovered != 0 {
		t.Errorf("recovery of an up node fired NodeRecovered (%d)", obs.recovered)
	}
	e.failNode(0, 2*units.Second)
	e.failNode(0, 3*units.Second) // already down: must be ignored
	if e.metrics.Failures != 1 || obs.failed != 1 {
		t.Errorf("Failures = %d (observer %d), want 1 — double crash counted twice",
			e.metrics.Failures, obs.failed)
	}
	e.recoverNode(0, 4*units.Second)
	e.recoverNode(0, 5*units.Second) // already up: must be ignored
	if obs.recovered != 1 {
		t.Errorf("NodeRecovered fired %d times, want 1", obs.recovered)
	}
}

func TestTaskFaultDrawDeterministic(t *testing.T) {
	p1, f1 := taskFaultDraw(42, 3, 7, 2)
	p2, f2 := taskFaultDraw(42, 3, 7, 2)
	if p1 != p2 || f1 != f2 {
		t.Error("same (seed, job, task, attempt) gave different draws")
	}
	if p1 < 0 || p1 >= 1 || f1 < 0 || f1 >= 1 {
		t.Errorf("draws outside [0,1): p=%v frac=%v", p1, f1)
	}
	p3, _ := taskFaultDraw(42, 3, 7, 3)
	p4, _ := taskFaultDraw(43, 3, 7, 2)
	if p1 == p3 || p1 == p4 {
		t.Error("attempt/seed salt did not change the draw")
	}
}

func TestPhaseStringsResilience(t *testing.T) {
	if Backoff.String() != "backoff" || Failed.String() != "failed" {
		t.Errorf("phase strings: %v %v", Backoff, Failed)
	}
	if Done.String() != "done" {
		t.Errorf("Done renumbered: %v", Done)
	}
}
