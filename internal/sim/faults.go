package sim

import (
	"fmt"
	"math"
	"sort"

	"dsp/internal/cluster"
	"dsp/internal/eventq"
	"dsp/internal/units"
)

// The paper's future work (Section VI) names fault tolerance — handling
// node failures/crashes and stragglers — as the next extension of DSP.
// This file implements both as first-class simulation events:
//
//   - NodeFailure crashes a node at a point in time. Everything running
//     there is evicted (progress rolls back to the last checkpoint, as a
//     crash loses the uncheckpointed state) and everything assigned to
//     its queue returns to the Pending pool, so the next offline
//     scheduling period re-places the work on surviving nodes. An
//     optional recovery brings the node back.
//   - Straggler degrades a node's effective speed by a factor for a
//     window, re-pacing the tasks running there.
//   - TaskFaults (see resilience.go) kill individual execution attempts
//     with a configured probability.
//
// Crash evictions of *running* tasks are charged against the task's
// retry budget (resilience.go); queued tasks just return to Pending.

// NodeFailure describes one crash (and optional recovery).
type NodeFailure struct {
	Node cluster.NodeID
	// At is when the node fails.
	At units.Time
	// RecoverAfter is how long until the node returns; zero or negative
	// means it never does.
	RecoverAfter units.Time
}

// Straggler describes a transient slowdown of one node.
type Straggler struct {
	Node cluster.NodeID
	// At is when the slowdown begins.
	At units.Time
	// Factor scales the node's speed (e.g. 0.1 = 10× slower). Must be
	// positive and finite.
	Factor float64
	// Duration is how long the slowdown lasts; zero or negative means it
	// persists to the end of the run.
	Duration units.Time
}

// FaultPlan is the set of injected faults for a run. Plans are validated
// at engine setup (Validate); an invalid plan aborts the run instead of
// being silently truncated.
type FaultPlan struct {
	Failures   []NodeFailure
	Stragglers []Straggler
	// Tasks optionally injects transient per-attempt task failures.
	Tasks *TaskFaults
}

// Validate checks the plan against a cluster of the given size: node IDs
// in range, non-negative times, positive finite straggler factors, a
// probability-valued task-fault rate, and no overlapping failure windows
// on the same node (a node cannot crash while already down; windows may
// touch — recovery fires before a same-instant crash).
func (p *FaultPlan) Validate(nodes int) error {
	if p == nil {
		return nil
	}
	type window struct {
		at, end units.Time
		idx     int
	}
	byNode := make(map[cluster.NodeID][]window)
	for i, f := range p.Failures {
		if int(f.Node) < 0 || int(f.Node) >= nodes {
			return fmt.Errorf("sim: fault plan: failure %d: node %d out of range [0, %d)", i, f.Node, nodes)
		}
		if f.At < 0 {
			return fmt.Errorf("sim: fault plan: failure %d: negative time %v", i, f.At)
		}
		end := units.Forever
		if f.RecoverAfter > 0 {
			if f.At > units.Forever-f.RecoverAfter {
				return fmt.Errorf("sim: fault plan: failure %d: recovery time overflows", i)
			}
			end = f.At + f.RecoverAfter
		}
		byNode[f.Node] = append(byNode[f.Node], window{at: f.At, end: end, idx: i})
	}
	for node, ws := range byNode {
		sort.Slice(ws, func(a, b int) bool { return ws[a].at < ws[b].at })
		for i := 1; i < len(ws); i++ {
			if ws[i].at < ws[i-1].end {
				return fmt.Errorf("sim: fault plan: failures %d and %d overlap on node %d (down [%v, %v), next failure at %v)",
					ws[i-1].idx, ws[i].idx, node, ws[i-1].at, ws[i-1].end, ws[i].at)
			}
		}
	}
	for i, s := range p.Stragglers {
		if int(s.Node) < 0 || int(s.Node) >= nodes {
			return fmt.Errorf("sim: fault plan: straggler %d: node %d out of range [0, %d)", i, s.Node, nodes)
		}
		if s.At < 0 {
			return fmt.Errorf("sim: fault plan: straggler %d: negative time %v", i, s.At)
		}
		if !(s.Factor > 0) || math.IsInf(s.Factor, 0) {
			return fmt.Errorf("sim: fault plan: straggler %d: factor %v must be positive and finite", i, s.Factor)
		}
		if s.Duration > 0 && s.At > units.Forever-s.Duration {
			return fmt.Errorf("sim: fault plan: straggler %d: end time overflows", i)
		}
	}
	if t := p.Tasks; t != nil {
		if math.IsNaN(t.Rate) || t.Rate < 0 || t.Rate > 1 {
			return fmt.Errorf("sim: fault plan: task-fault rate %v outside [0, 1]", t.Rate)
		}
	}
	return nil
}

// installFaults schedules the plan's events. The plan must have been
// validated.
func (e *Engine) installFaults(plan *FaultPlan) {
	if plan == nil {
		return
	}
	for _, f := range plan.Failures {
		f := f
		e.q.AtTag(f.At, eventq.Tag{Kind: evNodeFail, A: int32(f.Node)}, eventq.Func(func(now units.Time) {
			e.failNode(f.Node, now)
		}))
		if f.RecoverAfter > 0 {
			e.q.AtTag(f.At+f.RecoverAfter, eventq.Tag{Kind: evNodeRecover, A: int32(f.Node)}, eventq.Func(func(now units.Time) {
				e.recoverNode(f.Node, now)
			}))
		}
	}
	for _, s := range plan.Stragglers {
		s := s
		e.q.AtTag(s.At, eventq.Tag{Kind: evSpeed, A: int32(s.Node), F: s.Factor}, eventq.Func(func(now units.Time) {
			e.setSpeedFactor(s.Node, s.Factor, now)
		}))
		if s.Duration > 0 {
			e.q.AtTag(s.At+s.Duration, eventq.Tag{Kind: evSpeed, A: int32(s.Node), F: 1}, eventq.Func(func(now units.Time) {
				e.setSpeedFactor(s.Node, 1, now)
			}))
		}
	}
}

// speedOf returns the node's current effective speed (profile speed ×
// straggler factor; zero while the node is down).
func (e *Engine) speedOf(k cluster.NodeID) float64 {
	ns := e.nodes[k]
	if ns.down {
		return 0
	}
	return e.cfg.Cluster.Speed(k) * ns.speedFactor
}

// failNode crashes a node: running tasks are evicted with crash
// semantics (state since the last checkpoint is lost; the checkpoint
// itself survives in shared storage) and charged one failed attempt;
// queued work returns to Pending for rescheduling elsewhere. Speculative
// copies hosted on the node are abandoned; their primaries elsewhere
// keep running. The node's health penalty takes a hit.
func (e *Engine) failNode(k cluster.NodeID, now units.Time) {
	ns := e.nodes[k]
	if ns.down {
		return
	}
	e.metrics.Failures++
	speed := e.speedOf(k)
	ns.down = true
	if e.cfg.Observer != nil {
		e.cfg.Observer.NodeFailed(now, k)
	}
	e.addPenalty(k, 1, now)

	spec := append([]*backupRun(nil), ns.spec...)
	for _, br := range spec {
		e.cancelBackup(br, now)
	}
	running := append([]*TaskState(nil), ns.running...)
	ns.running = ns.running[:0]
	for _, t := range running {
		if t.Job.failed {
			continue // failJob (via an earlier eviction) already detached it
		}
		if t.hasDoneEv {
			e.q.Cancel(t.doneEv)
			t.hasDoneEv = false
		}
		if t.hasBlockEv {
			e.q.Cancel(t.blockEv)
			t.hasBlockEv = false
		}
		if t.blocked {
			e.metrics.BlockedSlotTime += now - t.effStart
			e.emitSpan(t, SpanBlocked, CauseNone, k, t.spanStart, now)
			t.spanStart = now
			t.blocked = false
		} else {
			var lost units.Time
			if now > t.effStart {
				worked := now - t.effStart
				retained := e.cfg.Checkpoint.RetainedProgress(worked)
				t.doneMI += retained.Seconds() * speed
				if t.doneMI > t.Task.Size {
					t.doneMI = t.Task.Size
				}
				if worked > retained {
					lost = worked - retained
					e.metrics.LostWork += lost
				}
			}
			e.closeBurstSpans(t, k, now, CauseCrash, lost)
		}
		t.resumePenalty = e.cfg.Checkpoint.ResumePenalty()
		t.attemptFailAt = 0
		e.metrics.FailureEvictions++
		if e.cfg.Observer != nil {
			e.cfg.Observer.TaskEvicted(now, t, k)
		}
		e.retryOrFail(k, t, now, RetryCrashEviction)
	}
	queued := append([]*TaskState(nil), ns.queue...)
	ns.queue = ns.queue[:0]
	for _, t := range queued {
		if t.Job.failed {
			continue
		}
		e.evictToPending(t, k, now)
	}
}

// evictToPending returns a queued task to the unassigned pool (no retry
// charge: the task never held the slot, so nothing of it was lost).
func (e *Engine) evictToPending(t *TaskState, k cluster.NodeID, now units.Time) {
	e.closeWaitSpan(t, now)
	t.Phase = Pending
	t.Node = -1
	t.Job.assigned--
	e.metrics.FailureEvictions++
	if e.cfg.Observer != nil {
		e.cfg.Observer.TaskEvicted(now, t, k)
	}
}

// recoverNode brings a failed node back into service.
func (e *Engine) recoverNode(k cluster.NodeID, now units.Time) {
	ns := e.nodes[k]
	if !ns.down {
		return
	}
	ns.down = false
	if e.cfg.Observer != nil {
		e.cfg.Observer.NodeRecovered(now, k)
	}
	e.tryFill(k, now)
}

// setSpeedFactor re-paces a node: running tasks (and speculative copies)
// bank the progress they made at the old speed and their completions are
// rescheduled at the new one. A planned transient fault keeps its
// absolute time — scheduleAttempt re-arms it against the new finish.
func (e *Engine) setSpeedFactor(k cluster.NodeID, factor float64, now units.Time) {
	ns := e.nodes[k]
	if ns.down || ns.speedFactor == factor {
		ns.speedFactor = factor
		return
	}
	oldSpeed := e.speedOf(k)
	for _, t := range ns.running {
		if t.blocked || !t.hasDoneEv {
			continue
		}
		if now > t.effStart {
			t.doneMI += (now - t.effStart).Seconds() * oldSpeed
			if t.doneMI > t.Task.Size {
				t.doneMI = t.Task.Size
			}
		}
		// The re-pace banks the burst so far (nothing is lost) and, below,
		// restarts the burst at now with no penalty — close its spans here
		// so the next burst's spans open cleanly at now.
		e.closeBurstSpans(t, k, now, CauseNone, 0)
		e.q.Cancel(t.doneEv)
		t.hasDoneEv = false
	}
	for _, br := range ns.spec {
		if !br.hasEv {
			continue
		}
		if now > br.effStart {
			br.done += (now - br.effStart).Seconds() * oldSpeed
			br.effStart = now
		}
		e.q.Cancel(br.ev)
		br.hasEv = false
	}
	ns.speedFactor = factor
	newSpeed := e.speedOf(k)
	// Reschedule in deterministic order.
	resched := append([]*TaskState(nil), ns.running...)
	sort.Slice(resched, func(a, b int) bool { return lessTaskState(resched[a], resched[b]) })
	for _, t := range resched {
		if t.blocked {
			continue
		}
		t.effStart = now
		fin := units.Forever
		if newSpeed > 0 {
			fin = addTime(now, t.RemainingTime(newSpeed))
		}
		e.scheduleAttempt(k, t, fin, now)
	}
	respec := append([]*backupRun(nil), ns.spec...)
	sort.Slice(respec, func(a, b int) bool { return lessTaskState(respec[a].task, respec[b].task) })
	for _, br := range respec {
		start := units.Max(br.effStart, now)
		fin := units.Forever
		if newSpeed > 0 {
			fin = addTime(start, remainingTimeMI(br.task.Task.Size-br.base-br.done, newSpeed))
		}
		e.armBackupComplete(br, fin)
	}
}

// addTime sums a time and a duration, saturating at Forever.
func addTime(a, b units.Time) units.Time {
	if b >= units.Forever-a {
		return units.Forever
	}
	return a + b
}

func lessTaskState(a, b *TaskState) bool {
	if a.Task.Job != b.Task.Job {
		return a.Task.Job < b.Task.Job
	}
	return a.Task.ID < b.Task.ID
}
