package sim

import (
	"sort"

	"dsp/internal/cluster"
	"dsp/internal/eventq"
	"dsp/internal/units"
)

// The paper's future work (Section VI) names fault tolerance — handling
// node failures/crashes and stragglers — as the next extension of DSP.
// This file implements both as first-class simulation events:
//
//   - NodeFailure crashes a node at a point in time. Everything running
//     there is evicted (progress rolls back to the last checkpoint, as a
//     crash loses the uncheckpointed state) and everything assigned to
//     its queue returns to the Pending pool, so the next offline
//     scheduling period re-places the work on surviving nodes. An
//     optional recovery brings the node back.
//   - Straggler degrades a node's effective speed by a factor for a
//     window, re-pacing the tasks running there.

// NodeFailure describes one crash (and optional recovery).
type NodeFailure struct {
	Node cluster.NodeID
	// At is when the node fails.
	At units.Time
	// RecoverAfter is how long until the node returns; zero or negative
	// means it never does.
	RecoverAfter units.Time
}

// Straggler describes a transient slowdown of one node.
type Straggler struct {
	Node cluster.NodeID
	// At is when the slowdown begins.
	At units.Time
	// Factor scales the node's speed (e.g. 0.1 = 10× slower). Must be
	// positive.
	Factor float64
	// Duration is how long the slowdown lasts; zero or negative means it
	// persists to the end of the run.
	Duration units.Time
}

// FaultPlan is the set of injected faults for a run.
type FaultPlan struct {
	Failures   []NodeFailure
	Stragglers []Straggler
}

// installFaults schedules the plan's events.
func (e *Engine) installFaults(plan *FaultPlan) {
	if plan == nil {
		return
	}
	for _, f := range plan.Failures {
		f := f
		if int(f.Node) < 0 || int(f.Node) >= len(e.nodes) {
			continue
		}
		e.q.At(f.At, eventq.Func(func(now units.Time) {
			e.failNode(f.Node, now)
		}))
		if f.RecoverAfter > 0 {
			e.q.At(f.At+f.RecoverAfter, eventq.Func(func(now units.Time) {
				e.recoverNode(f.Node, now)
			}))
		}
	}
	for _, s := range plan.Stragglers {
		s := s
		if int(s.Node) < 0 || int(s.Node) >= len(e.nodes) || s.Factor <= 0 {
			continue
		}
		e.q.At(s.At, eventq.Func(func(now units.Time) {
			e.setSpeedFactor(s.Node, s.Factor, now)
		}))
		if s.Duration > 0 {
			e.q.At(s.At+s.Duration, eventq.Func(func(now units.Time) {
				e.setSpeedFactor(s.Node, 1, now)
			}))
		}
	}
}

// speedOf returns the node's current effective speed (profile speed ×
// straggler factor; zero while the node is down).
func (e *Engine) speedOf(k cluster.NodeID) float64 {
	ns := e.nodes[k]
	if ns.down {
		return 0
	}
	return e.cfg.Cluster.Speed(k) * ns.speedFactor
}

// failNode crashes a node: running tasks are evicted with crash
// semantics (state since the last checkpoint is lost; the checkpoint
// itself survives in shared storage) and all assigned work returns to
// Pending for rescheduling elsewhere.
func (e *Engine) failNode(k cluster.NodeID, now units.Time) {
	ns := e.nodes[k]
	if ns.down {
		return
	}
	e.metrics.Failures++
	speed := e.speedOf(k)
	ns.down = true
	if e.cfg.Observer != nil {
		e.cfg.Observer.NodeFailed(now, k)
	}

	running := append([]*TaskState(nil), ns.running...)
	ns.running = ns.running[:0]
	for _, t := range running {
		if t.hasDoneEv {
			e.q.Cancel(t.doneEv)
			t.hasDoneEv = false
		}
		if t.hasBlockEv {
			e.q.Cancel(t.blockEv)
			t.hasBlockEv = false
		}
		if t.blocked {
			e.metrics.BlockedSlotTime += now - t.effStart
			t.blocked = false
		} else if now > t.effStart {
			retained := e.cfg.Checkpoint.RetainedProgress(now - t.effStart)
			t.doneMI += retained.Seconds() * speed
			if t.doneMI > t.Task.Size {
				t.doneMI = t.Task.Size
			}
		}
		t.resumePenalty = e.cfg.Checkpoint.ResumePenalty()
		e.evictToPending(t, k, now)
	}
	queued := append([]*TaskState(nil), ns.queue...)
	ns.queue = ns.queue[:0]
	for _, t := range queued {
		e.evictToPending(t, k, now)
	}
}

// evictToPending returns a task to the unassigned pool.
func (e *Engine) evictToPending(t *TaskState, k cluster.NodeID, now units.Time) {
	t.Phase = Pending
	t.Node = -1
	t.Job.assigned--
	e.metrics.FailureEvictions++
	if e.cfg.Observer != nil {
		e.cfg.Observer.TaskEvicted(now, t, k)
	}
}

// recoverNode brings a failed node back into service.
func (e *Engine) recoverNode(k cluster.NodeID, now units.Time) {
	ns := e.nodes[k]
	if !ns.down {
		return
	}
	ns.down = false
	if e.cfg.Observer != nil {
		e.cfg.Observer.NodeRecovered(now, k)
	}
	e.tryFill(k, now)
}

// setSpeedFactor re-paces a node: running tasks bank the progress they
// made at the old speed and their completions are rescheduled at the new
// one.
func (e *Engine) setSpeedFactor(k cluster.NodeID, factor float64, now units.Time) {
	ns := e.nodes[k]
	if ns.down || ns.speedFactor == factor {
		ns.speedFactor = factor
		return
	}
	oldSpeed := e.speedOf(k)
	for _, t := range ns.running {
		if t.blocked || !t.hasDoneEv {
			continue
		}
		if now > t.effStart {
			t.doneMI += (now - t.effStart).Seconds() * oldSpeed
			if t.doneMI > t.Task.Size {
				t.doneMI = t.Task.Size
			}
		}
		e.q.Cancel(t.doneEv)
		t.hasDoneEv = false
	}
	ns.speedFactor = factor
	newSpeed := e.speedOf(k)
	// Reschedule in deterministic order.
	resched := append([]*TaskState(nil), ns.running...)
	sort.Slice(resched, func(a, b int) bool { return lessTaskState(resched[a], resched[b]) })
	for _, t := range resched {
		if t.blocked {
			continue
		}
		t.effStart = now
		var dur units.Time
		if newSpeed > 0 {
			dur = t.RemainingTime(newSpeed)
		} else {
			dur = units.Forever
		}
		tt := t
		t.doneEv = e.q.At(now+dur, eventq.Func(func(at units.Time) {
			e.complete(k, tt, at)
		}))
		t.hasDoneEv = true
	}
}

func lessTaskState(a, b *TaskState) bool {
	if a.Task.Job != b.Task.Job {
		return a.Task.Job < b.Task.Job
	}
	return a.Task.ID < b.Task.ID
}
