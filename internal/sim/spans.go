package sim

import (
	"fmt"

	"dsp/internal/cluster"
	"dsp/internal/prof"
	"dsp/internal/units"
)

// Execution spans: the engine tiles every task's lifetime — from its
// job's arrival to its completion — into contiguous, non-overlapping
// spans, each naming what the task was doing (waiting to be placed,
// queued on a node, paying a resume penalty, executing, …) and, where
// the time was forced by an interruption, which kind (preemption, task
// fault, node crash). Spans are emitted through the Observer as they
// close, so an attribution layer can reconstruct, for any completed
// job, exactly where its completion time went; the latency-attribution
// engine in internal/attrib consumes them to build per-job blame
// vectors that sum to the measured completion time.
//
// Invariant: for every task of a completed job, the emitted spans are
// gapless and non-overlapping over [job.Arrival, task.DoneAt]. Wait
// spans (pending/queued/suspend-wait/backoff) close when the task
// changes state; burst spans (overhead/service/lost) close lazily when
// the burst ends, because only then is the service/lost split known —
// a preempted or faulted burst rolls back to the last checkpoint, and
// the uncheckpointed remainder of the burst is "lost".

// SpanKind says what the task was doing for the span's duration.
type SpanKind uint8

// Span kinds.
const (
	// SpanPending: unassigned, waiting for the offline scheduler to
	// place it (includes pre-eligibility time while cross-job
	// prerequisites run; the attribution layer splits that off using
	// JobState.EligibleAt).
	SpanPending SpanKind = iota
	// SpanQueued: in a node's waiting queue, not yet started.
	SpanQueued
	// SpanSuspendWait: preempted and re-waiting in the node queue.
	SpanSuspendWait
	// SpanBackoff: a failed attempt waiting out its retry delay.
	SpanBackoff
	// SpanBlocked: blind-started, occupying a slot with unfinished
	// precedents (dependency-blind schedulers only).
	SpanBlocked
	// SpanOverhead: occupying a slot but paying a startup cost (resume
	// penalty after preemption/fault, remote-input penalty).
	SpanOverhead
	// SpanService: executing, and the progress survived (it was not
	// rolled back by the burst's end).
	SpanService
	// SpanLost: executing, but the burst ended in an interruption and
	// this trailing stretch rolled back to the last checkpoint. Cause
	// says what killed the burst.
	SpanLost
)

func (k SpanKind) String() string {
	switch k {
	case SpanPending:
		return "pending"
	case SpanQueued:
		return "queued"
	case SpanSuspendWait:
		return "suspend-wait"
	case SpanBackoff:
		return "backoff"
	case SpanBlocked:
		return "blocked"
	case SpanOverhead:
		return "overhead"
	case SpanService:
		return "service"
	case SpanLost:
		return "lost"
	default:
		return fmt.Sprintf("span(%d)", uint8(k))
	}
}

// SpanCause says which interruption forced the span, for kinds where
// that matters (SpanLost; CauseNone elsewhere).
type SpanCause uint8

// Span causes.
const (
	CauseNone SpanCause = iota
	// CausePreemption: the online policy suspended the burst.
	CausePreemption
	// CauseTaskFault: an injected transient task fault killed the burst.
	CauseTaskFault
	// CauseCrash: the node crashed under the burst.
	CauseCrash
)

func (c SpanCause) String() string {
	switch c {
	case CauseNone:
		return "none"
	case CausePreemption:
		return "preemption"
	case CauseTaskFault:
		return "task-fault"
	case CauseCrash:
		return "crash"
	default:
		return fmt.Sprintf("cause(%d)", uint8(c))
	}
}

// TaskSpan is one closed span of a task's timeline, delivered via
// Observer.TaskSpanClosed. Node is where the span was spent (-1 for
// off-node waits: pending and backoff).
type TaskSpan struct {
	Task  *TaskState
	Kind  SpanKind
	Cause SpanCause
	Node  cluster.NodeID
	Start units.Time
	End   units.Time
}

// emitSpan delivers one closed span to the observer. Zero-length spans
// are dropped: they carry no time and would only bloat the stream.
func (e *Engine) emitSpan(t *TaskState, kind SpanKind, cause SpanCause, node cluster.NodeID, start, end units.Time) {
	if e.cfg.Observer == nil || end <= start {
		return
	}
	e.cfg.Prof.Enter(prof.PhaseSpans)
	e.cfg.Observer.TaskSpanClosed(TaskSpan{
		Task: t, Kind: kind, Cause: cause, Node: node, Start: start, End: end,
	})
	e.cfg.Prof.Exit()
}

// closeWaitSpan closes the wait span the task has been in since
// spanStart, keyed off its current (not-yet-updated) phase, and opens
// the next span at now. Callers must invoke it before mutating Phase.
func (e *Engine) closeWaitSpan(t *TaskState, now units.Time) {
	switch t.Phase {
	case Pending:
		e.emitSpan(t, SpanPending, CauseNone, -1, t.spanStart, now)
	case Queued:
		e.emitSpan(t, SpanQueued, CauseNone, t.Node, t.spanStart, now)
	case Suspended:
		e.emitSpan(t, SpanSuspendWait, CausePreemption, t.Node, t.spanStart, now)
	case Backoff:
		e.emitSpan(t, SpanBackoff, CauseNone, -1, t.spanStart, now)
	}
	t.spanStart = now
}

// closeBurstSpans closes the spans of an execution burst ending at end:
// the startup penalty [spanStart, effStart) as overhead, then the
// executed stretch [effStart, end) split into surviving service and the
// rolled-back tail of lost work. cause is what ended the burst
// (CauseNone for a completion), lost how much of the executed stretch
// rolled back (worked − retained under the checkpoint policy). A burst
// interrupted mid-penalty (end ≤ effStart) is all overhead.
func (e *Engine) closeBurstSpans(t *TaskState, node cluster.NodeID, end units.Time, cause SpanCause, lost units.Time) {
	ohEnd := t.effStart
	if end < ohEnd {
		ohEnd = end
	}
	e.emitSpan(t, SpanOverhead, CauseNone, node, t.spanStart, ohEnd)
	if end > t.effStart {
		worked := end - t.effStart
		if lost < 0 {
			lost = 0
		}
		if lost > worked {
			lost = worked
		}
		e.emitSpan(t, SpanService, CauseNone, node, t.effStart, end-lost)
		e.emitSpan(t, SpanLost, cause, node, end-lost, end)
	}
	t.spanStart = end
}
