package sim

import (
	"sort"

	"dsp/internal/cluster"
	"dsp/internal/eventq"
	"dsp/internal/units"
)

// Speculative execution: every Interval the engine scans running tasks
// for stragglers — tasks whose live completion estimate is far worse
// than a fresh copy (restarted from the last checkpoint) would manage on
// the best idle node — and launches backup copies on idle slots, first
// copy wins. Candidates are prioritized by the DSP dependency score over
// their unfinished descendants, so the backups that unlock the most
// downstream work launch first: dependency awareness makes speculation
// cheaper to target (per Graphene and the paper's Section VI).

// Speculation configures the backup-copy policy. The zero value of each
// field selects the documented default.
type Speculation struct {
	// SpeedupThreshold is how many times faster a fresh copy must
	// promise to be before a backup launches (default 1.7; Hadoop-style
	// speculation uses comparable slack to avoid thrashing).
	SpeedupThreshold float64
	// MinRemaining skips tasks about to finish anyway (default 5s).
	MinRemaining units.Time
	// Gamma is the level coefficient of the dependency score used to
	// rank candidates (default 0.5, the paper's γ).
	Gamma float64
	// MaxBackups caps concurrently live backup copies (0 = limited only
	// by idle slots).
	MaxBackups int
	// Interval is how often the scan runs (0 = every Epoch).
	Interval units.Time
}

func (s *Speculation) fillDefaults(epoch units.Time) {
	if s.SpeedupThreshold <= 0 {
		s.SpeedupThreshold = 1.7
	}
	if s.MinRemaining <= 0 {
		s.MinRemaining = 5 * units.Second
	}
	if s.Gamma <= 0 {
		s.Gamma = 0.5
	}
	if s.Interval <= 0 {
		s.Interval = epoch
	}
}

// backupRun is one live speculative copy. It occupies a slot on node but
// is not a TaskState: it has its own progress (from the primary's last
// checkpoint at launch) and its own completion event.
type backupRun struct {
	task *TaskState
	node cluster.NodeID
	// base is the checkpointed MI inherited at launch; done is MI this
	// copy has banked since (re-pacing on straggler windows).
	base, done float64
	// effStart is when useful work (re)started after the resume penalty.
	effStart units.Time
	// launched is the slot-occupancy start, for waste accounting.
	launched units.Time
	ev       eventq.Handle
	hasEv    bool
}

// specTick scans for stragglers and launches backups on idle slots.
func (e *Engine) specTick(now units.Time) {
	sp := e.cfg.Speculation
	if e.jobsRemaining <= 0 && !e.streamingLive() {
		return
	}
	defer e.q.AfterTag(sp.Interval, eventq.Tag{Kind: evSpecTick}, eventq.Func(e.specTick))

	// Idle capacity: free slots on live, non-blacklisted nodes.
	freeSlots := make([]int, len(e.nodes))
	bestSpeed := make([]float64, len(e.nodes))
	anyFree := false
	for k, ns := range e.nodes {
		if ns.down || e.isBlacklisted(cluster.NodeID(k), now) {
			continue
		}
		free := ns.node.Slots - len(ns.running) - len(ns.spec)
		if free <= 0 {
			continue
		}
		freeSlots[k] = free
		bestSpeed[k] = e.speedOf(cluster.NodeID(k))
		anyFree = true
	}
	if !anyFree {
		return
	}

	type candidate struct {
		t     *TaskState
		score float64
	}
	var cands []candidate
	scores := map[*TaskState]float64{}
	pen := e.cfg.Checkpoint.ResumePenalty()
	for k, ns := range e.nodes {
		if ns.down {
			continue
		}
		speed := e.speedOf(cluster.NodeID(k))
		for _, t := range ns.running {
			if t.blocked || t.backup != nil || t.Job.failed {
				continue
			}
			curFin := t.LiveRemainingTime(now, speed)
			if curFin < sp.MinRemaining {
				continue
			}
			// Best finish a fresh copy could promise anywhere idle.
			best := units.Forever
			for alt := range e.nodes {
				if freeSlots[alt] <= 0 || alt == k {
					continue
				}
				if fin := pen + t.RemainingTime(bestSpeed[alt]); fin < best {
					best = fin
				}
			}
			if best == units.Forever {
				continue
			}
			if float64(curFin) <= sp.SpeedupThreshold*float64(best) {
				continue
			}
			cands = append(cands, candidate{t: t, score: e.liveDepScore(t, sp.Gamma, scores)})
		}
	}
	if len(cands) == 0 {
		return
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].score != cands[b].score {
			return cands[a].score > cands[b].score
		}
		return lessTaskState(cands[a].t, cands[b].t)
	})

	for _, c := range cands {
		if sp.MaxBackups > 0 && e.activeBackups >= sp.MaxBackups {
			return
		}
		// Fastest idle node that is not the primary's.
		best, bestK := 0.0, -1
		for alt := range e.nodes {
			if freeSlots[alt] <= 0 || cluster.NodeID(alt) == c.t.Node {
				continue
			}
			if bestSpeed[alt] > best {
				best, bestK = bestSpeed[alt], alt
			}
		}
		if bestK < 0 {
			return
		}
		freeSlots[bestK]--
		e.launchBackup(c.t, cluster.NodeID(bestK), now)
	}
}

// liveDepScore is the DSP dependency score restricted to unfinished
// work: 1 + Σ over non-Done children of (γ+1)·score(child). It measures
// how much downstream execution this task's completion unlocks now.
func (e *Engine) liveDepScore(t *TaskState, gamma float64, memo map[*TaskState]float64) float64 {
	if s, ok := memo[t]; ok {
		return s
	}
	memo[t] = 1 // cycle guard; DAGs are acyclic so this never surfaces
	s := 1.0
	for _, c := range t.Job.Dag.Children(t.Task.ID) {
		cs := t.Job.Tasks[c]
		if cs.Phase == Done {
			continue
		}
		s += (gamma + 1) * e.liveDepScore(cs, gamma, memo)
	}
	memo[t] = s
	return s
}

// launchBackup starts a speculative copy of t on node k, resuming from
// the primary's last checkpoint.
func (e *Engine) launchBackup(t *TaskState, k cluster.NodeID, now units.Time) {
	ns := e.nodes[k]
	br := &backupRun{task: t, node: k, base: t.doneMI, launched: now}
	pen := e.cfg.Checkpoint.ResumePenalty()
	br.effStart = now + pen
	speed := e.speedOf(k)
	fin := br.effStart + remainingTimeMI(t.Task.Size-br.base, speed)
	e.armBackupComplete(br, fin)
	ns.spec = append(ns.spec, br)
	t.backup = br
	e.activeBackups++
	e.metrics.Speculations++
	if o := e.cfg.Observer; o != nil {
		o.SpeculationLaunched(now, t, t.Node, k)
	}
}

// armBackupComplete schedules a speculative copy's completion at
// absolute time at. Shared by launchBackup, straggler re-pacing and
// snapshot restore.
func (e *Engine) armBackupComplete(br *backupRun, at units.Time) {
	br.ev = e.q.AtTag(at, taskTag(evBackupComplete, br.task), eventq.Func(func(at units.Time) {
		e.backupComplete(br, at)
	}))
	br.hasEv = true
}

// backupComplete is first-copy-wins in the backup's favour: the primary
// attempt — wherever it is in its lifecycle — is withdrawn and its burst
// written off as speculative waste, then the task completes on the
// backup's node.
func (e *Engine) backupComplete(br *backupRun, now units.Time) {
	br.hasEv = false
	t := br.task
	e.removeBackup(br)
	t.backup = nil
	loser := t.Node
	switch t.Phase {
	case Running:
		ns := e.nodes[t.Node]
		for i, r := range ns.running {
			if r == t {
				ns.running = append(ns.running[:i], ns.running[i+1:]...)
				break
			}
		}
		if t.hasDoneEv {
			e.q.Cancel(t.doneEv)
			t.hasDoneEv = false
		}
		if t.hasBlockEv {
			e.q.Cancel(t.blockEv)
			t.hasBlockEv = false
		}
		if t.blocked {
			e.metrics.BlockedSlotTime += now - t.effStart
			e.emitSpan(t, SpanBlocked, CauseNone, t.Node, t.spanStart, now)
			t.spanStart = now
			t.blocked = false
		} else {
			if now > t.effStart {
				e.metrics.SpeculativeWaste += now - t.effStart
			}
			// The primary's burst is written off as waste for slot
			// accounting, but the wall-clock is covered by the winning
			// copy: the stretch counts as service in the task's timeline.
			e.closeBurstSpans(t, t.Node, now, CauseNone, 0)
		}
	case Queued, Suspended, Pending:
		e.closeWaitSpan(t, now)
		if t.Phase == Queued || t.Phase == Suspended {
			e.dequeue(t.Node, t)
		}
	case Backoff:
		if t.hasRetryEv {
			e.q.Cancel(t.retryEv)
			t.hasRetryEv = false
		}
		e.closeWaitSpan(t, now)
	}
	e.metrics.SpeculationWins++
	if o := e.cfg.Observer; o != nil {
		o.SpeculationWon(now, t, br.node, loser)
	}
	t.Node = br.node
	e.finish(br.node, t, now)
	if int(loser) >= 0 && loser != br.node {
		e.tryFill(loser, now)
	}
}

// cancelBackup abandons a speculative copy (primary finished first, the
// backup's node crashed, or the job failed) and frees its slot.
func (e *Engine) cancelBackup(br *backupRun, now units.Time) {
	if br.hasEv {
		e.q.Cancel(br.ev)
		br.hasEv = false
	}
	e.removeBackup(br)
	br.task.backup = nil
	e.metrics.SpeculationCancels++
	if now > br.launched {
		e.metrics.SpeculativeWaste += now - br.launched
	}
	if o := e.cfg.Observer; o != nil {
		o.SpeculationCancelled(now, br.task, br.node)
	}
	if !e.nodes[br.node].down {
		e.tryFill(br.node, now)
	}
}

// removeBackup detaches br from its node's slot accounting (idempotent).
func (e *Engine) removeBackup(br *backupRun) {
	ns := e.nodes[br.node]
	for i, b := range ns.spec {
		if b == br {
			ns.spec = append(ns.spec[:i], ns.spec[i+1:]...)
			e.activeBackups--
			return
		}
	}
}

// remainingTimeMI is RemainingTime for a raw MI amount.
func remainingTimeMI(mi, speedMIPS float64) units.Time {
	if mi < 0 {
		mi = 0
	}
	if speedMIPS <= 0 {
		return units.Forever
	}
	return units.FromSeconds(mi / speedMIPS)
}
