package sim

import (
	"fmt"
	"io"

	"dsp/internal/cluster"
	"dsp/internal/units"
)

// Verdict classifies the outcome of one preemption decision — the
// reasoning behind Algorithm 1 that a PreemptionConsidered event makes
// visible.
type Verdict uint8

// Preemption decision outcomes.
const (
	// VerdictAccepted: conditions C1/C2 (and PP, when enabled) held and
	// the victim was suspended for the candidate.
	VerdictAccepted Verdict = iota
	// VerdictSuppressedByPP: the candidate out-prioritized the victim,
	// but the normalized-priority filter judged the gain too small to
	// cover the context-switch cost, so no preemption happened.
	VerdictSuppressedByPP
	// VerdictUrgentOverride: an urgent task (allowable wait ≤ ε or
	// waiting ≥ τ) preempted unconditionally, bypassing C1 and PP.
	VerdictUrgentOverride
	// VerdictDisorder: the policy ordered a starter whose precedents had
	// not finished; the node refused the eviction and the attempt was
	// counted as a dependency disorder.
	VerdictDisorder
)

func (v Verdict) String() string {
	switch v {
	case VerdictAccepted:
		return "accepted"
	case VerdictSuppressedByPP:
		return "suppressed-by-PP"
	case VerdictUrgentOverride:
		return "urgent-override"
	case VerdictDisorder:
		return "disorder"
	default:
		return fmt.Sprintf("verdict(%d)", uint8(v))
	}
}

// PreemptionDecision captures one considered preemption: who wanted the
// slot, who would have yielded it, the priorities that drove the choice,
// and the verdict. Accepted and urgent-override decisions correspond 1:1
// with Result.Preemptions; disorder decisions with Result.Disorders.
type PreemptionDecision struct {
	Node cluster.NodeID
	// Candidate is the waiting task that wanted the slot.
	Candidate *TaskState
	// Victim is the running task examined (never nil).
	Victim *TaskState
	// CandidatePriority and VictimPriority are the policy's priority
	// values at decision time (zero for policies that do not report them).
	CandidatePriority float64
	VictimPriority    float64
	// Gain is the priority difference CandidatePriority−VictimPriority,
	// the throughput benefit proxy the PP filter weighs.
	Gain float64
	// Overhead is the PP threshold ρ·P̄ the gain had to exceed (zero when
	// the filter was disabled or not applicable).
	Overhead float64
	// Urgent marks decisions taken in the urgent pass (ε/τ trigger).
	Urgent  bool
	Verdict Verdict
}

// RequeueReason says why a task went back to its node queue outside the
// normal preemption path.
type RequeueReason uint8

// Requeue reasons.
const (
	// RequeueBlindTimeout: a blind-started task spent BlindTimeout in a
	// slot without its inputs appearing and was demoted back to the queue.
	RequeueBlindTimeout RequeueReason = iota
)

func (r RequeueReason) String() string {
	switch r {
	case RequeueBlindTimeout:
		return "blind-timeout"
	default:
		return fmt.Sprintf("requeue(%d)", uint8(r))
	}
}

// RetryReason says why an execution attempt failed and was charged
// against the task's retry budget.
type RetryReason uint8

// Retry reasons.
const (
	// RetryTaskFault: the attempt hit an injected transient task fault.
	RetryTaskFault RetryReason = iota
	// RetryCrashEviction: the node crashed under the running attempt.
	RetryCrashEviction
)

func (r RetryReason) String() string {
	switch r {
	case RetryTaskFault:
		return "task-fault"
	case RetryCrashEviction:
		return "crash-eviction"
	default:
		return fmt.Sprintf("retry(%d)", uint8(r))
	}
}

// SolverTier names a rung of the offline scheduler's degradation ladder,
// from the exact Section III ILP at the top down to arrival-order FIFO
// placement at the bottom.
type SolverTier uint8

// Degradation-ladder rungs.
const (
	// TierILPExact: the Section III ILP solved to proven optimality.
	TierILPExact SolverTier = iota
	// TierILPIncumbent: the ILP's best incumbent, used after a work
	// budget ran out before optimality was proven.
	TierILPIncumbent
	// TierList: the dependency-aware list/HEFT heuristic.
	TierList
	// TierFIFO: arrival-order round-robin placement, the last resort
	// under extreme overload.
	TierFIFO
)

func (t SolverTier) String() string {
	switch t {
	case TierILPExact:
		return "ilp-exact"
	case TierILPIncumbent:
		return "ilp-incumbent"
	case TierList:
		return "list"
	case TierFIFO:
		return "fifo"
	default:
		return fmt.Sprintf("tier(%d)", uint8(t))
	}
}

// SolverDegradation describes one downgrade along the scheduler's ladder:
// which rung was attempted, which one actually produced the placement,
// and why.
type SolverDegradation struct {
	From, To SolverTier
	// Reason is a short machine-readable cause: a solver status
	// ("node-limit", "aborted", "infeasible"), "model-too-large" for the
	// ILP size cutoff, "no-usable-machines", or
	// "pending-tasks-over-limit" for the FIFO demotion.
	Reason string
	// PendingTasks is the instance size (unassigned tasks) being placed.
	PendingTasks int
	// Nodes is the number of branch-and-bound nodes explored before the
	// downgrade (0 when no exact solve ran).
	Nodes int
}

// ShedReason says why admission control rejected a job at arrival.
type ShedReason uint8

// Shed reasons.
const (
	// ShedQueueFull: admitting the job would push the pending-task
	// backlog past Admission.MaxPendingTasks.
	ShedQueueFull ShedReason = iota
	// ShedDeadlineInfeasible: the job's critical path alone, run
	// back-to-back on the fastest node, already overshoots its deadline —
	// it provably cannot meet it, so running it would only waste slots.
	ShedDeadlineInfeasible
	// ShedDependency: a job this one waits for was itself shed, so this
	// one can never become eligible.
	ShedDependency
)

func (r ShedReason) String() string {
	switch r {
	case ShedQueueFull:
		return "queue-full"
	case ShedDeadlineInfeasible:
		return "deadline-infeasible"
	case ShedDependency:
		return "dependency-shed"
	default:
		return fmt.Sprintf("shed(%d)", uint8(r))
	}
}

// InvariantViolation describes one inconsistency the runtime auditor
// caught in the engine's own state (see Config.AuditInvariants).
type InvariantViolation struct {
	// Check names the violated invariant: "slot-capacity",
	// "down-node-running", "duplicate-task", "phase-running",
	// "phase-queued", "node-mismatch", "dependency-order", "queue-order",
	// or "progress-overflow".
	Check string
	// Node is the node involved (-1 when not node-specific).
	Node cluster.NodeID
	// Task is the offending task (nil for node-level violations).
	Task *TaskState
	// Detail is a human-readable description of what was found.
	Detail string
}

// Observer receives simulation lifecycle and decision events; attach one
// via Config.Observer to trace a run (debugging, visualization, custom
// metrics, audit logs). All callbacks run synchronously inside the event
// loop — keep them cheap and do not mutate simulator state. Embed
// NopObserver to implement only the events you care about.
type Observer interface {
	// TaskStarted fires when a task occupies a slot (including resume
	// after preemption and blind starts of blocked tasks).
	TaskStarted(now units.Time, t *TaskState, node cluster.NodeID)
	// TaskPreempted fires when a running task is suspended.
	TaskPreempted(now units.Time, victim, starter *TaskState, node cluster.NodeID)
	// TaskCompleted fires when a task finishes.
	TaskCompleted(now units.Time, t *TaskState, node cluster.NodeID)
	// JobCompleted fires when a job's last task finishes.
	JobCompleted(now units.Time, j *JobState)
	// EpochStarted fires before the online preemption policy runs;
	// epochs count from 1.
	EpochStarted(now units.Time, epoch int)
	// EpochEnded fires after the epoch's actions were applied and free
	// slots refilled. The view is valid only for the duration of the
	// callback and gives read access for per-epoch sampling (queue
	// depths, busy slots, …).
	EpochEnded(now units.Time, epoch int, v *View)
	// PreemptionConsidered fires for every preemption decision with a
	// definite outcome: accepted, urgent-override and disorder verdicts
	// come from the engine as actions are applied; suppressed-by-PP
	// verdicts come from the DSP policy as it evaluates the filter.
	PreemptionConsidered(now units.Time, d PreemptionDecision)
	// DisorderDetected fires when a policy ordered a starter whose
	// precedents have not finished (alongside the disorder-verdict
	// PreemptionConsidered event).
	DisorderDetected(now units.Time, starter, victim *TaskState, node cluster.NodeID)
	// NodeFailed and NodeRecovered fire on injected fault-plan events.
	NodeFailed(now units.Time, node cluster.NodeID)
	NodeRecovered(now units.Time, node cluster.NodeID)
	// TaskEvicted fires for every task (running or queued) a node crash
	// threw back into the pending pool; node is where it was evicted from.
	TaskEvicted(now units.Time, t *TaskState, node cluster.NodeID)
	// TaskRequeued fires when a task re-enters its node queue outside the
	// preemption path (see RequeueReason).
	TaskRequeued(now units.Time, t *TaskState, node cluster.NodeID, reason RequeueReason)
	// TaskRetried fires when a failed execution attempt is charged
	// against the task's retry budget and the task is re-admitted
	// (directly to Pending, or to Backoff first); attempt counts failed
	// attempts so far and node is where the attempt died.
	TaskRetried(now units.Time, t *TaskState, node cluster.NodeID, attempt int, reason RetryReason)
	// TaskFailedTerminally fires when a task exhausts its retry budget;
	// its job (and any job transitively waiting on it) fails with it.
	TaskFailedTerminally(now units.Time, t *TaskState, node cluster.NodeID)
	// SpeculationLaunched fires when a backup copy of a straggling task
	// starts on an idle slot; primary is where the original runs.
	SpeculationLaunched(now units.Time, t *TaskState, primary, backup cluster.NodeID)
	// SpeculationWon fires when the backup copy finishes first; the
	// primary attempt on loser is cancelled.
	SpeculationWon(now units.Time, t *TaskState, winner, loser cluster.NodeID)
	// SpeculationCancelled fires when a backup copy is abandoned (the
	// primary finished first, its node crashed, or the job failed).
	SpeculationCancelled(now units.Time, t *TaskState, backup cluster.NodeID)
	// NodeBlacklisted fires when a node's decayed failure penalty crosses
	// the blacklist threshold (rising edge only).
	NodeBlacklisted(now units.Time, node cluster.NodeID)
	// SolverDegraded fires when the offline scheduler falls down its
	// degradation ladder (exact ILP → anytime incumbent → list → FIFO)
	// instead of placing work with the tier it attempted.
	SolverDegraded(now units.Time, d SolverDegradation)
	// JobShed fires when admission control rejects a job at arrival; the
	// job counts as shed, not failed or deadline-missed. now is the job's
	// arrival (ingestion) timestamp — under streaming ingestion the
	// decision is evaluated at the period boundary that drained the job,
	// but the event carries the arrival instant so audit streams and
	// blame attribution line up with wall-clock ingestion.
	JobShed(now units.Time, j *JobState, reason ShedReason)
	// JobCancelled fires when an explicit cancel request (streaming
	// ingestion) withdraws a live job. The job's remaining tasks are
	// withdrawn as by a terminal failure, and jobs waiting on it fail
	// with it; for accounting the job counts under JobsFailed, with
	// Result.JobsCancelled recording the cause.
	JobCancelled(now units.Time, j *JobState)
	// InvariantViolated fires when the runtime auditor catches the engine
	// in an inconsistent state; the offending node or task is quarantined
	// rather than allowed to keep computing garbage.
	InvariantViolated(now units.Time, v InvariantViolation)
	// TaskSpanClosed fires when one span of a task's timeline closes
	// (see TaskSpan). For every task of a completed job the spans are
	// gapless and non-overlapping over [job arrival, task completion];
	// the attribution layer relies on this tiling.
	TaskSpanClosed(s TaskSpan)
	// SnapshotTaken fires just before the durability sink captures a
	// periodic crash-recovery snapshot at the end of a scheduling period
	// (see Config.Durability); periods count from 1.
	SnapshotTaken(now units.Time, period int)
	// RecoveryStarted fires once on a resumed run, before the
	// deterministic roll-forward from the restored snapshot begins;
	// period is the snapshot's scheduling period.
	RecoveryStarted(now units.Time, period int)
	// Replayed fires on a resumed run when the roll-forward has verified
	// every surviving write-ahead-log record — the run has reached the
	// crash point and switches the log back to append mode.
	Replayed(now units.Time, records int)
}

// NopObserver implements Observer with no-ops. Embed it to write
// observers that handle only a subset of events.
type NopObserver struct{}

// TaskStarted implements Observer.
func (NopObserver) TaskStarted(units.Time, *TaskState, cluster.NodeID) {}

// TaskPreempted implements Observer.
func (NopObserver) TaskPreempted(units.Time, *TaskState, *TaskState, cluster.NodeID) {}

// TaskCompleted implements Observer.
func (NopObserver) TaskCompleted(units.Time, *TaskState, cluster.NodeID) {}

// JobCompleted implements Observer.
func (NopObserver) JobCompleted(units.Time, *JobState) {}

// EpochStarted implements Observer.
func (NopObserver) EpochStarted(units.Time, int) {}

// EpochEnded implements Observer.
func (NopObserver) EpochEnded(units.Time, int, *View) {}

// PreemptionConsidered implements Observer.
func (NopObserver) PreemptionConsidered(units.Time, PreemptionDecision) {}

// DisorderDetected implements Observer.
func (NopObserver) DisorderDetected(units.Time, *TaskState, *TaskState, cluster.NodeID) {}

// NodeFailed implements Observer.
func (NopObserver) NodeFailed(units.Time, cluster.NodeID) {}

// NodeRecovered implements Observer.
func (NopObserver) NodeRecovered(units.Time, cluster.NodeID) {}

// TaskEvicted implements Observer.
func (NopObserver) TaskEvicted(units.Time, *TaskState, cluster.NodeID) {}

// TaskRequeued implements Observer.
func (NopObserver) TaskRequeued(units.Time, *TaskState, cluster.NodeID, RequeueReason) {}

// TaskRetried implements Observer.
func (NopObserver) TaskRetried(units.Time, *TaskState, cluster.NodeID, int, RetryReason) {}

// TaskFailedTerminally implements Observer.
func (NopObserver) TaskFailedTerminally(units.Time, *TaskState, cluster.NodeID) {}

// SpeculationLaunched implements Observer.
func (NopObserver) SpeculationLaunched(units.Time, *TaskState, cluster.NodeID, cluster.NodeID) {}

// SpeculationWon implements Observer.
func (NopObserver) SpeculationWon(units.Time, *TaskState, cluster.NodeID, cluster.NodeID) {}

// SpeculationCancelled implements Observer.
func (NopObserver) SpeculationCancelled(units.Time, *TaskState, cluster.NodeID) {}

// NodeBlacklisted implements Observer.
func (NopObserver) NodeBlacklisted(units.Time, cluster.NodeID) {}

// SolverDegraded implements Observer.
func (NopObserver) SolverDegraded(units.Time, SolverDegradation) {}

// JobShed implements Observer.
func (NopObserver) JobShed(units.Time, *JobState, ShedReason) {}

// JobCancelled implements Observer.
func (NopObserver) JobCancelled(units.Time, *JobState) {}

// InvariantViolated implements Observer.
func (NopObserver) InvariantViolated(units.Time, InvariantViolation) {}

// TaskSpanClosed implements Observer.
func (NopObserver) TaskSpanClosed(TaskSpan) {}

// SnapshotTaken implements Observer.
func (NopObserver) SnapshotTaken(units.Time, int) {}

// RecoveryStarted implements Observer.
func (NopObserver) RecoveryStarted(units.Time, int) {}

// Replayed implements Observer.
func (NopObserver) Replayed(units.Time, int) {}

// Observers composes multiple observers; nil entries are skipped, so call
// sites can build the slice from optional components without filtering.
type Observers []Observer

// TaskStarted implements Observer.
func (os Observers) TaskStarted(now units.Time, t *TaskState, node cluster.NodeID) {
	for _, o := range os {
		if o != nil {
			o.TaskStarted(now, t, node)
		}
	}
}

// TaskPreempted implements Observer.
func (os Observers) TaskPreempted(now units.Time, victim, starter *TaskState, node cluster.NodeID) {
	for _, o := range os {
		if o != nil {
			o.TaskPreempted(now, victim, starter, node)
		}
	}
}

// TaskCompleted implements Observer.
func (os Observers) TaskCompleted(now units.Time, t *TaskState, node cluster.NodeID) {
	for _, o := range os {
		if o != nil {
			o.TaskCompleted(now, t, node)
		}
	}
}

// JobCompleted implements Observer.
func (os Observers) JobCompleted(now units.Time, j *JobState) {
	for _, o := range os {
		if o != nil {
			o.JobCompleted(now, j)
		}
	}
}

// EpochStarted implements Observer.
func (os Observers) EpochStarted(now units.Time, epoch int) {
	for _, o := range os {
		if o != nil {
			o.EpochStarted(now, epoch)
		}
	}
}

// EpochEnded implements Observer.
func (os Observers) EpochEnded(now units.Time, epoch int, v *View) {
	for _, o := range os {
		if o != nil {
			o.EpochEnded(now, epoch, v)
		}
	}
}

// PreemptionConsidered implements Observer.
func (os Observers) PreemptionConsidered(now units.Time, d PreemptionDecision) {
	for _, o := range os {
		if o != nil {
			o.PreemptionConsidered(now, d)
		}
	}
}

// DisorderDetected implements Observer.
func (os Observers) DisorderDetected(now units.Time, starter, victim *TaskState, node cluster.NodeID) {
	for _, o := range os {
		if o != nil {
			o.DisorderDetected(now, starter, victim, node)
		}
	}
}

// NodeFailed implements Observer.
func (os Observers) NodeFailed(now units.Time, node cluster.NodeID) {
	for _, o := range os {
		if o != nil {
			o.NodeFailed(now, node)
		}
	}
}

// NodeRecovered implements Observer.
func (os Observers) NodeRecovered(now units.Time, node cluster.NodeID) {
	for _, o := range os {
		if o != nil {
			o.NodeRecovered(now, node)
		}
	}
}

// TaskEvicted implements Observer.
func (os Observers) TaskEvicted(now units.Time, t *TaskState, node cluster.NodeID) {
	for _, o := range os {
		if o != nil {
			o.TaskEvicted(now, t, node)
		}
	}
}

// TaskRequeued implements Observer.
func (os Observers) TaskRequeued(now units.Time, t *TaskState, node cluster.NodeID, reason RequeueReason) {
	for _, o := range os {
		if o != nil {
			o.TaskRequeued(now, t, node, reason)
		}
	}
}

// TaskRetried implements Observer.
func (os Observers) TaskRetried(now units.Time, t *TaskState, node cluster.NodeID, attempt int, reason RetryReason) {
	for _, o := range os {
		if o != nil {
			o.TaskRetried(now, t, node, attempt, reason)
		}
	}
}

// TaskFailedTerminally implements Observer.
func (os Observers) TaskFailedTerminally(now units.Time, t *TaskState, node cluster.NodeID) {
	for _, o := range os {
		if o != nil {
			o.TaskFailedTerminally(now, t, node)
		}
	}
}

// SpeculationLaunched implements Observer.
func (os Observers) SpeculationLaunched(now units.Time, t *TaskState, primary, backup cluster.NodeID) {
	for _, o := range os {
		if o != nil {
			o.SpeculationLaunched(now, t, primary, backup)
		}
	}
}

// SpeculationWon implements Observer.
func (os Observers) SpeculationWon(now units.Time, t *TaskState, winner, loser cluster.NodeID) {
	for _, o := range os {
		if o != nil {
			o.SpeculationWon(now, t, winner, loser)
		}
	}
}

// SpeculationCancelled implements Observer.
func (os Observers) SpeculationCancelled(now units.Time, t *TaskState, backup cluster.NodeID) {
	for _, o := range os {
		if o != nil {
			o.SpeculationCancelled(now, t, backup)
		}
	}
}

// NodeBlacklisted implements Observer.
func (os Observers) NodeBlacklisted(now units.Time, node cluster.NodeID) {
	for _, o := range os {
		if o != nil {
			o.NodeBlacklisted(now, node)
		}
	}
}

// SolverDegraded implements Observer.
func (os Observers) SolverDegraded(now units.Time, d SolverDegradation) {
	for _, o := range os {
		if o != nil {
			o.SolverDegraded(now, d)
		}
	}
}

// JobShed implements Observer.
func (os Observers) JobShed(now units.Time, j *JobState, reason ShedReason) {
	for _, o := range os {
		if o != nil {
			o.JobShed(now, j, reason)
		}
	}
}

// JobCancelled implements Observer.
func (os Observers) JobCancelled(now units.Time, j *JobState) {
	for _, o := range os {
		if o != nil {
			o.JobCancelled(now, j)
		}
	}
}

// InvariantViolated implements Observer.
func (os Observers) InvariantViolated(now units.Time, v InvariantViolation) {
	for _, o := range os {
		if o != nil {
			o.InvariantViolated(now, v)
		}
	}
}

// TaskSpanClosed implements Observer.
func (os Observers) TaskSpanClosed(s TaskSpan) {
	for _, o := range os {
		if o != nil {
			o.TaskSpanClosed(s)
		}
	}
}

// SnapshotTaken implements Observer.
func (os Observers) SnapshotTaken(now units.Time, period int) {
	for _, o := range os {
		if o != nil {
			o.SnapshotTaken(now, period)
		}
	}
}

// RecoveryStarted implements Observer.
func (os Observers) RecoveryStarted(now units.Time, period int) {
	for _, o := range os {
		if o != nil {
			o.RecoveryStarted(now, period)
		}
	}
}

// Replayed implements Observer.
func (os Observers) Replayed(now units.Time, records int) {
	for _, o := range os {
		if o != nil {
			o.Replayed(now, records)
		}
	}
}

// LogObserver writes one line per event, suitable for debugging small
// simulations.
type LogObserver struct {
	W io.Writer
	// Quiet suppresses the high-volume decision events (epochs and
	// preemption considerations), keeping only lifecycle lines.
	Quiet bool
}

// TaskStarted implements Observer.
func (l *LogObserver) TaskStarted(now units.Time, t *TaskState, node cluster.NodeID) {
	fmt.Fprintf(l.W, "%-12v start    %-8v node%d\n", now, t.Key(), node)
}

// TaskPreempted implements Observer.
func (l *LogObserver) TaskPreempted(now units.Time, victim, starter *TaskState, node cluster.NodeID) {
	skey := "-"
	if starter != nil {
		skey = starter.Key().String()
	}
	fmt.Fprintf(l.W, "%-12v preempt  %-8v by %-8s node%d\n", now, victim.Key(), skey, node)
}

// TaskCompleted implements Observer.
func (l *LogObserver) TaskCompleted(now units.Time, t *TaskState, node cluster.NodeID) {
	fmt.Fprintf(l.W, "%-12v complete %-8v node%d\n", now, t.Key(), node)
}

// JobCompleted implements Observer.
func (l *LogObserver) JobCompleted(now units.Time, j *JobState) {
	fmt.Fprintf(l.W, "%-12v job-done J%d met=%v\n", now, j.Dag.ID, j.MetDeadline())
}

// EpochStarted implements Observer.
func (l *LogObserver) EpochStarted(now units.Time, epoch int) {
	if !l.Quiet {
		fmt.Fprintf(l.W, "%-12v epoch    #%d\n", now, epoch)
	}
}

// EpochEnded implements Observer.
func (l *LogObserver) EpochEnded(units.Time, int, *View) {}

// PreemptionConsidered implements Observer.
func (l *LogObserver) PreemptionConsidered(now units.Time, d PreemptionDecision) {
	if l.Quiet {
		return
	}
	fmt.Fprintf(l.W, "%-12v consider %-8v over %-8v gain=%.3g overhead=%.3g %s\n",
		now, d.Candidate.Key(), d.Victim.Key(), d.Gain, d.Overhead, d.Verdict)
}

// DisorderDetected implements Observer.
func (l *LogObserver) DisorderDetected(now units.Time, starter, victim *TaskState, node cluster.NodeID) {
	fmt.Fprintf(l.W, "%-12v disorder %-8v vs %-8v node%d\n", now, starter.Key(), victim.Key(), node)
}

// NodeFailed implements Observer.
func (l *LogObserver) NodeFailed(now units.Time, node cluster.NodeID) {
	fmt.Fprintf(l.W, "%-12v node-fail node%d\n", now, node)
}

// NodeRecovered implements Observer.
func (l *LogObserver) NodeRecovered(now units.Time, node cluster.NodeID) {
	fmt.Fprintf(l.W, "%-12v node-up  node%d\n", now, node)
}

// TaskEvicted implements Observer.
func (l *LogObserver) TaskEvicted(now units.Time, t *TaskState, node cluster.NodeID) {
	fmt.Fprintf(l.W, "%-12v evict    %-8v node%d\n", now, t.Key(), node)
}

// TaskRequeued implements Observer.
func (l *LogObserver) TaskRequeued(now units.Time, t *TaskState, node cluster.NodeID, reason RequeueReason) {
	fmt.Fprintf(l.W, "%-12v requeue  %-8v node%d (%s)\n", now, t.Key(), node, reason)
}

// TaskRetried implements Observer.
func (l *LogObserver) TaskRetried(now units.Time, t *TaskState, node cluster.NodeID, attempt int, reason RetryReason) {
	fmt.Fprintf(l.W, "%-12v retry    %-8v node%d attempt=%d (%s)\n", now, t.Key(), node, attempt, reason)
}

// TaskFailedTerminally implements Observer.
func (l *LogObserver) TaskFailedTerminally(now units.Time, t *TaskState, node cluster.NodeID) {
	fmt.Fprintf(l.W, "%-12v perm-fail %-8v node%d\n", now, t.Key(), node)
}

// SpeculationLaunched implements Observer.
func (l *LogObserver) SpeculationLaunched(now units.Time, t *TaskState, primary, backup cluster.NodeID) {
	fmt.Fprintf(l.W, "%-12v spec     %-8v node%d backup on node%d\n", now, t.Key(), primary, backup)
}

// SpeculationWon implements Observer.
func (l *LogObserver) SpeculationWon(now units.Time, t *TaskState, winner, loser cluster.NodeID) {
	fmt.Fprintf(l.W, "%-12v spec-won %-8v node%d beat node%d\n", now, t.Key(), winner, loser)
}

// SpeculationCancelled implements Observer.
func (l *LogObserver) SpeculationCancelled(now units.Time, t *TaskState, backup cluster.NodeID) {
	fmt.Fprintf(l.W, "%-12v spec-cancel %-8v node%d\n", now, t.Key(), backup)
}

// NodeBlacklisted implements Observer.
func (l *LogObserver) NodeBlacklisted(now units.Time, node cluster.NodeID) {
	fmt.Fprintf(l.W, "%-12v blacklist node%d\n", now, node)
}

// SolverDegraded implements Observer.
func (l *LogObserver) SolverDegraded(now units.Time, d SolverDegradation) {
	fmt.Fprintf(l.W, "%-12v degrade  %s -> %s (%s, %d tasks)\n", now, d.From, d.To, d.Reason, d.PendingTasks)
}

// JobShed implements Observer.
func (l *LogObserver) JobShed(now units.Time, j *JobState, reason ShedReason) {
	fmt.Fprintf(l.W, "%-12v shed     J%d (%s)\n", now, j.Dag.ID, reason)
}

// JobCancelled implements Observer.
func (l *LogObserver) JobCancelled(now units.Time, j *JobState) {
	fmt.Fprintf(l.W, "%-12v cancel   J%d\n", now, j.ID())
}

// InvariantViolated implements Observer.
func (l *LogObserver) InvariantViolated(now units.Time, v InvariantViolation) {
	tkey := "-"
	if v.Task != nil {
		tkey = v.Task.Key().String()
	}
	fmt.Fprintf(l.W, "%-12v INVARIANT %s node%d %s: %s\n", now, v.Check, v.Node, tkey, v.Detail)
}

// TaskSpanClosed implements Observer.
func (l *LogObserver) TaskSpanClosed(s TaskSpan) {
	if l.Quiet {
		return
	}
	fmt.Fprintf(l.W, "%-12v span     %-8v %s [%v, %v) node%d (%s)\n",
		s.End, s.Task.Key(), s.Kind, s.Start, s.End, s.Node, s.Cause)
}

// SnapshotTaken implements Observer.
func (l *LogObserver) SnapshotTaken(now units.Time, period int) {
	fmt.Fprintf(l.W, "%-12v snapshot period=%d\n", now, period)
}

// RecoveryStarted implements Observer.
func (l *LogObserver) RecoveryStarted(now units.Time, period int) {
	fmt.Fprintf(l.W, "%-12v recovery period=%d\n", now, period)
}

// Replayed implements Observer.
func (l *LogObserver) Replayed(now units.Time, records int) {
	fmt.Fprintf(l.W, "%-12v replayed records=%d\n", now, records)
}
