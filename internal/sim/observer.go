package sim

import (
	"fmt"
	"io"

	"dsp/internal/cluster"
	"dsp/internal/units"
)

// Observer receives simulation lifecycle events; attach one via
// Config.Observer to trace a run (debugging, visualization, custom
// metrics). All callbacks run synchronously inside the event loop — keep
// them cheap and do not mutate simulator state.
type Observer interface {
	// TaskStarted fires when a task occupies a slot (including resume
	// after preemption and blind starts of blocked tasks).
	TaskStarted(now units.Time, t *TaskState, node cluster.NodeID)
	// TaskPreempted fires when a running task is suspended.
	TaskPreempted(now units.Time, victim, starter *TaskState, node cluster.NodeID)
	// TaskCompleted fires when a task finishes.
	TaskCompleted(now units.Time, t *TaskState, node cluster.NodeID)
	// JobCompleted fires when a job's last task finishes.
	JobCompleted(now units.Time, j *JobState)
}

// Observers composes multiple observers.
type Observers []Observer

// TaskStarted implements Observer.
func (os Observers) TaskStarted(now units.Time, t *TaskState, node cluster.NodeID) {
	for _, o := range os {
		o.TaskStarted(now, t, node)
	}
}

// TaskPreempted implements Observer.
func (os Observers) TaskPreempted(now units.Time, victim, starter *TaskState, node cluster.NodeID) {
	for _, o := range os {
		o.TaskPreempted(now, victim, starter, node)
	}
}

// TaskCompleted implements Observer.
func (os Observers) TaskCompleted(now units.Time, t *TaskState, node cluster.NodeID) {
	for _, o := range os {
		o.TaskCompleted(now, t, node)
	}
}

// JobCompleted implements Observer.
func (os Observers) JobCompleted(now units.Time, j *JobState) {
	for _, o := range os {
		o.JobCompleted(now, j)
	}
}

// LogObserver writes one line per event, suitable for debugging small
// simulations.
type LogObserver struct {
	W io.Writer
}

// TaskStarted implements Observer.
func (l *LogObserver) TaskStarted(now units.Time, t *TaskState, node cluster.NodeID) {
	fmt.Fprintf(l.W, "%-12v start    %-8v node%d\n", now, t.Key(), node)
}

// TaskPreempted implements Observer.
func (l *LogObserver) TaskPreempted(now units.Time, victim, starter *TaskState, node cluster.NodeID) {
	skey := "-"
	if starter != nil {
		skey = starter.Key().String()
	}
	fmt.Fprintf(l.W, "%-12v preempt  %-8v by %-8s node%d\n", now, victim.Key(), skey, node)
}

// TaskCompleted implements Observer.
func (l *LogObserver) TaskCompleted(now units.Time, t *TaskState, node cluster.NodeID) {
	fmt.Fprintf(l.W, "%-12v complete %-8v node%d\n", now, t.Key(), node)
}

// JobCompleted implements Observer.
func (l *LogObserver) JobCompleted(now units.Time, j *JobState) {
	fmt.Fprintf(l.W, "%-12v job-done J%d met=%v\n", now, j.Dag.ID, j.MetDeadline())
}
