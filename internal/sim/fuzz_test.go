package sim

import (
	"strings"
	"testing"

	"dsp/internal/cluster"
	"dsp/internal/units"
)

// FuzzFaultPlanValidate drives arbitrary fault plans through the
// validator and then — for every plan the validator accepts — through a
// small simulation. The invariant: Validate either rejects the plan or
// the engine survives it (no panics, no broken accounting; an exceeded
// event cap is fine, silent misbehaviour is not).
func FuzzFaultPlanValidate(f *testing.F) {
	f.Add(int64(0), int64(5_000_000), int64(2_000_000), 0.5, int64(3_000_000), int64(4_000_000), 1.0, 0.01, uint8(1))
	f.Add(int64(1_000_000), int64(0), int64(1_000_000), 0.0, int64(-1), int64(0), -2.0, 1.5, uint8(99))
	f.Add(int64(-5), int64(1), int64(2), 1e-12, int64(1<<62), int64(1<<62), 1e300, 0.999, uint8(0))
	f.Fuzz(func(t *testing.T, at1, rec1, at2 int64, factor float64,
		sAt, sDur int64, factor2, rate float64, node uint8) {
		const nodes = 3
		// The fuzzed byte maps onto a possibly-out-of-range NodeID so the
		// range check gets exercised in both directions.
		wild := cluster.NodeID(int(node) - 2)
		plan := &FaultPlan{
			Failures: []NodeFailure{
				{Node: 0, At: units.Time(at1), RecoverAfter: units.Time(rec1)},
				{Node: wild, At: units.Time(at2)},
			},
			Stragglers: []Straggler{
				{Node: 0, At: units.Time(sAt), Factor: factor, Duration: units.Time(sDur)},
				{Node: wild, At: units.Time(at2), Factor: factor2},
			},
			Tasks: &TaskFaults{Rate: rate, Seed: at1},
		}
		if err := plan.Validate(nodes); err != nil {
			return // rejected plans never reach the engine
		}
		j := sizedJob(0, 2000, 1000)
		_, err := Run(Config{
			Cluster:   testCluster(nodes, 1),
			Scheduler: liveRR{},
			Period:    units.Second,
			Faults:    plan,
			MaxEvents: 100_000, // pathological-but-valid plans may spin; cap, don't hang
		}, mkWorkload([]units.Time{0}, j))
		if err == nil {
			return
		}
		// The only acceptable failure modes for a validated plan: the
		// event cap (an effectively-infinite straggler can outlive the
		// cap) and jobs left incomplete because every node died with no
		// recovery in the plan.
		if !strings.Contains(err.Error(), "event cap") && !strings.Contains(err.Error(), "incomplete") {
			t.Fatalf("validated plan broke the run: %v", err)
		}
	})
}
