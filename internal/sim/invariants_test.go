package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dsp/internal/cluster"
	"dsp/internal/trace"
	"dsp/internal/units"
)

// invariantObserver checks engine-wide safety properties on every event:
// slot capacity is never exceeded, tasks only start with precedents
// finished (dependency-aware mode), and completions happen exactly once.
type invariantObserver struct {
	NopObserver
	t        *testing.T
	slots    int
	running  map[cluster.NodeID]int
	done     map[interface{}]bool
	failures int
}

func newInvariantObserver(t *testing.T, slots int) *invariantObserver {
	return &invariantObserver{
		t:       t,
		slots:   slots,
		running: make(map[cluster.NodeID]int),
		done:    make(map[interface{}]bool),
	}
}

func (o *invariantObserver) TaskStarted(now units.Time, ts *TaskState, node cluster.NodeID) {
	o.running[node]++
	if o.running[node] > o.slots {
		o.failures++
		o.t.Errorf("node %d over capacity: %d > %d at %v", node, o.running[node], o.slots, now)
	}
	if !ts.DepsMet() {
		o.failures++
		o.t.Errorf("task %v started before precedents at %v", ts.Key(), now)
	}
	for _, p := range ts.Job.Dag.Parents(ts.Task.ID) {
		ps := ts.Job.Tasks[p]
		if ps.DoneAt > now {
			o.failures++
			o.t.Errorf("task %v started at %v before parent finished at %v", ts.Key(), now, ps.DoneAt)
		}
	}
}

func (o *invariantObserver) TaskPreempted(now units.Time, victim, _ *TaskState, node cluster.NodeID) {
	o.running[node]--
}

func (o *invariantObserver) TaskCompleted(now units.Time, ts *TaskState, node cluster.NodeID) {
	o.running[node]--
	if o.running[node] < 0 {
		o.failures++
		o.t.Errorf("node %d running count negative at %v", node, now)
	}
	if o.done[ts.Key()] {
		o.failures++
		o.t.Errorf("task %v completed twice", ts.Key())
	}
	o.done[ts.Key()] = true
}

func (o *invariantObserver) JobCompleted(units.Time, *JobState) {}

func TestPropertySimulatorInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		spec := trace.DefaultSpec(4+r.Intn(5), seed)
		spec.TaskScale = 0.02 + r.Float64()*0.03
		spec.MeanTaskSizeMI *= 5 + r.Float64()*20
		w, err := trace.Generate(spec)
		if err != nil {
			return false
		}
		const slots = 4
		obs := newInvariantObserver(t, slots)
		res, err := Run(Config{
			Cluster:    testCluster(2+r.Intn(3), slots),
			Scheduler:  rrScheduler{},
			Preemptor:  pickPreemptor(r),
			Checkpoint: cluster.DefaultCheckpoint(),
			Observer:   obs,
			MaxEvents:  5_000_000,
		}, w)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if res.TasksCompleted != len(obs.done) {
			t.Logf("seed %d: completed %d but observed %d", seed, res.TasksCompleted, len(obs.done))
			return false
		}
		return obs.failures == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// pickPreemptor alternates between nil and a simple aggressive policy so
// the invariants are exercised with and without preemption.
func pickPreemptor(r *rand.Rand) Preemptor {
	if r.Intn(2) == 0 {
		return nil
	}
	return aggressive{}
}

// aggressive preempts the first running task with the first waiting
// runnable task on every node, every epoch — maximal churn.
type aggressive struct{}

func (aggressive) Name() string { return "aggressive" }
func (aggressive) Epoch(now units.Time, v *View) []Action {
	var out []Action
	for k := 0; k < v.Cluster().Len(); k++ {
		node := cluster.NodeID(k)
		running := v.Running(node)
		if len(running) == 0 {
			continue
		}
		for _, w := range v.Queue(node) {
			if w.DepsMet() {
				out = append(out, Action{Node: node, Victim: running[0], Starter: w})
				break
			}
		}
	}
	return out
}
