package sim

import (
	"errors"
	"fmt"
	"math"

	"dsp/internal/cluster"
	"dsp/internal/dag"
	"dsp/internal/eventq"
	"dsp/internal/prof"
	"dsp/internal/trace"
	"dsp/internal/units"
)

// Crash tolerance for the scheduler itself (ROADMAP: online serving
// mode). The engine is a deterministic closure-driven event loop, so
// durability is split in two:
//
//   - Every event the engine arms carries an eventq.Tag — a small
//     serializable descriptor (kind + job/task/node operands) from which
//     the closure can be reconstructed. CaptureState walks the live
//     world (jobs, tasks, nodes, queues, speculative copies, metrics,
//     pending events) into an EngineState; PrepareResume rebuilds the
//     world from the workload, overlays that state, and re-arms every
//     pending event in its recorded firing order, reproducing the exact
//     event sequence the uninterrupted run would have executed.
//   - A DurabilitySink (internal/recover) persists those states every K
//     scheduling periods and keeps a write-ahead log of decision events
//     between snapshots, verified against the deterministic roll-forward
//     on recovery.
//
// There is no live RNG to capture: all stochastic draws (task faults)
// are stateless hashes of (seed, job, task, execIndex), so serializing
// execIndex per task serializes the stream position.

// ErrInterrupted is returned by Execute when the run was stopped via
// Config.Interrupt (graceful SIGINT/SIGTERM). The durability sink, if
// any, has already been given its final-snapshot callback.
var ErrInterrupted = errors.New("sim: interrupted")

// DurabilitySink receives period-boundary callbacks from the engine so
// an external recovery manager can snapshot state and rotate its
// write-ahead log without the engine importing it.
type DurabilitySink interface {
	// SnapshotDue reports whether OnPeriod will capture a snapshot for
	// this period; the engine uses it to emit the SnapshotTaken observer
	// event (and hence the audit line) before the sink records the audit
	// offset inside the snapshot.
	SnapshotDue(period int) bool
	// OnPeriod runs at the very end of the period-th scheduling tick,
	// after all scheduling work has settled. An error aborts the run.
	OnPeriod(e *Engine, period int, now units.Time) error
	// OnInterrupt runs when the event pump is stopped via
	// Config.Interrupt, to take a final snapshot at the interrupt
	// boundary.
	OnInterrupt(e *Engine, now units.Time) error
}

// DurableComponent is implemented by schedulers (or preemptors) that
// carry decision-affecting state between scheduling rounds — e.g. the
// DSP scheduler's warm-start plan, which seeds its budgeted ILP solves.
// Such state must travel with the snapshot or a resumed run could
// diverge from the uninterrupted one.
type DurableComponent interface {
	// DurableState serializes the component's round-to-round state.
	DurableState() ([]byte, error)
	// RestoreDurableState overlays previously serialized state.
	RestoreDurableState([]byte) error
}

// Event tag kinds: everything the engine ever arms on its queue. The A/B
// tag operands hold (job index, task ID) for task events, a node ID for
// node events, and a growth-plan index for growth events; F holds a
// straggler speed factor.
const (
	evArrival uint8 = iota + 1
	evPeriodTick
	evEpochTick
	evSpecTick
	evComplete
	evTransientFail
	evBlockTimeout
	evRetry
	evNodeFail
	evNodeRecover
	evSpeed
	evGrowth
	evBackupComplete
)

// taskTag builds the event tag for a per-task event.
func taskTag(kind uint8, t *TaskState) eventq.Tag {
	return eventq.Tag{Kind: kind, A: int32(t.Job.idx), B: int32(t.Task.ID)}
}

// EngineState is the complete serializable dynamic state of a running
// simulation: everything not reconstructible from (Config, Workload).
// Captured by CaptureState at inter-event boundaries; applied by
// PrepareResume onto a freshly built world.
type EngineState struct {
	Now           units.Time
	PeriodIndex   int
	EpochIndex    int
	LastDone      units.Time
	JobsRemaining int
	ActiveBackups int
	// GrowthApplied lists the Config.Growth batch indices whose events
	// have fired, in fire order; restore replays their structural DAG
	// extensions before overlaying task state.
	GrowthApplied []int
	// IngestApplied is the streaming-ingestion journal splice point: how
	// many accepted entries had been drained into the world at capture
	// time. The serving layer rebuilds the resume workload from the
	// first IngestApplied journal entries and re-submits the rest.
	IngestApplied int `json:",omitempty"`
	// WorldSum fingerprints (workload, cluster, key config) so a snapshot
	// cannot be restored against a different world.
	WorldSum uint64
	Jobs     []jobSnap
	Nodes    []nodeSnap
	// Events is the pending event set in firing order; re-arming in this
	// order on a fresh queue reproduces FIFO tie-breaks exactly.
	Events  []eventSnap
	Metrics metricsSnap
	// Scheduler carries the scheduler's DurableComponent state (nil when
	// the scheduler is stateless).
	Scheduler []byte `json:",omitempty"`
	// AuditOffset is the audit-stream byte offset at capture time, set by
	// the recovery manager (-1 when no audit stream is attached). On
	// resume the audit file is truncated here and the roll-forward
	// re-emits the suffix byte-identically.
	AuditOffset int64
}

type jobSnap struct {
	DoneAt    units.Time
	Remaining int
	Assigned  int
	Failed    bool
	Shed      bool
	// Cancelled and Retired carry the streaming-mode flags: a cancelled
	// job is failed with a recorded cause; a retired job's task state
	// was released, so its snapshot carries no Tasks and restore
	// re-releases the rebuilt ones.
	Cancelled bool `json:",omitempty"`
	Retired   bool `json:",omitempty"`
	Tasks     []taskSnap
}

type taskSnap struct {
	Phase         Phase
	Node          int32
	PlannedStart  units.Time
	QueuedAt      units.Time
	FirstStart    units.Time
	DoneAt        units.Time
	Preemptions   int
	Attempts      int
	TotalWait     units.Time
	DoneMI        float64
	EffStart      units.Time
	ResumePenalty units.Time
	Blocked       bool
	EverRan       bool
	ExecIndex     int
	AttemptFailAt units.Time
	SpanStart     units.Time
}

// taskRef names a task by (job index, task ID) — the same coordinates
// event tags use.
type taskRef struct{ Job, Task int32 }

type nodeSnap struct {
	Down        bool
	SpeedFactor float64
	Penalty     float64
	PenaltyAt   units.Time
	Blacklisted bool
	// Running and Queue are ordered task references; queue order is the
	// dispatch order and must survive the round trip.
	Running []taskRef
	Queue   []taskRef
	Spec    []backupSnap
}

type backupSnap struct {
	Job, Task  int32
	Base, Done float64
	EffStart   units.Time
	Launched   units.Time
}

type eventSnap struct {
	At   units.Time
	Kind uint8
	A, B int32
	F    float64
}

// metricsSnap carries the full Result, including its unexported
// accumulators (finalize needs them on the resumed side).
type metricsSnap struct {
	Result            Result
	TotalJobWait      units.Time
	JobWaitSamples    int
	TotalTaskWait     units.Time
	TaskWaitSamples   int
	TotalJobQueueWait units.Time
}

// CaptureState serializes the engine's complete dynamic state. Valid at
// any inter-event boundary (the pending queue is captured whole). It
// fails if any pending event lacks a serializable tag — that would mean
// an engine code path armed an untagged closure, which restore could
// not reconstruct.
func (e *Engine) CaptureState() (*EngineState, error) {
	st := &EngineState{
		Now:           e.q.Now(),
		PeriodIndex:   e.periodIndex,
		EpochIndex:    e.epochIndex,
		LastDone:      e.lastDone,
		JobsRemaining: e.jobsRemaining,
		ActiveBackups: e.activeBackups,
		GrowthApplied: append([]int(nil), e.growthApplied...),
		IngestApplied: e.ingestApplied,
		WorldSum:      e.worldSum,
		AuditOffset:   -1,
	}
	for _, js := range e.jobs {
		j := jobSnap{
			DoneAt:    js.DoneAt,
			Remaining: js.remaining,
			Assigned:  js.assigned,
			Failed:    js.failed,
			Shed:      js.shed,
			Cancelled: js.cancelled,
			Retired:   js.retired,
			Tasks:     make([]taskSnap, 0, len(js.Tasks)),
		}
		for _, t := range js.Tasks {
			j.Tasks = append(j.Tasks, taskSnap{
				Phase:         t.Phase,
				Node:          int32(t.Node),
				PlannedStart:  t.PlannedStart,
				QueuedAt:      t.QueuedAt,
				FirstStart:    t.FirstStart,
				DoneAt:        t.DoneAt,
				Preemptions:   t.Preemptions,
				Attempts:      t.Attempts,
				TotalWait:     t.totalWait,
				DoneMI:        t.doneMI,
				EffStart:      t.effStart,
				ResumePenalty: t.resumePenalty,
				Blocked:       t.blocked,
				EverRan:       t.everRan,
				ExecIndex:     t.execIndex,
				AttemptFailAt: t.attemptFailAt,
				SpanStart:     t.spanStart,
			})
		}
		st.Jobs = append(st.Jobs, j)
	}
	for _, ns := range e.nodes {
		n := nodeSnap{
			Down:        ns.down,
			SpeedFactor: ns.speedFactor,
			Penalty:     ns.penalty,
			PenaltyAt:   ns.penaltyAt,
			Blacklisted: ns.blacklisted,
		}
		for _, t := range ns.running {
			n.Running = append(n.Running, refOf(t))
		}
		for _, t := range ns.queue {
			n.Queue = append(n.Queue, refOf(t))
		}
		for _, br := range ns.spec {
			n.Spec = append(n.Spec, backupSnap{
				Job:      int32(br.task.Job.idx),
				Task:     int32(br.task.Task.ID),
				Base:     br.base,
				Done:     br.done,
				EffStart: br.effStart,
				Launched: br.launched,
			})
		}
		st.Nodes = append(st.Nodes, n)
	}
	for _, pe := range e.q.Pending() {
		if pe.Tag.Kind == 0 {
			return nil, fmt.Errorf("sim: cannot snapshot at t=%v: pending event without a serializable tag", st.Now)
		}
		st.Events = append(st.Events, eventSnap{At: pe.At, Kind: pe.Tag.Kind, A: pe.Tag.A, B: pe.Tag.B, F: pe.Tag.F})
	}
	st.Metrics = metricsSnap{
		Result:            e.metrics,
		TotalJobWait:      e.metrics.totalJobWait,
		JobWaitSamples:    e.metrics.jobWaitSamples,
		TotalTaskWait:     e.metrics.totalTaskWait,
		TaskWaitSamples:   e.metrics.taskWaitSamples,
		TotalJobQueueWait: e.metrics.totalJobQueueWait,
	}
	if dc, ok := e.cfg.Scheduler.(DurableComponent); ok {
		b, err := dc.DurableState()
		if err != nil {
			return nil, fmt.Errorf("sim: scheduler durable state: %w", err)
		}
		st.Scheduler = b
	}
	return st, nil
}

func refOf(t *TaskState) taskRef {
	return taskRef{Job: int32(t.Job.idx), Task: int32(t.Task.ID)}
}

// PrepareResume rebuilds an engine from a previously captured state.
// The workload must be generated identically to the original run's (the
// engine mutates job DAGs in place, so a fresh copy is required — the
// WorldSum fingerprint rejects mismatches). Execute then rolls the
// simulation forward deterministically from the snapshot point.
func PrepareResume(cfg Config, w *trace.Workload, st *EngineState) (*Engine, error) {
	e, err := newEngine(&cfg, w)
	if err != nil {
		return nil, err
	}
	tm := e.cfg.Prof
	tm.Enter(prof.PhaseSetup)
	err = e.buildWorld(w)
	if err == nil {
		err = e.applyState(st)
	}
	tm.Exit()
	if err != nil {
		return nil, err
	}
	return e, nil
}

// applyState overlays a captured state onto a freshly built world and
// re-arms the pending events. Every reference is bounds-checked: a
// corrupt or mismatched state yields an error, never a panic.
func (e *Engine) applyState(st *EngineState) error {
	if st.WorldSum != e.worldSum {
		return fmt.Errorf("sim: snapshot world fingerprint %#x does not match this config/workload (%#x); resume needs the identical workload and config", st.WorldSum, e.worldSum)
	}
	if len(st.Nodes) != len(e.nodes) {
		return fmt.Errorf("sim: snapshot has %d nodes, cluster has %d", len(st.Nodes), len(e.nodes))
	}
	if len(st.Jobs) != len(e.jobs) {
		return fmt.Errorf("sim: snapshot has %d jobs, workload has %d", len(st.Jobs), len(e.jobs))
	}
	// Replay structural growth first so task counts line up.
	for _, gi := range st.GrowthApplied {
		if gi < 0 || gi >= len(e.cfg.Growth) {
			return fmt.Errorf("sim: snapshot growth index %d out of range [0, %d)", gi, len(e.cfg.Growth))
		}
		g := e.cfg.Growth[gi]
		js := e.jobByID(g.Job)
		if js == nil {
			return fmt.Errorf("sim: snapshot growth batch %d references unknown job %d", gi, g.Job)
		}
		e.growStructure(js, g, st.Now)
		e.growthApplied = append(e.growthApplied, gi)
	}
	// Growth reserves remaining-task slots at install time on a fresh
	// run; here remaining is overlaid below, so only the structure was
	// needed.
	for i, js := range e.jobs {
		snap := &st.Jobs[i]
		js.DoneAt = snap.DoneAt
		js.remaining = snap.Remaining
		js.assigned = snap.Assigned
		js.failed = snap.Failed
		js.shed = snap.Shed
		js.cancelled = snap.Cancelled
		if snap.Retired {
			// The snapshot released this settled job's state; release the
			// freshly rebuilt copy the same way instead of overlaying.
			js.Tasks = nil
			js.Dag = nil
			js.waitsFor = nil
			js.retired = true
			continue
		}
		if len(snap.Tasks) != len(js.Tasks) {
			return fmt.Errorf("sim: snapshot job %d has %d tasks, world has %d", js.id, len(snap.Tasks), len(js.Tasks))
		}
		for ti, t := range js.Tasks {
			ts := &snap.Tasks[ti]
			if n := int(ts.Node); n < -1 || n >= len(e.nodes) {
				return fmt.Errorf("sim: snapshot task %d.%d node %d out of range", js.Dag.ID, t.Task.ID, n)
			}
			t.Phase = ts.Phase
			t.Node = cluster.NodeID(ts.Node)
			t.PlannedStart = ts.PlannedStart
			t.QueuedAt = ts.QueuedAt
			t.FirstStart = ts.FirstStart
			t.DoneAt = ts.DoneAt
			t.Preemptions = ts.Preemptions
			t.Attempts = ts.Attempts
			t.totalWait = ts.TotalWait
			t.doneMI = ts.DoneMI
			t.effStart = ts.EffStart
			t.resumePenalty = ts.ResumePenalty
			t.blocked = ts.Blocked
			t.everRan = ts.EverRan
			t.execIndex = ts.ExecIndex
			t.attemptFailAt = ts.AttemptFailAt
			t.spanStart = ts.SpanStart
		}
	}
	for k, ns := range e.nodes {
		snap := &st.Nodes[k]
		ns.down = snap.Down
		ns.speedFactor = snap.SpeedFactor
		ns.penalty = snap.Penalty
		ns.penaltyAt = snap.PenaltyAt
		ns.blacklisted = snap.Blacklisted
		for _, ref := range snap.Running {
			t, err := e.taskOf(ref)
			if err != nil {
				return err
			}
			ns.running = append(ns.running, t)
		}
		for _, ref := range snap.Queue {
			t, err := e.taskOf(ref)
			if err != nil {
				return err
			}
			ns.queue = append(ns.queue, t)
		}
		for _, bs := range snap.Spec {
			t, err := e.taskOf(taskRef{Job: bs.Job, Task: bs.Task})
			if err != nil {
				return err
			}
			br := &backupRun{
				task:     t,
				node:     cluster.NodeID(k),
				base:     bs.Base,
				done:     bs.Done,
				effStart: bs.EffStart,
				launched: bs.Launched,
			}
			ns.spec = append(ns.spec, br)
			t.backup = br
		}
	}
	e.metrics = st.Metrics.Result
	e.metrics.totalJobWait = st.Metrics.TotalJobWait
	e.metrics.jobWaitSamples = st.Metrics.JobWaitSamples
	e.metrics.totalTaskWait = st.Metrics.TotalTaskWait
	e.metrics.taskWaitSamples = st.Metrics.TaskWaitSamples
	e.metrics.totalJobQueueWait = st.Metrics.TotalJobQueueWait
	e.jobsRemaining = st.JobsRemaining
	e.activeBackups = st.ActiveBackups
	e.lastDone = st.LastDone
	e.epochIndex = st.EpochIndex
	e.periodIndex = st.PeriodIndex
	e.ingestApplied = st.IngestApplied
	if dc, ok := e.cfg.Scheduler.(DurableComponent); ok && st.Scheduler != nil {
		if err := dc.RestoreDurableState(st.Scheduler); err != nil {
			return fmt.Errorf("sim: scheduler durable state: %w", err)
		}
	}
	// Fresh queue with the clock at the snapshot instant; re-arm pending
	// events in recorded firing order so sequence tie-breaks reproduce.
	e.q = eventq.NewAt(st.Now)
	if e.cfg.Interrupt != nil {
		e.q.SetStop(e.cfg.Interrupt)
	}
	for i := range st.Events {
		if err := e.armEvent(&st.Events[i]); err != nil {
			return err
		}
	}
	return nil
}

// jobByID finds a job state by DAG identity (nil if unknown).
func (e *Engine) jobByID(id dag.JobID) *JobState { return e.byID[id] }

// taskOf resolves a snapshot task reference, bounds-checked.
func (e *Engine) taskOf(ref taskRef) (*TaskState, error) {
	if int(ref.Job) < 0 || int(ref.Job) >= len(e.jobs) {
		return nil, fmt.Errorf("sim: snapshot references job index %d out of range [0, %d)", ref.Job, len(e.jobs))
	}
	js := e.jobs[ref.Job]
	for _, t := range js.Tasks {
		if t.Task.ID == dag.TaskID(ref.Task) {
			return t, nil
		}
	}
	return nil, fmt.Errorf("sim: snapshot references unknown task %d of job %d", ref.Task, js.Dag.ID)
}

// armEvent reconstructs one pending event from its serialized tag. The
// shared arm* helpers guarantee a restored event's closure (and its
// handle links into task state) is identical to the one the original
// run armed.
func (e *Engine) armEvent(ev *eventSnap) error {
	taskEvent := func() (*TaskState, error) {
		return e.taskOf(taskRef{Job: ev.A, Task: ev.B})
	}
	nodeEvent := func() (cluster.NodeID, error) {
		if int(ev.A) < 0 || int(ev.A) >= len(e.nodes) {
			return 0, fmt.Errorf("sim: snapshot event references node %d out of range", ev.A)
		}
		return cluster.NodeID(ev.A), nil
	}
	switch ev.Kind {
	case evArrival:
		if int(ev.A) < 0 || int(ev.A) >= len(e.jobs) {
			return fmt.Errorf("sim: snapshot arrival references job index %d out of range", ev.A)
		}
		e.armArrival(e.jobs[ev.A], ev.At)
	case evPeriodTick:
		e.q.AtTag(ev.At, eventq.Tag{Kind: evPeriodTick}, eventq.Func(e.periodTick))
	case evEpochTick:
		if e.cfg.Preemptor == nil {
			return fmt.Errorf("sim: snapshot has an epoch tick but the config has no preemptor")
		}
		e.q.AtTag(ev.At, eventq.Tag{Kind: evEpochTick}, eventq.Func(e.epochTick))
	case evSpecTick:
		if e.cfg.Speculation == nil {
			return fmt.Errorf("sim: snapshot has a speculation tick but the config has no speculation policy")
		}
		e.q.AtTag(ev.At, eventq.Tag{Kind: evSpecTick}, eventq.Func(e.specTick))
	case evComplete:
		t, err := taskEvent()
		if err != nil {
			return err
		}
		e.armComplete(t.Node, t, ev.At)
	case evTransientFail:
		t, err := taskEvent()
		if err != nil {
			return err
		}
		e.armTransientFail(t.Node, t, ev.At)
	case evBlockTimeout:
		t, err := taskEvent()
		if err != nil {
			return err
		}
		k := t.Node
		t.blockEv = e.q.AtTag(ev.At, taskTag(evBlockTimeout, t), eventq.Func(func(at units.Time) {
			e.kickBlocked(k, t, at)
		}))
		t.hasBlockEv = true
	case evRetry:
		t, err := taskEvent()
		if err != nil {
			return err
		}
		e.armRetry(t, ev.At)
	case evNodeFail:
		k, err := nodeEvent()
		if err != nil {
			return err
		}
		e.q.AtTag(ev.At, eventq.Tag{Kind: evNodeFail, A: ev.A}, eventq.Func(func(now units.Time) {
			e.failNode(k, now)
		}))
	case evNodeRecover:
		k, err := nodeEvent()
		if err != nil {
			return err
		}
		e.q.AtTag(ev.At, eventq.Tag{Kind: evNodeRecover, A: ev.A}, eventq.Func(func(now units.Time) {
			e.recoverNode(k, now)
		}))
	case evSpeed:
		k, err := nodeEvent()
		if err != nil {
			return err
		}
		factor := ev.F
		if !(factor > 0) || math.IsInf(factor, 0) {
			return fmt.Errorf("sim: snapshot speed event has invalid factor %v", factor)
		}
		e.q.AtTag(ev.At, eventq.Tag{Kind: evSpeed, A: ev.A, F: factor}, eventq.Func(func(now units.Time) {
			e.setSpeedFactor(k, factor, now)
		}))
	case evGrowth:
		gi := int(ev.A)
		if gi < 0 || gi >= len(e.cfg.Growth) {
			return fmt.Errorf("sim: snapshot growth event index %d out of range [0, %d)", gi, len(e.cfg.Growth))
		}
		g := e.cfg.Growth[gi]
		js := e.jobByID(g.Job)
		if js == nil {
			return fmt.Errorf("sim: snapshot growth event references unknown job %d", g.Job)
		}
		e.q.AtTag(ev.At, eventq.Tag{Kind: evGrowth, A: ev.A}, eventq.Func(func(now units.Time) {
			e.applyGrowth(js, gi, g, now)
		}))
	case evBackupComplete:
		t, err := taskEvent()
		if err != nil {
			return err
		}
		if t.backup == nil {
			return fmt.Errorf("sim: snapshot backup completion for task %d.%d with no live backup", ev.A, ev.B)
		}
		e.armBackupComplete(t.backup, ev.At)
	default:
		return fmt.Errorf("sim: snapshot contains unknown event kind %d", ev.Kind)
	}
	return nil
}

// FindTask resolves a (job, task) identity to its live state, for audit
// rehydration on resume. It returns nil for unknown identities and for
// jobs already settled (done, failed, or shed) — their spans were fully
// consumed before the snapshot and must not be replayed.
func (e *Engine) FindTask(job dag.JobID, task dag.TaskID) *TaskState {
	js := e.jobByID(job)
	if js == nil || js.Done() || js.failed || js.shed {
		return nil
	}
	for _, t := range js.Tasks {
		if t.Task.ID == task {
			return t
		}
	}
	return nil
}

// worldFingerprint hashes the parts of (workload, cluster, config) that
// restored state depends on. Snapshots embed it; applyState refuses a
// mismatch.
func (e *Engine) worldFingerprint() uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		h ^= v
		h *= prime
	}
	mixs := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime
		}
	}
	mix(uint64(len(e.jobs)))
	mix(uint64(len(e.nodes)))
	mix(uint64(e.cfg.Period))
	mix(uint64(e.cfg.Epoch))
	mixs(e.cfg.Scheduler.Name())
	if e.cfg.Preemptor != nil {
		mix(1)
	}
	if e.cfg.Speculation != nil {
		mix(2)
	}
	mix(uint64(len(e.cfg.Growth)))
	if p := e.cfg.Faults; p != nil {
		mix(uint64(len(p.Failures)))
		mix(uint64(len(p.Stragglers)))
	}
	for _, js := range e.jobs {
		// Cached identity, not js.Dag — retired streaming jobs have
		// released their DAG, and the fingerprint must survive that.
		mix(uint64(js.id))
		mix(uint64(js.Arrival))
		mix(uint64(js.fpLen))
		mix(math.Float64bits(js.fpSize))
	}
	return h
}
