package sim

import (
	"dsp/internal/cluster"
	"dsp/internal/units"
)

// Assignment is one offline scheduling decision: run the task on Node,
// planned to start at Start. The engine enqueues the task in the node's
// waiting queue ordered by Start.
type Assignment struct {
	Task  *TaskState
	Node  cluster.NodeID
	Start units.Time
}

// Scheduler is the offline phase plug point, invoked every scheduling
// period with the jobs that have arrived and still have unassigned
// tasks. Implementations include the DSP ILP/list scheduler, Tetris (with
// and without dependency handling) and Aalo.
type Scheduler interface {
	Name() string
	Schedule(now units.Time, pending []*JobState, view *View) []Assignment
}

// Action is one preemption decision: suspend Victim (running on Node) and
// start Starter (waiting on Node) in its place. The remaining fields are
// optional decision metadata a policy may attach; the engine copies them
// into the PreemptionConsidered observer event so audit logs can answer
// "why was this task preempted".
type Action struct {
	Node    cluster.NodeID
	Victim  *TaskState
	Starter *TaskState

	// Urgent marks actions from the urgent pass (ε/τ trigger), reported
	// as the urgent-override verdict.
	Urgent bool
	// StarterPriority and VictimPriority are the policy's priorities at
	// decision time (zero for policies that do not compute them).
	StarterPriority float64
	VictimPriority  float64
	// PPThreshold is the normalized-priority bar ρ·P̄ the priority gain
	// had to clear (zero when the PP filter was off or not applicable).
	PPThreshold float64
}

// Preemptor is the online phase plug point, invoked every epoch.
// Implementations include DSP's Algorithm 1 (with and without the
// normalized-priority filter), Amoeba, Natjam and SRPT.
type Preemptor interface {
	Name() string
	Epoch(now units.Time, view *View) []Action
}

// View gives schedulers and preemptors read access to the simulator
// state.
type View struct {
	engine *Engine
}

// Cluster returns the simulated cluster.
func (v *View) Cluster() *cluster.Cluster { return v.engine.cfg.Cluster }

// Speed returns node k's current effective speed: g(k) scaled by any
// active straggler factor, and zero while the node is down. Schedulers
// and preemptors should use this rather than Cluster().Speed so their
// estimates track injected faults.
func (v *View) Speed(k cluster.NodeID) float64 { return v.engine.speedOf(k) }

// Queue returns node k's waiting tasks (queued and suspended) in
// ascending planned-start order. The slice is shared with the engine;
// callers must not mutate it.
func (v *View) Queue(k cluster.NodeID) []*TaskState { return v.engine.nodes[k].queue }

// Running returns the tasks currently occupying slots on node k, in
// start order. The slice is shared with the engine; callers must not
// mutate it.
func (v *View) Running(k cluster.NodeID) []*TaskState { return v.engine.nodes[k].running }

// Jobs returns every job the simulator knows about (arrived or not).
func (v *View) Jobs() []*JobState { return v.engine.jobs }

// BusyUntil estimates when node k next frees a slot if nothing is
// preempted: the earliest completion among running tasks, or now when a
// slot is already free.
func (v *View) BusyUntil(k cluster.NodeID, now units.Time) units.Time {
	ns := v.engine.nodes[k]
	if len(ns.running)+len(ns.spec) < ns.node.Slots {
		return now
	}
	earliest := units.Forever
	speed := v.Speed(k)
	for _, t := range ns.running {
		fin := now + t.LiveRemainingTime(now, speed)
		if fin < earliest {
			earliest = fin
		}
	}
	return earliest
}

// QueuedWork returns the total remaining work (in execution time at node
// k's speed) sitting in node k's queue.
func (v *View) QueuedWork(k cluster.NodeID, now units.Time) units.Time {
	ns := v.engine.nodes[k]
	speed := v.Speed(k)
	var total units.Time
	for _, t := range ns.queue {
		total += t.RemainingTime(speed)
	}
	return total
}

// EarliestFree estimates when a slot on node k will accept a new task,
// accounting for both running tasks and the queue drained at full slot
// parallelism. Schedulers use this for earliest-finish-time placement.
func (v *View) EarliestFree(k cluster.NodeID, now units.Time) units.Time {
	ns := v.engine.nodes[k]
	speed := v.Speed(k)
	slots := ns.node.Slots
	if slots <= 0 {
		return units.Forever
	}
	free := len(ns.running)+len(ns.spec) < slots && len(ns.queue) == 0
	if free {
		return now
	}
	// Total outstanding work divided across slots is a serviceable
	// estimate of when the backlog drains.
	var backlog units.Time
	for _, t := range ns.running {
		backlog += t.LiveRemainingTime(now, speed)
	}
	for _, t := range ns.queue {
		backlog += t.RemainingTime(speed)
	}
	return now + backlog/units.Time(slots)
}

// Epoch returns the configured preemption epoch.
func (v *View) Epoch() units.Time { return v.engine.cfg.Epoch }

// Now returns the current simulated time (the event being processed).
func (v *View) Now() units.Time { return v.engine.q.Now() }

// NodePenalty returns node k's decayed failure-health penalty as of now:
// +1 per crash or transient task fault, halving every HealthHalfLife.
// Fault-aware schedulers discount nodes with high penalties.
func (v *View) NodePenalty(k cluster.NodeID) float64 {
	e := v.engine
	return e.nodes[k].decayedPenalty(e.q.Now(), e.healthHalfLife())
}

// Blacklisted reports whether node k's penalty currently exceeds the
// configured blacklist threshold. Always false when blacklisting is
// disabled (Config.BlacklistThreshold = 0). Fault-aware schedulers must
// not place work on blacklisted nodes.
func (v *View) Blacklisted(k cluster.NodeID) bool {
	e := v.engine
	return e.isBlacklisted(k, e.q.Now())
}

// Observer returns the run's configured observer, or nil. Policies use it
// to report decisions that never become Actions — e.g. the DSP PP filter
// suppressing a preemption whose gain would not cover the context-switch
// cost. Callers must nil-check.
func (v *View) Observer() Observer { return v.engine.cfg.Observer }

// Checkpoint returns the active checkpoint policy.
func (v *View) Checkpoint() cluster.CheckpointPolicy { return v.engine.cfg.Checkpoint }

// ReportSolverDegraded records a downgrade along the scheduler's
// degradation ladder: the engine counts it in Result.SolverDegradations
// and forwards it to the observer. Schedulers call this (rather than the
// observer directly) so the count lands in the run's metrics even when
// no observer is attached.
func (v *View) ReportSolverDegraded(now units.Time, d SolverDegradation) {
	v.engine.metrics.SolverDegradations++
	if o := v.engine.cfg.Observer; o != nil {
		o.SolverDegraded(now, d)
	}
}
