package sim

import (
	"testing"

	"dsp/internal/cluster"
	"dsp/internal/units"
)

// viewScheduler captures the view during scheduling so tests can probe
// the estimation helpers mid-simulation.
type viewScheduler struct {
	inner  rrScheduler
	probes []func(now units.Time, v *View)
	call   int
}

func (s *viewScheduler) Name() string { return "view-probe" }
func (s *viewScheduler) Schedule(now units.Time, pending []*JobState, v *View) []Assignment {
	if s.call < len(s.probes) {
		s.probes[s.call](now, v)
	}
	s.call++
	return s.inner.Schedule(now, pending, v)
}

func TestViewEstimators(t *testing.T) {
	// Job 1 arrives at 0 (two 10 s tasks, 1 slot). Job 2 arrives at 5 s;
	// the probe at the second period inspects the busy node.
	j1 := sizedJob(0, 10000, 10000)
	j2 := sizedJob(1, 1000)
	var checked bool
	s := &viewScheduler{probes: []func(units.Time, *View){
		func(now units.Time, v *View) {}, // first period: empty cluster
		func(now units.Time, v *View) {
			checked = true
			if now != 8*units.Second {
				t.Errorf("second period at %v, want 8s", now)
			}
			// Task A started at 0, has 2 s left; task B waits in queue.
			busy := v.BusyUntil(0, now)
			if busy != 10*units.Second {
				t.Errorf("BusyUntil = %v, want 10s (live remaining)", busy)
			}
			qw := v.QueuedWork(0, now)
			if qw != 10*units.Second {
				t.Errorf("QueuedWork = %v, want 10s", qw)
			}
			// Backlog estimate: 2 s running + 10 s queued on one slot.
			ef := v.EarliestFree(0, now)
			if ef != now+12*units.Second {
				t.Errorf("EarliestFree = %v, want %v", ef, now+12*units.Second)
			}
			if v.Epoch() != 10*units.Second {
				t.Errorf("Epoch = %v", v.Epoch())
			}
			if len(v.Jobs()) != 2 {
				t.Errorf("Jobs = %d", len(v.Jobs()))
			}
			if v.Checkpoint().Enabled {
				t.Error("checkpoint should be zero-valued (disabled)")
			}
		},
	}}
	_, err := Run(Config{
		Cluster:   testCluster(1, 1),
		Scheduler: s,
		Period:    8 * units.Second,
	}, mkWorkload([]units.Time{0, 5 * units.Second}, j1, j2))
	if err != nil {
		t.Fatal(err)
	}
	if !checked {
		t.Fatal("probe never ran")
	}
}

func TestViewEarliestFreeIdleNode(t *testing.T) {
	var got units.Time = -1
	s := &viewScheduler{probes: []func(units.Time, *View){
		func(now units.Time, v *View) {
			got = v.EarliestFree(0, now)
		},
	}}
	j := sizedJob(0, 1000)
	if _, err := Run(Config{Cluster: testCluster(1, 2), Scheduler: s},
		mkWorkload([]units.Time{3 * units.Second}, j)); err != nil {
		t.Fatal(err)
	}
	if got != 3*units.Second {
		t.Errorf("EarliestFree on idle node = %v, want now (3s)", got)
	}
}

func TestLiveRemainingTime(t *testing.T) {
	// Probe a running task mid-flight via a preemptor.
	j := sizedJob(0, 10000)
	var live, stale units.Time
	pre := &onceActor{act: func(now units.Time, v *View) []Action {
		r := v.Running(0)[0]
		live = r.LiveRemainingTime(now, 1000)
		stale = r.RemainingTime(1000)
		return nil
	}}
	_, err := Run(Config{
		Cluster:   testCluster(1, 1),
		Scheduler: rrScheduler{},
		Preemptor: pre,
		Epoch:     4 * units.Second,
	}, mkWorkload([]units.Time{0}, j))
	if err != nil {
		t.Fatal(err)
	}
	if stale != 10*units.Second {
		t.Errorf("RemainingTime = %v, want full 10s (checkpointed view)", stale)
	}
	if live != 6*units.Second {
		t.Errorf("LiveRemainingTime = %v, want 6s after 4 s of running", live)
	}
}

func TestBlindSchedulerWastesSlots(t *testing.T) {
	// blindRR ignores dependencies: it enqueues the chain's child first.
	j := sizedJob(0, 5000, 5000)
	j.MustDep(0, 1)
	res, err := Run(Config{
		Cluster:      testCluster(1, 1),
		Scheduler:    blindRR{},
		BlindTimeout: 2 * units.Second,
	}, mkWorkload([]units.Time{0}, j))
	if err != nil {
		t.Fatal(err)
	}
	if res.BlindStarts == 0 {
		t.Fatal("expected blind starts")
	}
	if res.BlockedSlotTime == 0 {
		t.Fatal("expected wasted slot time")
	}
	// Child blind-starts at 0, is kicked at 2 s, parent runs [2,7),
	// child runs [7,12): makespan 12 s vs 10 s for a dependency-aware
	// order.
	if res.Makespan != 12*units.Second {
		t.Errorf("makespan = %v, want 12s", res.Makespan)
	}
	if res.BlockedSlotTime != 2*units.Second {
		t.Errorf("BlockedSlotTime = %v, want 2s", res.BlockedSlotTime)
	}
}

func TestBlindStartUnblocksWhenParentCompletes(t *testing.T) {
	// Two nodes: parent on node 0, child blind-started on node 1. The
	// child blocks until the parent finishes, then runs without a kick.
	j := sizedJob(0, 5000, 2000)
	j.MustDep(0, 1)
	res, err := Run(Config{
		Cluster:      testCluster(2, 1),
		Scheduler:    blindRR{},
		BlindTimeout: 30 * units.Second,
	}, mkWorkload([]units.Time{0}, j))
	if err != nil {
		t.Fatal(err)
	}
	// Parent [0,5) on node 0; child blocks on node 1 [0,5), runs [5,7).
	if res.Makespan != 7*units.Second {
		t.Errorf("makespan = %v, want 7s", res.Makespan)
	}
	if res.BlindStarts != 1 {
		t.Errorf("BlindStarts = %d, want 1", res.BlindStarts)
	}
	if res.BlockedSlotTime != 5*units.Second {
		t.Errorf("BlockedSlotTime = %v, want 5s", res.BlockedSlotTime)
	}
}

// blindRR is rrScheduler plus the DependencyBlind marker, and enqueues
// children before parents to exercise blocking.
type blindRR struct{}

func (blindRR) Name() string          { return "blind-rr" }
func (blindRR) DependencyBlind() bool { return true }
func (blindRR) Schedule(now units.Time, pending []*JobState, v *View) []Assignment {
	var out []Assignment
	i := 0
	n := v.Cluster().Len()
	for _, j := range pending {
		tasks := j.PendingTasks()
		for k := len(tasks) - 1; k >= 0; k-- { // reverse: children first
			out = append(out, Assignment{Task: tasks[k], Node: cluster.NodeID(i % n), Start: now + units.Time(len(out))})
			i++
		}
	}
	return out
}
