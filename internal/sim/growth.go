package sim

import (
	"fmt"

	"dsp/internal/dag"
	"dsp/internal/eventq"
	"dsp/internal/units"
)

// Dynamic task addition — the paper's future-work scenario where "new
// tasks are dynamically added which extends the task-dependency graph" —
// is modelled as scheduled growth events: at a point in simulated time,
// new tasks (with dependency edges into the existing DAG) join a job
// that has not yet completed. The next offline scheduling period places
// them like any other pending work.

// GrownTask describes one dynamically added task.
type GrownTask struct {
	SizeMI float64
	Demand dag.Resources
	// Parents are existing (or earlier-grown) tasks the new task depends
	// on.
	Parents []dag.TaskID
	// Preferred is the data-locality node (-1 for none).
	Preferred int
}

// TaskGrowth adds tasks to one job at one time.
type TaskGrowth struct {
	Job dag.JobID
	At  units.Time
	// Tasks are appended in order; a task may list earlier tasks in the
	// same growth batch as parents.
	Tasks []GrownTask
}

// installGrowth schedules the growth events.
func (e *Engine) installGrowth(plans []TaskGrowth) error {
	byID := make(map[dag.JobID]*JobState, len(e.jobs))
	for _, j := range e.jobs {
		byID[j.Dag.ID] = j
	}
	for gi, g := range plans {
		js, ok := byID[g.Job]
		if !ok {
			return fmt.Errorf("sim: growth references unknown job %d", g.Job)
		}
		gi, g := gi, g
		e.q.AtTag(g.At, eventq.Tag{Kind: evGrowth, A: int32(gi)}, eventq.Func(func(now units.Time) {
			e.applyGrowth(js, gi, g, now)
		}))
		// The job cannot be allowed to "complete" before its growth
		// arrives, or the extension would race job teardown; accounting
		// for that would complicate every completion path, so growth
		// simply reopens nothing: it must land while the job runs. The
		// remaining counter below reserves the tasks ahead of time.
		js.remaining += len(g.Tasks)
	}
	return nil
}

// applyGrowth extends the job's DAG and task set, recording the applied
// batch index for snapshot replay.
func (e *Engine) applyGrowth(js *JobState, gi int, g TaskGrowth, now units.Time) {
	if js.failed || js.shed {
		return // the job died (or was shed) before its extension arrived
	}
	e.growthApplied = append(e.growthApplied, gi)
	e.metrics.GrownTasks += e.growStructure(js, g, now)
}

// growStructure performs the structural part of a growth batch — DAG
// extension, dependency edges, fresh task states — and returns the task
// count. Restore replays it for every batch the snapshot recorded as
// applied, before overlaying the tasks' serialized dynamic state.
func (e *Engine) growStructure(js *JobState, g TaskGrowth, spanStart units.Time) int {
	ids := js.Dag.Grow(len(g.Tasks))
	for i, spec := range g.Tasks {
		task := js.Dag.Task(ids[i])
		task.Size = spec.SizeMI
		task.Demand = spec.Demand
		task.Preferred = spec.Preferred
		for _, p := range spec.Parents {
			// Invalid edges (out of range, cycles via forward refs) are
			// rejected by the DAG layer; a growth batch with a bad edge
			// still adds the task, just without that dependency.
			_ = js.Dag.AddDep(p, ids[i])
		}
		ts := &TaskState{
			Task:       task,
			Job:        js,
			Phase:      Pending,
			Node:       -1,
			FirstStart: -1,
			DoneAt:     -1,
			Deadline:   units.Forever,
			spanStart:  spanStart,
		}
		js.Tasks = append(js.Tasks, ts)
	}
	return len(g.Tasks)
}
