package sim

import (
	"math"
	"testing"

	"dsp/internal/cluster"
	"dsp/internal/units"
)

func TestNodeFailureReschedulesElsewhere(t *testing.T) {
	// Two nodes, one slot each. Two 10 s tasks split across them. Node 1
	// fails at 2 s and never recovers: its task must move to node 0 at
	// the next period and everything still completes.
	j := sizedJob(0, 10000, 10000)
	res, err := Run(Config{
		Cluster:   testCluster(2, 1),
		Scheduler: rrScheduler{},
		Period:    5 * units.Second,
		Faults: &FaultPlan{Failures: []NodeFailure{
			{Node: 1, At: 2 * units.Second},
		}},
	}, mkWorkload([]units.Time{0}, j))
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures != 1 {
		t.Errorf("Failures = %d, want 1", res.Failures)
	}
	if res.FailureEvictions != 1 {
		t.Errorf("FailureEvictions = %d, want 1", res.FailureEvictions)
	}
	if res.TasksCompleted != 2 {
		t.Fatalf("completed %d tasks, want 2", res.TasksCompleted)
	}
	// Task B ran [0,2) on node 1 (progress lost beyond checkpoints: the
	// zero-valued policy retains nothing and charges no penalty),
	// reassigned at the 5 s period tick, runs [10,20) on node 0 after
	// task A: makespan 20 s.
	if res.Makespan != 20*units.Second {
		t.Errorf("makespan = %v, want 20s", res.Makespan)
	}
}

func TestNodeFailureEvictsQueueToo(t *testing.T) {
	// One node, 1 slot, three tasks queued there; failure evicts the
	// running task and both queued tasks; recovery at 4 s lets the work
	// resume after the next period tick.
	j := sizedJob(0, 5000, 5000, 5000)
	res, err := Run(Config{
		Cluster:   testCluster(1, 1),
		Scheduler: rrScheduler{},
		Period:    3 * units.Second,
		Faults: &FaultPlan{Failures: []NodeFailure{
			{Node: 0, At: units.Second, RecoverAfter: 3 * units.Second},
		}},
	}, mkWorkload([]units.Time{0}, j))
	if err != nil {
		t.Fatal(err)
	}
	if res.FailureEvictions != 3 {
		t.Errorf("FailureEvictions = %d, want 3", res.FailureEvictions)
	}
	if res.TasksCompleted != 3 {
		t.Fatalf("completed %d tasks, want 3", res.TasksCompleted)
	}
	// Failure at 1 s; recovery at 4 s; period tick at 6 s reassigns; 15 s
	// of work serially: makespan 21 s.
	if res.Makespan != 21*units.Second {
		t.Errorf("makespan = %v, want 21s", res.Makespan)
	}
}

// liveRR is rrScheduler but skips nodes whose effective speed is zero
// (down), as any real scheduler consulting View.Speed would.
type liveRR struct{}

func (liveRR) Name() string { return "live-rr" }
func (liveRR) Schedule(now units.Time, pending []*JobState, v *View) []Assignment {
	var live []cluster.NodeID
	for k := 0; k < v.Cluster().Len(); k++ {
		if v.Speed(cluster.NodeID(k)) > 0 {
			live = append(live, cluster.NodeID(k))
		}
	}
	if len(live) == 0 {
		return nil
	}
	var out []Assignment
	i := 0
	for _, j := range pending {
		for _, t := range j.PendingTasks() {
			out = append(out, Assignment{Task: t, Node: live[i%len(live)], Start: now})
			i++
		}
	}
	return out
}

func TestCheckpointSurvivesCrash(t *testing.T) {
	// With a 1 s checkpoint interval, a task that ran 4.0 s before the
	// crash resumes from the 4 s checkpoint (plus the resume penalty).
	j := sizedJob(0, 10000)
	cp := cluster.DefaultCheckpoint()
	res, err := Run(Config{
		Cluster:    testCluster(2, 1),
		Scheduler:  liveRR{},
		Checkpoint: cp,
		Period:     2 * units.Second,
		Faults: &FaultPlan{Failures: []NodeFailure{
			{Node: 0, At: 4 * units.Second},
		}},
	}, mkWorkload([]units.Time{0}, j))
	if err != nil {
		t.Fatal(err)
	}
	// Crash at 4 s with 4 s checkpointed; reassigned at the 4 s period
	// tick... period ticks at 0,2,4: the 4 s tick fires after the crash
	// event (both at 4 s, crash scheduled first): reassigned to node 1 at
	// 4 s, resume penalty 2.05 s, 6 s left: done at 12.05 s.
	want := 12*units.Second + 50*units.Millisecond
	if res.Makespan != want {
		t.Errorf("makespan = %v, want %v", res.Makespan, want)
	}
}

func TestStragglerSlowsAndRecovers(t *testing.T) {
	// A 10 s task; the node drops to 0.5× speed during [2s,6s]: work done
	// = 2 s (full) + 4 s at half speed (2 s equivalent) + remaining 6 s
	// at full speed: completes at 12 s.
	j := sizedJob(0, 10000)
	res, err := Run(Config{
		Cluster:   testCluster(1, 1),
		Scheduler: rrScheduler{},
		Faults: &FaultPlan{Stragglers: []Straggler{
			{Node: 0, At: 2 * units.Second, Factor: 0.5, Duration: 4 * units.Second},
		}},
	}, mkWorkload([]units.Time{0}, j))
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 12*units.Second {
		t.Errorf("makespan = %v, want 12s", res.Makespan)
	}
}

func TestPermanentStraggler(t *testing.T) {
	j := sizedJob(0, 10000)
	res, err := Run(Config{
		Cluster:   testCluster(1, 1),
		Scheduler: rrScheduler{},
		Faults: &FaultPlan{Stragglers: []Straggler{
			{Node: 0, At: 5 * units.Second, Factor: 0.25},
		}},
	}, mkWorkload([]units.Time{0}, j))
	if err != nil {
		t.Fatal(err)
	}
	// 5 s at full speed + 5 s of work at 0.25× = 20 s more: 25 s total.
	if res.Makespan != 25*units.Second {
		t.Errorf("makespan = %v, want 25s", res.Makespan)
	}
}

func TestFaultPlanRejectsInvalidEntries(t *testing.T) {
	// Invalid fault plans abort the run with an error instead of being
	// silently truncated — a typo'd node ID must not quietly turn a
	// degradation experiment into a fault-free baseline.
	j := sizedJob(0, 1000)
	cases := []struct {
		name string
		plan *FaultPlan
	}{
		{"failure node out of range", &FaultPlan{Failures: []NodeFailure{{Node: 99, At: 0}}}},
		{"failure negative node", &FaultPlan{Failures: []NodeFailure{{Node: -1, At: 0}}}},
		{"failure negative time", &FaultPlan{Failures: []NodeFailure{{Node: 0, At: -units.Second}}}},
		{"straggler node out of range", &FaultPlan{Stragglers: []Straggler{{Node: 5, At: 0, Factor: 0.5}}}},
		{"straggler zero factor", &FaultPlan{Stragglers: []Straggler{{Node: 0, At: 0, Factor: 0}}}},
		{"straggler negative factor", &FaultPlan{Stragglers: []Straggler{{Node: 0, At: 0, Factor: -2}}}},
		{"straggler NaN factor", &FaultPlan{Stragglers: []Straggler{{Node: 0, At: 0, Factor: math.NaN()}}}},
		{"straggler negative time", &FaultPlan{Stragglers: []Straggler{{Node: 0, At: -1, Factor: 0.5}}}},
		{"task-fault rate above 1", &FaultPlan{Tasks: &TaskFaults{Rate: 1.5}}},
		{"task-fault rate negative", &FaultPlan{Tasks: &TaskFaults{Rate: -0.1}}},
		{"overlapping failure windows", &FaultPlan{Failures: []NodeFailure{
			{Node: 0, At: units.Second, RecoverAfter: 5 * units.Second},
			{Node: 0, At: 3 * units.Second},
		}}},
		{"second failure while never recovering", &FaultPlan{Failures: []NodeFailure{
			{Node: 0, At: units.Second},
			{Node: 0, At: 100 * units.Second},
		}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.plan.Validate(1); err == nil {
				t.Error("Validate accepted an invalid plan")
			}
			_, err := Run(Config{
				Cluster:   testCluster(1, 1),
				Scheduler: rrScheduler{},
				Faults:    tc.plan,
			}, mkWorkload([]units.Time{0}, j))
			if err == nil {
				t.Error("Run accepted an invalid fault plan")
			}
		})
	}
}

func TestFaultPlanAcceptsTouchingWindows(t *testing.T) {
	// Back-to-back windows on one node are legal: recovery fires before a
	// same-instant crash (event insertion order breaks the tie), so the
	// node cycles down→up→down cleanly.
	plan := &FaultPlan{Failures: []NodeFailure{
		{Node: 0, At: units.Second, RecoverAfter: 2 * units.Second},
		{Node: 0, At: 3 * units.Second, RecoverAfter: 2 * units.Second},
	}}
	if err := plan.Validate(1); err != nil {
		t.Fatalf("touching windows rejected: %v", err)
	}
	j := sizedJob(0, 2000)
	res, err := Run(Config{
		Cluster:   testCluster(2, 1),
		Scheduler: liveRR{},
		Period:    units.Second,
		Faults:    plan,
	}, mkWorkload([]units.Time{0}, j))
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures != 2 {
		t.Errorf("Failures = %d, want 2 (both windows fired)", res.Failures)
	}
	if res.TasksCompleted != 1 {
		t.Errorf("completed %d tasks, want 1", res.TasksCompleted)
	}
}

func TestSchedulerAvoidsDownNode(t *testing.T) {
	// eftScheduler-style check via rr: rr blindly assigns to node 1 even
	// while down; the engine must refuse and the next period lands it on
	// a live node. (Real schedulers consult View.Speed, which is 0.)
	j := sizedJob(0, 1000, 1000)
	res, err := Run(Config{
		Cluster:   testCluster(2, 1),
		Scheduler: rrScheduler{},
		Period:    2 * units.Second,
		Faults: &FaultPlan{Failures: []NodeFailure{
			{Node: 1, At: 0, RecoverAfter: 100 * units.Second},
		}},
	}, mkWorkload([]units.Time{0}, j))
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksCompleted != 2 {
		t.Fatalf("completed %d tasks, want 2", res.TasksCompleted)
	}
	// Task for node 1 is refused at t=0, reassigned at 2 s — node 1 still
	// down, refused again... rr keeps trying node 1 for the second
	// pending task? No: each period, rr assigns pending tasks round-robin
	// starting at node 0, so the single leftover task goes to node 0 at
	// 2 s and completes at 3 s.
	if res.Makespan != 3*units.Second {
		t.Errorf("makespan = %v, want 3s", res.Makespan)
	}
}
