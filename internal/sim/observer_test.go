package sim

import (
	"strings"
	"testing"

	"dsp/internal/cluster"
	"dsp/internal/units"
)

// countingObserver tallies events.
type countingObserver struct {
	NopObserver
	starts, preempts, completes, jobs int
	lastPreemptStarter                *TaskState
}

func (c *countingObserver) TaskStarted(units.Time, *TaskState, cluster.NodeID) { c.starts++ }
func (c *countingObserver) TaskPreempted(_ units.Time, _, s *TaskState, _ cluster.NodeID) {
	c.preempts++
	c.lastPreemptStarter = s
}
func (c *countingObserver) TaskCompleted(units.Time, *TaskState, cluster.NodeID) { c.completes++ }
func (c *countingObserver) JobCompleted(units.Time, *JobState)                   { c.jobs++ }

func TestObserverReceivesEvents(t *testing.T) {
	j := sizedJob(0, 10000, 1000)
	obs := &countingObserver{}
	pre := &onceActor{act: func(now units.Time, v *View) []Action {
		return []Action{{Node: 0, Victim: v.Running(0)[0], Starter: v.Queue(0)[0]}}
	}}
	_, err := Run(Config{
		Cluster:    testCluster(1, 1),
		Scheduler:  rrScheduler{},
		Preemptor:  pre,
		Checkpoint: cluster.DefaultCheckpoint(),
		Epoch:      2 * units.Second,
		Observer:   obs,
	}, mkWorkload([]units.Time{0}, j))
	if err != nil {
		t.Fatal(err)
	}
	// Starts: task A, then starter B via preemption, then A resumes = 3.
	if obs.starts != 3 {
		t.Errorf("starts = %d, want 3", obs.starts)
	}
	if obs.preempts != 1 {
		t.Errorf("preempts = %d, want 1", obs.preempts)
	}
	if obs.completes != 2 {
		t.Errorf("completes = %d, want 2", obs.completes)
	}
	if obs.jobs != 1 {
		t.Errorf("jobs = %d, want 1", obs.jobs)
	}
	if obs.lastPreemptStarter == nil || obs.lastPreemptStarter.Task.ID != 1 {
		t.Error("preempt starter not reported")
	}
}

func TestObserversCompose(t *testing.T) {
	a := &countingObserver{}
	b := &countingObserver{}
	j := sizedJob(0, 1000)
	_, err := Run(Config{
		Cluster:   testCluster(1, 1),
		Scheduler: rrScheduler{},
		Observer:  Observers{a, b},
	}, mkWorkload([]units.Time{0}, j))
	if err != nil {
		t.Fatal(err)
	}
	if a.starts != 1 || b.starts != 1 || a.jobs != 1 || b.jobs != 1 {
		t.Errorf("composed observers missed events: a=%+v b=%+v", a, b)
	}
}

// NopObserver must satisfy the full interface so implementors can embed
// it and stay compatible as the event surface grows.
var _ Observer = NopObserver{}
var _ Observer = Observers{}

func TestObserversSkipNil(t *testing.T) {
	a := &countingObserver{}
	j := sizedJob(0, 1000)
	// Nil entries (common when composing optional exporters) must be
	// skipped, not dereferenced.
	_, err := Run(Config{
		Cluster:   testCluster(1, 1),
		Scheduler: rrScheduler{},
		Observer:  Observers{nil, a, nil, NopObserver{}},
	}, mkWorkload([]units.Time{0}, j))
	if err != nil {
		t.Fatal(err)
	}
	if a.starts != 1 || a.jobs != 1 {
		t.Errorf("observer after nil entry missed events: %+v", a)
	}
}

func TestObserverDecisionEvents(t *testing.T) {
	// A forced preemption must surface as an accepted PreemptionConsidered
	// decision plus epoch markers, and the per-run verdict counts must
	// agree with the engine's Result.
	rec := &struct {
		decisions []PreemptionDecision
		epochs    int
		ends      int
	}{}
	obsv := observerFuncs{
		onConsidered: func(d PreemptionDecision) { rec.decisions = append(rec.decisions, d) },
		onEpochStart: func() { rec.epochs++ },
		onEpochEnd:   func() { rec.ends++ },
	}
	j := sizedJob(0, 10000, 1000)
	pre := &onceActor{act: func(now units.Time, v *View) []Action {
		return []Action{{Node: 0, Victim: v.Running(0)[0], Starter: v.Queue(0)[0], Urgent: true}}
	}}
	res, err := Run(Config{
		Cluster:    testCluster(1, 1),
		Scheduler:  rrScheduler{},
		Preemptor:  pre,
		Checkpoint: cluster.DefaultCheckpoint(),
		Epoch:      2 * units.Second,
		Observer:   obsv,
	}, mkWorkload([]units.Time{0}, j))
	if err != nil {
		t.Fatal(err)
	}
	if res.Preemptions != 1 {
		t.Fatalf("fixture expects 1 preemption, got %d", res.Preemptions)
	}
	accepted := 0
	for _, d := range rec.decisions {
		switch d.Verdict {
		case VerdictAccepted, VerdictUrgentOverride:
			accepted++
			if d.Candidate == nil || d.Victim == nil {
				t.Error("accepted decision missing candidate or victim")
			}
		}
	}
	if accepted != res.Preemptions {
		t.Errorf("accepted decisions = %d, want Result.Preemptions = %d", accepted, res.Preemptions)
	}
	// The action was marked urgent, so the verdict must say so.
	if rec.decisions[0].Verdict != VerdictUrgentOverride {
		t.Errorf("verdict = %v, want urgent-override", rec.decisions[0].Verdict)
	}
	if rec.epochs == 0 || rec.epochs != rec.ends {
		t.Errorf("epoch markers unbalanced: %d started, %d ended", rec.epochs, rec.ends)
	}
}

// observerFuncs adapts closures to the Observer interface for tests.
type observerFuncs struct {
	NopObserver
	onConsidered func(PreemptionDecision)
	onEpochStart func()
	onEpochEnd   func()
}

func (o observerFuncs) PreemptionConsidered(_ units.Time, d PreemptionDecision) {
	if o.onConsidered != nil {
		o.onConsidered(d)
	}
}
func (o observerFuncs) EpochStarted(units.Time, int) {
	if o.onEpochStart != nil {
		o.onEpochStart()
	}
}
func (o observerFuncs) EpochEnded(units.Time, int, *View) {
	if o.onEpochEnd != nil {
		o.onEpochEnd()
	}
}

func TestVerdictStrings(t *testing.T) {
	want := map[Verdict]string{
		VerdictAccepted:       "accepted",
		VerdictSuppressedByPP: "suppressed-by-PP",
		VerdictUrgentOverride: "urgent-override",
		VerdictDisorder:       "disorder",
	}
	for v, s := range want {
		if v.String() != s {
			t.Errorf("Verdict(%d).String() = %q, want %q", v, v.String(), s)
		}
	}
	if RequeueBlindTimeout.String() != "blind-timeout" {
		t.Errorf("RequeueBlindTimeout = %q", RequeueBlindTimeout.String())
	}
}

func TestLogObserverOutput(t *testing.T) {
	var sb strings.Builder
	j := sizedJob(0, 1000)
	_, err := Run(Config{
		Cluster:   testCluster(1, 1),
		Scheduler: rrScheduler{},
		Observer:  &LogObserver{W: &sb},
	}, mkWorkload([]units.Time{0}, j))
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"start", "complete", "job-done J0"} {
		if !strings.Contains(out, want) {
			t.Errorf("log missing %q:\n%s", want, out)
		}
	}
}
