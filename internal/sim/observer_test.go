package sim

import (
	"strings"
	"testing"

	"dsp/internal/cluster"
	"dsp/internal/units"
)

// countingObserver tallies events.
type countingObserver struct {
	starts, preempts, completes, jobs int
	lastPreemptStarter                *TaskState
}

func (c *countingObserver) TaskStarted(units.Time, *TaskState, cluster.NodeID) { c.starts++ }
func (c *countingObserver) TaskPreempted(_ units.Time, _, s *TaskState, _ cluster.NodeID) {
	c.preempts++
	c.lastPreemptStarter = s
}
func (c *countingObserver) TaskCompleted(units.Time, *TaskState, cluster.NodeID) { c.completes++ }
func (c *countingObserver) JobCompleted(units.Time, *JobState)                   { c.jobs++ }

func TestObserverReceivesEvents(t *testing.T) {
	j := sizedJob(0, 10000, 1000)
	obs := &countingObserver{}
	pre := &onceActor{act: func(now units.Time, v *View) []Action {
		return []Action{{Node: 0, Victim: v.Running(0)[0], Starter: v.Queue(0)[0]}}
	}}
	_, err := Run(Config{
		Cluster:    testCluster(1, 1),
		Scheduler:  rrScheduler{},
		Preemptor:  pre,
		Checkpoint: cluster.DefaultCheckpoint(),
		Epoch:      2 * units.Second,
		Observer:   obs,
	}, mkWorkload([]units.Time{0}, j))
	if err != nil {
		t.Fatal(err)
	}
	// Starts: task A, then starter B via preemption, then A resumes = 3.
	if obs.starts != 3 {
		t.Errorf("starts = %d, want 3", obs.starts)
	}
	if obs.preempts != 1 {
		t.Errorf("preempts = %d, want 1", obs.preempts)
	}
	if obs.completes != 2 {
		t.Errorf("completes = %d, want 2", obs.completes)
	}
	if obs.jobs != 1 {
		t.Errorf("jobs = %d, want 1", obs.jobs)
	}
	if obs.lastPreemptStarter == nil || obs.lastPreemptStarter.Task.ID != 1 {
		t.Error("preempt starter not reported")
	}
}

func TestObserversCompose(t *testing.T) {
	a := &countingObserver{}
	b := &countingObserver{}
	j := sizedJob(0, 1000)
	_, err := Run(Config{
		Cluster:   testCluster(1, 1),
		Scheduler: rrScheduler{},
		Observer:  Observers{a, b},
	}, mkWorkload([]units.Time{0}, j))
	if err != nil {
		t.Fatal(err)
	}
	if a.starts != 1 || b.starts != 1 || a.jobs != 1 || b.jobs != 1 {
		t.Errorf("composed observers missed events: a=%+v b=%+v", a, b)
	}
}

func TestLogObserverOutput(t *testing.T) {
	var sb strings.Builder
	j := sizedJob(0, 1000)
	_, err := Run(Config{
		Cluster:   testCluster(1, 1),
		Scheduler: rrScheduler{},
		Observer:  &LogObserver{W: &sb},
	}, mkWorkload([]units.Time{0}, j))
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"start", "complete", "job-done J0"} {
		if !strings.Contains(out, want) {
			t.Errorf("log missing %q:\n%s", want, out)
		}
	}
}
