package sim

import (
	"testing"

	"dsp/internal/dag"
	"dsp/internal/trace"
	"dsp/internal/units"
)

// streamCfg is a small streaming engine for ingestion tests: one node,
// one slot, 10 s periods.
func streamCfg(obs Observer) Config {
	return Config{
		Cluster:   testCluster(1, 1),
		Scheduler: rrScheduler{},
		Period:    10 * units.Second,
		Epoch:     5 * units.Second,
		Streaming: true,
		Observer:  obs,
	}
}

func streamJob(id dag.JobID, arrival units.Time, sizes ...float64) *trace.Job {
	return &trace.Job{Class: trace.Small, Arrival: arrival, DAG: sizedJob(id, sizes...)}
}

// shedTimeRecorder captures the event time of every JobShed.
type shedTimeRecorder struct {
	NopObserver
	at map[dag.JobID]units.Time
}

func (r *shedTimeRecorder) JobShed(now units.Time, j *JobState, _ ShedReason) {
	r.at[j.ID()] = now
}

// TestStreamingShedEventCarriesArrivalStamp is the regression test for
// the streaming admission timestamp: a job shed at a period boundary
// must emit JobShed with its virtual arrival stamp, not the boundary
// time the decision happens to run at. (Batch runs decide at arrival,
// so the two coincide there; under streaming ingestion they differ by
// up to a full period.)
func TestStreamingShedEventCarriesArrivalStamp(t *testing.T) {
	rec := &shedTimeRecorder{at: map[dag.JobID]units.Time{}}
	cfg := streamCfg(rec)
	cfg.Admission = &Admission{MaxPendingTasks: 1}
	e, err := Prepare(cfg, &trace.Workload{})
	if err != nil {
		t.Fatal(err)
	}
	// A fills the backlog; B arrives at 3 s and must be shed — but the
	// decision only runs at the 10 s boundary drain.
	if _, err := e.Submit(streamJob(0, 2*units.Second, 100000)); err != nil {
		t.Fatal(err)
	}
	stampB, err := e.Submit(streamJob(1, 3*units.Second, 1000, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if stampB != 3*units.Second {
		t.Fatalf("stamp for B = %v, want 3s", stampB)
	}
	if _, err := e.StepUntil(10 * units.Second); err != nil {
		t.Fatal(err)
	}
	at, ok := rec.at[1]
	if !ok {
		t.Fatal("job 1 was not shed")
	}
	if at != stampB {
		t.Errorf("JobShed event time = %v, want the arrival stamp %v (not the boundary)", at, stampB)
	}
	if st, ok := e.JobStatus(1); !ok || st.State != "shed" {
		t.Errorf("job 1 status = %+v (ok %v), want shed", st, ok)
	}
}

// TestStreamingLifecycleAndCancel walks a job through accepted ->
// pending/running -> completed, cancels another mid-flight, and checks
// the terminal accounting identity.
func TestStreamingLifecycleAndCancel(t *testing.T) {
	e, err := Prepare(streamCfg(nil), &trace.Workload{})
	if err != nil {
		t.Fatal(err)
	}
	// Job 0: two 5 s tasks (serial on the single slot). Job 1: one 60 s
	// task, cancelled while running.
	if _, err := e.Submit(streamJob(0, 0, 5000, 5000)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Submit(streamJob(1, 0, 60000)); err != nil {
		t.Fatal(err)
	}
	if st, ok := e.JobStatus(0); !ok || st.State != "accepted" {
		t.Fatalf("pre-drain status = %+v (ok %v), want accepted", st, ok)
	}
	if _, err := e.StepUntil(10 * units.Second); err != nil { // first boundary: drain + schedule
		t.Fatal(err)
	}
	st, ok := e.JobStatus(0)
	if !ok || (st.State != "running" && st.State != "pending") {
		t.Fatalf("post-drain status = %+v (ok %v), want running/pending", st, ok)
	}
	if _, err := e.RequestCancel(1); err != nil {
		t.Fatal(err)
	}
	// Cancels are idempotent for known jobs.
	if _, err := e.RequestCancel(1); err != nil {
		t.Fatalf("second cancel: %v", err)
	}
	if _, err := e.StepUntil(30 * units.Second); err != nil {
		t.Fatal(err)
	}
	if st, ok := e.JobStatus(1); !ok || st.State != "cancelled" {
		t.Fatalf("cancelled job status = %+v (ok %v), want cancelled", st, ok)
	}
	res, err := e.FinishStreaming()
	if err != nil {
		t.Fatal(err)
	}
	if res.JobsCompleted != 1 || res.JobsCancelled != 1 {
		t.Errorf("completed %d cancelled %d, want 1 and 1", res.JobsCompleted, res.JobsCancelled)
	}
	if res.JobsCompleted+res.JobsFailed+res.JobsShed != 2 {
		t.Errorf("accounting: %d + %d + %d != 2", res.JobsCompleted, res.JobsFailed, res.JobsShed)
	}
	if st, ok := e.JobStatus(0); !ok || st.State != "completed" || st.TasksDone != 2 {
		t.Errorf("final status = %+v (ok %v), want completed with 2 tasks done", st, ok)
	}
}

// TestStreamingSubmitValidation covers the synchronous reject paths the
// serving layer maps to HTTP errors.
func TestStreamingSubmitValidation(t *testing.T) {
	e, err := Prepare(streamCfg(nil), &trace.Workload{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Submit(streamJob(7, 0, 1000)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Submit(streamJob(7, 0, 1000)); err == nil {
		t.Error("duplicate id accepted")
	}
	if _, err := e.RequestCancel(99); err == nil {
		t.Error("cancel of unknown job accepted")
	}
	bad := streamJob(8, 0, 1000)
	bad.WaitsFor = []dag.JobID{42}
	if _, err := e.Submit(bad); err == nil {
		t.Error("submission waiting on unknown job accepted")
	}
	e.CloseIngest()
	if _, err := e.Submit(streamJob(9, 0, 1000)); err == nil {
		t.Error("submission after CloseIngest accepted")
	}
}

// TestStreamingRetirementBoundsState checks that settled jobs release
// their DAG and task state at the next boundary while their externally
// visible status survives.
func TestStreamingRetirementBoundsState(t *testing.T) {
	e, err := Prepare(streamCfg(nil), &trace.Workload{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Submit(streamJob(0, 0, 1000)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.StepUntil(30 * units.Second); err != nil { // completes at ~11 s, retires at 20 s
		t.Fatal(err)
	}
	js := e.jobByID(0)
	if js == nil {
		t.Fatal("job 0 gone from index")
	}
	if !js.Retired() || js.Tasks != nil || js.Dag != nil {
		t.Errorf("job not retired: retired=%v tasks=%v dag=%v", js.Retired(), js.Tasks != nil, js.Dag != nil)
	}
	st, ok := e.JobStatus(0)
	if !ok || st.State != "completed" || st.TasksTotal != 1 || st.TasksDone != 1 {
		t.Errorf("retired status = %+v (ok %v), want completed 1/1", st, ok)
	}
}
