package sim

import (
	"fmt"

	"dsp/internal/cluster"
	"dsp/internal/units"
)

// The runtime invariant auditor (Config.AuditInvariants) promotes the
// package's test-only invariants into an opt-in production check: at
// every scheduling boundary (each epoch; each period when no preemptor
// runs) it re-derives the engine's core invariants from scratch and, on
// a violation, quarantines the offending node or task — the run degrades
// to fewer resources or a failed job instead of silently computing
// garbage. Every detection is counted in Result.InvariantViolations and
// emitted as an InvariantViolated observer event.

// auditInvariants re-checks engine state and quarantines offenders.
func (e *Engine) auditInvariants(now units.Time) {
	seen := make(map[*TaskState]cluster.NodeID)
	for k := range e.nodes {
		node := cluster.NodeID(k)
		ns := e.nodes[k]
		if occ := len(ns.running) + len(ns.spec); occ > ns.node.Slots {
			e.violate(now, InvariantViolation{
				Check: "slot-capacity", Node: node,
				Detail: fmt.Sprintf("%d occupants in %d slots", occ, ns.node.Slots),
			})
			e.quarantineNode(node, now)
			continue
		}
		if ns.down && len(ns.running) > 0 {
			e.violate(now, InvariantViolation{
				Check: "down-node-running", Node: node,
				Detail: fmt.Sprintf("%d tasks running on a down node", len(ns.running)),
			})
			for _, t := range append([]*TaskState(nil), ns.running...) {
				e.quarantineTask(t, now)
			}
			continue
		}
		running := append([]*TaskState(nil), ns.running...)
		for _, t := range running {
			if prev, dup := seen[t]; dup {
				e.violate(now, InvariantViolation{
					Check: "duplicate-task", Node: node, Task: t,
					Detail: fmt.Sprintf("also present on node %d", prev),
				})
				e.quarantineTask(t, now)
				continue
			}
			seen[t] = node
			switch {
			case t.Phase != Running:
				e.violate(now, InvariantViolation{
					Check: "phase-running", Node: node, Task: t,
					Detail: fmt.Sprintf("in running set with phase %v", t.Phase),
				})
				e.quarantineTask(t, now)
			case t.Node != node:
				e.violate(now, InvariantViolation{
					Check: "node-mismatch", Node: node, Task: t,
					Detail: fmt.Sprintf("running here but records node %d", t.Node),
				})
				e.quarantineTask(t, now)
			case !t.blocked && !t.DepsMet():
				e.violate(now, InvariantViolation{
					Check: "dependency-order", Node: node, Task: t,
					Detail: "executing with unfinished precedents",
				})
				e.quarantineTask(t, now)
			case t.doneMI > t.Task.Size+1e-6:
				e.violate(now, InvariantViolation{
					Check: "progress-overflow", Node: node, Task: t,
					Detail: fmt.Sprintf("done %.1f MI of %.1f", t.doneMI, t.Task.Size),
				})
				e.quarantineTask(t, now)
			}
		}
		queue := append([]*TaskState(nil), ns.queue...)
		var prevPlanned units.Time
		for i, t := range queue {
			if prev, dup := seen[t]; dup {
				e.violate(now, InvariantViolation{
					Check: "duplicate-task", Node: node, Task: t,
					Detail: fmt.Sprintf("also present on node %d", prev),
				})
				e.quarantineTask(t, now)
				continue
			}
			seen[t] = node
			switch {
			case t.Phase != Queued && t.Phase != Suspended:
				e.violate(now, InvariantViolation{
					Check: "phase-queued", Node: node, Task: t,
					Detail: fmt.Sprintf("in waiting queue with phase %v", t.Phase),
				})
				e.quarantineTask(t, now)
				continue
			case t.Node != node:
				e.violate(now, InvariantViolation{
					Check: "node-mismatch", Node: node, Task: t,
					Detail: fmt.Sprintf("queued here but records node %d", t.Node),
				})
				e.quarantineTask(t, now)
				continue
			}
			if i > 0 && t.PlannedStart < prevPlanned {
				e.violate(now, InvariantViolation{
					Check: "queue-order", Node: node, Task: t,
					Detail: fmt.Sprintf("planned start %v after an entry planned at %v", t.PlannedStart, prevPlanned),
				})
				e.quarantineTask(t, now)
				continue
			}
			prevPlanned = t.PlannedStart
		}
	}
}

// violate records one detection.
func (e *Engine) violate(now units.Time, v InvariantViolation) {
	e.metrics.InvariantViolations++
	if o := e.cfg.Observer; o != nil {
		o.InvariantViolated(now, v)
	}
}

// quarantineNode takes a node whose bookkeeping cannot be trusted out of
// service for the rest of the run, with crash semantics: running work is
// evicted and charged a retry, queued work returns to Pending for
// re-placement elsewhere.
func (e *Engine) quarantineNode(k cluster.NodeID, now units.Time) {
	e.metrics.Quarantines++
	e.failNode(k, now)
}

// quarantineTask forcibly discards a task whose recorded state cannot be
// trusted and fails its job. The task's own fields may lie, so every
// node's running set and queue is scanned by identity; pending events
// are cancelled before the phase changes so a stale completion cannot
// fire on the corrupt task later.
func (e *Engine) quarantineTask(t *TaskState, now units.Time) {
	e.metrics.Quarantines++
	for k := range e.nodes {
		ns := e.nodes[k]
		for i, r := range ns.running {
			if r == t {
				ns.running = append(ns.running[:i], ns.running[i+1:]...)
				break
			}
		}
		for i, q := range ns.queue {
			if q == t {
				ns.queue = append(ns.queue[:i], ns.queue[i+1:]...)
				break
			}
		}
	}
	if t.hasDoneEv {
		e.q.Cancel(t.doneEv)
		t.hasDoneEv = false
	}
	if t.hasBlockEv {
		e.q.Cancel(t.blockEv)
		t.hasBlockEv = false
	}
	if t.hasRetryEv {
		e.q.Cancel(t.retryEv)
		t.hasRetryEv = false
	}
	if t.backup != nil {
		e.cancelBackup(t.backup, now)
	}
	t.blocked = false
	t.Phase = Failed
	e.failJob(t.Job, now)
	for k := range e.nodes {
		e.tryFill(cluster.NodeID(k), now)
	}
}
