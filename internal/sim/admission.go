package sim

import (
	"dsp/internal/cluster"
	"dsp/internal/dag"
	"dsp/internal/units"
)

// Admission is the engine's overload valve. Without it, every arriving
// job joins the pending pool and queues grow without bound when arrivals
// outpace the cluster — the paper's workload already oversubscribes it
// ~4×. With it, jobs that provably cannot help (deadline unreachable) or
// that would push the backlog past a bound are shed at arrival: counted
// as shed, never as failures or deadline misses, and never occupying
// slots that admitted work needs.
type Admission struct {
	// MaxPendingTasks bounds the cluster-wide backlog of admitted-but-
	// unassigned tasks. A job whose arrival pushes the backlog past the
	// bound is shed. 0 = unbounded.
	MaxPendingTasks int
	// ShedInfeasible sheds jobs whose deadline is unreachable at
	// arrival. Two tests apply: a certain-loser bound (the critical path
	// alone, executed back-to-back on the fastest node, finishes past
	// the deadline — ignores queueing entirely), and a backlog-aware
	// estimate (the cluster's outstanding work drained at full service
	// rate delays the job's critical path past the deadline). The second
	// is an estimate, not a proof — but jobs it rejects would otherwise
	// occupy slots for work that almost surely completes late, dragging
	// admitted jobs past their own deadlines with it.
	ShedInfeasible bool
	// Margin hedges the backlog-aware estimate's pessimism (it assumes
	// the whole backlog drains ahead of the new job, which concurrent
	// scheduling rarely makes true): the estimate sheds only when the
	// projected finish exceeds Margin × deadline. ≤1 (including unset)
	// means no hedge. The certain-loser bound ignores Margin — it is a
	// proof, not an estimate.
	Margin float64
}

// admitJob is the job-arrival decision: the job either joins the pending
// pool (no-op — arrivedPending picks it up) or is shed.
func (e *Engine) admitJob(j *JobState, now units.Time) {
	ad := e.cfg.Admission
	if ad == nil || j.failed || j.shed {
		e.notePendingPeak(now)
		return
	}
	if ad.ShedInfeasible && j.Deadline > 0 {
		if fastest := e.fastestNominalSpeed(); fastest > 0 {
			exec := func(id dag.TaskID) float64 { return j.Dag.Task(id).Size / fastest }
			if _, cp, err := j.Dag.CriticalPath(exec); err == nil {
				if addTime(now, units.FromSeconds(cp)) > j.Deadline {
					e.shedJob(j, j.Arrival, ShedDeadlineInfeasible)
					return
				}
				margin := ad.Margin
				if margin < 1 {
					margin = 1
				}
				if rate := e.serviceRateMIPS(); rate > 0 {
					delay := e.outstandingWorkMI(now, j) / rate
					est := addTime(now, units.FromSeconds(cp+delay))
					budget := addTime(j.Arrival, units.Time(margin*float64(j.Deadline-j.Arrival)))
					if est > budget {
						e.shedJob(j, j.Arrival, ShedDeadlineInfeasible)
						return
					}
				}
			}
		}
	}
	if ad.MaxPendingTasks > 0 && e.pendingBacklog(now) > ad.MaxPendingTasks {
		// The backlog already includes this job's tasks (it has arrived).
		e.shedJob(j, j.Arrival, ShedQueueFull)
		return
	}
	e.notePendingPeak(now)
}

// shedJob rejects a job at admission: it never runs, its tasks are
// terminally parked, and jobs waiting on it — which can now never become
// eligible — are shed with it. eventAt is the timestamp the JobShed
// observer event carries: the arrival stamp of the job whose admission
// decision triggered the shed. In batch mode the decision runs inside
// the arrival event, so eventAt equals the decision time; under
// streaming ingestion the decision runs at the period boundary that
// drained the job, and eventAt keeps the audit stream and blame
// attribution aligned with wall-clock ingestion. Dependency-cascade
// sheds inherit the triggering decision's eventAt unchanged: the whole
// cascade is one decision.
func (e *Engine) shedJob(j *JobState, eventAt units.Time, reason ShedReason) {
	if j.failed || j.shed || j.Done() {
		return
	}
	j.shed = true
	e.jobsRemaining--
	e.metrics.JobsShed++
	// Shed happens at arrival, before any task was assigned; park the
	// tasks so stray references cannot resurrect them.
	for _, t := range j.Tasks {
		t.Phase = Failed
	}
	if o := e.cfg.Observer; o != nil {
		o.JobShed(eventAt, j, reason)
	}
	for _, other := range e.jobs {
		if other.failed || other.shed || other.Done() {
			continue
		}
		for _, p := range other.waitsFor {
			if p == j {
				e.shedJob(other, eventAt, ShedDependency)
				break
			}
		}
	}
}

// pendingBacklog counts admitted-but-unassigned tasks across arrived
// live jobs — the quantity bounded admission holds down.
func (e *Engine) pendingBacklog(now units.Time) int {
	n := 0
	for _, j := range e.jobs {
		if j.Arrival > now || j.failed || j.shed || j.Done() {
			continue
		}
		if d := len(j.Tasks) - j.assigned; d > 0 {
			n += d
		}
	}
	return n
}

// notePendingPeak samples the backlog high-water mark.
func (e *Engine) notePendingPeak(now units.Time) {
	if b := e.pendingBacklog(now); b > e.metrics.PeakPendingTasks {
		e.metrics.PeakPendingTasks = b
	}
}

// fastestNominalSpeed is the best speed any node offers at full health —
// the optimistic bound the infeasibility check needs.
func (e *Engine) fastestNominalSpeed() float64 {
	best := 0.0
	c := e.cfg.Cluster
	for k := 0; k < c.Len(); k++ {
		if s := c.Speed(cluster.NodeID(k)); s > best {
			best = s
		}
	}
	return best
}

// serviceRateMIPS is the cluster's aggregate nominal service rate:
// Σ_k speed_k × slots_k.
func (e *Engine) serviceRateMIPS() float64 {
	rate := 0.0
	c := e.cfg.Cluster
	for k := 0; k < c.Len(); k++ {
		rate += c.Speed(cluster.NodeID(k)) * float64(c.Node(cluster.NodeID(k)).Slots)
	}
	return rate
}

// outstandingWorkMI estimates the unfinished work (MI) already admitted
// ahead of job j — the queueing term of the infeasibility estimate.
func (e *Engine) outstandingWorkMI(now units.Time, j *JobState) float64 {
	var total float64
	for _, other := range e.jobs {
		if other == j || other.Arrival > now || other.failed || other.shed || other.Done() {
			continue
		}
		for _, t := range other.Tasks {
			if t.Phase == Done {
				continue
			}
			if rem := t.Task.Size - t.doneMI; rem > 0 {
				total += rem
			}
		}
	}
	return total
}
