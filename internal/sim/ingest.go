package sim

import (
	"fmt"

	"dsp/internal/dag"
	"dsp/internal/prof"
	"dsp/internal/trace"
	"dsp/internal/units"
)

// Streaming ingestion (Config.Streaming): the serving half of the
// engine. A batch run owns its whole workload up front and drains the
// event queue to empty; a streaming engine starts (possibly) empty and
// accepts jobs over time through Submit, while a driver advances
// simulated time with StepUntil. Submissions are stamped with a
// monotonically increasing virtual arrival time and queue up here; each
// scheduling-period tick drains the prefix of the queue whose stamps
// have been reached, runs admission on every drained job inline, and
// then retires settled jobs (releasing their DAG and task state) so a
// long-running daemon's memory is bounded by the live job set, not the
// job history.
//
// Admission runs inline during the drain — not via armed arrival
// events — so a job's shed-or-admit decision always lands before the
// same tick's plan-build. An armed event would fire after periodTick
// returned and let the scheduler place a job that admission was about
// to shed. The JobShed observer event still carries the job's arrival
// stamp (not the boundary time), keeping the audit stream aligned with
// wall-clock ingestion.
//
// Durability: submissions are deliberately NOT part of engine
// snapshots. The serving layer journals every accepted submission
// (already stamped) before acknowledging it; EngineState records how
// many journal entries had been drained into the world
// (IngestApplied). Because stamps are monotonic, every drain consumes a
// strict prefix of the journal, so resume = rebuild the world from the
// first IngestApplied entries + re-Submit the rest via SubmitStamped.

// ingestEntry is one undrained submission: a job, or — when job is
// nil — a cancellation request for id.
type ingestEntry struct {
	job   *trace.Job
	id    dag.JobID
	stamp units.Time
}

// streamingLive reports whether the streaming engine must keep its
// period/epoch/speculation ticks armed: ingestion is still open (more
// work may arrive) or submitted work has not yet been drained.
func (e *Engine) streamingLive() bool {
	return e.cfg.Streaming && (!e.ingestClosed || len(e.ingest) > 0)
}

// Submit queues a job for ingestion at the next reachable period
// boundary and returns the virtual arrival stamp it was assigned:
// max(requested arrival, clock+1, last issued stamp), so stamps are
// monotone in submission order and never land in the engine's past.
// The job's Arrival field is rewritten to the stamp — the submission
// the caller journals is then byte-identical to the one a resumed
// engine rebuilds, which the snapshot world fingerprint requires.
//
// Structural validation happens here, not at drain time: a malformed
// DAG, duplicate job ID, or unresolvable cross-job dependency is
// rejected synchronously so the serving layer can refuse the request.
func (e *Engine) Submit(tj *trace.Job) (units.Time, error) {
	if err := e.checkSubmit(tj); err != nil {
		return 0, err
	}
	stamp := tj.Arrival
	if min := e.q.Now() + 1; stamp < min {
		stamp = min
	}
	if stamp < e.lastIngestStamp {
		stamp = e.lastIngestStamp
	}
	return stamp, e.enqueueSubmit(tj, stamp)
}

// SubmitStamped re-queues a journaled submission under its original
// stamp, for resume: the serving layer replays the journal suffix that
// the snapshot had not yet drained. Stamps must arrive in journal
// (i.e. monotone) order; a stamp in the engine's past is fine — the
// next period boundary drains it.
func (e *Engine) SubmitStamped(tj *trace.Job, stamp units.Time) error {
	if err := e.checkSubmit(tj); err != nil {
		return err
	}
	if stamp < e.lastIngestStamp {
		return fmt.Errorf("sim: submission stamp %v below last issued stamp %v (journal replayed out of order?)", stamp, e.lastIngestStamp)
	}
	return e.enqueueSubmit(tj, stamp)
}

func (e *Engine) checkSubmit(tj *trace.Job) error {
	if !e.cfg.Streaming {
		return fmt.Errorf("sim: Submit requires Config.Streaming")
	}
	if e.ingestClosed {
		return fmt.Errorf("sim: ingestion closed")
	}
	if tj == nil || tj.DAG == nil {
		return fmt.Errorf("sim: nil job submission")
	}
	if err := tj.DAG.CheckStructure(); err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	id := tj.DAG.ID
	if _, dup := e.byID[id]; dup {
		return fmt.Errorf("sim: duplicate job id %d", id)
	}
	for _, ent := range e.ingest {
		if ent.job != nil && ent.id == id {
			return fmt.Errorf("sim: duplicate job id %d (already submitted, not yet drained)", id)
		}
	}
	for _, dep := range tj.WaitsFor {
		if dep == id {
			return fmt.Errorf("sim: job %d waits for itself", id)
		}
		if _, ok := e.byID[dep]; ok {
			continue
		}
		found := false
		for _, ent := range e.ingest {
			if ent.job != nil && ent.id == dep {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("sim: job %d waits for unknown job %d", id, dep)
		}
	}
	if tj.DAG.Deadline > 0 {
		// Fail deadline derivation here so drain-time addJob cannot.
		exec := func(tid dag.TaskID) float64 { return tj.DAG.Task(tid).Size }
		if _, err := tj.DAG.TaskDeadlines(tj.DAG.Deadline, exec); err != nil {
			return fmt.Errorf("sim: job %d: %w", id, err)
		}
	}
	return nil
}

func (e *Engine) enqueueSubmit(tj *trace.Job, stamp units.Time) error {
	tj.Arrival = stamp
	e.ingest = append(e.ingest, ingestEntry{job: tj, id: tj.DAG.ID, stamp: stamp})
	e.ingestTasks += tj.DAG.Len()
	e.lastIngestStamp = stamp
	return nil
}

// RequestCancel queues a cancellation for a known job and returns its
// stamp. Cancellation is applied at the next period boundary, after any
// submissions that preceded it; cancelling a job that settles first is
// a harmless no-op, so cancel requests are idempotent. Unknown job IDs
// are rejected (the serving layer turns that into a 404).
func (e *Engine) RequestCancel(id dag.JobID) (units.Time, error) {
	if err := e.checkCancel(id); err != nil {
		return 0, err
	}
	stamp := e.q.Now() + 1
	if stamp < e.lastIngestStamp {
		stamp = e.lastIngestStamp
	}
	return stamp, e.enqueueCancel(id, stamp)
}

// CancelStamped re-queues a journaled cancellation under its original
// stamp, for resume (the cancel analogue of SubmitStamped).
func (e *Engine) CancelStamped(id dag.JobID, stamp units.Time) error {
	if err := e.checkCancel(id); err != nil {
		return err
	}
	if stamp < e.lastIngestStamp {
		return fmt.Errorf("sim: cancel stamp %v below last issued stamp %v (journal replayed out of order?)", stamp, e.lastIngestStamp)
	}
	return e.enqueueCancel(id, stamp)
}

func (e *Engine) checkCancel(id dag.JobID) error {
	if !e.cfg.Streaming {
		return fmt.Errorf("sim: RequestCancel requires Config.Streaming")
	}
	if e.ingestClosed {
		return fmt.Errorf("sim: ingestion closed")
	}
	if _, ok := e.byID[id]; ok {
		return nil
	}
	for _, ent := range e.ingest {
		if ent.job != nil && ent.id == id {
			return nil
		}
	}
	return fmt.Errorf("sim: cancel for unknown job %d", id)
}

func (e *Engine) enqueueCancel(id dag.JobID, stamp units.Time) error {
	e.ingest = append(e.ingest, ingestEntry{id: id, stamp: stamp})
	e.lastIngestStamp = stamp
	return nil
}

// CloseIngest stops accepting submissions. Already-queued entries still
// drain at the following period boundaries; once they have, the ticks
// stop re-arming and the engine winds down like a batch run.
func (e *Engine) CloseIngest() { e.ingestClosed = true }

// drainIngest pulls every queued entry whose stamp has been reached
// into the world, in submission order, running admission inline per
// job. Stamps are monotone, so the drained set is always a queue
// prefix — the property that makes IngestApplied a valid journal
// splice point for resume.
func (e *Engine) drainIngest(now units.Time) {
	n := 0
	for n < len(e.ingest) && e.ingest[n].stamp <= now {
		n++
	}
	if n == 0 {
		return
	}
	tm := e.cfg.Prof
	for i := 0; i < n; i++ {
		ent := e.ingest[i]
		if ent.job == nil {
			e.applyCancel(ent.id, now)
		} else {
			js := e.addJob(ent.job, ent.stamp, now)
			e.ingestTasks -= ent.job.DAG.Len()
			tm.Enter(prof.PhaseAdmission)
			e.admitJob(js, now)
			tm.Exit()
		}
		e.ingestApplied++
	}
	e.ingest = append(e.ingest[:0], e.ingest[n:]...)
	// The job count is mixed first in the fingerprint, so it cannot be
	// extended incrementally; recompute once per drained batch from the
	// per-job cached identities.
	e.worldSum = e.worldFingerprint()
}

// addJob builds the JobState for a drained submission — the streaming
// twin of buildWorld's per-job block. Cross-job dependencies resolve
// against everything drained so far (Submit guaranteed they exist); a
// dependency that already settled unsatisfiably cascades immediately,
// since the settle-time cascades in shedJob/failJob ran before this job
// existed.
func (e *Engine) addJob(tj *trace.Job, stamp, now units.Time) *JobState {
	meanSpeed := e.cfg.Cluster.MeanSpeed()
	js := &JobState{
		Dag:       tj.DAG,
		Arrival:   stamp,
		DoneAt:    -1,
		remaining: tj.DAG.Len(),
		idx:       len(e.jobs),
		id:        tj.DAG.ID,
		fpLen:     tj.DAG.Len(),
		fpSize:    tj.DAG.TotalSize(),
	}
	if tj.DAG.Deadline > 0 {
		js.Deadline = stamp + units.FromSeconds(tj.DAG.Deadline)
	}
	exec := func(id dag.TaskID) float64 { return tj.DAG.Task(id).Size / meanSpeed }
	if _, cp, err := tj.DAG.CriticalPath(exec); err == nil {
		js.ideal = units.FromSeconds(cp)
	}
	var taskDeadlines []float64
	if tj.DAG.Deadline > 0 {
		taskDeadlines, _ = tj.DAG.TaskDeadlines(tj.DAG.Deadline, exec) // checked at Submit
	}
	for _, task := range tj.DAG.Tasks {
		ts := &TaskState{
			Task:       task,
			Job:        js,
			Phase:      Pending,
			Node:       -1,
			FirstStart: -1,
			DoneAt:     -1,
			Deadline:   units.Forever,
			spanStart:  stamp,
		}
		if taskDeadlines != nil {
			ts.Deadline = stamp + units.FromSeconds(taskDeadlines[task.ID])
		}
		js.Tasks = append(js.Tasks, ts)
	}
	e.jobs = append(e.jobs, js)
	e.byID[js.id] = js
	e.jobsRemaining++
	if stamp < e.firstArrival {
		e.firstArrival = stamp
	}
	for _, dep := range tj.WaitsFor {
		if pre := e.byID[dep]; pre != nil && pre != js {
			js.waitsFor = append(js.waitsFor, pre)
		}
	}
	for _, p := range js.waitsFor {
		if p.shed {
			e.shedJob(js, stamp, ShedDependency)
			return js
		}
	}
	for _, p := range js.waitsFor {
		if p.failed {
			e.failJob(js, now)
			return js
		}
	}
	return js
}

// applyCancel resolves a drained cancellation. The job is known (Submit
// ordering guarantees it was drained first); if it settled in the
// meantime the cancel is a no-op.
func (e *Engine) applyCancel(id dag.JobID, now units.Time) {
	if js := e.byID[id]; js != nil {
		e.cancelJob(js, now)
	}
}

// cancelJob withdraws a live job: for accounting it fails — every live
// task is pulled back exactly as a terminal failure would, dependents
// cascade — with the cancelled flag and the JobCancelled event
// recording that the user, not a fault, was the cause.
func (e *Engine) cancelJob(js *JobState, now units.Time) {
	if js.failed || js.shed || js.Done() {
		return
	}
	js.cancelled = true
	e.metrics.JobsCancelled++
	if o := e.cfg.Observer; o != nil {
		o.JobCancelled(now, js)
	}
	e.failJob(js, now)
}

// retireSettled releases the DAG and task state of settled jobs so a
// long-running daemon's footprint tracks the live job set. A small
// scalar stub (identity, outcome flags, timestamps) remains — event
// tags index jobs by position, and dependents still read the scalars.
// A settled job with any live event handle (possible transiently for a
// failed job whose backup-cancel raced) is skipped and retried next
// boundary.
func (e *Engine) retireSettled() {
	for _, js := range e.jobs {
		if js.retired || !(js.failed || js.shed || js.Done()) {
			continue
		}
		live := false
		for _, t := range js.Tasks {
			if t.hasDoneEv || t.hasBlockEv || t.hasRetryEv || t.backup != nil {
				live = true
				break
			}
		}
		if live {
			continue
		}
		js.Tasks = nil
		js.Dag = nil
		js.waitsFor = nil
		js.retired = true
	}
}

// StepUntil advances the streaming engine's virtual clock, firing every
// event due at or before limit. It returns the number of events fired.
// Config.Interrupt is observed between StepUntil calls (not between
// individual events); on interrupt the durability sink takes its final
// snapshot and ErrInterrupted is returned, mirroring Execute.
func (e *Engine) StepUntil(limit units.Time) (int, error) {
	tm := e.cfg.Prof
	tm.Enter(prof.PhaseEventPump)
	fired := e.q.RunUntil(limit)
	tm.Exit()
	e.fired += fired
	if e.cfg.Interrupt != nil && e.cfg.Interrupt.Load() {
		if d := e.cfg.Durability; d != nil {
			if err := d.OnInterrupt(e, e.q.Now()); err != nil {
				return fired, fmt.Errorf("sim: interrupted; final snapshot failed: %w", err)
			}
		}
		return fired, ErrInterrupted
	}
	if e.durErr != nil {
		err := e.durErr
		e.durErr = nil
		return fired, fmt.Errorf("sim: durability sink failed: %w", err)
	}
	return fired, nil
}

// Idle reports whether the engine has no live work: every drained job
// settled and nothing is waiting in the ingestion queue.
func (e *Engine) Idle() bool {
	return e.jobsRemaining == 0 && len(e.ingest) == 0
}

// FinishStreaming closes ingestion and runs the engine to completion,
// returning the accumulated metrics — the streaming run's terminal
// Execute.
func (e *Engine) FinishStreaming() (*Result, error) {
	e.CloseIngest()
	return e.Execute()
}

// JobStatus is the externally visible state of one submitted job.
type JobStatus struct {
	ID dag.JobID
	// State is one of: accepted (submitted, not yet drained into the
	// world), pending (drained, no task dispatched yet), running,
	// completed, failed, cancelled, shed.
	State string
	// Arrival is the virtual arrival stamp assigned at submission.
	Arrival units.Time
	// DoneAt is the completion time (-1 unless State is completed).
	DoneAt units.Time
	// TasksTotal and TasksDone count the job's tasks and how many have
	// finished.
	TasksTotal int
	TasksDone  int
}

// JobStatus resolves a job ID to its current status; ok is false for
// IDs never submitted.
func (e *Engine) JobStatus(id dag.JobID) (JobStatus, bool) {
	if js, ok := e.byID[id]; ok {
		st := JobStatus{
			ID:         id,
			Arrival:    js.Arrival,
			DoneAt:     js.DoneAt,
			TasksTotal: js.fpLen,
			TasksDone:  js.fpLen - js.remaining,
		}
		if st.TasksDone < 0 {
			st.TasksDone = 0
		}
		switch {
		case js.shed:
			st.State = "shed"
		case js.cancelled:
			st.State = "cancelled"
		case js.failed:
			st.State = "failed"
		case js.Done():
			st.State = "completed"
		case js.assigned > 0:
			st.State = "running"
		default:
			st.State = "pending"
		}
		return st, true
	}
	for _, ent := range e.ingest {
		if ent.job != nil && ent.id == id {
			return JobStatus{
				ID:         id,
				State:      "accepted",
				Arrival:    ent.stamp,
				DoneAt:     -1,
				TasksTotal: ent.job.DAG.Len(),
			}, true
		}
	}
	return JobStatus{}, false
}

// PendingBacklog returns the admitted-but-unassigned task count as of
// the engine clock — the quantity bounded admission sheds against. The
// serving layer adds IngestTaskCount to it for backpressure decisions.
func (e *Engine) PendingBacklog() int { return e.pendingBacklog(e.q.Now()) }

// IngestTaskCount returns the total tasks of submitted-but-undrained
// jobs.
func (e *Engine) IngestTaskCount() int { return e.ingestTasks }

// IngestApplied returns how many accepted entries (submissions and
// cancellations) have been drained into the world — the journal splice
// point for resume.
func (e *Engine) IngestApplied() int { return e.ingestApplied }

// PeriodIndex returns the number of scheduling periods that have run.
func (e *Engine) PeriodIndex() int { return e.periodIndex }

// JobsTotal returns how many jobs have been drained into the world over
// the engine's lifetime (including settled and retired ones).
func (e *Engine) JobsTotal() int { return len(e.jobs) }

// Metrics exposes the live metric accumulators for read-only sampling
// by the serving layer (the batch path returns them from Execute).
func (e *Engine) Metrics() *Result { return &e.metrics }
