package sim

import (
	"testing"

	"dsp/internal/dag"
	"dsp/internal/trace"
	"dsp/internal/units"
)

// shedRecorder captures every JobShed event with its reason.
type shedRecorder struct {
	NopObserver
	shed map[dag.JobID]ShedReason
}

func newShedRecorder() *shedRecorder { return &shedRecorder{shed: map[dag.JobID]ShedReason{}} }

func (r *shedRecorder) JobShed(_ units.Time, j *JobState, reason ShedReason) {
	r.shed[j.Dag.ID] = reason
}

func TestAdmissionQueueBoundSheds(t *testing.T) {
	// A (1 long task) is admitted and starts; B's 3 tasks would push the
	// backlog past the bound of 2 and B is shed; C (1 task) fits again.
	a := sizedJob(0, 10000)
	b := sizedJob(1, 1000, 1000, 1000)
	c := sizedJob(2, 1000)
	rec := newShedRecorder()
	res, err := Run(Config{
		Cluster:   testCluster(1, 1),
		Scheduler: rrScheduler{},
		Admission: &Admission{MaxPendingTasks: 2},
		Observer:  rec,
	}, mkWorkload([]units.Time{0, units.Second, 2 * units.Second}, a, b, c))
	if err != nil {
		t.Fatal(err)
	}
	if res.JobsShed != 1 {
		t.Errorf("JobsShed = %d, want 1", res.JobsShed)
	}
	if res.JobsCompleted != 2 {
		t.Errorf("JobsCompleted = %d, want 2", res.JobsCompleted)
	}
	if reason, ok := rec.shed[1]; !ok || reason != ShedQueueFull {
		t.Errorf("job 1 shed reason = %v (present %v), want queue-full", reason, ok)
	}
	if res.JobsCompleted+res.JobsShed+res.JobsFailed != 3 {
		t.Errorf("accounting: completed %d + shed %d + failed %d != 3",
			res.JobsCompleted, res.JobsShed, res.JobsFailed)
	}
}

func TestAdmissionShedsCertainLoser(t *testing.T) {
	// 10 s of serial work against a 2 s deadline: the critical-path bound
	// alone proves the deadline unreachable, so the job is shed at
	// arrival — counted as shed, not as a completion or a miss.
	j := sizedJob(0, 10000)
	j.Deadline = 2
	rec := newShedRecorder()
	res, err := Run(Config{
		Cluster:   testCluster(1, 1),
		Scheduler: rrScheduler{},
		Admission: &Admission{ShedInfeasible: true},
		Observer:  rec,
	}, mkWorkload([]units.Time{0}, j))
	if err != nil {
		t.Fatal(err)
	}
	if res.JobsShed != 1 || res.JobsCompleted != 0 {
		t.Errorf("shed=%d completed=%d, want 1/0", res.JobsShed, res.JobsCompleted)
	}
	if reason := rec.shed[0]; reason != ShedDeadlineInfeasible {
		t.Errorf("shed reason = %v, want deadline-infeasible", reason)
	}
	if res.JobsMetDeadline != 0 || res.TasksCompleted != 0 {
		t.Errorf("shed job leaked metrics: met=%d tasks=%d", res.JobsMetDeadline, res.TasksCompleted)
	}
}

func TestAdmissionMarginHedgesBacklogEstimate(t *testing.T) {
	// B's critical path fits its deadline, but the backlog estimate (A's
	// 10 s of outstanding work drained ahead of it) projects it late.
	// Without a hedge the estimate sheds B; Margin 3 tolerates the
	// pessimism and admits it.
	run := func(margin float64) *Result {
		a := sizedJob(0, 10000)
		b := sizedJob(1, 2000)
		b.Deadline = 9
		res, err := Run(Config{
			Cluster:   testCluster(1, 1),
			Scheduler: rrScheduler{},
			Admission: &Admission{ShedInfeasible: true, Margin: margin},
		}, mkWorkload([]units.Time{0, units.Second}, a, b))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if res := run(0); res.JobsShed != 1 {
		t.Errorf("no hedge: JobsShed = %d, want 1 (backlog estimate fires)", res.JobsShed)
	}
	if res := run(3); res.JobsShed != 0 || res.JobsCompleted != 2 {
		t.Errorf("margin 3: shed=%d completed=%d, want 0/2", res.JobsShed, res.JobsCompleted)
	}
}

func TestShedCascadesToDependentJobs(t *testing.T) {
	// B waits for A; A is a certain loser. Shedding A makes B permanently
	// ineligible, so B is shed with it — before B even arrives.
	a := sizedJob(0, 10000)
	a.Deadline = 1
	b := sizedJob(1, 1000)
	w := &trace.Workload{ArrivalRate: 3, Jobs: []*trace.Job{
		{Class: trace.Small, Arrival: 0, DAG: a},
		{Class: trace.Small, Arrival: 5 * units.Second, DAG: b, WaitsFor: []dag.JobID{0}},
	}}
	rec := newShedRecorder()
	res, err := Run(Config{
		Cluster:   testCluster(1, 1),
		Scheduler: rrScheduler{},
		Admission: &Admission{ShedInfeasible: true},
		Observer:  rec,
	}, w)
	if err != nil {
		t.Fatal(err)
	}
	if res.JobsShed != 2 {
		t.Errorf("JobsShed = %d, want 2 (cascade)", res.JobsShed)
	}
	if reason := rec.shed[1]; reason != ShedDependency {
		t.Errorf("job 1 shed reason = %v, want dependency", reason)
	}
}

func TestAdmissionNilConfigAdmitsEverything(t *testing.T) {
	j := sizedJob(0, 1000, 1000)
	res, err := Run(Config{
		Cluster:   testCluster(1, 2),
		Scheduler: rrScheduler{},
	}, mkWorkload([]units.Time{0}, j))
	if err != nil {
		t.Fatal(err)
	}
	if res.JobsShed != 0 || res.JobsCompleted != 1 {
		t.Errorf("shed=%d completed=%d, want 0/1", res.JobsShed, res.JobsCompleted)
	}
	if res.PeakPendingTasks < 2 {
		t.Errorf("PeakPendingTasks = %d, want >= 2", res.PeakPendingTasks)
	}
}
