package sim_test

import (
	"testing"

	"dsp/internal/chaos"
	"dsp/internal/cluster"
	"dsp/internal/preempt"
	"dsp/internal/sched"
	"dsp/internal/sim"
	"dsp/internal/trace"
	"dsp/internal/units"
)

// TestAuditorZeroViolationsUnderChaos runs the full DSP stack — offline
// scheduler, online preemptor, fault injection, retries, speculation —
// with the invariant auditor armed at every epoch. The auditor exists
// to catch engine corruption; a healthy engine under maximal churn must
// produce zero detections, or the checks (or the engine) are wrong.
func TestAuditorZeroViolationsUnderChaos(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		spec := trace.DefaultSpec(20, seed)
		spec.TaskScale = 0.03
		w, err := trace.Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		c := cluster.RealCluster(10)
		cs := chaos.DefaultSpec(c.Len(), seed)
		cs.FaultyFraction = 0.3
		plan, err := cs.Plan()
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(sim.Config{
			Cluster:         c,
			Scheduler:       sched.NewDSP(),
			Preemptor:       preempt.NewDSP(),
			Checkpoint:      cluster.DefaultCheckpoint(),
			Epoch:           10 * units.Second,
			Faults:          plan,
			Speculation:     &sim.Speculation{},
			AuditInvariants: true,
		}, w)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.InvariantViolations != 0 || res.Quarantines != 0 {
			t.Errorf("seed %d: violations=%d quarantines=%d, want 0/0",
				seed, res.InvariantViolations, res.Quarantines)
		}
	}
}
