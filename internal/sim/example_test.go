package sim_test

import (
	"fmt"

	"dsp/internal/cluster"
	"dsp/internal/dag"
	"dsp/internal/preempt"
	"dsp/internal/sched"
	"dsp/internal/sim"
	"dsp/internal/trace"
)

// Run the full DSP system — offline dependency-aware scheduling plus
// online dependency-aware preemption — on a small deterministic job.
func Example() {
	job := dag.NewJob(0, 3)
	job.Task(0).Size = 36000 // 10 s at 3600 MIPS
	job.Task(1).Size = 18000
	job.Task(2).Size = 18000
	job.MustDep(0, 1)
	job.MustDep(0, 2)
	job.Deadline = 60

	res, err := sim.Run(sim.Config{
		Cluster:    cluster.RealCluster(2),
		Scheduler:  sched.NewDSP(),
		Preemptor:  preempt.NewDSP(),
		Checkpoint: cluster.DefaultCheckpoint(),
	}, &trace.Workload{Jobs: []*trace.Job{{Arrival: 0, DAG: job}}})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("makespan %v, %d tasks, met deadline: %v\n",
		res.Makespan, res.TasksCompleted, res.JobsMetDeadline == 1)
	// Output:
	// makespan 15.000s, 3 tasks, met deadline: true
}
