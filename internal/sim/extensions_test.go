package sim

import (
	"testing"

	"dsp/internal/dag"
	"dsp/internal/trace"
	"dsp/internal/units"
)

func TestCrossJobDependencyGatesScheduling(t *testing.T) {
	// Job 1 waits for job 0: even though both arrive at t=0 on an idle
	// 2-slot node, job 1 may only be scheduled after job 0 completes —
	// and then only at the next period tick.
	j0 := sizedJob(0, 5000)
	j1 := sizedJob(1, 1000)
	w := mkWorkload([]units.Time{0, 0}, j0, j1)
	w.Jobs[1].WaitsFor = []dag.JobID{0}
	res, err := Run(Config{
		Cluster:   testCluster(1, 2),
		Scheduler: rrScheduler{},
		Period:    2 * units.Second,
	}, w)
	if err != nil {
		t.Fatal(err)
	}
	// j0 done at 5 s; next period at 6 s schedules j1; done at 7 s.
	if res.Makespan != 7*units.Second {
		t.Errorf("makespan = %v, want 7s (cross-job gate)", res.Makespan)
	}
	if res.JobsCompleted != 2 {
		t.Errorf("jobs completed = %d", res.JobsCompleted)
	}
}

func TestCrossJobDependencyChain(t *testing.T) {
	j0 := sizedJob(0, 1000)
	j1 := sizedJob(1, 1000)
	j2 := sizedJob(2, 1000)
	w := mkWorkload([]units.Time{0, 0, 0}, j0, j1, j2)
	w.Jobs[1].WaitsFor = []dag.JobID{0}
	w.Jobs[2].WaitsFor = []dag.JobID{1}
	res, err := Run(Config{
		Cluster:   testCluster(3, 2),
		Scheduler: rrScheduler{},
		Period:    units.Second,
	}, w)
	if err != nil {
		t.Fatal(err)
	}
	// Each job: 1 s run, next period 1 s later... j0 [0,1], j1 scheduled
	// at 1 s (period tick), runs [1,2], j2 at [2,3]. Wait: period ticks at
	// 0,1,2,...; j1 eligible at exactly 1 s when j0 completes at 1 s —
	// completion event fires before the tick scheduled earlier? The tick
	// at 1 s was scheduled at 0 s (seq earlier than j0's completion,
	// scheduled at start time 0 s too but AFTER the initial tick's
	// re-arm... assert only completion and a sane bound.
	if res.JobsCompleted != 3 {
		t.Fatalf("jobs completed = %d", res.JobsCompleted)
	}
	if res.Makespan < 3*units.Second || res.Makespan > 5*units.Second {
		t.Errorf("makespan = %v, want within [3s,5s]", res.Makespan)
	}
}

func TestCrossJobErrors(t *testing.T) {
	j0 := sizedJob(0, 1000)
	w := mkWorkload([]units.Time{0}, j0)
	w.Jobs[0].WaitsFor = []dag.JobID{9}
	if _, err := Run(Config{Cluster: testCluster(1, 1), Scheduler: rrScheduler{}}, w); err == nil {
		t.Error("unknown cross-job dependency accepted")
	}

	w = mkWorkload([]units.Time{0}, sizedJob(0, 1000))
	w.Jobs[0].WaitsFor = []dag.JobID{0}
	if _, err := Run(Config{Cluster: testCluster(1, 1), Scheduler: rrScheduler{}}, w); err == nil {
		t.Error("self cross-job dependency accepted")
	}

	a := sizedJob(0, 1000)
	b := sizedJob(1, 1000)
	w = mkWorkload([]units.Time{0, 0}, a, b)
	w.Jobs[0].WaitsFor = []dag.JobID{1}
	w.Jobs[1].WaitsFor = []dag.JobID{0}
	if _, err := Run(Config{Cluster: testCluster(1, 1), Scheduler: rrScheduler{}}, w); err == nil {
		t.Error("cyclic cross-job dependencies accepted")
	}
}

func TestDynamicGrowthExtendsDAG(t *testing.T) {
	// A job with one 10 s task; at 3 s two new 1 s tasks are added, one
	// depending on the original task.
	j := sizedJob(0, 10000)
	res, err := Run(Config{
		Cluster:   testCluster(1, 2),
		Scheduler: rrScheduler{},
		Period:    2 * units.Second,
		Growth: []TaskGrowth{{
			Job: 0,
			At:  3 * units.Second,
			Tasks: []GrownTask{
				{SizeMI: 1000, Parents: []dag.TaskID{0}, Preferred: -1},
				{SizeMI: 1000, Preferred: -1},
			},
		}},
	}, mkWorkload([]units.Time{0}, j))
	if err != nil {
		t.Fatal(err)
	}
	if res.GrownTasks != 2 {
		t.Errorf("GrownTasks = %d, want 2", res.GrownTasks)
	}
	if res.TasksCompleted != 3 {
		t.Fatalf("completed %d tasks, want 3", res.TasksCompleted)
	}
	// Independent grown task scheduled at 4 s period, runs [4,5) on the
	// free slot; dependent one waits for task 0 (done at 10), runs
	// [10,11): makespan 11 s.
	if res.Makespan != 11*units.Second {
		t.Errorf("makespan = %v, want 11s", res.Makespan)
	}
	if res.JobsCompleted != 1 {
		t.Errorf("jobs completed = %d", res.JobsCompleted)
	}
}

func TestGrowthUnknownJobRejected(t *testing.T) {
	j := sizedJob(0, 1000)
	_, err := Run(Config{
		Cluster:   testCluster(1, 1),
		Scheduler: rrScheduler{},
		Growth:    []TaskGrowth{{Job: 42, At: 0}},
	}, mkWorkload([]units.Time{0}, j))
	if err == nil {
		t.Error("growth for unknown job accepted")
	}
}

func TestJobRecordsAndSlowdown(t *testing.T) {
	// Chain of two 5 s tasks: ideal = critical path = 10 s at the 1000
	// MIPS mean speed. One job, no queueing: slowdown 1.0.
	j := sizedJob(0, 5000, 5000)
	j.MustDep(0, 1)
	res, err := Run(Config{
		Cluster:   testCluster(1, 1),
		Scheduler: rrScheduler{},
	}, mkWorkload([]units.Time{0}, j))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 1 {
		t.Fatalf("JobRecords = %d, want 1", len(res.Jobs))
	}
	rec := res.Jobs[0]
	if rec.Job != 0 || rec.Arrival != 0 || rec.DoneAt != 10*units.Second {
		t.Errorf("record = %+v", rec)
	}
	if rec.Ideal != 10*units.Second {
		t.Errorf("ideal = %v, want 10s", rec.Ideal)
	}
	if rec.Slowdown != 1 {
		t.Errorf("slowdown = %v, want 1", rec.Slowdown)
	}
	if !rec.MetDeadline {
		t.Error("deadline-free job should count as met")
	}
}

func TestJobRecordsSlowdownUnderContention(t *testing.T) {
	// Two identical single-task jobs on one slot: the second job's
	// completion doubles, so its slowdown is ~2 and Jain's index over
	// slowdowns drops below 1.
	j0 := sizedJob(0, 5000)
	j1 := sizedJob(1, 5000)
	res, err := Run(Config{
		Cluster:   testCluster(1, 1),
		Scheduler: rrScheduler{},
	}, mkWorkload([]units.Time{0, 0}, j0, j1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 2 {
		t.Fatalf("JobRecords = %d", len(res.Jobs))
	}
	var slowdowns []float64
	for _, r := range res.Jobs {
		slowdowns = append(slowdowns, r.Slowdown)
	}
	if slowdowns[0] != 1 || slowdowns[1] != 2 {
		t.Errorf("slowdowns = %v, want [1 2]", slowdowns)
	}
}

func TestFairnessGuardLimitsVictimization(t *testing.T) {
	// Covered behaviourally in preempt tests; here just ensure the
	// workload-facing plumbing of trace.Job.WaitsFor defaults to nil.
	var tj trace.Job
	if tj.WaitsFor != nil {
		t.Error("zero-valued trace.Job should have no cross-job deps")
	}
}
