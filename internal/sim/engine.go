package sim

import (
	"fmt"
	"sort"
	"sync/atomic"

	"dsp/internal/cluster"
	"dsp/internal/dag"
	"dsp/internal/eventq"
	"dsp/internal/prof"
	"dsp/internal/trace"
	"dsp/internal/units"
)

// Config configures a simulation run.
type Config struct {
	Cluster   *cluster.Cluster
	Scheduler Scheduler
	// Preemptor may be nil (no online phase), as in the Figure 5
	// scheduling-method comparison.
	Preemptor Preemptor
	// Checkpoint is the preemption cost model.
	Checkpoint cluster.CheckpointPolicy
	// Period is the offline scheduling interval (the paper runs
	// scheduling every 5 minutes).
	Period units.Time
	// Epoch is the online preemption interval.
	Epoch units.Time
	// BlindTimeout is how long a dependency-blind scheduler's task may
	// occupy a slot waiting for unfinished precedents before the node
	// gives up and requeues it (models launch-retry behaviour of real
	// runtimes; only relevant when the scheduler is DependencyBlind).
	BlindTimeout units.Time
	// MaxEvents caps the event count as a runaway guard (0 = default).
	MaxEvents int
	// Faults optionally injects node failures and stragglers.
	Faults *FaultPlan
	// RemoteInputPenalty is the extra startup time charged the first
	// time a task runs on a node other than its preferred (data-holding)
	// node. Zero disables data-locality effects.
	RemoteInputPenalty units.Time
	// Growth optionally adds tasks to running jobs mid-simulation
	// (dynamic DAG extension).
	Growth []TaskGrowth
	// RetryBudget is how many failed attempts (transient task faults,
	// crash evictions of running tasks) a task absorbs before failing
	// terminally and taking its job down. 0 = DefaultRetryBudget;
	// negative = unlimited.
	RetryBudget int
	// RetryBackoff is the base delay before a failed attempt is
	// re-admitted to Pending, doubling per attempt. 0 = immediate
	// re-admission (the pre-resilience behaviour).
	RetryBackoff units.Time
	// BlacklistThreshold blacklists a node once its decayed failure
	// penalty (1 per crash or transient fault, halving every
	// HealthHalfLife) reaches this value. 0 disables blacklisting.
	BlacklistThreshold float64
	// HealthHalfLife is the node-penalty decay half-life
	// (0 = DefaultHealthHalfLife).
	HealthHalfLife units.Time
	// Speculation, when non-nil, launches backup copies of straggling
	// tasks on idle slots (see Speculation).
	Speculation *Speculation
	// Admission, when non-nil, enables admission control: jobs can be
	// shed at arrival — bounded pending backlog, provably
	// deadline-infeasible work rejected — instead of growing the queues
	// without bound under overload (see Admission).
	Admission *Admission
	// AuditInvariants enables the runtime invariant auditor: the engine's
	// core state invariants (slot conservation, phase/membership
	// consistency, dependency order, queue ordering) are re-checked at
	// every scheduling boundary, and a violation quarantines the
	// offending node or task instead of letting the run silently compute
	// garbage (see auditor.go).
	AuditInvariants bool
	// Observer, when non-nil, receives lifecycle events.
	Observer Observer
	// Prof, when non-nil, receives the run's phase-level timing: the
	// engine charges setup, the period and epoch paths, task completion,
	// admission, audit and span bookkeeping to named phases (see
	// internal/prof), and attaches the timer to any scheduler or
	// preemptor implementing prof.Instrumentable so they can attribute
	// their internal work too. nil disables profiling at the cost of a
	// nil check per phase boundary.
	Prof *prof.Timer
	// Durability, when non-nil, receives a callback at the end of every
	// scheduling period so it can capture crash-recovery snapshots and
	// rotate its write-ahead log (see internal/recover). Its cost is
	// charged to the prof "snapshot" phase.
	Durability DurabilitySink
	// Interrupt, when non-nil, is polled between events: setting it makes
	// the run stop at the next inter-event boundary, take a final
	// durability snapshot (if a sink is configured) and return
	// ErrInterrupted. Signal handlers use this for graceful shutdown.
	Interrupt *atomic.Bool
	// Streaming switches the engine from batch simulation to online
	// serving: the initial workload may be empty, jobs are submitted over
	// time through Submit and drained into the world at period
	// boundaries, the period/epoch ticks keep re-arming while ingestion
	// is open, and settled jobs are retired (DAG and task state released)
	// to bound memory. Drive a streaming engine with StepUntil and finish
	// it with CloseIngest + FinishStreaming; see ingest.go. Incompatible
	// with Growth (dynamic DAG extension is keyed to the initial job
	// set). In streaming mode per-job records (Result.Jobs) are not
	// accumulated, so the derived AvgJobQueueing/AvgJobWaiting metrics
	// are unavailable.
	Streaming bool
}

func (c *Config) fillDefaults() {
	if c.Period <= 0 {
		c.Period = 5 * units.Minute
	}
	if c.Epoch <= 0 {
		c.Epoch = 10 * units.Second
	}
	if c.BlindTimeout <= 0 {
		c.BlindTimeout = units.Minute
	}
	if c.MaxEvents == 0 {
		c.MaxEvents = 200_000_000
	}
	if c.Speculation != nil {
		c.Speculation.fillDefaults(c.Epoch)
	}
}

// DependencyBlind is an optional interface for schedulers that ignore
// task dependencies entirely (TetrisW/oDep in the paper). Nodes serving
// such a scheduler dispatch their queues in planned order without
// checking precedents: a task whose inputs are not ready occupies its
// slot uselessly until the inputs appear or the BlindTimeout expires —
// the resource waste the paper attributes to dependency-oblivious
// scheduling.
type DependencyBlind interface {
	DependencyBlind() bool
}

// nodeState is the engine's per-node bookkeeping.
type nodeState struct {
	node    *cluster.Node
	running []*TaskState
	// queue holds Queued and Suspended tasks in ascending
	// (PlannedStart, job, task) order.
	queue []*TaskState
	// spec holds the speculative backup copies occupying slots here.
	spec []*backupRun
	// down marks a crashed node; speedFactor models stragglers.
	down        bool
	speedFactor float64
	// penalty is the decayed failure-health score (decayedPenalty gives
	// its value as of any later instant); blacklisted latches once it
	// crosses Config.BlacklistThreshold, until the penalty decays back.
	penalty     float64
	penaltyAt   units.Time
	blacklisted bool
}

// Engine runs one simulation.
type Engine struct {
	cfg   Config
	q     *eventq.Queue
	nodes []*nodeState
	jobs  []*JobState
	view  *View
	blind bool

	jobsRemaining int
	activeBackups int
	metrics       Result
	lastDone      units.Time
	firstArrival  units.Time
	// pendingBuf is arrivedPending's reusable result buffer: the scan runs
	// every period over every job, and reallocating the slice each time
	// dominated the period tick's allocation profile.
	pendingBuf []*JobState
	// epochIndex numbers online preemption epochs from 1, for the
	// EpochStarted/EpochEnded observer events.
	epochIndex int
	// periodIndex numbers offline scheduling periods from 1; the
	// durability sink keys its snapshot cadence on it.
	periodIndex int
	// growthApplied records the indices into cfg.Growth whose events have
	// fired and extended their jobs, in fire order. Snapshots carry the
	// list so a restore can replay the structural DAG extensions before
	// overlaying task state.
	growthApplied []int
	// durErr latches the first durability-sink failure; Execute surfaces
	// it after the event pump stops.
	durErr error
	// worldSum fingerprints the built world (see worldFingerprint);
	// snapshots embed it so restore rejects mismatched worlds.
	worldSum uint64
	// fired counts events fired by Execute (see EventsFired).
	fired int
	// byID indexes jobs by DAG identity (built once in buildWorld,
	// extended as streamed jobs are drained).
	byID map[dag.JobID]*JobState
	// Streaming-ingestion state (see ingest.go): the undrained submission
	// queue, its task count, the last stamp issued (stamps are
	// monotonic), how many entries have been drained into the world (the
	// resume splice point), and whether ingestion has been closed.
	ingest          []ingestEntry
	ingestTasks     int
	lastIngestStamp units.Time
	ingestApplied   int
	ingestClosed    bool
}

// Run simulates the workload to completion and returns the collected
// metrics.
func Run(cfg Config, w *trace.Workload) (*Result, error) {
	e, err := Prepare(cfg, w)
	if err != nil {
		return nil, err
	}
	return e.Execute()
}

// Prepare validates the configuration, builds the simulation world and
// arms its initial events, returning an engine ready to Execute. Split
// from Run so callers needing the engine itself (durability snapshots,
// crash-recovery harnesses) can hold it across the run.
func Prepare(cfg Config, w *trace.Workload) (*Engine, error) {
	e, err := newEngine(&cfg, w)
	if err != nil {
		return nil, err
	}
	tm := cfg.Prof
	tm.Enter(prof.PhaseSetup)
	err = e.buildWorld(w)
	if err == nil {
		err = e.armInitialEvents()
	}
	tm.Exit()
	if err != nil {
		return nil, err
	}
	return e, nil
}

// newEngine runs the config checks shared by Prepare and PrepareResume
// and returns the empty engine shell with profilers attached.
func newEngine(cfg *Config, w *trace.Workload) (*Engine, error) {
	cfg.fillDefaults()
	if cfg.Cluster == nil || cfg.Cluster.Len() == 0 {
		return nil, fmt.Errorf("sim: config needs a non-empty cluster")
	}
	if cfg.Scheduler == nil {
		return nil, fmt.Errorf("sim: config needs a scheduler")
	}
	if len(w.Jobs) == 0 && !cfg.Streaming {
		return nil, fmt.Errorf("sim: empty workload")
	}
	if cfg.Streaming && len(cfg.Growth) > 0 {
		return nil, fmt.Errorf("sim: streaming mode is incompatible with dynamic growth (growth plans are keyed to the initial job set)")
	}
	if cfg.Checkpoint.Enabled && cfg.Checkpoint.Interval >= cfg.Epoch {
		// DefaultCheckpoint's doc comment warns that a checkpoint interval
		// at or above the preemption epoch retains no progress across a
		// preempt-resume cycle and can live-lock the pair; reject it here
		// instead of relying on callers to read the comment.
		return nil, fmt.Errorf("sim: checkpoint interval %v must be shorter than the epoch %v (a task preempted every epoch would never retain progress)",
			cfg.Checkpoint.Interval, cfg.Epoch)
	}
	e := &Engine{cfg: *cfg, q: eventq.New()}
	if cfg.Interrupt != nil {
		e.q.SetStop(cfg.Interrupt)
	}
	tm := cfg.Prof
	// Attach (or detach, when Prof is nil) the profiler on components
	// that can attribute their own work — unconditional, so a scheduler
	// reused across runs never keeps a stale timer.
	if in, ok := cfg.Scheduler.(prof.Instrumentable); ok {
		in.SetProfiler(tm)
	}
	if cfg.Preemptor != nil {
		if in, ok := cfg.Preemptor.(prof.Instrumentable); ok {
			in.SetProfiler(tm)
		}
	}
	return e, nil
}

// Execute drains the event queue and finalizes the metrics. It returns
// ErrInterrupted when stopped via Config.Interrupt (after handing the
// durability sink its final-snapshot callback).
func (e *Engine) Execute() (*Result, error) {
	cfg := e.cfg
	tm := cfg.Prof
	tm.Enter(prof.PhaseEventPump)
	fired, drained := e.q.Run(cfg.MaxEvents)
	tm.Exit()
	e.fired = fired
	if cfg.Interrupt != nil && cfg.Interrupt.Load() {
		if d := cfg.Durability; d != nil {
			if err := d.OnInterrupt(e, e.q.Now()); err != nil {
				return nil, fmt.Errorf("sim: interrupted; final snapshot failed: %w", err)
			}
		}
		return nil, ErrInterrupted
	}
	if e.durErr != nil {
		return nil, fmt.Errorf("sim: durability sink failed: %w", e.durErr)
	}
	if !drained {
		return nil, fmt.Errorf("sim: event cap %d exceeded at t=%v with %d jobs incomplete (policy live-lock?)",
			fired, e.q.Now(), e.jobsRemaining)
	}
	if e.jobsRemaining > 0 {
		return nil, fmt.Errorf("sim: %d jobs incomplete after event queue drained (scheduler %q never assigned their tasks?)",
			e.jobsRemaining, cfg.Scheduler.Name())
	}
	if e.metrics.JobsCompleted+e.metrics.JobsFailed+e.metrics.JobsShed != len(e.jobs) {
		return nil, fmt.Errorf("sim: job accounting broken: %d completed + %d failed + %d shed != %d jobs",
			e.metrics.JobsCompleted, e.metrics.JobsFailed, e.metrics.JobsShed, len(e.jobs))
	}
	tm.Enter(prof.PhaseFinalize)
	e.finalize()
	tm.Exit()
	return &e.metrics, nil
}

// EventsFired returns the number of events Execute fired. The crash
// harness uses it to pick kill points inside a recorded run.
func (e *Engine) EventsFired() int { return e.fired }

// Now returns the engine clock.
func (e *Engine) Now() units.Time { return e.q.Now() }

// buildWorld constructs the engine's static world from the workload —
// node and task state, per-task deadlines, cross-job dependency
// resolution — without arming any events, so a restore can overlay
// snapshot state onto the same structures. armInitialEvents completes a
// fresh setup.
func (e *Engine) buildWorld(w *trace.Workload) error {
	cfg := e.cfg
	e.view = &View{engine: e}
	if db, ok := cfg.Scheduler.(DependencyBlind); ok && db.DependencyBlind() {
		e.blind = true
	}
	for _, n := range cfg.Cluster.Nodes {
		e.nodes = append(e.nodes, &nodeState{node: n, speedFactor: 1})
	}
	if err := cfg.Faults.Validate(cfg.Cluster.Len()); err != nil {
		return err
	}
	meanSpeed := cfg.Cluster.MeanSpeed()

	e.firstArrival = units.Forever
	e.byID = make(map[dag.JobID]*JobState, len(w.Jobs))
	for jobIdx, tj := range w.Jobs {
		js := &JobState{
			Dag:       tj.DAG,
			Arrival:   tj.Arrival,
			DoneAt:    -1,
			remaining: tj.DAG.Len(),
			idx:       jobIdx,
			id:        tj.DAG.ID,
			fpLen:     tj.DAG.Len(),
			fpSize:    tj.DAG.TotalSize(),
		}
		if tj.DAG.Deadline > 0 {
			js.Deadline = tj.Arrival + units.FromSeconds(tj.DAG.Deadline)
		}
		// Per-task deadlines via the per-level backward rule, at nominal
		// (mean) cluster speed.
		exec := func(id dag.TaskID) float64 { return tj.DAG.Task(id).Size / meanSpeed }
		if _, cp, err := tj.DAG.CriticalPath(exec); err == nil {
			js.ideal = units.FromSeconds(cp)
		}
		var taskDeadlines []float64
		if tj.DAG.Deadline > 0 {
			var err error
			taskDeadlines, err = tj.DAG.TaskDeadlines(tj.DAG.Deadline, exec)
			if err != nil {
				return fmt.Errorf("sim: job %d: %w", tj.DAG.ID, err)
			}
		}
		for _, task := range tj.DAG.Tasks {
			ts := &TaskState{
				Task:       task,
				Job:        js,
				Phase:      Pending,
				Node:       -1,
				FirstStart: -1,
				DoneAt:     -1,
				Deadline:   units.Forever,
				spanStart:  tj.Arrival,
			}
			if taskDeadlines != nil {
				ts.Deadline = tj.Arrival + units.FromSeconds(taskDeadlines[task.ID])
			}
			js.Tasks = append(js.Tasks, ts)
		}
		e.jobs = append(e.jobs, js)
		e.jobsRemaining++
		if tj.Arrival < e.firstArrival {
			e.firstArrival = tj.Arrival
		}
	}

	// Resolve cross-job dependencies and reject cycles (a cyclic job
	// graph can never finish).
	for _, js := range e.jobs {
		e.byID[js.id] = js
	}
	for i, tj := range w.Jobs {
		for _, dep := range tj.WaitsFor {
			pre, ok := e.byID[dep]
			if !ok {
				return fmt.Errorf("sim: job %d waits for unknown job %d", tj.DAG.ID, dep)
			}
			if pre == e.jobs[i] {
				return fmt.Errorf("sim: job %d waits for itself", tj.DAG.ID)
			}
			e.jobs[i].waitsFor = append(e.jobs[i].waitsFor, pre)
		}
	}
	if err := validateJobGraph(e.jobs); err != nil {
		return err
	}
	e.worldSum = e.worldFingerprint()
	return nil
}

// armInitialEvents schedules the events of a fresh (non-resumed) run:
// job arrivals, injected faults, dynamic growth, and the first
// period/epoch/speculation ticks.
func (e *Engine) armInitialEvents() error {
	cfg := e.cfg
	e.installFaults(cfg.Faults)
	for _, js := range e.jobs {
		e.armArrival(js, js.Arrival)
	}
	if err := e.installGrowth(cfg.Growth); err != nil {
		return err
	}

	// First scheduling period fires at the first arrival. A streaming
	// engine starts ticking at t=0: jobs may arrive at any moment, so
	// the cadence cannot key off a workload that may be empty.
	start := e.firstArrival
	if cfg.Streaming {
		start = 0
	}
	e.q.AtTag(start, eventq.Tag{Kind: evPeriodTick}, eventq.Func(e.periodTick))
	if cfg.Preemptor != nil {
		e.q.AtTag(start+cfg.Epoch, eventq.Tag{Kind: evEpochTick}, eventq.Func(e.epochTick))
	}
	if cfg.Speculation != nil {
		e.q.AtTag(start+cfg.Speculation.Interval, eventq.Tag{Kind: evSpecTick}, eventq.Func(e.specTick))
	}
	return nil
}

// armArrival schedules a job's arrival event: its pending tasks become
// visible to the next scheduling period via arrivedPending — unless
// admission control sheds the job at the door.
func (e *Engine) armArrival(js *JobState, at units.Time) {
	e.q.AtTag(at, eventq.Tag{Kind: evArrival, A: int32(js.idx)}, eventq.Func(func(at units.Time) {
		e.cfg.Prof.Enter(prof.PhaseAdmission)
		e.admitJob(js, at)
		e.cfg.Prof.Exit()
	}))
}

// arrivedPending returns jobs that have arrived by now, have every
// cross-job prerequisite completed, and still have unassigned tasks. The
// returned slice aliases a per-engine buffer that the next call reuses;
// it is only handed to Scheduler.Schedule, which must not retain it.
func (e *Engine) arrivedPending(now units.Time) []*JobState {
	out := e.pendingBuf[:0]
	for _, j := range e.jobs {
		if j.Arrival <= now && !j.failed && !j.shed && j.assigned < len(j.Tasks) && j.Eligible() {
			out = append(out, j)
		}
	}
	e.pendingBuf = out
	return out
}

// validateJobGraph rejects structurally broken per-job DAGs (in-job
// cycles, dangling edges, duplicate or misplaced task IDs — see
// dag.CheckStructure) and cyclic cross-job dependencies. Errors name the
// offending job (and task, for per-job defects).
func validateJobGraph(jobs []*JobState) error {
	for _, j := range jobs {
		if err := j.Dag.CheckStructure(); err != nil {
			return fmt.Errorf("sim: %w", err)
		}
	}
	const (
		white = iota
		grey
		black
	)
	color := make(map[*JobState]int, len(jobs))
	var visit func(j *JobState) error
	visit = func(j *JobState) error {
		switch color[j] {
		case grey:
			return fmt.Errorf("sim: cross-job dependency cycle involving job %d", j.Dag.ID)
		case black:
			return nil
		}
		color[j] = grey
		for _, p := range j.waitsFor {
			if err := visit(p); err != nil {
				return err
			}
		}
		color[j] = black
		return nil
	}
	for _, j := range jobs {
		if err := visit(j); err != nil {
			return err
		}
	}
	return nil
}

// periodTick runs the offline scheduler and re-arms itself while work
// remains. When a durability sink is configured it runs last, at the
// fully settled period boundary — the canonical snapshot point.
func (e *Engine) periodTick(now units.Time) {
	e.periodIndex++
	tm := e.cfg.Prof
	if e.cfg.Streaming {
		// Pull submitted jobs whose stamps have been reached into the
		// world (admission decides at the boundary, but JobShed events
		// carry the arrival stamp), then release the state of jobs that
		// settled since the previous boundary.
		e.drainIngest(now)
		e.retireSettled()
	}
	tm.Enter(prof.PhasePlanBuild)
	e.notePendingPeak(now)
	pending := e.arrivedPending(now)
	tm.Exit()
	if len(pending) > 0 {
		tm.Enter(prof.PhaseSchedule)
		assignments := e.cfg.Scheduler.Schedule(now, pending, e.view)
		tm.Exit()
		tm.Enter(prof.PhaseAssignApply)
		for _, a := range assignments {
			e.applyAssignment(a, now)
		}
		for k := range e.nodes {
			e.tryFill(cluster.NodeID(k), now)
		}
		tm.Exit()
	}
	if e.cfg.AuditInvariants && e.cfg.Preemptor == nil {
		// No epochs run in this configuration; audit at the period
		// boundary instead.
		tm.Enter(prof.PhaseAudit)
		e.auditInvariants(now)
		tm.Exit()
	}
	if e.jobsRemaining > 0 || e.streamingLive() {
		e.q.AfterTag(e.cfg.Period, eventq.Tag{Kind: evPeriodTick}, eventq.Func(e.periodTick))
	}
	if d := e.cfg.Durability; d != nil {
		tm.Enter(prof.PhaseSnapshot)
		if d.SnapshotDue(e.periodIndex) && e.cfg.Observer != nil {
			// The audit line for the snapshot event must precede the offset
			// the snapshot records, so a resumed run's truncated audit
			// already contains it — emit before the sink captures state.
			e.cfg.Observer.SnapshotTaken(now, e.periodIndex)
		}
		if err := d.OnPeriod(e, e.periodIndex, now); err != nil && e.durErr == nil {
			e.durErr = err
		}
		tm.Exit()
	}
}

// applyAssignment moves a pending task into its node's waiting queue.
func (e *Engine) applyAssignment(a Assignment, now units.Time) {
	t := a.Task
	if t.Phase != Pending {
		return // schedulers must only assign pending tasks; ignore others
	}
	if int(a.Node) < 0 || int(a.Node) >= len(e.nodes) {
		return
	}
	if e.nodes[a.Node].down {
		return // stays pending; the next period re-places it
	}
	e.closeWaitSpan(t, now)
	t.Phase = Queued
	t.Node = a.Node
	t.PlannedStart = units.Max(a.Start, now)
	t.QueuedAt = now
	t.Job.assigned++
	e.enqueue(a.Node, t)
}

// enqueue inserts t into the node queue keeping ascending
// (PlannedStart, JobID, TaskID) order.
func (e *Engine) enqueue(k cluster.NodeID, t *TaskState) {
	ns := e.nodes[k]
	i := sort.Search(len(ns.queue), func(i int) bool {
		q := ns.queue[i]
		if q.PlannedStart != t.PlannedStart {
			return q.PlannedStart > t.PlannedStart
		}
		if q.Task.Job != t.Task.Job {
			return q.Task.Job > t.Task.Job
		}
		return q.Task.ID > t.Task.ID
	})
	ns.queue = append(ns.queue, nil)
	copy(ns.queue[i+1:], ns.queue[i:])
	ns.queue[i] = t
}

// dequeue removes t from its node's queue.
func (e *Engine) dequeue(k cluster.NodeID, t *TaskState) {
	ns := e.nodes[k]
	for i, q := range ns.queue {
		if q == t {
			ns.queue = append(ns.queue[:i], ns.queue[i+1:]...)
			return
		}
	}
}

// tryFill starts queued tasks while the node has free slots. With a
// dependency-aware scheduler the engine picks the first *runnable* task
// in planned order; with a DependencyBlind scheduler it dispatches
// strictly in planned order — blocked tasks then occupy slots uselessly.
func (e *Engine) tryFill(k cluster.NodeID, now units.Time) {
	ns := e.nodes[k]
	if ns.down {
		return
	}
	for len(ns.running)+len(ns.spec) < ns.node.Slots {
		var pick *TaskState
		if e.blind {
			if len(ns.queue) > 0 {
				pick = ns.queue[0]
			}
		} else {
			for _, t := range ns.queue {
				if t.DepsMet() {
					pick = t
					break
				}
			}
		}
		if pick == nil {
			return
		}
		e.start(k, pick, now)
	}
}

// start moves a waiting task into a slot. If its precedents are
// unfinished (possible only under a DependencyBlind scheduler) the task
// blocks in the slot: no progress, a timeout to requeue it, and real work
// begins only when the last precedent completes.
func (e *Engine) start(k cluster.NodeID, t *TaskState, now units.Time) {
	e.dequeue(k, t)
	ns := e.nodes[k]
	e.closeWaitSpan(t, now)
	t.Phase = Running
	ns.running = append(ns.running, t)
	if now > t.QueuedAt {
		t.totalWait += now - t.QueuedAt
	}
	if t.FirstStart < 0 {
		t.FirstStart = now
		// Waiting metric: from readiness (deps met, queued) to first start.
		ready := t.ReadyAt()
		if now > ready {
			e.metrics.totalTaskWait += now - ready
		}
		e.metrics.taskWaitSamples++
	}
	if e.cfg.Observer != nil {
		e.cfg.Observer.TaskStarted(now, t, k)
	}
	if !t.DepsMet() {
		t.blocked = true
		t.effStart = now // occupancy start, for blocked-time accounting
		e.metrics.BlindStarts++
		t.blockEv = e.q.AfterTag(e.cfg.BlindTimeout, taskTag(evBlockTimeout, t), eventq.Func(func(at units.Time) {
			e.kickBlocked(k, t, at)
		}))
		t.hasBlockEv = true
		return
	}
	e.beginWork(k, t, now)
}

// beginWork schedules the completion of a task occupying a slot whose
// precedents have all finished.
func (e *Engine) beginWork(k cluster.NodeID, t *TaskState, now units.Time) {
	speed := e.speedOf(k)
	penalty := t.resumePenalty
	t.resumePenalty = 0
	if t.blocked {
		// A blind start spent [spanStart, now) holding the slot with
		// unfinished precedents; real work begins only now.
		e.emitSpan(t, SpanBlocked, CauseNone, k, t.spanStart, now)
	}
	t.blocked = false
	t.spanStart = now
	if !t.everRan && t.Task.Preferred >= 0 {
		if int(k) == t.Task.Preferred {
			e.metrics.LocalityHits++
		} else {
			e.metrics.LocalityMisses++
			penalty += e.cfg.RemoteInputPenalty
		}
	}
	t.everRan = true
	t.effStart = addTime(now, penalty)
	workTime := t.RemainingTime(speed)
	e.armAttemptFault(t, t.effStart, workTime)
	e.scheduleAttempt(k, t, addTime(t.effStart, workTime), now)
}

// kickBlocked requeues a blind-started task that spent BlindTimeout in a
// slot without its inputs appearing; the wasted occupancy is recorded.
func (e *Engine) kickBlocked(k cluster.NodeID, t *TaskState, now units.Time) {
	t.hasBlockEv = false
	if !t.blocked || t.Phase != Running {
		return
	}
	ns := e.nodes[k]
	for i, r := range ns.running {
		if r == t {
			ns.running = append(ns.running[:i], ns.running[i+1:]...)
			break
		}
	}
	e.metrics.BlockedSlotTime += e.cfg.BlindTimeout
	e.emitSpan(t, SpanBlocked, CauseNone, k, t.spanStart, now)
	t.spanStart = now
	t.blocked = false
	t.Phase = Queued
	t.QueuedAt = now
	// Demote behind currently planned work so the slot tries something
	// else first.
	t.PlannedStart = now + e.cfg.Period
	e.enqueue(k, t)
	if e.cfg.Observer != nil {
		e.cfg.Observer.TaskRequeued(now, t, k, RequeueBlindTimeout)
	}
	e.tryFill(k, now)
}

// suspend preempts a running task: progress rolls back to the last
// checkpoint, the resume penalty is armed, and the task rejoins the
// queue.
func (e *Engine) suspend(k cluster.NodeID, t *TaskState, now units.Time) {
	ns := e.nodes[k]
	for i, r := range ns.running {
		if r == t {
			ns.running = append(ns.running[:i], ns.running[i+1:]...)
			break
		}
	}
	if t.hasDoneEv {
		e.q.Cancel(t.doneEv)
		t.hasDoneEv = false
	}
	if t.hasBlockEv {
		e.q.Cancel(t.blockEv)
		t.hasBlockEv = false
	}
	if t.blocked {
		// A blocked blind-start never began work: nothing to roll back
		// and no state to restore on resume.
		e.metrics.BlockedSlotTime += now - t.effStart
		e.emitSpan(t, SpanBlocked, CauseNone, k, t.spanStart, now)
		t.spanStart = now
		t.blocked = false
	} else {
		speed := e.speedOf(k)
		var lost units.Time
		if now > t.effStart {
			worked := now - t.effStart
			retained := e.cfg.Checkpoint.RetainedProgress(worked)
			t.doneMI += retained.Seconds() * speed
			if t.doneMI > t.Task.Size {
				t.doneMI = t.Task.Size
			}
			if worked > retained {
				lost = worked - retained
			}
		}
		e.closeBurstSpans(t, k, now, CausePreemption, lost)
		t.resumePenalty = e.cfg.Checkpoint.ResumePenalty()
	}
	t.attemptFailAt = 0 // the burst died with the slot; resume re-rolls
	t.Phase = Suspended
	t.Preemptions++
	t.QueuedAt = now
	e.metrics.Preemptions++
	e.enqueue(k, t)
}

// complete finishes the primary copy of a task: it leaves its slot, any
// speculative backup is cancelled (first copy wins), and the task
// finishes.
func (e *Engine) complete(k cluster.NodeID, t *TaskState, now units.Time) {
	tm := e.cfg.Prof
	tm.Enter(prof.PhaseTaskComplete)
	defer tm.Exit()
	ns := e.nodes[k]
	for i, r := range ns.running {
		if r == t {
			ns.running = append(ns.running[:i], ns.running[i+1:]...)
			break
		}
	}
	t.hasDoneEv = false
	if t.backup != nil {
		e.cancelBackup(t.backup, now)
	}
	e.closeBurstSpans(t, k, now, CauseNone, 0)
	e.finish(k, t, now)
}

// finish records a task's completion — shared by the primary path
// (complete) and a winning speculative copy (backupComplete). The caller
// has already detached every live copy of the task.
func (e *Engine) finish(k cluster.NodeID, t *TaskState, now units.Time) {
	t.Phase = Done
	t.DoneAt = now
	t.doneMI = t.Task.Size
	e.metrics.TasksCompleted++
	if e.cfg.Observer != nil {
		e.cfg.Observer.TaskCompleted(now, t, k)
	}
	if t.Deadline != units.Forever && now > t.Deadline {
		e.metrics.TaskDeadlineMisses++
	}
	j := t.Job
	j.remaining--
	if j.remaining == 0 {
		j.DoneAt = now
		e.jobsRemaining--
		e.metrics.JobsCompleted++
		if j.MetDeadline() {
			e.metrics.JobsMetDeadline++
		}
		// Job waiting time: submission to first task start.
		first := units.Forever
		for _, ts := range j.Tasks {
			if ts.FirstStart >= 0 && ts.FirstStart < first {
				first = ts.FirstStart
			}
		}
		if first != units.Forever && first > j.Arrival {
			e.metrics.totalJobWait += first - j.Arrival
		}
		e.metrics.jobWaitSamples++

		// Per-job records are a batch-analysis artifact; a streaming
		// engine runs indefinitely and must not accumulate one entry
		// per job forever.
		if !e.cfg.Streaming {
			rec := JobRecord{
				Job:         j.Dag.ID,
				Arrival:     j.Arrival,
				DoneAt:      now,
				FirstStart:  first,
				Ideal:       j.ideal,
				MetDeadline: j.MetDeadline(),
			}
			if j.ideal > 0 {
				rec.Slowdown = (now - j.Arrival).Seconds() / j.ideal.Seconds()
			}
			var queueWait units.Time
			for _, ts := range j.Tasks {
				queueWait += ts.totalWait
			}
			rec.AvgTaskQueueWait = queueWait / units.Time(len(j.Tasks))
			e.metrics.totalJobQueueWait += rec.AvgTaskQueueWait
			e.metrics.Jobs = append(e.metrics.Jobs, rec)
		}
		if e.cfg.Observer != nil {
			e.cfg.Observer.JobCompleted(now, j)
		}
	}
	if now > e.lastDone {
		e.lastDone = now
	}
	e.tryFill(k, now)
	// Completing t may have unblocked dependents: blind-started tasks
	// spinning in slots can begin real work, and runnable tasks queued on
	// other nodes can be dispatched.
	for _, c := range j.Dag.Children(t.Task.ID) {
		cs := j.Tasks[c]
		if !cs.DepsMet() {
			continue
		}
		switch {
		case cs.blocked && cs.Phase == Running:
			if cs.hasBlockEv {
				e.q.Cancel(cs.blockEv)
				cs.hasBlockEv = false
			}
			e.metrics.BlockedSlotTime += now - cs.effStart
			e.beginWork(cs.Node, cs, now)
		case (cs.Phase == Queued || cs.Phase == Suspended) && cs.Node != k:
			e.tryFill(cs.Node, now)
		}
	}
}

// epochTick runs the online preemption policy and re-arms itself.
func (e *Engine) epochTick(now units.Time) {
	e.epochIndex++
	if e.cfg.Observer != nil {
		e.cfg.Observer.EpochStarted(now, e.epochIndex)
	}
	tm := e.cfg.Prof
	tm.Enter(prof.PhaseEpochPolicy)
	actions := e.cfg.Preemptor.Epoch(now, e.view)
	tm.Exit()
	tm.Enter(prof.PhaseActionApply)
	for _, a := range actions {
		e.applyAction(a, now)
	}
	for k := range e.nodes {
		e.tryFill(cluster.NodeID(k), now)
	}
	tm.Exit()
	if e.cfg.AuditInvariants {
		tm.Enter(prof.PhaseAudit)
		e.auditInvariants(now)
		tm.Exit()
	}
	if e.cfg.Observer != nil {
		e.cfg.Observer.EpochEnded(now, e.epochIndex, e.view)
	}
	if e.jobsRemaining > 0 || e.streamingLive() {
		e.q.AfterTag(e.cfg.Epoch, eventq.Tag{Kind: evEpochTick}, eventq.Func(e.epochTick))
	}
}

// applyAction validates and executes one preemption. A starter whose
// precedents have not finished is a dependency disorder: the policy
// ordered an execution inconsistent with the dependency relation. The
// attempt is counted, but the node's launcher refuses to evict the
// victim for a task whose inputs do not exist — evicting anyway would,
// under a no-checkpoint policy, let a child suspend its own unfinished
// parent every epoch and live-lock the pair forever.
func (e *Engine) applyAction(a Action, now units.Time) {
	if a.Victim == nil || a.Starter == nil {
		return
	}
	if a.Victim.Phase != Running || a.Victim.Node != a.Node {
		return
	}
	if (a.Starter.Phase != Queued && a.Starter.Phase != Suspended) || a.Starter.Node != a.Node {
		return
	}
	if !a.Starter.DepsMet() {
		e.metrics.Disorders++
		if o := e.cfg.Observer; o != nil {
			o.PreemptionConsidered(now, decisionOf(a, VerdictDisorder))
			o.DisorderDetected(now, a.Starter, a.Victim, a.Node)
		}
		return
	}
	e.suspend(a.Node, a.Victim, now)
	if o := e.cfg.Observer; o != nil {
		verdict := VerdictAccepted
		if a.Urgent {
			verdict = VerdictUrgentOverride
		}
		o.PreemptionConsidered(now, decisionOf(a, verdict))
		o.TaskPreempted(now, a.Victim, a.Starter, a.Node)
	}
	e.start(a.Node, a.Starter, now)
}

// decisionOf renders an applied (or refused) action as the decision
// record its PreemptionConsidered event carries.
func decisionOf(a Action, verdict Verdict) PreemptionDecision {
	return PreemptionDecision{
		Node:              a.Node,
		Candidate:         a.Starter,
		Victim:            a.Victim,
		CandidatePriority: a.StarterPriority,
		VictimPriority:    a.VictimPriority,
		Gain:              a.StarterPriority - a.VictimPriority,
		Overhead:          a.PPThreshold,
		Urgent:            a.Urgent,
		Verdict:           verdict,
	}
}

// finalize computes derived metrics after the run.
func (e *Engine) finalize() {
	m := &e.metrics
	if e.lastDone > e.firstArrival {
		m.Makespan = e.lastDone - e.firstArrival
	}
	if m.Makespan > 0 {
		m.TaskThroughputPerMs = float64(m.TasksCompleted) / m.Makespan.Milliseconds()
		m.JobThroughputPerMin = float64(m.JobsMetDeadline) / (m.Makespan.Seconds() / 60)
		m.GoodputPerMs = float64(m.TasksCompleted-m.TasksWasted) / m.Makespan.Milliseconds()
	}
	if m.jobWaitSamples > 0 {
		m.AvgJobWait = m.totalJobWait / units.Time(m.jobWaitSamples)
	}
	if len(m.Jobs) > 0 {
		var total units.Time
		for _, r := range m.Jobs {
			q := (r.DoneAt - r.Arrival) - r.Ideal
			if q > 0 {
				total += q
			}
		}
		m.AvgJobQueueing = total / units.Time(len(m.Jobs))
		m.AvgJobWaiting = m.totalJobQueueWait / units.Time(len(m.Jobs))
	}
	if m.taskWaitSamples > 0 {
		m.AvgTaskWait = m.totalTaskWait / units.Time(m.taskWaitSamples)
	}
}
