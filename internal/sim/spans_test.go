package sim_test

import (
	"sort"
	"testing"

	"dsp/internal/baselines"
	"dsp/internal/chaos"
	"dsp/internal/cluster"
	"dsp/internal/dag"
	"dsp/internal/preempt"
	"dsp/internal/sched"
	"dsp/internal/sim"
	"dsp/internal/trace"
	"dsp/internal/units"
)

// spanCollector records every closed span and every completed job.
type spanCollector struct {
	sim.NopObserver
	spans map[dag.Key][]sim.TaskSpan
	jobs  []*sim.JobState
}

func newSpanCollector() *spanCollector {
	return &spanCollector{spans: make(map[dag.Key][]sim.TaskSpan)}
}

func (c *spanCollector) TaskSpanClosed(s sim.TaskSpan) {
	k := s.Task.Key()
	c.spans[k] = append(c.spans[k], s)
}

func (c *spanCollector) JobCompleted(_ units.Time, j *sim.JobState) {
	c.jobs = append(c.jobs, j)
}

// checkTiling asserts the span-tiling invariant for every task of every
// completed job: spans are non-overlapping, gapless, start at the job's
// arrival and end at the task's completion.
func checkTiling(t *testing.T, c *spanCollector) {
	t.Helper()
	if len(c.jobs) == 0 {
		t.Fatal("no completed jobs observed")
	}
	for _, j := range c.jobs {
		for _, ts := range j.Tasks {
			key := ts.Key()
			spans := append([]sim.TaskSpan(nil), c.spans[key]...)
			if len(spans) == 0 {
				t.Errorf("%v: no spans recorded", key)
				continue
			}
			sort.Slice(spans, func(a, b int) bool { return spans[a].Start < spans[b].Start })
			if spans[0].Start != j.Arrival {
				t.Errorf("%v: first span starts at %v, want job arrival %v", key, spans[0].Start, j.Arrival)
			}
			for i, s := range spans {
				if s.End <= s.Start {
					t.Errorf("%v: span %d [%v, %v) is empty or inverted", key, i, s.Start, s.End)
				}
				if i > 0 && s.Start != spans[i-1].End {
					t.Errorf("%v: span %d starts at %v but span %d ended at %v (gap or overlap)",
						key, i, s.Start, i-1, spans[i-1].End)
				}
			}
			if last := spans[len(spans)-1].End; last != ts.DoneAt {
				t.Errorf("%v: last span ends at %v, want completion %v", key, last, ts.DoneAt)
			}
		}
	}
}

func spanWorkload(t *testing.T, jobs int, seed int64) *trace.Workload {
	t.Helper()
	spec := trace.DefaultSpec(jobs, seed)
	spec.TaskScale = 0.02
	spec.MeanTaskSizeMI /= 0.02
	w, err := trace.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestSpanTilingPlain covers the base DSP stack: offline periods,
// online preemption, suspensions and resumes.
func TestSpanTilingPlain(t *testing.T) {
	c := newSpanCollector()
	cp := cluster.DefaultCheckpoint()
	cp.Interval = 500 * units.Millisecond // below the 1 s epoch
	_, err := sim.Run(sim.Config{
		Cluster:    cluster.RealCluster(4),
		Scheduler:  sched.NewDSP(),
		Preemptor:  preempt.NewDSP(),
		Checkpoint: cp,
		Period:     units.Minute,
		Epoch:      units.Second,
		Observer:   c,
	}, spanWorkload(t, 6, 1))
	if err != nil {
		t.Fatal(err)
	}
	checkTiling(t, c)
}

// TestSpanTilingChaos covers crashes, stragglers, transient faults,
// retries with backoff, and speculation — every burst-ending path.
func TestSpanTilingChaos(t *testing.T) {
	for _, seed := range []int64{3, 11} {
		cl := cluster.RealCluster(8)
		cs := chaos.DefaultSpec(cl.Len(), seed)
		cs.FaultyFraction = 0.4
		plan, err := cs.Plan()
		if err != nil {
			t.Fatal(err)
		}
		c := newSpanCollector()
		_, err = sim.Run(sim.Config{
			Cluster:      cl,
			Scheduler:    sched.NewDSP(),
			Preemptor:    preempt.NewDSP(),
			Checkpoint:   cluster.DefaultCheckpoint(),
			Epoch:        10 * units.Second,
			Faults:       plan,
			Speculation:  &sim.Speculation{},
			RetryBackoff: 2 * units.Second,
			Observer:     c,
		}, spanWorkload(t, 12, seed))
		if err != nil {
			t.Fatal(err)
		}
		checkTiling(t, c)
	}
}

// TestSpanTilingBlind covers the dependency-blind path: blind starts,
// blocked slots, blind-timeout requeues.
func TestSpanTilingBlind(t *testing.T) {
	c := newSpanCollector()
	_, err := sim.Run(sim.Config{
		Cluster:      cluster.RealCluster(4),
		Scheduler:    &baselines.Tetris{},
		Preemptor:    baselines.NewSRPT(),
		Checkpoint:   cluster.DefaultCheckpoint(),
		Period:       units.Minute,
		Epoch:        5 * units.Second,
		BlindTimeout: 20 * units.Second,
		Observer:     c,
	}, spanWorkload(t, 6, 5))
	if err != nil {
		t.Fatal(err)
	}
	checkTiling(t, c)
}
