package sim

import (
	"testing"

	"dsp/internal/cluster"
	"dsp/internal/dag"
	"dsp/internal/trace"
	"dsp/internal/units"
)

// testCluster returns n nodes at 1000 MIPS with the given slots.
func testCluster(n, slots int) *cluster.Cluster {
	c := &cluster.Cluster{Theta1: 0.5, Theta2: 0.5}
	for i := 0; i < n; i++ {
		c.Nodes = append(c.Nodes, &cluster.Node{
			ID: cluster.NodeID(i), Name: "test", SCPU: 1000, SMem: 1000, Slots: slots,
			Capacity: dag.Resources{CPU: float64(slots), Mem: 16, DiskMB: 1e6, Bandwidth: 1e3},
		})
	}
	return c
}

// rrScheduler assigns every pending task round-robin with start = now.
type rrScheduler struct{}

func (rrScheduler) Name() string { return "rr" }
func (rrScheduler) Schedule(now units.Time, pending []*JobState, v *View) []Assignment {
	var out []Assignment
	i := 0
	n := v.Cluster().Len()
	for _, j := range pending {
		for _, t := range j.PendingTasks() {
			out = append(out, Assignment{Task: t, Node: cluster.NodeID(i % n), Start: now})
			i++
		}
	}
	return out
}

// onceActor fires a fixed set of preemption actions on its first epoch.
type onceActor struct {
	fired bool
	act   func(now units.Time, v *View) []Action
}

func (o *onceActor) Name() string { return "once" }
func (o *onceActor) Epoch(now units.Time, v *View) []Action {
	if o.fired {
		return nil
	}
	o.fired = true
	return o.act(now, v)
}

// mkWorkload wraps DAG jobs into a workload with the given arrivals.
func mkWorkload(arrivals []units.Time, jobs ...*dag.Job) *trace.Workload {
	w := &trace.Workload{ArrivalRate: 3}
	for i, j := range jobs {
		w.Jobs = append(w.Jobs, &trace.Job{Class: trace.Small, Arrival: arrivals[i], DAG: j})
	}
	return w
}

func sizedJob(id dag.JobID, sizes ...float64) *dag.Job {
	j := dag.NewJob(id, len(sizes))
	for i, s := range sizes {
		j.Task(dag.TaskID(i)).Size = s
		j.Task(dag.TaskID(i)).Demand = dag.Resources{CPU: 0.5, Mem: 0.5, DiskMB: 0.02, Bandwidth: 0.02}
	}
	return j
}

func TestSerialExecutionOnOneSlot(t *testing.T) {
	j := sizedJob(0, 5000, 5000) // two 5 s tasks at 1000 MIPS
	res, err := Run(Config{
		Cluster:   testCluster(1, 1),
		Scheduler: rrScheduler{},
	}, mkWorkload([]units.Time{0}, j))
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 10*units.Second {
		t.Errorf("makespan = %v, want 10s", res.Makespan)
	}
	if res.TasksCompleted != 2 || res.JobsCompleted != 1 {
		t.Errorf("completed tasks=%d jobs=%d", res.TasksCompleted, res.JobsCompleted)
	}
	if res.Preemptions != 0 || res.Disorders != 0 {
		t.Errorf("unexpected preemptions=%d disorders=%d", res.Preemptions, res.Disorders)
	}
}

func TestParallelSlotsShortenMakespan(t *testing.T) {
	j := sizedJob(0, 5000, 5000)
	res, err := Run(Config{
		Cluster:   testCluster(1, 2),
		Scheduler: rrScheduler{},
	}, mkWorkload([]units.Time{0}, j))
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 5*units.Second {
		t.Errorf("makespan = %v, want 5s with two slots", res.Makespan)
	}
}

func TestDependencyGatesExecution(t *testing.T) {
	j := sizedJob(0, 1000, 1000, 1000)
	j.MustDep(0, 1)
	j.MustDep(1, 2)
	res, err := Run(Config{
		Cluster:   testCluster(1, 3), // slots available, deps must gate
		Scheduler: rrScheduler{},
	}, mkWorkload([]units.Time{0}, j))
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 3*units.Second {
		t.Errorf("makespan = %v, want 3s (chain forces serial execution)", res.Makespan)
	}
}

func TestCrossNodeDependency(t *testing.T) {
	// Chain 0->1 with rr placing task0 on node0 and task1 on node1: node1
	// must idle until task0 completes.
	j := sizedJob(0, 2000, 1000)
	j.MustDep(0, 1)
	res, err := Run(Config{
		Cluster:   testCluster(2, 1),
		Scheduler: rrScheduler{},
	}, mkWorkload([]units.Time{0}, j))
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 3*units.Second {
		t.Errorf("makespan = %v, want 3s", res.Makespan)
	}
}

func TestPreemptionAccounting(t *testing.T) {
	// One slot: A = 10 s, B = 1 s. At the first epoch (2 s) a custom
	// preemptor suspends A for B. Checkpoint interval 1.5 s means A's
	// 2 s of progress roll back to the 1.5 s checkpoint boundary.
	j := sizedJob(0, 10000, 1000)
	pre := &onceActor{act: func(now units.Time, v *View) []Action {
		running := v.Running(0)
		queue := v.Queue(0)
		if len(running) != 1 || len(queue) != 1 {
			t.Fatalf("unexpected state at epoch: run=%d queue=%d", len(running), len(queue))
		}
		return []Action{{Node: 0, Victim: running[0], Starter: queue[0]}}
	}}
	cp := cluster.DefaultCheckpoint()
	cp.Interval = 1500 * units.Millisecond
	res, err := Run(Config{
		Cluster:    testCluster(1, 1),
		Scheduler:  rrScheduler{},
		Preemptor:  pre,
		Checkpoint: cp,
		Epoch:      2 * units.Second,
	}, mkWorkload([]units.Time{0}, j))
	if err != nil {
		t.Fatal(err)
	}
	if res.Preemptions != 1 {
		t.Errorf("preemptions = %d, want 1", res.Preemptions)
	}
	if res.Disorders != 0 {
		t.Errorf("disorders = %d, want 0", res.Disorders)
	}
	// Timeline: A runs [0,2), preempted with 1.5 s retained (one full
	// checkpoint interval). B runs [2,3). A resumes at 3 with the 2.05 s
	// resume penalty and 8.5 s left: completes at 13.55 s.
	want := 13*units.Second + 550*units.Millisecond
	if res.Makespan != want {
		t.Errorf("makespan = %v, want %v", res.Makespan, want)
	}
}

func TestCheckpointPreservesProgress(t *testing.T) {
	// Same scenario but with a 1 s checkpoint interval: A keeps 2 s of
	// work, so it completes at 3 + 2.05 + 8 = 13.05 s.
	j := sizedJob(0, 10000, 1000)
	pre := &onceActor{act: func(now units.Time, v *View) []Action {
		return []Action{{Node: 0, Victim: v.Running(0)[0], Starter: v.Queue(0)[0]}}
	}}
	cp := cluster.DefaultCheckpoint()
	cp.Interval = units.Second
	res, err := Run(Config{
		Cluster:    testCluster(1, 1),
		Scheduler:  rrScheduler{},
		Preemptor:  pre,
		Checkpoint: cp,
		Epoch:      2 * units.Second,
	}, mkWorkload([]units.Time{0}, j))
	if err != nil {
		t.Fatal(err)
	}
	want := 13*units.Second + 50*units.Millisecond
	if res.Makespan != want {
		t.Errorf("makespan = %v, want %v", res.Makespan, want)
	}
}

func TestDisorderedPreemptionCounted(t *testing.T) {
	// Chain 0->1 on one slot. A bad preemptor orders task1 to preempt its
	// own precedent task0: the disorder is counted, but the launcher
	// refuses the eviction (starting task1 is impossible), so task0 runs
	// on undisturbed.
	j := sizedJob(0, 5000, 1000)
	j.MustDep(0, 1)
	pre := &onceActor{act: func(now units.Time, v *View) []Action {
		return []Action{{Node: 0, Victim: v.Running(0)[0], Starter: v.Queue(0)[0]}}
	}}
	res, err := Run(Config{
		Cluster:    testCluster(1, 1),
		Scheduler:  rrScheduler{},
		Preemptor:  pre,
		Checkpoint: cluster.DefaultCheckpoint(),
		Epoch:      2 * units.Second,
	}, mkWorkload([]units.Time{0}, j))
	if err != nil {
		t.Fatal(err)
	}
	if res.Disorders != 1 {
		t.Errorf("disorders = %d, want 1", res.Disorders)
	}
	if res.Preemptions != 0 {
		t.Errorf("preemptions = %d, want 0 (refused eviction)", res.Preemptions)
	}
	// Undisturbed: 5 s + 1 s.
	if res.Makespan != 6*units.Second {
		t.Errorf("makespan = %v, want 6s", res.Makespan)
	}
}

func TestDeadlineMetricsAndWaiting(t *testing.T) {
	j := sizedJob(0, 5000, 5000)
	j.Deadline = 7 // 7 s deadline but serial execution needs 10 s
	res, err := Run(Config{
		Cluster:   testCluster(1, 1),
		Scheduler: rrScheduler{},
	}, mkWorkload([]units.Time{0}, j))
	if err != nil {
		t.Fatal(err)
	}
	if res.JobsMetDeadline != 0 {
		t.Errorf("JobsMetDeadline = %d, want 0", res.JobsMetDeadline)
	}
	if res.TaskDeadlineMisses == 0 {
		t.Error("expected task deadline misses")
	}
	// Second task waited 5 s ready-in-queue; first waited 0.
	wantAvg := 2500 * units.Millisecond
	if res.AvgTaskWait != wantAvg {
		t.Errorf("AvgTaskWait = %v, want %v", res.AvgTaskWait, wantAvg)
	}
}

func TestLateArrivalSchedulesNextPeriod(t *testing.T) {
	j1 := sizedJob(0, 1000)
	j2 := sizedJob(1, 1000)
	res, err := Run(Config{
		Cluster:   testCluster(1, 1),
		Scheduler: rrScheduler{},
		Period:    10 * units.Second,
	}, mkWorkload([]units.Time{0, 2 * units.Second}, j1, j2))
	if err != nil {
		t.Fatal(err)
	}
	// j2 arrives at 2 s but is only scheduled at the 10 s period tick,
	// finishing at 11 s: makespan 11 s from first arrival.
	if res.Makespan != 11*units.Second {
		t.Errorf("makespan = %v, want 11s", res.Makespan)
	}
	if res.JobsCompleted != 2 {
		t.Errorf("jobs completed = %d", res.JobsCompleted)
	}
}

func TestRunValidation(t *testing.T) {
	j := sizedJob(0, 100)
	w := mkWorkload([]units.Time{0}, j)
	if _, err := Run(Config{Scheduler: rrScheduler{}}, w); err == nil {
		t.Error("nil cluster accepted")
	}
	if _, err := Run(Config{Cluster: testCluster(1, 1)}, w); err == nil {
		t.Error("nil scheduler accepted")
	}
	if _, err := Run(Config{Cluster: testCluster(1, 1), Scheduler: rrScheduler{}}, &trace.Workload{}); err == nil {
		t.Error("empty workload accepted")
	}
}

func TestCheckpointIntervalMustBeatEpoch(t *testing.T) {
	// Interval >= Epoch is the live-lock configuration the
	// DefaultCheckpoint doc warns about: a task preempted every epoch
	// would never complete a checkpoint and so never retain progress.
	// The config must be rejected up front, not rely on callers reading
	// the comment.
	j := sizedJob(0, 100)
	w := mkWorkload([]units.Time{0}, j)
	run := func(interval, epoch units.Time) error {
		cp := cluster.DefaultCheckpoint()
		cp.Interval = interval
		_, err := Run(Config{
			Cluster:    testCluster(1, 1),
			Scheduler:  rrScheduler{},
			Checkpoint: cp,
			Epoch:      epoch,
		}, w)
		return err
	}
	if err := run(2*units.Second, units.Second); err == nil {
		t.Error("interval > epoch accepted")
	}
	if err := run(units.Second, units.Second); err == nil {
		t.Error("interval == epoch accepted")
	}
	if err := run(500*units.Millisecond, units.Second); err != nil {
		t.Errorf("interval < epoch rejected: %v", err)
	}
	// Interval 0 means continuous checkpointing — always legal.
	if err := run(0, units.Second); err != nil {
		t.Errorf("continuous checkpointing rejected: %v", err)
	}
	// A disabled policy never checkpoints, so the interval is inert.
	cp := cluster.NoCheckpoint()
	cp.Interval = 10 * units.Second
	if _, err := Run(Config{
		Cluster:    testCluster(1, 1),
		Scheduler:  rrScheduler{},
		Checkpoint: cp,
		Epoch:      units.Second,
	}, w); err != nil {
		t.Errorf("disabled checkpointing rejected: %v", err)
	}
}

func TestTaskStateHelpers(t *testing.T) {
	j := sizedJob(0, 2000)
	ts := &TaskState{Task: j.Task(0), Job: &JobState{Dag: j}, Phase: Queued, QueuedAt: 5 * units.Second, Deadline: 100 * units.Second}
	ts.Job.Tasks = []*TaskState{ts}
	if got := ts.RemainingMI(); got != 2000 {
		t.Errorf("RemainingMI = %v", got)
	}
	if got := ts.RemainingTime(1000); got != 2*units.Second {
		t.Errorf("RemainingTime = %v", got)
	}
	if got := ts.RemainingTime(0); got != units.Forever {
		t.Errorf("RemainingTime(0) = %v", got)
	}
	if got := ts.WaitingTime(8 * units.Second); got != 3*units.Second {
		t.Errorf("WaitingTime = %v", got)
	}
	ts.Phase = Running
	if got := ts.WaitingTime(8 * units.Second); got != 0 {
		t.Errorf("running WaitingTime = %v, want 0", got)
	}
	ts.Phase = Queued
	// AllowableWait = 100 - 10 - 2 = 88 s.
	if got := ts.AllowableWait(10*units.Second, 1000); got != 88*units.Second {
		t.Errorf("AllowableWait = %v", got)
	}
	if !ts.DepsMet() {
		t.Error("task with no parents should have deps met")
	}
}

func TestPhaseString(t *testing.T) {
	for p, want := range map[Phase]string{
		Pending: "pending", Queued: "queued", Running: "running",
		Suspended: "suspended", Done: "done",
	} {
		if p.String() != want {
			t.Errorf("Phase(%d) = %q", p, p.String())
		}
	}
}
