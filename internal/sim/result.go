package sim

import (
	"fmt"

	"dsp/internal/dag"
	"dsp/internal/units"
)

// JobRecord summarizes one job's outcome, for per-job analyses such as
// fairness indices over slowdowns.
type JobRecord struct {
	Job     dag.JobID
	Arrival units.Time
	DoneAt  units.Time
	// FirstStart is when the job's first task began running.
	FirstStart units.Time
	// Ideal is the job's lower-bound duration: its critical path at the
	// cluster's mean speed.
	Ideal units.Time
	// Slowdown is (DoneAt−Arrival)/Ideal (≥ 1 in practice).
	Slowdown    float64
	MetDeadline bool
	// AvgTaskQueueWait is the mean, over the job's tasks, of total time
	// spent in waiting queues (including re-waits after preemptions).
	AvgTaskQueueWait units.Time
}

// Result holds the metrics of one simulation run — the quantities the
// paper's Figures 5–8 plot.
type Result struct {
	// Makespan is the span from the first job arrival to the last task
	// completion (Figures 5, 8a).
	Makespan units.Time
	// TasksCompleted is the total number of finished tasks.
	TasksCompleted int
	// TaskThroughputPerMs is tasks completed per millisecond of makespan
	// (Figures 6b, 7b, 8b).
	TaskThroughputPerMs float64
	// JobsCompleted and JobsMetDeadline count finished jobs and those
	// that finished within their deadline.
	JobsCompleted   int
	JobsMetDeadline int
	// JobThroughputPerMin is deadline-meeting jobs per minute, the
	// paper's definition of throughput in Section III.
	JobThroughputPerMin float64
	// AvgJobWait is the mean time from job submission to its first task
	// start.
	AvgJobWait units.Time
	// AvgJobQueueing is the mean time jobs spent not executing: flow
	// time (completion − arrival) minus the job's critical-path ideal,
	// clamped at zero per job.
	AvgJobQueueing units.Time
	// AvgJobWaiting is the paper's Figure 6(c)/7(c) metric: the mean,
	// over jobs, of the per-job average task queue-residence time —
	// every second a task sits in a waiting queue counts, including the
	// re-waiting a preempted task endures before resuming, so preemption
	// churn and disorder waste inflate it directly.
	AvgJobWaiting units.Time
	// AvgTaskWait is the mean time tasks spent ready-but-waiting before
	// their first start.
	AvgTaskWait units.Time
	// Preemptions counts task suspensions (Figures 6d, 7d).
	Preemptions int
	// Disorders counts preemption decisions that started (or tried to
	// start) a task before its precedents finished (Figures 6a, 7a).
	Disorders int
	// TaskDeadlineMisses counts tasks finishing after their derived
	// deadline.
	TaskDeadlineMisses int
	// BlindStarts counts tasks dispatched into slots before their
	// precedents finished (dependency-blind schedulers only), and
	// BlockedSlotTime is the total slot occupancy those tasks wasted.
	BlindStarts     int
	BlockedSlotTime units.Time
	// Failures counts injected node crashes; FailureEvictions counts
	// task evictions (running or queued) those crashes caused.
	Failures         int
	FailureEvictions int
	// LocalityHits/Misses count tasks with a preferred (data-holding)
	// node that first ran on it / elsewhere.
	LocalityHits   int
	LocalityMisses int
	// GrownTasks counts dynamically added tasks.
	GrownTasks int
	// TaskFaults counts injected transient task-attempt failures.
	TaskFaults int
	// Retries counts failed attempts (transient faults and crash
	// evictions of running tasks) re-admitted under the retry budget.
	Retries int
	// TerminalFailures counts tasks that exhausted their retry budget;
	// JobsFailed counts jobs terminated by them (directly or through a
	// failed prerequisite job).
	TerminalFailures int
	JobsFailed       int
	// TasksWasted counts tasks that completed but belong to jobs that
	// later failed — work that produced no job-level output.
	TasksWasted int
	// GoodputPerMs is completed tasks of *successful* jobs per
	// millisecond of makespan (TaskThroughputPerMs minus wasted work).
	GoodputPerMs float64
	// Blacklistings counts rising-edge node blacklist events.
	Blacklistings int
	// Speculations counts backup copies launched; SpeculationWins those
	// that beat the primary; SpeculationCancels those abandoned.
	Speculations       int
	SpeculationWins    int
	SpeculationCancels int
	// SpeculativeWaste is slot time burned by losing copies (cancelled
	// backups, and primaries whose backup won).
	SpeculativeWaste units.Time
	// LostWork is execution time destroyed by faults: progress past the
	// last checkpoint at crash/fault time, plus the running burst of
	// tasks killed when their job failed.
	LostWork units.Time
	// JobsShed counts jobs rejected by admission control — load the
	// system declined at the door rather than missed (see Admission).
	JobsShed int
	// JobsCancelled counts jobs withdrawn by explicit cancel requests
	// (streaming ingestion). Cancelled jobs also count under JobsFailed —
	// their live tasks are withdrawn exactly like a terminal failure's —
	// so this is a cause breakdown, not an additional outcome class.
	JobsCancelled int
	// PeakPendingTasks is the high-water mark of the admitted-but-
	// unassigned task backlog, sampled at arrivals and period boundaries.
	// Bounded admission keeps it near Admission.MaxPendingTasks no matter
	// the overload.
	PeakPendingTasks int
	// SolverDegradations counts downgrades along the scheduler's
	// degradation ladder (SolverDegraded events).
	SolverDegradations int
	// InvariantViolations counts runtime-auditor detections, and
	// Quarantines the nodes and tasks it isolated in response (see
	// Config.AuditInvariants).
	InvariantViolations int
	Quarantines         int
	// Jobs records each completed job's outcome, in completion order.
	Jobs []JobRecord

	totalJobWait      units.Time
	jobWaitSamples    int
	totalTaskWait     units.Time
	taskWaitSamples   int
	totalJobQueueWait units.Time
}

// String renders a one-line summary.
func (r *Result) String() string {
	return fmt.Sprintf(
		"makespan=%v tasks=%d thr=%.3f tasks/ms jobs=%d met=%d wait=%v preempt=%d disorder=%d",
		r.Makespan, r.TasksCompleted, r.TaskThroughputPerMs,
		r.JobsCompleted, r.JobsMetDeadline, r.AvgJobWait, r.Preemptions, r.Disorders)
}
