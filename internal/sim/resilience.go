package sim

import (
	"math"

	"dsp/internal/cluster"
	"dsp/internal/dag"
	"dsp/internal/eventq"
	"dsp/internal/units"
)

// This file is the engine's reactive-recovery tier (the paper's Section
// VI future work): failed execution attempts are charged against a
// per-task retry budget and re-admitted after an exponential backoff, a
// task that exhausts its budget fails its job cleanly instead of looping
// forever, and every failure feeds a per-node health score that decays
// over time and can blacklist chronically flaky nodes.

// DefaultRetryBudget is the number of failed attempts a task may absorb
// before failing terminally, when Config.RetryBudget is zero.
const DefaultRetryBudget = 10

// DefaultHealthHalfLife is the decay half-life of the per-node failure
// penalty when Config.HealthHalfLife is zero.
const DefaultHealthHalfLife = 10 * units.Minute

// TaskFaults injects transient per-attempt task failures: every
// execution burst fails with probability Rate at a point drawn uniformly
// inside the burst. Draws are hashed from (Seed, job, task, attempt), so
// they are reproducible and independent of event interleaving.
type TaskFaults struct {
	// Rate is the per-attempt failure probability in [0, 1].
	Rate float64
	// Seed drives the deterministic per-attempt draws.
	Seed int64
}

// retryBudget resolves the configured budget: 0 means DefaultRetryBudget,
// negative means unlimited (-1 sentinel).
func (e *Engine) retryBudget() int {
	switch {
	case e.cfg.RetryBudget == 0:
		return DefaultRetryBudget
	case e.cfg.RetryBudget < 0:
		return -1
	default:
		return e.cfg.RetryBudget
	}
}

// backoffDelay returns the wait before re-admitting attempt n (1-based):
// RetryBackoff doubling per failed attempt, zero when backoff is off.
func (e *Engine) backoffDelay(attempt int) units.Time {
	base := e.cfg.RetryBackoff
	if base <= 0 {
		return 0
	}
	shift := attempt - 1
	if shift > 20 {
		shift = 20 // 2^20 ≈ 10^6× base; beyond this the job is dead anyway
	}
	return base << shift
}

// retryOrFail charges one failed attempt and either re-admits the task
// (immediately to Pending, or via Backoff when a delay is configured) or
// fails it terminally once the budget is gone. The caller has already
// detached the task from its slot and banked any retained progress.
func (e *Engine) retryOrFail(k cluster.NodeID, t *TaskState, now units.Time, reason RetryReason) {
	t.Attempts++
	t.Phase = Pending
	t.Node = -1
	t.Job.assigned--
	t.spanStart = now
	if budget := e.retryBudget(); budget >= 0 && t.Attempts > budget {
		t.Phase = Failed
		e.metrics.TerminalFailures++
		if o := e.cfg.Observer; o != nil {
			o.TaskFailedTerminally(now, t, k)
		}
		e.failJob(t.Job, now)
		return
	}
	e.metrics.Retries++
	if o := e.cfg.Observer; o != nil {
		o.TaskRetried(now, t, k, t.Attempts, reason)
	}
	delay := e.backoffDelay(t.Attempts)
	if delay <= 0 {
		return // already Pending; the next period re-places it
	}
	t.Phase = Backoff
	e.armRetry(t, e.q.Now()+delay)
}

// armRetry schedules the backoff expiry that re-admits t to Pending at
// absolute time at. Shared by retryOrFail and snapshot restore.
func (e *Engine) armRetry(t *TaskState, at units.Time) {
	t.retryEv = e.q.AtTag(at, taskTag(evRetry, t), eventq.Func(func(at units.Time) {
		t.hasRetryEv = false
		if t.Phase != Backoff {
			return
		}
		e.closeWaitSpan(t, at)
		t.Phase = Pending
		e.redispatch(at, t.Job)
	}))
	t.hasRetryEv = true
}

// redispatch offers one job's pending tasks to the scheduler outside the
// periodic cycle. A retry whose backoff expires mid-period would
// otherwise idle until the next offline tick — up to a full Period away,
// which for a late-stage failure can dominate the whole degradation.
// Backoff-then-retry means the task is actively resubmitted when the
// delay elapses; the RetryBackoff == 0 path keeps the passive
// wait-for-the-period behaviour.
func (e *Engine) redispatch(now units.Time, j *JobState) {
	if j.failed || j.shed || j.Arrival > now || j.assigned >= len(j.Tasks) || !j.Eligible() {
		return
	}
	assignments := e.cfg.Scheduler.Schedule(now, []*JobState{j}, e.view)
	for _, a := range assignments {
		e.applyAssignment(a, now)
	}
	for k := range e.nodes {
		e.tryFill(cluster.NodeID(k), now)
	}
}

// failJob terminates a job whose task failed terminally: every live task
// is withdrawn, in-flight work is written off, and jobs transitively
// waiting on this one fail too (they can never become eligible).
func (e *Engine) failJob(j *JobState, now units.Time) {
	if j.failed || j.shed || j.Done() {
		return
	}
	j.failed = true
	e.jobsRemaining--
	e.metrics.JobsFailed++
	for _, t := range j.Tasks {
		if t.backup != nil {
			e.cancelBackup(t.backup, now)
		}
		switch t.Phase {
		case Pending:
			t.Phase = Failed
		case Backoff:
			if t.hasRetryEv {
				e.q.Cancel(t.retryEv)
				t.hasRetryEv = false
			}
			t.Phase = Failed
		case Queued, Suspended:
			e.dequeue(t.Node, t)
			t.Phase = Failed
		case Running:
			node := t.Node
			ns := e.nodes[node]
			for i, r := range ns.running {
				if r == t {
					ns.running = append(ns.running[:i], ns.running[i+1:]...)
					break
				}
			}
			if t.hasDoneEv {
				e.q.Cancel(t.doneEv)
				t.hasDoneEv = false
			}
			if t.hasBlockEv {
				e.q.Cancel(t.blockEv)
				t.hasBlockEv = false
			}
			if t.blocked {
				e.metrics.BlockedSlotTime += now - t.effStart
				t.blocked = false
			} else if now > t.effStart {
				e.metrics.LostWork += now - t.effStart
			}
			t.Phase = Failed
			e.tryFill(node, now)
		case Done:
			e.metrics.TasksWasted++
		}
	}
	for _, other := range e.jobs {
		if other.failed || other.shed || other.Done() {
			continue
		}
		for _, p := range other.waitsFor {
			if p == j {
				e.failJob(other, now)
				break
			}
		}
	}
}

// addPenalty bumps a node's decayed failure penalty and blacklists it on
// the rising edge past the configured threshold.
func (e *Engine) addPenalty(k cluster.NodeID, amount float64, now units.Time) {
	ns := e.nodes[k]
	ns.penalty = ns.decayedPenalty(now, e.healthHalfLife()) + amount
	ns.penaltyAt = now
	if th := e.cfg.BlacklistThreshold; th > 0 && !ns.blacklisted && ns.penalty >= th {
		ns.blacklisted = true
		e.metrics.Blacklistings++
		if o := e.cfg.Observer; o != nil {
			o.NodeBlacklisted(now, k)
		}
	}
}

func (e *Engine) healthHalfLife() units.Time {
	if e.cfg.HealthHalfLife > 0 {
		return e.cfg.HealthHalfLife
	}
	return DefaultHealthHalfLife
}

// decayedPenalty returns the node's failure penalty as of now, halving
// every halfLife since the last bump.
func (ns *nodeState) decayedPenalty(now, halfLife units.Time) float64 {
	if ns.penalty == 0 {
		return 0
	}
	dt := now - ns.penaltyAt
	if dt <= 0 || halfLife <= 0 {
		return ns.penalty
	}
	return ns.penalty * math.Exp2(-dt.Seconds()/halfLife.Seconds())
}

// isBlacklisted reports whether the node is currently blacklisted,
// lazily clearing the flag once the penalty has decayed back under the
// threshold (the node may be re-blacklisted by later failures).
func (e *Engine) isBlacklisted(k cluster.NodeID, now units.Time) bool {
	th := e.cfg.BlacklistThreshold
	if th <= 0 {
		return false
	}
	ns := e.nodes[k]
	if !ns.blacklisted {
		return false
	}
	if ns.decayedPenalty(now, e.healthHalfLife()) < th {
		ns.blacklisted = false
		return false
	}
	return true
}

// taskFaults returns the active transient-fault model, or nil.
func (e *Engine) taskFaults() *TaskFaults {
	if e.cfg.Faults == nil {
		return nil
	}
	return e.cfg.Faults.Tasks
}

// armAttemptFault rolls the fate of a fresh execution burst: with
// probability Rate the burst is doomed at a point drawn uniformly inside
// it. Called from beginWork with the burst's span at current speed.
func (e *Engine) armAttemptFault(t *TaskState, workStart units.Time, workTime units.Time) {
	t.attemptFailAt = 0
	tf := e.taskFaults()
	if tf == nil || tf.Rate <= 0 {
		return
	}
	t.execIndex++
	p, frac := taskFaultDraw(tf.Seed, t.Task.Job, t.Task.ID, t.execIndex)
	if p >= tf.Rate {
		return
	}
	if workTime <= 0 || workTime == units.Forever {
		return
	}
	at := workStart + units.Time(frac*float64(workTime))
	if at <= workStart {
		at = workStart + 1
	}
	t.attemptFailAt = at
}

// scheduleAttempt arms the burst's next event: the planned transient
// failure if one lands before the completion, else the completion
// itself. Used everywhere a running burst is (re)scheduled so that a
// straggler re-pace cannot silently drop a planned fault.
func (e *Engine) scheduleAttempt(k cluster.NodeID, t *TaskState, finishAt, now units.Time) {
	if t.attemptFailAt > 0 && t.attemptFailAt < finishAt {
		at := units.Max(t.attemptFailAt, now)
		e.armTransientFail(k, t, at)
	} else {
		e.armComplete(k, t, finishAt)
	}
}

// armComplete schedules t's burst completion on node k at absolute time
// at. Shared by scheduleAttempt and snapshot restore.
func (e *Engine) armComplete(k cluster.NodeID, t *TaskState, at units.Time) {
	t.doneEv = e.q.AtTag(at, taskTag(evComplete, t), eventq.Func(func(at units.Time) {
		e.complete(k, t, at)
	}))
	t.hasDoneEv = true
}

// armTransientFail schedules t's burst to die transiently on node k at
// absolute time at. Shared by scheduleAttempt and snapshot restore.
func (e *Engine) armTransientFail(k cluster.NodeID, t *TaskState, at units.Time) {
	t.doneEv = e.q.AtTag(at, taskTag(evTransientFail, t), eventq.Func(func(at units.Time) {
		e.transientFail(k, t, at)
	}))
	t.hasDoneEv = true
}

// transientFail kills the current burst: progress rolls back to the last
// checkpoint (the fault loses uncheckpointed state, same as a crash),
// the node's health score takes a hit, and the attempt is charged
// against the retry budget.
func (e *Engine) transientFail(k cluster.NodeID, t *TaskState, now units.Time) {
	t.hasDoneEv = false
	if t.Phase != Running || t.blocked {
		return
	}
	ns := e.nodes[k]
	for i, r := range ns.running {
		if r == t {
			ns.running = append(ns.running[:i], ns.running[i+1:]...)
			break
		}
	}
	speed := e.speedOf(k)
	var lost units.Time
	if now > t.effStart {
		worked := now - t.effStart
		retained := e.cfg.Checkpoint.RetainedProgress(worked)
		t.doneMI += retained.Seconds() * speed
		if t.doneMI > t.Task.Size {
			t.doneMI = t.Task.Size
		}
		if worked > retained {
			lost = worked - retained
			e.metrics.LostWork += lost
		}
	}
	e.closeBurstSpans(t, k, now, CauseTaskFault, lost)
	t.resumePenalty = e.cfg.Checkpoint.ResumePenalty()
	t.attemptFailAt = 0
	e.metrics.TaskFaults++
	e.addPenalty(k, 1, now)
	e.retryOrFail(k, t, now, RetryTaskFault)
	e.tryFill(k, now)
}

// taskFaultDraw hashes (seed, job, task, attempt) into two uniform
// [0, 1) draws — the fail roll and the in-burst fault position — via
// splitmix64. Hashing (rather than a shared RNG stream) keeps the draws
// independent of event interleaving: the same attempt fails at the same
// relative point no matter what else the cluster is doing.
func taskFaultDraw(seed int64, job dag.JobID, task dag.TaskID, attempt int) (p, frac float64) {
	x := uint64(seed)
	x = splitmix64(x ^ 0x9e3779b97f4a7c15)
	x = splitmix64(x ^ uint64(job)*0xbf58476d1ce4e5b9)
	x = splitmix64(x ^ uint64(task)*0x94d049bb133111eb)
	x = splitmix64(x ^ uint64(attempt))
	a := splitmix64(x)
	b := splitmix64(a)
	return float64(a>>11) / (1 << 53), float64(b>>11) / (1 << 53)
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
