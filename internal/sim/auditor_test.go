package sim

import (
	"strings"
	"testing"

	"dsp/internal/cluster"
	"dsp/internal/dag"
	"dsp/internal/trace"
	"dsp/internal/units"
)

// corruptingPreemptor flips one running task to Suspended without
// telling the engine — exactly the kind of bookkeeping rot the runtime
// auditor exists to catch.
type corruptingPreemptor struct {
	fired bool
}

func (c *corruptingPreemptor) Name() string { return "corrupting" }
func (c *corruptingPreemptor) Epoch(now units.Time, v *View) []Action {
	if c.fired {
		return nil
	}
	for k := 0; k < v.Cluster().Len(); k++ {
		if running := v.Running(cluster.NodeID(k)); len(running) > 0 {
			running[0].Phase = Suspended
			c.fired = true
			break
		}
	}
	return nil
}

// violationRecorder captures InvariantViolated events.
type violationRecorder struct {
	NopObserver
	violations []InvariantViolation
}

func (r *violationRecorder) InvariantViolated(_ units.Time, v InvariantViolation) {
	r.violations = append(r.violations, v)
}

func TestAuditorQuarantinesCorruptedTask(t *testing.T) {
	// The corrupted task sits in a node's running set with phase
	// Suspended. The auditor must detect it at the same epoch, quarantine
	// it (failing its job), and let the rest of the run proceed — no
	// panic, no hang, no silent garbage.
	a := sizedJob(0, 5000, 5000)
	b := sizedJob(1, 5000, 5000)
	rec := &violationRecorder{}
	cp := cluster.DefaultCheckpoint()
	cp.Interval = 500 * units.Millisecond // below the 1 s epoch
	res, err := Run(Config{
		Cluster:         testCluster(2, 1),
		Scheduler:       rrScheduler{},
		Preemptor:       &corruptingPreemptor{},
		Checkpoint:      cp,
		Epoch:           units.Second,
		AuditInvariants: true,
		Observer:        rec,
	}, mkWorkload([]units.Time{0, 0}, a, b))
	if err != nil {
		t.Fatal(err)
	}
	if res.InvariantViolations < 1 {
		t.Errorf("InvariantViolations = %d, want >= 1", res.InvariantViolations)
	}
	if res.Quarantines < 1 {
		t.Errorf("Quarantines = %d, want >= 1", res.Quarantines)
	}
	if res.JobsFailed < 1 {
		t.Errorf("JobsFailed = %d, want >= 1 (quarantine fails the owner)", res.JobsFailed)
	}
	if res.JobsCompleted+res.JobsFailed != 2 {
		t.Errorf("completed %d + failed %d != 2", res.JobsCompleted, res.JobsFailed)
	}
	found := false
	for _, v := range rec.violations {
		if v.Check == "phase-running" {
			found = true
		}
	}
	if !found {
		t.Errorf("no phase-running violation reported; got %+v", rec.violations)
	}
}

func TestAuditorCleanRunReportsNothing(t *testing.T) {
	j := sizedJob(0, 2000, 2000, 2000)
	j.MustDep(0, 1)
	res, err := Run(Config{
		Cluster:         testCluster(2, 2),
		Scheduler:       rrScheduler{},
		AuditInvariants: true,
	}, mkWorkload([]units.Time{0}, j))
	if err != nil {
		t.Fatal(err)
	}
	if res.InvariantViolations != 0 || res.Quarantines != 0 {
		t.Errorf("clean run: violations=%d quarantines=%d, want 0/0",
			res.InvariantViolations, res.Quarantines)
	}
	if res.TasksCompleted != 3 {
		t.Errorf("completed %d tasks, want 3", res.TasksCompleted)
	}
}

func TestRunRejectsBrokenJobGraphs(t *testing.T) {
	base := Config{Cluster: testCluster(1, 1), Scheduler: rrScheduler{}}
	cases := []struct {
		name string
		w    *trace.Workload
		want string
	}{
		{
			name: "cross-job cycle",
			w: &trace.Workload{ArrivalRate: 3, Jobs: []*trace.Job{
				{Class: trace.Small, DAG: sizedJob(0, 100), WaitsFor: []dag.JobID{1}},
				{Class: trace.Small, DAG: sizedJob(1, 100), WaitsFor: []dag.JobID{0}},
			}},
			want: "cycle involving job",
		},
		{
			name: "unknown dependency",
			w: &trace.Workload{ArrivalRate: 3, Jobs: []*trace.Job{
				{Class: trace.Small, DAG: sizedJob(0, 100), WaitsFor: []dag.JobID{99}},
			}},
			want: "waits for unknown job 99",
		},
		{
			name: "self dependency",
			w: &trace.Workload{ArrivalRate: 3, Jobs: []*trace.Job{
				{Class: trace.Small, DAG: sizedJob(0, 100), WaitsFor: []dag.JobID{0}},
			}},
			want: "waits for itself",
		},
		{
			name: "duplicate task ID",
			w: func() *trace.Workload {
				j := sizedJob(0, 100, 100)
				j.Tasks[1].ID = 0 // two tasks claiming ID 0
				return mkWorkload([]units.Time{0}, j)
			}(),
			want: "task slot 1 holds task ID 0",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Run(base, tc.w)
			if err == nil {
				t.Fatal("broken job graph accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not name the offender (want substring %q)", err, tc.want)
			}
		})
	}
}
