// Package sim is the discrete-event data-parallel-cluster simulator that
// hosts the DSP system and its baselines. It reproduces the runtime
// environment of the paper's evaluation: jobs arrive over time, an
// offline scheduler runs periodically (every "unit period", 5 minutes in
// the paper) and assigns tasks to per-node queues with planned start
// times, nodes execute up to slot-many runnable tasks concurrently, and
// an online preemption policy runs every epoch, suspending running tasks
// in favour of waiting ones. Preemption charges the paper's cost model:
// progress rolls back to the last checkpoint (or to zero without
// checkpointing) and resumption pays the recovery time t^r plus σ.
//
// The engine enforces dependencies when it fills free slots itself;
// preemption policies, however, choose explicit (victim, starter) pairs,
// and a policy that ignores dependencies can command a dependent task to
// start before its precedents finished — the engine counts this as a
// "disorder" (Figure 6(a) of the paper), wastes the context switch, and
// returns the starter to the queue.
package sim

import (
	"dsp/internal/cluster"
	"dsp/internal/dag"
	"dsp/internal/eventq"
	"dsp/internal/units"
)

// Phase is a task's lifecycle state.
type Phase int

// Task phases.
const (
	// Pending: arrived but not yet assigned to a node by the scheduler.
	Pending Phase = iota
	// Queued: in a node's waiting queue.
	Queued
	// Running: occupying a slot.
	Running
	// Suspended: preempted; back in the node's waiting queue.
	Suspended
	// Done: finished.
	Done
	// Backoff: a failed attempt is waiting out its retry delay before
	// re-admission to Pending.
	Backoff
	// Failed: the task exhausted its retry budget (terminal).
	Failed
)

func (p Phase) String() string {
	switch p {
	case Pending:
		return "pending"
	case Queued:
		return "queued"
	case Running:
		return "running"
	case Suspended:
		return "suspended"
	case Backoff:
		return "backoff"
	case Failed:
		return "failed"
	default:
		return "done"
	}
}

// TaskState is the simulator's view of one task instance.
type TaskState struct {
	Task *dag.Task
	Job  *JobState

	Phase Phase
	// Node is the node the task is (or was last) assigned to; -1 before
	// first assignment.
	Node cluster.NodeID

	// PlannedStart is the start time the offline schedule chose; node
	// queues are kept in ascending PlannedStart order.
	PlannedStart units.Time
	// QueuedAt is when the task entered its node queue.
	QueuedAt units.Time
	// FirstStart is when the task first occupied a slot (-1 if never).
	FirstStart units.Time
	// DoneAt is when the task completed (-1 if not yet).
	DoneAt units.Time
	// Deadline is the task's absolute deadline derived from the job
	// deadline via the per-level rule (Section IV-B).
	Deadline units.Time
	// Preemptions counts how many times this task was suspended.
	Preemptions int
	// Attempts counts failed execution attempts (transient task faults
	// and crash evictions of the running task) charged against the retry
	// budget. Preemptions and queue evictions are not attempts.
	Attempts int

	// totalWait accumulates all time spent in waiting queues, including
	// re-waits after each suspension.
	totalWait units.Time
	// doneMI is completed work in millions of instructions.
	doneMI float64
	// effStart is when useful work (re)started, after any resume penalty.
	effStart units.Time
	// resumePenalty is the penalty charged at the NEXT start.
	resumePenalty units.Time
	doneEv        eventq.Handle
	hasDoneEv     bool
	// blocked marks a blind-started task occupying a slot while its
	// precedents are unfinished (dependency-blind schedulers only).
	blocked    bool
	blockEv    eventq.Handle
	hasBlockEv bool
	everRan    bool
	// execIndex numbers execution bursts, salting the per-attempt
	// transient-fault draw so a retried task re-rolls its fate.
	execIndex int
	// attemptFailAt is the absolute time the current burst is fated to
	// fail transiently (0 = the burst succeeds).
	attemptFailAt units.Time
	// retryEv re-admits the task to Pending when its backoff expires.
	retryEv    eventq.Handle
	hasRetryEv bool
	// spanStart is when the task's currently open timeline span began
	// (see spans.go); the engine closes it at every state transition.
	spanStart units.Time
	// backup is the live speculative copy, if one is racing this task.
	backup *backupRun
}

// Blocked reports whether the task is blind-started: occupying a slot but
// unable to make progress because a precedent has not finished.
func (t *TaskState) Blocked() bool { return t.blocked }

// TotalWait returns all the time the task has spent in waiting queues so
// far, including re-waits after preemptions.
func (t *TaskState) TotalWait() units.Time { return t.totalWait }

// Key returns the task's global identity.
func (t *TaskState) Key() dag.Key { return t.Task.Key() }

// RemainingMI returns the work left in millions of instructions.
func (t *TaskState) RemainingMI() float64 {
	rem := t.Task.Size - t.doneMI
	if rem < 0 {
		return 0
	}
	return rem
}

// RemainingTime returns the time needed to finish the task at the given
// node speed (MIPS), excluding any resume penalty. For a running task
// this reflects its last checkpointed progress; use LiveRemainingTime to
// include progress made in the current burst.
func (t *TaskState) RemainingTime(speedMIPS float64) units.Time {
	if speedMIPS <= 0 {
		return units.Forever
	}
	return units.FromSeconds(t.RemainingMI() / speedMIPS)
}

// LiveRemainingTime returns the remaining execution time as of now,
// including the progress a currently running task has made since it last
// (re)started. Preemption policies must use this (not RemainingTime) when
// comparing waiting tasks against running victims: with stale remaining
// times a nearly finished victim looks untouched, and a no-checkpoint
// policy such as SRPT would preempt it forever (a live-lock).
func (t *TaskState) LiveRemainingTime(now units.Time, speedMIPS float64) units.Time {
	rem := t.RemainingTime(speedMIPS)
	if rem == units.Forever {
		return rem
	}
	if t.Phase == Running && !t.blocked && now > t.effStart {
		rem -= now - t.effStart
		if rem < 0 {
			rem = 0
		}
	}
	return rem
}

// WaitingTime returns how long the task has been waiting in a queue
// since it was last enqueued (zero for non-waiting tasks).
func (t *TaskState) WaitingTime(now units.Time) units.Time {
	if t.Phase != Queued && t.Phase != Suspended {
		return 0
	}
	if now < t.QueuedAt {
		return 0
	}
	return now - t.QueuedAt
}

// AllowableWait returns t^a = deadline − now − remaining: the longest the
// task can keep waiting and still meet its deadline at the given speed.
// Negative values mean the deadline is already unreachable. Remaining
// time is live (includes the current running burst's progress).
func (t *TaskState) AllowableWait(now units.Time, speedMIPS float64) units.Time {
	return t.Deadline - now - t.LiveRemainingTime(now, speedMIPS)
}

// DepsMet reports whether every precedent task has completed.
func (t *TaskState) DepsMet() bool {
	for _, p := range t.Job.Dag.Parents(t.Task.ID) {
		if t.Job.Tasks[p].Phase != Done {
			return false
		}
	}
	return true
}

// ReadyAt returns the earliest time the task could have started: the
// later of its enqueue time and its last-finishing parent's completion.
// It is only meaningful once DepsMet holds.
func (t *TaskState) ReadyAt() units.Time {
	ready := t.QueuedAt
	for _, p := range t.Job.Dag.Parents(t.Task.ID) {
		pd := t.Job.Tasks[p].DoneAt
		if pd > ready {
			ready = pd
		}
	}
	return ready
}

// JobState is the simulator's view of one job instance.
type JobState struct {
	Dag     *dag.Job
	Arrival units.Time
	// Deadline is the absolute job deadline.
	Deadline units.Time
	Tasks    []*TaskState
	// DoneAt is when the last task finished (-1 while incomplete).
	DoneAt units.Time

	remaining int
	// assigned counts tasks handed to node queues.
	assigned int
	// ideal is the critical-path lower bound at mean cluster speed.
	ideal units.Time
	// waitsFor are jobs that must complete before this one may be
	// scheduled (cross-job dependencies).
	waitsFor []*JobState
	// failed marks a job terminated by a terminal task failure (or the
	// terminal failure of a job it waits for).
	failed bool
	// shed marks a job rejected by admission control at arrival (or the
	// shedding of a job it waits for). Shed jobs never run; they count
	// as shed, not failed or deadline-missed.
	shed bool
	// cancelled marks a job withdrawn by an explicit cancel request
	// (streaming ingestion only). A cancelled job is failed for
	// accounting purposes — its live tasks are withdrawn exactly like a
	// terminal failure's — with this flag recording the cause.
	cancelled bool
	// retired marks a settled job whose Dag and task state were released
	// to bound streaming-mode memory; only scalar fields (and the cached
	// id/fpLen/fpSize identity below) remain valid.
	retired bool
	// id, fpLen and fpSize cache Dag.ID, Dag.Len() and Dag.TotalSize()
	// at build time so retired jobs keep their identity and the world
	// fingerprint never needs the released DAG.
	id     dag.JobID
	fpLen  int
	fpSize float64
	// idx is the job's position in the workload's job list — the stable
	// integer identity event tags and snapshots use.
	idx int
}

// ID returns the job's DAG identity. Unlike j.Dag.ID it stays valid
// after a settled streaming job is retired and its DAG released.
func (j *JobState) ID() dag.JobID { return j.id }

// TaskCount returns the job's total task count as of build time (before
// any dynamic growth), valid even after retirement.
func (j *JobState) TaskCount() int { return j.fpLen }

// Failed reports whether the job was terminated by a terminal task
// failure (directly, or transitively via a failed prerequisite job).
func (j *JobState) Failed() bool { return j.failed }

// Cancelled reports whether the job was withdrawn by an explicit cancel
// request (streaming ingestion). Cancelled implies Failed.
func (j *JobState) Cancelled() bool { return j.cancelled }

// Retired reports whether the settled job's DAG and task state were
// released to bound streaming memory (see Config.Streaming).
func (j *JobState) Retired() bool { return j.retired }

// Shed reports whether admission control rejected the job (directly, or
// transitively via a shed prerequisite job).
func (j *JobState) Shed() bool { return j.shed }

// EligibleAt returns when the job became eligible to schedule: its
// arrival, or the completion of its last cross-job prerequisite,
// whichever is later. While a prerequisite is unfinished it returns
// Forever.
func (j *JobState) EligibleAt() units.Time {
	at := j.Arrival
	for _, p := range j.waitsFor {
		if !p.Done() {
			return units.Forever
		}
		if p.DoneAt > at {
			at = p.DoneAt
		}
	}
	return at
}

// Eligible reports whether every cross-job prerequisite has completed.
func (j *JobState) Eligible() bool {
	for _, p := range j.waitsFor {
		if !p.Done() {
			return false
		}
	}
	return true
}

// Done reports whether every task of the job has completed.
func (j *JobState) Done() bool { return j.remaining == 0 }

// Remaining returns the number of tasks that still have to complete,
// including tasks reserved for pending dynamic growth.
func (j *JobState) Remaining() int { return j.remaining }

// MetDeadline reports whether the job finished by its deadline.
func (j *JobState) MetDeadline() bool {
	return j.Done() && (j.Deadline <= 0 || j.DoneAt <= j.Deadline)
}

// PendingTasks returns the job's tasks not yet assigned to a node.
func (j *JobState) PendingTasks() []*TaskState {
	var out []*TaskState
	for _, t := range j.Tasks {
		if t.Phase == Pending {
			out = append(out, t)
		}
	}
	return out
}
