package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dsp/internal/chaos"
	"dsp/internal/cluster"
	"dsp/internal/preempt"
	"dsp/internal/sched"
	"dsp/internal/sim"
	"dsp/internal/trace"
	"dsp/internal/units"
)

// scanValidJSON asserts every line of data passes json.Valid and returns
// the per-event counts.
func scanValidJSON(t *testing.T, name string, data []byte) map[string]int {
	t.Helper()
	events := map[string]int{}
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	n := 0
	for sc.Scan() {
		n++
		if !json.Valid(sc.Bytes()) {
			t.Errorf("%s line %d is not valid JSON: %s", name, n, sc.Text())
			continue
		}
		var line struct {
			Ev string `json:"ev"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Errorf("%s line %d: %v", name, n, err)
			continue
		}
		events[line.Ev]++
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if n == 0 {
		t.Fatalf("%s: no lines", name)
	}
	return events
}

// TestGoldensAreValidJSON asserts every line of every checked-in audit
// golden passes json.Valid — the hand-rolled Fprintf encoding must never
// drift from real JSON.
func TestGoldensAreValidJSON(t *testing.T) {
	matches, err := filepath.Glob(filepath.Join("testdata", "*.jsonl"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no goldens found: %v", err)
	}
	for _, path := range matches {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		scanValidJSON(t, filepath.Base(path), data)
	}
}

// TestAuditValidJSONUnderChaosOverload runs the full chaos + overload
// stack — the configuration that exercises every event class the writer
// knows, including degradations and sheddings with free-form reason
// strings — and asserts the live stream is valid JSON line by line, with
// exactly one job-blame line per completed job.
func TestAuditValidJSONUnderChaosOverload(t *testing.T) {
	spec := trace.DefaultSpec(24, 20180901)
	spec.TaskScale = 0.05
	w, err := trace.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	cl := cluster.RealCluster(10)
	cs := chaos.DefaultSpec(cl.Len(), 20180901)
	cs.FaultyFraction = 0.3
	plan, err := cs.Plan()
	if err != nil {
		t.Fatal(err)
	}
	s := sched.NewDSP()
	s.ILPNodeBudget = 200
	var buf bytes.Buffer
	aw := NewAuditWriter(&buf)
	res, err := sim.Run(sim.Config{
		Cluster:      cl,
		Scheduler:    s,
		Preemptor:    preempt.NewDSP(),
		Checkpoint:   cluster.DefaultCheckpoint(),
		Epoch:        10 * units.Second,
		Faults:       plan,
		Speculation:  &sim.Speculation{},
		RetryBackoff: 2 * units.Second,
		Admission: &sim.Admission{
			MaxPendingTasks: 500,
			ShedInfeasible:  true,
			Margin:          1.5,
		},
		AuditInvariants: true,
		Observer:        aw,
	}, w)
	if err != nil {
		t.Fatal(err)
	}
	if err := aw.Flush(); err != nil {
		t.Fatal(err)
	}
	events := scanValidJSON(t, "chaos-overload audit", buf.Bytes())
	if events["span"] == 0 {
		t.Error("no span lines in chaos audit")
	}
	if events["job-blame"] != res.JobsCompleted {
		t.Errorf("job-blame lines = %d, want one per completed job (%d)",
			events["job-blame"], res.JobsCompleted)
	}
}

// TestAuditEscaping feeds the free-form string fields hostile content —
// quotes, backslashes, and a control character %q would render as the
// JSON-invalid \a — and asserts the lines stay valid and round-trip.
func TestAuditEscaping(t *testing.T) {
	nasty := "has \"quotes\", a back\\slash and a bell: \a"
	var buf bytes.Buffer
	aw := NewAuditWriter(&buf)
	aw.BeginRun(nasty)
	aw.SolverDegraded(units.Second, sim.SolverDegradation{
		Reason: nasty, PendingTasks: 7,
	})
	aw.InvariantViolated(2*units.Second, sim.InvariantViolation{
		Check: "slot-capacity", Node: -1, Detail: nasty,
	})
	if err := aw.Flush(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	n := 0
	for sc.Scan() {
		n++
		if !json.Valid(sc.Bytes()) {
			t.Fatalf("line %d not valid JSON: %s", n, sc.Text())
		}
		var line map[string]any
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatal(err)
		}
		for _, field := range []string{"label", "reason", "detail"} {
			if v, ok := line[field].(string); ok && v != nasty {
				t.Errorf("line %d field %q round-tripped to %q, want %q", n, field, v, nasty)
			}
		}
	}
	if n != 3 {
		t.Fatalf("wrote %d lines, want 3", n)
	}
	if strings.Contains(buf.String(), `\a`) {
		t.Error("output contains Go-style \\a escape, which json.Valid rejects")
	}
}
