package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"dsp/internal/attrib"
	"dsp/internal/cluster"
	"dsp/internal/sim"
	"dsp/internal/units"
)

// EpochSnapshot is the cluster-wide gauge set sampled at each epoch
// boundary, the live analogue of the audit log's "epoch" lines.
type EpochSnapshot struct {
	SimTimeMicros int64 `json:"sim_time_us"`
	Epoch         int   `json:"epoch"`
	QueuedTasks   int   `json:"queued_tasks"`
	RunningTasks  int   `json:"running_tasks"`
	BusySlots     int   `json:"busy_slots"`
	TotalSlots    int   `json:"total_slots"`
}

// Server is the opt-in live telemetry endpoint: a plain net/http server
// exposing the observability state of a running simulation.
//
//   - /metrics: Prometheus text exposition — every Counters tally as a
//     dsp_<name> counter, the latency-attribution aggregate as
//     dsp_attrib_seconds{cause="..."} gauges, and the epoch gauges.
//   - /healthz: liveness probe, returns "ok".
//   - /snapshot: the same state as one JSON document.
//
// It observes the simulation (EpochEnded copies the gauge set under a
// mutex) while HTTP handlers read concurrently; Counters are atomic and
// the attribution recorder locks internally, so attaching the server
// never blocks the event loop on a scrape.
type Server struct {
	sim.NopObserver

	counters *Counters
	attrib   *attrib.Recorder

	mu   sync.Mutex
	snap EpochSnapshot

	ln  net.Listener
	srv *http.Server
}

// StartServer binds addr (e.g. "127.0.0.1:9090", or ":0" for an
// ephemeral port) and serves telemetry until Close. counters and rec may
// be nil; the corresponding sections are omitted from the exposition.
func StartServer(addr string, counters *Counters, rec *attrib.Recorder) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := &Server{counters: counters, attrib: rec, ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/snapshot", s.handleSnapshot)
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go s.srv.Serve(ln) //nolint:errcheck // Serve always returns on Close
	return s, nil
}

// Addr returns the bound address ("127.0.0.1:54321"), useful when the
// caller asked for port 0.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops serving. In-flight scrapes are cut off; the simulation is
// unaffected.
func (s *Server) Close() error { return s.srv.Close() }

// EpochEnded implements sim.Observer: copy the epoch gauges out of the
// engine-owned view so scrapes never touch live engine state.
func (s *Server) EpochEnded(now units.Time, epoch int, v *sim.View) {
	var snap EpochSnapshot
	snap.SimTimeMicros = int64(now)
	snap.Epoch = epoch
	c := v.Cluster()
	for k := 0; k < c.Len(); k++ {
		node := cluster.NodeID(k)
		snap.QueuedTasks += len(v.Queue(node))
		r := len(v.Running(node))
		snap.RunningTasks += r
		snap.BusySlots += r
		snap.TotalSlots += c.Nodes[k].Slots
	}
	s.mu.Lock()
	s.snap = snap
	s.mu.Unlock()
}

// metricName converts a Counters snapshot name ("task-starts") to a
// Prometheus metric name ("dsp_task_starts").
func metricName(name string) string {
	return "dsp_" + strings.ReplaceAll(name, "-", "_")
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var b strings.Builder
	if s.counters != nil {
		for _, ct := range s.counters.Snapshot() {
			n := metricName(ct.Name)
			fmt.Fprintf(&b, "# HELP %s Simulator event tally (%s).\n", n, ct.Name)
			fmt.Fprintf(&b, "# TYPE %s counter\n", n)
			fmt.Fprintf(&b, "%s %d\n", n, ct.Value)
		}
	}
	if s.attrib != nil {
		blame, jobs := s.attrib.Aggregate()
		fmt.Fprintf(&b, "# HELP dsp_attrib_jobs Jobs with a completed latency attribution.\n")
		fmt.Fprintf(&b, "# TYPE dsp_attrib_jobs counter\n")
		fmt.Fprintf(&b, "dsp_attrib_jobs %d\n", jobs)
		fmt.Fprintf(&b, "# HELP dsp_attrib_seconds Aggregate completion-time blame by cause, over attributed jobs.\n")
		fmt.Fprintf(&b, "# TYPE dsp_attrib_seconds gauge\n")
		for _, c := range attrib.Causes() {
			fmt.Fprintf(&b, "dsp_attrib_seconds{cause=%q} %g\n", c.String(), blame[c].Seconds())
		}
	}
	s.mu.Lock()
	snap := s.snap
	s.mu.Unlock()
	for _, g := range []struct {
		name, help string
		value      float64
	}{
		{"dsp_sim_time_seconds", "Simulated time at the last epoch boundary.", units.Time(snap.SimTimeMicros).Seconds()},
		{"dsp_epoch", "Last completed scheduling epoch.", float64(snap.Epoch)},
		{"dsp_queued_tasks", "Tasks waiting in node queues.", float64(snap.QueuedTasks)},
		{"dsp_running_tasks", "Tasks occupying slots.", float64(snap.RunningTasks)},
		{"dsp_busy_slots", "Occupied slots cluster-wide.", float64(snap.BusySlots)},
		{"dsp_total_slots", "Total slots cluster-wide.", float64(snap.TotalSlots)},
	} {
		fmt.Fprintf(&b, "# HELP %s %s\n", g.name, g.help)
		fmt.Fprintf(&b, "# TYPE %s gauge\n", g.name)
		fmt.Fprintf(&b, "%s %g\n", g.name, g.value)
	}
	fmt.Fprint(w, b.String())
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// snapshotDoc is the /snapshot JSON layout.
type snapshotDoc struct {
	Epoch    EpochSnapshot    `json:"epoch"`
	Counters map[string]int64 `json:"counters,omitempty"`
	Attrib   *attribDoc       `json:"attrib,omitempty"`
}

type attribDoc struct {
	Jobs  int          `json:"jobs"`
	Blame attrib.Blame `json:"blame"`
}

func (s *Server) handleSnapshot(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	doc := snapshotDoc{Epoch: s.snap}
	s.mu.Unlock()
	if s.counters != nil {
		doc.Counters = make(map[string]int64)
		for _, ct := range s.counters.Snapshot() {
			doc.Counters[ct.Name] = ct.Value
		}
	}
	if s.attrib != nil {
		blame, jobs := s.attrib.Aggregate()
		doc.Attrib = &attribDoc{Jobs: jobs, Blame: blame}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(doc) //nolint:errcheck // best-effort scrape response
}
