package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"time"

	"dsp/internal/attrib"
	"dsp/internal/cluster"
	"dsp/internal/prof"
	"dsp/internal/sim"
	"dsp/internal/units"
)

// TelemetrySchema versions the live-telemetry surface (/metrics metric
// set and /snapshot document layout). v2 added the scheduler-phase
// profile (dsp_phase_* metrics, the snapshot "phases" section) and this
// version marker itself.
const TelemetrySchema = "dsp-telemetry/v2"

// EpochSnapshot is the cluster-wide gauge set sampled at each epoch
// boundary, the live analogue of the audit log's "epoch" lines.
type EpochSnapshot struct {
	SimTimeMicros int64 `json:"sim_time_us"`
	Epoch         int   `json:"epoch"`
	QueuedTasks   int   `json:"queued_tasks"`
	RunningTasks  int   `json:"running_tasks"`
	BusySlots     int   `json:"busy_slots"`
	TotalSlots    int   `json:"total_slots"`
}

// Server is the opt-in live telemetry endpoint: a plain net/http server
// exposing the observability state of a running simulation.
//
//   - /metrics: Prometheus text exposition — every Counters tally as a
//     dsp_<name> counter, the latency-attribution aggregate as
//     dsp_attrib_seconds{cause="..."} gauges, the epoch gauges, and the
//     scheduler-phase profile (dsp_phase_count, dsp_phase_seconds_total,
//     dsp_phase_seconds{phase,quantile}) when a prof.Timer is attached.
//   - /healthz: liveness probe, returns "ok".
//   - /snapshot: the same state as one JSON document.
//
// All responses carry Cache-Control: no-store and a schema version
// marker (TelemetrySchema) so scrapers always see live state and can
// version-gate their parsing.
//
// It observes the simulation (EpochEnded copies the gauge set under a
// mutex) while HTTP handlers read concurrently; Counters are atomic and
// the attribution recorder locks internally, so attaching the server
// never blocks the event loop on a scrape.
type Server struct {
	sim.NopObserver

	counters *Counters
	attrib   *attrib.Recorder
	prof     *prof.Timer

	mu   sync.Mutex
	snap EpochSnapshot

	ln  net.Listener
	srv *http.Server
}

// NewTelemetry builds the telemetry surface without binding a listener,
// for embedding in a larger mux (the serving daemon mounts job routes
// and telemetry on one port). counters, rec and tm may be nil; the
// corresponding sections are omitted from the exposition. tm is read
// via atomic snapshots, so a scrape can overlap live recording (and
// concurrent Timer.Merge calls) without torn stats.
func NewTelemetry(counters *Counters, rec *attrib.Recorder, tm *prof.Timer) *Server {
	return &Server{counters: counters, attrib: rec, prof: tm}
}

// Register mounts the telemetry endpoints (/metrics, /healthz,
// /snapshot) on mux.
func (s *Server) Register(mux *http.ServeMux) {
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/snapshot", s.handleSnapshot)
}

// StartServer binds addr (e.g. "127.0.0.1:9090", or ":0" for an
// ephemeral port) and serves telemetry until Close — NewTelemetry plus
// a dedicated listener, for callers that want telemetry on its own
// port.
func StartServer(addr string, counters *Counters, rec *attrib.Recorder, tm *prof.Timer) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := NewTelemetry(counters, rec, tm)
	s.ln = ln
	mux := http.NewServeMux()
	s.Register(mux)
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go s.srv.Serve(ln) //nolint:errcheck // Serve always returns on Close
	return s, nil
}

// Addr returns the bound address ("127.0.0.1:54321"), useful when the
// caller asked for port 0. Only valid for servers built by StartServer.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops serving. In-flight scrapes are cut off; the simulation is
// unaffected. No-op for embedded (NewTelemetry) servers — the embedding
// daemon owns the listener.
func (s *Server) Close() error {
	if s.srv == nil {
		return nil
	}
	return s.srv.Close()
}

// EpochEnded implements sim.Observer: copy the epoch gauges out of the
// engine-owned view so scrapes never touch live engine state.
func (s *Server) EpochEnded(now units.Time, epoch int, v *sim.View) {
	var snap EpochSnapshot
	snap.SimTimeMicros = int64(now)
	snap.Epoch = epoch
	c := v.Cluster()
	for k := 0; k < c.Len(); k++ {
		node := cluster.NodeID(k)
		snap.QueuedTasks += len(v.Queue(node))
		r := len(v.Running(node))
		snap.RunningTasks += r
		snap.BusySlots += r
		snap.TotalSlots += c.Nodes[k].Slots
	}
	s.mu.Lock()
	s.snap = snap
	s.mu.Unlock()
}

// metricName converts a Counters snapshot name ("task-starts") to a
// Prometheus metric name ("dsp_task_starts").
func metricName(name string) string {
	return "dsp_" + strings.ReplaceAll(name, "-", "_")
}

// noStore marks a telemetry response uncacheable: every scrape must see
// the live simulation state, never an intermediary's copy.
func noStore(w http.ResponseWriter) {
	w.Header().Set("Cache-Control", "no-store")
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	noStore(w)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var b strings.Builder
	fmt.Fprintf(&b, "# HELP dsp_schema_info Version of the telemetry surface served here.\n")
	fmt.Fprintf(&b, "# TYPE dsp_schema_info gauge\n")
	fmt.Fprintf(&b, "dsp_schema_info{schema=%q} 1\n", TelemetrySchema)
	if s.counters != nil {
		for _, ct := range s.counters.Snapshot() {
			n := metricName(ct.Name)
			fmt.Fprintf(&b, "# HELP %s Simulator event tally (%s).\n", n, ct.Name)
			fmt.Fprintf(&b, "# TYPE %s counter\n", n)
			fmt.Fprintf(&b, "%s %d\n", n, ct.Value)
		}
	}
	if s.attrib != nil {
		blame, jobs := s.attrib.Aggregate()
		fmt.Fprintf(&b, "# HELP dsp_attrib_jobs Jobs with a completed latency attribution.\n")
		fmt.Fprintf(&b, "# TYPE dsp_attrib_jobs counter\n")
		fmt.Fprintf(&b, "dsp_attrib_jobs %d\n", jobs)
		fmt.Fprintf(&b, "# HELP dsp_attrib_seconds Aggregate completion-time blame by cause, over attributed jobs.\n")
		fmt.Fprintf(&b, "# TYPE dsp_attrib_seconds gauge\n")
		for _, c := range attrib.Causes() {
			fmt.Fprintf(&b, "dsp_attrib_seconds{cause=%q} %g\n", c.String(), blame[c].Seconds())
		}
	}
	s.mu.Lock()
	snap := s.snap
	s.mu.Unlock()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	for _, g := range []struct {
		name, help string
		value      float64
	}{
		{"dsp_sim_time_seconds", "Simulated time at the last epoch boundary.", units.Time(snap.SimTimeMicros).Seconds()},
		{"dsp_epoch", "Last completed scheduling epoch.", float64(snap.Epoch)},
		{"dsp_queued_tasks", "Tasks waiting in node queues.", float64(snap.QueuedTasks)},
		{"dsp_running_tasks", "Tasks occupying slots.", float64(snap.RunningTasks)},
		{"dsp_busy_slots", "Occupied slots cluster-wide.", float64(snap.BusySlots)},
		{"dsp_total_slots", "Total slots cluster-wide.", float64(snap.TotalSlots)},
		{"dsp_heap_alloc_bytes", "Live heap bytes of the serving process (runtime.MemStats.HeapAlloc).", float64(ms.HeapAlloc)},
		{"dsp_heap_sys_bytes", "Heap bytes obtained from the OS (runtime.MemStats.HeapSys).", float64(ms.HeapSys)},
		{"dsp_gc_runs", "Completed garbage-collection cycles (runtime.MemStats.NumGC).", float64(ms.NumGC)},
	} {
		fmt.Fprintf(&b, "# HELP %s %s\n", g.name, g.help)
		fmt.Fprintf(&b, "# TYPE %s gauge\n", g.name)
		fmt.Fprintf(&b, "%s %g\n", g.name, g.value)
	}
	if rows := s.phaseRows(); len(rows) > 0 {
		fmt.Fprintf(&b, "# HELP dsp_phase_count Exclusive scheduler-phase sample count.\n")
		fmt.Fprintf(&b, "# TYPE dsp_phase_count counter\n")
		for _, r := range rows {
			fmt.Fprintf(&b, "dsp_phase_count{phase=%q} %d\n", r.Phase, r.Count)
		}
		fmt.Fprintf(&b, "# HELP dsp_phase_seconds_total Exclusive wall time spent in each scheduler phase.\n")
		fmt.Fprintf(&b, "# TYPE dsp_phase_seconds_total counter\n")
		for _, r := range rows {
			fmt.Fprintf(&b, "dsp_phase_seconds_total{phase=%q} %g\n", r.Phase, r.TotalUS/1e6)
		}
		fmt.Fprintf(&b, "# HELP dsp_phase_seconds Per-sample scheduler-phase latency quantiles (log2-bucket upper bounds; max is exact).\n")
		fmt.Fprintf(&b, "# TYPE dsp_phase_seconds gauge\n")
		for _, r := range rows {
			for _, q := range []struct {
				label string
				us    float64
			}{
				{"0.5", r.P50US}, {"0.95", r.P95US}, {"0.99", r.P99US}, {"max", r.MaxUS},
			} {
				fmt.Fprintf(&b, "dsp_phase_seconds{phase=%q,quantile=%q} %g\n", r.Phase, q.label, q.us/1e6)
			}
		}
	}
	fmt.Fprint(w, b.String())
}

// phaseRows snapshots the attached phase timer's nonzero phases, largest
// total first. Nil timer (or nothing recorded yet) yields nil.
func (s *Server) phaseRows() []prof.PhaseBreakdown {
	if s.prof == nil {
		return nil
	}
	snap := s.prof.Snapshot()
	return snap.Breakdown()
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	noStore(w)
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// snapshotDoc is the /snapshot JSON layout. Schema always carries
// TelemetrySchema so consumers can version-gate their parsing.
type snapshotDoc struct {
	Schema   string                `json:"schema"`
	Epoch    EpochSnapshot         `json:"epoch"`
	Counters map[string]int64      `json:"counters,omitempty"`
	Attrib   *attribDoc            `json:"attrib,omitempty"`
	Phases   []prof.PhaseBreakdown `json:"phases,omitempty"`
}

type attribDoc struct {
	Jobs  int          `json:"jobs"`
	Blame attrib.Blame `json:"blame"`
}

func (s *Server) handleSnapshot(w http.ResponseWriter, _ *http.Request) {
	noStore(w)
	s.mu.Lock()
	doc := snapshotDoc{Schema: TelemetrySchema, Epoch: s.snap}
	s.mu.Unlock()
	if s.counters != nil {
		doc.Counters = make(map[string]int64)
		for _, ct := range s.counters.Snapshot() {
			doc.Counters[ct.Name] = ct.Value
		}
	}
	if s.attrib != nil {
		blame, jobs := s.attrib.Aggregate()
		doc.Attrib = &attribDoc{Jobs: jobs, Blame: blame}
	}
	doc.Phases = s.phaseRows()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(doc) //nolint:errcheck // best-effort scrape response
}
