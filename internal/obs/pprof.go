package obs

import (
	"fmt"
	"net"
	"net/http"

	// Register the profiling handlers on http.DefaultServeMux.
	_ "net/http/pprof"
)

// StartPprof serves the Go runtime profiling endpoints
// (/debug/pprof/...) on addr (e.g. ":6060") in a background goroutine,
// so long simulations and sweeps can be profiled live:
//
//	go tool pprof http://localhost:6060/debug/pprof/profile
//
// An empty addr is a no-op. Listening errors (port taken, bad address)
// are returned synchronously; the returned address is the bound listener
// address (useful with ":0").
func StartPprof(addr string) (string, error) {
	if addr == "" {
		return "", nil
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: pprof listen %s: %w", addr, err)
	}
	go func() {
		// The server lives for the process; errors after bind (always
		// ErrServerClosed in practice) have nowhere useful to go.
		_ = http.Serve(ln, nil)
	}()
	return ln.Addr().String(), nil
}
