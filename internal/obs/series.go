package obs

import (
	"fmt"
	"strings"

	"dsp/internal/cluster"
	"dsp/internal/metrics"
	"dsp/internal/sim"
	"dsp/internal/units"
)

// Core series columns, one value per preemption epoch.
const (
	colQueued      = "queued"
	colRunning     = "running"
	colBusySlots   = "busy-slots"
	colSlotUtil    = "slot-util"
	colPreemptions = "preemptions"
	colDisorders   = "disorders"
	colCompleted   = "completed"
	colRetries     = "retries"
	colSpecs       = "speculations"
	colDegrades    = "degradations"
	colSheds       = "sheds"
	colViolations  = "violations"
	colPending     = "pending-tasks"
)

// SeriesRecorder samples cluster-wide gauges at every preemption epoch
// (EpochEnded) plus the event rates accumulated since the previous
// epoch, keyed by simulation time in seconds. Export with CSV (built on
// metrics.Table) or summarize with Summary (percentiles via
// metrics.Percentile).
type SeriesRecorder struct {
	sim.NopObserver
	// PerNode adds node<k>-run / node<k>-wait columns for every node.
	// Off by default: 50 nodes means 100 extra columns.
	PerNode bool

	runs    []*runSeries
	pending string // label for the run the next epoch starts

	// Event-rate accumulators since the last sampled epoch.
	preempts, disorders, completed, retries, specs int
	degrades, sheds, violations                    int
}

type runSeries struct {
	label string
	table *metrics.Table
}

// NewSeriesRecorder returns an empty recorder.
func NewSeriesRecorder() *SeriesRecorder { return &SeriesRecorder{} }

// BeginRun starts a new series section; subsequent epochs land in it.
func (s *SeriesRecorder) BeginRun(label string) {
	s.pending = label
	s.runs = append(s.runs, nil) // materialized on first epoch
	s.preempts, s.disorders, s.completed, s.retries, s.specs = 0, 0, 0, 0, 0
	s.degrades, s.sheds, s.violations = 0, 0, 0
}

// TaskPreempted implements sim.Observer.
func (s *SeriesRecorder) TaskPreempted(units.Time, *sim.TaskState, *sim.TaskState, cluster.NodeID) {
	s.preempts++
}

// DisorderDetected implements sim.Observer.
func (s *SeriesRecorder) DisorderDetected(units.Time, *sim.TaskState, *sim.TaskState, cluster.NodeID) {
	s.disorders++
}

// TaskCompleted implements sim.Observer.
func (s *SeriesRecorder) TaskCompleted(units.Time, *sim.TaskState, cluster.NodeID) {
	s.completed++
}

// TaskRetried implements sim.Observer.
func (s *SeriesRecorder) TaskRetried(units.Time, *sim.TaskState, cluster.NodeID, int, sim.RetryReason) {
	s.retries++
}

// SpeculationLaunched implements sim.Observer.
func (s *SeriesRecorder) SpeculationLaunched(units.Time, *sim.TaskState, cluster.NodeID, cluster.NodeID) {
	s.specs++
}

// SolverDegraded implements sim.Observer.
func (s *SeriesRecorder) SolverDegraded(units.Time, sim.SolverDegradation) {
	s.degrades++
}

// JobShed implements sim.Observer.
func (s *SeriesRecorder) JobShed(units.Time, *sim.JobState, sim.ShedReason) {
	s.sheds++
}

// InvariantViolated implements sim.Observer.
func (s *SeriesRecorder) InvariantViolated(units.Time, sim.InvariantViolation) {
	s.violations++
}

// EpochEnded implements sim.Observer: sample the cluster after the
// epoch's preemption actions were applied.
func (s *SeriesRecorder) EpochEnded(now units.Time, _ int, v *sim.View) {
	c := v.Cluster()
	run := s.currentRun(c)
	t := run.table
	x := now.Seconds()

	var queued, running, slots int
	for k := 0; k < c.Len(); k++ {
		node := cluster.NodeID(k)
		q := len(v.Queue(node))
		r := len(v.Running(node))
		queued += q
		running += r
		slots += c.Nodes[k].Slots
		if s.PerNode {
			t.Set(x, fmt.Sprintf("node%d-run", k), float64(r))
			t.Set(x, fmt.Sprintf("node%d-wait", k), float64(q))
		}
	}
	t.Set(x, colQueued, float64(queued))
	t.Set(x, colRunning, float64(running))
	t.Set(x, colBusySlots, float64(running))
	if slots > 0 {
		t.Set(x, colSlotUtil, float64(running)/float64(slots))
	} else {
		t.Set(x, colSlotUtil, 0)
	}
	t.Set(x, colPreemptions, float64(s.preempts))
	t.Set(x, colDisorders, float64(s.disorders))
	t.Set(x, colCompleted, float64(s.completed))
	t.Set(x, colRetries, float64(s.retries))
	t.Set(x, colSpecs, float64(s.specs))
	t.Set(x, colDegrades, float64(s.degrades))
	t.Set(x, colSheds, float64(s.sheds))
	t.Set(x, colViolations, float64(s.violations))
	pending := 0
	for _, j := range v.Jobs() {
		if j.Arrival > now || j.Failed() || j.Shed() || j.Done() {
			continue
		}
		for _, ts := range j.Tasks {
			if ts.Phase == sim.Pending {
				pending++
			}
		}
	}
	t.Set(x, colPending, float64(pending))
	s.preempts, s.disorders, s.completed, s.retries, s.specs = 0, 0, 0, 0, 0
	s.degrades, s.sheds, s.violations = 0, 0, 0
}

// currentRun returns the active run section, materializing its table
// (whose column set depends on the cluster size) on first use.
func (s *SeriesRecorder) currentRun(c *cluster.Cluster) *runSeries {
	if len(s.runs) == 0 {
		s.runs = append(s.runs, nil)
	}
	last := len(s.runs) - 1
	if s.runs[last] == nil {
		cols := []string{colQueued, colRunning, colBusySlots, colSlotUtil,
			colPreemptions, colDisorders, colCompleted, colRetries, colSpecs,
			colDegrades, colSheds, colViolations, colPending}
		if s.PerNode {
			for k := 0; k < c.Len(); k++ {
				cols = append(cols, fmt.Sprintf("node%d-run", k), fmt.Sprintf("node%d-wait", k))
			}
		}
		title := "epoch series"
		if s.pending != "" {
			title = s.pending
		}
		s.runs[last] = &runSeries{
			label: s.pending,
			table: metrics.NewTable(title, "t(s)", "", cols...),
		}
	}
	return s.runs[last]
}

// CSV renders every recorded run as CSV; multi-run output separates
// sections with "# label" comment lines.
func (s *SeriesRecorder) CSV() string {
	var b strings.Builder
	for _, r := range s.runs {
		if r == nil {
			continue // BeginRun called but no epoch sampled
		}
		if r.label != "" {
			fmt.Fprintf(&b, "# %s\n", r.label)
		}
		b.WriteString(r.table.CSV())
	}
	return b.String()
}

// Summary renders per-column distribution statistics (mean, p50, p90,
// p99, max) over each run's epochs.
func (s *SeriesRecorder) Summary() string {
	var b strings.Builder
	for _, r := range s.runs {
		if r == nil {
			continue
		}
		if r.label != "" {
			fmt.Fprintf(&b, "# %s\n", r.label)
		}
		fmt.Fprintf(&b, "%-16s %6s %10s %10s %10s %10s %10s\n",
			"column", "n", "mean", "p50", "p90", "p99", "max")
		for _, col := range r.table.Methods {
			xs := r.table.Column(col)
			var st metrics.Stats
			for _, x := range xs {
				st.Add(x)
			}
			fmt.Fprintf(&b, "%-16s %6d %10.3f %10.3f %10.3f %10.3f %10.3f\n",
				col, st.N(), st.Mean(),
				metrics.Percentile(xs, 0.50),
				metrics.Percentile(xs, 0.90),
				metrics.Percentile(xs, 0.99),
				st.Max())
		}
	}
	return b.String()
}
