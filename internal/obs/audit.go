package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"dsp/internal/attrib"
	"dsp/internal/cluster"
	"dsp/internal/dag"
	"dsp/internal/sim"
	"dsp/internal/units"
)

// AuditWriter streams a JSONL decision log: one JSON object per line,
// one line per decision-level event, in simulation order. It answers
// queries like "why was task X preempted at t=Y" (grep the candidate or
// victim key) and lets offline tooling recompute any counter the engine
// reports. Every task-timeline span is logged ("span" lines) and every
// completed job gets a "job-blame" line carrying its realized critical
// path and blame vector, so cmd/dspexplain can reproduce — and verify —
// the full latency attribution from the JSONL alone. Fields are printed
// in a fixed order so output is byte-stable for a given run.
type AuditWriter struct {
	sim.NopObserver
	w   *bufio.Writer
	cw  *countingWriter
	rec *attrib.Recorder
	// Verdicts tallies PreemptionConsidered lines by verdict string, a
	// convenience for cross-checking against sim.Result totals.
	Verdicts map[string]int
}

// countingWriter tracks how many bytes have reached the underlying
// stream, so Offset can report the audit position for crash-recovery
// snapshots.
type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// NewAuditWriter wraps w in a buffered JSONL emitter; call Flush when
// the run finishes.
func NewAuditWriter(w io.Writer) *AuditWriter {
	cw := &countingWriter{w: w}
	a := &AuditWriter{w: bufio.NewWriter(cw), cw: cw, Verdicts: make(map[string]int)}
	a.rec = attrib.NewRecorder()
	a.rec.OnJob(a.writeJobBlame)
	return a
}

// Offset returns the logical byte offset of the audit stream: bytes
// written through plus bytes still buffered. With SetBaseOffset it is
// the absolute position in a resumed audit file; crash-recovery
// snapshots store it so resume can truncate the file to exactly the
// prefix the snapshot saw.
func (a *AuditWriter) Offset() int64 { return a.cw.n + int64(a.w.Buffered()) }

// SetBaseOffset declares that the underlying writer is already
// positioned n bytes into the stream (a resumed audit file opened at
// its truncation point), so Offset reports absolute file positions.
func (a *AuditWriter) SetBaseOffset(n int64) { a.cw.n = n }

// jstr renders a free-form string as a JSON string literal. %q is not a
// JSON escaper — it emits Go escapes like \a and \x07 that json.Valid
// rejects — so every field that can carry arbitrary text (run labels,
// degradation reasons, violation details) goes through here instead.
func jstr(s string) string {
	b, err := json.Marshal(s)
	if err != nil {
		return `""` // cannot happen for a string input
	}
	return string(b)
}

// BeginRun writes a run-boundary marker so multi-run sweeps (dspbench)
// keep their decisions attributable, and resets the per-run attribution
// state.
func (a *AuditWriter) BeginRun(label string) {
	a.rec.Reset()
	fmt.Fprintf(a.w, "{\"ev\":\"run\",\"label\":%s}\n", jstr(label))
}

// PreemptionConsidered implements sim.Observer.
func (a *AuditWriter) PreemptionConsidered(now units.Time, d sim.PreemptionDecision) {
	verdict := d.Verdict.String()
	a.Verdicts[verdict]++
	fmt.Fprintf(a.w,
		"{\"t\":%d,\"ev\":\"preempt-considered\",\"node\":%d,\"candidate\":%q,\"victim\":%q,"+
			"\"candidate_pr\":%g,\"victim_pr\":%g,\"gain\":%g,\"overhead\":%g,\"urgent\":%t,\"verdict\":%q}\n",
		int64(now), int(d.Node), d.Candidate.Key().String(), d.Victim.Key().String(),
		d.CandidatePriority, d.VictimPriority, d.Gain, d.Overhead, d.Urgent, verdict)
}

// TaskPreempted implements sim.Observer.
func (a *AuditWriter) TaskPreempted(now units.Time, victim, starter *sim.TaskState, node cluster.NodeID) {
	skey := ""
	if starter != nil {
		skey = starter.Key().String()
	}
	fmt.Fprintf(a.w, "{\"t\":%d,\"ev\":\"preempted\",\"node\":%d,\"victim\":%q,\"starter\":%q}\n",
		int64(now), int(node), victim.Key().String(), skey)
}

// DisorderDetected implements sim.Observer.
func (a *AuditWriter) DisorderDetected(now units.Time, starter, victim *sim.TaskState, node cluster.NodeID) {
	fmt.Fprintf(a.w, "{\"t\":%d,\"ev\":\"disorder\",\"node\":%d,\"starter\":%q,\"victim\":%q}\n",
		int64(now), int(node), starter.Key().String(), victim.Key().String())
}

// EpochEnded implements sim.Observer: one summary line per epoch with
// cluster-wide gauges sampled after the epoch's actions were applied.
func (a *AuditWriter) EpochEnded(now units.Time, epoch int, v *sim.View) {
	var queued, running, busy, slots int
	c := v.Cluster()
	for k := 0; k < c.Len(); k++ {
		node := cluster.NodeID(k)
		queued += len(v.Queue(node))
		r := len(v.Running(node))
		running += r
		busy += r
		slots += c.Nodes[k].Slots
	}
	fmt.Fprintf(a.w, "{\"t\":%d,\"ev\":\"epoch\",\"epoch\":%d,\"queued\":%d,\"running\":%d,\"busy_slots\":%d,\"total_slots\":%d}\n",
		int64(now), epoch, queued, running, busy, slots)
}

// NodeFailed implements sim.Observer.
func (a *AuditWriter) NodeFailed(now units.Time, node cluster.NodeID) {
	fmt.Fprintf(a.w, "{\"t\":%d,\"ev\":\"node-failed\",\"node\":%d}\n", int64(now), int(node))
}

// NodeRecovered implements sim.Observer.
func (a *AuditWriter) NodeRecovered(now units.Time, node cluster.NodeID) {
	fmt.Fprintf(a.w, "{\"t\":%d,\"ev\":\"node-recovered\",\"node\":%d}\n", int64(now), int(node))
}

// TaskEvicted implements sim.Observer.
func (a *AuditWriter) TaskEvicted(now units.Time, t *sim.TaskState, node cluster.NodeID) {
	fmt.Fprintf(a.w, "{\"t\":%d,\"ev\":\"evicted\",\"node\":%d,\"task\":%q}\n",
		int64(now), int(node), t.Key().String())
}

// TaskRequeued implements sim.Observer.
func (a *AuditWriter) TaskRequeued(now units.Time, t *sim.TaskState, node cluster.NodeID, reason sim.RequeueReason) {
	fmt.Fprintf(a.w, "{\"t\":%d,\"ev\":\"requeued\",\"node\":%d,\"task\":%q,\"reason\":%q}\n",
		int64(now), int(node), t.Key().String(), reason.String())
}

// TaskRetried implements sim.Observer.
func (a *AuditWriter) TaskRetried(now units.Time, t *sim.TaskState, node cluster.NodeID, attempt int, reason sim.RetryReason) {
	fmt.Fprintf(a.w, "{\"t\":%d,\"ev\":\"retried\",\"node\":%d,\"task\":%q,\"attempt\":%d,\"reason\":%q}\n",
		int64(now), int(node), t.Key().String(), attempt, reason.String())
}

// TaskFailedTerminally implements sim.Observer.
func (a *AuditWriter) TaskFailedTerminally(now units.Time, t *sim.TaskState, node cluster.NodeID) {
	fmt.Fprintf(a.w, "{\"t\":%d,\"ev\":\"failed\",\"node\":%d,\"task\":%q}\n",
		int64(now), int(node), t.Key().String())
}

// SpeculationLaunched implements sim.Observer.
func (a *AuditWriter) SpeculationLaunched(now units.Time, t *sim.TaskState, primary, backup cluster.NodeID) {
	fmt.Fprintf(a.w, "{\"t\":%d,\"ev\":\"spec-launched\",\"task\":%q,\"primary\":%d,\"backup\":%d}\n",
		int64(now), t.Key().String(), int(primary), int(backup))
}

// SpeculationWon implements sim.Observer.
func (a *AuditWriter) SpeculationWon(now units.Time, t *sim.TaskState, winner, loser cluster.NodeID) {
	fmt.Fprintf(a.w, "{\"t\":%d,\"ev\":\"spec-won\",\"task\":%q,\"winner\":%d,\"loser\":%d}\n",
		int64(now), t.Key().String(), int(winner), int(loser))
}

// SpeculationCancelled implements sim.Observer.
func (a *AuditWriter) SpeculationCancelled(now units.Time, t *sim.TaskState, backup cluster.NodeID) {
	fmt.Fprintf(a.w, "{\"t\":%d,\"ev\":\"spec-cancelled\",\"task\":%q,\"backup\":%d}\n",
		int64(now), t.Key().String(), int(backup))
}

// NodeBlacklisted implements sim.Observer.
func (a *AuditWriter) NodeBlacklisted(now units.Time, node cluster.NodeID) {
	fmt.Fprintf(a.w, "{\"t\":%d,\"ev\":\"blacklisted\",\"node\":%d}\n", int64(now), int(node))
}

// SolverDegraded implements sim.Observer.
func (a *AuditWriter) SolverDegraded(now units.Time, d sim.SolverDegradation) {
	fmt.Fprintf(a.w, "{\"t\":%d,\"ev\":\"solver-degraded\",\"from\":%q,\"to\":%q,\"reason\":%s,\"pending_tasks\":%d,\"bnb_nodes\":%d}\n",
		int64(now), d.From.String(), d.To.String(), jstr(d.Reason), d.PendingTasks, d.Nodes)
}

// JobShed implements sim.Observer.
func (a *AuditWriter) JobShed(now units.Time, j *sim.JobState, reason sim.ShedReason) {
	fmt.Fprintf(a.w, "{\"t\":%d,\"ev\":\"job-shed\",\"job\":%d,\"reason\":%q}\n",
		int64(now), int(j.Dag.ID), reason.String())
}

// InvariantViolated implements sim.Observer.
func (a *AuditWriter) InvariantViolated(now units.Time, v sim.InvariantViolation) {
	tkey := ""
	if v.Task != nil {
		tkey = v.Task.Key().String()
	}
	fmt.Fprintf(a.w, "{\"t\":%d,\"ev\":\"invariant-violated\",\"check\":%q,\"node\":%d,\"task\":%q,\"detail\":%s}\n",
		int64(now), v.Check, int(v.Node), tkey, jstr(v.Detail))
}

// TaskSpanClosed implements sim.Observer: one line per closed timeline
// span, the raw material for offline latency attribution.
func (a *AuditWriter) TaskSpanClosed(s sim.TaskSpan) {
	fmt.Fprintf(a.w, "{\"t\":%d,\"ev\":\"span\",\"task\":%q,\"kind\":%q,\"cause\":%q,\"node\":%d,\"start\":%d,\"end\":%d}\n",
		int64(s.End), s.Task.Key().String(), s.Kind.String(), s.Cause.String(),
		int(s.Node), int64(s.Start), int64(s.End))
	a.rec.TaskSpanClosed(s)
}

// JobCompleted implements sim.Observer: the internal recorder attributes
// the job and writeJobBlame (its OnJob callback) emits the line.
func (a *AuditWriter) JobCompleted(now units.Time, j *sim.JobState) {
	a.rec.JobCompleted(now, j)
}

// SnapshotTaken implements sim.Observer: one line per crash-recovery
// snapshot. The engine emits the event before the durability sink reads
// Offset, so the line lands inside the snapshot's audit prefix and a
// resumed run's audit stays byte-identical to an uninterrupted one.
// RecoveryStarted and Replayed are deliberately NOT audited: they only
// happen on resumed processes, and auditing them would make a recovered
// run's log differ from the uninterrupted baseline.
func (a *AuditWriter) SnapshotTaken(now units.Time, period int) {
	fmt.Fprintf(a.w, "{\"t\":%d,\"ev\":\"snapshot\",\"period\":%d}\n", int64(now), period)
}

// spanKindByName inverts sim.SpanKind.String for audit rehydration.
var spanKindByName = map[string]sim.SpanKind{
	"pending":      sim.SpanPending,
	"queued":       sim.SpanQueued,
	"suspend-wait": sim.SpanSuspendWait,
	"backoff":      sim.SpanBackoff,
	"blocked":      sim.SpanBlocked,
	"overhead":     sim.SpanOverhead,
	"service":      sim.SpanService,
	"lost":         sim.SpanLost,
}

// spanCauseByName inverts sim.SpanCause.String for audit rehydration.
var spanCauseByName = map[string]sim.SpanCause{
	"none":       sim.CauseNone,
	"preemption": sim.CausePreemption,
	"task-fault": sim.CauseTaskFault,
	"crash":      sim.CauseCrash,
}

// Rehydrate replays the span lines of an existing audit prefix into the
// internal attribution recorder, so jobs that complete after a crash
// resume still get correct "job-blame" lines. resolve maps a span's
// task identity to its live state in the resumed engine; returning nil
// skips the span (jobs already settled before the snapshot were fully
// attributed in the prefix and must not be replayed).
func (a *AuditWriter) Rehydrate(r io.Reader, resolve func(job dag.JobID, task dag.TaskID) *sim.TaskState) error {
	type spanLine struct {
		Ev    string `json:"ev"`
		Task  string `json:"task"`
		Kind  string `json:"kind"`
		Cause string `json:"cause"`
		Node  int    `json:"node"`
		Start int64  `json:"start"`
		End   int64  `json:"end"`
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024) // job-blame lines can be long
	for sc.Scan() {
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var line spanLine
		if err := json.Unmarshal(b, &line); err != nil {
			return fmt.Errorf("obs: rehydrate: bad audit line: %w", err)
		}
		if line.Ev != "span" {
			continue
		}
		var job, task int
		if _, err := fmt.Sscanf(line.Task, "J%d.T%d", &job, &task); err != nil {
			return fmt.Errorf("obs: rehydrate: bad task key %q: %w", line.Task, err)
		}
		kind, ok := spanKindByName[line.Kind]
		if !ok {
			return fmt.Errorf("obs: rehydrate: unknown span kind %q", line.Kind)
		}
		cause, ok := spanCauseByName[line.Cause]
		if !ok {
			return fmt.Errorf("obs: rehydrate: unknown span cause %q", line.Cause)
		}
		ts := resolve(dag.JobID(job), dag.TaskID(task))
		if ts == nil {
			continue
		}
		a.rec.TaskSpanClosed(sim.TaskSpan{
			Task:  ts,
			Kind:  kind,
			Cause: cause,
			Node:  cluster.NodeID(line.Node),
			Start: units.Time(line.Start),
			End:   units.Time(line.End),
		})
	}
	return sc.Err()
}

// auditStep mirrors attrib.Step for the JSONL encoding.
type auditStep struct {
	Task  int          `json:"task"`
	Start int64        `json:"start"`
	End   int64        `json:"end"`
	Blame attrib.Blame `json:"blame"`
}

// auditBlame is the "job-blame" line layout.
type auditBlame struct {
	T          int64        `json:"t"`
	Ev         string       `json:"ev"`
	Job        int          `json:"job"`
	Arrival    int64        `json:"arrival"`
	Eligible   int64        `json:"eligible"`
	Done       int64        `json:"done"`
	Completion int64        `json:"completion"`
	Blame      attrib.Blame `json:"blame"`
	Path       []auditStep  `json:"path"`
}

// writeJobBlame emits the full attribution of one completed job: its
// blame vector and the realized critical path with per-step blame, so
// dspexplain can both display and independently re-derive the result.
func (a *AuditWriter) writeJobBlame(att attrib.JobAttribution) {
	line := auditBlame{
		T:          int64(att.DoneAt),
		Ev:         "job-blame",
		Job:        int(att.Job),
		Arrival:    int64(att.Arrival),
		Eligible:   int64(att.Eligible),
		Done:       int64(att.DoneAt),
		Completion: int64(att.Completion()),
		Blame:      att.Blame,
		Path:       make([]auditStep, 0, len(att.Path)),
	}
	for _, st := range att.Path {
		line.Path = append(line.Path, auditStep{
			Task:  int(st.Task),
			Start: int64(st.Start),
			End:   int64(st.End),
			Blame: st.Blame,
		})
	}
	b, err := json.Marshal(line)
	if err != nil {
		return // cannot happen: fixed struct layout
	}
	a.w.Write(b)
	a.w.WriteByte('\n')
}

// Flush drains the buffer to the underlying writer.
func (a *AuditWriter) Flush() error { return a.w.Flush() }
