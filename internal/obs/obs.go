// Package obs is the simulator's observability layer: it turns the
// sim.Observer event stream into artifacts an operator (or a future perf
// PR) can interrogate after — or during — a run.
//
//   - Counters: a race-safe atomic counter registry over every event
//     class, cheap enough to leave attached.
//   - SeriesRecorder: per-epoch time-series samples (queue depth, busy
//     slots, running/waiting tasks, preemption and disorder rates)
//     exported as CSV via metrics.Table, with percentile summaries.
//   - TraceBuilder: a Chrome trace-event JSON exporter (open in Perfetto
//     or chrome://tracing) rendering one process per node and one thread
//     lane per busy slot, with task spans, preemption/disorder instants
//     and epoch markers.
//   - AuditWriter: a JSONL decision log answering "why was task X
//     preempted at t=Y": one line per preemption decision with both
//     priorities, the gain, the PP threshold and the verdict — plus one
//     line per task-timeline span and a "job-blame" attribution line per
//     completed job, enough for cmd/dspexplain to reproduce the latency
//     attribution offline.
//   - Server: an opt-in live telemetry endpoint (Prometheus /metrics,
//     /healthz, JSON /snapshot) scraping the counters, the attribution
//     aggregate and per-epoch gauges while a simulation runs.
//
// A Sink bundles any subset of the above behind one sim.Observer and one
// Close call; the cmd/ tools wire it to --trace/--audit/--series/--listen
// flags.
package obs

import (
	"fmt"
	"io"
	"os"

	"dsp/internal/attrib"
	"dsp/internal/prof"
	"dsp/internal/sim"
)

// Sink composes the configured exporters behind a single observer. The
// zero value is a valid no-op sink. Its Observers field skips nil
// entries, so unconfigured exporters cost nothing to leave in place.
type Sink struct {
	sim.Observers

	Counters *Counters
	Series   *SeriesRecorder
	Trace    *TraceBuilder
	Audit    *AuditWriter

	// Attrib is the live latency-attribution recorder, attached when the
	// telemetry server is on (it feeds the dsp_attrib_seconds gauges) and
	// available for end-of-run summaries.
	Attrib *attrib.Recorder
	// Telemetry is the live endpoint, non-nil when Options.ListenAddr was
	// set; Telemetry.Addr() reports the bound address.
	Telemetry *Server

	traceOut  io.WriteCloser
	seriesOut io.WriteCloser
	auditOut  io.WriteCloser
}

// Options selects which exporters a Sink opens. Empty paths disable the
// corresponding exporter.
type Options struct {
	// TracePath receives Chrome trace-event JSON at Close.
	TracePath string
	// AuditPath receives the JSONL decision audit, streamed during the
	// run and flushed at Close.
	AuditPath string
	// AuditResumeOffset, when positive, reopens AuditPath for a
	// crash-resumed run instead of creating it fresh: the file is
	// truncated to this byte offset (the position the recovery snapshot
	// recorded — anything past it was written after the snapshot and is
	// re-emitted by the deterministic roll-forward) and appended to from
	// there, so the final file is byte-identical to an uninterrupted
	// run's. Call Sink.Audit.Rehydrate with the retained prefix to
	// rebuild the attribution state for jobs still in flight.
	AuditResumeOffset int64
	// SeriesPath receives the per-epoch time-series CSV at Close.
	SeriesPath string
	// Counters attaches the atomic counter registry.
	Counters bool
	// PerNodeSeries adds per-node running/waiting columns to the series
	// (one pair of columns per node; off by default to keep CSVs narrow).
	PerNodeSeries bool
	// ListenAddr, when non-empty, starts the live telemetry HTTP server
	// on that address (":0" binds an ephemeral port; see Sink.Telemetry
	// for the resolved address). Implies Counters and attaches a live
	// attribution recorder.
	ListenAddr string
	// Prof, when non-nil alongside ListenAddr, is the phase timer the
	// telemetry server exposes as the dsp_phase_* metric family. Harnesses
	// either hand the same timer to sim.Config.Prof (single runs) or merge
	// per-cell snapshots into it as a sweep progresses.
	Prof *prof.Timer
}

// Open builds a Sink from Options, creating the output files eagerly so
// path errors surface before a long simulation, not after.
func Open(o Options) (*Sink, error) {
	s := &Sink{}
	if o.ListenAddr != "" {
		o.Counters = true // the endpoint is vacuous without tallies
	}
	if o.Counters {
		s.Counters = NewCounters()
		s.Observers = append(s.Observers, s.Counters)
	}
	if o.SeriesPath != "" {
		f, err := os.Create(o.SeriesPath)
		if err != nil {
			return nil, fmt.Errorf("obs: series: %w", err)
		}
		s.seriesOut = f
		s.Series = NewSeriesRecorder()
		s.Series.PerNode = o.PerNodeSeries
		s.Observers = append(s.Observers, s.Series)
	}
	if o.TracePath != "" {
		f, err := os.Create(o.TracePath)
		if err != nil {
			s.closeFiles()
			return nil, fmt.Errorf("obs: trace: %w", err)
		}
		s.traceOut = f
		s.Trace = NewTraceBuilder()
		s.Observers = append(s.Observers, s.Trace)
	}
	if o.AuditPath != "" {
		var f *os.File
		var err error
		if o.AuditResumeOffset > 0 {
			f, err = os.OpenFile(o.AuditPath, os.O_RDWR, 0o644)
			if err == nil {
				if terr := f.Truncate(o.AuditResumeOffset); terr != nil {
					err = terr
				} else if _, serr := f.Seek(o.AuditResumeOffset, io.SeekStart); serr != nil {
					err = serr
				}
			}
		} else {
			f, err = os.Create(o.AuditPath)
		}
		if err != nil {
			s.closeFiles()
			return nil, fmt.Errorf("obs: audit: %w", err)
		}
		s.auditOut = f
		s.Audit = NewAuditWriter(f)
		if o.AuditResumeOffset > 0 {
			s.Audit.SetBaseOffset(o.AuditResumeOffset)
		}
		s.Observers = append(s.Observers, s.Audit)
	}
	if o.ListenAddr != "" {
		s.Attrib = attrib.NewRecorder()
		srv, err := StartServer(o.ListenAddr, s.Counters, s.Attrib, o.Prof)
		if err != nil {
			s.closeFiles()
			return nil, err
		}
		s.Telemetry = srv
		s.Observers = append(s.Observers, s.Attrib, s.Telemetry)
	}
	return s, nil
}

// Enabled reports whether any exporter is attached; callers can skip
// setting Config.Observer (keeping the engine's nil fast path) otherwise.
func (s *Sink) Enabled() bool { return len(s.Observers) > 0 }

// BeginRun marks a run boundary in every exporter that distinguishes
// runs. Multi-run harnesses (dspbench sweeps) call it before each
// simulation; single-run tools need not.
func (s *Sink) BeginRun(label string) {
	if s.Series != nil {
		s.Series.BeginRun(label)
	}
	if s.Trace != nil {
		s.Trace.BeginRun(label)
	}
	if s.Audit != nil {
		s.Audit.BeginRun(label)
	}
	if s.Attrib != nil {
		s.Attrib.BeginRun(label)
	}
}

// RecordPhases forwards a finished run's phase breakdown to the
// exporters that keep per-run detail (today: the Chrome trace's summary
// row). It satisfies the experiments package's PhaseRecorder interface,
// so sweep harnesses that use a Sink as their observer get phase rows in
// the trace for free.
func (s *Sink) RecordPhases(label string, phases []prof.PhaseBreakdown) {
	if s.Trace != nil {
		s.Trace.RecordPhases(label, phases)
	}
}

// Close writes the buffered artifacts (trace JSON, series CSV), flushes
// the audit stream and closes the files. Safe on a zero Sink.
func (s *Sink) Close() error {
	var first error
	keep := func(err error) {
		if err != nil && first == nil {
			first = err
		}
	}
	if s.Trace != nil && s.traceOut != nil {
		keep(s.Trace.Export(s.traceOut))
	}
	if s.Series != nil && s.seriesOut != nil {
		_, err := io.WriteString(s.seriesOut, s.Series.CSV())
		keep(err)
	}
	if s.Audit != nil {
		keep(s.Audit.Flush())
	}
	if s.Telemetry != nil {
		keep(s.Telemetry.Close())
		s.Telemetry = nil
	}
	keep(s.closeFiles())
	return first
}

func (s *Sink) closeFiles() error {
	var first error
	for _, c := range []io.WriteCloser{s.traceOut, s.seriesOut, s.auditOut} {
		if c != nil {
			if err := c.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	s.traceOut, s.seriesOut, s.auditOut = nil, nil, nil
	return first
}
