package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"dsp/internal/attrib"
	"dsp/internal/sim"
)

// get fetches path from the server and returns the body.
func get(t *testing.T, addr, path string) string {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// checkPromText asserts the body parses as Prometheus text exposition:
// every non-comment line is "name[{labels}] value", every sample name is
// preceded by a TYPE declaration.
func checkPromText(t *testing.T, body string) {
	t.Helper()
	typed := map[string]bool{}
	for i, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if line == "" {
			t.Errorf("blank line %d in exposition", i+1)
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 || (parts[3] != "counter" && parts[3] != "gauge") {
				t.Errorf("malformed TYPE line: %s", line)
				continue
			}
			typed[parts[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Errorf("sample line %d not 'name value': %s", i+1, line)
			continue
		}
		name := fields[0]
		if k := strings.IndexByte(name, '{'); k >= 0 {
			if !strings.HasSuffix(name, "}") {
				t.Errorf("unterminated label set: %s", line)
			}
			name = name[:k]
		}
		if !strings.HasPrefix(name, "dsp_") {
			t.Errorf("metric %q missing dsp_ prefix", name)
		}
		if !typed[name] {
			t.Errorf("sample %q has no preceding TYPE declaration", name)
		}
	}
}

// TestServerEndpoints drives a simulation with the telemetry server
// attached and scrapes all three endpoints: /metrics must be Prometheus
// text whose counters match the live registry and whose attribution
// gauges are present, /snapshot must decode, /healthz must answer ok.
func TestServerEndpoints(t *testing.T) {
	ctr := NewCounters()
	rec := attrib.NewRecorder()
	srv, err := StartServer("127.0.0.1:0", ctr, rec)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if !strings.Contains(srv.Addr(), ":") {
		t.Fatalf("bad bound address %q", srv.Addr())
	}
	res := twoJobSim(t, sim.Observers{ctr, rec, srv})

	if got := get(t, srv.Addr(), "/healthz"); strings.TrimSpace(got) != "ok" {
		t.Errorf("/healthz = %q, want ok", got)
	}

	body := get(t, srv.Addr(), "/metrics")
	checkPromText(t, body)
	for _, want := range []string{
		"dsp_task_starts ",
		"dsp_attrib_jobs ",
		`dsp_attrib_seconds{cause="service"}`,
		"dsp_total_slots ",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	wantLine := "dsp_task_completions " + strconv.FormatInt(ctr.TaskCompletions.Load(), 10)
	if !strings.Contains(body, wantLine+"\n") {
		t.Errorf("/metrics does not carry the live counter value %q", wantLine)
	}

	var snap struct {
		Epoch    EpochSnapshot    `json:"epoch"`
		Counters map[string]int64 `json:"counters"`
		Attrib   *struct {
			Jobs  int          `json:"jobs"`
			Blame attrib.Blame `json:"blame"`
		} `json:"attrib"`
	}
	if err := json.Unmarshal([]byte(get(t, srv.Addr(), "/snapshot")), &snap); err != nil {
		t.Fatalf("/snapshot not valid JSON: %v", err)
	}
	if snap.Counters["task-completions"] != ctr.TaskCompletions.Load() {
		t.Errorf("snapshot counter %d, registry %d",
			snap.Counters["task-completions"], ctr.TaskCompletions.Load())
	}
	if snap.Attrib == nil || snap.Attrib.Jobs != res.JobsCompleted {
		t.Errorf("snapshot attrib = %+v, want %d jobs", snap.Attrib, res.JobsCompleted)
	}
	if snap.Epoch.TotalSlots == 0 {
		t.Error("snapshot epoch gauges never sampled")
	}
}

// TestSinkListen exercises the Sink wiring: ListenAddr implies counters,
// starts the server, and Close shuts it down.
func TestSinkListen(t *testing.T) {
	sink, err := Open(Options{ListenAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	if sink.Counters == nil || sink.Attrib == nil || sink.Telemetry == nil {
		t.Fatal("ListenAddr did not attach counters+attrib+server")
	}
	if !sink.Enabled() {
		t.Fatal("sink with server reports disabled")
	}
	twoJobSim(t, sink)
	addr := sink.Telemetry.Addr()
	body := get(t, addr, "/metrics")
	if !strings.Contains(body, "dsp_job_completions ") {
		t.Errorf("/metrics via sink missing job completions:\n%.300s", body)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Error("server still serving after Close")
	}
}
