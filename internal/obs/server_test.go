package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"

	"dsp/internal/attrib"
	"dsp/internal/cluster"
	"dsp/internal/preempt"
	"dsp/internal/prof"
	"dsp/internal/sched"
	"dsp/internal/sim"
	"dsp/internal/units"
)

// get fetches path from the server and returns the body.
func get(t *testing.T, addr, path string) string {
	t.Helper()
	body, _ := getFull(t, addr, path)
	return body
}

// getFull fetches path and returns the body plus response headers.
func getFull(t *testing.T, addr, path string) (string, http.Header) {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body), resp.Header
}

// checkPromText asserts the body parses as Prometheus text exposition:
// every non-comment line is "name[{labels}] value", every sample name is
// preceded by a TYPE declaration.
func checkPromText(t *testing.T, body string) {
	t.Helper()
	typed := map[string]bool{}
	for i, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if line == "" {
			t.Errorf("blank line %d in exposition", i+1)
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 || (parts[3] != "counter" && parts[3] != "gauge") {
				t.Errorf("malformed TYPE line: %s", line)
				continue
			}
			typed[parts[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Errorf("sample line %d not 'name value': %s", i+1, line)
			continue
		}
		name := fields[0]
		if k := strings.IndexByte(name, '{'); k >= 0 {
			if !strings.HasSuffix(name, "}") {
				t.Errorf("unterminated label set: %s", line)
			}
			name = name[:k]
		}
		if !strings.HasPrefix(name, "dsp_") {
			t.Errorf("metric %q missing dsp_ prefix", name)
		}
		if !typed[name] {
			t.Errorf("sample %q has no preceding TYPE declaration", name)
		}
	}
}

// fakePhaseTimer builds a deterministically populated phase timer: one
// 2ms ilp-solve sample nested in an 8ms schedule pass.
func fakePhaseTimer() *prof.Timer {
	var now int64
	tm := prof.NewWithClock(func() int64 { return now })
	tm.Enter(prof.PhaseSchedule)
	now += 6e6
	tm.Enter(prof.PhaseILPSolve)
	now += 2e6
	tm.Exit()
	tm.Exit()
	return tm
}

// TestServerEndpoints drives a simulation with the telemetry server
// attached and scrapes all three endpoints: /metrics must be Prometheus
// text whose counters match the live registry, whose attribution gauges
// are present and whose phase profile matches the attached timer;
// /snapshot must decode and carry the schema marker; /healthz must
// answer ok. Every response must be marked uncacheable.
func TestServerEndpoints(t *testing.T) {
	ctr := NewCounters()
	rec := attrib.NewRecorder()
	srv, err := StartServer("127.0.0.1:0", ctr, rec, fakePhaseTimer())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if !strings.Contains(srv.Addr(), ":") {
		t.Fatalf("bad bound address %q", srv.Addr())
	}
	res := twoJobSim(t, sim.Observers{ctr, rec, srv})

	for _, path := range []string{"/metrics", "/snapshot", "/healthz"} {
		_, hdr := getFull(t, srv.Addr(), path)
		if cc := hdr.Get("Cache-Control"); cc != "no-store" {
			t.Errorf("%s Cache-Control = %q, want no-store", path, cc)
		}
	}
	if got := get(t, srv.Addr(), "/healthz"); strings.TrimSpace(got) != "ok" {
		t.Errorf("/healthz = %q, want ok", got)
	}

	body := get(t, srv.Addr(), "/metrics")
	checkPromText(t, body)
	for _, want := range []string{
		`dsp_schema_info{schema="` + TelemetrySchema + `"} 1`,
		"dsp_task_starts ",
		"dsp_attrib_jobs ",
		`dsp_attrib_seconds{cause="service"}`,
		"dsp_total_slots ",
		`dsp_phase_count{phase="schedule"} 1`,
		`dsp_phase_count{phase="ilp-solve"} 1`,
		`dsp_phase_seconds_total{phase="schedule"} 0.006`,
		`dsp_phase_seconds_total{phase="ilp-solve"} 0.002`,
		`dsp_phase_seconds{phase="ilp-solve",quantile="max"} 0.002`,
		`dsp_phase_seconds{phase="ilp-solve",quantile="0.95"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	wantLine := "dsp_task_completions " + strconv.FormatInt(ctr.TaskCompletions.Load(), 10)
	if !strings.Contains(body, wantLine+"\n") {
		t.Errorf("/metrics does not carry the live counter value %q", wantLine)
	}

	var snap struct {
		Schema   string           `json:"schema"`
		Epoch    EpochSnapshot    `json:"epoch"`
		Counters map[string]int64 `json:"counters"`
		Attrib   *struct {
			Jobs  int          `json:"jobs"`
			Blame attrib.Blame `json:"blame"`
		} `json:"attrib"`
		Phases []prof.PhaseBreakdown `json:"phases"`
	}
	if err := json.Unmarshal([]byte(get(t, srv.Addr(), "/snapshot")), &snap); err != nil {
		t.Fatalf("/snapshot not valid JSON: %v", err)
	}
	if snap.Schema != TelemetrySchema {
		t.Errorf("snapshot schema = %q, want %q", snap.Schema, TelemetrySchema)
	}
	if snap.Counters["task-completions"] != ctr.TaskCompletions.Load() {
		t.Errorf("snapshot counter %d, registry %d",
			snap.Counters["task-completions"], ctr.TaskCompletions.Load())
	}
	if snap.Attrib == nil || snap.Attrib.Jobs != res.JobsCompleted {
		t.Errorf("snapshot attrib = %+v, want %d jobs", snap.Attrib, res.JobsCompleted)
	}
	if snap.Epoch.TotalSlots == 0 {
		t.Error("snapshot epoch gauges never sampled")
	}
	if len(snap.Phases) != 2 || snap.Phases[0].Phase != "schedule" || snap.Phases[0].TotalUS != 6000 {
		t.Errorf("snapshot phases = %+v, want schedule 6000µs first", snap.Phases)
	}
}

// TestServerConcurrentScrapeDuringRun hammers all three endpoints from
// goroutines while a simulation records into the same counters and phase
// timer the server is exposing. Under -race this proves a scrape never
// tears live stats; afterwards the exposition must still parse and carry
// the hot-path phases the run populated.
func TestServerConcurrentScrapeDuringRun(t *testing.T) {
	ctr := NewCounters()
	tm := prof.New()
	srv, err := StartServer("127.0.0.1:0", ctr, nil, tm)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, path := range []string{"/metrics", "/snapshot", "/healthz"} {
		for i := 0; i < 2; i++ {
			wg.Add(1)
			go func(p string) {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					resp, err := http.Get("http://" + srv.Addr() + p)
					if err != nil {
						t.Errorf("GET %s during run: %v", p, err)
						return
					}
					io.Copy(io.Discard, resp.Body) //nolint:errcheck // draining a scrape
					resp.Body.Close()
				}
			}(path)
		}
	}

	res, err := sim.Run(sim.Config{
		Cluster:    cluster.RealCluster(2),
		Scheduler:  sched.NewDSP(),
		Preemptor:  preempt.NewDSP(),
		Checkpoint: testCheckpoint(),
		Period:     units.Minute,
		Epoch:      units.Second,
		Observer:   sim.Observers{ctr, srv},
		Prof:       tm,
	}, genWorkload(t, 2, 1))
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.JobsCompleted == 0 {
		t.Fatal("fixture completed no jobs")
	}

	body := get(t, srv.Addr(), "/metrics")
	checkPromText(t, body)
	for _, phase := range []string{"setup", "schedule", "epoch-policy", "event-pump"} {
		if !strings.Contains(body, `dsp_phase_count{phase="`+phase+`"}`) {
			t.Errorf("/metrics after run missing phase %q:\n%.400s", phase, body)
		}
	}
}

// TestSinkListen exercises the Sink wiring: ListenAddr implies counters,
// starts the server with the configured phase timer, and Close shuts it
// down.
func TestSinkListen(t *testing.T) {
	sink, err := Open(Options{ListenAddr: "127.0.0.1:0", Prof: fakePhaseTimer()})
	if err != nil {
		t.Fatal(err)
	}
	if sink.Counters == nil || sink.Attrib == nil || sink.Telemetry == nil {
		t.Fatal("ListenAddr did not attach counters+attrib+server")
	}
	if !sink.Enabled() {
		t.Fatal("sink with server reports disabled")
	}
	twoJobSim(t, sink)
	addr := sink.Telemetry.Addr()
	body := get(t, addr, "/metrics")
	if !strings.Contains(body, "dsp_job_completions ") {
		t.Errorf("/metrics via sink missing job completions:\n%.300s", body)
	}
	if !strings.Contains(body, `dsp_phase_seconds{phase="ilp-solve",quantile="0.99"}`) {
		t.Errorf("/metrics via sink missing phase quantiles:\n%.300s", body)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Error("server still serving after Close")
	}
}
