package obs

import (
	"fmt"
	"strings"
	"sync/atomic"

	"dsp/internal/cluster"
	"dsp/internal/sim"
	"dsp/internal/units"
)

// Counters is an always-cheap event tally: one atomic per event class,
// no allocation per event, safe to share across concurrently running
// simulations (the experiment harness may fan out runs; `go test -race`
// covers this in CI).
type Counters struct {
	sim.NopObserver

	TaskStarts      atomic.Int64
	TaskCompletions atomic.Int64
	TaskPreemptions atomic.Int64
	JobCompletions  atomic.Int64
	Epochs          atomic.Int64

	// Decision verdict tallies; Accepted+UrgentOverrides equals the
	// engine's Result.Preemptions, Disorders its Result.Disorders.
	Considered      atomic.Int64
	Accepted        atomic.Int64
	SuppressedByPP  atomic.Int64
	UrgentOverrides atomic.Int64
	Disorders       atomic.Int64

	NodeFailures   atomic.Int64
	NodeRecoveries atomic.Int64
	Evictions      atomic.Int64
	Requeues       atomic.Int64

	// Resilience tallies: retry/terminal-failure outcomes, speculative
	// copies, and health blacklistings.
	Retries          atomic.Int64
	TerminalFailures atomic.Int64
	SpecLaunches     atomic.Int64
	SpecWins         atomic.Int64
	SpecCancels      atomic.Int64
	Blacklistings    atomic.Int64

	// Overload tallies: scheduler degradation-ladder downgrades,
	// admission-control sheddings, explicit job cancellations (streaming
	// ingestion), and invariant-auditor detections.
	SolverDegradations  atomic.Int64
	JobSheds            atomic.Int64
	JobCancellations    atomic.Int64
	InvariantViolations atomic.Int64

	// Durability tallies: periodic crash-recovery snapshots, resumed-run
	// recoveries, and completed write-ahead-log replays.
	Snapshots  atomic.Int64
	Recoveries atomic.Int64
	Replays    atomic.Int64
}

// NewCounters returns a zeroed registry.
func NewCounters() *Counters { return &Counters{} }

// TaskStarted implements sim.Observer.
func (c *Counters) TaskStarted(units.Time, *sim.TaskState, cluster.NodeID) {
	c.TaskStarts.Add(1)
}

// TaskPreempted implements sim.Observer.
func (c *Counters) TaskPreempted(units.Time, *sim.TaskState, *sim.TaskState, cluster.NodeID) {
	c.TaskPreemptions.Add(1)
}

// TaskCompleted implements sim.Observer.
func (c *Counters) TaskCompleted(units.Time, *sim.TaskState, cluster.NodeID) {
	c.TaskCompletions.Add(1)
}

// JobCompleted implements sim.Observer.
func (c *Counters) JobCompleted(units.Time, *sim.JobState) {
	c.JobCompletions.Add(1)
}

// EpochStarted implements sim.Observer.
func (c *Counters) EpochStarted(units.Time, int) {
	c.Epochs.Add(1)
}

// PreemptionConsidered implements sim.Observer.
func (c *Counters) PreemptionConsidered(_ units.Time, d sim.PreemptionDecision) {
	c.Considered.Add(1)
	switch d.Verdict {
	case sim.VerdictAccepted:
		c.Accepted.Add(1)
	case sim.VerdictSuppressedByPP:
		c.SuppressedByPP.Add(1)
	case sim.VerdictUrgentOverride:
		c.UrgentOverrides.Add(1)
	case sim.VerdictDisorder:
		c.Disorders.Add(1)
	}
}

// NodeFailed implements sim.Observer.
func (c *Counters) NodeFailed(units.Time, cluster.NodeID) {
	c.NodeFailures.Add(1)
}

// NodeRecovered implements sim.Observer.
func (c *Counters) NodeRecovered(units.Time, cluster.NodeID) {
	c.NodeRecoveries.Add(1)
}

// TaskEvicted implements sim.Observer.
func (c *Counters) TaskEvicted(units.Time, *sim.TaskState, cluster.NodeID) {
	c.Evictions.Add(1)
}

// TaskRequeued implements sim.Observer.
func (c *Counters) TaskRequeued(units.Time, *sim.TaskState, cluster.NodeID, sim.RequeueReason) {
	c.Requeues.Add(1)
}

// TaskRetried implements sim.Observer.
func (c *Counters) TaskRetried(units.Time, *sim.TaskState, cluster.NodeID, int, sim.RetryReason) {
	c.Retries.Add(1)
}

// TaskFailedTerminally implements sim.Observer.
func (c *Counters) TaskFailedTerminally(units.Time, *sim.TaskState, cluster.NodeID) {
	c.TerminalFailures.Add(1)
}

// SpeculationLaunched implements sim.Observer.
func (c *Counters) SpeculationLaunched(units.Time, *sim.TaskState, cluster.NodeID, cluster.NodeID) {
	c.SpecLaunches.Add(1)
}

// SpeculationWon implements sim.Observer.
func (c *Counters) SpeculationWon(units.Time, *sim.TaskState, cluster.NodeID, cluster.NodeID) {
	c.SpecWins.Add(1)
}

// SpeculationCancelled implements sim.Observer.
func (c *Counters) SpeculationCancelled(units.Time, *sim.TaskState, cluster.NodeID) {
	c.SpecCancels.Add(1)
}

// NodeBlacklisted implements sim.Observer.
func (c *Counters) NodeBlacklisted(units.Time, cluster.NodeID) {
	c.Blacklistings.Add(1)
}

// SolverDegraded implements sim.Observer.
func (c *Counters) SolverDegraded(units.Time, sim.SolverDegradation) {
	c.SolverDegradations.Add(1)
}

// JobShed implements sim.Observer.
func (c *Counters) JobShed(units.Time, *sim.JobState, sim.ShedReason) {
	c.JobSheds.Add(1)
}

// JobCancelled implements sim.Observer.
func (c *Counters) JobCancelled(units.Time, *sim.JobState) {
	c.JobCancellations.Add(1)
}

// InvariantViolated implements sim.Observer.
func (c *Counters) InvariantViolated(units.Time, sim.InvariantViolation) {
	c.InvariantViolations.Add(1)
}

// SnapshotTaken implements sim.Observer.
func (c *Counters) SnapshotTaken(units.Time, int) {
	c.Snapshots.Add(1)
}

// RecoveryStarted implements sim.Observer.
func (c *Counters) RecoveryStarted(units.Time, int) {
	c.Recoveries.Add(1)
}

// Replayed implements sim.Observer.
func (c *Counters) Replayed(units.Time, int) {
	c.Replays.Add(1)
}

// Counter is one named tally in a snapshot.
type Counter struct {
	Name  string
	Value int64
}

// Snapshot returns the current tallies in a fixed order.
func (c *Counters) Snapshot() []Counter {
	return []Counter{
		{"task-starts", c.TaskStarts.Load()},
		{"task-completions", c.TaskCompletions.Load()},
		{"task-preemptions", c.TaskPreemptions.Load()},
		{"job-completions", c.JobCompletions.Load()},
		{"epochs", c.Epochs.Load()},
		{"decisions-considered", c.Considered.Load()},
		{"decisions-accepted", c.Accepted.Load()},
		{"decisions-suppressed-by-pp", c.SuppressedByPP.Load()},
		{"decisions-urgent-override", c.UrgentOverrides.Load()},
		{"decisions-disorder", c.Disorders.Load()},
		{"node-failures", c.NodeFailures.Load()},
		{"node-recoveries", c.NodeRecoveries.Load()},
		{"task-evictions", c.Evictions.Load()},
		{"task-requeues", c.Requeues.Load()},
		{"task-retries", c.Retries.Load()},
		{"task-terminal-failures", c.TerminalFailures.Load()},
		{"speculations-launched", c.SpecLaunches.Load()},
		{"speculations-won", c.SpecWins.Load()},
		{"speculations-cancelled", c.SpecCancels.Load()},
		{"node-blacklistings", c.Blacklistings.Load()},
		{"solver-degradations", c.SolverDegradations.Load()},
		{"jobs-shed", c.JobSheds.Load()},
		{"job-cancellations", c.JobCancellations.Load()},
		{"invariant-violations", c.InvariantViolations.Load()},
		{"snapshots-taken", c.Snapshots.Load()},
		{"recoveries-started", c.Recoveries.Load()},
		{"wal-replays", c.Replays.Load()},
	}
}

// String renders the snapshot as aligned text, one counter per line.
func (c *Counters) String() string {
	var b strings.Builder
	for _, ct := range c.Snapshot() {
		fmt.Fprintf(&b, "%-28s %d\n", ct.Name, ct.Value)
	}
	return b.String()
}
