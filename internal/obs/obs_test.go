package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dsp/internal/cluster"
	"dsp/internal/experiments"
	"dsp/internal/preempt"
	"dsp/internal/prof"
	"dsp/internal/sched"
	"dsp/internal/sim"
	"dsp/internal/trace"
	"dsp/internal/units"
)

var update = flag.Bool("update", false, "rewrite golden files")

// testCheckpoint is the default checkpoint policy with the interval
// shrunk below the 1 s epoch these fixtures use, satisfying the
// config-time live-lock check (Interval must be < Epoch).
func testCheckpoint() cluster.CheckpointPolicy {
	cp := cluster.DefaultCheckpoint()
	cp.Interval = 500 * units.Millisecond
	return cp
}

// twoJobSim runs a small deterministic workload — two generated jobs on
// a two-node cluster under DSP scheduling and preemption — with the
// given observer attached. The config is tight enough (tiny cluster,
// 1 s epochs) that the preemptor fires ~10 times, so every exporter
// sees task, preemption and epoch events.
func twoJobSim(t *testing.T, o sim.Observer) *sim.Result {
	t.Helper()
	res, err := sim.Run(sim.Config{
		Cluster:    cluster.RealCluster(2),
		Scheduler:  sched.NewDSP(),
		Preemptor:  preempt.NewDSP(),
		Checkpoint: testCheckpoint(),
		Period:     units.Minute,
		Epoch:      units.Second,
		Observer:   o,
	}, genWorkload(t, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Preemptions == 0 {
		t.Fatal("fixture produced no preemptions; goldens would not cover the preempt path")
	}
	return res
}

// genWorkload builds the deterministic scaled workload for n jobs.
func genWorkload(t *testing.T, jobs int, seed int64) *trace.Workload {
	t.Helper()
	spec := trace.DefaultSpec(jobs, seed)
	spec.TaskScale = 0.02
	spec.MeanTaskSizeMI /= 0.02
	spec.ArrivalRateMin = 3.5
	spec.ArrivalRateMax = 3.5
	w, err := trace.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// checkGolden byte-compares got against testdata/<name>, rewriting the
// file under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run `go test ./internal/obs -update`): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s differs from golden (rerun with -update if the change is intended);\ngot %d bytes, want %d", name, len(got), len(want))
	}
}

// chromeTrace mirrors the exported JSON shape for semantic checks.
type chromeTrace struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	TraceEvents     []struct {
		Name string         `json:"name"`
		Cat  string         `json:"cat"`
		Ph   string         `json:"ph"`
		TS   int64          `json:"ts"`
		Dur  int64          `json:"dur"`
		PID  int            `json:"pid"`
		TID  int            `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

func TestTraceGoldenAndShape(t *testing.T) {
	tb := NewTraceBuilder()
	twoJobSim(t, tb)
	var buf bytes.Buffer
	if err := tb.Export(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "trace.golden.json", buf.Bytes())

	var ct chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &ct); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	if ct.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", ct.DisplayTimeUnit)
	}

	var spans, preempts, epochs int
	lanes := map[int]map[int]bool{} // pid -> set of tids with task spans
	threadNames := map[int]map[int]bool{}
	for _, ev := range ct.TraceEvents {
		switch {
		case ev.Ph == "X" && ev.Cat == "task":
			spans++
			if ev.Dur < 0 {
				t.Errorf("span %s has negative duration %d", ev.Name, ev.Dur)
			}
			if lanes[ev.PID] == nil {
				lanes[ev.PID] = map[int]bool{}
			}
			lanes[ev.PID][ev.TID] = true
		case ev.Ph == "i" && ev.Cat == "preempt":
			preempts++
		case ev.Ph == "i" && ev.Cat == "epoch":
			epochs++
			if ev.PID != enginePID {
				t.Errorf("epoch marker on pid %d, want engine pid", ev.PID)
			}
		case ev.Ph == "M" && ev.Name == "thread_name":
			if threadNames[ev.PID] == nil {
				threadNames[ev.PID] = map[int]bool{}
			}
			threadNames[ev.PID][ev.TID] = true
		}
	}
	if spans == 0 || preempts == 0 || epochs == 0 {
		t.Fatalf("trace missing event classes: spans=%d preempts=%d epochs=%d", spans, preempts, epochs)
	}
	// Every lane that carries a task span belongs to a real node, is
	// named in the metadata, and stays within the node's slot count.
	slots := cluster.RealCluster(2).Nodes[0].Slots
	for pid, tids := range lanes {
		if pid == enginePID {
			t.Error("task span on the synthetic engine process")
			continue
		}
		for tid := range tids {
			if tid >= slots {
				t.Errorf("node %d uses lane %d, beyond its %d slots", pid, tid, slots)
			}
			if !threadNames[pid][tid] {
				t.Errorf("node %d lane %d has no thread_name metadata", pid, tid)
			}
		}
	}
}

// TestTracePhaseRows: RecordPhases must lay a run's phase breakdown on
// the synthetic "phases" process as consecutive spans with the quantiles
// in the args, and Export must name that process — but only when phase
// rows were actually recorded (so existing goldens stay byte-stable).
func TestTracePhaseRows(t *testing.T) {
	tb := NewTraceBuilder()
	tb.BeginRun("cell-a")
	tb.RecordPhases("cell-a", []prof.PhaseBreakdown{
		{Phase: "schedule", Count: 3, TotalUS: 900, MaxUS: 500, P50US: 200, P95US: 480, P99US: 500},
		{Phase: "event-pump", Count: 40, TotalUS: 100, MaxUS: 10, P50US: 2, P95US: 9, P99US: 10},
	})
	var buf bytes.Buffer
	if err := tb.Export(&buf); err != nil {
		t.Fatal(err)
	}
	var ct chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &ct); err != nil {
		t.Fatalf("trace with phase rows is not valid JSON: %v", err)
	}
	named := false
	var marker bool
	var spans []string
	var lastEnd int64
	for _, ev := range ct.TraceEvents {
		switch {
		case ev.Ph == "M" && ev.Name == "process_name" && ev.PID == profPID:
			named = ev.Args["name"] == "phases"
		case ev.Ph == "i" && ev.Cat == "phase":
			marker = ev.Name == "phases:cell-a" && ev.PID == profPID
		case ev.Ph == "X" && ev.Cat == "phase":
			if ev.PID != profPID {
				t.Errorf("phase span %s on pid %d, want phases pid", ev.Name, ev.PID)
			}
			if ev.TS < lastEnd {
				t.Errorf("phase span %s overlaps the previous one", ev.Name)
			}
			lastEnd = ev.TS + ev.Dur
			if ev.Args["run"] != "cell-a" || ev.Args["count"] == nil || ev.Args["p95_us"] == nil {
				t.Errorf("phase span %s args incomplete: %v", ev.Name, ev.Args)
			}
			spans = append(spans, ev.Name)
		}
	}
	if !named {
		t.Error("phases process not named in metadata")
	}
	if !marker {
		t.Error("run marker missing from the phases row")
	}
	if len(spans) != 2 || spans[0] != "schedule" || spans[1] != "event-pump" {
		t.Errorf("phase spans = %v, want [schedule event-pump]", spans)
	}

	// A builder that never saw phases must not name the process.
	empty := NewTraceBuilder()
	empty.RecordPhases("cell-b", nil)
	buf.Reset()
	if err := empty.Export(&buf); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte(`"phases"`)) {
		t.Error("empty RecordPhases still emitted phases metadata")
	}
}

func TestAuditGoldenAndParses(t *testing.T) {
	var buf bytes.Buffer
	aw := NewAuditWriter(&buf)
	twoJobSim(t, aw)
	if err := aw.Flush(); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "audit.golden.jsonl", buf.Bytes())

	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	events := map[string]int{}
	for sc.Scan() {
		var line map[string]any
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("audit line is not valid JSON: %v\n%s", err, sc.Text())
		}
		ev, _ := line["ev"].(string)
		events[ev]++
	}
	for _, want := range []string{"preempt-considered", "preempted", "epoch"} {
		if events[want] == 0 {
			t.Errorf("audit log has no %q events (saw %v)", want, events)
		}
	}
}

// TestVerdictsMatchResult is the acceptance check for decision-level
// fidelity: summing the PreemptionConsidered verdicts — from the atomic
// counters and independently from the parsed audit JSONL — must exactly
// reproduce the engine's Result.Preemptions and Result.Disorders. SRPT
// is dependency-blind, so it exercises the disorder verdict DSP avoids
// by construction.
func TestVerdictsMatchResult(t *testing.T) {
	for _, tc := range []struct {
		name string
		jobs int
	}{
		{"DSP", 4},
		{"SRPT", 4},
		{"Natjam", 8},
	} {
		t.Run(tc.name, func(t *testing.T) {
			pre, cp, err := experiments.NewPreemptor(tc.name)
			if err != nil {
				t.Fatal(err)
			}
			cp.Interval = 500 * units.Millisecond // below the 1 s epoch
			ctr := NewCounters()
			var buf bytes.Buffer
			aw := NewAuditWriter(&buf)
			res, err := sim.Run(sim.Config{
				Cluster:    cluster.RealCluster(2),
				Scheduler:  sched.NewDSP(),
				Preemptor:  pre,
				Checkpoint: cp,
				Period:     units.Minute,
				Epoch:      units.Second,
				Observer:   sim.Observers{ctr, aw},
			}, genWorkload(t, tc.jobs, 1))
			if err != nil {
				t.Fatal(err)
			}
			if err := aw.Flush(); err != nil {
				t.Fatal(err)
			}
			if res.Preemptions == 0 {
				t.Fatal("fixture produced no preemptions")
			}

			// Counters vs engine result.
			accepted := ctr.Accepted.Load() + ctr.UrgentOverrides.Load()
			if accepted != int64(res.Preemptions) {
				t.Errorf("accepted+urgent-override = %d, want Result.Preemptions = %d", accepted, res.Preemptions)
			}
			if ctr.Disorders.Load() != int64(res.Disorders) {
				t.Errorf("disorder verdicts = %d, want Result.Disorders = %d", ctr.Disorders.Load(), res.Disorders)
			}
			if ctr.TaskPreemptions.Load() != int64(res.Preemptions) {
				t.Errorf("TaskPreempted events = %d, want %d", ctr.TaskPreemptions.Load(), res.Preemptions)
			}
			if ctr.TaskCompletions.Load() != int64(res.TasksCompleted) {
				t.Errorf("TaskCompleted events = %d, want %d", ctr.TaskCompletions.Load(), res.TasksCompleted)
			}

			// Audit JSONL, recomputed from scratch, agrees with both.
			fromLog := map[string]int{}
			sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
			sc.Buffer(make([]byte, 1<<20), 1<<20)
			for sc.Scan() {
				var line struct {
					Ev      string `json:"ev"`
					Verdict string `json:"verdict"`
				}
				if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
					t.Fatal(err)
				}
				if line.Ev == "preempt-considered" {
					fromLog[line.Verdict]++
				}
			}
			if got := fromLog["accepted"] + fromLog["urgent-override"]; got != res.Preemptions {
				t.Errorf("audit accepted+urgent-override = %d, want %d", got, res.Preemptions)
			}
			if fromLog["disorder"] != res.Disorders {
				t.Errorf("audit disorder lines = %d, want %d", fromLog["disorder"], res.Disorders)
			}
			for verdict, n := range aw.Verdicts {
				if fromLog[verdict] != n {
					t.Errorf("AuditWriter.Verdicts[%q] = %d, reparse says %d", verdict, n, fromLog[verdict])
				}
			}
			if tc.name == "SRPT" && res.Disorders == 0 {
				t.Error("SRPT fixture produced no disorders; disorder verdict path untested")
			}
		})
	}
}

func TestSeriesRecorder(t *testing.T) {
	sr := NewSeriesRecorder()
	sr.PerNode = true
	twoJobSim(t, sr)
	csv := sr.CSV()
	if !strings.Contains(csv, "queued") || !strings.Contains(csv, "slot-util") {
		t.Fatalf("series CSV missing core columns:\n%.200s", csv)
	}
	if !strings.Contains(csv, "node0-run") || !strings.Contains(csv, "node1-wait") {
		t.Errorf("PerNode series missing per-node columns")
	}
	if n := strings.Count(csv, "\n"); n < 10 {
		t.Errorf("series has %d lines, expected one per epoch (many)", n)
	}
	sum := sr.Summary()
	for _, col := range []string{"queued", "p50", "p99", "max"} {
		if !strings.Contains(sum, col) {
			t.Errorf("summary missing %q:\n%s", col, sum)
		}
	}
}

func TestSinkEndToEnd(t *testing.T) {
	dir := t.TempDir()
	sink, err := Open(Options{
		TracePath:  filepath.Join(dir, "trace.json"),
		AuditPath:  filepath.Join(dir, "audit.jsonl"),
		SeriesPath: filepath.Join(dir, "series.csv"),
		Counters:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sink.Enabled() {
		t.Fatal("configured sink reports disabled")
	}
	res := twoJobSim(t, sink)
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	var ct chromeTrace
	data, err := os.ReadFile(filepath.Join(dir, "trace.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &ct); err != nil {
		t.Fatalf("sink trace not valid JSON: %v", err)
	}
	for _, f := range []string{"audit.jsonl", "series.csv"} {
		st, err := os.Stat(filepath.Join(dir, f))
		if err != nil || st.Size() == 0 {
			t.Errorf("sink artifact %s missing or empty (err=%v)", f, err)
		}
	}
	if got := sink.Counters.TaskPreemptions.Load(); got != int64(res.Preemptions) {
		t.Errorf("sink counters saw %d preemptions, result says %d", got, res.Preemptions)
	}

	var zero Sink
	if zero.Enabled() {
		t.Error("zero Sink reports enabled")
	}
	if err := zero.Close(); err != nil {
		t.Errorf("zero Sink Close: %v", err)
	}
}

func TestSinkBeginRunSeparatesRuns(t *testing.T) {
	dir := t.TempDir()
	sink, err := Open(Options{
		TracePath:  filepath.Join(dir, "trace.json"),
		AuditPath:  filepath.Join(dir, "audit.jsonl"),
		SeriesPath: filepath.Join(dir, "series.csv"),
	})
	if err != nil {
		t.Fatal(err)
	}
	sink.BeginRun("first")
	twoJobSim(t, sink)
	sink.BeginRun("second")
	twoJobSim(t, sink)
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	audit, _ := os.ReadFile(filepath.Join(dir, "audit.jsonl"))
	if !strings.Contains(string(audit), `"label":"first"`) || !strings.Contains(string(audit), `"label":"second"`) {
		t.Error("audit missing run markers")
	}
	series, _ := os.ReadFile(filepath.Join(dir, "series.csv"))
	if !strings.Contains(string(series), "# first") || !strings.Contains(string(series), "# second") {
		t.Error("series missing run sections")
	}
	tr, _ := os.ReadFile(filepath.Join(dir, "trace.json"))
	if !strings.Contains(string(tr), "run:first") || !strings.Contains(string(tr), "run:second") {
		t.Error("trace missing run markers")
	}
	// Runs are laid out back-to-back: the second run's marker sits at
	// the first run's end, not at zero.
	var ct chromeTrace
	if err := json.Unmarshal(tr, &ct); err != nil {
		t.Fatal(err)
	}
	for _, ev := range ct.TraceEvents {
		if ev.Name == "run:second" && ev.TS == 0 {
			t.Error("second run not offset past the first")
		}
	}
}

func TestCountersSnapshotOrderAndString(t *testing.T) {
	ctr := NewCounters()
	twoJobSim(t, ctr)
	snap := ctr.Snapshot()
	if len(snap) == 0 || snap[0].Name != "task-starts" {
		t.Fatalf("snapshot order unexpected: %v", snap)
	}
	if snap[0].Value == 0 {
		t.Error("no task starts counted")
	}
	s := ctr.String()
	for _, want := range []string{"task-starts", "decisions-considered", "epochs"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

// faultedSim runs the two-job fixture under a scripted fault plan plus
// transient task faults and speculation, so every resilience event class
// fires deterministically.
func faultedSim(t *testing.T, o sim.Observer) *sim.Result {
	t.Helper()
	res, err := sim.Run(sim.Config{
		Cluster:    cluster.RealCluster(2),
		Scheduler:  sched.NewDSP(),
		Preemptor:  preempt.NewDSP(),
		Checkpoint: testCheckpoint(),
		Period:     units.Minute,
		Epoch:      units.Second,
		Faults: &sim.FaultPlan{
			Failures: []sim.NodeFailure{
				{Node: 1, At: 20 * units.Second, RecoverAfter: 10 * units.Second},
				{Node: 1, At: 60 * units.Second, RecoverAfter: 10 * units.Second},
			},
			Stragglers: []sim.Straggler{
				{Node: 0, At: 40 * units.Second, Factor: 0.1, Duration: 30 * units.Second},
			},
			Tasks: &sim.TaskFaults{Rate: 0.05, Seed: 11},
		},
		BlacklistThreshold: 1.9,
		Speculation:        &sim.Speculation{},
		Observer:           o,
	}, genWorkload(t, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestResilienceGoldenAndCounters pins the audit JSONL of a faulted run
// and cross-checks the resilience counters against the engine's result.
func TestResilienceGoldenAndCounters(t *testing.T) {
	ctr := NewCounters()
	var buf bytes.Buffer
	aw := NewAuditWriter(&buf)
	res := faultedSim(t, sim.Observers{ctr, aw})
	if err := aw.Flush(); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "audit_resilience.golden.jsonl", buf.Bytes())

	if res.Retries == 0 || res.Speculations == 0 || res.Blacklistings == 0 {
		t.Fatalf("fixture too tame: retries=%d specs=%d blacklistings=%d",
			res.Retries, res.Speculations, res.Blacklistings)
	}
	checks := []struct {
		name string
		got  int64
		want int
	}{
		{"retries", ctr.Retries.Load(), res.Retries},
		{"terminal failures", ctr.TerminalFailures.Load(), res.TerminalFailures},
		{"spec launches", ctr.SpecLaunches.Load(), res.Speculations},
		{"spec wins", ctr.SpecWins.Load(), res.SpeculationWins},
		{"spec cancels", ctr.SpecCancels.Load(), res.SpeculationCancels},
		{"blacklistings", ctr.Blacklistings.Load(), res.Blacklistings},
	}
	for _, c := range checks {
		if c.got != int64(c.want) {
			t.Errorf("counter %s = %d, result says %d", c.name, c.got, c.want)
		}
	}

	// The audit log, reparsed, agrees too.
	events := map[string]int{}
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var line map[string]any
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("audit line not valid JSON: %v\n%s", err, sc.Text())
		}
		ev, _ := line["ev"].(string)
		events[ev]++
	}
	if events["retried"] != res.Retries {
		t.Errorf("audit retried lines = %d, want %d", events["retried"], res.Retries)
	}
	if events["spec-launched"] != res.Speculations {
		t.Errorf("audit spec-launched lines = %d, want %d", events["spec-launched"], res.Speculations)
	}
	if events["blacklisted"] != res.Blacklistings {
		t.Errorf("audit blacklisted lines = %d, want %d", events["blacklisted"], res.Blacklistings)
	}
}

// TestResilienceTraceAndSeries drives the faulted fixture through the
// trace and series exporters: the trace must stay valid Chrome JSON with
// the new instant categories present, the series must grow the retry and
// speculation columns.
func TestResilienceTraceAndSeries(t *testing.T) {
	tb := NewTraceBuilder()
	sr := NewSeriesRecorder()
	faultedSim(t, sim.Observers{tb, sr})
	var buf bytes.Buffer
	if err := tb.Export(&buf); err != nil {
		t.Fatal(err)
	}
	var ct chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &ct); err != nil {
		t.Fatalf("faulted trace not valid JSON: %v", err)
	}
	cats := map[string]int{}
	for _, ev := range ct.TraceEvents {
		cats[ev.Cat]++
		if ev.Ph == "X" && ev.Dur < 0 {
			t.Errorf("span %s has negative duration", ev.Name)
		}
	}
	if cats["resilience"] == 0 || cats["speculation"] == 0 || cats["fault"] == 0 {
		t.Fatalf("trace missing resilience categories: %v", cats)
	}
	csv := sr.CSV()
	if !strings.Contains(csv, "retries") || !strings.Contains(csv, "speculations") {
		t.Errorf("series CSV missing resilience columns:\n%.200s", csv)
	}
}

func TestStartPprof(t *testing.T) {
	if addr, err := StartPprof(""); err != nil || addr != "" {
		t.Fatalf("empty addr should be a no-op, got %q, %v", addr, err)
	}
	addr, err := StartPprof("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if addr == "" || !strings.Contains(addr, ":") {
		t.Fatalf("bad bound address %q", addr)
	}
	if _, err := StartPprof("127.0.0.1:999999"); err == nil {
		t.Error("expected error for invalid port")
	}
}
