package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"dsp/internal/cluster"
	"dsp/internal/dag"
	"dsp/internal/prof"
	"dsp/internal/sim"
	"dsp/internal/units"
)

// enginePID is the synthetic trace process that carries cluster-wide
// markers (epoch ticks, run boundaries), kept clear of real node IDs.
const enginePID = 1 << 20

// profPID is the synthetic trace process that carries per-run
// scheduler-phase summary rows (see RecordPhases).
const profPID = enginePID + 1

// traceEvent is one Chrome trace-event object. Field order (and the
// sorted-key map encoding of Args) keeps the JSON byte-stable across
// runs; simulated time is microseconds, matching the format's ts unit.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type openSpan struct {
	node  cluster.NodeID
	lane  int
	start units.Time
}

// TraceBuilder converts the observer event stream into Chrome
// trace-event JSON (load the output in Perfetto, ui.perfetto.dev, or
// chrome://tracing): each node is a process, each busy slot a thread
// lane, each task occupancy a complete span. Preemptions, disorders,
// node faults and epoch ticks appear as instant events. Multi-run
// sweeps lay runs out back-to-back on the same timeline via BeginRun.
type TraceBuilder struct {
	sim.NopObserver

	events []traceEvent
	open   map[dag.Key]openSpan
	// busy tracks per-node lane occupancy: index = lane, true = in use.
	busy map[cluster.NodeID][]bool
	// lanes records the highest lane ever used per node, for metadata.
	lanes map[int]int
	// offset shifts event timestamps so consecutive runs don't overlap.
	offset units.Time
	maxTS  units.Time
	// hasPhases notes that RecordPhases emitted at least one summary row,
	// so Export names the synthetic phases process.
	hasPhases bool
}

// NewTraceBuilder returns an empty builder.
func NewTraceBuilder() *TraceBuilder {
	return &TraceBuilder{
		open:  make(map[dag.Key]openSpan),
		busy:  make(map[cluster.NodeID][]bool),
		lanes: make(map[int]int),
	}
}

// BeginRun shifts the time origin past everything recorded so far and
// drops a marker, so a sweep's runs render as consecutive segments.
func (tb *TraceBuilder) BeginRun(label string) {
	tb.offset = tb.maxTS
	tb.emit(traceEvent{
		Name: "run:" + label, Cat: "run", Ph: "i",
		TS: int64(tb.offset), PID: enginePID, TID: 0, S: "g",
	})
}

// RecordPhases lays one run's scheduler-phase breakdown on the synthetic
// "phases" process: a marker naming the run, then one complete span per
// phase whose length is the phase's exclusive total and whose args carry
// the count and latency quantiles. The row is a summary bar — phase time
// actually interleaves throughout the run it describes — appended after
// the runs recorded so far, so sweep harnesses call it once per finished
// cell and the bars line up in cell order.
func (tb *TraceBuilder) RecordPhases(label string, phases []prof.PhaseBreakdown) {
	if len(phases) == 0 {
		return
	}
	tb.hasPhases = true
	ts := tb.maxTS
	tb.emit(traceEvent{
		Name: "phases:" + label, Cat: "phase", Ph: "i",
		TS: int64(ts), PID: profPID, TID: 0, S: "t",
	})
	for _, ph := range phases {
		dur := int64(ph.TotalUS)
		if dur <= 0 {
			continue
		}
		tb.emit(traceEvent{
			Name: ph.Phase, Cat: "phase", Ph: "X",
			TS: int64(ts), Dur: dur, PID: profPID, TID: 0,
			Args: map[string]any{
				"run": label, "count": ph.Count,
				"p50_us": ph.P50US, "p95_us": ph.P95US,
				"p99_us": ph.P99US, "max_us": ph.MaxUS,
			},
		})
		ts += units.Time(dur)
	}
}

func (tb *TraceBuilder) emit(ev traceEvent) {
	tb.events = append(tb.events, ev)
	end := units.Time(ev.TS + ev.Dur)
	if end > tb.maxTS {
		tb.maxTS = end
	}
}

// laneFor claims the lowest free lane on the node.
func (tb *TraceBuilder) laneFor(node cluster.NodeID) int {
	lanes := tb.busy[node]
	for i, inUse := range lanes {
		if !inUse {
			lanes[i] = true
			return i
		}
	}
	tb.busy[node] = append(lanes, true)
	lane := len(lanes)
	if lane > tb.lanes[int(node)] {
		tb.lanes[int(node)] = lane
	}
	return lane
}

func (tb *TraceBuilder) release(node cluster.NodeID, lane int) {
	if lanes := tb.busy[node]; lane < len(lanes) {
		lanes[lane] = false
	}
}

// TaskStarted implements sim.Observer.
func (tb *TraceBuilder) TaskStarted(now units.Time, t *sim.TaskState, node cluster.NodeID) {
	if _, ok := tb.lanes[int(node)]; !ok {
		tb.lanes[int(node)] = 0 // materialize the pid for metadata
	}
	tb.open[t.Key()] = openSpan{node: node, lane: tb.laneFor(node), start: now}
}

// closeSpan emits the complete ("X") span for a task leaving its slot.
func (tb *TraceBuilder) closeSpan(now units.Time, key dag.Key, outcome string) {
	sp, ok := tb.open[key]
	if !ok {
		return
	}
	delete(tb.open, key)
	tb.release(sp.node, sp.lane)
	tb.emit(traceEvent{
		Name: key.String(), Cat: "task", Ph: "X",
		TS: int64(sp.start + tb.offset), Dur: int64(now - sp.start),
		PID: int(sp.node), TID: sp.lane,
		Args: map[string]any{"job": int(key.Job), "task": int(key.Task), "outcome": outcome},
	})
}

// TaskCompleted implements sim.Observer.
func (tb *TraceBuilder) TaskCompleted(now units.Time, t *sim.TaskState, _ cluster.NodeID) {
	tb.closeSpan(now, t.Key(), "completed")
}

// TaskPreempted implements sim.Observer.
func (tb *TraceBuilder) TaskPreempted(now units.Time, victim, starter *sim.TaskState, node cluster.NodeID) {
	sp, ok := tb.open[victim.Key()]
	lane := 0
	if ok {
		lane = sp.lane
	}
	tb.closeSpan(now, victim.Key(), "preempted")
	args := map[string]any{"victim": victim.Key().String()}
	if starter != nil {
		args["starter"] = starter.Key().String()
	}
	tb.emit(traceEvent{
		Name: "preempt", Cat: "preempt", Ph: "i",
		TS: int64(now + tb.offset), PID: int(node), TID: lane, S: "t",
		Args: args,
	})
}

// TaskEvicted implements sim.Observer: a crash eviction ends any open
// span the same instant the node goes down.
func (tb *TraceBuilder) TaskEvicted(now units.Time, t *sim.TaskState, _ cluster.NodeID) {
	tb.closeSpan(now, t.Key(), "evicted")
}

// DisorderDetected implements sim.Observer.
func (tb *TraceBuilder) DisorderDetected(now units.Time, starter, victim *sim.TaskState, node cluster.NodeID) {
	lane := 0
	if sp, ok := tb.open[victim.Key()]; ok {
		lane = sp.lane
	}
	tb.emit(traceEvent{
		Name: "disorder", Cat: "disorder", Ph: "i",
		TS: int64(now + tb.offset), PID: int(node), TID: lane, S: "t",
		Args: map[string]any{"starter": starter.Key().String(), "victim": victim.Key().String()},
	})
}

// EpochStarted implements sim.Observer: a global marker per preemption
// epoch.
func (tb *TraceBuilder) EpochStarted(now units.Time, epoch int) {
	tb.emit(traceEvent{
		Name: "epoch", Cat: "epoch", Ph: "i",
		TS: int64(now + tb.offset), PID: enginePID, TID: 0, S: "g",
		Args: map[string]any{"epoch": epoch},
	})
}

// NodeFailed implements sim.Observer.
func (tb *TraceBuilder) NodeFailed(now units.Time, node cluster.NodeID) {
	tb.emit(traceEvent{
		Name: "node-failed", Cat: "fault", Ph: "i",
		TS: int64(now + tb.offset), PID: int(node), TID: 0, S: "p",
	})
}

// NodeRecovered implements sim.Observer.
func (tb *TraceBuilder) NodeRecovered(now units.Time, node cluster.NodeID) {
	tb.emit(traceEvent{
		Name: "node-recovered", Cat: "fault", Ph: "i",
		TS: int64(now + tb.offset), PID: int(node), TID: 0, S: "p",
	})
}

// SnapshotTaken implements sim.Observer: a global marker per periodic
// crash-recovery snapshot.
func (tb *TraceBuilder) SnapshotTaken(now units.Time, period int) {
	tb.emit(traceEvent{
		Name: "snapshot", Cat: "durability", Ph: "i",
		TS: int64(now + tb.offset), PID: enginePID, TID: 0, S: "g",
		Args: map[string]any{"period": period},
	})
}

// RecoveryStarted implements sim.Observer: a global marker where a
// resumed run's roll-forward began.
func (tb *TraceBuilder) RecoveryStarted(now units.Time, period int) {
	tb.emit(traceEvent{
		Name: "recovery", Cat: "durability", Ph: "i",
		TS: int64(now + tb.offset), PID: enginePID, TID: 0, S: "g",
		Args: map[string]any{"period": period},
	})
}

// Replayed implements sim.Observer: a global marker where a resumed run
// finished verifying its write-ahead log and reached the crash point.
func (tb *TraceBuilder) Replayed(now units.Time, records int) {
	tb.emit(traceEvent{
		Name: "replayed", Cat: "durability", Ph: "i",
		TS: int64(now + tb.offset), PID: enginePID, TID: 0, S: "g",
		Args: map[string]any{"records": records},
	})
}

// TaskRetried implements sim.Observer: a transient fault ends the
// attempt's span (a crash eviction already closed it via TaskEvicted).
func (tb *TraceBuilder) TaskRetried(now units.Time, t *sim.TaskState, node cluster.NodeID, attempt int, reason sim.RetryReason) {
	tb.closeSpan(now, t.Key(), "retried")
	tb.emit(traceEvent{
		Name: "retry", Cat: "resilience", Ph: "i",
		TS: int64(now + tb.offset), PID: int(node), TID: 0, S: "t",
		Args: map[string]any{"task": t.Key().String(), "attempt": attempt, "reason": reason.String()},
	})
}

// TaskFailedTerminally implements sim.Observer.
func (tb *TraceBuilder) TaskFailedTerminally(now units.Time, t *sim.TaskState, node cluster.NodeID) {
	tb.closeSpan(now, t.Key(), "failed")
	tb.emit(traceEvent{
		Name: "terminal-failure", Cat: "resilience", Ph: "i",
		TS: int64(now + tb.offset), PID: int(node), TID: 0, S: "t",
		Args: map[string]any{"task": t.Key().String()},
	})
}

// SpeculationLaunched implements sim.Observer. Backup copies never fire
// TaskStarted (one open span per task key), so they appear as instants
// on the backup node rather than slot-lane spans.
func (tb *TraceBuilder) SpeculationLaunched(now units.Time, t *sim.TaskState, primary, backup cluster.NodeID) {
	tb.emit(traceEvent{
		Name: "spec-launched", Cat: "speculation", Ph: "i",
		TS: int64(now + tb.offset), PID: int(backup), TID: 0, S: "t",
		Args: map[string]any{"task": t.Key().String(), "primary": int(primary)},
	})
}

// SpeculationWon implements sim.Observer. The primary's span (if still
// open) is closed by the TaskCompleted the win triggers; here we only
// mark the instant on the winning node.
func (tb *TraceBuilder) SpeculationWon(now units.Time, t *sim.TaskState, winner, loser cluster.NodeID) {
	tb.closeSpan(now, t.Key(), "lost-to-backup")
	tb.emit(traceEvent{
		Name: "spec-won", Cat: "speculation", Ph: "i",
		TS: int64(now + tb.offset), PID: int(winner), TID: 0, S: "t",
		Args: map[string]any{"task": t.Key().String(), "loser": int(loser)},
	})
}

// SpeculationCancelled implements sim.Observer.
func (tb *TraceBuilder) SpeculationCancelled(now units.Time, t *sim.TaskState, backup cluster.NodeID) {
	tb.emit(traceEvent{
		Name: "spec-cancelled", Cat: "speculation", Ph: "i",
		TS: int64(now + tb.offset), PID: int(backup), TID: 0, S: "t",
		Args: map[string]any{"task": t.Key().String()},
	})
}

// NodeBlacklisted implements sim.Observer.
func (tb *TraceBuilder) NodeBlacklisted(now units.Time, node cluster.NodeID) {
	tb.emit(traceEvent{
		Name: "blacklisted", Cat: "fault", Ph: "i",
		TS: int64(now + tb.offset), PID: int(node), TID: 0, S: "p",
	})
}

// SolverDegraded implements sim.Observer: a global marker per downgrade
// along the scheduler's degradation ladder.
func (tb *TraceBuilder) SolverDegraded(now units.Time, d sim.SolverDegradation) {
	tb.emit(traceEvent{
		Name: "solver-degraded", Cat: "overload", Ph: "i",
		TS: int64(now + tb.offset), PID: enginePID, TID: 0, S: "g",
		Args: map[string]any{"from": d.From.String(), "to": d.To.String(),
			"reason": d.Reason, "pending_tasks": d.PendingTasks},
	})
}

// JobShed implements sim.Observer.
func (tb *TraceBuilder) JobShed(now units.Time, j *sim.JobState, reason sim.ShedReason) {
	tb.emit(traceEvent{
		Name: "job-shed", Cat: "overload", Ph: "i",
		TS: int64(now + tb.offset), PID: enginePID, TID: 0, S: "g",
		Args: map[string]any{"job": int(j.Dag.ID), "reason": reason.String()},
	})
}

// InvariantViolated implements sim.Observer.
func (tb *TraceBuilder) InvariantViolated(now units.Time, v sim.InvariantViolation) {
	args := map[string]any{"check": v.Check, "detail": v.Detail}
	if v.Task != nil {
		args["task"] = v.Task.Key().String()
	}
	tb.emit(traceEvent{
		Name: "invariant-violated", Cat: "audit", Ph: "i",
		TS: int64(now + tb.offset), PID: int(v.Node), TID: 0, S: "p",
		Args: args,
	})
}

// Export renders the trace as a JSON object with one event per line
// (valid Chrome trace-event format, and diff-friendly). Metadata events
// naming processes and thread lanes come first, in sorted order, so the
// output is byte-stable.
func (tb *TraceBuilder) Export(w io.Writer) error {
	// Close anything still open at the last observed instant (defensive;
	// a completed simulation leaves no open spans).
	if len(tb.open) > 0 {
		keys := make([]dag.Key, 0, len(tb.open))
		for k := range tb.open {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(a, b int) bool {
			if keys[a].Job != keys[b].Job {
				return keys[a].Job < keys[b].Job
			}
			return keys[a].Task < keys[b].Task
		})
		end := tb.maxTS
		for _, k := range keys {
			tb.closeSpan(end, k, "open-at-end")
		}
	}

	var meta []traceEvent
	meta = append(meta, traceEvent{
		Name: "process_name", Ph: "M", PID: enginePID, TID: 0,
		Args: map[string]any{"name": "engine"},
	})
	if tb.hasPhases {
		meta = append(meta, traceEvent{
			Name: "process_name", Ph: "M", PID: profPID, TID: 0,
			Args: map[string]any{"name": "phases"},
		})
	}
	pids := make([]int, 0, len(tb.lanes))
	for pid := range tb.lanes {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	for _, pid := range pids {
		meta = append(meta,
			traceEvent{Name: "process_name", Ph: "M", PID: pid, TID: 0,
				Args: map[string]any{"name": fmt.Sprintf("node%d", pid)}},
			traceEvent{Name: "process_sort_index", Ph: "M", PID: pid, TID: 0,
				Args: map[string]any{"sort_index": pid}},
		)
		for lane := 0; lane <= tb.lanes[pid]; lane++ {
			meta = append(meta, traceEvent{
				Name: "thread_name", Ph: "M", PID: pid, TID: lane,
				Args: map[string]any{"name": fmt.Sprintf("slot%d", lane)},
			})
		}
	}

	if _, err := io.WriteString(w, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	all := append(meta, tb.events...)
	for i, ev := range all {
		data, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		sep := ",\n"
		if i == len(all)-1 {
			sep = "\n"
		}
		if _, err := fmt.Fprintf(w, "%s%s", data, sep); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]}\n")
	return err
}
