package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"

	"dsp/internal/attrib"
	"dsp/internal/dag"
	"dsp/internal/trace"
)

// HTTP surface. All job routes speak JSON; error bodies are always
// {"error": "..."}. The full reference (schemas, status codes,
// Retry-After semantics) lives in OPERATIONS.md.
//
//	POST   /jobs       submit one job (trace per-job JSON layout) -> 202
//	GET    /jobs/{id}  status (+ latency blame once completed)    -> 200
//	DELETE /jobs/{id}  cancel                                     -> 202
//	GET    /metrics    Prometheus exposition   (internal/obs)
//	GET    /snapshot   telemetry JSON document (internal/obs)
//	GET    /healthz    liveness probe          (internal/obs)

// submitResponse acknowledges an accepted submission.
type submitResponse struct {
	ID int `json:"id"`
	// StampUS is the virtual arrival stamp the scheduler assigned; the
	// job becomes schedulable at the first period boundary at or after
	// it.
	StampUS int64  `json:"stamp_us"`
	Status  string `json:"status"` // always "accepted"
}

// statusResponse is the GET /jobs/{id} document.
type statusResponse struct {
	ID         int    `json:"id"`
	State      string `json:"state"`
	ArrivalUS  int64  `json:"arrival_us"`
	DoneAtUS   int64  `json:"done_at_us"` // -1 unless completed
	TasksTotal int    `json:"tasks_total"`
	TasksDone  int    `json:"tasks_done"`
	// Blame is the per-cause completion-latency attribution
	// (internal/attrib), present only for completed jobs still inside
	// the daemon's attribution retention window.
	Blame *attrib.Blame `json:"blame,omitempty"`
}

// cancelResponse acknowledges a cancellation request.
type cancelResponse struct {
	ID      int    `json:"id"`
	StampUS int64  `json:"stamp_us"`
	Status  string `json:"status"` // always "cancelling"
}

func (d *Daemon) buildMux() {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", d.handleSubmit)
	mux.HandleFunc("GET /jobs/{id}", d.handleStatus)
	mux.HandleFunc("DELETE /jobs/{id}", d.handleCancel)
	d.tel.Register(mux)
	d.mux = mux
}

func writeJSON(w http.ResponseWriter, code int, doc any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(doc) //nolint:errcheck // client went away
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// retryAfterSeconds is the 429 hint: worst-case wall time until the
// next scheduling-period boundary drains backlog, i.e. the remainder of
// the current period divided by the pacing rate, rounded up and clamped
// to at least one second.
func (d *Daemon) retryAfterSeconds() int {
	vn := d.VirtualNow()
	next := (vn/d.cfg.Period + 1) * d.cfg.Period
	wall := (next - vn).Seconds() / d.cfg.Rate
	s := int(math.Ceil(wall))
	if s < 1 {
		s = 1
	}
	return s
}

func (d *Daemon) handleSubmit(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, d.cfg.MaxBodyBytes)
	body, err := io.ReadAll(r.Body)
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeErr(w, http.StatusRequestEntityTooLarge,
				"submission body exceeds %d bytes", d.cfg.MaxBodyBytes)
			return
		}
		writeErr(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	tj, err := trace.DecodeJob(body)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	stamp, err := d.SubmitJob(tj)
	switch {
	case err == nil:
		writeJSON(w, http.StatusAccepted, submitResponse{
			ID: int(tj.DAG.ID), StampUS: int64(stamp), Status: "accepted",
		})
	case errors.Is(err, ErrBusy):
		w.Header().Set("Retry-After", strconv.Itoa(d.retryAfterSeconds()))
		writeErr(w, http.StatusTooManyRequests, "%v", err)
	case errors.Is(err, ErrDuplicate):
		writeErr(w, http.StatusConflict, "%v", err)
	case errors.Is(err, ErrShuttingDown):
		writeErr(w, http.StatusServiceUnavailable, "%v", err)
	default:
		// Engine-side validation (malformed DAG, unknown dependency...).
		writeErr(w, http.StatusBadRequest, "%v", err)
	}
}

// pathID parses the {id} segment.
func pathID(r *http.Request) (dag.JobID, error) {
	n, err := strconv.Atoi(r.PathValue("id"))
	if err != nil || n < 0 {
		return 0, fmt.Errorf("job id must be a non-negative integer, got %q", r.PathValue("id"))
	}
	return dag.JobID(n), nil
}

func (d *Daemon) handleStatus(w http.ResponseWriter, r *http.Request) {
	id, err := pathID(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	st, att, ok := d.Status(id)
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown job id %d", id)
		return
	}
	resp := statusResponse{
		ID:         int(st.ID),
		State:      st.State,
		ArrivalUS:  int64(st.Arrival),
		DoneAtUS:   int64(st.DoneAt),
		TasksTotal: st.TasksTotal,
		TasksDone:  st.TasksDone,
	}
	if att != nil {
		b := att.Blame
		resp.Blame = &b
	}
	writeJSON(w, http.StatusOK, resp)
}

func (d *Daemon) handleCancel(w http.ResponseWriter, r *http.Request) {
	id, err := pathID(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	stamp, err := d.CancelJob(id)
	switch {
	case err == nil:
		writeJSON(w, http.StatusAccepted, cancelResponse{
			ID: int(id), StampUS: int64(stamp), Status: "cancelling",
		})
	case errors.Is(err, ErrUnknownJob):
		writeErr(w, http.StatusNotFound, "%v", err)
	case errors.Is(err, ErrShuttingDown):
		writeErr(w, http.StatusServiceUnavailable, "%v", err)
	default:
		writeErr(w, http.StatusBadRequest, "%v", err)
	}
}
