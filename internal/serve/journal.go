package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"dsp/internal/trace"
)

// The submission journal is the daemon's ingestion write-ahead log: one
// JSON line per accepted submission or cancellation, appended and
// fsynced before the client sees its 202. Engine snapshots deliberately
// exclude undrained submissions; they record only how many journal
// entries had been drained into the world (EngineState.IngestApplied).
// Resume therefore rebuilds the pre-snapshot world from the first
// IngestApplied entries and replays the rest through
// SubmitStamped/CancelStamped — the journal, not the snapshot, is the
// source of truth for what was accepted.
//
// The file lives beside the recover package's snapshot/WAL generations
// in the checkpoint directory but is managed here: recover's
// generation pruning never touches it, and a fresh (non-resume) start
// truncates it along with NewManager clearing old checkpoint files.

// journalFile is the fixed name inside the checkpoint directory.
const journalFile = "submissions.jsonl"

// journalEntry is one accepted ingestion operation.
type journalEntry struct {
	// Op is "submit" or "cancel".
	Op string `json:"op"`
	// StampUS is the virtual arrival stamp the engine assigned.
	StampUS int64 `json:"stamp_us"`
	// ID is the cancellation target (submit entries carry the ID inside
	// Job).
	ID int `json:"id,omitempty"`
	// Job is the stamped submission body for submit entries — exactly
	// what trace.EncodeJob produced after Submit rewrote the arrival, so
	// replaying it reproduces the original world byte-identically.
	Job json.RawMessage `json:"job,omitempty"`
}

// journal is an append-only, fsync-on-append entry log.
type journal struct {
	f *os.File
}

func journalPath(dir string) string { return filepath.Join(dir, journalFile) }

// createJournal starts a fresh journal, truncating any previous one —
// the non-resume counterpart of recover.NewManager clearing snapshots.
func createJournal(dir string) (*journal, error) {
	f, err := os.OpenFile(journalPath(dir), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("serve: create journal: %w", err)
	}
	return &journal{f: f}, nil
}

// openJournal opens an existing journal for appending (resume). A
// missing file is fine — the daemon was killed before the first
// accepted submission.
func openJournal(dir string) (*journal, error) {
	f, err := os.OpenFile(journalPath(dir), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("serve: open journal: %w", err)
	}
	return &journal{f: f}, nil
}

// append writes one entry and forces it to stable storage. An error
// here must latch the daemon fatal: acknowledging a submission that is
// not durable would let a crash silently drop an accepted job.
func (j *journal) append(e journalEntry) error {
	b, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("serve: journal encode: %w", err)
	}
	b = append(b, '\n')
	if _, err := j.f.Write(b); err != nil {
		return fmt.Errorf("serve: journal write: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("serve: journal sync: %w", err)
	}
	return nil
}

func (j *journal) Close() error {
	if j == nil || j.f == nil {
		return nil
	}
	return j.f.Close()
}

// readJournal loads every complete entry from dir's journal, in append
// order. A torn final line — the process was killed mid-append, before
// the fsync that would have acknowledged it — is dropped; any earlier
// malformed line is corruption and an error. A missing file yields an
// empty log.
func readJournal(dir string) ([]journalEntry, error) {
	f, err := os.Open(journalPath(dir))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("serve: read journal: %w", err)
	}
	defer f.Close()
	var entries []journalEntry
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	torn := false
	for sc.Scan() {
		if torn {
			return nil, fmt.Errorf("serve: journal corrupt: undecodable entry %d is not the final line", len(entries))
		}
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e journalEntry
		if err := json.Unmarshal(line, &e); err != nil {
			torn = true // acceptable only if nothing follows
			continue
		}
		entries = append(entries, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("serve: read journal: %w", err)
	}
	return entries, nil
}

// decodeSubmission rebuilds the trace.Job of a submit entry.
func decodeSubmission(e journalEntry) (*trace.Job, error) {
	tj, err := trace.DecodeJob(e.Job)
	if err != nil {
		return nil, fmt.Errorf("serve: journal job: %w", err)
	}
	return tj, nil
}
