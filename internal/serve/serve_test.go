package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"testing"

	"dsp/internal/dag"
	"dsp/internal/sim"
	"dsp/internal/trace"
	"dsp/internal/units"
)

// testConfig is a daemon with short periods and no pacer use: tests
// drive virtual time explicitly through Step, so every stamp and drain
// is deterministic.
func testConfig() Config {
	return Config{
		Period: 10 * units.Second,
		Epoch:  5 * units.Second,
	}
}

func newTestDaemon(t *testing.T, cfg Config) *Daemon {
	t.Helper()
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// jobBody builds a submission body: `tasks` independent tasks of
// sizeMI each.
func jobBody(t *testing.T, id, tasks int, sizeMI float64) []byte {
	t.Helper()
	j := dag.NewJob(dag.JobID(id), tasks)
	for i := 0; i < tasks; i++ {
		tk := j.Task(dag.TaskID(i))
		tk.Size = sizeMI
		tk.Demand = dag.Resources{CPU: 1, Mem: 1, DiskMB: 10, Bandwidth: 10}
	}
	b, err := trace.EncodeJob(&trace.Job{Class: trace.Small, DAG: j})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func do(d *Daemon, method, path string, body []byte) *httptest.ResponseRecorder {
	req := httptest.NewRequest(method, path, bytes.NewReader(body))
	w := httptest.NewRecorder()
	d.Handler().ServeHTTP(w, req)
	return w
}

func TestHandlerErrors(t *testing.T) {
	cfg := testConfig()
	cfg.MaxBodyBytes = 512
	d := newTestDaemon(t, cfg)

	if w := do(d, "POST", "/jobs", []byte("{not json")); w.Code != http.StatusBadRequest {
		t.Errorf("bad JSON: code %d, want 400", w.Code)
	}
	big := bytes.Repeat([]byte("x"), 2048)
	if w := do(d, "POST", "/jobs", big); w.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: code %d, want 413", w.Code)
	}
	if w := do(d, "GET", "/jobs/42", nil); w.Code != http.StatusNotFound {
		t.Errorf("unknown job status: code %d, want 404", w.Code)
	}
	if w := do(d, "DELETE", "/jobs/42", nil); w.Code != http.StatusNotFound {
		t.Errorf("unknown job cancel: code %d, want 404", w.Code)
	}
	if w := do(d, "GET", "/jobs/banana", nil); w.Code != http.StatusBadRequest {
		t.Errorf("non-numeric id: code %d, want 400", w.Code)
	}

	body := jobBody(t, 1, 2, 1000)
	if w := do(d, "POST", "/jobs", body); w.Code != http.StatusAccepted {
		t.Fatalf("submit: code %d, want 202: %s", w.Code, w.Body)
	}
	if w := do(d, "POST", "/jobs", body); w.Code != http.StatusConflict {
		t.Errorf("duplicate submit: code %d, want 409", w.Code)
	}
	// Cancel twice: both accepted (idempotent for known jobs).
	if w := do(d, "DELETE", "/jobs/1", nil); w.Code != http.StatusAccepted {
		t.Errorf("cancel: code %d, want 202: %s", w.Code, w.Body)
	}
	if w := do(d, "DELETE", "/jobs/1", nil); w.Code != http.StatusAccepted {
		t.Errorf("double cancel: code %d, want 202: %s", w.Code, w.Body)
	}
}

func TestStatusDocument(t *testing.T) {
	d := newTestDaemon(t, testConfig())
	if w := do(d, "POST", "/jobs", jobBody(t, 3, 1, 1000)); w.Code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", w.Code, w.Body)
	}
	var st statusResponse
	w := do(d, "GET", "/jobs/3", nil)
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.ID != 3 || st.State != "accepted" || st.TasksTotal != 1 {
		t.Errorf("pre-drain status = %+v", st)
	}
	// Run the job to completion: the status flips to completed and
	// carries its latency attribution.
	if err := d.Step(40 * units.Second); err != nil {
		t.Fatal(err)
	}
	w = do(d, "GET", "/jobs/3", nil)
	st = statusResponse{}
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.State != "completed" || st.TasksDone != 1 {
		t.Fatalf("final status = %+v, want completed 1/1", st)
	}
	if st.Blame == nil {
		t.Error("completed status missing blame attribution")
	}
}

// TestBackpressure checks the 429 threshold is exact: submissions are
// rejected precisely when backlog + ingest-queue + new tasks would
// exceed MaxPendingTasks, and the response carries Retry-After.
func TestBackpressure(t *testing.T) {
	cfg := testConfig()
	cfg.MaxPendingTasks = 4
	d := newTestDaemon(t, cfg)

	if w := do(d, "POST", "/jobs", jobBody(t, 0, 3, 50000)); w.Code != http.StatusAccepted {
		t.Fatalf("3 tasks into bound 4: code %d, want 202: %s", w.Code, w.Body)
	}
	// 3 queued + 2 new = 5 > 4: rejected.
	w := do(d, "POST", "/jobs", jobBody(t, 1, 2, 1000))
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("5 > 4: code %d, want 429: %s", w.Code, w.Body)
	}
	ra, err := strconv.Atoi(w.Result().Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Errorf("Retry-After = %q, want an integer >= 1", w.Result().Header.Get("Retry-After"))
	}
	// 3 + 1 = 4 == bound: still admitted — the bound is inclusive.
	if w := do(d, "POST", "/jobs", jobBody(t, 2, 1, 1000)); w.Code != http.StatusAccepted {
		t.Errorf("4 == 4: code %d, want 202: %s", w.Code, w.Body)
	}
	// And now any task is one too many.
	if w := do(d, "POST", "/jobs", jobBody(t, 3, 1, 1000)); w.Code != http.StatusTooManyRequests {
		t.Errorf("5 > 4: code %d, want 429: %s", w.Code, w.Body)
	}
}

// submitDirect pushes a prebuilt body through the HTTP path and fails
// the test on anything but 202.
func submitDirect(t *testing.T, d *Daemon, id, tasks int, sizeMI float64) {
	t.Helper()
	if w := do(d, "POST", "/jobs", jobBody(t, id, tasks, sizeMI)); w.Code != http.StatusAccepted {
		t.Fatalf("submit %d: code %d: %s", id, w.Code, w.Body)
	}
}

// TestKillAndResume drives two daemons through the same submission
// script; one is killed (WAL buffers dropped, no drain — the crash
// idiom from internal/recover/crashtest) mid-run and resumed. Job
// statuses and terminal metrics must match the uninterrupted run
// exactly.
func TestKillAndResume(t *testing.T) {
	dirA, dirR := t.TempDir(), t.TempDir()
	mk := func(dir string, resume bool) *Daemon {
		cfg := testConfig()
		cfg.CheckpointDir = dir
		cfg.Resume = resume
		cfg.SnapshotEveryK = 1
		return newTestDaemon(t, cfg)
	}
	a, r := mk(dirA, false), mk(dirR, false)

	// Identical pre-kill script on both daemons. Job 2 is cancelled;
	// job 3 is submitted after the last pre-kill snapshot boundary, so
	// resume must replay it from the journal tail.
	script := func(d *Daemon) {
		submitDirect(t, d, 0, 3, 20000)
		submitDirect(t, d, 1, 2, 8000)
		if err := d.Step(10 * units.Second); err != nil {
			t.Fatal(err)
		}
		submitDirect(t, d, 2, 1, 90000)
		if err := d.Step(20 * units.Second); err != nil {
			t.Fatal(err)
		}
		if w := do(d, "DELETE", "/jobs/2", nil); w.Code != http.StatusAccepted {
			t.Fatalf("cancel: %d %s", w.Code, w.Body)
		}
		submitDirect(t, d, 3, 2, 5000)
		if err := d.Step(25*units.Second - 1); err != nil {
			t.Fatal(err)
		}
	}
	script(a)
	script(r)

	// Crash A: drop buffered WAL records, abandon the daemon without a
	// drain. Only fsynced bytes (every journal entry, snapshots up to
	// the 20 s boundary) survive.
	a.mgr.Kill()
	a.jl.Close() //nolint:errcheck // crash path

	a2 := mk(dirA, true)
	const horizon = 60 * units.Second
	if err := a2.Step(horizon); err != nil {
		t.Fatal(err)
	}
	if err := r.Step(horizon); err != nil {
		t.Fatal(err)
	}
	for id := dag.JobID(0); id <= 3; id++ {
		ja, oka := statusOf(a2, id)
		jr, okr := statusOf(r, id)
		if !oka || !okr {
			t.Fatalf("job %d: present resumed=%v reference=%v", id, oka, okr)
		}
		if !reflect.DeepEqual(ja, jr) {
			t.Errorf("job %d: resumed %+v != reference %+v", id, ja, jr)
		}
	}

	resA, errA := a2.Drain()
	resR, errR := r.Drain()
	if errA != nil || errR != nil {
		t.Fatalf("drain: resumed %v, reference %v", errA, errR)
	}
	if resA.JobsCompleted != resR.JobsCompleted ||
		resA.JobsFailed != resR.JobsFailed ||
		resA.JobsShed != resR.JobsShed ||
		resA.JobsCancelled != resR.JobsCancelled ||
		resA.Makespan != resR.Makespan {
		t.Errorf("terminal metrics diverge:\nresumed   %+v\nreference %+v", resA, resR)
	}
}

func statusOf(d *Daemon, id dag.JobID) (sim.JobStatus, bool) {
	st, _, ok := d.Status(id)
	return st, ok
}
