// Package serve is the scheduler-as-a-service layer: a long-running
// daemon that wraps one streaming sim.Engine behind an HTTP/JSON
// ingestion API, paces its virtual clock against wall time, and wires
// in the repo's durability (internal/recover), observability
// (internal/obs, internal/attrib) and profiling (internal/prof)
// subsystems.
//
// Threading model: one mutex serializes every touch of the engine — the
// pacer goroutine's StepUntil, HTTP submissions/cancellations/status
// reads, and the final drain. The engine stays single-threaded exactly
// as the batch simulator assumes; concurrency lives entirely on this
// side of the lock. Telemetry scrapes (/metrics, /snapshot) bypass the
// lock by design: counters are atomic and the attribution recorder
// locks internally.
//
// Durability contract: a submission is acknowledged (HTTP 202) only
// after it is (a) accepted and stamped by the engine and (b) appended
// and fsynced to the submission journal — in that order, under the
// lock, so every entry the engine ever drains is already durable. A
// journal write failure latches the daemon fatal: it stops accepting
// work rather than acknowledge submissions a crash would silently drop.
// Resume splices the journal at EngineState.IngestApplied: the first
// IngestApplied entries rebuild the snapshot's world, the rest replay
// through SubmitStamped/CancelStamped.
package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dsp/internal/attrib"
	"dsp/internal/cluster"
	"dsp/internal/dag"
	"dsp/internal/experiments"
	"dsp/internal/obs"
	"dsp/internal/prof"
	"dsp/internal/recover"
	"dsp/internal/sim"
	"dsp/internal/trace"
	"dsp/internal/units"
)

// Sentinel errors the HTTP layer maps to status codes.
var (
	// ErrBusy is backpressure: admitting the job would push the pending
	// backlog (scheduled world + undrained ingestion queue) past the
	// configured bound. Clients should retry after the next scheduling
	// period.
	ErrBusy = errors.New("serve: pending-task backlog full")
	// ErrDuplicate rejects a submission whose job ID is already known.
	ErrDuplicate = errors.New("serve: duplicate job id")
	// ErrUnknownJob rejects an operation on a never-submitted job ID.
	ErrUnknownJob = errors.New("serve: unknown job id")
	// ErrShuttingDown rejects ingestion once the daemon begins draining.
	ErrShuttingDown = errors.New("serve: shutting down")
)

// attribRetention bounds the per-job attribution history the daemon
// keeps for GET /jobs/{id} blame reporting. Aggregates (served on
// /metrics) still cover every completion.
const attribRetention = 4096

// Config parameterizes a Daemon.
type Config struct {
	// Listen is the TCP address Run binds ("127.0.0.1:8080"; ":0" picks
	// an ephemeral port, see Addr).
	Listen string
	// CheckpointDir, when set, enables durability: periodic engine
	// snapshots + decision WAL (internal/recover) and the submission
	// journal, all in this directory.
	CheckpointDir string
	// Resume restarts from CheckpointDir's latest snapshot and journal
	// instead of starting fresh. The scheduling configuration (platform,
	// scheduler, preemptor, period, epoch, admission bound) must match
	// the original run's; the snapshot world fingerprint rejects
	// mismatched worlds.
	Resume bool
	// SnapshotEveryK snapshots every k-th scheduling period (default 3).
	SnapshotEveryK int
	// Scheduler and Preemptor name the methods (experiments registry
	// names). Preemptor "" disables the online preemption phase.
	Scheduler string
	Preemptor string
	// Platform selects the cluster profile.
	Platform experiments.Platform
	// Period and Epoch are the scheduling intervals (defaults: the
	// paper's 5 minutes and 10 seconds).
	Period units.Time
	Epoch  units.Time
	// MaxPendingTasks bounds the cluster-wide backlog of unfinished
	// admitted tasks. Beyond HTTP backpressure (429) it also arms the
	// engine's own admission control, so jobs that slip past the HTTP
	// check under race still shed rather than grow the queues without
	// bound. 0 disables both.
	MaxPendingTasks int
	// Rate is the virtual-per-wall time multiplier for the pacer: 1
	// serves in real time, 60 compresses a minute of simulated time into
	// a wall second (default 1).
	Rate float64
	// MaxBodyBytes caps a submission body (default 1 MiB).
	MaxBodyBytes int64
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

// Daemon is one serving instance: a streaming engine plus its pacer,
// HTTP surface, telemetry and durability sinks.
type Daemon struct {
	cfg Config

	mu    sync.Mutex // serializes all engine access
	eng   *sim.Engine
	jl    *journal
	fatal error // latched first unrecoverable error
	done  bool  // drain finished; sinks closed

	counters *obs.Counters
	rec      *attrib.Recorder
	tm       *prof.Timer
	tel      *obs.Server
	mgr      *recover.Manager

	interrupt atomic.Bool // engine stop flag (second-signal path)
	draining  atomic.Bool // refuses new ingestion during drain
	pacerOff  chan struct{}
	stopPacer sync.Once

	mux *http.ServeMux

	wallStart time.Time  // pacing origin (wall)
	virtStart units.Time // pacing origin (virtual; snapshot Now on resume)

	ln  net.Listener
	srv *http.Server
}

// New builds a Daemon: fresh when cfg.Resume is false, otherwise
// restored from cfg.CheckpointDir's snapshot + journal.
func New(cfg Config) (*Daemon, error) {
	if cfg.Listen == "" {
		cfg.Listen = "127.0.0.1:8080"
	}
	if cfg.SnapshotEveryK <= 0 {
		cfg.SnapshotEveryK = 3
	}
	if cfg.Scheduler == "" {
		cfg.Scheduler = "DSP"
	}
	if cfg.Period <= 0 {
		cfg.Period = 5 * units.Minute
	}
	if cfg.Epoch <= 0 {
		cfg.Epoch = 10 * units.Second
	}
	if cfg.Rate <= 0 {
		cfg.Rate = 1
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	if cfg.Resume && cfg.CheckpointDir == "" {
		return nil, fmt.Errorf("serve: -resume requires a checkpoint dir")
	}

	d := &Daemon{
		cfg:      cfg,
		counters: obs.NewCounters(),
		rec:      attrib.NewRecorder(),
		tm:       prof.New(),
		pacerOff: make(chan struct{}),
	}
	d.rec.SetRetention(attribRetention)
	d.tel = obs.NewTelemetry(d.counters, d.rec, d.tm)

	simCfg, err := d.buildSimConfig()
	if err != nil {
		return nil, err
	}
	if err := d.buildEngine(simCfg); err != nil {
		return nil, err
	}
	d.buildMux()
	d.wallStart = time.Now()
	return d, nil
}

// buildSimConfig translates the daemon Config into the engine's,
// leaving Observer/Durability for buildEngine (they depend on whether a
// recover.Manager exists).
func (d *Daemon) buildSimConfig() (sim.Config, error) {
	sc := sim.Config{
		Cluster:    d.cfg.Platform.Cluster(),
		Period:     d.cfg.Period,
		Epoch:      d.cfg.Epoch,
		Checkpoint: cluster.DefaultCheckpoint(),
		Streaming:  true,
		Prof:       d.tm,
		Interrupt:  &d.interrupt,
	}
	var err error
	if sc.Scheduler, err = experiments.NewScheduler(d.cfg.Scheduler); err != nil {
		return sc, err
	}
	if d.cfg.Preemptor != "" {
		if sc.Preemptor, sc.Checkpoint, err = experiments.NewPreemptor(d.cfg.Preemptor); err != nil {
			return sc, err
		}
	}
	if d.cfg.MaxPendingTasks > 0 {
		sc.Admission = &sim.Admission{MaxPendingTasks: d.cfg.MaxPendingTasks}
	}
	return sc, nil
}

// observers assembles the engine observer chain. The recover.Manager —
// when present — goes last, so WAL records follow any state the other
// observers derive from the same event.
func (d *Daemon) observers() sim.Observers {
	return sim.Observers{d.counters, d.rec, d.tel}
}

// buildEngine constructs the engine on the fresh or resume path.
func (d *Daemon) buildEngine(simCfg sim.Config) error {
	if d.cfg.CheckpointDir == "" {
		simCfg.Observer = d.observers()
		eng, err := sim.Prepare(simCfg, &trace.Workload{})
		if err != nil {
			return err
		}
		d.eng = eng
		return nil
	}
	if !d.cfg.Resume {
		mgr, err := recover.NewManager(d.cfg.CheckpointDir, d.cfg.SnapshotEveryK)
		if err != nil {
			return err
		}
		jl, err := createJournal(d.cfg.CheckpointDir)
		if err != nil {
			return err
		}
		d.mgr, d.jl = mgr, jl
		mgr.Peer = d.observers()
		simCfg.Observer = append(d.observers(), mgr)
		simCfg.Durability = mgr
		eng, err := sim.Prepare(simCfg, &trace.Workload{})
		if err != nil {
			return err
		}
		d.eng = eng
		return nil
	}
	return d.resumeEngine(simCfg)
}

// resumeEngine restores engine state from the checkpoint directory:
// snapshot + WAL roll-forward for the drained world, then journal-tail
// replay for submissions the snapshot had not ingested. When no usable
// snapshot exists (killed before the first one), the whole journal
// replays into a fresh engine — the journal alone is sufficient.
func (d *Daemon) resumeEngine(simCfg sim.Config) error {
	entries, err := readJournal(d.cfg.CheckpointDir)
	if err != nil {
		return err
	}
	mgr, st, err := recover.Resume(d.cfg.CheckpointDir, d.cfg.SnapshotEveryK)
	if errors.Is(err, recover.ErrNoSnapshot) {
		// NewManager clears stale snapshot/WAL generations only; the
		// journal file is ours and survives.
		if mgr, err = recover.NewManager(d.cfg.CheckpointDir, d.cfg.SnapshotEveryK); err != nil {
			return err
		}
		st = nil
	} else if err != nil {
		return err
	}
	d.mgr = mgr
	mgr.Peer = d.observers()
	chain := append(d.observers(), mgr)
	simCfg.Observer = chain
	simCfg.Durability = mgr

	applied := 0
	if st != nil {
		applied = st.IngestApplied
	}
	if applied > len(entries) {
		return fmt.Errorf("serve: snapshot drained %d journal entries but only %d are on disk", applied, len(entries))
	}
	var w trace.Workload
	for _, e := range entries[:applied] {
		if e.Op != "submit" {
			continue
		}
		tj, err := decodeSubmission(e)
		if err != nil {
			return err
		}
		w.Jobs = append(w.Jobs, tj)
	}
	var eng *sim.Engine
	if st != nil {
		if eng, err = sim.PrepareResume(simCfg, &w, st); err != nil {
			return err
		}
		d.virtStart = st.Now
		chain.RecoveryStarted(st.Now, st.PeriodIndex)
	} else {
		if eng, err = sim.Prepare(simCfg, &trace.Workload{}); err != nil {
			return err
		}
	}
	for i, e := range entries[applied:] {
		switch e.Op {
		case "submit":
			tj, err := decodeSubmission(e)
			if err != nil {
				return err
			}
			err = eng.SubmitStamped(tj, units.Time(e.StampUS))
			if err != nil {
				return fmt.Errorf("serve: journal entry %d: %w", applied+i, err)
			}
		case "cancel":
			if err := eng.CancelStamped(dag.JobID(e.ID), units.Time(e.StampUS)); err != nil {
				return fmt.Errorf("serve: journal entry %d: %w", applied+i, err)
			}
		default:
			return fmt.Errorf("serve: journal entry %d: unknown op %q", applied+i, e.Op)
		}
	}
	if jl, err := openJournal(d.cfg.CheckpointDir); err != nil {
		return err
	} else {
		d.jl = jl
	}
	d.eng = eng
	d.logf("resumed: %d journal entries (%d pre-snapshot), virtual clock %.1fs",
		len(entries), applied, d.virtStart.Seconds())
	return nil
}

func (d *Daemon) logf(format string, args ...any) {
	if d.cfg.Logf != nil {
		d.cfg.Logf(format, args...)
	}
}

// VirtualNow maps wall time onto the virtual clock: the pacer target.
func (d *Daemon) VirtualNow() units.Time {
	wall := time.Since(d.wallStart)
	return d.virtStart + units.Time(float64(wall.Microseconds())*d.cfg.Rate)
}

// Step advances the engine's virtual clock to target, firing every
// event due on the way. Exported for deterministic tests and the
// pacer; HTTP serving alone never needs it.
func (d *Daemon) Step(target units.Time) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.fatal != nil {
		return d.fatal
	}
	before := d.eng.PeriodIndex()
	t0 := time.Now()
	_, err := d.eng.StepUntil(target)
	if d.eng.PeriodIndex() > before {
		// Serving-period latency: wall time of a Step that crossed at
		// least one scheduling-period boundary. Recorded as a direct
		// sample — it OVERLAPS the exclusive engine phases (plan-build
		// etc.) rather than tiling with them; see PERF.md.
		d.tm.Observe(prof.PhaseServePeriod, time.Since(t0).Nanoseconds())
	}
	if err != nil {
		d.fatal = err
	}
	return err
}

// tickInterval picks the pacer's wall-clock tick so several ticks land
// inside each scheduling period (latency samples stay per-period, and
// ingestion drains promptly), clamped to [10ms, 200ms].
func (d *Daemon) tickInterval() time.Duration {
	wallPerPeriod := time.Duration(float64(d.cfg.Period.Seconds())/d.cfg.Rate*1e9) * time.Nanosecond
	iv := wallPerPeriod / 8
	if iv < 10*time.Millisecond {
		iv = 10 * time.Millisecond
	}
	if iv > 200*time.Millisecond {
		iv = 200 * time.Millisecond
	}
	return iv
}

func (d *Daemon) pace(errc chan<- error) {
	t := time.NewTicker(d.tickInterval())
	defer t.Stop()
	for {
		select {
		case <-d.pacerOff:
			return
		case <-t.C:
			if err := d.Step(d.VirtualNow()); err != nil {
				errc <- err
				return
			}
		}
	}
}

func (d *Daemon) haltPacer() {
	d.stopPacer.Do(func() { close(d.pacerOff) })
}

// SubmitJob runs the full ingestion path: backpressure check, engine
// accept + stamp, journal append + fsync — all under the lock, so every
// drained entry is already durable. Returns the assigned virtual
// arrival stamp.
func (d *Daemon) SubmitJob(tj *trace.Job) (units.Time, error) {
	if d.draining.Load() {
		return 0, ErrShuttingDown
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.fatal != nil {
		return 0, fmt.Errorf("%w: %v", ErrShuttingDown, d.fatal)
	}
	if tj != nil && tj.DAG != nil {
		if _, known := d.eng.JobStatus(tj.DAG.ID); known {
			return 0, fmt.Errorf("%w: %d", ErrDuplicate, tj.DAG.ID)
		}
		if bound := d.cfg.MaxPendingTasks; bound > 0 {
			if d.eng.PendingBacklog()+d.eng.IngestTaskCount()+tj.DAG.Len() > bound {
				return 0, ErrBusy
			}
		}
	}
	stamp, err := d.eng.Submit(tj)
	if err != nil {
		return 0, err
	}
	if d.jl != nil {
		raw, jerr := trace.EncodeJob(tj) // Arrival now carries the stamp
		if jerr == nil {
			jerr = d.jl.append(journalEntry{Op: "submit", StampUS: int64(stamp), Job: raw})
		}
		if jerr != nil {
			d.fatal = jerr
			return 0, jerr
		}
	}
	return stamp, nil
}

// CancelJob queues a cancellation for id. Idempotent for known jobs
// (cancelling a settled or already-cancelled job is a no-op).
func (d *Daemon) CancelJob(id dag.JobID) (units.Time, error) {
	if d.draining.Load() {
		return 0, ErrShuttingDown
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.fatal != nil {
		return 0, fmt.Errorf("%w: %v", ErrShuttingDown, d.fatal)
	}
	if _, known := d.eng.JobStatus(id); !known {
		return 0, fmt.Errorf("%w: %d", ErrUnknownJob, id)
	}
	stamp, err := d.eng.RequestCancel(id)
	if err != nil {
		return 0, err
	}
	if d.jl != nil {
		if jerr := d.jl.append(journalEntry{Op: "cancel", StampUS: int64(stamp), ID: int(id)}); jerr != nil {
			d.fatal = jerr
			return 0, jerr
		}
	}
	return stamp, nil
}

// Status returns the job's engine-visible status plus — for completed
// jobs still inside the attribution retention window — its latency
// blame breakdown.
func (d *Daemon) Status(id dag.JobID) (sim.JobStatus, *attrib.JobAttribution, bool) {
	d.mu.Lock()
	st, ok := d.eng.JobStatus(id)
	d.mu.Unlock()
	if !ok {
		return st, nil, false
	}
	if st.State == "completed" {
		for _, att := range d.rec.Jobs() {
			if att.Job == id {
				a := att
				return st, &a, true
			}
		}
	}
	return st, nil, true
}

// IdleNow reports whether every drained job has settled and no
// submission is queued (replay mode polls it to know when to drain).
func (d *Daemon) IdleNow() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.eng.Idle()
}

// WaitIdle blocks until the engine goes idle (or ctx ends): replay mode
// uses it to know when everything submitted has settled.
func (d *Daemon) WaitIdle(ctx context.Context) {
	t := time.NewTicker(d.tickInterval())
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if d.IdleNow() {
				return
			}
		}
	}
}

// Interrupt makes the next engine step stop at an inter-event boundary,
// take a final durability snapshot and fail with sim.ErrInterrupted —
// the "second signal" hard-stop path. The checkpoint directory stays
// resumable.
func (d *Daemon) Interrupt() { d.interrupt.Store(true) }

// Handler exposes the daemon's full HTTP surface (job routes +
// telemetry) without binding a listener, for tests.
func (d *Daemon) Handler() http.Handler { return d.mux }

// Addr returns the bound listen address once Run has started.
func (d *Daemon) Addr() string {
	if d.ln == nil {
		return ""
	}
	return d.ln.Addr().String()
}

// Run serves until ctx is cancelled (graceful drain: stop accepting,
// finish every queued and in-flight job at CPU speed, close the
// durability sinks, return the final metrics) or a step fails. On
// sim.ErrInterrupted the final snapshot is already on disk and the
// error is returned for the caller to map to its exit status.
func (d *Daemon) Run(ctx context.Context) (*sim.Result, error) {
	ln, err := net.Listen("tcp", d.cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("serve: listen %s: %w", d.cfg.Listen, err)
	}
	d.ln = ln
	d.srv = &http.Server{Handler: d.mux, ReadHeaderTimeout: 5 * time.Second}
	serveErr := make(chan error, 1)
	go func() { serveErr <- d.srv.Serve(ln) }()
	stepErr := make(chan error, 1)
	go d.pace(stepErr)
	d.logf("serving on %s (rate %gx, period %.0fs)", d.Addr(), d.cfg.Rate, d.cfg.Period.Seconds())

	var cause error
	select {
	case <-ctx.Done():
	case err := <-serveErr:
		cause = fmt.Errorf("serve: http: %w", err)
	case err := <-stepErr:
		cause = err
	}
	d.draining.Store(true)
	d.haltPacer()
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	d.srv.Shutdown(shutCtx) //nolint:errcheck // in-flight requests get the timeout
	res, derr := d.Drain()
	if cause != nil {
		return res, cause
	}
	return res, derr
}

// Drain finishes the streaming run: ingestion closes, everything queued
// runs to completion at CPU speed, and the durability sinks close.
// Safe to call once directly in tests (Run calls it on the way out).
func (d *Daemon) Drain() (*sim.Result, error) {
	d.draining.Store(true)
	d.haltPacer()
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.done {
		return nil, d.fatal
	}
	d.done = true
	var res *sim.Result
	var err error
	if d.fatal != nil {
		err = d.fatal
	} else {
		res, err = d.eng.FinishStreaming()
		if err != nil {
			d.fatal = err
		}
	}
	if d.mgr != nil {
		if cerr := d.mgr.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if cerr := d.jl.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return res, err
}

// Profile returns the daemon's phase-timing snapshot (the serve-period
// distribution lives under prof.PhaseServePeriod).
func (d *Daemon) Profile() []prof.PhaseBreakdown {
	snap := d.tm.Snapshot()
	return snap.Breakdown()
}

// Replay submits w's jobs through the normal ingestion path, pacing
// each submission so it lands near its recorded arrival stamp on the
// daemon's virtual clock. Backpressure (ErrBusy) retries after a
// scheduling period; other errors abort. Returns the number of jobs
// accepted.
func (d *Daemon) Replay(ctx context.Context, w *trace.Workload) (int, error) {
	jobs := append([]*trace.Job(nil), w.Jobs...)
	sort.SliceStable(jobs, func(i, j int) bool { return jobs[i].Arrival < jobs[j].Arrival })
	retryWall := time.Duration(float64(d.cfg.Period.Seconds())/d.cfg.Rate*1e9) * time.Nanosecond
	accepted := 0
	for _, tj := range jobs {
		for d.VirtualNow() < tj.Arrival {
			wait := time.Duration(float64((tj.Arrival - d.VirtualNow()).Seconds()) / d.cfg.Rate * 1e9)
			if wait < time.Millisecond {
				wait = time.Millisecond
			}
			select {
			case <-ctx.Done():
				return accepted, ctx.Err()
			case <-time.After(wait):
			}
		}
		for {
			_, err := d.SubmitJob(tj)
			if err == nil {
				accepted++
				break
			}
			if !errors.Is(err, ErrBusy) {
				return accepted, fmt.Errorf("serve: replay job %d: %w", tj.DAG.ID, err)
			}
			select {
			case <-ctx.Done():
				return accepted, ctx.Err()
			case <-time.After(retryWall):
			}
		}
	}
	return accepted, nil
}
