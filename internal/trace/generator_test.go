package trace

import (
	"testing"
	"testing/quick"

	"dsp/internal/rng"
)

func smallSpec(numJobs int, seed int64) Spec {
	s := DefaultSpec(numJobs, seed)
	s.TaskScale = 0.05 // 5-25 / 50 / 100 tasks per class
	return s
}

func TestGenerateBasics(t *testing.T) {
	w, err := Generate(smallSpec(9, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Jobs) != 9 {
		t.Fatalf("got %d jobs, want 9", len(w.Jobs))
	}
	classes := map[JobClass]int{}
	for _, j := range w.Jobs {
		classes[j.Class]++
		if err := j.DAG.Validate(); err != nil {
			t.Fatalf("job %d invalid: %v", j.DAG.ID, err)
		}
		if j.DAG.Deadline <= 0 {
			t.Errorf("job %d has non-positive deadline %v", j.DAG.ID, j.DAG.Deadline)
		}
	}
	if classes[Small] != 3 || classes[Medium] != 3 || classes[Large] != 3 {
		t.Errorf("class mix = %v, want equal thirds", classes)
	}
	if w.ArrivalRate < 2 || w.ArrivalRate > 5 {
		t.Errorf("arrival rate = %v, want in [2,5]", w.ArrivalRate)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(smallSpec(6, 42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallSpec(6, 42))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Jobs {
		ja, jb := a.Jobs[i], b.Jobs[i]
		if ja.Arrival != jb.Arrival || ja.DAG.Len() != jb.DAG.Len() ||
			ja.DAG.NumEdges() != jb.DAG.NumEdges() || ja.DAG.Deadline != jb.DAG.Deadline {
			t.Fatalf("job %d differs between identical seeds", i)
		}
		for k := 0; k < ja.DAG.Len(); k++ {
			if ja.DAG.Tasks[k].Size != jb.DAG.Tasks[k].Size {
				t.Fatalf("task size differs at job %d task %d", i, k)
			}
		}
	}
	c, err := Generate(smallSpec(6, 43))
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Jobs {
		if a.Jobs[i].DAG.NumEdges() != c.Jobs[i].DAG.NumEdges() ||
			a.Jobs[i].Arrival != c.Jobs[i].Arrival {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical workloads")
	}
}

func TestGenerateRespectsStructuralCaps(t *testing.T) {
	spec := smallSpec(12, 7)
	w, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range w.Jobs {
		L, err := j.DAG.NumLevels()
		if err != nil {
			t.Fatal(err)
		}
		if L > spec.MaxLevels {
			t.Errorf("job %d has %d levels, cap %d", j.DAG.ID, L, spec.MaxLevels)
		}
		if d := j.DAG.MaxOutDegree(); d > spec.MaxDependents {
			t.Errorf("job %d has out-degree %d, cap %d", j.DAG.ID, d, spec.MaxDependents)
		}
	}
}

func TestGenerateTaskProperties(t *testing.T) {
	spec := smallSpec(3, 11)
	w, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range w.Jobs {
		for _, task := range j.DAG.Tasks {
			if task.Size < 1 {
				t.Fatalf("task size %v < 1", task.Size)
			}
			d := task.Demand
			if d.CPU < spec.CPUMin || d.CPU > spec.CPUMax {
				t.Errorf("cpu demand %v out of range", d.CPU)
			}
			if d.Mem < spec.MemMin || d.Mem > spec.MemMax {
				t.Errorf("mem demand %v out of range", d.Mem)
			}
			if d.DiskMB != TaskDiskMB || d.Bandwidth != TaskBandwidthMBps {
				t.Errorf("disk/bw demand = %v/%v, want paper constants", d.DiskMB, d.Bandwidth)
			}
		}
	}
}

func TestGenerateArrivalsMonotone(t *testing.T) {
	w, err := Generate(smallSpec(30, 3))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(w.Jobs); i++ {
		if w.Jobs[i].Arrival < w.Jobs[i-1].Arrival {
			t.Fatalf("arrivals not monotone at %d", i)
		}
	}
	if w.Jobs[0].Arrival != 0 {
		t.Errorf("first arrival = %v, want 0", w.Jobs[0].Arrival)
	}
}

func TestGenerateErrors(t *testing.T) {
	s := DefaultSpec(0, 1)
	if _, err := Generate(s); err == nil {
		t.Error("NumJobs=0 accepted")
	}
	s = DefaultSpec(1, 1)
	s.TaskScale = 0
	if _, err := Generate(s); err == nil {
		t.Error("TaskScale=0 accepted")
	}
	s = DefaultSpec(1, 1)
	s.MaxLevels = 0
	if _, err := Generate(s); err == nil {
		t.Error("MaxLevels=0 accepted")
	}
}

func TestGenerateDeadlineScalesWithSlack(t *testing.T) {
	tight := smallSpec(3, 5)
	tight.DeadlineSlack = 1
	loose := smallSpec(3, 5)
	loose.DeadlineSlack = 8
	wt, err := Generate(tight)
	if err != nil {
		t.Fatal(err)
	}
	wl, err := Generate(loose)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wt.Jobs {
		if wl.Jobs[i].DAG.Deadline <= wt.Jobs[i].DAG.Deadline {
			t.Errorf("job %d: loose deadline %v <= tight %v",
				i, wl.Jobs[i].DAG.Deadline, wt.Jobs[i].DAG.Deadline)
		}
	}
}

func TestGenerateSomeDependencies(t *testing.T) {
	w, err := Generate(smallSpec(6, 9))
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, j := range w.Jobs {
		total += j.DAG.NumEdges()
	}
	if total == 0 {
		t.Error("generator produced zero dependency edges across 6 jobs")
	}
}

func TestJobClassString(t *testing.T) {
	if Small.String() != "small" || Medium.String() != "medium" || Large.String() != "large" {
		t.Error("JobClass strings wrong")
	}
}

func TestPropertyGeneratedDAGsValid(t *testing.T) {
	f := func(seed int64) bool {
		spec := smallSpec(3, seed)
		w, err := Generate(spec)
		if err != nil {
			return false
		}
		for _, j := range w.Jobs {
			if j.DAG.Validate() != nil {
				return false
			}
			L, err := j.DAG.NumLevels()
			if err != nil || L > spec.MaxLevels {
				return false
			}
			if j.DAG.MaxOutDegree() > spec.MaxDependents {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestBuildDepsFromIntervalsRule(t *testing.T) {
	// Three tasks: A [0,1], B [2,3], C [0.5,1.5]. A and B do not overlap
	// (A ends before B starts) so A->B is allowed; A and C overlap so no
	// edge; C ends at 1.5 <= 2 so C->B allowed too.
	j := newTestJob(3)
	starts := []float64{0, 2, 0.5}
	ends := []float64{1, 3, 1.5}
	r := rng.New(1)
	if err := BuildDepsFromIntervals(j, starts, ends, 5, 15, 1.0, r); err != nil {
		t.Fatal(err)
	}
	// Task 1 (B) must have at least one parent and it must be A or C.
	parents := j.Parents(1)
	if len(parents) == 0 {
		t.Fatal("B got no parents despite eligible candidates")
	}
	for _, p := range parents {
		if p != 0 && p != 2 {
			t.Errorf("unexpected parent %d", p)
		}
	}
	// A and C overlap: no edge either way.
	for _, p := range j.Parents(2) {
		if p == 0 {
			t.Error("edge A->C despite overlapping intervals")
		}
	}
	for _, p := range j.Parents(0) {
		if p == 2 {
			t.Error("edge C->A despite overlapping intervals")
		}
	}
}

func TestBuildDepsFromIntervalsLengthMismatch(t *testing.T) {
	j := newTestJob(2)
	if err := BuildDepsFromIntervals(j, []float64{0}, []float64{1, 2}, 5, 15, 1, rng.New(1)); err == nil {
		t.Error("mismatched slice lengths accepted")
	}
}
