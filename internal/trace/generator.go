package trace

import (
	"fmt"
	"sort"

	"dsp/internal/dag"
	"dsp/internal/rng"
	"dsp/internal/units"
)

// Generate produces a deterministic workload from the spec. Jobs cycle
// through the three classes so every workload contains (as nearly as
// possible) equal numbers of small, medium and large jobs, as in the
// paper's evaluation.
func Generate(spec Spec) (*Workload, error) {
	if spec.NumJobs <= 0 {
		return nil, fmt.Errorf("trace: NumJobs must be positive, got %d", spec.NumJobs)
	}
	if spec.TaskScale <= 0 {
		return nil, fmt.Errorf("trace: TaskScale must be positive, got %v", spec.TaskScale)
	}
	if spec.MaxLevels < 1 {
		return nil, fmt.Errorf("trace: MaxLevels must be >= 1, got %d", spec.MaxLevels)
	}
	root := rng.New(spec.Seed)
	arrivalRNG := root.Split(1)
	classRNG := root.Split(2)

	w := &Workload{}
	w.ArrivalRate = arrivalRNG.Uniform(spec.ArrivalRateMin, spec.ArrivalRateMax)
	if w.ArrivalRate <= 0 {
		w.ArrivalRate = 1
	}
	meanGapSec := 60.0 / w.ArrivalRate

	var at units.Time
	for i := 0; i < spec.NumJobs; i++ {
		class := JobClass(i % 3)
		jobRNG := classRNG.Split(int64(i + 10))
		j, err := generateJob(spec, dag.JobID(i), class, jobRNG)
		if err != nil {
			return nil, err
		}
		j.Production = jobRNG.Bool(spec.ProductionFraction)
		if i > 0 {
			at += units.FromSeconds(arrivalRNG.Exp(meanGapSec))
		}
		w.Jobs = append(w.Jobs, &Job{Class: class, Arrival: at, DAG: j})
	}
	return w, nil
}

// taskCount returns the scaled number of tasks for a job of the given
// class.
func taskCount(spec Spec, class JobClass, r *rng.RNG) int {
	var n int
	switch class {
	case Small:
		n = r.UniformInt(spec.SmallTasksMin, spec.SmallTasksMax)
	case Medium:
		n = spec.MediumTasks
	default:
		n = spec.LargeTasks
	}
	n = int(float64(n) * spec.TaskScale)
	if n < 1 {
		n = 1
	}
	return n
}

// generateJob builds one DAG job: task sizes and resources are sampled
// from trace-like distributions, and dependency edges are derived with
// the paper's interval non-overlap rule (see BuildDepsFromIntervals).
func generateJob(spec Spec, id dag.JobID, class JobClass, r *rng.RNG) (*dag.Job, error) {
	n := taskCount(spec, class, r)
	j := dag.NewJob(id, n)

	// Sample sizes and synthetic trace execution intervals. The interval
	// start offsets emulate the observed task start times in the trace;
	// the duration is the task's nominal execution time.
	type interval struct {
		id         dag.TaskID
		start, end float64
	}
	ivs := make([]interval, n)
	// Spread starts over a window proportional to the would-be serial
	// span divided by the parallelism hint, so that a realistic fraction
	// of task pairs overlap.
	meanExec := spec.MeanTaskSizeMI / spec.RefSpeedMIPS
	window := meanExec * float64(n) / maxf(spec.ParallelismHint, 1)
	if window <= 0 {
		window = meanExec
	}
	for i := 0; i < n; i++ {
		size := r.LogNormalMeanCV(spec.MeanTaskSizeMI, spec.TaskSizeCV)
		if size < 1 {
			size = 1
		}
		t := j.Task(dag.TaskID(i))
		t.Size = size
		t.Demand = dag.Resources{
			CPU:       r.Uniform(spec.CPUMin, spec.CPUMax),
			Mem:       r.Uniform(spec.MemMin, spec.MemMax),
			DiskMB:    TaskDiskMB,
			Bandwidth: TaskBandwidthMBps,
		}
		if spec.LocalityNodes > 0 && r.Bool(spec.LocalityFraction) {
			t.Preferred = r.Intn(spec.LocalityNodes)
		}
		start := r.Uniform(0, window)
		ivs[i] = interval{
			id:    dag.TaskID(i),
			start: start,
			end:   start + size/spec.RefSpeedMIPS,
		}
	}

	starts := make([]float64, n)
	ends := make([]float64, n)
	for _, iv := range ivs {
		starts[iv.id] = iv.start
		ends[iv.id] = iv.end
	}
	if err := BuildDepsFromIntervals(j, starts, ends, spec.MaxLevels, spec.MaxDependents, spec.EdgeDensity, r); err != nil {
		return nil, err
	}

	// Deadline: slack × (critical path + residual-work drain time at the
	// parallelism hint).
	exec := func(t dag.TaskID) float64 { return j.Task(t).Size / spec.RefSpeedMIPS }
	_, cp, err := j.CriticalPath(exec)
	if err != nil {
		return nil, err
	}
	drain := (j.TotalSize() / spec.RefSpeedMIPS) / maxf(spec.ParallelismHint, 1)
	j.Deadline = spec.DeadlineSlack * (cp + drain)
	return j, nil
}

// BuildDepsFromIntervals derives dependency edges using the paper's rule:
// when the execution intervals of two tasks of a job do not overlap, a
// dependency can be created from the earlier to the later task. Edges are
// added for tasks in start-time order, choosing as parents the
// latest-finishing candidates whose interval ends no later than the
// child's start, subject to the structural caps (maxLevels DAG levels,
// maxDependents children per task) and thinned by density in (0,1].
func BuildDepsFromIntervals(j *dag.Job, starts, ends []float64, maxLevels, maxDependents int, density float64, r *rng.RNG) error {
	n := j.Len()
	if len(starts) != n || len(ends) != n {
		return fmt.Errorf("trace: interval slices must have %d entries", n)
	}
	order := make([]dag.TaskID, n)
	for i := range order {
		order[i] = dag.TaskID(i)
	}
	sort.Slice(order, func(a, b int) bool {
		if starts[order[a]] != starts[order[b]] {
			return starts[order[a]] < starts[order[b]]
		}
		return order[a] < order[b]
	})

	level := make([]int, n)
	for i := range level {
		level[i] = 1
	}
	outDeg := make([]int, n)

	for pos, child := range order {
		if density < 1 && !r.Bool(density) {
			continue
		}
		// Candidate parents: earlier tasks whose interval ended before the
		// child's start. Prefer latest-ending candidates (tightest
		// dependency), as those are the most plausible producer tasks.
		type cand struct {
			id  dag.TaskID
			end float64
		}
		var cands []cand
		for _, p := range order[:pos] {
			if ends[p] <= starts[child] &&
				outDeg[p] < maxDependents &&
				level[p] < maxLevels {
				cands = append(cands, cand{id: p, end: ends[p]})
			}
		}
		if len(cands) == 0 {
			continue
		}
		sort.Slice(cands, func(a, b int) bool {
			if cands[a].end != cands[b].end {
				return cands[a].end > cands[b].end
			}
			return cands[a].id < cands[b].id
		})
		nParents := 1 + r.Intn(minInt(3, len(cands)))
		for k := 0; k < nParents && k < len(cands); k++ {
			p := cands[k].id
			if level[p] >= maxLevels {
				continue
			}
			if err := j.AddDep(p, child); err != nil {
				return err
			}
			outDeg[p]++
			if level[p]+1 > level[child] {
				level[child] = level[p] + 1
			}
		}
	}
	return j.Validate()
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
