package trace

import (
	"strings"
	"testing"

	"dsp/internal/dag"
	"dsp/internal/units"
)

const sampleCSV = `job_id,task_index,start_sec,end_sec,cpu,mem_gb
100,0,10,20,0.5,1.0
100,1,25,30,0.3,0.5
100,2,25,35,0.2,0.8
200,0,5,15,1.0,2.0
200,1,16,18,0.4,0.4
`

func TestLoadGoogleCSV(t *testing.T) {
	w, err := LoadGoogleCSV(strings.NewReader(sampleCSV), DefaultGoogleCSVOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Jobs) != 2 {
		t.Fatalf("jobs = %d, want 2", len(w.Jobs))
	}
	// Job 200 arrives first (earliest start 5 s), normalized to 0.
	first := w.Jobs[0]
	if first.Arrival != 0 {
		t.Errorf("first arrival = %v, want 0", first.Arrival)
	}
	if first.DAG.Len() != 2 {
		t.Errorf("first job tasks = %d, want 2 (the google job 200)", first.DAG.Len())
	}
	second := w.Jobs[1]
	if second.Arrival != 5*units.Second {
		t.Errorf("second arrival = %v, want 5s (10−5 normalized)", second.Arrival)
	}
	// Sizes: duration × 3600 MIPS.
	if got := first.DAG.Task(0).Size; got != 10*3600 {
		t.Errorf("task size = %v, want %v", got, 10*3600)
	}
	if got := first.DAG.Task(0).Demand.CPU; got != 1.0 {
		t.Errorf("cpu = %v", got)
	}
	// Dependencies from non-overlap: job 100 task 0 [10,20] precedes
	// tasks 1 and 2 [25,...]; with density<1 some edges may be thinned,
	// but the DAG must validate and respect caps.
	for _, j := range w.Jobs {
		if err := j.DAG.Validate(); err != nil {
			t.Fatal(err)
		}
		if j.DAG.Deadline <= 0 {
			t.Error("deadline not derived")
		}
	}
}

func TestLoadGoogleCSVDeterministic(t *testing.T) {
	a, err := LoadGoogleCSV(strings.NewReader(sampleCSV), DefaultGoogleCSVOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := LoadGoogleCSV(strings.NewReader(sampleCSV), DefaultGoogleCSVOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Jobs {
		if a.Jobs[i].DAG.NumEdges() != b.Jobs[i].DAG.NumEdges() ||
			a.Jobs[i].DAG.Production != b.Jobs[i].DAG.Production {
			t.Fatal("CSV load not deterministic")
		}
	}
}

func TestLoadGoogleCSVDependencyRule(t *testing.T) {
	// Force full density so the interval rule is guaranteed to create
	// the 0→1 edge (0 ends at 20, 1 starts at 25; they do not overlap).
	opt := DefaultGoogleCSVOptions()
	opt.EdgeDensity = 1.0
	csv := "7,0,0,20,0.1,0.1\n7,1,25,30,0.1,0.1\n"
	w, err := LoadGoogleCSV(strings.NewReader(csv), opt)
	if err != nil {
		t.Fatal(err)
	}
	j := w.Jobs[0].DAG
	parents := j.Parents(1)
	if len(parents) != 1 || parents[0] != 0 {
		t.Errorf("expected edge 0->1, parents = %v", parents)
	}
}

func TestLoadGoogleCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":             "",
		"bad job id":        "x,0,0,1,0.1,0.1\n",
		"bad float":         "1,0,zero,1,0.1,0.1\n",
		"end before start":  "1,0,10,5,0.1,0.1\n",
		"non-dense index":   "1,5,0,1,0.1,0.1\n",
		"wrong field count": "1,0,0,1\n",
	}
	for name, csv := range cases {
		if _, err := LoadGoogleCSV(strings.NewReader(csv), DefaultGoogleCSVOptions()); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestClassify(t *testing.T) {
	if classify(100) != Small || classify(800) != Medium || classify(2000) != Large {
		t.Error("classification thresholds wrong")
	}
}

func TestGoogleCSVJobsRunnable(t *testing.T) {
	// A loaded workload must be consumable by the DAG analyses the
	// scheduler needs.
	w, err := LoadGoogleCSV(strings.NewReader(sampleCSV), DefaultGoogleCSVOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range w.Jobs {
		if _, err := j.DAG.TopoOrder(); err != nil {
			t.Fatal(err)
		}
		if _, _, err := j.DAG.CriticalPath(func(id dag.TaskID) float64 {
			return j.DAG.Task(id).Size / 3600
		}); err != nil {
			t.Fatal(err)
		}
	}
}
