// Package trace generates synthetic workloads shaped like the Google
// cluster trace slice the DSP paper evaluates on. The paper samples jobs
// from the May 2011 Google trace, classifies them as small (several
// hundred tasks), medium (1000 tasks) and large (2000 tasks) in equal
// numbers, sets CPU/memory/duration per the trace, fixes disk and
// bandwidth demand at 0.02 MB and 0.02 MB/s, derives dependency edges
// from execution-interval non-overlap, and caps DAGs at five levels with
// at most fifteen dependents per task. The trace itself is proprietary
// Google data; this package reproduces its documented shape with seeded,
// fully deterministic sampling (see DESIGN.md, substitutions table).
package trace

import (
	"dsp/internal/dag"
	"dsp/internal/units"
)

// JobClass is the paper's job size classification.
type JobClass int

// Job classes; workloads contain equal numbers of each.
const (
	Small JobClass = iota
	Medium
	Large
)

func (c JobClass) String() string {
	switch c {
	case Small:
		return "small"
	case Medium:
		return "medium"
	default:
		return "large"
	}
}

// Spec configures the workload generator.
type Spec struct {
	// Seed makes the workload deterministic.
	Seed int64
	// NumJobs is h, the number of jobs submitted in the scheduling window.
	NumJobs int

	// Task counts per class. The paper uses several hundred / 1000 / 2000;
	// TaskScale shrinks all three proportionally so experiments can run at
	// reduced simulator scale while keeping the class ratios.
	SmallTasksMin, SmallTasksMax int
	MediumTasks, LargeTasks      int
	TaskScale                    float64

	// MeanTaskSizeMI and TaskSizeCV parameterize the lognormal task-size
	// distribution (millions of instructions).
	MeanTaskSizeMI float64
	TaskSizeCV     float64

	// DAG shape constraints from the paper's construction.
	MaxLevels     int // ≤ 5
	MaxDependents int // ≤ 15
	// EdgeDensity in (0,1] scales how aggressively non-overlapping task
	// pairs become dependency edges.
	EdgeDensity float64

	// Arrival process: Poisson at a rate drawn uniformly from
	// [ArrivalRateMin, ArrivalRateMax] jobs per minute (the paper draws
	// x ∈ [2,5]).
	ArrivalRateMin, ArrivalRateMax float64

	// RefSpeedMIPS is the nominal node speed used for nominal execution
	// times when deriving deadlines.
	RefSpeedMIPS float64
	// DeadlineSlack multiplies the job's nominal lower-bound completion
	// time to produce its deadline.
	DeadlineSlack float64
	// ParallelismHint estimates how many tasks of one job run
	// concurrently when deriving the nominal completion lower bound.
	ParallelismHint float64

	// ProductionFraction of jobs are marked production (Natjam preempts
	// only research jobs).
	ProductionFraction float64

	// Resource demand ranges (CPU cores, memory GB) per task; disk and
	// bandwidth are the paper's constants.
	CPUMin, CPUMax float64
	MemMin, MemMax float64

	// Data locality (paper future work): when LocalityNodes > 0, a
	// LocalityFraction of tasks get a preferred input node drawn
	// uniformly from [0, LocalityNodes). Zero disables locality.
	LocalityNodes    int
	LocalityFraction float64
}

// DefaultSpec returns the paper's workload configuration at the given
// scale (1.0 = full task counts; the experiment harness uses a reduced
// scale by default — see EXPERIMENTS.md).
func DefaultSpec(numJobs int, seed int64) Spec {
	return Spec{
		Seed:          seed,
		NumJobs:       numJobs,
		SmallTasksMin: 100,
		SmallTasksMax: 500,
		MediumTasks:   1000,
		LargeTasks:    2000,
		TaskScale:     1.0,
		// ≈5 s per task on a 3600 MIPS slot. With ~1100 tasks per
		// average job and ~3.5 job arrivals per minute this loads the
		// 50-node real cluster to ~85–90% of capacity and overloads the
		// 30-instance EC2 profile ~4× — the regime in which the paper's
		// queueing, deadline and preemption effects appear (and EC2 shows
		// longer waits and more preemptions, as in Figure 7).
		MeanTaskSizeMI:     18000,
		TaskSizeCV:         1.0,
		MaxLevels:          5,
		MaxDependents:      15,
		EdgeDensity:        0.7,
		ArrivalRateMin:     2,
		ArrivalRateMax:     5,
		RefSpeedMIPS:       3600,
		DeadlineSlack:      4.0,
		ParallelismHint:    48,
		ProductionFraction: 0.5,
		CPUMin:             0.1,
		CPUMax:             1.0,
		MemMin:             0.1,
		MemMax:             2.0,
	}
}

// Paper constants for per-task disk and bandwidth demand.
const (
	TaskDiskMB        = 0.02
	TaskBandwidthMBps = 0.02
)

// Workload is a generated set of jobs with arrival times.
type Workload struct {
	Jobs []*Job
	// ArrivalRate is the jobs-per-minute rate drawn for this workload.
	ArrivalRate float64
}

// Job pairs a DAG job with its submission time and class.
type Job struct {
	Class   JobClass
	Arrival units.Time
	// DAG carries tasks, dependencies, deadline (seconds from arrival)
	// and the production flag.
	DAG *dag.Job
	// WaitsFor lists jobs that must complete before any of this job's
	// tasks may be scheduled (cross-job dependency, a paper future-work
	// item).
	WaitsFor []dag.JobID
}
