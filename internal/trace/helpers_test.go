package trace

import "dsp/internal/dag"

// newTestJob returns an edgeless job with n tasks of unit size.
func newTestJob(n int) *dag.Job {
	j := dag.NewJob(0, n)
	for i := 0; i < n; i++ {
		j.Task(dag.TaskID(i)).Size = 1
	}
	return j
}
