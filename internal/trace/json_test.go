package trace

import (
	"bytes"
	"strings"
	"testing"

	"dsp/internal/dag"
)

func TestJSONRoundTrip(t *testing.T) {
	spec := smallSpec(6, 21)
	spec.LocalityNodes = 8
	spec.LocalityFraction = 0.4
	orig, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	orig.Jobs[3].WaitsFor = []dag.JobID{0, 1}

	var buf bytes.Buffer
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}

	if got.ArrivalRate != orig.ArrivalRate {
		t.Errorf("arrival rate %v != %v", got.ArrivalRate, orig.ArrivalRate)
	}
	if len(got.Jobs) != len(orig.Jobs) {
		t.Fatalf("job count %d != %d", len(got.Jobs), len(orig.Jobs))
	}
	for i := range orig.Jobs {
		a, b := orig.Jobs[i], got.Jobs[i]
		if a.Class != b.Class || a.Arrival != b.Arrival {
			t.Fatalf("job %d header mismatch", i)
		}
		if a.DAG.Deadline != b.DAG.Deadline || a.DAG.Production != b.DAG.Production {
			t.Fatalf("job %d metadata mismatch", i)
		}
		if len(a.WaitsFor) != len(b.WaitsFor) {
			t.Fatalf("job %d WaitsFor mismatch", i)
		}
		if a.DAG.Len() != b.DAG.Len() || a.DAG.NumEdges() != b.DAG.NumEdges() {
			t.Fatalf("job %d structure mismatch", i)
		}
		for k := 0; k < a.DAG.Len(); k++ {
			ta, tb := a.DAG.Tasks[k], b.DAG.Tasks[k]
			if ta.Size != tb.Size || ta.Demand != tb.Demand || ta.Preferred != tb.Preferred {
				t.Fatalf("job %d task %d mismatch: %+v vs %+v", i, k, ta, tb)
			}
			pa, pb := a.DAG.Parents(dag.TaskID(k)), b.DAG.Parents(dag.TaskID(k))
			if len(pa) != len(pb) {
				t.Fatalf("job %d task %d parent count mismatch", i, k)
			}
			for x := range pa {
				if pa[x] != pb[x] {
					t.Fatalf("job %d task %d parents differ", i, k)
				}
			}
		}
	}

	// Byte-identical re-encode.
	var buf2 bytes.Buffer
	if err := got.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	var buf3 bytes.Buffer
	if err := orig.WriteJSON(&buf3); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != buf3.String() {
		t.Error("re-encoded JSON differs from original encoding")
	}
}

func TestReadJSONErrors(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{")); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{"jobs":[{"id":0,"class":"alien","tasks":[]}]}`)); err == nil {
		t.Error("unknown class accepted")
	}
	if _, err := ReadJSON(strings.NewReader(
		`{"jobs":[{"id":0,"class":"small","tasks":[{"id":5,"size_mi":1}]}]}`)); err == nil {
		t.Error("non-dense task IDs accepted")
	}
	if _, err := ReadJSON(strings.NewReader(
		`{"jobs":[{"id":0,"class":"small","tasks":[{"id":0,"size_mi":1,"parents":[7]}]}]}`)); err == nil {
		t.Error("out-of-range parent accepted")
	}
}
