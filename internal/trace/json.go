package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"dsp/internal/dag"
	"dsp/internal/units"
)

// JSON serialization of workloads, so generated traces can be archived,
// inspected, diffed and replayed byte-identically (cmd/dsptrace uses
// this codec).

type jsonTask struct {
	ID        int     `json:"id"`
	SizeMI    float64 `json:"size_mi"`
	CPU       float64 `json:"cpu"`
	MemGB     float64 `json:"mem_gb"`
	DiskMB    float64 `json:"disk_mb"`
	BandMBps  float64 `json:"bandwidth_mbps"`
	Preferred int     `json:"preferred_node"`
	Parents   []int   `json:"parents,omitempty"`
}

type jsonJob struct {
	ID         int        `json:"id"`
	Class      string     `json:"class"`
	ArrivalUS  int64      `json:"arrival_us"`
	Deadline   float64    `json:"deadline_sec"`
	Production bool       `json:"production"`
	WaitsFor   []int      `json:"waits_for,omitempty"`
	Tasks      []jsonTask `json:"tasks"`
}

type jsonWorkload struct {
	ArrivalRate float64   `json:"arrival_rate_jobs_per_min"`
	Jobs        []jsonJob `json:"jobs"`
}

// jobToJSON renders one job into the wire layout shared by workload
// files, the serving daemon's HTTP bodies and its submission journal.
func jobToJSON(j *Job) jsonJob {
	jj := jsonJob{
		ID:         int(j.DAG.ID),
		Class:      j.Class.String(),
		ArrivalUS:  int64(j.Arrival),
		Deadline:   j.DAG.Deadline,
		Production: j.DAG.Production,
	}
	for _, dep := range j.WaitsFor {
		jj.WaitsFor = append(jj.WaitsFor, int(dep))
	}
	for _, t := range j.DAG.Tasks {
		jt := jsonTask{
			ID:        int(t.ID),
			SizeMI:    t.Size,
			CPU:       t.Demand.CPU,
			MemGB:     t.Demand.Mem,
			DiskMB:    t.Demand.DiskMB,
			BandMBps:  t.Demand.Bandwidth,
			Preferred: t.Preferred,
		}
		for _, p := range j.DAG.Parents(t.ID) {
			jt.Parents = append(jt.Parents, int(p))
		}
		jj.Tasks = append(jj.Tasks, jt)
	}
	return jj
}

// jobFromJSON rebuilds and validates one job from the wire layout.
func jobFromJSON(jj *jsonJob) (*Job, error) {
	j := dag.NewJob(dag.JobID(jj.ID), len(jj.Tasks))
	j.Deadline = jj.Deadline
	j.Production = jj.Production
	var class JobClass
	switch jj.Class {
	case "small":
		class = Small
	case "medium":
		class = Medium
	case "large":
		class = Large
	default:
		return nil, fmt.Errorf("trace: job %d has unknown class %q", jj.ID, jj.Class)
	}
	for i, jt := range jj.Tasks {
		if jt.ID != i {
			return nil, fmt.Errorf("trace: job %d task IDs not dense at %d", jj.ID, i)
		}
		t := j.Task(dag.TaskID(i))
		t.Size = jt.SizeMI
		t.Preferred = jt.Preferred
		t.Demand = dag.Resources{
			CPU:       jt.CPU,
			Mem:       jt.MemGB,
			DiskMB:    jt.DiskMB,
			Bandwidth: jt.BandMBps,
		}
	}
	// Edges after all tasks exist.
	for i, jt := range jj.Tasks {
		for _, p := range jt.Parents {
			if err := j.AddDep(dag.TaskID(p), dag.TaskID(i)); err != nil {
				return nil, fmt.Errorf("trace: job %d: %w", jj.ID, err)
			}
		}
	}
	if err := j.Validate(); err != nil {
		return nil, fmt.Errorf("trace: job %d: %w", jj.ID, err)
	}
	tj := &Job{Class: class, Arrival: units.Time(jj.ArrivalUS), DAG: j}
	for _, dep := range jj.WaitsFor {
		tj.WaitsFor = append(tj.WaitsFor, dag.JobID(dep))
	}
	return tj, nil
}

// EncodeJob marshals a single job in the same per-job layout WriteJSON
// uses, for HTTP submission bodies and the serving daemon's journal.
func EncodeJob(j *Job) ([]byte, error) {
	if j == nil || j.DAG == nil {
		return nil, fmt.Errorf("trace: nil job")
	}
	return json.Marshal(jobToJSON(j))
}

// DecodeJob unmarshals and validates a single job encoded by EncodeJob
// (or written by hand in the documented submission schema).
func DecodeJob(data []byte) (*Job, error) {
	var jj jsonJob
	if err := json.Unmarshal(data, &jj); err != nil {
		return nil, fmt.Errorf("trace: decoding job: %w", err)
	}
	return jobFromJSON(&jj)
}

// WriteJSON encodes the workload.
func (w *Workload) WriteJSON(out io.Writer) error {
	jw := jsonWorkload{ArrivalRate: w.ArrivalRate}
	for _, j := range w.Jobs {
		jw.Jobs = append(jw.Jobs, jobToJSON(j))
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(jw)
}

// ReadJSON decodes a workload previously written by WriteJSON.
func ReadJSON(in io.Reader) (*Workload, error) {
	var jw jsonWorkload
	if err := json.NewDecoder(in).Decode(&jw); err != nil {
		return nil, fmt.Errorf("trace: decoding workload: %w", err)
	}
	w := &Workload{ArrivalRate: jw.ArrivalRate}
	for i := range jw.Jobs {
		tj, err := jobFromJSON(&jw.Jobs[i])
		if err != nil {
			return nil, err
		}
		w.Jobs = append(w.Jobs, tj)
	}
	return w, nil
}
