package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"dsp/internal/dag"
	"dsp/internal/rng"
	"dsp/internal/units"
)

// Google cluster-trace ingestion. The paper samples its workload from
// the May 2011 Google trace: per-task CPU/memory usage and execution
// intervals come from the trace's task_events/task_usage tables, and
// dependency edges are derived from execution-interval non-overlap. The
// real trace is not redistributable, so this loader accepts the same
// *shape* of data as CSV rows — one row per task:
//
//	job_id,task_index,start_sec,end_sec,cpu,mem_gb
//
// (a straightforward projection of the trace's schema). Task size in MI
// is reconstructed as duration × RefSpeedMIPS, and DAGs are built with
// the identical interval rule and structural caps used by the synthetic
// generator, so replaying a real trace slice and generating a synthetic
// one exercise exactly the same code paths.

// GoogleCSVOptions configures trace ingestion.
type GoogleCSVOptions struct {
	// RefSpeedMIPS converts observed durations into task sizes
	// (size = duration × speed). Defaults to 3600.
	RefSpeedMIPS float64
	// MaxLevels and MaxDependents cap the derived DAGs (paper: 5 and 15).
	MaxLevels, MaxDependents int
	// EdgeDensity thins dependency creation, as in the generator.
	EdgeDensity float64
	// Seed drives the (deterministic) edge-thinning draws.
	Seed int64
	// DeadlineSlack and ParallelismHint derive job deadlines exactly as
	// the generator does. Zero slack means no deadlines.
	DeadlineSlack   float64
	ParallelismHint float64
	// ProductionFraction marks that fraction of jobs production.
	ProductionFraction float64
}

// DefaultGoogleCSVOptions mirrors DefaultSpec's shape parameters.
func DefaultGoogleCSVOptions() GoogleCSVOptions {
	return GoogleCSVOptions{
		RefSpeedMIPS:       3600,
		MaxLevels:          5,
		MaxDependents:      15,
		EdgeDensity:        0.7,
		Seed:               1,
		DeadlineSlack:      4.0,
		ParallelismHint:    48,
		ProductionFraction: 0.5,
	}
}

type csvTask struct {
	index      int
	start, end float64
	cpu, mem   float64
}

// LoadGoogleCSV reads trace rows and builds a workload: tasks grouped by
// job ID, job arrival = its earliest task start, dependencies from
// interval non-overlap. Rows may appear in any order; a header row is
// skipped automatically.
func LoadGoogleCSV(r io.Reader, opt GoogleCSVOptions) (*Workload, error) {
	if opt.RefSpeedMIPS <= 0 {
		opt.RefSpeedMIPS = 3600
	}
	if opt.MaxLevels < 1 {
		opt.MaxLevels = 5
	}
	if opt.MaxDependents < 1 {
		opt.MaxDependents = 15
	}
	if opt.EdgeDensity <= 0 || opt.EdgeDensity > 1 {
		opt.EdgeDensity = 0.7
	}

	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 6
	byJob := make(map[int64][]csvTask)
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: csv line %d: %w", line+1, err)
		}
		line++
		if line == 1 && rec[0] == "job_id" {
			continue // header
		}
		jobID, err := strconv.ParseInt(rec[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: csv line %d: bad job_id %q", line, rec[0])
		}
		var vals [5]float64
		for i := 1; i < 6; i++ {
			v, err := strconv.ParseFloat(rec[i], 64)
			if err != nil {
				return nil, fmt.Errorf("trace: csv line %d field %d: %w", line, i, err)
			}
			vals[i-1] = v
		}
		t := csvTask{
			index: int(vals[0]),
			start: vals[1],
			end:   vals[2],
			cpu:   vals[3],
			mem:   vals[4],
		}
		if t.end < t.start {
			return nil, fmt.Errorf("trace: csv line %d: end %v before start %v", line, t.end, t.start)
		}
		byJob[jobID] = append(byJob[jobID], t)
	}
	if len(byJob) == 0 {
		return nil, fmt.Errorf("trace: no tasks in CSV")
	}

	jobIDs := make([]int64, 0, len(byJob))
	for id := range byJob {
		jobIDs = append(jobIDs, id)
	}
	sort.Slice(jobIDs, func(a, b int) bool { return jobIDs[a] < jobIDs[b] })

	root := rng.New(opt.Seed)
	w := &Workload{ArrivalRate: 0}
	for seq, gid := range jobIDs {
		tasks := byJob[gid]
		sort.Slice(tasks, func(a, b int) bool { return tasks[a].index < tasks[b].index })
		for i, t := range tasks {
			if t.index != i {
				return nil, fmt.Errorf("trace: job %d task indices not dense (have %d at position %d)", gid, t.index, i)
			}
		}
		j := dag.NewJob(dag.JobID(seq), len(tasks))
		arrival := tasks[0].start
		starts := make([]float64, len(tasks))
		ends := make([]float64, len(tasks))
		for i, t := range tasks {
			if t.start < arrival {
				arrival = t.start
			}
			starts[i] = t.start
			ends[i] = t.end
			dt := j.Task(dag.TaskID(i))
			dt.Size = (t.end - t.start) * opt.RefSpeedMIPS
			if dt.Size < 1 {
				dt.Size = 1
			}
			dt.Demand = dag.Resources{
				CPU:       t.cpu,
				Mem:       t.mem,
				DiskMB:    TaskDiskMB,
				Bandwidth: TaskBandwidthMBps,
			}
		}
		jr := root.Split(int64(seq) + 100)
		if err := BuildDepsFromIntervals(j, starts, ends, opt.MaxLevels, opt.MaxDependents, opt.EdgeDensity, jr); err != nil {
			return nil, fmt.Errorf("trace: job %d: %w", gid, err)
		}
		if opt.DeadlineSlack > 0 {
			exec := func(t dag.TaskID) float64 { return j.Task(t).Size / opt.RefSpeedMIPS }
			_, cp, err := j.CriticalPath(exec)
			if err != nil {
				return nil, err
			}
			hint := opt.ParallelismHint
			if hint < 1 {
				hint = 1
			}
			j.Deadline = opt.DeadlineSlack * (cp + j.TotalSize()/opt.RefSpeedMIPS/hint)
		}
		j.Production = jr.Bool(opt.ProductionFraction)
		w.Jobs = append(w.Jobs, &Job{
			Class:   classify(len(tasks)),
			Arrival: units.FromSeconds(arrival),
			DAG:     j,
		})
	}
	// Normalize arrivals so the earliest job arrives at t=0 and sort by
	// arrival.
	sort.SliceStable(w.Jobs, func(a, b int) bool { return w.Jobs[a].Arrival < w.Jobs[b].Arrival })
	if first := w.Jobs[0].Arrival; first > 0 {
		for _, j := range w.Jobs {
			j.Arrival -= first
		}
	}
	// Approximate arrival rate for reporting.
	span := w.Jobs[len(w.Jobs)-1].Arrival.Seconds() / 60
	if span > 0 {
		w.ArrivalRate = float64(len(w.Jobs)-1) / span
	}
	return w, nil
}

// classify applies the paper's size classes to a task count.
func classify(tasks int) JobClass {
	switch {
	case tasks >= 1500:
		return Large
	case tasks >= 750:
		return Medium
	default:
		return Small
	}
}
