// Package metrics provides the statistics and tabulation helpers used by
// the experiment harness: online mean/variance accumulation (Welford),
// experiment series keyed by an x-axis value with one column per method,
// and plain-text table rendering for the figure reproductions.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Stats accumulates a stream of float64 samples using Welford's online
// algorithm, giving numerically stable mean and variance.
type Stats struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add folds one sample into the accumulator.
func (s *Stats) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// N returns the sample count.
func (s *Stats) N() int { return s.n }

// Mean returns the sample mean (0 with no samples).
func (s *Stats) Mean() float64 { return s.mean }

// Var returns the unbiased sample variance.
func (s *Stats) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Std returns the sample standard deviation.
func (s *Stats) Std() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest sample (0 with no samples).
func (s *Stats) Min() float64 { return s.min }

// Max returns the largest sample (0 with no samples).
func (s *Stats) Max() float64 { return s.max }

// JainIndex returns Jain's fairness index over the given allocations
// (e.g. per-job slowdowns): (Σx)² / (n·Σx²), which is 1 when all values
// are equal and approaches 1/n under maximal unfairness. The paper lists
// fairness as future work; the simulator reports per-job slowdowns so
// this index can be computed for any policy.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sumsq float64
	for _, x := range xs {
		sum += x
		sumsq += x * x
	}
	if sumsq == 0 {
		return 1 // all zeros: trivially equal
	}
	return sum * sum / (float64(len(xs)) * sumsq)
}

// Table is one experiment series: an x column plus one y column per
// method, as plotted in the paper's figures.
type Table struct {
	Title   string
	XLabel  string
	YLabel  string
	Methods []string
	rows    map[float64][]float64
	xs      []float64
}

// NewTable creates an empty table for the given methods.
func NewTable(title, xLabel, yLabel string, methods ...string) *Table {
	return &Table{
		Title:   title,
		XLabel:  xLabel,
		YLabel:  yLabel,
		Methods: methods,
		rows:    make(map[float64][]float64),
	}
}

// Set records method's y value at x. Unknown methods panic — they
// indicate a harness bug.
func (t *Table) Set(x float64, method string, y float64) {
	idx := -1
	for i, m := range t.Methods {
		if m == method {
			idx = i
			break
		}
	}
	if idx == -1 {
		panic(fmt.Sprintf("metrics: unknown method %q in table %q", method, t.Title))
	}
	row, ok := t.rows[x]
	if !ok {
		row = make([]float64, len(t.Methods))
		for i := range row {
			row[i] = math.NaN()
		}
		t.rows[x] = row
		t.xs = append(t.xs, x)
		sort.Float64s(t.xs)
	}
	row[idx] = y
}

// Get returns method's y value at x (NaN if unset).
func (t *Table) Get(x float64, method string) float64 {
	row, ok := t.rows[x]
	if !ok {
		return math.NaN()
	}
	for i, m := range t.Methods {
		if m == method {
			return row[i]
		}
	}
	return math.NaN()
}

// Xs returns the x values in ascending order.
func (t *Table) Xs() []float64 { return append([]float64(nil), t.xs...) }

// Column returns method's series in x order.
func (t *Table) Column(method string) []float64 {
	out := make([]float64, 0, len(t.xs))
	for _, x := range t.xs {
		out = append(out, t.Get(x, method))
	}
	return out
}

// Render formats the table as aligned plain text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", t.Title)
	if t.YLabel != "" {
		fmt.Fprintf(&b, "# y: %s\n", t.YLabel)
	}
	widths := make([]int, len(t.Methods)+1)
	header := append([]string{t.XLabel}, t.Methods...)
	cells := make([][]string, 0, len(t.xs)+1)
	cells = append(cells, header)
	for _, x := range t.xs {
		row := make([]string, len(t.Methods)+1)
		row[0] = trimFloat(x)
		for i := range t.Methods {
			row[i+1] = trimFloat(t.rows[x][i])
		}
		cells = append(cells, row)
	}
	for _, row := range cells {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	for _, row := range cells {
		for i, c := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// CSV renders the table as comma-separated values. Unset cells are
// empty (Render shows them as "-", but "-" is not a number and trips CSV
// parsers).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(t.XLabel)
	for _, m := range t.Methods {
		b.WriteString(",")
		b.WriteString(m)
	}
	b.WriteString("\n")
	for _, x := range t.xs {
		b.WriteString(trimFloat(x))
		for i := range t.Methods {
			b.WriteString(",")
			if v := t.rows[x][i]; !math.IsNaN(v) {
				b.WriteString(trimFloat(v))
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Percentile returns the p-quantile (p in [0,1]) of xs by linear
// interpolation between closest ranks, without mutating xs. NaN samples
// are ignored (sort.Float64s places NaNs first, which would shift every
// rank and corrupt the low quantiles); NaN with no valid samples.
// Observability samplers use it for per-epoch series summaries.
func Percentile(xs []float64, p float64) float64 {
	sorted := make([]float64, 0, len(xs))
	for _, x := range xs {
		if !math.IsNaN(x) {
			sorted = append(sorted, x)
		}
	}
	if len(sorted) == 0 {
		return math.NaN()
	}
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	rank := p * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

func trimFloat(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	if av := math.Abs(v); av < 0.01 {
		// Small magnitudes (e.g. tasks/ms) need significant digits, not
		// fixed decimals.
		return fmt.Sprintf("%.4g", v)
	}
	return fmt.Sprintf("%.3f", v)
}
