package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestStatsBasics(t *testing.T) {
	var s Stats
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.N() != 8 {
		t.Errorf("N = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Errorf("Mean = %v, want 5", s.Mean())
	}
	// Population variance is 4; sample variance = 32/7.
	if math.Abs(s.Var()-32.0/7.0) > 1e-12 {
		t.Errorf("Var = %v, want %v", s.Var(), 32.0/7.0)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("min/max = %v/%v", s.Min(), s.Max())
	}
}

func TestStatsDegenerate(t *testing.T) {
	var s Stats
	if s.Mean() != 0 || s.Var() != 0 || s.Std() != 0 {
		t.Error("empty stats should be zero")
	}
	s.Add(3)
	if s.Var() != 0 {
		t.Error("single-sample variance should be 0")
	}
}

func TestStatsMatchesNaive(t *testing.T) {
	f := func(xs []float64) bool {
		var ok []float64
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				ok = append(ok, x)
			}
		}
		if len(ok) < 2 {
			return true
		}
		var s Stats
		sum := 0.0
		for _, x := range ok {
			s.Add(x)
			sum += x
		}
		mean := sum / float64(len(ok))
		var ss float64
		for _, x := range ok {
			ss += (x - mean) * (x - mean)
		}
		naive := ss / float64(len(ok)-1)
		scale := math.Max(1, naive)
		return math.Abs(s.Var()-naive)/scale < 1e-9 && math.Abs(s.Mean()-mean) < 1e-9*math.Max(1, math.Abs(mean))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTableSetGet(t *testing.T) {
	tb := NewTable("Fig X", "jobs", "makespan (s)", "DSP", "Aalo")
	tb.Set(150, "DSP", 10)
	tb.Set(150, "Aalo", 12)
	tb.Set(300, "DSP", 20)
	if got := tb.Get(150, "DSP"); got != 10 {
		t.Errorf("Get = %v", got)
	}
	if got := tb.Get(300, "Aalo"); !math.IsNaN(got) {
		t.Errorf("unset cell = %v, want NaN", got)
	}
	if got := tb.Get(999, "DSP"); !math.IsNaN(got) {
		t.Errorf("missing row = %v, want NaN", got)
	}
	xs := tb.Xs()
	if len(xs) != 2 || xs[0] != 150 || xs[1] != 300 {
		t.Errorf("Xs = %v", xs)
	}
	col := tb.Column("DSP")
	if len(col) != 2 || col[0] != 10 || col[1] != 20 {
		t.Errorf("Column = %v", col)
	}
}

func TestTableUnknownMethodPanics(t *testing.T) {
	tb := NewTable("T", "x", "y", "A")
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	tb.Set(1, "B", 2)
}

func TestTableRender(t *testing.T) {
	tb := NewTable("Fig 5(a)", "jobs", "makespan", "DSP", "TetrisW/oDep")
	tb.Set(150, "DSP", 100.5)
	tb.Set(150, "TetrisW/oDep", 130)
	out := tb.Render()
	for _, want := range []string{"Fig 5(a)", "jobs", "DSP", "TetrisW/oDep", "100.500", "130"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // title, ylabel, header, one row
		t.Errorf("Render produced %d lines:\n%s", len(lines), out)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("T", "x", "y", "A", "B")
	tb.Set(1, "A", 2)
	out := tb.CSV()
	if !strings.HasPrefix(out, "x,A,B\n") {
		t.Errorf("CSV header wrong: %q", out)
	}
	// Missing cells are empty in CSV (parsers choke on "-"); Render keeps
	// the human-readable "-".
	if !strings.Contains(out, "1,2,\n") {
		t.Errorf("CSV row wrong: %q", out)
	}
	if !strings.Contains(tb.Render(), "-") {
		t.Errorf("Render should keep '-' for missing cells: %q", tb.Render())
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
		{0.9, 4.6}, // linear interpolation between ranks 4 and 5
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Percentile(%v, %v) = %v, want %v", xs, c.p, got, c.want)
		}
	}
	// Input must not be reordered.
	if xs[0] != 5 || xs[4] != 4 {
		t.Errorf("Percentile mutated its input: %v", xs)
	}
	if !math.IsNaN(Percentile(nil, 0.5)) {
		t.Error("Percentile of empty slice should be NaN")
	}
	if got := Percentile([]float64{7}, 0.99); got != 7 {
		t.Errorf("single-element percentile = %v, want 7", got)
	}
}

func TestTableRowsSorted(t *testing.T) {
	tb := NewTable("T", "x", "y", "A")
	for _, x := range []float64{750, 150, 450, 300, 600} {
		tb.Set(x, "A", x)
	}
	xs := tb.Xs()
	for i := 1; i < len(xs); i++ {
		if xs[i] < xs[i-1] {
			t.Fatalf("Xs not sorted: %v", xs)
		}
	}
}

func TestJainIndex(t *testing.T) {
	if got := JainIndex([]float64{1, 1, 1, 1}); math.Abs(got-1) > 1e-12 {
		t.Errorf("equal allocations index = %v, want 1", got)
	}
	// One user hogging everything: index -> 1/n.
	if got := JainIndex([]float64{1, 0, 0, 0}); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("max-unfair index = %v, want 0.25", got)
	}
	if got := JainIndex(nil); got != 0 {
		t.Errorf("empty index = %v, want 0", got)
	}
	if got := JainIndex([]float64{0, 0}); got != 1 {
		t.Errorf("all-zero index = %v, want 1", got)
	}
	// Index is scale invariant.
	a := JainIndex([]float64{1, 2, 3})
	b := JainIndex([]float64{10, 20, 30})
	if math.Abs(a-b) > 1e-12 {
		t.Errorf("not scale invariant: %v vs %v", a, b)
	}
}
