package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// refPercentile is the straight-line reference: filter NaNs, sort, take
// the linearly interpolated closest-rank quantile.
func refPercentile(xs []float64, p float64) float64 {
	var clean []float64
	for _, x := range xs {
		if !math.IsNaN(x) {
			clean = append(clean, x)
		}
	}
	if len(clean) == 0 {
		return math.NaN()
	}
	sort.Float64s(clean)
	switch {
	case p <= 0:
		return clean[0]
	case p >= 1:
		return clean[len(clean)-1]
	}
	rank := p * float64(len(clean)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(clean) {
		return clean[lo]
	}
	return clean[lo]*(1-frac) + clean[lo+1]*frac
}

// TestPercentileAgainstReference is the property test: random inputs
// (including NaN contamination) at the percentiles the series summaries
// use must match the sort-based reference exactly.
func TestPercentileAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(20180901))
	ps := []float64{0, 0.5, 0.95, 0.99, 1}
	for trial := 0; trial < 500; trial++ {
		n := rng.Intn(40)
		xs := make([]float64, n)
		for i := range xs {
			switch rng.Intn(10) {
			case 0:
				xs[i] = math.NaN()
			case 1:
				xs[i] = -rng.Float64() * 1e6
			default:
				xs[i] = rng.Float64() * 1e3
			}
		}
		orig := append([]float64(nil), xs...)
		for _, p := range ps {
			got := Percentile(xs, p)
			want := refPercentile(xs, p)
			if math.IsNaN(want) != math.IsNaN(got) || (!math.IsNaN(want) && math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want))) {
				t.Fatalf("trial %d: Percentile(%v, %v) = %v, want %v", trial, xs, p, got, want)
			}
		}
		for i := range xs {
			if !math.IsNaN(orig[i]) && xs[i] != orig[i] {
				t.Fatalf("trial %d: Percentile mutated its input at %d", trial, i)
			}
		}
	}
}

// TestPercentileEdges pins the documented edge cases.
func TestPercentileEdges(t *testing.T) {
	if got := Percentile(nil, 0.5); !math.IsNaN(got) {
		t.Errorf("empty input: got %v, want NaN", got)
	}
	if got := Percentile([]float64{math.NaN(), math.NaN()}, 0.5); !math.IsNaN(got) {
		t.Errorf("all-NaN input: got %v, want NaN", got)
	}
	for _, p := range []float64{0, 0.5, 0.95, 1} {
		if got := Percentile([]float64{42}, p); got != 42 {
			t.Errorf("single element at p=%v: got %v, want 42", p, got)
		}
	}
	// A NaN sample must not shift the ranks: p0 of {NaN, 1, 2} is 1.
	if got := Percentile([]float64{math.NaN(), 2, 1}, 0); got != 1 {
		t.Errorf("p0 with NaN contamination: got %v, want 1", got)
	}
	if got := Percentile([]float64{math.NaN(), 2, 1}, 0.5); got != 1.5 {
		t.Errorf("p50 with NaN contamination: got %v, want 1.5", got)
	}
	if got := Percentile([]float64{1, 2, 3, 4}, 0.5); got != 2.5 {
		t.Errorf("even-length median: got %v, want 2.5", got)
	}
}
