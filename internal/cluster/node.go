// Package cluster models the compute substrate of the DSP paper's
// evaluation: nodes with CPU/memory sizes whose processing rate follows
// g(k) = θ₁·s_cpu + θ₂·s_mem (Equation 1), task slots, multi-dimensional
// resource capacities for packing schedulers, and the checkpoint/restart
// cost model used during preemption. Two built-in profiles reproduce the
// paper's testbeds: the 50-node Palmetto-like real cluster (Sun X2200,
// AMD Opteron 2356, 16 GB) and the 30-instance EC2 deployment (HP
// ProLiant ML110 G5, 2660 MIPS, 4 GB).
package cluster

import (
	"fmt"

	"dsp/internal/dag"
	"dsp/internal/units"
)

// NodeID identifies a node within a cluster.
type NodeID int

// Node is one server. SCPU and SMem are the CPU and memory "sizes" from
// the paper's Equation 1, in MIPS-equivalent units; the effective
// processing rate is g = θ₁·SCPU + θ₂·SMem MIPS per running task.
type Node struct {
	ID   NodeID
	Name string

	// SCPU and SMem parameterize g(k); see Speed.
	SCPU, SMem float64

	// Slots is the number of tasks the node can run concurrently.
	Slots int

	// Capacity is the node's multi-dimensional resource capacity, in the
	// same units as dag.Resources demands (CPU cores, memory GB, disk MB,
	// bandwidth MB/s). Packing schedulers such as Tetris consult it.
	Capacity dag.Resources
}

// Speed returns the node's processing rate g(k) = θ₁·s_cpu + θ₂·s_mem in
// MIPS (Equation 1 of the paper).
func (n *Node) Speed(theta1, theta2 float64) float64 {
	return theta1*n.SCPU + theta2*n.SMem
}

// ExecTime returns the uninterrupted execution time of a task of the
// given size (millions of instructions) on this node: t = l / g(k)
// (Equation 2), converted to simulation time.
func (n *Node) ExecTime(sizeMI, theta1, theta2 float64) units.Time {
	g := n.Speed(theta1, theta2)
	if g <= 0 {
		return units.Forever
	}
	return units.FromSeconds(sizeMI / g)
}

// String renders a short description of the node.
func (n *Node) String() string {
	return fmt.Sprintf("node%d(%s cpu=%.0f mem=%.0f slots=%d)", n.ID, n.Name, n.SCPU, n.SMem, n.Slots)
}

// Cluster is a set of nodes.
type Cluster struct {
	Nodes []*Node
	// Theta1 and Theta2 are the CPU/memory weights of Equation 1 (the
	// paper sets both to 0.5).
	Theta1, Theta2 float64
}

// Len returns the number of nodes n.
func (c *Cluster) Len() int { return len(c.Nodes) }

// Node returns the node with the given ID.
func (c *Cluster) Node(id NodeID) *Node { return c.Nodes[id] }

// Speed returns g(k) for node k.
func (c *Cluster) Speed(k NodeID) float64 {
	return c.Nodes[k].Speed(c.Theta1, c.Theta2)
}

// ExecTime returns the execution time of a task of the given size on node
// k.
func (c *Cluster) ExecTime(k NodeID, sizeMI float64) units.Time {
	return c.Nodes[k].ExecTime(sizeMI, c.Theta1, c.Theta2)
}

// MeanSpeed returns the average g(k) across the cluster; workload
// generators use it to compute nominal task execution times.
func (c *Cluster) MeanSpeed() float64 {
	if len(c.Nodes) == 0 {
		return 0
	}
	var s float64
	for _, n := range c.Nodes {
		s += n.Speed(c.Theta1, c.Theta2)
	}
	return s / float64(len(c.Nodes))
}

// TotalSlots returns the total concurrent task capacity of the cluster.
func (c *Cluster) TotalSlots() int {
	s := 0
	for _, n := range c.Nodes {
		s += n.Slots
	}
	return s
}

// RealCluster builds the paper's Palmetto-like testbed profile with n
// nodes (the paper uses 50): Sun X2200 servers — dual AMD Opteron 2356
// (8 cores) with 16 GB memory, 720 GB disk and 1 GB/s network. With
// θ₁=θ₂=0.5 the effective rate is 3600 MIPS per task.
func RealCluster(n int) *Cluster {
	c := &Cluster{Theta1: 0.5, Theta2: 0.5}
	for i := 0; i < n; i++ {
		c.Nodes = append(c.Nodes, &Node{
			ID:    NodeID(i),
			Name:  "sun-x2200",
			SCPU:  4000, // MIPS-equivalent CPU size
			SMem:  3200, // 16 GB × 200 MIPS-equivalent/GB
			Slots: 8,
			Capacity: dag.Resources{
				CPU:       8,
				Mem:       16,
				DiskMB:    720 * 1024,
				Bandwidth: 1024,
			},
		})
	}
	return c
}

// EC2 builds the paper's Amazon EC2 profile with n instances (the paper
// uses 30): HP ProLiant ML110 G5 hardware at 2660 MIPS with 4 GB memory,
// 720 GB disk and 1 GB/s network. With θ₁=θ₂=0.5 the effective rate is
// 2660 MIPS per task.
func EC2(n int) *Cluster {
	c := &Cluster{Theta1: 0.5, Theta2: 0.5}
	for i := 0; i < n; i++ {
		c.Nodes = append(c.Nodes, &Node{
			ID:    NodeID(i),
			Name:  "hp-ml110g5",
			SCPU:  4520, // chosen so g = 0.5·4520 + 0.5·800 = 2660 MIPS
			SMem:  800,  // 4 GB × 200 MIPS-equivalent/GB
			Slots: 4,
			Capacity: dag.Resources{
				CPU:       4,
				Mem:       4,
				DiskMB:    720 * 1024,
				Bandwidth: 1024,
			},
		})
	}
	return c
}

// Heterogeneous builds a mixed cluster alternating real-cluster and EC2
// node profiles; useful in tests and examples exercising speed-aware
// placement.
func Heterogeneous(n int) *Cluster {
	fast := RealCluster((n + 1) / 2).Nodes
	slow := EC2(n / 2).Nodes
	c := &Cluster{Theta1: 0.5, Theta2: 0.5}
	fi, si := 0, 0
	for i := 0; i < n; i++ {
		var nd *Node
		if i%2 == 0 && fi < len(fast) {
			nd = fast[fi]
			fi++
		} else {
			nd = slow[si]
			si++
		}
		nd.ID = NodeID(i)
		c.Nodes = append(c.Nodes, nd)
	}
	return c
}
