package cluster

import "dsp/internal/units"

// CheckpointPolicy models the checkpoint-restart mechanism ([29] in the
// paper) that DSP, Amoeba and Natjam use during preemption: a preempted
// task resumes from its most recent checkpoint, paying a recovery time
// t^r plus the scheduling wait σ per preemption. SRPT has no checkpoint
// mechanism, so a preempted task restarts from scratch.
type CheckpointPolicy struct {
	// Enabled selects checkpoint-resume (true) or restart-from-scratch
	// (false).
	Enabled bool
	// Interval is the progress between checkpoints; completed work is
	// rounded down to a multiple of Interval when a task is preempted.
	// Zero means continuous checkpointing (no progress lost).
	Interval units.Time
	// Recovery is the recovery time t^r charged when a preempted task is
	// resumed (context-switch/state-restore cost).
	Recovery units.Time
	// Sigma is the threshold σ the paper adds per preemption: the wait an
	// evicted task experiences between being selected to run again and
	// actually starting (0.05 s in the evaluation).
	Sigma units.Time
}

// RetainedProgress returns how much of the given completed work survives
// a preemption under this policy.
func (p CheckpointPolicy) RetainedProgress(done units.Time) units.Time {
	if !p.Enabled {
		return 0
	}
	if p.Interval <= 0 {
		return done
	}
	return (done / p.Interval) * p.Interval
}

// ResumePenalty returns the extra time charged when a preempted task is
// put back on a processor (t^r + σ).
func (p CheckpointPolicy) ResumePenalty() units.Time {
	return p.Recovery + p.Sigma
}

// DefaultCheckpoint returns the checkpoint policy used by DSP, Amoeba and
// Natjam in the evaluation: checkpointing on, 1 s checkpoint interval,
// 2 s recovery (restoring task state from the checkpoint store), σ =
// 50 ms. The interval must be shorter than the preemption epoch,
// otherwise a task preempted every epoch could retain no progress at all
// and the system would live-lock.
func DefaultCheckpoint() CheckpointPolicy {
	return CheckpointPolicy{
		Enabled:  true,
		Interval: units.Second,
		Recovery: 2 * units.Second,
		Sigma:    50 * units.Millisecond,
	}
}

// NoCheckpoint returns the SRPT-style policy: preempted tasks restart
// from scratch (same recovery and σ costs apply on resume).
func NoCheckpoint() CheckpointPolicy {
	p := DefaultCheckpoint()
	p.Enabled = false
	return p
}
