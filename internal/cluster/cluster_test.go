package cluster

import (
	"testing"

	"dsp/internal/units"
)

func TestSpeedEquation(t *testing.T) {
	n := &Node{SCPU: 4000, SMem: 3200}
	if got := n.Speed(0.5, 0.5); got != 3600 {
		t.Errorf("Speed = %v, want 3600", got)
	}
	if got := n.Speed(1, 0); got != 4000 {
		t.Errorf("Speed(1,0) = %v, want 4000", got)
	}
}

func TestExecTime(t *testing.T) {
	n := &Node{SCPU: 2000, SMem: 2000} // g = 2000 MIPS at 0.5/0.5
	// 4000 MI at 2000 MIPS = 2 s.
	if got := n.ExecTime(4000, 0.5, 0.5); got != 2*units.Second {
		t.Errorf("ExecTime = %v, want 2s", got)
	}
	z := &Node{}
	if got := z.ExecTime(100, 0.5, 0.5); got != units.Forever {
		t.Errorf("zero-speed node ExecTime = %v, want Forever", got)
	}
}

func TestRealClusterProfile(t *testing.T) {
	c := RealCluster(50)
	if c.Len() != 50 {
		t.Fatalf("Len = %d", c.Len())
	}
	if got := c.Speed(0); got != 3600 {
		t.Errorf("real-cluster g = %v, want 3600", got)
	}
	if c.TotalSlots() != 400 {
		t.Errorf("TotalSlots = %d, want 400", c.TotalSlots())
	}
	if c.Node(3).Capacity.Mem != 16 {
		t.Errorf("capacity mem = %v", c.Node(3).Capacity.Mem)
	}
}

func TestEC2Profile(t *testing.T) {
	c := EC2(30)
	if c.Len() != 30 {
		t.Fatalf("Len = %d", c.Len())
	}
	if got := c.Speed(0); got != 2660 {
		t.Errorf("EC2 g = %v, want 2660 (paper's MIPS rating)", got)
	}
	if c.TotalSlots() != 120 {
		t.Errorf("TotalSlots = %d, want 120", c.TotalSlots())
	}
}

func TestMeanSpeed(t *testing.T) {
	c := RealCluster(2)
	if got := c.MeanSpeed(); got != 3600 {
		t.Errorf("MeanSpeed = %v", got)
	}
	empty := &Cluster{Theta1: 0.5, Theta2: 0.5}
	if got := empty.MeanSpeed(); got != 0 {
		t.Errorf("empty MeanSpeed = %v", got)
	}
}

func TestHeterogeneous(t *testing.T) {
	c := Heterogeneous(5)
	if c.Len() != 5 {
		t.Fatalf("Len = %d", c.Len())
	}
	for i, n := range c.Nodes {
		if n.ID != NodeID(i) {
			t.Errorf("node %d has ID %d", i, n.ID)
		}
	}
	// Should contain both profiles.
	fast, slow := 0, 0
	for _, n := range c.Nodes {
		switch n.Name {
		case "sun-x2200":
			fast++
		case "hp-ml110g5":
			slow++
		}
	}
	if fast == 0 || slow == 0 {
		t.Errorf("heterogeneous cluster missing a profile: fast=%d slow=%d", fast, slow)
	}
}

func TestCheckpointRetainedProgress(t *testing.T) {
	p := DefaultCheckpoint()
	p.Interval = 10 * units.Second
	// 25 s of progress at 10 s interval -> 20 s retained.
	if got := p.RetainedProgress(25 * units.Second); got != 20*units.Second {
		t.Errorf("RetainedProgress = %v, want 20s", got)
	}
	if got := p.RetainedProgress(9 * units.Second); got != 0 {
		t.Errorf("RetainedProgress(<interval) = %v, want 0", got)
	}
	if got := DefaultCheckpoint().RetainedProgress(2500 * units.Millisecond); got != 2*units.Second {
		t.Errorf("default RetainedProgress(2.5s) = %v, want 2s", got)
	}
	p.Interval = 0
	if got := p.RetainedProgress(7 * units.Second); got != 7*units.Second {
		t.Errorf("continuous checkpoint RetainedProgress = %v, want 7s", got)
	}
}

func TestNoCheckpointLosesAll(t *testing.T) {
	p := NoCheckpoint()
	if got := p.RetainedProgress(100 * units.Second); got != 0 {
		t.Errorf("NoCheckpoint retained %v, want 0", got)
	}
	if p.ResumePenalty() != 2*units.Second+50*units.Millisecond {
		t.Errorf("ResumePenalty = %v, want 2.05s", p.ResumePenalty())
	}
}

func TestNodeString(t *testing.T) {
	n := RealCluster(1).Node(0)
	if n.String() == "" {
		t.Error("empty String()")
	}
}
