package baselines

import (
	"sort"

	"dsp/internal/cluster"
	"dsp/internal/sim"
	"dsp/internal/units"
)

// Amoeba is the preemption policy of [20]: the running task that consumes
// the most resources — i.e. has the longest remaining time — has the
// lowest priority and is evicted first; a waiting task preempts it when
// the waiting task's remaining time is shorter. Amoeba checkpoints
// preempted tasks (configure the simulation with
// cluster.DefaultCheckpoint()). It neither considers task dependencies
// nor waiting time nor deadlines, so it causes dependency disorders and
// can starve long tasks.
type Amoeba struct{}

// Name implements sim.Preemptor.
func (Amoeba) Name() string { return "Amoeba" }

// Epoch implements sim.Preemptor.
func (Amoeba) Epoch(now units.Time, v *sim.View) []sim.Action {
	var out []sim.Action
	for k := 0; k < v.Cluster().Len(); k++ {
		node := cluster.NodeID(k)
		waiting := v.Queue(node)
		running := v.Running(node)
		if len(waiting) == 0 || len(running) == 0 {
			continue
		}
		speed := v.Speed(node)
		rem := func(t *sim.TaskState) units.Time { return t.LiveRemainingTime(now, speed) }
		// Victims in descending live remaining time (most resources
		// first).
		victims := append([]*sim.TaskState(nil), running...)
		sort.Slice(victims, func(a, b int) bool {
			ra, rb := rem(victims[a]), rem(victims[b])
			if ra != rb {
				return ra > rb
			}
			return lessTask(victims[a], victims[b])
		})
		// Starters in ascending remaining time (smallest first).
		starters := append([]*sim.TaskState(nil), waiting...)
		sort.Slice(starters, func(a, b int) bool {
			ra, rb := rem(starters[a]), rem(starters[b])
			if ra != rb {
				return ra < rb
			}
			return lessTask(starters[a], starters[b])
		})
		vi := 0
		for _, s := range starters {
			if vi >= len(victims) {
				break
			}
			if rem(s) < rem(victims[vi]) {
				out = append(out, sim.Action{Node: node, Victim: victims[vi], Starter: s})
				vi++
			} else {
				break // starters only get longer from here
			}
		}
	}
	return out
}

// Natjam is the eviction policy of [21]: production jobs have priority
// over research jobs, so only waiting tasks of production jobs preempt,
// and only running tasks of research jobs are evicted. Evictions are
// triggered by production work *showing up* (Natjam makes room when a
// production job arrives, rather than continuously re-evaluating):
// a production task acts as a preemptor only in the first epoch after it
// entered the waiting queue and only if it has never run. The eviction
// order picks the research task using the most resources (longest
// remaining time) first and the latest deadline second. Natjam
// checkpoints evicted tasks. It ignores dependencies.
type Natjam struct{}

// Name implements sim.Preemptor.
func (Natjam) Name() string { return "Natjam" }

// Epoch implements sim.Preemptor.
func (Natjam) Epoch(now units.Time, v *sim.View) []sim.Action {
	var out []sim.Action
	arrivalWindow := now - v.Epoch()
	for k := 0; k < v.Cluster().Len(); k++ {
		node := cluster.NodeID(k)
		waiting := v.Queue(node)
		running := v.Running(node)
		if len(waiting) == 0 || len(running) == 0 {
			continue
		}
		// Only research tasks are evictable.
		var victims []*sim.TaskState
		for _, r := range running {
			if !r.Job.Dag.Production {
				victims = append(victims, r)
			}
		}
		if len(victims) == 0 {
			continue
		}
		speed := v.Speed(node)
		sort.Slice(victims, func(a, b int) bool {
			ra := victims[a].LiveRemainingTime(now, speed)
			rb := victims[b].LiveRemainingTime(now, speed)
			if ra != rb {
				return ra > rb // most resources first
			}
			if victims[a].Deadline != victims[b].Deadline {
				return victims[a].Deadline > victims[b].Deadline // latest deadline next
			}
			return lessTask(victims[a], victims[b])
		})
		// Only freshly enqueued, never-run production tasks preempt, in
		// queue order.
		vi := 0
		for _, s := range waiting {
			if vi >= len(victims) {
				break
			}
			if !s.Job.Dag.Production || s.FirstStart >= 0 || s.QueuedAt < arrivalWindow {
				continue
			}
			out = append(out, sim.Action{Node: node, Victim: victims[vi], Starter: s})
			vi++
		}
	}
	return out
}

// SRPT is the decentralized preemptive policy of [22]: task priority is
// the linear combination of waiting time and remaining time, P = α·t^w −
// β·t^rem (α=0.5, β=1 in the paper's configuration), so shorter-remaining
// and longer-waiting tasks rank higher among the *waiting* tasks — the
// waiting term prevents starvation of long waiters in the dispatch
// order. The preemption test itself is the classic
// shortest-remaining-processing-time rule: a waiting task evicts the
// running task with the most remaining work when the waiter's remaining
// time is strictly shorter. (Letting the waiting term alone beat running
// tasks would, combined with SRPT's lack of checkpointing, re-preempt
// every runner each epoch once any waiter's t^w exceeds 2·t^rem, and no
// long task would ever finish.) SRPT has no checkpoint mechanism — run
// it with cluster.NoCheckpoint() so preempted tasks restart from scratch
// — and ignores dependencies and deadlines.
type SRPT struct {
	// Alpha and Beta are the waiting-time and remaining-time weights.
	Alpha, Beta float64
}

// NewSRPT returns SRPT with the paper's α=0.5, β=1.
func NewSRPT() *SRPT { return &SRPT{Alpha: 0.5, Beta: 1} }

// Name implements sim.Preemptor.
func (*SRPT) Name() string { return "SRPT" }

func (s *SRPT) priority(t *sim.TaskState, now units.Time, speed float64) float64 {
	return s.Alpha*t.WaitingTime(now).Seconds() - s.Beta*t.LiveRemainingTime(now, speed).Seconds()
}

// Epoch implements sim.Preemptor.
func (s *SRPT) Epoch(now units.Time, v *sim.View) []sim.Action {
	var out []sim.Action
	for k := 0; k < v.Cluster().Len(); k++ {
		node := cluster.NodeID(k)
		waiting := v.Queue(node)
		running := v.Running(node)
		if len(waiting) == 0 || len(running) == 0 {
			continue
		}
		speed := v.Speed(node)
		victims := append([]*sim.TaskState(nil), running...)
		sort.Slice(victims, func(a, b int) bool {
			pa, pb := s.priority(victims[a], now, speed), s.priority(victims[b], now, speed)
			if pa != pb {
				return pa < pb // lowest priority evicted first
			}
			return lessTask(victims[a], victims[b])
		})
		starters := append([]*sim.TaskState(nil), waiting...)
		sort.Slice(starters, func(a, b int) bool {
			pa, pb := s.priority(starters[a], now, speed), s.priority(starters[b], now, speed)
			if pa != pb {
				return pa > pb // highest priority starts first
			}
			return lessTask(starters[a], starters[b])
		})
		vi := 0
		for _, st := range starters {
			if vi >= len(victims) {
				break
			}
			// Classic SRPT preemption test: strictly shorter remaining
			// work than the longest-remaining victim.
			if st.LiveRemainingTime(now, speed) < victims[vi].LiveRemainingTime(now, speed) {
				out = append(out, sim.Action{Node: node, Victim: victims[vi], Starter: st})
				vi++
			}
		}
	}
	return out
}
