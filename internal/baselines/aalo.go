package baselines

import (
	"container/heap"
	"sort"

	"dsp/internal/dag"
	"dsp/internal/sim"
	"dsp/internal/units"
)

// Aalo is the coflow scheduler of [11]: each job is treated as one coflow
// and its tasks as the coflow's flows. Flows of a coflow stay together
// and are released in FIFO (here: topological) order so dependencies are
// satisfied; coflows are ordered across multi-level queues by the work
// they have accumulated — without prior knowledge, smaller coflows
// finish first, approximating shortest-job-first. Aalo has no notion of
// job deadlines and does not prioritize tasks by how many dependents
// their completion unlocks.
type Aalo struct {
	// QueueThresholds are the multi-level queue boundaries in millions of
	// instructions of accumulated work; a job in a lower queue is served
	// before jobs in higher queues. Defaults to powers of ten starting at
	// 1e5 MI.
	QueueThresholds []float64
}

// NewAalo returns an Aalo scheduler with default queue thresholds.
func NewAalo() *Aalo {
	return &Aalo{QueueThresholds: []float64{1e5, 1e6, 1e7, 1e8}}
}

// Name implements sim.Scheduler.
func (a *Aalo) Name() string { return "Aalo" }

// queueLevel returns the multi-level-queue index for a job, based on the
// work it has already accumulated (completed + running + queued), which
// is what Aalo can observe without prior knowledge.
func (a *Aalo) queueLevel(j *sim.JobState) int {
	var sentMI float64
	for _, t := range j.Tasks {
		if t.Phase != sim.Pending {
			sentMI += t.Task.Size
		}
	}
	for lvl, th := range a.QueueThresholds {
		if sentMI < th {
			return lvl
		}
	}
	return len(a.QueueThresholds)
}

// Schedule implements sim.Scheduler.
func (a *Aalo) Schedule(now units.Time, pending []*sim.JobState, v *sim.View) []sim.Assignment {
	sims := buildNodeSims(now, v)
	if len(sims) == 0 {
		return nil
	}

	// Coflows ordered by (queue level, arrival).
	jobs := append([]*sim.JobState(nil), pending...)
	sort.Slice(jobs, func(x, y int) bool {
		lx, ly := a.queueLevel(jobs[x]), a.queueLevel(jobs[y])
		if lx != ly {
			return lx < ly
		}
		if jobs[x].Arrival != jobs[y].Arrival {
			return jobs[x].Arrival < jobs[y].Arrival
		}
		return jobs[x].Dag.ID < jobs[y].Dag.ID
	})

	finish := make(map[dag.Key]units.Time)
	var out []sim.Assignment
	for _, j := range jobs {
		order, err := j.Dag.TopoOrder()
		if err != nil {
			continue
		}
		for _, tid := range order {
			ts := j.Tasks[tid]
			if ts.Phase != sim.Pending {
				if ts.Phase == sim.Done {
					finish[ts.Key()] = ts.DoneAt
				}
				continue
			}
			// Parent bound.
			bound := now
			for _, p := range j.Dag.Parents(tid) {
				ps := j.Tasks[p]
				var pf units.Time
				if ps.Phase == sim.Done {
					pf = ps.DoneAt
				} else if f, ok := finish[ps.Key()]; ok {
					pf = f
				}
				if pf > bound {
					bound = pf
				}
			}
			// Earliest-start placement (FIFO within the coflow; Aalo does
			// not pack by resources).
			var best *nodeSim
			for _, ns := range sims {
				if len(ns.slots) == 0 {
					continue
				}
				if best == nil || ns.slots[0] < best.slots[0] ||
					(ns.slots[0] == best.slots[0] && ns.id < best.id) {
					best = ns
				}
			}
			if best == nil {
				return out
			}
			avail := heap.Pop(&best.slots).(units.Time)
			start := units.Max(avail, bound)
			end := start + units.FromSeconds(ts.Task.Size/best.speed)
			heap.Push(&best.slots, end)
			finish[ts.Key()] = end
			out = append(out, sim.Assignment{Task: ts, Node: best.id, Start: start})
		}
	}
	return out
}
