// Package baselines implements the comparison systems of the DSP paper's
// evaluation. Scheduling methods (Figure 5): Tetris without dependency
// handling (TetrisW/oDep), Tetris with simple dependency handling
// (TetrisW/SimDep) and Aalo. Preemption methods (Figures 6–7): Amoeba,
// Natjam and SRPT. Each follows the behavioural description in Section V
// of the paper.
package baselines

import (
	"container/heap"
	"sort"

	"dsp/internal/cluster"
	"dsp/internal/dag"
	"dsp/internal/sim"
	"dsp/internal/units"
)

// slotHeap is a min-heap of slot availability times.
type slotHeap []units.Time

func (h slotHeap) Len() int           { return len(h) }
func (h slotHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h slotHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *slotHeap) Push(x any)        { *h = append(*h, x.(units.Time)) }
func (h *slotHeap) Pop() any {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}

// nodeSim tracks one node's planned slot availability while a scheduler
// lays out a period's assignments.
type nodeSim struct {
	id    cluster.NodeID
	speed float64
	cap   dag.Resources
	slots slotHeap
}

// buildNodeSims seeds per-node slot heaps from the live running set and
// queue backlog, the same way the DSP list engine does.
func buildNodeSims(now units.Time, v *sim.View) []*nodeSim {
	c := v.Cluster()
	sims := make([]*nodeSim, 0, c.Len())
	for k := 0; k < c.Len(); k++ {
		id := cluster.NodeID(k)
		node := c.Node(id)
		ns := &nodeSim{id: id, speed: v.Speed(id), cap: node.Capacity}
		if ns.speed <= 0 {
			continue // node down: never plan work onto it
		}
		ns.slots = make(slotHeap, 0, node.Slots)
		for s := 0; s < node.Slots; s++ {
			ns.slots = append(ns.slots, now)
		}
		running := append([]*sim.TaskState(nil), v.Running(id)...)
		sort.Slice(running, func(a, b int) bool {
			return running[a].LiveRemainingTime(now, ns.speed) < running[b].LiveRemainingTime(now, ns.speed)
		})
		for i, rt := range running {
			if i < len(ns.slots) {
				ns.slots[i] = now + rt.LiveRemainingTime(now, ns.speed)
			}
		}
		heap.Init(&ns.slots)
		for _, qt := range v.Queue(id) {
			avail := heap.Pop(&ns.slots).(units.Time)
			heap.Push(&ns.slots, avail+qt.RemainingTime(ns.speed))
		}
		sims = append(sims, ns)
	}
	return sims
}

// Tetris is the multi-resource packing scheduler ([7] in the paper): it
// repeatedly gives the machine with the earliest free slot the
// not-yet-placed task whose peak resource demand vector has the highest
// alignment score (weighted dot product) with the machine's capacity.
//
// WithDependency=false is TetrisW/oDep: dependency is ignored entirely —
// every pending task is packed in pure score order, and the engine
// dispatches them blindly (sim.DependencyBlind), so a task whose inputs
// are not ready wastes its slot until they appear or the blind timeout
// requeues it.  WithDependency=true is TetrisW/SimDep, the "simple
// dependency" variant the paper describes: only currently *runnable*
// tasks (all precedents finished) are scheduled, and dependent tasks are
// left to the next scheduling period — so, as the paper's introduction
// observes, server resources sit idle between a precedent's completion
// and the next period.
type Tetris struct {
	WithDependency bool
}

// Name implements sim.Scheduler.
func (t *Tetris) Name() string {
	if t.WithDependency {
		return "TetrisW/SimDep"
	}
	return "TetrisW/oDep"
}

// DependencyBlind implements sim.DependencyBlind: the W/oDep variant
// dispatches queues without checking precedents.
func (t *Tetris) DependencyBlind() bool { return !t.WithDependency }

// Schedule implements sim.Scheduler.
func (t *Tetris) Schedule(now units.Time, pending []*sim.JobState, v *sim.View) []sim.Assignment {
	sims := buildNodeSims(now, v)
	if len(sims) == 0 {
		return nil
	}

	placed := make(map[dag.Key]bool)
	var todo []*sim.TaskState
	for _, j := range pending {
		for _, ts := range j.PendingTasks() {
			// TetrisW/SimDep schedules only the runnable frontier:
			// precedents must have actually finished. Dependent tasks
			// stay pending until a later period. TetrisW/oDep takes
			// everything.
			if t.WithDependency && !ts.DepsMet() {
				continue
			}
			todo = append(todo, ts)
		}
	}

	var out []sim.Assignment
	remaining := len(todo)
	for remaining > 0 {
		// Machine with the earliest free slot "asks" for a task.
		var ns *nodeSim
		for _, cand := range sims {
			if len(cand.slots) == 0 {
				continue
			}
			if ns == nil || cand.slots[0] < ns.slots[0] ||
				(cand.slots[0] == ns.slots[0] && cand.id < ns.id) {
				ns = cand
			}
		}
		if ns == nil {
			break
		}
		// Highest alignment score among candidate tasks.
		var best *sim.TaskState
		var bestScore float64
		for _, ts := range todo {
			if placed[ts.Key()] {
				continue
			}
			score := ts.Task.Demand.Dot(ns.cap)
			if best == nil || score > bestScore ||
				(score == bestScore && lessTask(ts, best)) {
				best = ts
				bestScore = score
			}
		}
		if best == nil {
			break
		}
		avail := heap.Pop(&ns.slots).(units.Time)
		end := avail + units.FromSeconds(best.Task.Size/ns.speed)
		heap.Push(&ns.slots, end)
		placed[best.Key()] = true
		out = append(out, sim.Assignment{Task: best, Node: ns.id, Start: avail})
		remaining--
	}
	return out
}

func lessTask(a, b *sim.TaskState) bool {
	if a.Task.Job != b.Task.Job {
		return a.Task.Job < b.Task.Job
	}
	return a.Task.ID < b.Task.ID
}
