package baselines

import (
	"testing"
	"testing/quick"

	"dsp/internal/cluster"
	"dsp/internal/dag"
	"dsp/internal/sim"
	"dsp/internal/trace"
	"dsp/internal/units"
)

func testCluster(n, slots int) *cluster.Cluster {
	c := &cluster.Cluster{Theta1: 0.5, Theta2: 0.5}
	for i := 0; i < n; i++ {
		c.Nodes = append(c.Nodes, &cluster.Node{
			ID: cluster.NodeID(i), Name: "t", SCPU: 1000, SMem: 1000, Slots: slots,
			Capacity: dag.Resources{CPU: float64(slots), Mem: 16, DiskMB: 1e6, Bandwidth: 1e3},
		})
	}
	return c
}

// rrScheduler assigns pending tasks round-robin at start = now.
type rrScheduler struct{}

func (rrScheduler) Name() string { return "rr" }
func (rrScheduler) Schedule(now units.Time, pending []*sim.JobState, v *sim.View) []sim.Assignment {
	var out []sim.Assignment
	i := 0
	n := v.Cluster().Len()
	for _, j := range pending {
		for _, t := range j.PendingTasks() {
			out = append(out, sim.Assignment{Task: t, Node: cluster.NodeID(i % n), Start: now})
			i++
		}
	}
	return out
}

func sizedJob(id dag.JobID, sizes ...float64) *dag.Job {
	j := dag.NewJob(id, len(sizes))
	for i, s := range sizes {
		j.Task(dag.TaskID(i)).Size = s
		j.Task(dag.TaskID(i)).Demand = dag.Resources{CPU: 0.5, Mem: 1, DiskMB: 0.02, Bandwidth: 0.02}
	}
	return j
}

func workload(jobs ...*dag.Job) *trace.Workload {
	w := &trace.Workload{ArrivalRate: 3}
	for _, j := range jobs {
		w.Jobs = append(w.Jobs, &trace.Job{Arrival: 0, DAG: j})
	}
	return w
}

func genWorkload(t *testing.T, n int, seed int64) *trace.Workload {
	t.Helper()
	spec := trace.DefaultSpec(n, seed)
	spec.TaskScale = 0.05
	w, err := trace.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestTetrisNames(t *testing.T) {
	if (&Tetris{}).Name() != "TetrisW/oDep" {
		t.Errorf("Name = %q", (&Tetris{}).Name())
	}
	if (&Tetris{WithDependency: true}).Name() != "TetrisW/SimDep" {
		t.Errorf("Name = %q", (&Tetris{WithDependency: true}).Name())
	}
}

func TestTetrisCompletesWorkload(t *testing.T) {
	w := genWorkload(t, 6, 5)
	for _, dep := range []bool{false, true} {
		res, err := sim.Run(sim.Config{
			Cluster:   cluster.RealCluster(6),
			Scheduler: &Tetris{WithDependency: dep},
		}, w)
		if err != nil {
			t.Fatalf("dep=%v: %v", dep, err)
		}
		if res.JobsCompleted != 6 {
			t.Errorf("dep=%v completed %d jobs, want 6", dep, res.JobsCompleted)
		}
		// Regenerate: sim mutates task states.
		w = genWorkload(t, 6, 5)
	}
}

func TestTetrisSimDepBeatsNoDepOnChains(t *testing.T) {
	// Dependency-blind packing queues children ahead of parents and idles
	// slots. A single workload can go either way, so compare the two
	// variants' aggregate makespan across several seeded chain-heavy
	// workloads.
	var noDepTotal, simDepTotal units.Time
	for seed := int64(1); seed <= 5; seed++ {
		spec := trace.DefaultSpec(6, seed)
		spec.TaskScale = 0.04
		spec.EdgeDensity = 1.0
		for _, dep := range []bool{false, true} {
			w, err := trace.Generate(spec)
			if err != nil {
				t.Fatal(err)
			}
			res, err := sim.Run(sim.Config{Cluster: testCluster(4, 2), Scheduler: &Tetris{WithDependency: dep}}, w)
			if err != nil {
				t.Fatal(err)
			}
			if dep {
				simDepTotal += res.Makespan
			} else {
				noDepTotal += res.Makespan
			}
		}
	}
	if simDepTotal > noDepTotal {
		t.Errorf("SimDep aggregate makespan %v should be <= W/oDep %v", simDepTotal, noDepTotal)
	}
}

func TestAaloCompletesAndOrdersByLevel(t *testing.T) {
	w := genWorkload(t, 6, 8)
	res, err := sim.Run(sim.Config{Cluster: cluster.RealCluster(6), Scheduler: NewAalo()}, w)
	if err != nil {
		t.Fatal(err)
	}
	if res.JobsCompleted != 6 {
		t.Errorf("completed %d jobs, want 6", res.JobsCompleted)
	}
	if NewAalo().Name() != "Aalo" {
		t.Error("Aalo name")
	}
}

func TestAaloQueueLevel(t *testing.T) {
	a := NewAalo()
	j := sizedJob(0, 50000, 2e6)
	js := &sim.JobState{Dag: j}
	for _, task := range j.Tasks {
		js.Tasks = append(js.Tasks, &sim.TaskState{Task: task, Job: js, Phase: sim.Pending})
	}
	if lvl := a.queueLevel(js); lvl != 0 {
		t.Errorf("fresh job level = %d, want 0", lvl)
	}
	js.Tasks[1].Phase = sim.Running // 2e6 MI now "sent"
	if lvl := a.queueLevel(js); lvl != 2 {
		t.Errorf("level after 2e6 MI = %d, want 2 (1e6 ≤ x < 1e7)", lvl)
	}
	js.Tasks[0].Phase = sim.Done
	js.Tasks[1].Phase = sim.Done
	if lvl := a.queueLevel(js); lvl != 2 {
		t.Errorf("level = %d, want 2", lvl)
	}
}

func TestAmoebaPreemptsLongestRunningForShortest(t *testing.T) {
	big := sizedJob(0, 30000)
	small := sizedJob(1, 1000)
	res, err := sim.Run(sim.Config{
		Cluster:    testCluster(1, 1),
		Scheduler:  rrScheduler{},
		Preemptor:  Amoeba{},
		Checkpoint: cluster.DefaultCheckpoint(),
		Epoch:      10 * units.Second,
	}, workload(big, small))
	if err != nil {
		t.Fatal(err)
	}
	if res.Preemptions == 0 {
		t.Error("Amoeba should preempt the long task for the short one")
	}
	if (Amoeba{}).Name() != "Amoeba" {
		t.Error("name")
	}
}

func TestAmoebaIgnoresDependenciesCausingDisorders(t *testing.T) {
	// Running root with a short dependent child waiting: Amoeba compares
	// remaining times only and commands the child to start — a disorder.
	chain := sizedJob(0, 30000, 1000)
	chain.MustDep(0, 1)
	res, err := sim.Run(sim.Config{
		Cluster:    testCluster(1, 1),
		Scheduler:  rrScheduler{},
		Preemptor:  Amoeba{},
		Checkpoint: cluster.DefaultCheckpoint(),
		Epoch:      10 * units.Second,
	}, workload(chain))
	if err != nil {
		t.Fatal(err)
	}
	if res.Disorders == 0 {
		t.Error("Amoeba should cause dependency disorders on chains")
	}
}

func TestNatjamProductionPreemptsResearch(t *testing.T) {
	research := sizedJob(0, 30000)
	research.Production = false
	production := sizedJob(1, 1000)
	production.Production = true
	res, err := sim.Run(sim.Config{
		Cluster:    testCluster(1, 1),
		Scheduler:  rrScheduler{},
		Preemptor:  Natjam{},
		Checkpoint: cluster.DefaultCheckpoint(),
		Epoch:      10 * units.Second,
	}, workload(research, production))
	if err != nil {
		t.Fatal(err)
	}
	if res.Preemptions == 0 {
		t.Error("Natjam should evict research for production")
	}
	if (Natjam{}).Name() != "Natjam" {
		t.Error("name")
	}
}

func TestNatjamNeverEvictsProduction(t *testing.T) {
	prodRunning := sizedJob(0, 30000)
	prodRunning.Production = true
	prodWaiting := sizedJob(1, 1000)
	prodWaiting.Production = true
	res, err := sim.Run(sim.Config{
		Cluster:    testCluster(1, 1),
		Scheduler:  rrScheduler{},
		Preemptor:  Natjam{},
		Checkpoint: cluster.DefaultCheckpoint(),
		Epoch:      10 * units.Second,
	}, workload(prodRunning, prodWaiting))
	if err != nil {
		t.Fatal(err)
	}
	if res.Preemptions != 0 {
		t.Errorf("Natjam evicted a production job %d times", res.Preemptions)
	}
}

func TestSRPTPreemptsAndScratchRestartCosts(t *testing.T) {
	big := sizedJob(0, 30000)
	small := sizedJob(1, 1000)
	run := func(cp cluster.CheckpointPolicy) *sim.Result {
		res, err := sim.Run(sim.Config{
			Cluster:    testCluster(1, 1),
			Scheduler:  rrScheduler{},
			Preemptor:  NewSRPT(),
			Checkpoint: cp,
			Epoch:      10 * units.Second,
		}, workload(sizedJob(0, 30000), sizedJob(1, 1000)))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	_ = big
	_ = small
	scratch := run(cluster.NoCheckpoint())
	if scratch.Preemptions == 0 {
		t.Fatal("SRPT should preempt")
	}
	ckpt := run(cluster.DefaultCheckpoint())
	if scratch.Makespan < ckpt.Makespan {
		t.Errorf("scratch restarts (%v) should not beat checkpointed (%v)",
			scratch.Makespan, ckpt.Makespan)
	}
	if NewSRPT().Name() != "SRPT" {
		t.Error("name")
	}
}

func TestSRPTPriority(t *testing.T) {
	s := NewSRPT()
	j := sizedJob(0, 10000)
	js := &sim.JobState{Dag: j}
	ts := &sim.TaskState{Task: j.Task(0), Job: js, Phase: sim.Queued, QueuedAt: 0, Deadline: units.Forever}
	js.Tasks = []*sim.TaskState{ts}
	// wait 20 s, remaining 10 s: P = 0.5*20 - 1*10 = 0.
	if got := s.priority(ts, 20*units.Second, 1000); got != 0 {
		t.Errorf("priority = %v, want 0", got)
	}
}

func TestPropertyBaselinePreemptorsTerminate(t *testing.T) {
	// Every baseline must drive contended workloads to completion — the
	// no-checkpoint SRPT path is the historically live-lock-prone one.
	f := func(seed int64) bool {
		type pol struct {
			pre sim.Preemptor
			cp  cluster.CheckpointPolicy
		}
		for _, p := range []pol{
			{Amoeba{}, cluster.DefaultCheckpoint()},
			{Natjam{}, cluster.DefaultCheckpoint()},
			{NewSRPT(), cluster.NoCheckpoint()},
		} {
			spec := trace.DefaultSpec(6, seed)
			spec.TaskScale = 0.03
			spec.MeanTaskSizeMI *= 25
			w, err := trace.Generate(spec)
			if err != nil {
				return false
			}
			res, err := sim.Run(sim.Config{
				Cluster:    cluster.EC2(3),
				Scheduler:  rrScheduler{},
				Preemptor:  p.pre,
				Checkpoint: p.cp,
				MaxEvents:  5_000_000,
			}, w)
			if err != nil || res.JobsCompleted != 6 {
				t.Logf("seed %d policy %s: err=%v", seed, p.pre.Name(), err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}
