// Package eventq provides the discrete-event core of the cluster
// simulator: a priority queue of timestamped events and a simulation
// clock. Events at equal timestamps pop in insertion order (FIFO), which
// keeps simulations fully deterministic.
package eventq

import (
	"container/heap"
	"sort"
	"sync/atomic"

	"dsp/internal/units"
)

// Event is anything scheduled to happen at a point in simulated time.
type Event interface {
	// Fire executes the event at its scheduled time.
	Fire(now units.Time)
}

// Func adapts a plain function to the Event interface.
type Func func(now units.Time)

// Fire calls f.
func (f Func) Fire(now units.Time) { f(now) }

// Tag is an optional serializable descriptor attached to a scheduled
// event. Events are closures and cannot be persisted; a Tag records, in
// caller-defined terms (a kind plus up to two integer operands and one
// float), enough to reconstruct the closure after a crash. The zero Tag
// means "untagged". Tags live inline in the queue's pooled items, so
// tagging costs no allocation.
type Tag struct {
	// Kind is a caller-defined event-type discriminator (0 = untagged).
	Kind uint8
	// A and B are kind-specific integer operands (job/task/node indices).
	A, B int32
	// F is a kind-specific float operand (e.g. a straggler speed factor).
	F float64
}

// PendingEvent is one scheduled-but-unfired event as enumerated by
// Pending: its absolute fire time and its Tag.
type PendingEvent struct {
	At  units.Time
	Tag Tag
}

type item struct {
	at  units.Time
	seq uint64
	ev  Event
	tag Tag
	// index in heap, -1 if removed
	index int
	// gen counts reuses of this item through the queue's free list. A
	// Handle remembers the generation it was issued for, so a stale handle
	// held across the event's firing can never cancel the item's next
	// occupant.
	gen uint64
}

// Handle allows cancelling a scheduled event.
type Handle struct {
	it  *item
	gen uint64
}

// Cancelled reports whether the event was cancelled or already fired.
func (h Handle) Cancelled() bool {
	return h.it == nil || h.it.gen != h.gen || h.it.index == -1
}

type pq []*item

func (p pq) Len() int { return len(p) }
func (p pq) Less(i, j int) bool {
	if p[i].at != p[j].at {
		return p[i].at < p[j].at
	}
	return p[i].seq < p[j].seq
}
func (p pq) Swap(i, j int) {
	p[i], p[j] = p[j], p[i]
	p[i].index = i
	p[j].index = j
}
func (p *pq) Push(x any) {
	it := x.(*item)
	it.index = len(*p)
	*p = append(*p, it)
}
func (p *pq) Pop() any {
	old := *p
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	it.index = -1
	*p = old[:n-1]
	return it
}

// Queue is a deterministic discrete-event queue with a clock.
type Queue struct {
	h   pq
	seq uint64
	now units.Time
	// free recycles fired and cancelled items so a steady-state simulation
	// loop (schedule → fire → schedule) allocates nothing per event.
	free []*item
	// stop, when set, is polled between events by Run so a signal handler
	// can interrupt a long drain at a clean inter-event boundary.
	stop *atomic.Bool
}

// New returns an empty queue with the clock at zero.
func New() *Queue { return &Queue{} }

// NewAt returns an empty queue with the clock pre-advanced to now. Used
// when restoring a simulation from a snapshot: events re-armed afterwards
// keep their original absolute times instead of being clamped to zero.
func NewAt(now units.Time) *Queue { return &Queue{now: now} }

// SetStop registers an external stop flag. When the flag is set, Run
// returns after the in-flight event completes instead of draining.
func (q *Queue) SetStop(f *atomic.Bool) { q.stop = f }

// Now returns the current simulated time.
func (q *Queue) Now() units.Time { return q.now }

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.h) }

// At schedules ev to fire at absolute time at. Scheduling in the past
// (before the current clock) clamps to the current clock so causality is
// preserved. The event is untagged (zero Tag).
func (q *Queue) At(at units.Time, ev Event) Handle {
	return q.AtTag(at, Tag{}, ev)
}

// AtTag schedules ev at absolute time at with a serializable tag
// describing how to reconstruct it (see Tag). Past times clamp to the
// current clock.
func (q *Queue) AtTag(at units.Time, tag Tag, ev Event) Handle {
	if at < q.now {
		at = q.now
	}
	var it *item
	if n := len(q.free); n > 0 {
		it = q.free[n-1]
		q.free[n-1] = nil
		q.free = q.free[:n-1]
		it.at, it.seq, it.ev, it.tag = at, q.seq, ev, tag
	} else {
		it = &item{at: at, seq: q.seq, ev: ev, tag: tag}
	}
	q.seq++
	heap.Push(&q.h, it)
	return Handle{it: it, gen: it.gen}
}

// After schedules ev to fire d after the current clock.
func (q *Queue) After(d units.Time, ev Event) Handle {
	return q.AtTag(q.now+d, Tag{}, ev)
}

// AfterTag schedules a tagged event d after the current clock.
func (q *Queue) AfterTag(d units.Time, tag Tag, ev Event) Handle {
	return q.AtTag(q.now+d, tag, ev)
}

// Pending returns a snapshot of every scheduled event's (time, tag)
// pair, ordered exactly as the events would fire: by time, then by
// scheduling order. Re-arming events from this list in order on a fresh
// queue reproduces the original firing sequence, including FIFO
// tie-breaks at equal timestamps.
func (q *Queue) Pending() []PendingEvent {
	idx := make([]*item, len(q.h))
	copy(idx, q.h)
	sort.Slice(idx, func(i, j int) bool {
		if idx[i].at != idx[j].at {
			return idx[i].at < idx[j].at
		}
		return idx[i].seq < idx[j].seq
	})
	out := make([]PendingEvent, len(idx))
	for i, it := range idx {
		out[i] = PendingEvent{At: it.at, Tag: it.tag}
	}
	return out
}

// Cancel removes a scheduled event; firing an already-fired or cancelled
// handle is a no-op and returns false.
func (q *Queue) Cancel(h Handle) bool {
	if h.it == nil || h.it.gen != h.gen || h.it.index == -1 {
		return false
	}
	heap.Remove(&q.h, h.it.index)
	q.recycle(h.it)
	return true
}

// recycle retires an item (fired or cancelled) to the free list, bumping
// its generation so stale handles turn inert.
func (q *Queue) recycle(it *item) {
	it.index = -1
	it.ev = nil
	it.gen++
	q.free = append(q.free, it)
}

// Step pops and fires the earliest event, advancing the clock to its
// timestamp. It returns false when the queue is empty.
func (q *Queue) Step() bool {
	if len(q.h) == 0 {
		return false
	}
	it := heap.Pop(&q.h).(*item)
	q.now = it.at
	ev := it.ev
	// Retire before firing: the handler may immediately schedule new
	// events, and the freshest item is the cache-warm one to hand out.
	q.recycle(it)
	ev.Fire(q.now)
	return true
}

// RunUntil fires events in order until the clock would pass limit or the
// queue drains. Events scheduled exactly at limit still fire. It returns
// the number of events fired.
func (q *Queue) RunUntil(limit units.Time) int {
	fired := 0
	for len(q.h) > 0 && q.h[0].at <= limit {
		q.Step()
		fired++
	}
	if q.now < limit && len(q.h) == 0 {
		q.now = limit
	}
	return fired
}

// Run drains the queue completely, returning the number of events fired
// and whether the queue actually drained. A safety cap guards against
// runaway self-rescheduling loops: when maxEvents > 0 and the cap is
// reached, Run stops firing and returns drained=false with events still
// pending.
func (q *Queue) Run(maxEvents int) (fired int, drained bool) {
	for q.Step() {
		fired++
		if maxEvents > 0 && fired >= maxEvents {
			return fired, q.Len() == 0
		}
		if q.stop != nil && q.stop.Load() {
			return fired, q.Len() == 0
		}
	}
	return fired, true
}

// PeekTime returns the timestamp of the earliest pending event, or
// units.Forever if the queue is empty.
func (q *Queue) PeekTime() units.Time {
	if len(q.h) == 0 {
		return units.Forever
	}
	return q.h[0].at
}
