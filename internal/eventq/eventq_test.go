package eventq

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"dsp/internal/units"
)

func TestFiresInTimeOrder(t *testing.T) {
	q := New()
	var got []units.Time
	rec := func(now units.Time) { got = append(got, now) }
	q.At(30, Func(rec))
	q.At(10, Func(rec))
	q.At(20, Func(rec))
	q.Run(0)
	want := []units.Time{10, 20, 30}
	for i, w := range want {
		if got[i] != w {
			t.Fatalf("fire order %v, want %v", got, want)
		}
	}
	if q.Now() != 30 {
		t.Errorf("clock = %v, want 30", q.Now())
	}
}

func TestEqualTimesFIFO(t *testing.T) {
	q := New()
	var got []int
	for i := 0; i < 5; i++ {
		i := i
		q.At(100, Func(func(units.Time) { got = append(got, i) }))
	}
	q.Run(0)
	for i, v := range got {
		if v != i {
			t.Fatalf("equal-time events fired out of insertion order: %v", got)
		}
	}
}

func TestAfterAndClockAdvance(t *testing.T) {
	q := New()
	var at units.Time = -1
	q.At(50, Func(func(now units.Time) {
		q.After(25, Func(func(n units.Time) { at = n }))
	}))
	q.Run(0)
	if at != 75 {
		t.Errorf("After fired at %v, want 75", at)
	}
}

func TestPastSchedulingClamps(t *testing.T) {
	q := New()
	var fired units.Time = -1
	q.At(100, Func(func(now units.Time) {
		q.At(10, Func(func(n units.Time) { fired = n })) // in the past
	}))
	q.Run(0)
	if fired != 100 {
		t.Errorf("past event fired at %v, want clamped to 100", fired)
	}
}

func TestCancel(t *testing.T) {
	q := New()
	fired := false
	h := q.At(10, Func(func(units.Time) { fired = true }))
	if h.Cancelled() {
		t.Error("fresh handle reports cancelled")
	}
	if !q.Cancel(h) {
		t.Error("Cancel returned false for live event")
	}
	if !h.Cancelled() {
		t.Error("handle not marked cancelled")
	}
	if q.Cancel(h) {
		t.Error("double cancel returned true")
	}
	q.Run(0)
	if fired {
		t.Error("cancelled event fired")
	}
}

func TestRunUntil(t *testing.T) {
	q := New()
	count := 0
	for _, at := range []units.Time{5, 10, 15, 20} {
		q.At(at, Func(func(units.Time) { count++ }))
	}
	n := q.RunUntil(10)
	if n != 2 || count != 2 {
		t.Errorf("RunUntil(10) fired %d, want 2", count)
	}
	if q.Len() != 2 {
		t.Errorf("%d events left, want 2", q.Len())
	}
	if q.PeekTime() != 15 {
		t.Errorf("PeekTime = %v, want 15", q.PeekTime())
	}
	q.RunUntil(100)
	if q.Now() != 100 {
		t.Errorf("RunUntil should advance clock to limit when drained; now=%v", q.Now())
	}
}

func TestRunCapStops(t *testing.T) {
	q := New()
	var reschedule func(units.Time)
	reschedule = func(units.Time) { q.After(1, Func(reschedule)) }
	q.At(0, Func(reschedule))
	fired, drained := q.Run(100)
	if fired != 100 {
		t.Errorf("fired = %d, want exactly the cap", fired)
	}
	if drained {
		t.Error("self-rescheduling loop cannot drain")
	}
	if q.Len() == 0 {
		t.Error("pending event should remain after the cap")
	}
}

func TestPeekEmptyIsForever(t *testing.T) {
	q := New()
	if q.PeekTime() != units.Forever {
		t.Error("PeekTime on empty queue should be Forever")
	}
	if q.Step() {
		t.Error("Step on empty queue should return false")
	}
}

func TestPropertyPopsSorted(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q := New()
		n := 1 + r.Intn(200)
		times := make([]units.Time, n)
		for i := range times {
			times[i] = units.Time(r.Intn(1000))
		}
		var got []units.Time
		for _, at := range times {
			q.At(at, Func(func(now units.Time) { got = append(got, now) }))
		}
		q.Run(0)
		if len(got) != n {
			return false
		}
		sorted := append([]units.Time(nil), times...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for i := range got {
			if got[i] != sorted[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPropertyCancelRemovesExactlyOne(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q := New()
		n := 2 + r.Intn(50)
		handles := make([]Handle, n)
		fired := 0
		for i := 0; i < n; i++ {
			handles[i] = q.At(units.Time(r.Intn(100)), Func(func(units.Time) { fired++ }))
		}
		k := r.Intn(n)
		q.Cancel(handles[k])
		q.Run(0)
		return fired == n-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRecycledItemNotCancelledByStaleHandle(t *testing.T) {
	q := New()
	hA := q.At(10, Func(func(units.Time) { t.Error("cancelled event A fired") }))
	if !q.Cancel(hA) {
		t.Fatal("cancel A failed")
	}
	// B reuses A's pooled item; A's stale handle must not reach it.
	firedB := false
	q.At(20, Func(func(units.Time) { firedB = true }))
	if q.Cancel(hA) {
		t.Error("stale handle cancelled the recycled item's new occupant")
	}
	if !hA.Cancelled() {
		t.Error("stale handle should stay cancelled")
	}
	q.Run(0)
	if !firedB {
		t.Error("event B lost to a stale cancel")
	}
}

func TestFiredItemHandleGoesStale(t *testing.T) {
	q := New()
	hA := q.At(10, Func(func(units.Time) {}))
	q.Run(0) // fires A; its item returns to the pool
	if !hA.Cancelled() {
		t.Error("handle of a fired event should read as no longer live")
	}
	firedC := false
	q.At(30, Func(func(units.Time) { firedC = true }))
	if q.Cancel(hA) {
		t.Error("handle of a fired event cancelled its item's new occupant")
	}
	q.Run(0)
	if !firedC {
		t.Error("event C lost to a stale cancel")
	}
}

func TestPoolReusesItems(t *testing.T) {
	q := New()
	// Repeated schedule/fire cycles must converge to zero allocations per
	// event once the pool is primed.
	for i := 0; i < 8; i++ {
		q.At(units.Time(i), Func(func(units.Time) {}))
	}
	q.Run(0)
	avg := testing.AllocsPerRun(100, func() {
		q.At(q.Now()+1, Func(func(units.Time) {}))
		q.Step()
	})
	if avg > 0.1 {
		t.Errorf("steady-state allocs per schedule+fire = %v, want 0", avg)
	}
}
