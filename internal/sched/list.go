package sched

import (
	"container/heap"
	"sort"

	"dsp/internal/cluster"
	"dsp/internal/dag"
	"dsp/internal/sim"
	"dsp/internal/units"
)

// DepScores computes the static dependency score of every task in a job:
// leaves score 1 and every other task scores 1 + Σ_children (γ+1)·score,
// the structural analogue of the recursive priority Formula (12). Tasks
// whose completion unlocks more descendants — especially at higher levels
// — score higher and are scheduled earlier.
func DepScores(j *dag.Job, gamma float64) ([]float64, error) {
	order, err := j.TopoOrder()
	if err != nil {
		return nil, err
	}
	scores := make([]float64, j.Len())
	for i := len(order) - 1; i >= 0; i-- {
		t := order[i]
		s := 1.0
		for _, c := range j.Children(t) {
			s += (gamma + 1) * scores[c]
		}
		scores[t] = s
	}
	return scores, nil
}

// slotHeap is a min-heap of slot-availability times for one node.
type slotHeap []units.Time

func (h slotHeap) Len() int           { return len(h) }
func (h slotHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h slotHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *slotHeap) Push(x any)        { *h = append(*h, x.(units.Time)) }
func (h *slotHeap) Pop() any          { old := *h; n := len(old); v := old[n-1]; *h = old[:n-1]; return v }

// nodePlan tracks one node's simulated slot availability during list
// scheduling.
type nodePlan struct {
	id    cluster.NodeID
	speed float64
	risk  float64 // decayed health penalty, weighted by DSP.RiskAversion
	slots slotHeap
}

// readyItem is a schedulable pending task with its rank.
type readyItem struct {
	task     *sim.TaskState
	depScore float64
	bottom   float64
}

type readyHeap []readyItem

func (h readyHeap) Len() int { return len(h) }
func (h readyHeap) Less(i, j int) bool {
	a, b := h[i], h[j]
	if a.depScore != b.depScore {
		return a.depScore > b.depScore
	}
	if a.bottom != b.bottom {
		return a.bottom > b.bottom
	}
	if a.task.Task.Job != b.task.Task.Job {
		return a.task.Task.Job < b.task.Task.Job
	}
	return a.task.Task.ID < b.task.Task.ID
}
func (h readyHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *readyHeap) Push(x any)   { *h = append(*h, x.(readyItem)) }
func (h *readyHeap) Pop() any {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}

// scheduleList is the scalable offline engine: dependency-score-ranked
// list scheduling with earliest-finish-time placement onto node slots.
func (d *DSP) scheduleList(now units.Time, pending []*sim.JobState, v *sim.View) []sim.Assignment {
	c := v.Cluster()
	plans := make([]*nodePlan, c.Len())
	finish := make(map[dag.Key]units.Time) // estimated finish of placed/active tasks

	meanSpeed := c.MeanSpeed()
	for k := range plans {
		id := cluster.NodeID(k)
		np := &nodePlan{id: id, speed: v.Speed(id)}
		if d.RiskAversion > 0 {
			if v.Blacklisted(id) {
				np.speed = 0 // treat like a down node: nothing placed here
			} else {
				np.risk = v.NodePenalty(id)
			}
		}
		node := c.Node(id)
		np.slots = make(slotHeap, 0, node.Slots)
		for s := 0; s < node.Slots; s++ {
			np.slots = append(np.slots, now)
		}
		// Fold the current backlog into the plan: running tasks finish at
		// now+remaining; queued tasks drain in queue order.
		running := append([]*sim.TaskState(nil), v.Running(id)...)
		sort.Slice(running, func(a, b int) bool {
			return running[a].LiveRemainingTime(now, np.speed) < running[b].LiveRemainingTime(now, np.speed)
		})
		for i, rt := range running {
			fin := now + rt.LiveRemainingTime(now, np.speed)
			if i < len(np.slots) {
				np.slots[i] = fin
			}
			finish[rt.Key()] = fin
		}
		heap.Init(&np.slots)
		for _, qt := range v.Queue(id) {
			avail := heap.Pop(&np.slots).(units.Time)
			end := avail + qt.RemainingTime(np.speed)
			heap.Push(&np.slots, end)
			finish[qt.Key()] = end
		}
		plans[k] = np
	}

	// Rank pending tasks: dependency score then bottom level. A job with
	// an invalid (cyclic) DAG can never run; its scores fall back to
	// zeros so its tasks are still assigned rather than silently starving
	// the simulation (the engine would otherwise wait on them forever).
	depScores := make(map[*sim.JobState][]float64)
	bottoms := make(map[*sim.JobState][]float64)
	for _, j := range pending {
		ds, err := DepScores(j.Dag, d.Gamma)
		if err != nil {
			ds = make([]float64, j.Dag.Len())
		}
		depScores[j] = ds
		exec := func(id dag.TaskID) float64 { return j.Dag.Task(id).Size / meanSpeed }
		bl, err := j.Dag.BottomLevel(exec)
		if err != nil {
			bl = make([]float64, j.Dag.Len())
		}
		bottoms[j] = bl
	}

	// Ready set: pending tasks all of whose parents are non-pending or
	// already placed this round.
	placed := make(map[dag.Key]bool)
	isReady := func(t *sim.TaskState) bool {
		for _, p := range t.Job.Dag.Parents(t.Task.ID) {
			ps := t.Job.Tasks[p]
			if ps.Phase == sim.Pending && !placed[ps.Key()] {
				return false
			}
		}
		return true
	}

	var ready readyHeap
	pendingCount := 0
	for _, j := range pending {
		if depScores[j] == nil {
			continue
		}
		for _, t := range j.PendingTasks() {
			pendingCount++
			if isReady(t) {
				heap.Push(&ready, readyItem{
					task:     t,
					depScore: depScores[j][t.Task.ID],
					bottom:   bottoms[j][t.Task.ID],
				})
			}
		}
	}

	var out []sim.Assignment
	inReady := make(map[dag.Key]bool)
	for ready.Len() > 0 {
		it := heap.Pop(&ready).(readyItem)
		t := it.task

		// Earliest parent-imposed start.
		var parentDone units.Time = now
		for _, p := range t.Job.Dag.Parents(t.Task.ID) {
			ps := t.Job.Tasks[p]
			var pf units.Time
			if ps.Phase == sim.Done {
				pf = ps.DoneAt
			} else if f, ok := finish[ps.Key()]; ok {
				pf = f
			} else {
				pf = now // unknown: optimistic
			}
			if pf > parentDone {
				parentDone = pf
			}
		}

		// Earliest-finish-time placement across nodes; off-preferred
		// placement is penalized by the remote-input cost when locality
		// awareness is on.
		var best *nodePlan
		var bestStart, bestFinish units.Time = 0, units.Forever
		for _, np := range plans {
			if len(np.slots) == 0 || np.speed <= 0 {
				continue
			}
			avail := np.slots[0] // heap min
			start := units.Max(avail, parentDone)
			exec := units.FromSeconds(t.Task.Size / np.speed)
			fin := start + exec
			if d.LocalityPenalty > 0 && t.Task.Preferred >= 0 && int(np.id) != t.Task.Preferred {
				fin += d.LocalityPenalty
			}
			if np.risk > 0 {
				fin += units.Time(d.RiskAversion * np.risk * float64(exec))
			}
			if fin < bestFinish || (fin == bestFinish && best != nil && np.id < best.id) {
				best = np
				bestStart = start
				bestFinish = fin
			}
		}
		if best == nil {
			continue
		}
		heap.Pop(&best.slots)
		heap.Push(&best.slots, bestFinish)
		finish[t.Key()] = bestFinish
		placed[t.Key()] = true
		out = append(out, sim.Assignment{Task: t, Node: best.id, Start: bestStart})

		// Children may have become ready.
		for _, cid := range t.Job.Dag.Children(t.Task.ID) {
			cs := t.Job.Tasks[cid]
			if cs.Phase != sim.Pending || placed[cs.Key()] || inReady[cs.Key()] {
				continue
			}
			if isReady(cs) {
				inReady[cs.Key()] = true
				heap.Push(&ready, readyItem{
					task:     cs,
					depScore: depScores[cs.Job][cid],
					bottom:   bottoms[cs.Job][cid],
				})
			}
		}
	}
	return out
}
