package sched

import (
	"math"
	"sort"

	"dsp/internal/cluster"
	"dsp/internal/dag"
	"dsp/internal/lp"
	"dsp/internal/sim"
	"dsp/internal/units"
)

// vm is one schedulable slot of a node as offered to the ILP; the paper
// assigns tasks to nodes, and a node with S slots is S unit-capacity
// machines from the model's perspective.
type vm struct {
	node  cluster.NodeID
	speed float64
	avail float64 // seconds from now until the slot frees
}

// ilpOutcome reports how an exact solve went, so Schedule can walk the
// degradation ladder and label the downgrade it takes.
type ilpOutcome struct {
	ok     bool   // a usable (possibly non-optimal) plan was produced
	exact  bool   // the plan is provably optimal
	warm   bool   // branch-and-bound was seeded with a feasible warm start
	reason string // why the solve fell short of exact, for the event log
	nodes  int    // branch-and-bound nodes explored
}

// scheduleILP builds the paper's ILP (Equations 3–11) over the pending
// tasks and solves it under the configured node/pivot budgets. An
// Optimal solve returns exact=true; an Incumbent (budget exhausted
// mid-search) still returns ok=true with the best feasible plan found —
// the anytime contract — and anything else returns ok=false (the caller
// falls back to the list engine, mirroring the paper's relax-and-round
// escape hatch).
//
// Formulation, with start_t the start time of task t (seconds from now),
// e_{t,k} its execution time on machine k, p_t its estimated preemption
// cost N^p·(t^r+σ), and MS the makespan:
//
//	min MS                                                          (3)
//	start_t + Σ_k e_{t,k}·x_{t,k} + p_t ≤ MS        ∀t              (4)
//	ordering on shared machines via y binaries and big-M            (5,8,9)
//	start_t + Σ_k e_{t,k}·x_{t,k} + p_t ≤ d_t       ∀t w/ deadline  (6)
//	start_c ≥ start_p + Σ_k e_{p,k}·x_{p,k}         ∀ edge p→c      (7)
//	Σ_k x_{t,k} = 1, x binary                       ∀t              (10)
//	start_t ≥ avail_k − M(1 − x_{t,k})              ∀t,k            (11)
func (d *DSP) scheduleILP(now units.Time, pending []*sim.JobState, v *sim.View) ([]sim.Assignment, ilpOutcome) {
	var tasks []*sim.TaskState
	for _, j := range pending {
		tasks = append(tasks, j.PendingTasks()...)
	}
	if len(tasks) == 0 {
		return nil, ilpOutcome{ok: true, exact: true}
	}

	vms := buildVMs(now, v)
	if len(vms) == 0 {
		return nil, ilpOutcome{reason: "no-usable-machines"}
	}
	// The exact solver is exponential in assignment binaries (tasks ×
	// VMs); past a small VM budget the relax-and-round list engine is the
	// right tool (a node with S slots contributes S VMs, so a "small"
	// cluster can still be a large ILP).
	if len(vms) > 2*d.ILPNodeLimit {
		return nil, ilpOutcome{reason: "model-too-large"}
	}

	// Execution times and preemption cost estimates.
	nT, nK := len(tasks), len(vms)
	e := make([][]float64, nT)
	var meanSize, totalWork float64
	for _, t := range tasks {
		meanSize += t.Task.Size
	}
	meanSize /= float64(nT)
	for i, t := range tasks {
		e[i] = make([]float64, nK)
		for k, m := range vms {
			e[i][k] = t.Task.Size / m.speed
		}
		totalWork += t.Task.Size
	}
	cp := v.Checkpoint()
	loadFactor := totalWork / (v.Cluster().MeanSpeed() * float64(nK)) / math.Max(1, (5*units.Minute).Seconds())
	pcost := make([]float64, nT)
	for i, t := range tasks {
		np := EstimatePreemptions(t.Task.Size, meanSize, loadFactor)
		pcost[i] = float64(np) * (cp.Recovery + d.Sigma).Seconds()
	}

	// Big-M: generous horizon.
	M := 0.0
	for i := range tasks {
		worst := 0.0
		for k := range vms {
			if e[i][k] > worst {
				worst = e[i][k]
			}
		}
		M += worst + pcost[i]
	}
	for _, m := range vms {
		if m.avail > 0 {
			M += m.avail
		}
	}
	M = M*2 + 1

	model := lp.NewModel("dsp-offline", lp.Minimize)
	model.MaxNodes = d.ILPNodeBudget
	if model.MaxNodes <= 0 {
		model.MaxNodes = DefaultILPNodeBudget
	}
	model.MaxPivots = d.ILPPivotBudget

	ms := model.AddVar(0, math.Inf(1), 1, "MS")
	start := make([]lp.VarID, nT)
	for i := range tasks {
		start[i] = model.AddVar(0, math.Inf(1), 0, "s")
	}
	x := make([][]lp.VarID, nT)
	for i := range tasks {
		x[i] = make([]lp.VarID, nK)
		for k := range vms {
			x[i][k] = model.AddBinVar(0, "x")
		}
	}

	// (10) each task on exactly one machine.
	for i := range tasks {
		terms := make([]lp.Term, nK)
		for k := range vms {
			terms[k] = lp.Term{Var: x[i][k], Coef: 1}
		}
		model.AddConstraint(terms, lp.EQ, 1, "assign")
	}

	// (4) completion ≤ makespan; (6) completion ≤ deadline.
	for i, t := range tasks {
		terms := []lp.Term{{Var: start[i], Coef: 1}, {Var: ms, Coef: -1}}
		for k := range vms {
			terms = append(terms, lp.Term{Var: x[i][k], Coef: e[i][k]})
		}
		model.AddConstraint(terms, lp.LE, -pcost[i], "makespan")

		if t.Deadline != units.Forever {
			dl := (t.Deadline - now).Seconds()
			if dl < 0 {
				continue // already missed; do not make the model infeasible
			}
			dterms := []lp.Term{{Var: start[i], Coef: 1}}
			for k := range vms {
				dterms = append(dterms, lp.Term{Var: x[i][k], Coef: e[i][k]})
			}
			model.AddConstraint(dterms, lp.LE, dl-pcost[i], "deadline")
		}
	}

	// (7) dependency edges among pending tasks; completed/active parents
	// impose constant lower bounds.
	idx := make(map[*sim.TaskState]int, nT)
	for i, t := range tasks {
		idx[t] = i
	}
	extLB := make([]float64, nT) // per-task external lower bound, reused by the warm start
	for i, t := range tasks {
		for _, p := range t.Job.Dag.Parents(t.Task.ID) {
			ps := t.Job.Tasks[p]
			if pi, ok := idx[ps]; ok {
				terms := []lp.Term{{Var: start[i], Coef: 1}, {Var: start[pi], Coef: -1}}
				for k := range vms {
					terms = append(terms, lp.Term{Var: x[pi][k], Coef: -e[pi][k]})
				}
				model.AddConstraint(terms, lp.GE, 0, "dep")
			} else {
				bound := 0.0
				switch ps.Phase {
				case sim.Done:
					// Already finished: no constraint needed.
				case sim.Running, sim.Queued, sim.Suspended:
					bound = (ps.LiveRemainingTime(now, v.Speed(ps.Node)) + units.Max(0, ps.PlannedStart-now)).Seconds()
				}
				if bound > 0 {
					model.AddConstraint([]lp.Term{{Var: start[i], Coef: 1}}, lp.GE, bound, "dep-ext")
					if bound > extLB[i] {
						extLB[i] = bound
					}
				}
			}
		}
	}

	// (11) machine availability.
	for i := range tasks {
		for k, m := range vms {
			if m.avail <= 0 {
				continue
			}
			model.AddConstraint([]lp.Term{
				{Var: start[i], Coef: 1},
				{Var: x[i][k], Coef: -M},
			}, lp.GE, m.avail-M, "avail")
		}
	}

	// (5,8,9) disjunctive ordering on shared machines.
	yID := make([][]lp.VarID, nT)
	for i := range yID {
		yID[i] = make([]lp.VarID, nT)
	}
	for i := 0; i < nT; i++ {
		for u := i + 1; u < nT; u++ {
			y := model.AddBinVar(0, "y")
			yID[i][u] = y
			for k := range vms {
				// i before u on k when y=1.
				model.AddConstraint([]lp.Term{
					{Var: start[i], Coef: 1},
					{Var: start[u], Coef: -1},
					{Var: y, Coef: M},
					{Var: x[i][k], Coef: M},
					{Var: x[u][k], Coef: M},
				}, lp.LE, 3*M-e[i][k], "order")
				// u before i on k when y=0.
				model.AddConstraint([]lp.Term{
					{Var: start[u], Coef: 1},
					{Var: start[i], Coef: -1},
					{Var: y, Coef: -M},
					{Var: x[i][k], Coef: M},
					{Var: x[u][k], Coef: M},
				}, lp.LE, 2*M-e[u][k], "order")
			}
		}
	}

	if !d.DisableWarmStart {
		if w := buildWarmVector(model.NumVars(), now, tasks, vms, e, pcost,
			idx, extLB, d.prevPlan, ms, start, x, yID); w != nil {
			model.SetWarmStart(w)
		}
	}

	sol := model.Solve()
	if !sol.HasSolution() {
		return nil, ilpOutcome{reason: sol.Status.String(), nodes: sol.Nodes}
	}

	if d.prevPlan == nil {
		d.prevPlan = make(map[dag.Key]warmAssign)
	}
	clear(d.prevPlan) // every still-pending task is in this solve
	out := make([]sim.Assignment, 0, nT)
	for i, t := range tasks {
		for k := range vms {
			if sol.Value(x[i][k]) > 0.5 {
				at := now + units.FromSeconds(sol.Value(start[i]))
				out = append(out, sim.Assignment{
					Task:  t,
					Node:  vms[k].node,
					Start: at,
				})
				d.prevPlan[t.Task.Key()] = warmAssign{node: vms[k].node, start: at}
				break
			}
		}
	}
	return out, ilpOutcome{
		ok:     true,
		exact:  sol.Status == lp.Optimal,
		warm:   sol.WarmStarted,
		reason: sol.Status.String(),
		nodes:  sol.Nodes,
	}
}

// buildVMs expands nodes into per-slot machines with availability
// estimates derived from the current running set and queue backlog.
func buildVMs(now units.Time, v *sim.View) []vm {
	c := v.Cluster()
	var out []vm
	for k := 0; k < c.Len(); k++ {
		id := cluster.NodeID(k)
		node := c.Node(id)
		speed := v.Speed(id)
		if speed <= 0 || node.Slots <= 0 {
			continue
		}
		slots := make([]float64, node.Slots)
		running := v.Running(id)
		for i, rt := range running {
			if i < len(slots) {
				slots[i] = rt.LiveRemainingTime(now, speed).Seconds()
			}
		}
		sort.Float64s(slots)
		for _, qt := range v.Queue(id) {
			slots[0] += qt.RemainingTime(speed).Seconds()
			sort.Float64s(slots)
		}
		for _, s := range slots {
			out = append(out, vm{node: id, speed: speed, avail: s})
		}
	}
	return out
}
