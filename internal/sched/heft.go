package sched

import (
	"container/heap"
	"sort"

	"dsp/internal/cluster"
	"dsp/internal/dag"
	"dsp/internal/sim"
	"dsp/internal/units"
)

// HEFT implements the classic Heterogeneous Earliest Finish Time list
// scheduler (Topcuoglu et al., the paper's reference [10]) as an
// additional offline comparator: tasks are ordered by *upward rank* (the
// bottom level — longest execution path from the task to any exit task,
// at mean cluster speed) and placed one at a time on the node that
// minimizes the task's earliest finish time. Unlike DSP's list engine it
// does not weight tasks by how many dependents their completion unlocks,
// and unlike the full DSP system it has no deadline awareness or online
// phase.
type HEFT struct{}

// Name implements sim.Scheduler.
func (HEFT) Name() string { return "HEFT" }

// Schedule implements sim.Scheduler.
func (HEFT) Schedule(now units.Time, pending []*sim.JobState, v *sim.View) []sim.Assignment {
	c := v.Cluster()
	meanSpeed := c.MeanSpeed()
	if meanSpeed <= 0 {
		return nil
	}

	// Node slot plans seeded from live state, as in the DSP list engine.
	plans := make([]*nodePlan, 0, c.Len())
	finish := make(map[dag.Key]units.Time)
	for k := 0; k < c.Len(); k++ {
		id := cluster.NodeID(k)
		np := &nodePlan{id: id, speed: v.Speed(id)}
		node := c.Node(id)
		np.slots = make(slotHeap, 0, node.Slots)
		for s := 0; s < node.Slots; s++ {
			np.slots = append(np.slots, now)
		}
		running := append([]*sim.TaskState(nil), v.Running(id)...)
		sort.Slice(running, func(a, b int) bool {
			return running[a].LiveRemainingTime(now, np.speed) < running[b].LiveRemainingTime(now, np.speed)
		})
		for i, rt := range running {
			fin := now + rt.LiveRemainingTime(now, np.speed)
			if i < len(np.slots) {
				np.slots[i] = fin
			}
			finish[rt.Key()] = fin
		}
		heap.Init(&np.slots)
		for _, qt := range v.Queue(id) {
			avail := heap.Pop(&np.slots).(units.Time)
			end := avail + qt.RemainingTime(np.speed)
			heap.Push(&np.slots, end)
			finish[qt.Key()] = end
		}
		plans = append(plans, np)
	}

	// Upward ranks per job; global order by descending rank with
	// deterministic tie-breaks. Ordering by upward rank is a valid
	// topological order, so parents always precede children.
	type ranked struct {
		t    *sim.TaskState
		rank float64
	}
	var all []ranked
	for _, j := range pending {
		exec := func(id dag.TaskID) float64 { return j.Dag.Task(id).Size / meanSpeed }
		bl, err := j.Dag.BottomLevel(exec)
		if err != nil {
			bl = make([]float64, j.Dag.Len())
		}
		for _, t := range j.PendingTasks() {
			all = append(all, ranked{t: t, rank: bl[t.Task.ID]})
		}
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].rank != all[b].rank {
			return all[a].rank > all[b].rank
		}
		if all[a].t.Task.Job != all[b].t.Task.Job {
			return all[a].t.Task.Job < all[b].t.Task.Job
		}
		return all[a].t.Task.ID < all[b].t.Task.ID
	})

	var out []sim.Assignment
	for _, r := range all {
		t := r.t
		var bound units.Time = now
		for _, p := range t.Job.Dag.Parents(t.Task.ID) {
			ps := t.Job.Tasks[p]
			var pf units.Time
			if ps.Phase == sim.Done {
				pf = ps.DoneAt
			} else if f, ok := finish[ps.Key()]; ok {
				pf = f
			}
			if pf > bound {
				bound = pf
			}
		}
		var best *nodePlan
		var bestStart, bestFinish units.Time = 0, units.Forever
		for _, np := range plans {
			if len(np.slots) == 0 || np.speed <= 0 {
				continue
			}
			start := units.Max(np.slots[0], bound)
			fin := start + units.FromSeconds(t.Task.Size/np.speed)
			if fin < bestFinish || (fin == bestFinish && best != nil && np.id < best.id) {
				best = np
				bestStart = start
				bestFinish = fin
			}
		}
		if best == nil {
			continue
		}
		heap.Pop(&best.slots)
		heap.Push(&best.slots, bestFinish)
		finish[t.Key()] = bestFinish
		out = append(out, sim.Assignment{Task: t, Node: best.id, Start: bestStart})
	}
	return out
}
