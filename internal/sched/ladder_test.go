package sched

import (
	"testing"

	"dsp/internal/sim"
	"dsp/internal/units"
)

// degradeRecorder captures every SolverDegraded event a run emits.
type degradeRecorder struct {
	sim.NopObserver
	events []sim.SolverDegradation
}

func (r *degradeRecorder) SolverDegraded(_ units.Time, d sim.SolverDegradation) {
	r.events = append(r.events, d)
}

func TestLadderExactSolveEmitsNoDegradation(t *testing.T) {
	j := sizedJob(0, 4000, 3000, 3000)
	d := NewDSP()
	d.Mode = ILPOnly
	rec := &degradeRecorder{}
	res, err := sim.Run(sim.Config{Cluster: testCluster(2, 1), Scheduler: d, Observer: rec},
		oneJobWorkload(j))
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 6*units.Second {
		t.Errorf("makespan = %v, want optimal 6s", res.Makespan)
	}
	if len(rec.events) != 0 || res.SolverDegradations != 0 {
		t.Errorf("exact solve degraded: events=%v count=%d", rec.events, res.SolverDegradations)
	}
}

func TestLadderAnytimeIncumbentUnderTightBudget(t *testing.T) {
	// A node budget far below what the exact solve needs forces the
	// anytime path: the run must still complete every task using the
	// best incumbent (or the list fallback), and each budget exhaustion
	// must surface as a SolverDegraded event.
	j := sizedJob(0, 4000, 3000, 3000, 2000)
	d := NewDSP()
	d.Mode = ILPOnly
	d.ILPNodeBudget = 6
	rec := &degradeRecorder{}
	res, err := sim.Run(sim.Config{Cluster: testCluster(2, 1), Scheduler: d, Observer: rec},
		oneJobWorkload(j))
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksCompleted != 4 {
		t.Errorf("completed %d tasks, want 4", res.TasksCompleted)
	}
	if len(rec.events) == 0 {
		t.Fatal("tight budget produced no SolverDegraded events")
	}
	if res.SolverDegradations != len(rec.events) {
		t.Errorf("Result counts %d degradations, observer saw %d",
			res.SolverDegradations, len(rec.events))
	}
	for _, ev := range rec.events {
		if ev.From != sim.TierILPExact {
			t.Errorf("degradation from %v, want from ilp-exact", ev.From)
		}
		if ev.To != sim.TierILPIncumbent && ev.To != sim.TierList {
			t.Errorf("degradation to %v, want ilp-incumbent or list", ev.To)
		}
	}
}

func TestLadderSizeCutoffEmitsDegradation(t *testing.T) {
	// 4 nodes × 3 slots = 12 VMs > 2×ILPNodeLimit(4): scheduleILP bails
	// on model size, and the bail-out must be visible as an event with
	// the model-too-large reason rather than a silent fallback.
	j := sizedJob(0, 1000, 1000, 1000)
	d := NewDSP()
	d.Mode = ILPOnly
	rec := &degradeRecorder{}
	res, err := sim.Run(sim.Config{Cluster: testCluster(4, 3), Scheduler: d, Observer: rec},
		oneJobWorkload(j))
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksCompleted != 3 {
		t.Errorf("completed %d tasks, want 3", res.TasksCompleted)
	}
	found := false
	for _, ev := range rec.events {
		if ev.To == sim.TierList && ev.Reason == "model-too-large" {
			found = true
		}
	}
	if !found {
		t.Errorf("no model-too-large degradation event; got %+v", rec.events)
	}
}

func TestLadderFIFODemotion(t *testing.T) {
	sizes := make([]float64, 40)
	for i := range sizes {
		sizes[i] = 1000
	}
	j := sizedJob(0, sizes...)
	d := NewDSP()
	d.Mode = ListOnly
	d.FIFOTaskLimit = 5
	rec := &degradeRecorder{}
	res, err := sim.Run(sim.Config{Cluster: testCluster(4, 2), Scheduler: d, Observer: rec},
		oneJobWorkload(j))
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksCompleted != 40 {
		t.Errorf("completed %d tasks, want 40", res.TasksCompleted)
	}
	found := false
	for _, ev := range rec.events {
		if ev.From == sim.TierList && ev.To == sim.TierFIFO {
			found = true
			if ev.Reason != "pending-tasks-over-limit" {
				t.Errorf("FIFO demotion reason = %q", ev.Reason)
			}
		}
	}
	if !found {
		t.Errorf("no list->fifo demotion event; got %+v", rec.events)
	}
}

func TestLadderFIFORespectsDependencies(t *testing.T) {
	// FIFO placement hands dependency enforcement to the engine; a chain
	// must still execute in order with no disorder.
	j := sizedJob(0, 1000, 1000, 1000, 1000, 1000, 1000)
	j.MustDep(0, 1)
	j.MustDep(1, 2)
	j.MustDep(2, 3)
	d := NewDSP()
	d.Mode = ListOnly
	d.FIFOTaskLimit = 1
	res, err := sim.Run(sim.Config{Cluster: testCluster(3, 1), Scheduler: d}, oneJobWorkload(j))
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksCompleted != 6 {
		t.Errorf("completed %d tasks, want 6", res.TasksCompleted)
	}
	if res.Disorders != 0 {
		t.Errorf("disorders = %d, want 0", res.Disorders)
	}
}
