package sched

import (
	"testing"

	"dsp/internal/sim"
	"dsp/internal/trace"
	"dsp/internal/units"
)

// Node 1 crashes twice (empty windows — no work is lost) before a
// two-task job arrives at 10 s. A fault-oblivious scheduler splits the
// tasks across both nodes (makespan 5 s past arrival); a risk-averse one
// sees node 1's health penalty and keeps both on node 0 (makespan 10 s).
func riskyRun(t *testing.T, d *DSP, threshold float64) *sim.Result {
	t.Helper()
	j := sizedJob(0, 5000, 5000)
	w := &trace.Workload{
		ArrivalRate: 3,
		Jobs:        []*trace.Job{{Class: trace.Small, Arrival: 10 * units.Second, DAG: j}},
	}
	res, err := sim.Run(sim.Config{
		Cluster:            testCluster(2, 1),
		Scheduler:          d,
		Period:             2 * units.Second,
		BlacklistThreshold: threshold,
		HealthHalfLife:     units.Hour,
		Faults: &sim.FaultPlan{Failures: []sim.NodeFailure{
			{Node: 1, At: units.Second, RecoverAfter: units.Second},
			{Node: 1, At: 3 * units.Second, RecoverAfter: units.Second},
		}},
	}, w)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRiskAversionAvoidsBlacklistedNode(t *testing.T) {
	// Threshold 1.9 < the ~2.0 penalty after two crashes: node 1 is
	// blacklisted by the time the job arrives.
	oblivious := &DSP{Mode: ListOnly, Gamma: 0.5}
	if res := riskyRun(t, oblivious, 1.9); res.Makespan != 5*units.Second {
		t.Errorf("oblivious makespan = %v, want 5s (tasks split)", res.Makespan)
	}
	averse := &DSP{Mode: ListOnly, Gamma: 0.5, RiskAversion: 0.5}
	if res := riskyRun(t, averse, 1.9); res.Makespan != 10*units.Second {
		t.Errorf("risk-averse makespan = %v, want 10s (node 1 shunned)", res.Makespan)
	}
}

func TestRiskAversionDiscountsUnhealthyNode(t *testing.T) {
	// Threshold high enough that node 1 is never blacklisted: only the
	// finish-time inflation (RiskAversion × penalty ≈ 2 × execution time)
	// steers work away. With RiskAversion 2 the 5 s task on node 1 costs
	// ~5 + 20 s — worse than queueing behind node 0.
	averse := &DSP{Mode: ListOnly, Gamma: 0.5, RiskAversion: 2}
	if res := riskyRun(t, averse, 100); res.Makespan != 10*units.Second {
		t.Errorf("discounted makespan = %v, want 10s (node 1 avoided)", res.Makespan)
	}
	mild := &DSP{Mode: ListOnly, Gamma: 0.5, RiskAversion: 0.1}
	if res := riskyRun(t, mild, 100); res.Makespan != 5*units.Second {
		t.Errorf("mild-aversion makespan = %v, want 5s (discount too small to matter)", res.Makespan)
	}
}
