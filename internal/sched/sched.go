// Package sched implements the offline phase of DSP (Section III of the
// paper): the periodic dependency-aware scheduler that derives a target
// node and start time for every task, minimizing makespan subject to
// dependency and deadline constraints.
//
// Two interchangeable engines implement the derivation:
//
//   - ILP: the paper's integer-linear-programming formulation
//     (Equations 3–11), built with assignment binaries x_{ij,k}, ordering
//     binaries y_{ij,uv,k} linearized with big-M disjunctive constraints,
//     and solved exactly with the pure-Go branch-and-bound in
//     internal/lp. Exact solving is exponential, so this engine is used
//     for small instances (the paper uses CPLEX and likewise relaxes and
//     rounds at scale).
//   - List: a dependency-aware list scheduler that mirrors the relaxation
//     heuristic: tasks are ranked by a dependency score (descendants
//     weighted by level, as in the priority of Section IV-A) plus their
//     bottom level, then placed earliest-finish-time-first onto node
//     slots, respecting precedence. This is the engine used at the scale
//     of the paper's experiments.
//
// The DSP scheduler picks automatically: ILP when the instance fits
// within ILPTaskLimit, the list engine otherwise.
package sched

import (
	"dsp/internal/dag"
	"dsp/internal/prof"
	"dsp/internal/sim"
	"dsp/internal/units"
)

// Mode selects the offline engine.
type Mode int

// Scheduler engine modes.
const (
	// Auto uses ILP for small instances and the list engine otherwise.
	Auto Mode = iota
	// ILPOnly always builds and solves the ILP.
	ILPOnly
	// ListOnly always uses the list heuristic.
	ListOnly
)

// DefaultILPNodeBudget is the branch-and-bound node budget of an exact
// solve when DSP.ILPNodeBudget is zero.
const DefaultILPNodeBudget = 20000

// DSP is the dependency-aware offline scheduler.
type DSP struct {
	// Mode selects between the exact ILP and the list heuristic.
	Mode Mode
	// ILPTaskLimit is the largest pending-task count solved exactly in
	// Auto mode.
	ILPTaskLimit int
	// ILPNodeLimit caps the number of (node × slot) virtual machines
	// offered to the ILP.
	ILPNodeLimit int
	// ILPNodeBudget caps branch-and-bound nodes per exact solve
	// (0 = DefaultILPNodeBudget). When the budget runs out, the solve is
	// anytime: the best incumbent found is still used and the downgrade
	// is reported as a SolverDegraded event.
	ILPNodeBudget int
	// ILPPivotBudget optionally caps total simplex pivots per exact
	// solve (0 = no extra cap beyond the per-LP default), bounding worst
	// cases where few branch-and-bound nodes each burn many pivots.
	ILPPivotBudget int
	// FIFOTaskLimit, when positive, demotes the scheduler below the list
	// engine to plain FIFO placement once the pending-task count exceeds
	// it — the bottom rung of the degradation ladder, for overloads
	// where even the list engine's ranking work is not worth paying.
	// 0 disables the demotion.
	FIFOTaskLimit int
	// Gamma is the level coefficient γ ∈ (0,1) of the dependency score
	// (Table II sets 0.5).
	Gamma float64
	// Sigma is the per-preemption wait threshold σ used in the estimated
	// preemption cost of the deadline constraint (0.05 s in the paper).
	Sigma units.Time
	// LocalityPenalty, when positive, makes the list engine
	// locality-aware (a paper future-work extension): placing a task off
	// its preferred data node adds this much to its estimated finish
	// time, steering ties — and near-ties — toward local placement. It
	// should match sim.Config.RemoteInputPenalty.
	LocalityPenalty units.Time
	// RiskAversion, when positive, makes the list engine fault-aware:
	// blacklisted nodes are skipped outright, and an unhealthy node's
	// estimated finish time is inflated by
	// RiskAversion × health-penalty × execution-time, steering work
	// toward nodes that have not recently crashed or faulted. Zero keeps
	// the engine oblivious (the paper's baseline behaviour).
	RiskAversion float64
	// DisableWarmStart turns off ILP warm-starting. By default every exact
	// solve seeds branch-and-bound with a greedy incumbent that replays the
	// previous period's plan for surviving tasks (see buildWarmVector); the
	// seed can only tighten pruning, but this knob allows cold/warm A-B
	// comparisons in benchmarks.
	DisableWarmStart bool

	// prevPlan remembers the previous exact solve's placement per task,
	// feeding the next period's warm start. Rebuilt after every solve, so
	// completed tasks age out automatically.
	prevPlan map[dag.Key]warmAssign
	// tm is the attached phase profiler (nil when the run is not
	// profiled); the engine wires it through SetProfiler.
	tm *prof.Timer
}

// SetProfiler implements prof.Instrumentable: the engine attaches its
// phase timer here so each degradation-ladder rung (ilp-solve,
// sched-list, sched-fifo) charges its own phase rather than the generic
// schedule phase.
func (d *DSP) SetProfiler(tm *prof.Timer) { d.tm = tm }

// NewDSP returns the scheduler with the paper's defaults.
func NewDSP() *DSP {
	return &DSP{
		Mode:         Auto,
		ILPTaskLimit: 10,
		ILPNodeLimit: 4,
		Gamma:        0.5,
		Sigma:        50 * units.Millisecond,
	}
}

// Name implements sim.Scheduler.
func (d *DSP) Name() string {
	switch d.Mode {
	case ILPOnly:
		return "DSP-ILP"
	case ListOnly:
		return "DSP-List"
	default:
		return "DSP"
	}
}

// Schedule implements sim.Scheduler. It walks the degradation ladder:
// exact ILP → anytime ILP incumbent → list engine → FIFO. Each rung is
// tried only when its preconditions hold, and every downgrade is
// reported through the view as a SolverDegraded event so overload
// behaviour is visible in metrics and traces.
func (d *DSP) Schedule(now units.Time, pending []*sim.JobState, v *sim.View) []sim.Assignment {
	nTasks := 0
	for _, j := range pending {
		nTasks += len(j.PendingTasks())
	}
	useILP := false
	switch d.Mode {
	case ILPOnly:
		useILP = true
	case Auto:
		useILP = nTasks > 0 && nTasks <= d.ILPTaskLimit &&
			v.Cluster().Len() <= d.ILPNodeLimit
	}
	if useILP {
		d.tm.Enter(prof.PhaseILPSolve)
		out, res := d.scheduleILP(now, pending, v)
		d.tm.Exit()
		switch {
		case res.ok && res.exact:
			return out
		case res.ok:
			// Budget ran out mid-search; the incumbent is feasible, just
			// not provably optimal. Use it — that is the anytime contract.
			v.ReportSolverDegraded(now, sim.SolverDegradation{
				From: sim.TierILPExact, To: sim.TierILPIncumbent,
				Reason: res.reason, PendingTasks: nTasks, Nodes: res.nodes,
			})
			return out
		default:
			// Exact solve produced nothing usable (model too large, no
			// usable machines, infeasible, budget spent before any
			// incumbent): fall to the heuristic rather than dropping the
			// period.
			v.ReportSolverDegraded(now, sim.SolverDegradation{
				From: sim.TierILPExact, To: sim.TierList,
				Reason: res.reason, PendingTasks: nTasks, Nodes: res.nodes,
			})
		}
	}
	if d.FIFOTaskLimit > 0 && nTasks > d.FIFOTaskLimit {
		v.ReportSolverDegraded(now, sim.SolverDegradation{
			From: sim.TierList, To: sim.TierFIFO,
			Reason: "pending-tasks-over-limit", PendingTasks: nTasks,
		})
		d.tm.Enter(prof.PhaseSchedFIFO)
		out := d.scheduleFIFO(now, pending, v)
		d.tm.Exit()
		return out
	}
	d.tm.Enter(prof.PhaseSchedList)
	out := d.scheduleList(now, pending, v)
	d.tm.Exit()
	return out
}

// EstimatePreemptions estimates N^p, the number of preemptions a task
// will experience, from the cluster load factor (outstanding work per
// slot per period) and the task's relative size, following the spirit of
// the checkpoint-scheduling estimator the paper cites ([29]): longer
// tasks under higher contention are preempted more.
func EstimatePreemptions(sizeMI, meanSizeMI, loadFactor float64) int {
	if meanSizeMI <= 0 || loadFactor <= 0 {
		return 0
	}
	est := loadFactor * sizeMI / meanSizeMI
	switch {
	case est < 0.5:
		return 0
	case est < 1.5:
		return 1
	case est < 3:
		return 2
	default:
		return 3
	}
}
