package sched

import (
	"testing"

	"dsp/internal/cluster"
	"dsp/internal/dag"
	"dsp/internal/sim"
	"dsp/internal/trace"
	"dsp/internal/units"
)

func testCluster(n, slots int) *cluster.Cluster {
	c := &cluster.Cluster{Theta1: 0.5, Theta2: 0.5}
	for i := 0; i < n; i++ {
		c.Nodes = append(c.Nodes, &cluster.Node{
			ID: cluster.NodeID(i), Name: "t", SCPU: 1000, SMem: 1000, Slots: slots,
			Capacity: dag.Resources{CPU: float64(slots), Mem: 16, DiskMB: 1e6, Bandwidth: 1e3},
		})
	}
	return c
}

func sizedJob(id dag.JobID, sizes ...float64) *dag.Job {
	j := dag.NewJob(id, len(sizes))
	for i, s := range sizes {
		j.Task(dag.TaskID(i)).Size = s
	}
	return j
}

func oneJobWorkload(j *dag.Job) *trace.Workload {
	return &trace.Workload{
		ArrivalRate: 3,
		Jobs:        []*trace.Job{{Class: trace.Small, Arrival: 0, DAG: j}},
	}
}

func TestDepScores(t *testing.T) {
	// Chain a->b->c: score(c)=1, score(b)=1+1.5, score(a)=1+1.5*2.5=4.75
	// with γ=0.5.
	j := sizedJob(0, 1, 1, 1)
	j.MustDep(0, 1)
	j.MustDep(1, 2)
	s, err := DepScores(j, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if s[2] != 1 || s[1] != 2.5 || s[0] != 4.75 {
		t.Errorf("scores = %v, want [4.75 2.5 1]", s)
	}
}

func TestDepScoresPreferDeeperDescendants(t *testing.T) {
	// Star: one root, 4 leaves (4 descendants at depth 1) vs. tree: root
	// with 2 children each having 2 children (2+4 descendants over 2
	// levels). The paper's Figure 3 argues the deeper structure wins.
	star := sizedJob(0, 1, 1, 1, 1, 1)
	for i := 1; i <= 4; i++ {
		star.MustDep(0, dag.TaskID(i))
	}
	tree := sizedJob(1, 1, 1, 1, 1, 1, 1, 1)
	tree.MustDep(0, 1)
	tree.MustDep(0, 2)
	tree.MustDep(1, 3)
	tree.MustDep(1, 4)
	tree.MustDep(2, 5)
	tree.MustDep(2, 6)
	ss, _ := DepScores(star, 0.5)
	ts, _ := DepScores(tree, 0.5)
	if ts[0] <= ss[0] {
		t.Errorf("tree root score %v should exceed star root score %v", ts[0], ss[0])
	}
}

func TestDepScoresCyclicError(t *testing.T) {
	j := sizedJob(0, 1, 1)
	j.MustDep(0, 1)
	j.MustDep(1, 0)
	if _, err := DepScores(j, 0.5); err == nil {
		t.Error("cycle accepted")
	}
}

func TestListSerialChain(t *testing.T) {
	j := sizedJob(0, 2000, 1000) // 2 s + 1 s at 1000 MIPS
	j.MustDep(0, 1)
	d := NewDSP()
	d.Mode = ListOnly
	res, err := sim.Run(sim.Config{Cluster: testCluster(2, 1), Scheduler: d}, oneJobWorkload(j))
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 3*units.Second {
		t.Errorf("makespan = %v, want 3s", res.Makespan)
	}
}

func TestListBalancesIndependentTasks(t *testing.T) {
	// Sizes 4,3,3 s on two single-slot nodes: optimum 6 s ({4},{3,3}).
	j := sizedJob(0, 4000, 3000, 3000)
	d := NewDSP()
	d.Mode = ListOnly
	res, err := sim.Run(sim.Config{Cluster: testCluster(2, 1), Scheduler: d}, oneJobWorkload(j))
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 6*units.Second {
		t.Errorf("makespan = %v, want 6s", res.Makespan)
	}
}

func TestListPrefersFasterNode(t *testing.T) {
	c := testCluster(2, 1)
	c.Nodes[1].SCPU = 4000 // g = 2500 vs 1000
	c.Nodes[1].SMem = 1000
	j := sizedJob(0, 5000)
	d := NewDSP()
	d.Mode = ListOnly
	res, err := sim.Run(sim.Config{Cluster: c, Scheduler: d}, oneJobWorkload(j))
	if err != nil {
		t.Fatal(err)
	}
	want := units.FromSeconds(5000.0 / 2500.0)
	if res.Makespan != want {
		t.Errorf("makespan = %v, want %v (fast node)", res.Makespan, want)
	}
}

func TestListHandlesLargeWorkload(t *testing.T) {
	spec := trace.DefaultSpec(6, 3)
	spec.TaskScale = 0.05
	w, err := trace.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDSP()
	d.Mode = ListOnly
	res, err := sim.Run(sim.Config{Cluster: cluster.RealCluster(10), Scheduler: d}, w)
	if err != nil {
		t.Fatal(err)
	}
	if res.JobsCompleted != 6 {
		t.Errorf("completed %d jobs, want 6", res.JobsCompleted)
	}
	if res.Disorders != 0 {
		t.Errorf("disorders = %d, want 0 (engine respects deps)", res.Disorders)
	}
}

func TestILPSerialOneNode(t *testing.T) {
	j := sizedJob(0, 2000, 1000)
	d := NewDSP()
	d.Mode = ILPOnly
	res, err := sim.Run(sim.Config{Cluster: testCluster(1, 1), Scheduler: d}, oneJobWorkload(j))
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 3*units.Second {
		t.Errorf("makespan = %v, want 3s (one machine serializes)", res.Makespan)
	}
}

func TestILPParallelTwoNodes(t *testing.T) {
	j := sizedJob(0, 2000, 2000)
	d := NewDSP()
	d.Mode = ILPOnly
	res, err := sim.Run(sim.Config{Cluster: testCluster(2, 1), Scheduler: d}, oneJobWorkload(j))
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 2*units.Second {
		t.Errorf("makespan = %v, want 2s (ILP must parallelize)", res.Makespan)
	}
}

func TestILPOptimalPartition(t *testing.T) {
	// 4,3,3 on two machines: ILP optimum 6 s.
	j := sizedJob(0, 4000, 3000, 3000)
	d := NewDSP()
	d.Mode = ILPOnly
	res, err := sim.Run(sim.Config{Cluster: testCluster(2, 1), Scheduler: d}, oneJobWorkload(j))
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 6*units.Second {
		t.Errorf("makespan = %v, want 6s", res.Makespan)
	}
}

func TestILPChainRespectsDependency(t *testing.T) {
	j := sizedJob(0, 1000, 1000, 1000)
	j.MustDep(0, 1)
	j.MustDep(1, 2)
	d := NewDSP()
	d.Mode = ILPOnly
	res, err := sim.Run(sim.Config{Cluster: testCluster(3, 1), Scheduler: d}, oneJobWorkload(j))
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 3*units.Second {
		t.Errorf("makespan = %v, want 3s (chain)", res.Makespan)
	}
}

func TestAutoFallsBackToListOnScale(t *testing.T) {
	// 40 tasks exceed ILPTaskLimit: Auto must fall back to the list
	// engine and still schedule everything.
	sizes := make([]float64, 40)
	for i := range sizes {
		sizes[i] = 1000
	}
	j := sizedJob(0, sizes...)
	d := NewDSP() // Auto
	res, err := sim.Run(sim.Config{Cluster: testCluster(4, 2), Scheduler: d}, oneJobWorkload(j))
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksCompleted != 40 {
		t.Errorf("completed %d tasks, want 40", res.TasksCompleted)
	}
	// 40 × 1 s over 8 slots = 5 s lower bound.
	if res.Makespan != 5*units.Second {
		t.Errorf("makespan = %v, want 5s", res.Makespan)
	}
}

func TestAutoUsesILPWhenSmall(t *testing.T) {
	j := sizedJob(0, 4000, 3000, 3000)
	d := NewDSP() // Auto: 3 tasks ≤ 10, 2 nodes ≤ 4 → ILP
	res, err := sim.Run(sim.Config{Cluster: testCluster(2, 1), Scheduler: d}, oneJobWorkload(j))
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 6*units.Second {
		t.Errorf("makespan = %v, want optimal 6s", res.Makespan)
	}
}

func TestEstimatePreemptions(t *testing.T) {
	if got := EstimatePreemptions(100, 100, 0); got != 0 {
		t.Errorf("zero load -> %d, want 0", got)
	}
	if got := EstimatePreemptions(100, 100, 1); got != 1 {
		t.Errorf("unit load -> %d, want 1", got)
	}
	if got := EstimatePreemptions(1000, 100, 1); got != 3 {
		t.Errorf("huge task -> %d, want 3", got)
	}
	if got := EstimatePreemptions(10, 100, 1); got != 0 {
		t.Errorf("tiny task -> %d, want 0", got)
	}
	if got := EstimatePreemptions(100, 0, 1); got != 0 {
		t.Errorf("degenerate mean -> %d, want 0", got)
	}
}

func TestSchedulerNames(t *testing.T) {
	d := NewDSP()
	if d.Name() != "DSP" {
		t.Errorf("Name = %q", d.Name())
	}
	d.Mode = ILPOnly
	if d.Name() != "DSP-ILP" {
		t.Errorf("Name = %q", d.Name())
	}
	d.Mode = ListOnly
	if d.Name() != "DSP-List" {
		t.Errorf("Name = %q", d.Name())
	}
}

func TestListDeterministic(t *testing.T) {
	spec := trace.DefaultSpec(4, 9)
	spec.TaskScale = 0.04
	run := func() *sim.Result {
		w, err := trace.Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		d := NewDSP()
		d.Mode = ListOnly
		res, err := sim.Run(sim.Config{Cluster: cluster.RealCluster(5), Scheduler: d}, w)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Makespan != b.Makespan || a.TasksCompleted != b.TasksCompleted ||
		a.AvgTaskWait != b.AvgTaskWait {
		t.Errorf("list scheduling not deterministic: %v vs %v", a, b)
	}
}

func TestHEFTChain(t *testing.T) {
	j := sizedJob(0, 2000, 1000)
	j.MustDep(0, 1)
	res, err := sim.Run(sim.Config{Cluster: testCluster(2, 1), Scheduler: HEFT{}}, oneJobWorkload(j))
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 3*units.Second {
		t.Errorf("makespan = %v, want 3s", res.Makespan)
	}
	if (HEFT{}).Name() != "HEFT" {
		t.Error("name")
	}
}

func TestHEFTBalances(t *testing.T) {
	// 4,3,3 on two nodes: HEFT places the largest first and balances to
	// the 6 s optimum.
	j := sizedJob(0, 4000, 3000, 3000)
	res, err := sim.Run(sim.Config{Cluster: testCluster(2, 1), Scheduler: HEFT{}}, oneJobWorkload(j))
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 6*units.Second {
		t.Errorf("makespan = %v, want 6s", res.Makespan)
	}
}

func TestHEFTPrefersFasterNode(t *testing.T) {
	c := testCluster(2, 1)
	c.Nodes[1].SCPU = 4000 // g = 2500
	c.Nodes[1].SMem = 1000
	j := sizedJob(0, 5000)
	res, err := sim.Run(sim.Config{Cluster: c, Scheduler: HEFT{}}, oneJobWorkload(j))
	if err != nil {
		t.Fatal(err)
	}
	if want := units.FromSeconds(5000.0 / 2500.0); res.Makespan != want {
		t.Errorf("makespan = %v, want %v", res.Makespan, want)
	}
}

func TestHEFTCompletesGeneratedWorkload(t *testing.T) {
	spec := trace.DefaultSpec(6, 4)
	spec.TaskScale = 0.04
	w, err := trace.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(sim.Config{Cluster: cluster.RealCluster(8), Scheduler: HEFT{}}, w)
	if err != nil {
		t.Fatal(err)
	}
	if res.JobsCompleted != 6 {
		t.Errorf("completed %d jobs", res.JobsCompleted)
	}
}

func TestDSPListCompetitiveWithHEFT(t *testing.T) {
	// On dependency-heavy workloads, DSP's dependency-score ordering
	// should be no worse than plain HEFT in aggregate.
	var dspTotal, heftTotal units.Time
	for seed := int64(1); seed <= 5; seed++ {
		spec := trace.DefaultSpec(6, seed)
		spec.TaskScale = 0.04
		spec.EdgeDensity = 1.0
		for _, useDSP := range []bool{true, false} {
			w, err := trace.Generate(spec)
			if err != nil {
				t.Fatal(err)
			}
			var s sim.Scheduler = HEFT{}
			if useDSP {
				d := NewDSP()
				d.Mode = ListOnly
				s = d
			}
			res, err := sim.Run(sim.Config{Cluster: testCluster(4, 2), Scheduler: s}, w)
			if err != nil {
				t.Fatal(err)
			}
			if useDSP {
				dspTotal += res.Makespan
			} else {
				heftTotal += res.Makespan
			}
		}
	}
	if dspTotal > heftTotal+heftTotal/10 {
		t.Errorf("DSP aggregate %v much worse than HEFT %v", dspTotal, heftTotal)
	}
}
