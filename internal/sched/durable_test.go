package sched

import (
	"bytes"
	"testing"

	"dsp/internal/dag"
	"dsp/internal/units"
)

func TestDurableStateRoundTrip(t *testing.T) {
	d := NewDSP()
	d.prevPlan = map[dag.Key]warmAssign{
		{Job: 2, Task: 7}:  {node: 3, start: 5 * units.Second},
		{Job: 0, Task: 1}:  {node: 0, start: units.Second},
		{Job: 2, Task: 0}:  {node: 1, start: 0},
		{Job: 11, Task: 4}: {node: 2, start: 90 * units.Millisecond},
	}
	b, err := d.DurableState()
	if err != nil {
		t.Fatal(err)
	}
	// Serialization must be canonical: equal plans, equal bytes.
	b2, err := d.DurableState()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, b2) {
		t.Error("DurableState is not deterministic")
	}

	fresh := NewDSP()
	if err := fresh.RestoreDurableState(b); err != nil {
		t.Fatal(err)
	}
	if len(fresh.prevPlan) != len(d.prevPlan) {
		t.Fatalf("restored %d entries, want %d", len(fresh.prevPlan), len(d.prevPlan))
	}
	for k, want := range d.prevPlan {
		got, ok := fresh.prevPlan[k]
		if !ok || got != want {
			t.Errorf("entry %v: got %+v ok=%v, want %+v", k, got, ok, want)
		}
	}
	b3, err := fresh.DurableState()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, b3) {
		t.Error("restore → serialize is not a fixed point")
	}

	if err := fresh.RestoreDurableState([]byte("{not json")); err == nil {
		t.Error("corrupt durable state accepted")
	}

	// An empty plan round-trips to an empty (non-nil-safe) map.
	empty := NewDSP()
	eb, err := empty.DurableState()
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.RestoreDurableState(eb); err != nil {
		t.Fatal(err)
	}
	if len(fresh.prevPlan) != 0 {
		t.Errorf("restored empty plan has %d entries", len(fresh.prevPlan))
	}
}

// The warm-start memory must survive the snapshot path the engine uses:
// ensure DSP actually satisfies the engine's interface.
var _ interface {
	DurableState() ([]byte, error)
	RestoreDurableState([]byte) error
} = (*DSP)(nil)
