package sched

import (
	"sort"

	"dsp/internal/cluster"
	"dsp/internal/sim"
	"dsp/internal/units"
)

// scheduleFIFO is the bottom rung of the degradation ladder: O(tasks)
// placement with no ranking, no finish-time estimation and no locality
// or risk terms. Jobs are taken in arrival order, each job's tasks in
// topological order, and tasks are dealt round-robin across the usable
// nodes with Start = now (the engine's per-node queues serialize them).
// It trades plan quality for a cost that stays flat under any backlog,
// which is exactly what an overloaded scheduler period needs.
func (d *DSP) scheduleFIFO(now units.Time, pending []*sim.JobState, v *sim.View) []sim.Assignment {
	c := v.Cluster()
	var usable []cluster.NodeID
	for k := 0; k < c.Len(); k++ {
		id := cluster.NodeID(k)
		if v.Speed(id) <= 0 || c.Node(id).Slots <= 0 {
			continue
		}
		if d.RiskAversion > 0 && v.Blacklisted(id) {
			continue
		}
		usable = append(usable, id)
	}
	if len(usable) == 0 {
		return nil
	}

	jobs := append([]*sim.JobState(nil), pending...)
	sort.Slice(jobs, func(a, b int) bool {
		if jobs[a].Arrival != jobs[b].Arrival {
			return jobs[a].Arrival < jobs[b].Arrival
		}
		return jobs[a].Dag.ID < jobs[b].Dag.ID
	})

	var out []sim.Assignment
	next := 0
	for _, j := range jobs {
		order, err := j.Dag.TopoOrder()
		if err != nil {
			continue // cyclic DAG can never run
		}
		for _, id := range order {
			t := j.Tasks[id]
			if t.Phase != sim.Pending {
				continue
			}
			out = append(out, sim.Assignment{Task: t, Node: usable[next], Start: now})
			next = (next + 1) % len(usable)
		}
	}
	return out
}
