package sched

import (
	"testing"

	"dsp/internal/sim"
	"dsp/internal/trace"
	"dsp/internal/units"
)

// runILP executes one workload under ILPOnly with warm-starting on or
// off and returns the realized makespan.
func runILP(t *testing.T, w *trace.Workload, nodes, slots int, disableWarm bool) units.Time {
	t.Helper()
	d := NewDSP()
	d.Mode = ILPOnly
	d.DisableWarmStart = disableWarm
	res, err := sim.Run(sim.Config{Cluster: testCluster(nodes, slots), Scheduler: d}, w)
	if err != nil {
		t.Fatal(err)
	}
	return res.Makespan
}

// TestILPWarmStartMatchesColdOptimal: on instances both solves finish to
// proven optimality, the warm-started scheduler must realize the same
// optimal makespan as a cold one — the seed steers tie-breaking, never
// quality.
func TestILPWarmStartMatchesColdOptimal(t *testing.T) {
	cases := []struct {
		name  string
		mk    func() *trace.Workload
		nodes int
	}{
		{"partition-4-3-3", func() *trace.Workload {
			return oneJobWorkload(sizedJob(0, 4000, 3000, 3000))
		}, 2},
		{"chain", func() *trace.Workload {
			j := sizedJob(0, 2000, 1000)
			j.MustDep(0, 1)
			return oneJobWorkload(j)
		}, 2},
		{"two-jobs-staggered", func() *trace.Workload {
			// The second job arrives a period later, so its solve runs
			// with prevPlan populated from the first — exercising the
			// cross-period seed path.
			a := sizedJob(0, 2000, 2000)
			b := sizedJob(1, 3000, 1000)
			return &trace.Workload{ArrivalRate: 3, Jobs: []*trace.Job{
				{Class: trace.Small, Arrival: 0, DAG: a},
				{Class: trace.Small, Arrival: 6 * units.Minute, DAG: b},
			}}
		}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			warm := runILP(t, tc.mk(), tc.nodes, 1, false)
			cold := runILP(t, tc.mk(), tc.nodes, 1, true)
			if warm != cold {
				t.Errorf("warm makespan %v != cold %v", warm, cold)
			}
		})
	}
}

// TestILPWarmStartDeterministic: two runs of the same warm-started
// scheduler produce identical makespans (prevPlan carry-over is
// deterministic state, not a source of drift between identical runs).
func TestILPWarmStartDeterministic(t *testing.T) {
	mk := func() *trace.Workload {
		a := sizedJob(0, 4000, 3000, 3000)
		b := sizedJob(1, 2000, 2000)
		return &trace.Workload{ArrivalRate: 3, Jobs: []*trace.Job{
			{Class: trace.Small, Arrival: 0, DAG: a},
			{Class: trace.Small, Arrival: 6 * units.Minute, DAG: b},
		}}
	}
	m1 := runILP(t, mk(), 2, 1, false)
	m2 := runILP(t, mk(), 2, 1, false)
	if m1 != m2 {
		t.Errorf("same workload, same scheduler config: makespans %v != %v", m1, m2)
	}
}

// TestILPWarmStartSolvesUnderStarvedBudget: with a branch-and-bound
// budget too small to find an incumbent cold, the greedy seed keeps the
// exact tier usable (the anytime contract returns the seed itself), so
// the run completes without falling to the list engine.
func TestILPWarmStartSolvesUnderStarvedBudget(t *testing.T) {
	j := sizedJob(0, 4000, 3000, 3000, 2000, 1000)
	j.MustDep(0, 2)
	j.MustDep(1, 3)
	d := NewDSP()
	d.Mode = ILPOnly
	d.ILPNodeBudget = 1 // starved: cold search cannot reach an incumbent
	res, err := sim.Run(sim.Config{Cluster: testCluster(2, 1), Scheduler: d}, oneJobWorkload(j))
	if err != nil {
		t.Fatal(err)
	}
	if res.JobsCompleted != 1 {
		t.Fatalf("completed %d jobs, want 1", res.JobsCompleted)
	}
	if res.Disorders != 0 {
		t.Errorf("disorders = %d, want 0 (seed must respect dependencies)", res.Disorders)
	}
}
