package sched

import (
	"math"

	"dsp/internal/cluster"
	"dsp/internal/dag"
	"dsp/internal/lp"
	"dsp/internal/sim"
	"dsp/internal/units"
)

// warmAssign remembers where the previous exact solve placed a task, so
// the next period's branch-and-bound can be seeded with an incumbent that
// keeps surviving tasks on their old machines in their old order.
type warmAssign struct {
	node cluster.NodeID
	// start is the absolute planned start from the previous incumbent,
	// used to order surviving tasks in the seed schedule.
	start units.Time
}

// buildWarmVector constructs a complete candidate assignment for the ILP
// of scheduleILP — one value per model variable — by running a
// deterministic greedy list placement over the pending tasks:
//
//   - Tasks are placed in dependency order; among ready tasks, those the
//     previous incumbent scheduled (prev) go first, ordered by their old
//     start times, so a surviving plan is replayed rather than rediscovered.
//   - Each task lands on its previous machine when that machine is still
//     offered, otherwise on the machine minimizing its finish time; the
//     start honours machine availability, in-model precedence, and the
//     constant lower bounds from external (already scheduled) parents.
//   - Ordering binaries are derived from the placement sequence, which is
//     consistent with the disjunctive constraints on shared machines.
//
// The result seeds lp.Model.SetWarmStart; the solver re-verifies
// feasibility, so a seed that violates a deadline constraint is simply
// ignored and the solve proceeds cold. Branch-and-bound can only improve
// on a feasible seed, so the warm solve's makespan is never worse than
// either the seed's or a cold solve's under the same budgets.
func buildWarmVector(nVars int, now units.Time, tasks []*sim.TaskState, vms []vm,
	e [][]float64, pcost []float64, idx map[*sim.TaskState]int, extLB []float64,
	prev map[dag.Key]warmAssign, msVar lp.VarID, start []lp.VarID,
	x [][]lp.VarID, yID [][]lp.VarID) []float64 {

	nT, nK := len(tasks), len(vms)
	parents := make([][]int, nT)
	for i, t := range tasks {
		for _, p := range t.Job.Dag.Parents(t.Task.ID) {
			if pi, ok := idx[t.Job.Tasks[p]]; ok {
				parents[i] = append(parents[i], pi)
			}
		}
	}

	// prevRank orders the ready set: remembered tasks by old start time,
	// unknown tasks after every remembered one, ties by task index.
	prevRank := make([]float64, nT)
	prevNode := make([]cluster.NodeID, nT)
	for i, t := range tasks {
		prevRank[i] = math.Inf(1)
		prevNode[i] = -1
		if wa, ok := prev[t.Task.Key()]; ok {
			prevRank[i] = (wa.start - now).Seconds()
			prevNode[i] = wa.node
		}
	}

	cur := make([]float64, nK) // per-machine cursor: when the slot frees
	for k, m := range vms {
		if m.avail > 0 {
			cur[k] = m.avail
		}
	}
	s := make([]float64, nT)
	vmOf := make([]int, nT)
	seq := make([]int, nT)
	placed := make([]bool, nT)

	for n := 0; n < nT; n++ {
		pick := -1
		for i := range tasks {
			if placed[i] {
				continue
			}
			ready := true
			for _, p := range parents[i] {
				if !placed[p] {
					ready = false
					break
				}
			}
			if !ready {
				continue
			}
			if pick == -1 || prevRank[i] < prevRank[pick] {
				pick = i
			}
		}
		if pick == -1 {
			return nil // dependency cycle among pending tasks; no seed
		}

		est := extLB[pick]
		for _, p := range parents[pick] {
			if f := s[p] + e[p][vmOf[p]]; f > est {
				est = f
			}
		}
		bestK, bestFin, bestPref := -1, 0.0, false
		for k := range vms {
			fin := math.Max(cur[k], est) + e[pick][k]
			pref := vms[k].node == prevNode[pick]
			switch {
			case bestK == -1,
				pref && !bestPref,
				pref == bestPref && fin < bestFin:
				bestK, bestFin, bestPref = k, fin, pref
			}
		}
		s[pick] = math.Max(cur[bestK], est)
		cur[bestK] = s[pick] + e[pick][bestK]
		vmOf[pick] = bestK
		seq[pick] = n
		placed[pick] = true
	}

	w := make([]float64, nVars)
	ms := 0.0
	for i := range tasks {
		w[start[i]] = s[i]
		w[x[i][vmOf[i]]] = 1
		if fin := s[i] + e[i][vmOf[i]] + pcost[i]; fin > ms {
			ms = fin
		}
	}
	w[msVar] = ms
	// y_{i,u}=1 means i precedes u; derived from the placement sequence it
	// is automatically consistent with the shared-machine cursor spacing.
	for i := 0; i < nT; i++ {
		for u := i + 1; u < nT; u++ {
			if seq[i] < seq[u] {
				w[yID[i][u]] = 1
			}
		}
	}
	return w
}
