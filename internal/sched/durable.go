package sched

import (
	"encoding/json"
	"sort"

	"dsp/internal/cluster"
	"dsp/internal/dag"
	"dsp/internal/units"
)

// The scheduler's only round-to-round state is the warm-start memory:
// prevPlan remembers where the previous exact solve placed each task so
// the next period's branch-and-bound starts from a replayed incumbent.
// Losing it across a crash would not change correctness — a cold solve
// finds the same or a worse-bounded incumbent — but it would change the
// solve's search order and therefore the deterministic event trace, so
// recovery must carry it. (The preemptor's memo cache, by contrast, is
// pure memoization keyed on live engine state and is deliberately NOT
// durable: it is rebuilt from scratch on the first epoch after resume
// with identical results.)

// durableAssign is the serialized form of one warmAssign entry.
type durableAssign struct {
	Job   int        `json:"job"`
	Task  int        `json:"task"`
	Node  int        `json:"node"`
	Start units.Time `json:"start"`
}

// DurableState implements sim.DurableComponent: it serializes prevPlan
// in sorted key order so equal plans always produce equal bytes.
func (d *DSP) DurableState() ([]byte, error) {
	out := make([]durableAssign, 0, len(d.prevPlan))
	for k, a := range d.prevPlan {
		out = append(out, durableAssign{
			Job:   int(k.Job),
			Task:  int(k.Task),
			Node:  int(a.node),
			Start: a.start,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Job != out[j].Job {
			return out[i].Job < out[j].Job
		}
		return out[i].Task < out[j].Task
	})
	return json.Marshal(out)
}

// RestoreDurableState implements sim.DurableComponent.
func (d *DSP) RestoreDurableState(b []byte) error {
	var in []durableAssign
	if err := json.Unmarshal(b, &in); err != nil {
		return err
	}
	d.prevPlan = make(map[dag.Key]warmAssign, len(in))
	for _, a := range in {
		k := dag.Key{Job: dag.JobID(a.Job), Task: dag.TaskID(a.Task)}
		d.prevPlan[k] = warmAssign{node: cluster.NodeID(a.Node), start: a.Start}
	}
	return nil
}
