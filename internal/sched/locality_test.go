package sched

import (
	"testing"

	"dsp/internal/dag"
	"dsp/internal/sim"
	"dsp/internal/trace"
	"dsp/internal/units"
)

func TestLocalityAwarePlacementPrefersDataNode(t *testing.T) {
	// Two identical nodes; the task's data lives on node 1. Without
	// locality awareness, EFT ties break toward node 0 and the remote
	// penalty is paid; with awareness the task lands on node 1.
	mk := func() *trace.Workload {
		j := dag.NewJob(0, 1)
		j.Task(0).Size = 5000
		j.Task(0).Preferred = 1
		return &trace.Workload{Jobs: []*trace.Job{{Arrival: 0, DAG: j}}}
	}
	run := func(localityAware bool) *sim.Result {
		d := NewDSP()
		d.Mode = ListOnly
		if localityAware {
			d.LocalityPenalty = 2 * units.Second
		}
		res, err := sim.Run(sim.Config{
			Cluster:            testCluster(2, 1),
			Scheduler:          d,
			RemoteInputPenalty: 2 * units.Second,
		}, mk())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	blind := run(false)
	if blind.LocalityMisses != 1 || blind.LocalityHits != 0 {
		t.Errorf("without awareness: hits=%d misses=%d, want 0/1",
			blind.LocalityHits, blind.LocalityMisses)
	}
	if blind.Makespan != 7*units.Second {
		t.Errorf("remote makespan = %v, want 7s (5s + 2s transfer)", blind.Makespan)
	}
	aware := run(true)
	if aware.LocalityHits != 1 || aware.LocalityMisses != 0 {
		t.Errorf("with awareness: hits=%d misses=%d, want 1/0",
			aware.LocalityHits, aware.LocalityMisses)
	}
	if aware.Makespan != 5*units.Second {
		t.Errorf("local makespan = %v, want 5s", aware.Makespan)
	}
}

func TestLocalityYieldsWhenDataNodeCongested(t *testing.T) {
	// Data node 1 is busy with a long task; a 1 s task preferring node 1
	// should still go remote when the remote penalty (1 s) is smaller
	// than the queueing delay (10 s).
	j := dag.NewJob(0, 2)
	j.Task(0).Size = 10000
	j.Task(0).Preferred = 1
	j.Task(1).Size = 1000
	j.Task(1).Preferred = 1
	w := &trace.Workload{Jobs: []*trace.Job{{Arrival: 0, DAG: j}}}
	d := NewDSP()
	d.Mode = ListOnly
	d.LocalityPenalty = units.Second
	res, err := sim.Run(sim.Config{
		Cluster:            testCluster(2, 1),
		Scheduler:          d,
		RemoteInputPenalty: units.Second,
	}, w)
	if err != nil {
		t.Fatal(err)
	}
	// Long task local on node 1 [0,10); short task remote on node 0:
	// 1 s transfer + 1 s work = done at 2 s. Makespan 10 s.
	if res.Makespan != 10*units.Second {
		t.Errorf("makespan = %v, want 10s", res.Makespan)
	}
	if res.LocalityHits != 1 || res.LocalityMisses != 1 {
		t.Errorf("hits=%d misses=%d, want 1/1", res.LocalityHits, res.LocalityMisses)
	}
}

func TestTraceGeneratesLocalityPreferences(t *testing.T) {
	spec := trace.DefaultSpec(3, 5)
	spec.TaskScale = 0.05
	spec.LocalityNodes = 10
	spec.LocalityFraction = 0.5
	w, err := trace.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	withPref, withoutPref := 0, 0
	for _, j := range w.Jobs {
		for _, task := range j.DAG.Tasks {
			if task.Preferred >= 0 {
				if task.Preferred >= 10 {
					t.Fatalf("preferred node %d out of range", task.Preferred)
				}
				withPref++
			} else {
				withoutPref++
			}
		}
	}
	if withPref == 0 || withoutPref == 0 {
		t.Errorf("locality fraction not applied: with=%d without=%d", withPref, withoutPref)
	}
}
