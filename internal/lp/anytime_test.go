package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// TestAnytimeMatchesExactOnSmallInstances: when the node budget covers
// the exact search (budget == nodes the exact solve used), the budgeted
// solve reproduces the exact result.
func TestAnytimeMatchesExactOnSmallInstances(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := randomILP(r)
		exact := m.Solve()
		if exact.Status != Optimal {
			return true // infeasible instance; covered elsewhere
		}
		m.MaxNodes = exact.Nodes
		got := m.Solve()
		if got.Status != Optimal {
			t.Logf("seed %d: budget %d gave %v, want optimal", seed, exact.Nodes, got.Status)
			return false
		}
		if math.Abs(got.Objective-exact.Objective) > 1e-6 {
			t.Logf("seed %d: objective %v != exact %v", seed, got.Objective, exact.Objective)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestAnytimeIncumbentUnderTightBudget: sweeping the node budget from 1
// up to the exact solve's need, every outcome must be sound — an
// Incumbent is feasible, the search never claims Infeasible for a
// feasible model, and once some budget yields an incumbent every larger
// budget does too (DFS explores a deterministic prefix), with the
// objective improving monotonically.
func TestAnytimeIncumbentUnderTightBudget(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := randomILP(r)
		exact := m.Solve()
		if exact.Status != Optimal || exact.Nodes > 80 {
			return true
		}
		hadSolution := false
		prevObj := math.Inf(1)
		if m.sense == Maximize {
			prevObj = math.Inf(-1)
		}
		for budget := 1; budget <= exact.Nodes; budget++ {
			m.MaxNodes = budget
			s := m.Solve()
			switch s.Status {
			case Optimal, Incumbent, NodeLimit:
			default:
				t.Logf("seed %d budget %d: unexpected status %v for feasible model", seed, budget, s.Status)
				return false
			}
			if hadSolution && !s.HasSolution() {
				t.Logf("seed %d budget %d: lost the incumbent a smaller budget found", seed, budget)
				return false
			}
			if s.HasSolution() {
				hadSolution = true
				if !feasible(m, s.X) {
					t.Logf("seed %d budget %d: %v solution infeasible: %v", seed, budget, s.Status, s.X)
					return false
				}
				improving := s.Objective <= prevObj+1e-9
				if m.sense == Maximize {
					improving = s.Objective >= prevObj-1e-9
				}
				if !improving {
					t.Logf("seed %d budget %d: objective %v worse than smaller budget's %v", seed, budget, s.Objective, prevObj)
					return false
				}
				prevObj = s.Objective
			}
		}
		if !hadSolution {
			t.Logf("seed %d: no budget up to %d produced a solution for a feasible model", seed, exact.Nodes)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestAnytimeNeverMutatesIncumbent locks in the satellite fix: the
// Solution returned under a node budget must not be rewritten by the
// solver afterwards (the old code stamped NodeLimit into the stored
// incumbent, corrupting what the caller held).
func TestAnytimeNeverMutatesIncumbent(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		m := randomILP(r)
		exact := m.Solve()
		if exact.Status != Optimal || exact.Nodes < 2 {
			continue
		}
		for budget := 1; budget < exact.Nodes; budget++ {
			m.MaxNodes = budget
			s1 := m.Solve()
			if s1.Status != Incumbent {
				continue
			}
			status1, obj1 := s1.Status, s1.Objective
			x1 := append([]float64(nil), s1.X...)
			m.MaxNodes = 0
			s2 := m.Solve()
			if s2.Status != Optimal {
				t.Fatalf("exact re-solve: got %v, want optimal", s2.Status)
			}
			if s1.Status != status1 || s1.Objective != obj1 {
				t.Fatalf("incumbent mutated by later solve: %v/%v -> %v/%v",
					status1, obj1, s1.Status, s1.Objective)
			}
			for i := range x1 {
				if s1.X[i] != x1[i] {
					t.Fatalf("incumbent X mutated: %v -> %v", x1, s1.X)
				}
			}
			return
		}
	}
	t.Fatal("no instance produced an Incumbent under any budget; generator too weak")
}

// TestPivotBudgetAborts: an absurdly small global pivot budget must end
// the solve with a definite status (Aborted or Incumbent), never a hang
// or a false Infeasible claim.
func TestPivotBudgetAborts(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		m := randomILP(r)
		exact := m.Solve()
		m.MaxPivots = 1
		s := m.Solve()
		switch s.Status {
		case Aborted, Incumbent, Optimal, NodeLimit:
		case Infeasible:
			if exact.Status == Optimal {
				t.Fatalf("trial %d: pivot-starved solve claimed infeasible on a feasible model", trial)
			}
		default:
			t.Fatalf("trial %d: unexpected status %v", trial, s.Status)
		}
		if s.Pivots > 1+1 {
			t.Fatalf("trial %d: %d pivots spent against a budget of 1", trial, s.Pivots)
		}
	}
}

// TestTimeBudgetAborts: a deadline in the past (via the injected clock)
// stops the search immediately with the incumbent-or-Aborted contract.
func TestTimeBudgetAborts(t *testing.T) {
	m := NewModel("deadline", Minimize)
	x := m.AddIntVar(0, 5, 1, "x")
	m.AddConstraint([]Term{{x, 1}}, GE, 2, "floor")
	now := time.Unix(0, 0)
	m.MaxTime = time.Nanosecond
	m.Clock = func() time.Time {
		now = now.Add(time.Second) // every glance at the clock blows the deadline
		return now
	}
	s := m.Solve()
	if s.Status != Aborted && s.Status != Incumbent {
		t.Fatalf("expired deadline: got %v, want aborted or incumbent", s.Status)
	}
}
