package lp

import (
	"math"
	"math/rand"
	"testing"
)

// FuzzModelSolve drives randomly shaped models — degenerate, unbounded,
// infeasible, budget-starved — through Solve. The contract under fuzz:
// always return a Solution with a known Status, never panic, never loop
// (budgets and default caps bound every run), and any Status claiming a
// solution must carry a bound-respecting, integral assignment.
func FuzzModelSolve(f *testing.F) {
	f.Add(int64(1), uint8(2), uint8(2), false, false)
	f.Add(int64(42), uint8(4), uint8(0), true, false)
	f.Add(int64(7), uint8(1), uint8(5), false, true)
	f.Add(int64(-3), uint8(3), uint8(3), true, true)
	f.Fuzz(func(t *testing.T, seed int64, nv, nc uint8, tight, unbounded bool) {
		r := rand.New(rand.NewSource(seed))
		m := NewModel("fuzz", Sense(int(nv)%2))

		vars := int(nv)%5 + 1
		for i := 0; i < vars; i++ {
			lo := float64(r.Intn(5) - 2)
			hi := lo + float64(r.Intn(4))
			obj := float64(r.Intn(21) - 10)
			if r.Intn(2) == 0 {
				m.AddIntVar(lo, hi, obj, "x")
			} else {
				m.AddVar(lo, hi, obj, "x")
			}
		}
		if unbounded {
			m.AddVar(0, math.Inf(1), float64(r.Intn(7)-3), "u")
		}
		for c := 0; c < int(nc)%6; c++ {
			var terms []Term
			for i := 0; i < m.NumVars(); i++ {
				if coef := r.Intn(7) - 3; coef != 0 {
					terms = append(terms, Term{Var: VarID(i), Coef: float64(coef)})
				}
			}
			op := Op(r.Intn(3))
			rhs := float64(r.Intn(17) - 8)
			m.AddConstraint(terms, op, rhs, "c")
		}
		if tight {
			m.MaxNodes = 1 + r.Intn(4)
			m.MaxIters = 1 + r.Intn(16)
			m.MaxPivots = 1 + r.Intn(32)
		}

		sol := m.Solve()
		if sol == nil {
			t.Fatal("Solve returned nil")
		}
		switch sol.Status {
		case Optimal, Infeasible, Unbounded, IterLimit, NodeLimit, Incumbent, Aborted:
		default:
			t.Fatalf("unknown status %v", sol.Status)
		}
		if !sol.HasSolution() {
			return
		}
		if len(sol.X) != m.NumVars() {
			t.Fatalf("status %v with %d values for %d vars", sol.Status, len(sol.X), m.NumVars())
		}
		for i, v := range m.vars {
			x := sol.X[i]
			if math.IsNaN(x) {
				t.Fatalf("var %d is NaN", i)
			}
			if x < v.lo-1e-6 || (!math.IsInf(v.hi, 1) && x > v.hi+1e-6) {
				t.Fatalf("var %d = %v outside [%v, %v]", i, x, v.lo, v.hi)
			}
			if v.integer && math.Abs(x-math.Round(x)) > 1e-6 {
				t.Fatalf("integer var %d = %v not integral", i, x)
			}
		}
	})
}
