package lp

import (
	"math"
	"testing"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSimplexTextbookMax(t *testing.T) {
	// max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18, x,y >= 0.
	// Optimum (2,6) with objective 36.
	m := NewModel("wyndor", Maximize)
	x := m.AddVar(0, math.Inf(1), 3, "x")
	y := m.AddVar(0, math.Inf(1), 5, "y")
	m.AddConstraint([]Term{{x, 1}}, LE, 4, "c1")
	m.AddConstraint([]Term{{y, 2}}, LE, 12, "c2")
	m.AddConstraint([]Term{{x, 3}, {y, 2}}, LE, 18, "c3")
	s := m.Solve()
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if !approx(s.Objective, 36, 1e-6) {
		t.Errorf("objective = %v, want 36", s.Objective)
	}
	if !approx(s.Value(x), 2, 1e-6) || !approx(s.Value(y), 6, 1e-6) {
		t.Errorf("x,y = %v,%v want 2,6", s.Value(x), s.Value(y))
	}
}

func TestSimplexMinWithGE(t *testing.T) {
	// min 2x + 3y s.t. x + y >= 10, x >= 2, y >= 0. Optimum x=10-y... obj
	// minimized by max x: x=10, y=0 -> 20? 2*10=20 vs x=2,y=8 -> 4+24=28.
	m := NewModel("ge", Minimize)
	x := m.AddVar(2, math.Inf(1), 2, "x")
	y := m.AddVar(0, math.Inf(1), 3, "y")
	m.AddConstraint([]Term{{x, 1}, {y, 1}}, GE, 10, "cover")
	s := m.Solve()
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if !approx(s.Objective, 20, 1e-6) {
		t.Errorf("objective = %v, want 20", s.Objective)
	}
}

func TestSimplexEquality(t *testing.T) {
	// min x + 2y s.t. x + y = 5, x <= 3. Optimum x=3, y=2 -> 7.
	m := NewModel("eq", Minimize)
	x := m.AddVar(0, 3, 1, "x")
	y := m.AddVar(0, math.Inf(1), 2, "y")
	m.AddConstraint([]Term{{x, 1}, {y, 1}}, EQ, 5, "sum")
	s := m.Solve()
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if !approx(s.Objective, 7, 1e-6) {
		t.Errorf("objective = %v, want 7", s.Objective)
	}
	if !approx(s.Value(x), 3, 1e-6) || !approx(s.Value(y), 2, 1e-6) {
		t.Errorf("x,y = %v,%v", s.Value(x), s.Value(y))
	}
}

func TestSimplexInfeasible(t *testing.T) {
	m := NewModel("inf", Minimize)
	x := m.AddVar(0, math.Inf(1), 1, "x")
	m.AddConstraint([]Term{{x, 1}}, LE, -1, "neg")
	if s := m.Solve(); s.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", s.Status)
	}

	m2 := NewModel("inf2", Minimize)
	y := m2.AddVar(0, 5, 1, "y")
	m2.AddConstraint([]Term{{y, 1}}, GE, 10, "toohigh")
	if s := m2.Solve(); s.Status != Infeasible {
		t.Errorf("status = %v, want infeasible (bound conflict)", s.Status)
	}
}

func TestSimplexUnbounded(t *testing.T) {
	m := NewModel("unb", Maximize)
	x := m.AddVar(0, math.Inf(1), 1, "x")
	m.AddConstraint([]Term{{x, 1}}, GE, 1, "atleast")
	if s := m.Solve(); s.Status != Unbounded {
		t.Errorf("status = %v, want unbounded", s.Status)
	}
}

func TestSimplexNegativeLowerBound(t *testing.T) {
	// min x s.t. x >= -5 — shifted-variable handling.
	m := NewModel("neglo", Minimize)
	x := m.AddVar(-5, 10, 1, "x")
	s := m.Solve()
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if !approx(s.Value(x), -5, 1e-6) || !approx(s.Objective, -5, 1e-6) {
		t.Errorf("x = %v obj = %v, want -5", s.Value(x), s.Objective)
	}
}

func TestSimplexNegativeRHS(t *testing.T) {
	// min y s.t. -x - y <= -4 (i.e. x + y >= 4), x <= 1. y >= 3.
	m := NewModel("negrhs", Minimize)
	x := m.AddVar(0, 1, 0, "x")
	y := m.AddVar(0, math.Inf(1), 1, "y")
	m.AddConstraint([]Term{{x, -1}, {y, -1}}, LE, -4, "cover")
	s := m.Solve()
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if !approx(s.Objective, 3, 1e-6) {
		t.Errorf("objective = %v, want 3", s.Objective)
	}
}

func TestKnapsackILP(t *testing.T) {
	// max 60a + 100b + 120c s.t. 10a + 20b + 30c <= 50, binary.
	// Optimum b=c=1 -> 220.
	m := NewModel("knap", Maximize)
	a := m.AddBinVar(60, "a")
	b := m.AddBinVar(100, "b")
	c := m.AddBinVar(120, "c")
	m.AddConstraint([]Term{{a, 10}, {b, 20}, {c, 30}}, LE, 50, "cap")
	s := m.Solve()
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if !approx(s.Objective, 220, 1e-6) {
		t.Errorf("objective = %v, want 220", s.Objective)
	}
	if !approx(s.Value(a), 0, intTol) || !approx(s.Value(b), 1, intTol) || !approx(s.Value(c), 1, intTol) {
		t.Errorf("a,b,c = %v,%v,%v", s.Value(a), s.Value(b), s.Value(c))
	}
}

func TestILPFractionalRelaxation(t *testing.T) {
	// max x + y s.t. 2x + 2y <= 3, binary. LP gives 1.5; ILP optimum 1.
	m := NewModel("frac", Maximize)
	x := m.AddBinVar(1, "x")
	y := m.AddBinVar(1, "y")
	m.AddConstraint([]Term{{x, 2}, {y, 2}}, LE, 3, "cap")
	s := m.Solve()
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if !approx(s.Objective, 1, 1e-6) {
		t.Errorf("objective = %v, want 1", s.Objective)
	}
	if s.Nodes < 2 {
		t.Errorf("expected branching, nodes = %d", s.Nodes)
	}
}

func TestILPGeneralInteger(t *testing.T) {
	// max 5x + 4y s.t. 6x + 4y <= 24, x + 2y <= 6, integer.
	// LP opt (3, 1.5) obj 21; ILP opt x=3 y=1 obj 19 or x=2,y=2 obj 18 ->
	// check: x=3,y=1: 6*3+4=22<=24 ok, 3+2=5<=6 ok -> 19. x=4,y=0:24<=24,
	// 4<=6 -> 20. So optimum 20.
	m := NewModel("gen", Maximize)
	x := m.AddIntVar(0, 100, 5, "x")
	y := m.AddIntVar(0, 100, 4, "y")
	m.AddConstraint([]Term{{x, 6}, {y, 4}}, LE, 24, "c1")
	m.AddConstraint([]Term{{x, 1}, {y, 2}}, LE, 6, "c2")
	s := m.Solve()
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if !approx(s.Objective, 20, 1e-6) {
		t.Errorf("objective = %v, want 20 (x=4,y=0)", s.Objective)
	}
}

func TestILPInfeasible(t *testing.T) {
	m := NewModel("ilpinf", Minimize)
	x := m.AddBinVar(1, "x")
	y := m.AddBinVar(1, "y")
	m.AddConstraint([]Term{{x, 1}, {y, 1}}, GE, 3, "impossible")
	if s := m.Solve(); s.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", s.Status)
	}
}

func TestAssignmentProblem(t *testing.T) {
	// 3x3 assignment, cost matrix; as a min-cost ILP. Totally unimodular,
	// so LP = ILP. Costs: rows workers, cols tasks.
	cost := [3][3]float64{{4, 2, 8}, {4, 3, 7}, {3, 1, 6}}
	// Optimal assignment: w0->t1(2)? each worker one task, each task one
	// worker. Enumerate: perms (0,1,2):4+3+6=13 (0,2,1):4+7+1=12
	// (1,0,2):2+4+6=12 (1,2,0):2+7+3=12 (2,0,1):8+4+1=13 (2,1,0):8+3+3=14.
	// Optimum 12.
	m := NewModel("assign", Minimize)
	var v [3][3]VarID
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			v[i][j] = m.AddBinVar(cost[i][j], "")
		}
	}
	for i := 0; i < 3; i++ {
		rowTerms := []Term{}
		colTerms := []Term{}
		for j := 0; j < 3; j++ {
			rowTerms = append(rowTerms, Term{v[i][j], 1})
			colTerms = append(colTerms, Term{v[j][i], 1})
		}
		m.AddConstraint(rowTerms, EQ, 1, "row")
		m.AddConstraint(colTerms, EQ, 1, "col")
	}
	s := m.Solve()
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if !approx(s.Objective, 12, 1e-6) {
		t.Errorf("objective = %v, want 12", s.Objective)
	}
}

func TestMergedDuplicateTerms(t *testing.T) {
	// x + x <= 4 should behave as 2x <= 4.
	m := NewModel("dup", Maximize)
	x := m.AddVar(0, math.Inf(1), 1, "x")
	m.AddConstraint([]Term{{x, 1}, {x, 1}}, LE, 4, "dup")
	s := m.Solve()
	if s.Status != Optimal || !approx(s.Value(x), 2, 1e-6) {
		t.Errorf("x = %v status %v, want 2", s.Value(x), s.Status)
	}
}

func TestFixedVariable(t *testing.T) {
	m := NewModel("fixed", Minimize)
	x := m.AddVar(3, 3, 1, "x")
	y := m.AddVar(0, 10, 1, "y")
	m.AddConstraint([]Term{{x, 1}, {y, 1}}, GE, 5, "c")
	s := m.Solve()
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if !approx(s.Value(x), 3, 1e-6) || !approx(s.Value(y), 2, 1e-6) {
		t.Errorf("x,y = %v,%v want 3,2", s.Value(x), s.Value(y))
	}
}

func TestNodeLimit(t *testing.T) {
	// A model that needs branching with MaxNodes=1 should report the limit.
	m := NewModel("lim", Maximize)
	x := m.AddBinVar(1, "x")
	y := m.AddBinVar(1, "y")
	m.AddConstraint([]Term{{x, 2}, {y, 2}}, LE, 3, "cap")
	m.MaxNodes = 1
	s := m.Solve()
	if s.Status != NodeLimit {
		t.Errorf("status = %v, want node-limit", s.Status)
	}
}

func TestStatusStrings(t *testing.T) {
	for st, want := range map[Status]string{
		Optimal: "optimal", Infeasible: "infeasible", Unbounded: "unbounded",
		IterLimit: "iteration-limit", NodeLimit: "node-limit",
	} {
		if st.String() != want {
			t.Errorf("Status(%d).String() = %q", st, st.String())
		}
	}
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "=" {
		t.Error("Op strings wrong")
	}
}

func TestPanicsOnBadInput(t *testing.T) {
	m := NewModel("bad", Minimize)
	mustPanic(t, func() { m.AddVar(math.Inf(-1), 1, 0, "free") })
	mustPanic(t, func() { m.AddVar(2, 1, 0, "inverted") })
	mustPanic(t, func() { m.AddConstraint([]Term{{VarID(9), 1}}, LE, 0, "ghost") })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}
